// Package repro is an ISO 26262 Part-6 software-guideline assessor for
// C/C++/CUDA codebases — a full reproduction of "Assessing the Adherence
// of an Industrial Autonomous Driving Framework to ISO 26262 Software
// Guidelines" (Tabani et al., DAC 2019).
//
// The library bundles everything the paper's study needs, built from
// scratch on the standard library:
//
//   - a C/C++/CUDA frontend (internal/cclex, internal/ccparse);
//   - Lizard-compatible complexity and architectural metrics
//     (internal/metrics, internal/cfg);
//   - a MISRA-inspired rule engine mapped to ISO 26262-6 Tables 1/3/8
//     (internal/rules, internal/iso26262);
//   - statement/branch/MC-DC coverage over an interpreting executor
//     (internal/coverage, internal/cinterp) with cuda4cpu-style GPU
//     kernel emulation (internal/cuda);
//   - a calibrated Apollo-like corpus generator plus the YOLO and
//     stencil study subjects (internal/apollocorpus);
//   - GPU/CPU library performance models for the cuBLAS/CUTLASS and
//     cuDNN/ISAAC comparisons (internal/gpusim, internal/yolo).
//
// This root package re-exports the high-level entry points; see
// cmd/adassess and examples/ for end-to-end usage, and DESIGN.md /
// EXPERIMENTS.md for the experiment index.
package repro

import (
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/iso26262"
	"repro/internal/srcfile"
)

// Config re-exports core.Config.
type Config = core.Config

// Assessor re-exports core.Assessor.
type Assessor = core.Assessor

// Assessment re-exports core.Assessment.
type Assessment = core.Assessment

// FileSet re-exports the corpus container for user-provided sources.
type FileSet = srcfile.FileSet

// NewFileSet creates an empty corpus.
func NewFileSet() *FileSet { return srcfile.NewFileSet() }

// DefaultConfig mirrors the paper's setup (ASIL-D target, calibrated
// corpus seed).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewAssessor creates an assessor with the given configuration.
func NewAssessor(cfg Config) *Assessor { return core.NewAssessor(cfg) }

// AssessDefaultCorpus runs the full paper assessment over the calibrated
// Apollo-like corpus and returns the verdicts for the paper's Tables 1-3
// plus Observations 1-14.
func AssessDefaultCorpus() (*Assessor, *Assessment, error) {
	a := core.NewAssessor(core.DefaultConfig())
	if err := a.LoadDefaultCorpus(); err != nil {
		return nil, nil, err
	}
	return a, a.Assess(), nil
}

// AssessFileSet assesses a user-provided corpus at the given target ASIL.
func AssessFileSet(fs *FileSet, target iso26262.ASIL) (*Assessor, *Assessment, error) {
	cfg := core.DefaultConfig()
	cfg.TargetASIL = target
	a := core.NewAssessor(cfg)
	if err := a.LoadFileSet(fs); err != nil {
		return nil, nil, err
	}
	return a, a.Assess(), nil
}

// Coverage analysis modes, re-exported for Figure 5 callers.
const (
	UniqueCause = coverage.UniqueCause
	Masking     = coverage.Masking
)
