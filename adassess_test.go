package repro_test

import (
	"testing"

	repro "repro"
	"repro/internal/iso26262"
)

func TestAssessFileSetPublicAPI(t *testing.T) {
	fs := repro.NewFileSet()
	fs.AddSource("control/pid.cc", `
float g_integral = 0.0f;
float PidStep(float error, float kp, float ki) {
    g_integral += error;
    if (g_integral > 100.0f) {
        return 100.0f;
    }
    return kp * error + ki * g_integral;
}`)
	a, assessment, err := repro.AssessFileSet(fs, iso26262.ASILD)
	if err != nil {
		t.Fatal(err)
	}
	if len(assessment.Coding) != 8 || len(assessment.Arch) != 7 || len(assessment.Unit) != 10 {
		t.Fatalf("verdict table shapes wrong: %d/%d/%d",
			len(assessment.Coding), len(assessment.Arch), len(assessment.Unit))
	}
	if got := a.Stats().ByRule["global-var"]; got != 1 {
		t.Errorf("global-var findings = %d, want 1", got)
	}
	if got := a.Stats().ByRule["multi-exit"]; got != 1 {
		t.Errorf("multi-exit findings = %d, want 1", got)
	}
	if len(assessment.Gaps()) == 0 {
		t.Error("PID snippet must gap at ASIL-D (multi-exit + global)")
	}
}

func TestAssessFileSetLowerASILFewerGaps(t *testing.T) {
	fs := repro.NewFileSet()
	fs.AddSource("m/a.c", `
float* g_buf;
int f(int a) {
    if (a < 0) return -1;
    return a;
}`)
	_, atD, err := repro.AssessFileSet(fs, iso26262.ASILD)
	if err != nil {
		t.Fatal(err)
	}
	_, atA, err := repro.AssessFileSet(fs, iso26262.ASILA)
	if err != nil {
		t.Fatal(err)
	}
	if len(atA.Gaps()) > len(atD.Gaps()) {
		t.Errorf("ASIL-A gaps (%d) must not exceed ASIL-D gaps (%d)",
			len(atA.Gaps()), len(atD.Gaps()))
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := repro.DefaultConfig()
	if cfg.TargetASIL != iso26262.ASILD {
		t.Errorf("default target = %v, want ASIL-D (the paper's setting)", cfg.TargetASIL)
	}
	if cfg.Seed != 26262 {
		t.Errorf("default seed = %d", cfg.Seed)
	}
}

// TestAssessDefaultCorpusSmoke exercises the one-call entry point the
// README advertises. It is the heaviest public-API test (full corpus).
func TestAssessDefaultCorpusSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus assessment in -short mode")
	}
	a, assessment, err := repro.AssessDefaultCorpus()
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics().TotalLOC < 220000 {
		t.Errorf("corpus LOC = %d", a.Metrics().TotalLOC)
	}
	if len(assessment.Observations) != 14 {
		t.Errorf("observations = %d", len(assessment.Observations))
	}
}
