// Benchmark harness: one benchmark per paper table and figure (the
// regeneration targets indexed in DESIGN.md), plus the ablation benches
// for the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"sync"
	"testing"

	"repro/internal/apollocorpus"
	"repro/internal/brookauto"
	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/cinterp"
	"repro/internal/core"
	"repro/internal/corpusgen"
	"repro/internal/coverage"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/srcfile"
	"repro/internal/store"
	"repro/internal/tensor"
	"repro/internal/testgen"
	"repro/internal/yolo"
)

var (
	benchOnce  sync.Once
	benchFS    *srcfile.FileSet
	benchUnits map[string]*ccast.TranslationUnit
)

func benchCorpus(b *testing.B) map[string]*ccast.TranslationUnit {
	b.Helper()
	benchOnce.Do(func() {
		benchFS = apollocorpus.GenerateDefault()
		var errs []*ccparse.Error
		benchUnits, errs = ccparse.ParseAll(benchFS, ccparse.Options{})
		if len(errs) > 0 {
			b.Fatalf("corpus parse errors: %v", errs[0])
		}
	})
	return benchUnits
}

// rulesFor selects the checker subset evidencing one ISO table.
func rulesFor(table string) []rules.Rule {
	switch table {
	case "coding":
		return []rules.Rule{
			&rules.ComplexityRule{Threshold: 10}, &rules.LanguageSubsetRule{},
			&rules.CastRule{}, &rules.DefensiveRule{}, &rules.GlobalVarRule{},
			&rules.StyleRule{}, &rules.NamingRule{},
		}
	case "unit":
		return []rules.Rule{
			&rules.MultiExitRule{}, &rules.DynamicMemoryRule{},
			&rules.UninitializedRule{}, &rules.ShadowRule{},
			&rules.GlobalVarRule{}, &rules.PointerRule{},
			&rules.ImplicitConversionRule{}, &rules.GotoRule{},
			&rules.RecursionRule{},
		}
	default:
		return rules.DefaultRules()
	}
}

// ---------------------------------------------------------------------------
// Pipeline (BENCH_pipeline.json records these before/after engine changes)

// BenchmarkAssess measures the core assessment pipeline stage by stage:
// frontend parse, rule engine, metrics, and the full end-to-end run that
// AssessDefaultCorpus performs. CI runs this with -benchtime=1x as a
// smoke test; BENCH_pipeline.json tracks the recorded trajectory.
func BenchmarkAssess(b *testing.B) {
	b.Run("parse", func(b *testing.B) {
		benchCorpus(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, errs := ccparse.ParseAll(benchFS, ccparse.Options{})
			if len(errs) > 0 {
				b.Fatal(errs[0])
			}
		}
	})
	b.Run("rules", func(b *testing.B) {
		units := benchCorpus(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx := rules.NewContext(units)
			if len(rules.Run(ctx, rules.DefaultRules())) == 0 {
				b.Fatal("no findings")
			}
		}
	})
	b.Run("metrics", func(b *testing.B) {
		units := benchCorpus(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fw := metrics.Analyze(units)
			arch := metrics.AnalyzeArch(units)
			if fw.TotalFunc == 0 || len(arch) == 0 {
				b.Fatal("empty metrics")
			}
		}
	})
	b.Run("end-to-end", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := core.NewAssessor(core.DefaultConfig())
			if err := a.LoadDefaultCorpus(); err != nil {
				b.Fatal(err)
			}
			as := a.Assess()
			if len(as.Observations) != 14 {
				b.Fatal("observations")
			}
		}
	})
}

// BenchmarkDeltaAssess measures warm re-assessment after a 1-file edit
// against a cold full run over the same corpus — the incremental
// engine's headline number (BENCH_pipeline.json tracks the ratio). Both
// sub-benchmarks start from an already-parsed corpus: "full" reloads and
// re-assesses everything, "delta-1file" applies a single-file edit via
// ApplyDelta and re-assesses warm.
func BenchmarkDeltaAssess(b *testing.B) {
	makeCorpus := func() *srcfile.FileSet {
		return apollocorpus.GenerateDefault()
	}
	// Two body variants so every iteration is a real edit (identical
	// content would take the unchanged fast path).
	variant := func(i int) string {
		if i%2 == 0 {
			return "\nint delta_bench_probe(int x) { if (x > 1) { return x; } return -x; }\n"
		}
		return "\nint delta_bench_probe(int x) { while (x > 1) { x--; } return x; }\n"
	}

	b.Run("full", func(b *testing.B) {
		fs := makeCorpus()
		victim := fs.Files()[len(fs.Files())/2]
		base := victim.Src
		for i := 0; i < b.N; i++ {
			victim.Src = base + variant(i)
			a := core.NewAssessor(core.DefaultConfig())
			if err := a.LoadFileSet(fs); err != nil {
				b.Fatal(err)
			}
			if as := a.Assess(); len(as.Observations) != 14 {
				b.Fatal("observations")
			}
		}
	})

	b.Run("delta-1file", func(b *testing.B) {
		fs := makeCorpus()
		victim := fs.Files()[len(fs.Files())/2]
		base := victim.Src
		a := core.NewAssessor(core.DefaultConfig())
		if err := a.LoadFileSet(fs); err != nil {
			b.Fatal(err)
		}
		a.Assess()
		// Warm-up edit: the probe function's first appearance changes the
		// cross-file environment and forces one full rule re-check; apply
		// it outside the timed region so iterations measure steady state.
		if _, err := a.ApplyDelta(core.Delta{Changed: []*srcfile.File{{
			Path: victim.Path, Src: base + variant(1),
		}}}); err != nil {
			b.Fatal(err)
		}
		a.Assess()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := a.ApplyDelta(core.Delta{Changed: []*srcfile.File{{
				Path: victim.Path, Src: base + variant(i),
			}}})
			if err != nil {
				b.Fatal(err)
			}
			if res.Parsed != 1 {
				b.Fatalf("delta parsed %d files", res.Parsed)
			}
			if as := a.Assess(); len(as.Observations) != 14 {
				b.Fatal("observations")
			}
		}
	})
}

// BenchmarkBatchedDelta measures the batched commit path: editing k
// files as one ApplyDeltaBatch (one prepare, one journal-shaped commit,
// one projection invalidation, one warm re-assessment) against the same
// k edits applied and re-assessed one delta at a time — the serving
// path's cost for a CI bot that ships a whole commit per /delta request
// versus one request per file. BENCH_pipeline.json records the ratio
// under "parallel".
func BenchmarkBatchedDelta(b *testing.B) {
	const k = 16
	variant := func(i, j int) string {
		if (i+j)%2 == 0 {
			return "\nint batch_probe(int x) { if (x > 1) { return x; } return -x; }\n"
		}
		return "\nint batch_probe(int x) { while (x > 1) { x--; } return x; }\n"
	}
	// k victims spread across the corpus so the batch dirties several
	// shards, like a real multi-module commit.
	setup := func(b *testing.B) (*core.Assessor, []*srcfile.File, []string) {
		fs := apollocorpus.GenerateDefault()
		files := fs.Files()
		victims := make([]*srcfile.File, k)
		bases := make([]string, k)
		for j := 0; j < k; j++ {
			victims[j] = files[(j*len(files))/k]
			bases[j] = victims[j].Src
		}
		a := core.NewAssessor(core.DefaultConfig())
		if err := a.LoadFileSet(fs); err != nil {
			b.Fatal(err)
		}
		a.Assess()
		// Warm-up: the probes' first appearance changes the cross-file
		// environment and forces one full re-check; keep it untimed.
		var warm []core.Delta
		for j := 0; j < k; j++ {
			warm = append(warm, core.Delta{Changed: []*srcfile.File{{
				Path: victims[j].Path, Src: bases[j] + variant(1, j),
			}}})
		}
		if _, err := a.ApplyDeltaBatch(warm); err != nil {
			b.Fatal(err)
		}
		a.Assess()
		return a, victims, bases
	}

	b.Run("sequential-16x1", func(b *testing.B) {
		a, victims, bases := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < k; j++ {
				if _, err := a.ApplyDelta(core.Delta{Changed: []*srcfile.File{{
					Path: victims[j].Path, Src: bases[j] + variant(i, j),
				}}}); err != nil {
					b.Fatal(err)
				}
				if len(a.Findings()) == 0 {
					b.Fatal("no findings")
				}
			}
		}
	})

	b.Run("batched-1x16", func(b *testing.B) {
		a, victims, bases := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ds := make([]core.Delta, k)
			for j := 0; j < k; j++ {
				ds[j] = core.Delta{Changed: []*srcfile.File{{
					Path: victims[j].Path, Src: bases[j] + variant(i, j),
				}}}
			}
			res, err := a.ApplyDeltaBatch(ds)
			if err != nil {
				b.Fatal(err)
			}
			if res.Parsed != k {
				b.Fatalf("batch parsed %d files, want %d", res.Parsed, k)
			}
			if len(a.Findings()) == 0 {
				b.Fatal("no findings")
			}
		}
	})
}

// BenchmarkGeneratedScale measures the pipeline on corpusgen-generated
// trees far beyond the calibrated Apollo corpus: 1k and 10k files with
// injected ground-truth violations (the first at-scale numbers in
// BENCH_pipeline.json). "cold" is LoadFileSet + full Assess; the
// "delta-1file" variant applies a warm one-file edit to the 10k corpus
// and re-assesses, which is the serving path's steady state at scale.
func BenchmarkGeneratedScale(b *testing.B) {
	scales := []struct {
		name   string
		params corpusgen.Params
	}{
		// 10 modules × (99 C++ + 1 CUDA) = 1,000 files.
		{"1k-files-cold", corpusgen.Params{Modules: 10, FilesPerModule: 99,
			FuncsPerFile: 3, ViolationsPerFile: 2, CUDAFiles: 1}},
		// 20 modules × (499 C++ + 1 CUDA) = 10,000 files.
		{"10k-files-cold", corpusgen.Params{Modules: 20, FilesPerModule: 499,
			FuncsPerFile: 3, ViolationsPerFile: 2, CUDAFiles: 1}},
	}
	for _, sc := range scales {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			gen := corpusgen.New(sc.params, 26262)
			fs := gen.FileSet()
			bytes := 0
			for _, f := range fs.Files() {
				bytes += len(f.Src)
			}
			want := gen.Manifest().Total() // hoisted: Manifest() deep-copies
			b.SetBytes(int64(bytes))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := core.NewAssessor(core.DefaultConfig())
				if err := a.LoadFileSet(gen.FileSet()); err != nil {
					b.Fatal(err)
				}
				if n := len(a.Findings()); n < want {
					b.Fatalf("findings %d < manifest %d", n, want)
				}
			}
		})
	}

	// Parse-only at 10k files: isolates the frontend share of the cold
	// path (the []byte lexer fast path, shared interning, and arena
	// allocation show up here first; BENCH_pipeline.json "coldpath"
	// records the trajectory).
	b.Run("10k-files-parse", func(b *testing.B) {
		gen := corpusgen.New(corpusgen.Params{Modules: 20, FilesPerModule: 499,
			FuncsPerFile: 3, ViolationsPerFile: 2, CUDAFiles: 1}, 26262)
		fs := gen.FileSet()
		bytes := 0
		for _, f := range fs.Files() {
			bytes += len(f.Src)
		}
		b.SetBytes(int64(bytes))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			units, errs := ccparse.ParseAll(fs, ccparse.Options{})
			if len(errs) > 0 {
				b.Fatal(errs[0])
			}
			if len(units) != fs.Len() {
				b.Fatal("missing units")
			}
		}
	})

	b.Run("10k-files-delta-1file", func(b *testing.B) {
		gen := corpusgen.New(corpusgen.Params{Modules: 20, FilesPerModule: 499,
			FuncsPerFile: 3, ViolationsPerFile: 2, CUDAFiles: 1}, 26262)
		a := core.NewAssessor(core.DefaultConfig())
		if err := a.LoadFileSet(gen.FileSet()); err != nil {
			b.Fatal(err)
		}
		a.Findings()
		victim := gen.Paths()[len(gen.Paths())/2]
		base := gen.Source(victim)
		// Both variants define the same probe name so the cross-file
		// environment signature stays stable and iterations measure the
		// steady-state incremental path.
		variant := func(i int) string {
			if i%2 == 0 {
				return base + "\nfloat ScaleProbe(float x, int m) { if (m > 1) { x = x + 1.0f; } return x; }\n"
			}
			return base + "\nfloat ScaleProbe(float x, int m) { while (x > 0.5f * m) { x = x - 1.0f; } return x; }\n"
		}
		// Warm-up: the probe's first appearance changes the cross-file
		// environment signature and forces one full re-check.
		if _, err := a.ApplyDelta(core.Delta{Changed: []*srcfile.File{{
			Path: victim, Src: variant(1)}}}); err != nil {
			b.Fatal(err)
		}
		a.Findings()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.ApplyDelta(core.Delta{Changed: []*srcfile.File{{
				Path: victim, Src: variant(i)}}}); err != nil {
				b.Fatal(err)
			}
			if len(a.Findings()) == 0 {
				b.Fatal("no findings")
			}
		}
	})
}

// BenchmarkSnapshotLoad measures the persistent corpus store
// (internal/store) on the seed-26262 10k-file corpus, the scale the
// acceptance numbers in BENCH_pipeline.json ("store") are recorded at:
//
//   - snapshot-write: encode + atomic write of the full warm state;
//   - restore: snapshot load + warm-state reconstruction + the first
//     Findings/Metrics pass — the boot path, to be compared against the
//     10k-files-cold parse+assess number;
//   - restore-delta-1file: the steady-state 1-file delta on a restored
//     assessor. The restored caches must come back warm: this number is
//     directly comparable to 10k-files-delta-1file on a never-restarted
//     assessor.
func BenchmarkSnapshotLoad(b *testing.B) {
	params := corpusgen.Params{Modules: 20, FilesPerModule: 499,
		FuncsPerFile: 3, ViolationsPerFile: 2, CUDAFiles: 1}
	gen := corpusgen.New(params, 26262)
	warm := core.NewAssessor(core.DefaultConfig())
	if err := warm.LoadFileSet(gen.FileSet()); err != nil {
		b.Fatal(err)
	}
	want := len(warm.Findings())
	warm.Metrics()
	st, err := warm.ExportState()
	if err != nil {
		b.Fatal(err)
	}
	d, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cs, err := d.Corpus("bench")
	if err != nil {
		b.Fatal(err)
	}

	b.Run("10k-files-snapshot-write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n, err := cs.WriteSnapshot(st)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(n)
		}
	})
	if _, err := cs.WriteSnapshot(st); err != nil {
		b.Fatal(err)
	}

	b.Run("10k-files-restore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, _, err := cs.RecoverReadOnly(core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if n := len(a.Findings()); n != want {
				b.Fatalf("restored findings %d, want %d", n, want)
			}
			a.Metrics()
		}
	})

	b.Run("10k-files-restore-delta-1file", func(b *testing.B) {
		a, _, err := cs.RecoverReadOnly(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		a.Findings()
		victim := gen.Paths()[len(gen.Paths())/2]
		base := gen.Source(victim)
		// The same alternating probe as 10k-files-delta-1file, so the
		// two numbers compare like for like (steady state, stable
		// cross-file environment signature).
		variant := func(i int) string {
			if i%2 == 0 {
				return base + "\nfloat ScaleProbe(float x, int m) { if (m > 1) { x = x + 1.0f; } return x; }\n"
			}
			return base + "\nfloat ScaleProbe(float x, int m) { while (x > 0.5f * m) { x = x - 1.0f; } return x; }\n"
		}
		if _, err := a.ApplyDelta(core.Delta{Changed: []*srcfile.File{{
			Path: victim, Src: variant(1)}}}); err != nil {
			b.Fatal(err)
		}
		a.Findings()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.ApplyDelta(core.Delta{Changed: []*srcfile.File{{
				Path: victim, Src: variant(i)}}}); err != nil {
				b.Fatal(err)
			}
			if len(a.Findings()) == 0 {
				b.Fatal("no findings")
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Tables

// BenchmarkTable1CodingGuidelines measures the modeling/coding-guideline
// checker pass behind the paper's Table 1 verdicts.
func BenchmarkTable1CodingGuidelines(b *testing.B) {
	units := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := rules.NewContext(units)
		fs := rules.Run(ctx, rulesFor("coding"))
		if len(fs) == 0 {
			b.Fatal("no findings")
		}
	}
}

// BenchmarkTable2Architecture measures the architectural metrics behind
// the paper's Table 2 verdicts (sizes, interfaces, cohesion, coupling).
func BenchmarkTable2Architecture(b *testing.B) {
	units := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arch := metrics.AnalyzeArch(units)
		if len(arch) == 0 {
			b.Fatal("no modules")
		}
	}
}

// BenchmarkTable3UnitDesign measures the unit design & implementation
// checker pass behind the paper's Table 3 verdicts.
func BenchmarkTable3UnitDesign(b *testing.B) {
	units := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := rules.NewContext(units)
		fs := rules.Run(ctx, rulesFor("unit"))
		if len(fs) == 0 {
			b.Fatal("no findings")
		}
	}
}

// ---------------------------------------------------------------------------
// Figures

// BenchmarkFigure3Complexity measures the Lizard-equivalent complexity
// analysis over the full 220k-LOC corpus.
func BenchmarkFigure3Complexity(b *testing.B) {
	units := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw := metrics.Analyze(units)
		if fw.ModerateOrWorse != 554 {
			b.Fatalf("moderate-or-worse = %d", fw.ModerateOrWorse)
		}
	}
}

// BenchmarkFigure4CudaFindings measures the CUDA rule pass on the
// scale_bias_gpu excerpt.
func BenchmarkFigure4CudaFindings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs, err := core.Figure4()
		if err != nil || len(fs) == 0 {
			b.Fatalf("figure4: %v (%d findings)", err, len(fs))
		}
	}
}

// BenchmarkFigure5YoloCoverage measures the full coverage experiment:
// parse the YOLO corpus, instrument, interpret the test drivers, and
// compute statement/branch/MC-DC per file.
func BenchmarkFigure5YoloCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.Figure5(coverage.UniqueCause)
		if err != nil || len(res.Rows) != 8 {
			b.Fatalf("figure5: %v", err)
		}
	}
}

// BenchmarkFigure6StencilCoverage measures the cuda4cpu-style experiment:
// emulate the stencil kernels on the CPU under coverage instrumentation.
func BenchmarkFigure6StencilCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.Figure6()
		if err != nil || len(rows) != 2 {
			b.Fatalf("figure6: %v", err)
		}
	}
}

// BenchmarkFigure7ObjectDetection measures the six-library detection
// inference-time model.
func BenchmarkFigure7ObjectDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := core.Figure7()
		if len(rows) != 6 {
			b.Fatal("figure7 rows")
		}
	}
}

// BenchmarkFigure8aGEMM measures the CUTLASS-vs-cuBLAS GEMM sweep.
func BenchmarkFigure8aGEMM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.Figure8a()) == 0 {
			b.Fatal("figure8a rows")
		}
	}
}

// BenchmarkFigure8bConv measures the ISAAC-vs-cuDNN convolution sweep.
func BenchmarkFigure8bConv(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.Figure8b()) == 0 {
			b.Fatal("figure8b rows")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md)

// BenchmarkAblationMCDCMode compares unique-cause against masking MC/DC
// analysis cost on the Figure 5 pipeline.
func BenchmarkAblationMCDCMode(b *testing.B) {
	for _, mode := range []coverage.MCDCMode{coverage.UniqueCause, coverage.Masking} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Figure5(mode); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationISAACTuning compares the autotuned ISAAC model against
// the untuned first candidate across the Figure 8b sweep.
func BenchmarkAblationISAACTuning(b *testing.B) {
	gpu := gpusim.TitanV()
	shapes := core.Figure8bShapes()
	for _, lib := range []*gpusim.Library{gpusim.ISAAC(gpu), gpusim.ISAACUntuned(gpu)} {
		lib := lib
		b.Run(lib.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, s := range shapes {
					if lib.ConvTime(s) <= 0 {
						b.Fatal("non-positive time")
					}
				}
			}
		})
	}
}

// BenchmarkAblationRulePasses compares a single shared Context across all
// rules against rebuilding the Context per rule (the cross-file indexes
// dominate; the engine shares them by design).
func BenchmarkAblationRulePasses(b *testing.B) {
	units := benchCorpus(b)
	b.Run("shared-context", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := rules.NewContext(units)
			rules.Run(ctx, rules.DefaultRules())
		}
	})
	b.Run("context-per-rule", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range rules.DefaultRules() {
				ctx := rules.NewContext(units)
				r.Check(ctx)
			}
		}
	})
}

// BenchmarkAblationCorpusScale measures generation+parsing+analysis
// throughput against corpus size.
func BenchmarkAblationCorpusScale(b *testing.B) {
	scales := []struct {
		name string
		n    int // number of modules from the default spec
	}{{"2-modules", 2}, {"5-modules", 5}, {"10-modules", 10}}
	for _, sc := range scales {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			specs := apollocorpus.DefaultSpec()[:sc.n]
			for i := 0; i < b.N; i++ {
				fs := apollocorpus.Generate(specs, 1)
				units, errs := ccparse.ParseAll(fs, ccparse.Options{})
				if len(errs) > 0 {
					b.Fatal(errs[0])
				}
				metrics.Analyze(units)
			}
		})
	}
}

// BenchmarkExtensionTestGen measures the coverage-guided test-vector
// search (Observation 10 remediation) on the YOLO activation dispatcher.
func BenchmarkExtensionTestGen(b *testing.B) {
	fs := apollocorpus.YoloCorpus()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		b.Fatal(errs[0])
	}
	var tus []*ccast.TranslationUnit
	for _, tu := range units {
		tus = append(tus, tu)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := testgen.Search(tus, "activate", testgen.Options{Budget: 400, Seed: 7})
		if err != nil || res.After.BranchPct() != 100 {
			b.Fatalf("search failed: %v", err)
		}
	}
}

// BenchmarkExtensionBrookAuto measures the GPU-subset conformance check
// over every CUDA kernel in the corpus (Observations 3-4 remediation).
func BenchmarkExtensionBrookAuto(b *testing.B) {
	units := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := brookauto.CheckUnits(units)
		if len(rs) == 0 {
			b.Fatal("no kernels")
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks

// BenchmarkParseCorpus isolates frontend throughput on the full corpus.
func BenchmarkParseCorpus(b *testing.B) {
	benchCorpus(b)
	bytes := 0
	for _, f := range benchFS.Files() {
		bytes += len(f.Src)
	}
	b.SetBytes(int64(bytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, errs := ccparse.ParseAll(benchFS, ccparse.Options{})
		if len(errs) > 0 {
			b.Fatal(errs[0])
		}
	}
}

// BenchmarkGenerateCorpus isolates the corpus generator.
func BenchmarkGenerateCorpus(b *testing.B) {
	specs := apollocorpus.DefaultSpec()
	for i := 0; i < b.N; i++ {
		fs := apollocorpus.Generate(specs, int64(i))
		if fs.Len() == 0 {
			b.Fatal("empty corpus")
		}
	}
}

// BenchmarkInterpreterYolo measures raw interpreter speed on the YOLO
// drivers without coverage instrumentation.
func BenchmarkInterpreterYolo(b *testing.B) {
	fs := apollocorpus.YoloCorpus()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		b.Fatal(errs[0])
	}
	var tus []*ccast.TranslationUnit
	for _, tu := range units {
		tus = append(tus, tu)
	}
	entries := apollocorpus.YoloEntryPoints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := cinterp.NewMachine(tus...)
		for _, e := range entries {
			m.Reset()
			if _, err := m.Call(e); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRealGEMM measures the actual CPU GEMM kernel (the compute
// backing the "two orders of magnitude" CPU baseline).
func BenchmarkRealGEMM(b *testing.B) {
	n := 128
	a := tensor.New(n, n)
	bb := tensor.New(n, n)
	c := tensor.New(n, n)
	for i := range a.Data {
		a.Data[i] = float32(i%7) - 3
		bb.Data[i] = float32(i%5) - 2
	}
	b.SetBytes(int64(3 * 4 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Gemm(1, a, bb, 0, c)
	}
}

// BenchmarkMicroYoloForward measures a real CPU inference of the micro
// detection network.
func BenchmarkMicroYoloForward(b *testing.B) {
	net := yolo.MicroYOLO()
	w := net.RandomWeights(1)
	in := tensor.New(3, 32, 32)
	for i := range in.Data {
		in.Data[i] = float32(i%13) / 13
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := net.Forward(in.Clone(), w)
		if err != nil {
			b.Fatal(err)
		}
		net.DecodeRegion(out, 0.3)
	}
}
