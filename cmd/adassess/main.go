// Command adassess runs the full ISO 26262 Part-6 assessment over the
// calibrated Apollo-like corpus — or over a real C/C++/CUDA tree via
// -dir — and prints the paper's Tables 1-3 (with verdicts and
// quantitative evidence), Observations 1-14, the Figure 4 CUDA
// findings, and the certification gap list.
//
// Usage:
//
//	adassess [-asil D] [-table 1|2|3|all] [-dir PATH] [-figure4] [-obs] [-gaps] [-csv] [-shards N]
//
// -shards prints per-shard (module) statistics — files, source bytes,
// findings — for operator visibility into shard balance, which is what
// warm delta latency scales with: N > 0 shows the N largest shards by
// file count, -1 shows all, 0 (default) disables the table.
//
// Flags are validated before any work happens: bad values exit 2 with a
// message on stderr and no partial output. Runtime failures exit 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/core"
	"repro/internal/iso26262"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "adassess: %v\n", err)
		os.Exit(code)
	}
}

func run() (int, error) {
	asilFlag := flag.String("asil", "D", "target ASIL (QM, A, B, C, D)")
	tableFlag := flag.String("table", "all", "which table to print: 1, 2, 3, or all")
	dirFlag := flag.String("dir", "", "assess a real C/C++/CUDA source tree instead of the generated corpus")
	fig4Flag := flag.Bool("figure4", false, "print the Figure 4 CUDA excerpt findings")
	obsFlag := flag.Bool("obs", true, "print Observations 1-14")
	gapsFlag := flag.Bool("gaps", true, "print the certification gap list")
	traceFlag := flag.Bool("trace", false, "print the requirement-to-checker traceability matrix")
	csvFlag := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	seedFlag := flag.Int64("seed", 26262, "corpus generation seed")
	shardsFlag := flag.Int("shards", 0, "print per-shard (module) stats: N largest shards, -1 for all, 0 to disable")
	cpuProfileFlag := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfileFlag := flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
	flag.Parse()

	// Validate every flag before doing any work.
	asil, err := iso26262.ParseASIL(*asilFlag)
	if err != nil {
		return 2, err
	}
	switch *tableFlag {
	case "1", "2", "3", "all":
	default:
		return 2, fmt.Errorf("unknown -table %q (want 1, 2, 3, or all)", *tableFlag)
	}
	if *shardsFlag < -1 {
		return 2, fmt.Errorf("-shards must be -1 (all), 0 (off), or a positive count (got %d)", *shardsFlag)
	}
	if flag.NArg() > 0 {
		return 2, fmt.Errorf("unexpected arguments: %v", flag.Args())
	}

	// Profiling covers everything from corpus load through the rendered
	// report — the cold-path pipeline the benchmarks measure.
	if *cpuProfileFlag != "" {
		f, err := os.Create(*cpuProfileFlag)
		if err != nil {
			return 1, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return 1, err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfileFlag != "" {
		defer func() {
			f, err := os.Create(*memProfileFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "adassess: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the dump
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "adassess: -memprofile: %v\n", err)
			}
		}()
	}

	cfg := core.DefaultConfig()
	cfg.TargetASIL = asil
	cfg.Seed = *seedFlag

	a := core.NewAssessor(cfg)
	if *dirFlag != "" {
		fmt.Printf("Loading and parsing %s...\n", *dirFlag)
		if err := a.LoadDir(*dirFlag); err != nil {
			return 1, err
		}
	} else {
		fmt.Println("Generating and parsing the Apollo-like corpus...")
		if err := a.LoadDefaultCorpus(); err != nil {
			return 1, err
		}
	}
	fw := a.Metrics()
	fmt.Printf("Corpus: %d files, %d LOC, %d functions across %d modules\n\n",
		len(fw.Files), fw.TotalLOC, fw.TotalFunc, len(fw.Modules))

	as := a.Assess()

	emit := func(t *report.Table) {
		if *csvFlag {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
	printTable := func(title string, group []iso26262.TopicAssessment) {
		t := report.NewTable(title, "#", "Topic", "Rec@"+asil.String(), "Verdict", "Violations", "Effort", "Evidence")
		for _, ta := range group {
			t.AddRow(ta.Topic.Item, ta.Topic.Name,
				ta.Topic.RecommendationFor(asil).String(),
				ta.Verdict.String(), ta.Violations, ta.Effort.String(), ta.Evidence)
		}
		emit(t)
	}

	if *shardsFlag != 0 {
		stats := a.ShardStats()
		// Largest shards first (by files, ties by module name) — the
		// imbalance view: warm delta latency follows the dirty shard.
		sort.SliceStable(stats, func(i, j int) bool {
			if stats[i].Files != stats[j].Files {
				return stats[i].Files > stats[j].Files
			}
			return stats[i].Module < stats[j].Module
		})
		shown := stats
		if *shardsFlag > 0 && *shardsFlag < len(stats) {
			shown = stats[:*shardsFlag]
		}
		t := report.NewTable(
			fmt.Sprintf("Shard layout — %d of %d module shards (largest first)", len(shown), len(stats)),
			"Shard", "Files", "Bytes", "Findings")
		for _, s := range shown {
			t.AddRow(s.Module, s.Files, s.Bytes, s.Findings)
		}
		emit(t)
	}

	if *tableFlag == "1" || *tableFlag == "all" {
		printTable("Table 1 — Modeling/coding guidelines (ISO26262-6 Table 1)", as.Coding)
	}
	if *tableFlag == "2" || *tableFlag == "all" {
		printTable("Table 2 — Architectural design (ISO26262-6 Table 3)", as.Arch)
	}
	if *tableFlag == "3" || *tableFlag == "all" {
		printTable("Table 3 — Unit design & implementation (ISO26262-6 Table 8)", as.Unit)
	}

	if *fig4Flag {
		findings, err := core.Figure4()
		if err != nil {
			return 1, err
		}
		t := report.NewTable("Figure 4 — findings on the scale_bias_gpu CUDA excerpt",
			"Line", "Rule", "Finding")
		for _, f := range findings {
			t.AddRow(f.Line, f.Rule, f.Msg)
		}
		emit(t)
	}

	if *obsFlag {
		fmt.Println("Observations (paper Section 3):")
		for _, o := range as.Observations {
			fmt.Printf("  Observation %2d: %s\n                  evidence: %s\n", o.Number, o.Text, o.Evidence)
		}
		fmt.Println()
	}

	if *traceFlag {
		fmt.Println("Traceability matrix (requirement → checker → findings → regeneration):")
		trace.Render(os.Stdout, trace.Build(a.Findings()))
		fmt.Println()
	}

	if *gapsFlag {
		gaps := as.Gaps()
		fmt.Printf("Certification gaps at %s: %d topics block compliance\n", asil, len(gaps))
		for _, g := range gaps {
			fmt.Printf("  - [%s item %d] %s (%s, remediation: %s)\n",
				tableName(g.Topic.Table), g.Topic.Item, g.Topic.Name, g.Verdict, g.Effort)
		}
	}
	return 0, nil
}

func tableName(t iso26262.TableID) string {
	switch t {
	case iso26262.TableCoding:
		return "T1"
	case iso26262.TableArch:
		return "T3"
	default:
		return "T8"
	}
}
