// Command adassess runs the full ISO 26262 Part-6 assessment over the
// calibrated Apollo-like corpus and prints the paper's Tables 1-3 (with
// verdicts and quantitative evidence), Observations 1-14, the Figure 4
// CUDA findings, and the certification gap list.
//
// Usage:
//
//	adassess [-asil D] [-table 1|2|3|all] [-figure4] [-obs] [-gaps] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/iso26262"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	asilFlag := flag.String("asil", "D", "target ASIL (QM, A, B, C, D)")
	tableFlag := flag.String("table", "all", "which table to print: 1, 2, 3, or all")
	fig4Flag := flag.Bool("figure4", false, "print the Figure 4 CUDA excerpt findings")
	obsFlag := flag.Bool("obs", true, "print Observations 1-14")
	gapsFlag := flag.Bool("gaps", true, "print the certification gap list")
	traceFlag := flag.Bool("trace", false, "print the requirement-to-checker traceability matrix")
	csvFlag := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	seedFlag := flag.Int64("seed", 26262, "corpus generation seed")
	flag.Parse()

	asil, err := iso26262.ParseASIL(*asilFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := core.DefaultConfig()
	cfg.TargetASIL = asil
	cfg.Seed = *seedFlag

	a := core.NewAssessor(cfg)
	fmt.Println("Generating and parsing the Apollo-like corpus...")
	if err := a.LoadDefaultCorpus(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fw := a.Metrics()
	fmt.Printf("Corpus: %d files, %d LOC, %d functions across %d modules\n\n",
		len(fw.Files), fw.TotalLOC, fw.TotalFunc, len(fw.Modules))

	as := a.Assess()

	emit := func(t *report.Table) {
		if *csvFlag {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
	printTable := func(title string, group []iso26262.TopicAssessment) {
		t := report.NewTable(title, "#", "Topic", "Rec@"+asil.String(), "Verdict", "Violations", "Effort", "Evidence")
		for _, ta := range group {
			t.AddRow(ta.Topic.Item, ta.Topic.Name,
				ta.Topic.RecommendationFor(asil).String(),
				ta.Verdict.String(), ta.Violations, ta.Effort.String(), ta.Evidence)
		}
		emit(t)
	}

	switch *tableFlag {
	case "1":
		printTable("Table 1 — Modeling/coding guidelines (ISO26262-6 Table 1)", as.Coding)
	case "2":
		printTable("Table 2 — Architectural design (ISO26262-6 Table 3)", as.Arch)
	case "3":
		printTable("Table 3 — Unit design & implementation (ISO26262-6 Table 8)", as.Unit)
	case "all":
		printTable("Table 1 — Modeling/coding guidelines (ISO26262-6 Table 1)", as.Coding)
		printTable("Table 2 — Architectural design (ISO26262-6 Table 3)", as.Arch)
		printTable("Table 3 — Unit design & implementation (ISO26262-6 Table 8)", as.Unit)
	default:
		fmt.Fprintf(os.Stderr, "unknown -table %q\n", *tableFlag)
		os.Exit(2)
	}

	if *fig4Flag {
		findings, err := core.Figure4()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t := report.NewTable("Figure 4 — findings on the scale_bias_gpu CUDA excerpt",
			"Line", "Rule", "Finding")
		for _, f := range findings {
			t.AddRow(f.Line, f.Rule, f.Msg)
		}
		emit(t)
	}

	if *obsFlag {
		fmt.Println("Observations (paper Section 3):")
		for _, o := range as.Observations {
			fmt.Printf("  Observation %2d: %s\n                  evidence: %s\n", o.Number, o.Text, o.Evidence)
		}
		fmt.Println()
	}

	if *traceFlag {
		fmt.Println("Traceability matrix (requirement → checker → findings → regeneration):")
		trace.Render(os.Stdout, trace.Build(a.Findings()))
		fmt.Println()
	}

	if *gapsFlag {
		gaps := as.Gaps()
		fmt.Printf("Certification gaps at %s: %d topics block compliance\n", asil, len(gaps))
		for _, g := range gaps {
			fmt.Printf("  - [%s item %d] %s (%s, remediation: %s)\n",
				tableName(g.Topic.Table), g.Topic.Item, g.Topic.Name, g.Verdict, g.Effort)
		}
	}
}

func tableName(t iso26262.TableID) string {
	switch t {
	case iso26262.TableCoding:
		return "T1"
	case iso26262.TableArch:
		return "T3"
	default:
		return "T8"
	}
}
