// Command adbrook checks every CUDA kernel in the corpus against the
// Brook-Auto-inspired certification-friendly GPU subset (the remediation
// the paper advocates for Observations 3-4) and prints per-kernel verdicts
// plus the Brook-style stream signature each kernel would have after
// porting to a pointer-free GPU language.
//
// Usage:
//
//	adbrook [-sample] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apollocorpus"
	"repro/internal/brookauto"
	"repro/internal/ccparse"
	"repro/internal/report"
	"repro/internal/srcfile"
)

func main() {
	sampleFlag := flag.Bool("sample", false, "check only the Figure 4 scale_bias sample")
	seedFlag := flag.Int64("seed", 26262, "corpus generation seed")
	flag.Parse()

	var fs *srcfile.FileSet
	if *sampleFlag {
		fs = srcfile.NewFileSet()
		fs.Add(apollocorpus.ScaleBiasSample())
	} else {
		fs = apollocorpus.Generate(apollocorpus.DefaultSpec(), *seedFlag)
	}
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "parse errors: %v\n", errs[0])
		os.Exit(1)
	}

	reports := brookauto.CheckUnits(units)
	t := report.NewTable("Brook-Auto GPU subset conformance",
		"Kernel", "File", "Verdict", "Violations")
	conforming := 0
	for _, r := range reports {
		verdict := "conforming"
		if !r.Conforming() {
			verdict = "violations"
		} else {
			conforming++
		}
		t.AddRow(r.Kernel, r.File, verdict, len(r.Violations))
	}
	t.Render(os.Stdout)
	fmt.Printf("\n%d/%d kernels fit the subset as written.\n\n", conforming, len(reports))

	for _, r := range reports {
		for _, v := range r.Violations {
			fmt.Printf("  %s:%d [%s] %s\n", r.File, v.Line, v.Rule, v.Msg)
		}
	}
	fmt.Println("Proposed Brook-style stream signatures (pointer-free port):")
	for _, r := range reports {
		if r.StreamSignature != "" {
			fmt.Printf("  %s\n", r.StreamSignature)
		}
	}
	fmt.Println("\nNote: even conforming kernels still need the host side ported —")
	fmt.Println("cudaMalloc and raw device pointers are what Brook Auto eliminates.")
}
