// Command adcomplexity regenerates the paper's Figure 3: per-module lines
// of code, function counts, and the number of functions above the
// cyclomatic-complexity thresholds 10, 20, and 50.
//
// Usage:
//
//	adcomplexity [-csv] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	csvFlag := flag.Bool("csv", false, "emit CSV instead of aligned text")
	seedFlag := flag.Int64("seed", 26262, "corpus generation seed")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seedFlag
	a := core.NewAssessor(cfg)
	if err := a.LoadDefaultCorpus(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rows := a.Figure3()

	t := report.NewTable("Figure 3 — Complexity, LOC, and functions per Apollo module",
		"Module", "LOC", "Functions", "CCN>10", "CCN>20", "CCN>50")
	total10 := 0
	for _, r := range rows {
		t.AddRow(r.Module, r.LOC, r.Functions, r.Over10, r.Over20, r.Over50)
		total10 += r.Over10
	}
	if *csvFlag {
		t.CSV(os.Stdout)
	} else {
		t.Render(os.Stdout)
		fmt.Println()
		bars := report.NewBarChart("Functions with CCN > 10 per module")
		for _, r := range rows {
			bars.Add(r.Module, float64(r.Over10))
		}
		bars.Render(os.Stdout)
	}
	fmt.Printf("\nTotal moderate-or-worse (CCN >= 11) functions: %d (paper: 554)\n", total10)
}
