// Command adcorpus materializes the synthetic Apollo-like corpus to disk
// for inspection or for use with external tools, and prints its summary
// statistics.
//
// Usage:
//
//	adcorpus [-out DIR] [-seed N] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/apollocorpus"
	"repro/internal/ccparse"
	"repro/internal/metrics"
	"repro/internal/report"
)

func main() {
	outFlag := flag.String("out", "", "directory to write the corpus to (omit to skip writing)")
	seedFlag := flag.Int64("seed", 26262, "generation seed")
	statsFlag := flag.Bool("stats", true, "print corpus statistics")
	flag.Parse()

	fs := apollocorpus.Generate(apollocorpus.DefaultSpec(), *seedFlag)

	if *outFlag != "" {
		for _, f := range fs.Files() {
			dst := filepath.Join(*outFlag, filepath.FromSlash(f.Path))
			if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := os.WriteFile(dst, []byte(f.Src), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("Wrote %d files to %s\n", fs.Len(), *outFlag)
	}

	if *statsFlag {
		units, errs := ccparse.ParseAll(fs, ccparse.Options{})
		if len(errs) > 0 {
			fmt.Fprintf(os.Stderr, "parse errors: %d (first: %v)\n", len(errs), errs[0])
			os.Exit(1)
		}
		fw := metrics.Analyze(units)
		t := report.NewTable("Synthetic Apollo-like corpus", "Module", "Files", "LOC", "NLOC", "Functions", "MaxCCN")
		for _, m := range fw.Modules {
			t.AddRow(m.Name, m.Files, m.LOC, m.NLOC, m.Functions, m.MaxCCN)
		}
		t.Render(os.Stdout)
		fmt.Printf("\nTotal: %d LOC, %d functions, %d with CCN>=11 (calibration target 554)\n",
			fw.TotalLOC, fw.TotalFunc, fw.ModerateOrWorse)
	}
}
