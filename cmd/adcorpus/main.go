// Command adcorpus materializes the synthetic Apollo-like corpus to disk
// for inspection or for use with external tools, and prints its summary
// statistics.
//
// Usage:
//
//	adcorpus [-out DIR] [-seed N] [-stats]
//
// Errors go to stderr with a nonzero exit code; the summary table is
// printed only after every requested action succeeded.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/apollocorpus"
	"repro/internal/ccparse"
	"repro/internal/metrics"
	"repro/internal/report"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "adcorpus: %v\n", err)
		os.Exit(code)
	}
}

func run() (int, error) {
	outFlag := flag.String("out", "", "directory to write the corpus to (omit to skip writing)")
	seedFlag := flag.Int64("seed", 26262, "generation seed")
	statsFlag := flag.Bool("stats", true, "print corpus statistics")
	flag.Parse()
	if flag.NArg() > 0 {
		return 2, fmt.Errorf("unexpected arguments: %v", flag.Args())
	}

	fs := apollocorpus.Generate(apollocorpus.DefaultSpec(), *seedFlag)

	if *outFlag != "" {
		for _, f := range fs.Files() {
			dst := filepath.Join(*outFlag, filepath.FromSlash(f.Path))
			if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
				return 1, err
			}
			if err := os.WriteFile(dst, []byte(f.Src), 0o644); err != nil {
				return 1, err
			}
		}
		fmt.Printf("Wrote %d files to %s\n", fs.Len(), *outFlag)
	}

	if *statsFlag {
		units, errs := ccparse.ParseAll(fs, ccparse.Options{})
		if len(errs) > 0 {
			return 1, fmt.Errorf("parse errors: %d (first: %v)", len(errs), errs[0])
		}
		fw := metrics.Analyze(units)
		t := report.NewTable("Synthetic Apollo-like corpus", "Module", "Files", "LOC", "NLOC", "Functions", "MaxCCN")
		for _, m := range fw.Modules {
			t.AddRow(m.Name, m.Files, m.LOC, m.NLOC, m.Functions, m.MaxCCN)
		}
		t.Render(os.Stdout)
		fmt.Printf("\nTotal: %d LOC, %d functions, %d with CCN>=11 (calibration target 554)\n",
			fw.TotalLOC, fw.TotalFunc, fw.ModerateOrWorse)
	}
	return 0, nil
}
