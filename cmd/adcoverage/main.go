// Command adcoverage regenerates the paper's coverage figures:
//
//	-figure 5: statement/branch/MC-DC coverage per YOLO file, running the
//	           bundled test drivers on the interpreter (RapiCover stand-in);
//	-figure 6: statement/branch coverage of the 2D/3D stencil CUDA kernels
//	           executed on the CPU via the cuda4cpu-style emulator.
//
// Usage:
//
//	adcoverage [-figure 5|6|all] [-mcdc unique-cause|masking] [-csv]
//
// Flags are validated before any work happens: bad values exit 2 with a
// message on stderr and no partial output. Runtime failures exit 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/report"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "adcoverage: %v\n", err)
		os.Exit(code)
	}
}

func run() (int, error) {
	figFlag := flag.String("figure", "all", "which figure to regenerate: 5, 6, or all")
	modeFlag := flag.String("mcdc", "unique-cause", "MC/DC analysis mode: unique-cause or masking")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Parse()

	var mode coverage.MCDCMode
	switch *modeFlag {
	case "unique-cause":
		mode = coverage.UniqueCause
	case "masking":
		mode = coverage.Masking
	default:
		return 2, fmt.Errorf("unknown -mcdc %q (want unique-cause or masking)", *modeFlag)
	}
	switch *figFlag {
	case "5", "6", "all":
	default:
		return 2, fmt.Errorf("unknown -figure %q (want 5, 6, or all)", *figFlag)
	}
	if flag.NArg() > 0 {
		return 2, fmt.Errorf("unexpected arguments: %v", flag.Args())
	}

	emit := func(t *report.Table) {
		if *csvFlag {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}

	if *figFlag == "5" || *figFlag == "all" {
		res, err := core.Figure5(mode)
		if err != nil {
			return 1, err
		}
		t := report.NewTable(
			fmt.Sprintf("Figure 5 — YOLO CPU coverage per file (%s MC/DC, uncalled functions excluded)", mode),
			"File", "Statement %", "Branch %", "MC/DC %")
		for _, r := range res.Rows {
			t.AddRow(r.File, r.StmtPct, r.BranchPct, r.MCDCPct)
		}
		t.AddRow("AVERAGE", res.AvgStmt, res.AvgBranch, res.AvgMCDC)
		emit(t)
		fmt.Printf("Paper reference: averages 83%% / 75%% / 61%%; minima 19%% / 37%% / 10%%\n\n")
	}

	if *figFlag == "6" || *figFlag == "all" {
		rows, err := core.Figure6()
		if err != nil {
			return 1, err
		}
		t := report.NewTable("Figure 6 — stencil CUDA kernels run on CPU (cuda4cpu methodology)",
			"Kernel", "Statement %", "Branch %")
		for _, r := range rows {
			t.AddRow(r.Kernel, r.StmtPct, r.BranchPct)
		}
		emit(t)
		fmt.Println("Paper reference: full statement/branch coverage is not achieved.")
	}
	return 0, nil
}
