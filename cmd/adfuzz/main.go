// Command adfuzz is the differential engine fuzzer: it generates a
// seeded Apollo-shaped corpus with injected, ground-truth-labeled rule
// violations (internal/corpusgen), applies a random sequence of file
// deltas (add / edit / remove), and at every step asserts that the
// sequential reference engine, the fused parallel engine, the warm
// sharded assessor, the flat incremental rule engine, and the adserve
// HTTP service all produce byte-identical findings that exactly match
// the injected-violation manifest. A -skew above zero generates a
// shard-imbalanced corpus (zipf-ish module fan) to exercise the sharded
// warm path under the layouts it exists for.
//
// Usage:
//
//	adfuzz [-seed 1] [-steps 50] [-modules 4] [-files 4] [-funcs 5]
//	       [-violations 3] [-cuda 1] [-skew 0] [-http=true] [-recover]
//	       [-batch N] [-v]
//
// -recover adds the persistent-store leg: every delta is journaled into
// a temporary data directory, every step recovers a sixth state from
// disk (snapshot + journal replay) and byte-compares findings, report,
// and shard stats, compaction fires mid-run, and the run ends with a
// truncated-journal crash simulation.
//
// -batch N adds the batched-delta leg: a second warm assessor commits
// the same mutation sequence N deltas at a time through ApplyDeltaBatch
// and must byte-match the one-at-a-time path at every flush boundary.
//
// A run is a pure function of its flags: re-running with the same seed
// replays the identical corpus and mutation sequence, so a failure
// printed by one run is reproduced exactly by copying its command line.
// Exit status: 0 when every step verified, 1 on divergence, 2 on bad
// flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/corpusgen"
	"repro/internal/difftest"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "adfuzz: %v\n", err)
		os.Exit(code)
	}
}

func run() (int, error) {
	seedFlag := flag.Int64("seed", 1, "master seed (replays deterministically)")
	stepsFlag := flag.Int("steps", 50, "number of mutation steps")
	modulesFlag := flag.Int("modules", 4, "modules in the generated corpus")
	filesFlag := flag.Int("files", 4, "initial C++ files per module")
	funcsFlag := flag.Int("funcs", 5, "clean filler functions per file")
	violFlag := flag.Int("violations", 3, "injected violations per file")
	cudaFlag := flag.Int("cuda", 1, "CUDA files per module")
	skewFlag := flag.Float64("skew", 0, "zipf-ish module-size skew (0 = uniform)")
	httpFlag := flag.Bool("http", true, "include the adserve HTTP path")
	recoverFlag := flag.Bool("recover", false, "include the persistent-store crash-recovery path")
	batchFlag := flag.Int("batch", 0, "include the batched-delta path, flushing ApplyDeltaBatch every N steps (0 = off)")
	verboseFlag := flag.Bool("v", false, "log every step")
	flag.Parse()

	if flag.NArg() > 0 {
		return 2, fmt.Errorf("unexpected arguments: %v", flag.Args())
	}
	if *stepsFlag < 0 {
		return 2, fmt.Errorf("-steps must be >= 0 (got %d)", *stepsFlag)
	}
	if *modulesFlag <= 0 || *filesFlag <= 0 {
		return 2, fmt.Errorf("-modules and -files must be positive")
	}
	if *funcsFlag < 0 || *violFlag < 0 || *cudaFlag < 0 {
		return 2, fmt.Errorf("-funcs, -violations, and -cuda must be >= 0")
	}
	if *skewFlag < 0 {
		return 2, fmt.Errorf("-skew must be >= 0 (got %g)", *skewFlag)
	}
	if *batchFlag < 0 {
		return 2, fmt.Errorf("-batch must be >= 0 (got %d)", *batchFlag)
	}

	cfg := difftest.Config{
		Seed:  *seedFlag,
		Steps: *stepsFlag,
		Params: corpusgen.Params{
			Modules:           *modulesFlag,
			FilesPerModule:    *filesFlag,
			FuncsPerFile:      *funcsFlag,
			ViolationsPerFile: *violFlag,
			CUDAFiles:         *cudaFlag,
			ModuleSkew:        *skewFlag,
		},
		HTTP:    *httpFlag,
		Recover: *recoverFlag,
		Batch:   *batchFlag,
	}
	if *verboseFlag {
		cfg.Logf = func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		}
	}

	start := time.Now()
	res, err := difftest.Run(cfg)
	if err != nil {
		return 1, fmt.Errorf("divergence (reproduce with -seed %d -steps %d): %v",
			*seedFlag, *stepsFlag, err)
	}
	paths := 4
	if *httpFlag {
		paths++
	}
	if *recoverFlag {
		paths++
	}
	if *batchFlag > 0 {
		paths++
	}
	fmt.Printf("adfuzz: OK — %d steps verified in %v\n", res.Steps, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  final corpus: %d files, %d findings (all byte-identical across %d paths, oracle-exact)\n",
		res.Files, res.Findings, paths)
	fmt.Printf("  mutations: %d add, %d edit, %d remove\n",
		res.Mutations[corpusgen.MutAdd], res.Mutations[corpusgen.MutEdit],
		res.Mutations[corpusgen.MutRemove])
	if *recoverFlag {
		torn := "torn-tail crash simulation skipped (final step left no journal tail)"
		if res.TornTailChecked {
			torn = "torn-tail crash simulation passed"
		}
		fmt.Printf("  store: %d compactions, %s\n", res.Compactions, torn)
	}
	if *batchFlag > 0 {
		fmt.Printf("  batch: %d ApplyDeltaBatch flushes of up to %d deltas, all byte-identical\n",
			res.BatchFlushes, *batchFlag)
	}
	return 0, nil
}
