// Command adlint machine-enforces this repo's own documented
// invariants: it runs the five project analyzers (aliasmut,
// arenaescape, detrange, lockorder, syncerr) and, by default, a
// curated set of `go vet` passes over the requested packages, merging
// everything into one diagnostic stream.
//
// Usage:
//
//	adlint [flags] [packages]
//
// Packages default to ./... . Exit status: 0 when clean, 1 when any
// diagnostic is reported or the analysis itself fails, 2 on flag or
// usage errors (matching the other cmds' flag-validation convention).
//
// Findings can be suppressed with a reasoned comment on (or directly
// above) the offending line:
//
//	//adlint:ignore <analyzer> <why this is safe>
//
// A suppression without a reason is itself a finding.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analyzers"
	"repro/internal/lint/load"
)

// vetPasses are the upstream go vet analyzers adlint runs alongside
// its own: the correctness subset whose findings are always bugs in
// this codebase (no style passes, nothing the repo would suppress).
var vetPasses = []string{"atomic", "bools", "copylocks", "lostcancel", "printf", "unreachable"}

// jsonDiag is one finding in -json output.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	Pos      string `json:"pos"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("adlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	list := fs.Bool("list", false, "list analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer subset to run (default: all)")
	vet := fs.Bool("vet", true, "also run the curated go vet passes ("+strings.Join(vetPasses, ",")+")")
	dir := fs.String("dir", ".", "module directory to load packages from")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: adlint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	suite := analyzers.All()
	if *runNames != "" {
		sel, unknown := analyzers.ByName(*runNames)
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "adlint: unknown analyzer(s): %s\n", strings.Join(unknown, ", "))
			fs.Usage()
			return 2
		}
		suite = sel
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, p := range patterns {
		if strings.HasPrefix(p, "-") {
			fmt.Fprintf(os.Stderr, "adlint: flags must precede packages (saw %q)\n", p)
			fs.Usage()
			return 2
		}
	}

	var diags []lint.Diag
	pkgs, err := load.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adlint: %v\n", err)
		return 1
	}
	diags, err = lint.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adlint: %v\n", err)
		return 1
	}
	if *vet {
		vd, err := runVet(*dir, patterns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adlint: go vet: %v\n", err)
			return 1
		}
		diags = append(diags, vd...)
		sortDiags(diags)
	}

	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{Analyzer: d.Analyzer, Pos: d.Pos.String(), Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "adlint: %v\n", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s\n", d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "adlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

func sortDiags(diags []lint.Diag) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// vetJSON mirrors `go vet -json` output: one object per package,
// mapping analyzer name to a diagnostic list.
type vetJSON map[string]map[string][]struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// runVet executes the curated go vet passes and adapts their JSON
// diagnostics into lint.Diags. go vet exits nonzero when it reports
// findings; that is not an execution error.
func runVet(dir string, patterns []string) ([]lint.Diag, error) {
	args := []string{"vet", "-json"}
	for _, p := range vetPasses {
		args = append(args, "-"+p)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	runErr := cmd.Run()

	// `go vet -json` writes the JSON stream to stderr, interleaved with
	// `# package` comment lines.
	var clean []string
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		clean = append(clean, line)
	}
	dec := json.NewDecoder(strings.NewReader(strings.Join(clean, "\n")))
	var diags []lint.Diag
	for dec.More() {
		var chunk vetJSON
		if err := dec.Decode(&chunk); err != nil {
			if runErr != nil {
				return nil, fmt.Errorf("%v\n%s", runErr, stderr.String())
			}
			return nil, err
		}
		pkgNames := make([]string, 0, len(chunk))
		for name := range chunk {
			pkgNames = append(pkgNames, name)
		}
		sort.Strings(pkgNames)
		for _, pkg := range pkgNames {
			anaNames := make([]string, 0, len(chunk[pkg]))
			for name := range chunk[pkg] {
				anaNames = append(anaNames, name)
			}
			sort.Strings(anaNames)
			for _, ana := range anaNames {
				for _, d := range chunk[pkg][ana] {
					diags = append(diags, lint.Diag{
						Analyzer: "vet/" + ana,
						Pos:      parsePosn(d.Posn),
						Message:  d.Message,
					})
				}
			}
		}
	}
	return diags, nil
}

// parsePosn splits "file:line:col" (the file part may contain colons
// on other platforms, so split from the right).
func parsePosn(s string) (pos token.Position) {
	parts := strings.Split(s, ":")
	if len(parts) >= 3 {
		pos.Filename = strings.Join(parts[:len(parts)-2], ":")
		fmt.Sscanf(parts[len(parts)-2], "%d", &pos.Line)
		fmt.Sscanf(parts[len(parts)-1], "%d", &pos.Column)
		return pos
	}
	pos.Filename = s
	return pos
}
