// Command adload is the sustained-load harness for adserve: it creates
// a fleet of generated corpora over the HTTP API, storms them with
// concurrent /delta streams (each worker editing its own module, so
// deltas land on disjoint shards) mixed with /report and /findings
// reads, and reports throughput, latency percentiles, and journal fsync
// amortization.
//
// Usage:
//
//	adload [-addr URL] [-data-dir DIR] [-corpora N] [-concurrency N]
//	       [-deltas N] [-batch N] [-read-every N] [-modules N]
//	       [-files N] [-seed N] [-json]
//
// -batch N puts N files in every /delta request; the server commits the
// request as one batch (one journal record, one fsync), so the scorecard's
// fsyncs-per-file-delta line shows the batching amortization directly.
//
// With -addr the harness drives a running adserve. Without it, adload
// spins up an in-process persistent server over -data-dir (a temporary
// directory by default) so a single command yields end-to-end numbers
// including journal durability costs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"

	"repro/internal/loadgen"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "adload: %v\n", err)
		os.Exit(1)
	}
}

func usageErr(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "adload: "+format+"\n", args...)
	os.Exit(2)
}

func run() error {
	addrFlag := flag.String("addr", "", "target server URL (e.g. http://127.0.0.1:8080); empty = in-process server")
	dataDirFlag := flag.String("data-dir", "", "data directory for the in-process server (default: a fresh temp dir)")
	corporaFlag := flag.Int("corpora", 4, "number of corpora to create and storm")
	concFlag := flag.Int("concurrency", 8, "concurrent workers")
	deltasFlag := flag.Int("deltas", 400, "total /delta requests to issue")
	batchFlag := flag.Int("batch", 1, "files per /delta request (each request commits as one batch: one journal record, one fsync)")
	readEveryFlag := flag.Int("read-every", 2, "each worker issues one GET per this many of its deltas (0 = no reads)")
	modulesFlag := flag.Int("modules", 8, "modules per generated base corpus")
	filesFlag := flag.Int("files", 4, "C++ files per module in the base corpus")
	seedFlag := flag.Int64("seed", 26262, "corpus generation seed (corpus i uses seed+i)")
	jsonFlag := flag.Bool("json", false, "emit the result as JSON instead of the human summary")
	flag.Parse()
	if flag.NArg() > 0 {
		usageErr("unexpected arguments: %v", flag.Args())
	}
	if *corporaFlag < 1 {
		usageErr("-corpora must be at least 1 (got %d)", *corporaFlag)
	}
	if *concFlag < 1 {
		usageErr("-concurrency must be at least 1 (got %d)", *concFlag)
	}
	if *deltasFlag < 1 {
		usageErr("-deltas must be at least 1 (got %d)", *deltasFlag)
	}
	if *batchFlag < 1 {
		usageErr("-batch must be at least 1 (got %d)", *batchFlag)
	}
	if *readEveryFlag < 0 {
		usageErr("-read-every must not be negative (got %d)", *readEveryFlag)
	}
	if *modulesFlag < 1 || *filesFlag < 1 {
		usageErr("-modules and -files must be at least 1")
	}
	if *addrFlag != "" && *dataDirFlag != "" {
		usageErr("-data-dir applies only to the in-process server; drop it when using -addr")
	}

	cfg := loadgen.Config{
		Corpora:        *corporaFlag,
		Concurrency:    *concFlag,
		Deltas:         *deltasFlag,
		Batch:          *batchFlag,
		ReadEvery:      *readEveryFlag,
		Modules:        *modulesFlag,
		FilesPerModule: *filesFlag,
		Seed:           *seedFlag,
	}

	baseURL := *addrFlag
	client := http.DefaultClient
	if baseURL == "" {
		dir := *dataDirFlag
		if dir == "" {
			tmp, err := os.MkdirTemp("", "adload-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		d, err := store.Open(dir, store.Options{})
		if err != nil {
			return err
		}
		svc, _, err := service.NewWithStore(d)
		if err != nil {
			return err
		}
		ts := httptest.NewServer(svc.Handler())
		defer func() {
			ts.Close()
			_ = svc.Close()
		}()
		baseURL = ts.URL
		client = ts.Client()
		fmt.Fprintf(os.Stderr, "adload: in-process server over %s\n", dir)
	}

	baseFiles, err := loadgen.Setup(client, baseURL, cfg)
	if err != nil {
		return err
	}
	res, err := loadgen.Run(client, baseURL, cfg)
	if err != nil {
		return err
	}
	res.BaseFiles = baseFiles
	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Print(res.String())
	if res.Errors > 0 {
		return fmt.Errorf("%d requests failed", res.Errors)
	}
	return nil
}
