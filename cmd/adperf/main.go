// Command adperf regenerates the paper's performance comparisons:
//
//	-figure 7:  Apollo object detection (tiny-YOLO) inference time per
//	            library: closed-source cuDNN/cuBLAS vs open-source
//	            ISAAC/CUTLASS vs CPU ATLAS/OpenBLAS;
//	-figure 8a: CUTLASS vs cuBLAS relative GEMM performance;
//	-figure 8b: ISAAC vs cuDNN relative convolution performance.
//
// Usage:
//
//	adperf [-figure 7|8a|8b|all] [-csv]
//
// Flags are validated before any work happens: bad values exit 2 with a
// message on stderr and no partial output.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "adperf: %v\n", err)
		os.Exit(code)
	}
}

func run() (int, error) {
	figFlag := flag.String("figure", "all", "which figure: 7, 8a, 8b, or all")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Parse()

	switch *figFlag {
	case "7", "8a", "8b", "all":
	default:
		return 2, fmt.Errorf("unknown -figure %q (want 7, 8a, 8b, or all)", *figFlag)
	}
	if flag.NArg() > 0 {
		return 2, fmt.Errorf("unexpected arguments: %v", flag.Args())
	}

	emit := func(t *report.Table) {
		if *csvFlag {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}

	if *figFlag == "7" || *figFlag == "all" {
		t := report.NewTable("Figure 7 — object detection (tiny-YOLO) per library",
			"Library", "Device", "License", "Time (ms)", "Relative to cuDNN")
		for _, r := range core.Figure7() {
			lic := "closed"
			if r.Open {
				lic = "open"
			}
			t.AddRow(r.Library, r.Device, lic, r.TimeMs, r.RelToCuDNN)
		}
		emit(t)
		fmt.Println("Paper reference: open GPU libraries competitive; CPU ~two orders of magnitude slower.")
		fmt.Println()
	}

	if *figFlag == "8a" || *figFlag == "all" {
		t := report.NewTable("Figure 8a — CUTLASS vs cuBLAS (relative performance, >1 = CUTLASS faster)",
			"GEMM shape", "CUTLASS ms", "cuBLAS ms", "Relative")
		bars := report.NewBarChart("CUTLASS relative performance vs cuBLAS")
		for _, r := range core.Figure8a() {
			t.AddRow(r.Workload, r.OpenMs, r.ClosedMs, r.Relative)
			bars.Add(r.Workload, r.Relative)
		}
		emit(t)
		if !*csvFlag {
			bars.Render(os.Stdout)
			fmt.Println()
		}
	}

	if *figFlag == "8b" || *figFlag == "all" {
		t := report.NewTable("Figure 8b — ISAAC vs cuDNN (relative performance, >1 = ISAAC faster)",
			"Conv workload", "ISAAC ms", "cuDNN ms", "Relative")
		bars := report.NewBarChart("ISAAC relative performance vs cuDNN")
		for _, r := range core.Figure8b() {
			t.AddRow(r.Workload, r.OpenMs, r.ClosedMs, r.Relative)
			bars.Add(r.Workload, r.Relative)
		}
		emit(t)
		if !*csvFlag {
			bars.Render(os.Stdout)
		}
	}
	return 0, nil
}
