// Command adserve runs the assessment service: a long-running HTTP JSON
// API holding warm assessor state per corpus, so repeated assessments of
// nearly-identical corpora take the incremental path.
//
// Usage:
//
//	adserve [-addr :8080] [-allow-dir] [-max-body bytes]
//
// Endpoints (see internal/service):
//
//	POST /assess  {"corpus":"c1","files":{"m/a.c":"int x;..."}}      load + assess
//	POST /assess  {"corpus":"c1","generate":true,"seed":26262}       generated corpus
//	POST /delta   {"corpus":"c1","changed":{"m/a.c":"..."},"removed":["m/b.c"]}
//	GET  /report?corpus=c1                                           full report
//	GET  /findings?corpus=c1                                         every finding
//	GET  /healthz                                                    liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "adserve: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addrFlag := flag.String("addr", ":8080", "listen address")
	allowDirFlag := flag.Bool("allow-dir", false,
		"allow POST /assess to load server-side directories via \"dir\"")
	maxBodyFlag := flag.Int64("max-body", service.DefaultMaxBody,
		"maximum request body size in bytes")
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}
	if *maxBodyFlag <= 0 {
		return fmt.Errorf("-max-body must be positive (got %d)", *maxBodyFlag)
	}

	svc := service.New()
	svc.AllowDir = *allowDirFlag
	svc.MaxBody = *maxBodyFlag
	srv := &http.Server{
		Addr:              *addrFlag,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("adserve: listening on %s\n", *addrFlag)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Printf("adserve: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
