// Command adserve runs the assessment service: a long-running HTTP JSON
// API holding warm assessor state per corpus, so repeated assessments of
// nearly-identical corpora take the incremental path. With -data-dir
// the service is persistent: corpora are restored on boot from their
// snapshot plus delta-journal replay (torn journal tails from a crash
// mid-append are dropped), every /delta is journaled and fsync'd before
// it is acknowledged, and a graceful shutdown drains in-flight
// requests, compacts each corpus into a fresh snapshot, and writes a
// clean-shutdown marker so the next boot replays nothing.
//
// Usage:
//
//	adserve [-addr :8080] [-allow-dir] [-max-body bytes] [-data-dir DIR]
//	        [-trace-log PATH] [-trace-threshold 100ms]
//
// Endpoints (see internal/service):
//
//	POST /assess   {"corpus":"c1","files":{"m/a.c":"int x;..."}}      load + assess
//	POST /assess   {"corpus":"c1","generate":true,"seed":26262}       generated corpus
//	POST /delta    {"corpus":"c1","changed":{"m/a.c":"..."},"removed":["m/b.c"]}
//	POST /snapshot {"corpus":"c1"}                                    force compaction
//	GET  /report?corpus=c1                                            full report (gzip-aware)
//	GET  /findings?corpus=c1                                          every finding (gzip-aware)
//	GET  /healthz                                                     liveness
//	GET  /metrics                                                     Prometheus text exposition
//	GET  /statz                                                       metrics snapshot as JSON
//
// With -trace-log PATH (or "-" for stderr) requests slower than
// -trace-threshold are appended to PATH as JSON lines, one per request,
// with the delta pipeline's per-phase timing breakdown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "adserve: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addrFlag := flag.String("addr", ":8080", "listen address")
	allowDirFlag := flag.Bool("allow-dir", false,
		"allow POST /assess to load server-side directories via \"dir\"")
	maxBodyFlag := flag.Int64("max-body", service.DefaultMaxBody,
		"maximum request body size in bytes")
	dataDirFlag := flag.String("data-dir", "",
		"persist corpora under this directory (snapshot + delta journal, restored on boot)")
	journalMBFlag := flag.Int64("journal-max-mb", 0,
		"compact once the delta journal exceeds this many MiB (0 = default)")
	journalRecsFlag := flag.Int("journal-max-records", 0,
		"compact once the delta journal holds this many records (0 = default, negative disables)")
	pprofFlag := flag.Bool("pprof", false,
		"expose net/http/pprof under /debug/pprof/ (off by default; profiling data leaks source paths)")
	traceLogFlag := flag.String("trace-log", "",
		"append slow-request JSON lines to this file (\"-\" = stderr)")
	traceThresholdFlag := flag.Duration("trace-threshold", 100*time.Millisecond,
		"minimum request duration for a -trace-log line (0 traces everything)")
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}
	if *maxBodyFlag <= 0 {
		return fmt.Errorf("-max-body must be positive (got %d)", *maxBodyFlag)
	}
	if *dataDirFlag == "" && (*journalMBFlag != 0 || *journalRecsFlag != 0) {
		return errors.New("-journal-max-mb/-journal-max-records require -data-dir")
	}

	var svc *service.Server
	if *dataDirFlag != "" {
		d, err := store.Open(*dataDirFlag, store.Options{
			MaxJournalBytes:   *journalMBFlag << 20,
			MaxJournalRecords: *journalRecsFlag,
		})
		if err != nil {
			return err
		}
		var restored []service.RestoredCorpus
		if svc, restored, err = service.NewWithStore(d); err != nil {
			return err
		}
		fmt.Printf("adserve: data dir %s, %d corpora restored\n", *dataDirFlag, len(restored))
		for _, rc := range restored {
			how := fmt.Sprintf("%d journal records replayed", rc.Replayed)
			if rc.Clean {
				how = "clean shutdown, nothing to replay"
			}
			if rc.Torn {
				how += ", torn journal tail dropped"
			}
			fmt.Printf("adserve: restored corpus %q (%d files; %s)\n", rc.Name, rc.Files, how)
		}
	} else {
		svc = service.New()
	}
	svc.AllowDir = *allowDirFlag
	svc.MaxBody = *maxBodyFlag
	if *traceLogFlag != "" {
		svc.TraceThreshold = *traceThresholdFlag
		if *traceLogFlag == "-" {
			svc.TraceLog = os.Stderr
		} else {
			f, err := os.OpenFile(*traceLogFlag, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("-trace-log: %w", err)
			}
			defer f.Close()
			svc.TraceLog = f
		}
		fmt.Printf("adserve: tracing requests >= %v to %s\n", *traceThresholdFlag, *traceLogFlag)
	}
	handler := svc.Handler()
	if *pprofFlag {
		// Opt-in only: the profile endpoints reveal heap contents and
		// goroutine stacks (hence corpus paths and source fragments), so
		// they never ship on by default.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Printf("adserve: pprof enabled under /debug/pprof/\n")
	}
	srv := &http.Server{
		Addr:              *addrFlag,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("adserve: listening on %s\n", *addrFlag)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		svc.Close()
		return err
	case sig := <-stop:
		fmt.Printf("adserve: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Drain in-flight requests first, then flush state to disk:
		// compact every corpus, sync and close the journals, and write
		// the clean-shutdown markers.
		if err := srv.Shutdown(ctx); err != nil {
			svc.Close()
			return err
		}
		if err := svc.Close(); err != nil {
			return fmt.Errorf("flush state: %w", err)
		}
		if *dataDirFlag != "" {
			fmt.Println("adserve: state flushed, clean shutdown")
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
