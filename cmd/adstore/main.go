// Command adstore inspects, verifies, compacts, and dumps the
// persistent corpus stores an adserve -data-dir directory holds.
//
// Usage:
//
//	adstore -data-dir DIR list
//	adstore -data-dir DIR [-corpus NAME] inspect
//	adstore -data-dir DIR [-corpus NAME] verify
//	adstore -data-dir DIR [-corpus NAME] compact
//	adstore -data-dir DIR [-corpus NAME] dump [-src PATH]
//
//	list     names every stored corpus with snapshot/journal sizes.
//	inspect  prints the snapshot header (version, target ASIL, rule
//	         set, counts) and the journal state (records, bytes, torn
//	         tail) without modifying anything.
//	verify   checks every checksum (the decode path), restores the
//	         snapshot, replays the journal read-only, then re-parses
//	         and re-assesses the restored sources cold and byte-
//	         compares findings, report, and shard stats against the
//	         restored warm state — the oracle the recovery path is
//	         pinned to. Exits 1 on any divergence.
//	compact  restores snapshot+journal and writes a fresh snapshot
//	         absorbing the journal (what POST /snapshot does online).
//	dump     prints a per-module summary of the snapshot; -src PATH
//	         prints one stored file's source.
//
// Flags are validated before any work happens: bad values exit 2 with a
// message on stderr. Runtime failures (missing stores, corrupt
// snapshots, verification mismatches) exit 1.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/srcfile"
	"repro/internal/store"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "adstore: %v\n", err)
		os.Exit(code)
	}
}

func run() (int, error) {
	dataDirFlag := flag.String("data-dir", "", "the adserve data directory (required)")
	corpusFlag := flag.String("corpus", "default", "corpus name for per-corpus operations")
	srcFlag := flag.String("src", "", "with dump: print this stored file's source")
	flag.Parse()

	if *dataDirFlag == "" {
		return 2, fmt.Errorf("-data-dir is required")
	}
	if flag.NArg() != 1 {
		return 2, fmt.Errorf("exactly one operation expected (list, inspect, verify, compact, dump), got %v", flag.Args())
	}
	op := flag.Arg(0)
	switch op {
	case "list", "inspect", "verify", "compact", "dump":
	default:
		return 2, fmt.Errorf("unknown operation %q (want list, inspect, verify, compact, or dump)", op)
	}
	if *srcFlag != "" && op != "dump" {
		return 2, fmt.Errorf("-src only applies to dump")
	}
	if op != "list" && !store.ValidCorpusName(*corpusFlag) {
		return 2, fmt.Errorf("corpus name %q is not storable", *corpusFlag)
	}

	// Only compact writes; every other operation is an inspection and
	// must not create directories as a side effect (store.Open and
	// Dir.Corpus MkdirAll their paths for the serving flow).
	if op != "compact" {
		if fi, err := os.Stat(*dataDirFlag); err != nil || !fi.IsDir() {
			return 1, fmt.Errorf("data directory %s does not exist", *dataDirFlag)
		}
	}
	if op != "compact" && op != "list" {
		if fi, err := os.Stat(filepath.Join(*dataDirFlag, *corpusFlag)); err != nil || !fi.IsDir() {
			return 1, fmt.Errorf("corpus %q is not stored under %s", *corpusFlag, *dataDirFlag)
		}
	}

	d, err := store.Open(*dataDirFlag, store.Options{})
	if err != nil {
		return 1, err
	}
	switch op {
	case "list":
		return list(d)
	case "inspect":
		return inspect(d, *corpusFlag)
	case "verify":
		return verify(d, *corpusFlag)
	case "compact":
		return compact(d, *corpusFlag)
	default:
		return dump(d, *corpusFlag, *srcFlag)
	}
}

func list(d *store.Dir) (int, error) {
	names, err := d.Corpora()
	if err != nil {
		return 1, err
	}
	if len(names) == 0 {
		fmt.Printf("no corpora under %s\n", d.Root())
		return 0, nil
	}
	for _, name := range names {
		cs, cerr := d.Corpus(name)
		if cerr != nil {
			return 1, cerr
		}
		snapSz := fileSize(filepath.Join(d.Root(), name, "snapshot"))
		rep, jb, jerr := cs.ReadJournal(nil)
		state := fmt.Sprintf("journal %d records / %d bytes", rep.Records, jb)
		if jerr != nil {
			state = "journal unreadable: " + jerr.Error()
		} else if rep.Torn {
			state += " (torn tail)"
		}
		fmt.Printf("%-24s snapshot %d bytes, %s\n", name, snapSz, state)
	}
	return 0, nil
}

func inspect(d *store.Dir, name string) (int, error) {
	cs, err := d.Corpus(name)
	if err != nil {
		return 1, err
	}
	// Lazy open: framing, checksums, header, and shard directory only.
	// Everything below prints without decoding a single shard block —
	// inspect stays O(header + directory) no matter the corpus size.
	snap, nbytes, err := cs.OpenCurrent()
	if err != nil {
		return 1, err
	}
	dir := snap.Directory()
	nFiles := 0
	for i := range dir {
		nFiles += dir[i].Files
	}
	fmt.Printf("corpus:     %s\n", name)
	fmt.Printf("snapshot:   %d bytes (checksums ok), generation %#016x\n", nbytes, snap.Gen())
	fmt.Printf("target:     %s\n", snap.Target())
	fmt.Printf("rules:      %v\n", snap.RuleIDs())
	fmt.Printf("files:      %d across %d shards\n", nFiles, len(dir))
	fmt.Printf("shards:     %-20s %6s  %23s %23s %23s  sigs\n", "module", "files", "units(off+len)", "findings(off+len)", "metrics(off+len)")
	uBase, _ := snap.SectionBounds('U')
	rBase, _ := snap.SectionBounds('R')
	mBase, _ := snap.SectionBounds('M')
	ext := func(base int, e store.Extent) string {
		return fmt.Sprintf("%12d +%10d", base+e.Off, e.Len)
	}
	for i := range dir {
		sh := &dir[i]
		sigs := "-"
		if sh.HasSigs {
			sigs = fmt.Sprintf("%016x/%016x", sh.SigExport, sh.SigGraph)
		}
		fmt.Printf("            %-20s %6d  %s %s %s  %s\n",
			sh.Module, sh.Files, ext(uBase, sh.Units), ext(rBase, sh.Findings), ext(mBase, sh.Metrics), sigs)
	}
	fmt.Printf("corpus-findings: %s\n", ext(rBase, snap.CorpusExtent()))
	rep, jb, jerr := cs.ReadJournal(nil)
	if jerr != nil {
		return 1, jerr
	}
	torn := ""
	if rep.Torn {
		torn = " — torn tail (crash mid-append), will be dropped on recovery"
	}
	fmt.Printf("journal:    %d records, %d bytes%s\n", rep.Records, jb, torn)
	if _, err := os.Stat(filepath.Join(d.Root(), name, "clean")); err == nil {
		fmt.Printf("shutdown:   clean (marker present)\n")
	} else {
		fmt.Printf("shutdown:   no clean marker (crash or still running)\n")
	}
	return 0, nil
}

// verify is the recovery oracle: restore warm state from disk, then
// independently re-derive everything from the restored sources with a
// cold parse+assess and demand byte equality.
func verify(d *store.Dir, name string) (int, error) {
	cs, err := d.Corpus(name)
	if err != nil {
		return 1, err
	}
	warm, info, err := cs.RecoverReadOnly(core.DefaultConfig())
	if err != nil {
		return 1, err
	}

	cold := core.NewAssessor(warm.Config())
	fs := srcfile.NewFileSet()
	for _, f := range warm.FileSet().Files() {
		fs.Add(&srcfile.File{Path: f.Path, Module: f.Module, Lang: f.Lang, Src: f.Src})
	}
	if err := cold.LoadFileSet(fs); err != nil {
		return 1, fmt.Errorf("cold re-parse of restored sources: %w", err)
	}

	warmFindings, _ := json.Marshal(service.FindingRows(warm.Findings()))
	coldFindings, _ := json.Marshal(service.FindingRows(cold.Findings()))
	if !bytes.Equal(warmFindings, coldFindings) {
		return 1, fmt.Errorf("FAIL: restored findings diverge from cold re-assessment")
	}
	warmReport, _ := json.Marshal(service.BuildReport(name, warm))
	coldReport, _ := json.Marshal(service.BuildReport(name, cold))
	if !bytes.Equal(warmReport, coldReport) {
		return 1, fmt.Errorf("FAIL: restored report diverges from cold re-assessment")
	}
	if w, c := fmt.Sprintf("%v", warm.ShardStats()), fmt.Sprintf("%v", cold.ShardStats()); w != c {
		return 1, fmt.Errorf("FAIL: restored shard stats diverge from cold re-assessment")
	}
	torn := ""
	if info.Torn {
		torn = ", torn tail ignored"
	}
	fmt.Printf("OK: %s — snapshot %d bytes, %d journal records replayed%s; %d files, %d findings byte-identical to cold re-assessment\n",
		name, info.SnapshotBytes, info.Replayed, torn, warm.FileSet().Len(), len(warm.Findings()))
	return 0, nil
}

func compact(d *store.Dir, name string) (int, error) {
	cs, err := d.Corpus(name)
	if err != nil {
		return 1, err
	}
	a, info, err := cs.Recover(core.DefaultConfig())
	if err != nil {
		return 1, err
	}
	defer cs.Close()
	snap, err := a.ExportState()
	if err != nil {
		return 1, err
	}
	n, err := cs.WriteSnapshot(snap)
	if err != nil {
		return 1, err
	}
	// The journal is empty and the snapshot current: equivalent to a
	// clean shutdown, so certify it for the next boot.
	if err := cs.MarkClean(); err != nil {
		return 1, err
	}
	fmt.Printf("compacted %s: %d journal records absorbed into a %d-byte snapshot (%d files)\n",
		name, info.Replayed, n, a.FileSet().Len())
	return 0, nil
}

func dump(d *store.Dir, name, src string) (int, error) {
	cs, err := d.Corpus(name)
	if err != nil {
		return 1, err
	}
	st, _, err := cs.LoadSnapshot()
	if err != nil {
		return 1, err
	}
	if src != "" {
		for i := range st.Files {
			if st.Files[i].Path == src {
				fmt.Print(st.Files[i].Src)
				return 0, nil
			}
		}
		return 1, fmt.Errorf("file %q is not in the snapshot", src)
	}
	type modStat struct{ files, bytes int }
	mods := make(map[string]*modStat)
	var order []string
	for i := range st.Files {
		pf := &st.Files[i]
		ms := mods[pf.Module]
		if ms == nil {
			ms = &modStat{}
			mods[pf.Module] = ms
			order = append(order, pf.Module)
		}
		ms.files++
		ms.bytes += len(pf.Src)
	}
	fmt.Printf("%s: %d files across %d modules (target %s)\n", name, len(st.Files), len(mods), st.Target)
	for _, m := range order {
		fmt.Printf("  %-20s %5d files %9d bytes\n", m, mods[m].files, mods[m].bytes)
	}
	return 0, nil
}

func fileSize(p string) int64 {
	fi, err := os.Stat(p)
	if err != nil {
		return 0
	}
	return fi.Size()
}
