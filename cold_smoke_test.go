package repro_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpusgen"
	"repro/internal/store"
)

// TestColdLatencySmoke is the cold-path regression gate, the companion
// of TestDeltaLatencySmoke: on the fixed-seed 10k-file corpus, a cold
// load+assess and a snapshot restore must not regress more than 2x over
// the baselines recorded in BENCH_pipeline.json under "coldpath" — the
// numbers the []byte lexer fast path, the arena parser, and the lazy
// per-shard snapshot decode are pinned to. Opt-in via COLD_SMOKE=1 (CI
// sets it) so ordinary test runs stay fast.
func TestColdLatencySmoke(t *testing.T) {
	if os.Getenv("COLD_SMOKE") == "" {
		t.Skip("set COLD_SMOKE=1 to run the cold-latency regression gate")
	}

	raw, err := os.ReadFile("BENCH_pipeline.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var bench struct {
		ColdPath struct {
			Cold10kNsPerOp    float64 `json:"cold_10k_ns_per_op"`
			Restore10kNsPerOp float64 `json:"restore_10k_ns_per_op"`
		} `json:"coldpath"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("parse BENCH_pipeline.json: %v", err)
	}
	coldBase := time.Duration(bench.ColdPath.Cold10kNsPerOp)
	restoreBase := time.Duration(bench.ColdPath.Restore10kNsPerOp)
	if coldBase <= 0 || restoreBase <= 0 {
		t.Fatal("BENCH_pipeline.json has no coldpath baselines")
	}

	// The benchmark workload, verbatim: 20 modules × (499 C++ + 1 CUDA),
	// seed 26262.
	gen := corpusgen.New(corpusgen.Params{Modules: 20, FilesPerModule: 499,
		FuncsPerFile: 3, ViolationsPerFile: 2, CUDAFiles: 1}, 26262)

	// Cold leg: LoadFileSet + Findings from nothing. Best of a few runs —
	// the gate asks "can the machine still do it this fast", so
	// scheduling noise must not fail it (see TestDeltaLatencySmoke).
	var want int
	coldBest := time.Duration(1<<63 - 1)
	var warm *core.Assessor
	for i := 0; i < 3; i++ {
		start := time.Now()
		a := core.NewAssessor(core.DefaultConfig())
		if err := a.LoadFileSet(gen.FileSet()); err != nil {
			t.Fatal(err)
		}
		n := len(a.Findings())
		if d := time.Since(start); d < coldBest {
			coldBest = d
		}
		if n == 0 {
			t.Fatal("no findings on cold assess")
		}
		want = n
		warm = a
	}
	coldLimit := 2 * coldBase
	t.Logf("cold 10k load+assess: best %v (baseline %v, limit %v)", coldBest, coldBase, coldLimit)

	// Restore leg: snapshot the warm state once, then time recovery —
	// lazy snapshot open + warm-state reconstruction + first Findings
	// and Metrics pass, exactly the BenchmarkSnapshotLoad restore shape.
	warm.Metrics()
	st, err := warm.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	d, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := d.Corpus("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.WriteSnapshot(st); err != nil {
		t.Fatal(err)
	}
	restoreBest := time.Duration(1<<63 - 1)
	for i := 0; i < 5; i++ {
		start := time.Now()
		a, _, err := cs.RecoverReadOnly(core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if n := len(a.Findings()); n != want {
			t.Fatalf("restored findings %d, want %d", n, want)
		}
		a.Metrics()
		if d := time.Since(start); d < restoreBest {
			restoreBest = d
		}
	}
	restoreLimit := 2 * restoreBase
	t.Logf("restore 10k: best %v (baseline %v, limit %v)", restoreBest, restoreBase, restoreLimit)

	if coldBest > coldLimit {
		t.Errorf("cold 10k latency regressed: best %v exceeds 2x recorded baseline %v", coldBest, coldBase)
	}
	if restoreBest > restoreLimit {
		t.Errorf("restore 10k latency regressed: best %v exceeds 2x recorded baseline %v", restoreBest, restoreBase)
	}
}
