package repro_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpusgen"
	"repro/internal/srcfile"
)

// TestDeltaLatencySmoke is the delta-latency regression gate: on the
// fixed-seed 10k-file corpus (the BenchmarkGeneratedScale workload), a
// steady-state warm 1-file delta must not regress more than 2x over the
// baseline recorded in BENCH_pipeline.json under "sharded". The gate is
// opt-in via DELTA_SMOKE=1 (CI sets it) so ordinary test runs stay fast
// and un-flaky on loaded machines.
func TestDeltaLatencySmoke(t *testing.T) {
	if os.Getenv("DELTA_SMOKE") == "" {
		t.Skip("set DELTA_SMOKE=1 to run the delta-latency regression gate")
	}

	raw, err := os.ReadFile("BENCH_pipeline.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var bench struct {
		Sharded struct {
			Delta1File10kNsPerOp float64 `json:"delta_1file_10k_ns_per_op"`
		} `json:"sharded"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("parse BENCH_pipeline.json: %v", err)
	}
	baseline := time.Duration(bench.Sharded.Delta1File10kNsPerOp)
	if baseline <= 0 {
		t.Fatal("BENCH_pipeline.json has no sharded.delta_1file_10k_ns_per_op baseline")
	}

	// The benchmark workload, verbatim: 20 modules × (499 C++ + 1 CUDA),
	// seed 26262, steady-state edits of one mid-corpus file.
	gen := corpusgen.New(corpusgen.Params{Modules: 20, FilesPerModule: 499,
		FuncsPerFile: 3, ViolationsPerFile: 2, CUDAFiles: 1}, 26262)
	a := core.NewAssessor(core.DefaultConfig())
	if err := a.LoadFileSet(gen.FileSet()); err != nil {
		t.Fatal(err)
	}
	a.Findings()
	victim := gen.Paths()[len(gen.Paths())/2]
	base := gen.Source(victim)
	variant := func(i int) string {
		if i%2 == 0 {
			return base + "\nfloat ScaleProbe(float x, int m) { if (m > 1) { x = x + 1.0f; } return x; }\n"
		}
		return base + "\nfloat ScaleProbe(float x, int m) { while (x > 0.5f * m) { x = x - 1.0f; } return x; }\n"
	}
	apply := func(i int) {
		if _, err := a.ApplyDelta(core.Delta{Changed: []*srcfile.File{{
			Path: victim, Src: variant(i)}}}); err != nil {
			t.Fatal(err)
		}
		if len(a.Findings()) == 0 {
			t.Fatal("no findings after delta")
		}
	}
	// Warm-up: the first probe appearance changes the export overlay
	// (one full re-check), and a few more rounds settle allocator and
	// cache state into the steady state the benchmark measures.
	for i := 1; i < 6; i++ {
		apply(i)
	}

	// Take the best of several runs: the gate asks "can the machine
	// still do it this fast", so scheduling noise must not fail it.
	best := time.Duration(1<<63 - 1)
	for i := 6; i < 18; i++ {
		start := time.Now()
		apply(i)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	limit := 2 * baseline
	t.Logf("warm 1-file delta on 10k files: best %v (baseline %v, limit %v)", best, baseline, limit)
	if best > limit {
		t.Fatalf("warm delta latency regressed: best %v exceeds 2x recorded baseline %v", best, baseline)
	}
}
