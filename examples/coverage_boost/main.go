// Coverage boost: the remediation workflow for the paper's Observation 10
// ("additional test cases are required to reach much higher coverage").
// Takes the YOLO corpus, shows the coverage the bundled drivers achieve on
// selected functions, then runs the coverage-guided test-vector generator
// to close the gap and prints the vectors it found.
//
// Run with: go run ./examples/coverage_boost
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/apollocorpus"
	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/cinterp"
	"repro/internal/testgen"
)

func main() {
	fs := apollocorpus.YoloCorpus()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		log.Fatalf("parse: %v", errs[0])
	}
	var tus []*ccast.TranslationUnit
	paths := make([]string, 0, len(units))
	for p := range units {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		tus = append(tus, units[p])
	}

	// Scalar-parameter target: the activation dispatcher. The bundled
	// drivers exercise only 2 of its 6 switch arms.
	boost(tus, "activate", testgen.Options{Budget: 400, Seed: 7})

	// Pointer-parameter target: confidence filtering, whose compound
	// condition needs specific (probs, thresh, strict) combinations for
	// MC/DC. Buffer arguments come from a custom generator.
	boost(tus, "filter_confidence", testgen.Options{
		Budget: 800, Seed: 11,
		ArgGen: func(rng *rand.Rand) []cinterp.Value {
			n := 4 + rng.Intn(4)
			return []cinterp.Value{
				testgen.FloatBuf(8, func(i int) float64 { return rng.Float64() }),
				cinterp.IntVal(int64(n)),
				cinterp.FloatVal(rng.Float64()),
				cinterp.FloatVal(0.5 + rng.Float64()),
				cinterp.IntVal(int64(rng.Intn(2))),
			}
		},
	})

	// Bounds-heavy target: layer size computation across layer types.
	boost(tus, "layer_output_size", testgen.Options{Budget: 600, Seed: 13})
}

func boost(tus []*ccast.TranslationUnit, fn string, opts testgen.Options) {
	res, err := testgen.Search(tus, fn, opts)
	if err != nil {
		log.Fatalf("%s: %v", fn, err)
	}
	fmt.Printf("== %s ==\n", fn)
	fmt.Printf("  before: stmt %5.1f%%  branch %5.1f%%  mcdc %5.1f%%\n",
		res.Before.StmtPct(), res.Before.BranchPct(), res.Before.MCDCPct())
	fmt.Printf("  after:  stmt %5.1f%%  branch %5.1f%%  mcdc %5.1f%%  (%d vectors kept of %d tried)\n",
		res.After.StmtPct(), res.After.BranchPct(), res.After.MCDCPct(),
		len(res.Vectors), res.Tried)
	for i, v := range res.Vectors {
		fmt.Printf("  vector %d (+%d coverage points): %s\n", i+1, v.Gain, renderArgs(v.Args))
	}
	fmt.Println()
}

func renderArgs(args []cinterp.Value) string {
	out := ""
	for i, a := range args {
		if i > 0 {
			out += ", "
		}
		out += a.String()
	}
	return "(" + out + ")"
}
