// GPU migration: the paper's Section 3.3 workflow. Takes CUDA kernels
// (the 2D/3D stencils), runs them on the CPU through the cuda4cpu-style
// emulator, measures statement and branch coverage of the kernel bodies,
// and reports which branches the available tests never exercised —
// exactly the evidence a certification engineer needs for GPU code today.
//
// Run with: go run ./examples/gpu_migration
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/apollocorpus"
	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/cinterp"
	"repro/internal/coverage"
	"repro/internal/cuda"
)

func main() {
	fs := apollocorpus.StencilCorpus()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		log.Fatalf("parse: %v", errs[0])
	}

	var tus []*ccast.TranslationUnit
	var kernels []*ccast.FuncDecl
	paths := make([]string, 0, len(units))
	for p := range units {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		tus = append(tus, units[p])
		for _, fn := range units[p].Funcs() {
			if fn.IsKernel() {
				kernels = append(kernels, fn)
			}
		}
	}
	fmt.Printf("Found %d __global__ kernels to migrate to CPU execution\n", len(kernels))

	rec := coverage.NewRecorder(kernels, "stencil")
	m := cinterp.NewMachine(tus...)
	m.Hooks = rec.Hooks()
	m.MaxSteps = 500_000_000
	em := cuda.NewEmulator(m)

	for _, entry := range apollocorpus.StencilEntryPoints() {
		m.Reset()
		v, err := m.Call(entry)
		if err != nil {
			log.Fatalf("%s: %v", entry, err)
		}
		fmt.Printf("  %s: checksum %d\n", entry, v.AsInt())
	}
	fmt.Printf("Emulated %d launches, %d kernel threads total\n\n", em.Launches, em.ThreadsRun)

	for _, fc := range rec.Funcs {
		s := fc.Summarize(coverage.UniqueCause)
		fmt.Printf("%s: statement %.1f%%, branch %.1f%%\n", fc.Name, s.StmtPct(), s.BranchPct())
		for _, d := range fc.Decisions {
			if d.TrueHits == 0 || d.FalseHits == 0 {
				missing := "true"
				if d.FalseHits == 0 {
					missing = "false"
				}
				fmt.Printf("  line %d (%s): %s outcome never exercised — add a test vector\n",
					d.Line, d.Kind, missing)
			}
		}
	}
	fmt.Println("\nAs the paper observes, this CPU-emulation route is a stopgap: results")
	fmt.Println("are not obtained on the deployment target/compiler, so qualified GPU")
	fmt.Println("coverage tooling remains an open research need (Observation 11).")
}
