// Library comparison: the paper's Section 3.3.1 case study. A supplier
// wants to replace closed-source cuBLAS/cuDNN with open-source
// CUTLASS/ISAAC to ease ISO 26262 compliance (Observation 12) — but only
// if performance stays competitive. This example runs the detection
// pipeline and the kernel sweeps across all six library models, verifies
// the open alternatives stay within budget, and also runs a *real* CPU
// inference (micro network) to show the pipeline is live code, not just a
// model.
//
// Run with: go run ./examples/library_comparison
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/tensor"
	"repro/internal/yolo"
)

func main() {
	fmt.Println("== Figure 7: detection inference per library ==")
	var closedBest, openBest core.Figure7Row
	for _, r := range core.Figure7() {
		fmt.Printf("  %-9s %-11s %7.2f ms (%.2fx cuDNN)\n", r.Library, r.Device, r.TimeMs, r.RelToCuDNN)
		if r.Device != "Xeon (CPU)" {
			if !r.Open && (closedBest.Library == "" || r.TimeMs < closedBest.TimeMs) {
				closedBest = r
			}
			if r.Open && (openBest.Library == "" || r.TimeMs < openBest.TimeMs) {
				openBest = r
			}
		}
	}
	slowdown := openBest.TimeMs / closedBest.TimeMs
	fmt.Printf("\nBest open (%s) vs best closed (%s): %.2fx\n", openBest.Library, closedBest.Library, slowdown)
	if slowdown < 1.2 {
		fmt.Println("→ open-source libraries are a viable certification-friendly replacement")
	} else {
		fmt.Println("→ open-source penalty exceeds 20%; revisit per-layer library choice")
	}

	fmt.Println("\n== Figure 8a: GEMM kernels (CUTLASS relative to cuBLAS) ==")
	for _, r := range core.Figure8a() {
		fmt.Printf("  %-28s %.2fx\n", r.Workload, r.Relative)
	}
	fmt.Println("\n== Figure 8b: conv kernels (ISAAC relative to cuDNN) ==")
	for _, r := range core.Figure8b() {
		fmt.Printf("  %-28s %.2fx\n", r.Workload, r.Relative)
	}

	// Per-layer engineering view: where does tiny-YOLO spend its time?
	fmt.Println("\n== Per-layer time on cuDNN vs ISAAC (tiny-YOLO) ==")
	gpu := gpusim.TitanV()
	cd, is := gpusim.CuDNN(gpu), gpusim.ISAAC(gpu)
	for i, s := range yolo.TinyYOLO().ConvShapes() {
		fmt.Printf("  conv%-2d %-32s cuDNN %.3f ms | ISAAC %.3f ms\n",
			i+1, s.String(), cd.ConvTime(s), is.ConvTime(s))
	}

	// Real compute: run the micro detector end to end on the CPU path.
	fmt.Println("\n== Live CPU inference (micro network, real compute) ==")
	net := yolo.MicroYOLO()
	w := net.RandomWeights(2024)
	img := tensor.New(3, 32, 32)
	for i := range img.Data {
		img.Data[i] = float32((i*37)%255) / 255
	}
	out, err := net.Forward(img, w)
	if err != nil {
		log.Fatal(err)
	}
	dets := yolo.NMS(net.DecodeRegion(out, 0.15), 0.45)
	fmt.Printf("  %d detections after NMS\n", len(dets))
	for _, d := range dets {
		fmt.Printf("  class %d conf %.2f at (%.2f, %.2f) size (%.2f x %.2f)\n",
			d.Class, d.Conf, d.X, d.Y, d.W, d.H)
	}
}
