// Perception audit: the paper's headline scenario. Generates the
// calibrated Apollo-like corpus, runs the full ISO 26262 assessment at
// ASIL-D, and walks through the perception module's findings the way a
// safety engineer would: complexity profile, the worst offending
// functions, the global-variable problem, and the CUDA-specific issues.
//
// Run with: go run ./examples/perception_audit
package main

import (
	"fmt"
	"log"
	"sort"

	repro "repro"
)

func main() {
	a, assessment, err := repro.AssessDefaultCorpus()
	if err != nil {
		log.Fatal(err)
	}

	fw := a.Metrics()
	per := fw.Module("perception")
	fmt.Printf("Perception module: %d files, %d LOC, %d functions\n",
		per.Files, per.LOC, per.Functions)
	fmt.Printf("Complexity: %d functions over CCN 10, %d over 20, %d over 50 (max %d)\n\n",
		per.OverCCN[10], per.OverCCN[20], per.OverCCN[50], per.MaxCCN)

	// Ten most complex functions — redesign candidates (Observation 1).
	fns := fw.AllFunctions()
	sort.Slice(fns, func(i, j int) bool { return fns[i].CCN > fns[j].CCN })
	fmt.Println("Top redesign candidates (highest cyclomatic complexity):")
	shown := 0
	for _, fn := range fns {
		if fn.Module != "perception" {
			continue
		}
		fmt.Printf("  CCN %3d  %s (%s:%d, %d NLOC)\n", fn.CCN, fn.Name, fn.File, fn.StartLine, fn.NLOC)
		shown++
		if shown == 10 {
			break
		}
	}

	st := a.Stats()
	fmt.Printf("\nPerception rule findings:\n")
	for _, rule := range []string{"global-var", "cast", "multi-exit", "dynamic-memory", "pointer", "lang-subset"} {
		fmt.Printf("  %-15s %d\n", rule, st.Count(rule, "perception"))
	}

	fmt.Println("\nObservations relevant to perception:")
	for _, o := range assessment.Observations {
		switch o.Number {
		case 1, 3, 4, 5, 7:
			fmt.Printf("  Obs %2d: %s\n          %s\n", o.Number, o.Text, o.Evidence)
		}
	}

	gaps := assessment.Gaps()
	fmt.Printf("\nCertification gaps at ASIL-D: %d topics\n", len(gaps))
	for _, g := range gaps {
		fmt.Printf("  - %s → %s (remediation: %s)\n", g.Topic.Name, g.Verdict, g.Effort)
	}
}
