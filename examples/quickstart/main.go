// Quickstart: assess a small C++ snippet against ISO 26262 Part-6
// guidelines using the public API, print the findings and the unit-design
// verdict table.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/iso26262"
)

const snippet = `
#include <vector>

float g_last_speed = 0.0f;

float EstimateSpeed(const float* samples, int count, float scale) {
    float acc = 0.0f;
    if (count <= 0) {
        return -1.0f;
    }
    for (int i = 0; i < count; i++) {
        acc += samples[i];
    }
    int rounded = (int)(acc * scale);
    g_last_speed = (float)rounded / scale;
    return g_last_speed;
}
`

func main() {
	fs := repro.NewFileSet()
	fs.AddSource("control/speed_estimator.cc", snippet)

	a, assessment, err := repro.AssessFileSet(fs, iso26262.ASILD)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Findings:")
	for _, f := range a.Findings() {
		fmt.Printf("  %s\n", f.String())
	}

	fmt.Println("\nUnit design & implementation verdicts (ISO26262-6 Table 8) at ASIL-D:")
	for _, ta := range assessment.Unit {
		fmt.Printf("  %2d. %-55s %-13s %s\n",
			ta.Topic.Item, ta.Topic.Name, ta.Verdict, ta.Evidence)
	}

	gaps := assessment.Gaps()
	fmt.Printf("\n%d topics would block ASIL-D certification of this snippet.\n", len(gaps))
}
