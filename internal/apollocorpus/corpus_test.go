package apollocorpus

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/cinterp"
	"repro/internal/cuda"
	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/srcfile"
)

// The corpus is generated and parsed once per test binary; it is the
// shared subject of several calibration tests.
var (
	corpusOnce  sync.Once
	corpusFS    *srcfile.FileSet
	corpusUnits map[string]*ccast.TranslationUnit
	corpusErrs  []*ccparse.Error
)

func corpus(t *testing.T) (map[string]*ccast.TranslationUnit, *srcfile.FileSet) {
	t.Helper()
	corpusOnce.Do(func() {
		corpusFS = GenerateDefault()
		corpusUnits, corpusErrs = ccparse.ParseAll(corpusFS, ccparse.Options{})
	})
	if len(corpusErrs) > 0 {
		t.Fatalf("corpus has %d parse errors, first: %v", len(corpusErrs), corpusErrs[0])
	}
	return corpusUnits, corpusFS
}

func TestCorpusDeterministic(t *testing.T) {
	a := Generate(DefaultSpec()[:1], 26262)
	b := Generate(DefaultSpec()[:1], 26262)
	if a.Len() != b.Len() {
		t.Fatalf("file counts differ: %d vs %d", a.Len(), b.Len())
	}
	for _, f := range a.Files() {
		g := b.Lookup(f.Path)
		if g == nil || g.Src != f.Src {
			t.Fatalf("file %s differs between runs", f.Path)
		}
	}
	c := Generate(DefaultSpec()[:1], 99)
	diff := false
	for _, f := range a.Files() {
		if g := c.Lookup(f.Path); g != nil && g.Src != f.Src {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should produce different corpora")
	}
}

func TestCorpusParsesCleanly(t *testing.T) {
	units, _ := corpus(t)
	if len(units) == 0 {
		t.Fatal("empty corpus")
	}
}

func TestCorpusTotalSize(t *testing.T) {
	_, fs := corpus(t)
	loc := fs.TotalLines()
	if loc < 220000 {
		t.Errorf("total LOC = %d, want > 220000 (paper: >220k)", loc)
	}
	if loc > 280000 {
		t.Errorf("total LOC = %d, implausibly large", loc)
	}
}

func TestCorpusModuleSizes(t *testing.T) {
	_, fs := corpus(t)
	for _, spec := range DefaultSpec() {
		loc := 0
		for _, f := range fs.ModuleFiles(spec.Name) {
			loc += f.LineCount()
		}
		if loc < spec.TargetLOC*9/10 || loc > spec.TargetLOC*12/10 {
			t.Errorf("module %s LOC = %d, want ≈%d", spec.Name, loc, spec.TargetLOC)
		}
		// Paper: main modules span 5k-60k LOC.
		if loc < 5000 || loc > 66000 {
			t.Errorf("module %s LOC = %d outside the paper's 5k-60k band", spec.Name, loc)
		}
	}
}

func TestCorpusComplexityCalibration(t *testing.T) {
	units, _ := corpus(t)
	fw := metrics.Analyze(units)
	if fw.ModerateOrWorse != 554 {
		t.Errorf("moderate-or-worse functions = %d, want exactly 554 (Figure 3)",
			fw.ModerateOrWorse)
	}
}

func TestCorpusCastCalibration(t *testing.T) {
	units, _ := corpus(t)
	ctx := rules.NewContext(units)
	fs := (&rules.CastRule{}).Check(ctx)
	if len(fs) < 1400 {
		t.Errorf("explicit casts = %d, want > 1400 (Observation 5)", len(fs))
	}
}

func TestCorpusGlobalsCalibration(t *testing.T) {
	units, _ := corpus(t)
	ctx := rules.NewContext(units)
	fs := (&rules.GlobalVarRule{}).Check(ctx)
	perception := 0
	for _, f := range fs {
		if f.Module == "perception" {
			perception++
		}
	}
	if perception < 850 || perception > 950 {
		t.Errorf("perception globals = %d, want ≈900", perception)
	}
}

func TestCorpusMultiExitCalibration(t *testing.T) {
	units, _ := corpus(t)
	total, multi := 0, 0
	for path, tu := range units {
		if tu.File.ModuleName() != "perception" {
			continue
		}
		_ = path
		for _, fn := range tu.Funcs() {
			total++
			if ccast.CountReturns(fn) > 1 {
				multi++
			}
		}
	}
	frac := float64(multi) / float64(total)
	if frac < 0.33 || frac > 0.49 {
		t.Errorf("perception multi-exit fraction = %.2f (%d/%d), want ≈0.41",
			frac, multi, total)
	}
}

func TestCorpusHasCUDAFindings(t *testing.T) {
	units, _ := corpus(t)
	ctx := rules.NewContext(units)
	dyn := (&rules.DynamicMemoryRule{}).Check(ctx)
	cudaDyn := 0
	for _, f := range dyn {
		if f.Module == "perception" {
			cudaDyn++
		}
	}
	if cudaDyn == 0 {
		t.Error("no dynamic-memory findings in perception CUDA files")
	}
	subset := (&rules.LanguageSubsetRule{}).Check(ctx)
	launches := 0
	for _, f := range subset {
		if f.RuleID == "lang-subset" && f.Module == "perception" {
			launches++
		}
	}
	if launches == 0 {
		t.Error("no kernel-launch findings in perception")
	}
}

func TestCorpusSeedsStructuralFindings(t *testing.T) {
	units, _ := corpus(t)
	ctx := rules.NewContext(units)
	if got := len((&rules.GotoRule{}).Check(ctx)); got < 10 {
		t.Errorf("goto findings = %d, want >= 10 (2 per seeded function)", got)
	}
	if got := len((&rules.RecursionRule{}).Check(ctx)); got < 5 {
		t.Errorf("recursion findings = %d, want >= 5", got)
	}
	if got := len((&rules.UninitializedRule{}).Check(ctx)); got < 10 {
		t.Errorf("uninitialized findings = %d, want >= 10", got)
	}
	if got := len((&rules.ImplicitConversionRule{}).Check(ctx)); got < 100 {
		t.Errorf("implicit conversions = %d, want >= 100 (Table 8 item 7 evidence)", got)
	}
}

func TestScaleBiasSampleFindings(t *testing.T) {
	f := ScaleBiasSample()
	set := srcfile.NewFileSet()
	set.Add(f)
	units, errs := ccparse.ParseAll(set, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("figure 4 sample parse errors: %v", errs)
	}
	ctx := rules.NewContext(units)
	dyn := (&rules.DynamicMemoryRule{}).Check(ctx)
	if len(dyn) != 4 { // 2x cudaMalloc + 2x cudaFree
		t.Errorf("dynamic-memory findings = %d, want 4: %v", len(dyn), dyn)
	}
	ptr := (&rules.PointerRule{}).Check(ctx)
	if len(ptr) < 6 {
		t.Errorf("pointer findings = %d, want >= 6", len(ptr))
	}
}

func TestYoloCorpusParsesAndRuns(t *testing.T) {
	fs := YoloCorpus()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("yolo parse errors: %v", errs)
	}
	tus := make([]*ccast.TranslationUnit, 0, len(units))
	for _, tu := range units {
		tus = append(tus, tu)
	}
	m := cinterp.NewMachine(tus...)
	for _, entry := range YoloEntryPoints() {
		m.Reset()
		if _, err := m.Call(entry); err != nil {
			t.Errorf("%s: %v", entry, err)
		}
	}
}

func TestStencilCorpusRunsUnderEmulation(t *testing.T) {
	fs := StencilCorpus()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("stencil parse errors: %v", errs)
	}
	tus := make([]*ccast.TranslationUnit, 0, len(units))
	for _, tu := range units {
		tus = append(tus, tu)
	}
	m := cinterp.NewMachine(tus...)
	em := cuda.NewEmulator(m)
	for _, entry := range StencilEntryPoints() {
		m.Reset()
		v, err := m.Call(entry)
		if err != nil {
			t.Fatalf("%s: %v", entry, err)
		}
		if v.AsInt() == 0 {
			t.Errorf("%s checksum = 0, kernel likely did not write", entry)
		}
	}
	if em.Launches != 2 {
		t.Errorf("launches = %d, want 2", em.Launches)
	}
	if em.ThreadsRun == 0 {
		t.Error("no kernel threads executed")
	}
}

func TestCorpusRoundTripsThroughDisk(t *testing.T) {
	// The adcorpus tool writes the corpus to disk for external tools; a
	// write/read round trip must preserve every byte and parse result.
	dir := t.TempDir()
	src := Generate(DefaultSpec()[:1], 5)
	for _, f := range src.Files() {
		dst := filepath.Join(dir, filepath.FromSlash(f.Path))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, []byte(f.Src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reread := srcfile.NewFileSet()
	for _, f := range src.Files() {
		data, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(f.Path)))
		if err != nil {
			t.Fatal(err)
		}
		reread.AddSource(f.Path, string(data))
	}
	if reread.Len() != src.Len() {
		t.Fatalf("file count changed: %d vs %d", reread.Len(), src.Len())
	}
	for _, f := range src.Files() {
		if got := reread.Lookup(f.Path); got == nil || got.Src != f.Src {
			t.Fatalf("content changed for %s", f.Path)
		}
	}
	if _, errs := ccparse.ParseAll(reread, ccparse.Options{}); len(errs) > 0 {
		t.Fatalf("re-read corpus has parse errors: %v", errs[0])
	}
}

func TestCalibrationHelpers(t *testing.T) {
	specs := DefaultSpec()
	if got := TotalModeratePlus(specs); got != 554 {
		t.Errorf("spec moderate+ = %d, want 554", got)
	}
	if got := TotalCasts(specs); got < 1400 {
		t.Errorf("spec casts = %d, want >= 1400", got)
	}
}
