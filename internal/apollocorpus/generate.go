package apollocorpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/srcfile"
)

// Generate synthesizes the corpus for the given module specs. The same
// seed always yields byte-identical output, so calibration tests and the
// benchmark harness measure a stable subject.
func Generate(specs []ModuleSpec, seed int64) *srcfile.FileSet {
	fs := srcfile.NewFileSet()
	rng := rand.New(rand.NewSource(seed))
	for _, spec := range specs {
		generateModule(fs, spec, rng)
	}
	return fs
}

// GenerateDefault builds the calibrated corpus with the canonical seed.
func GenerateDefault() *srcfile.FileSet { return Generate(DefaultSpec(), 26262) }

// verbs/nouns give functions plausible, style-conformant names.
var verbs = []string{
	"Process", "Estimate", "Track", "Fuse", "Filter", "Project", "Decode",
	"Classify", "Segment", "Predict", "Plan", "Smooth", "Validate", "Update",
	"Compute", "Extract", "Align", "Match", "Cluster", "Refine",
}

var nouns = []string{
	"Frame", "Obstacle", "Trajectory", "Lane", "Pose", "PointCloud", "Grid",
	"Anchor", "Feature", "Track", "Route", "Signal", "Boundary", "Velocity",
	"Heading", "Region", "Contour", "Window", "Batch", "Tensor",
}

type fileBuilder struct {
	path  string
	sb    strings.Builder
	lines int
}

func (fb *fileBuilder) add(s string) {
	fb.sb.WriteString(s)
	fb.lines += strings.Count(s, "\n")
}

func generateModule(fs *srcfile.FileSet, spec ModuleSpec, rng *rand.Rand) {
	files := make([]*fileBuilder, spec.Files)
	for i := range files {
		fb := &fileBuilder{path: fmt.Sprintf("%s/%s_%02d.cc", spec.Name, spec.Name, i)}
		fb.add(fmt.Sprintf("// Generated Apollo-like source: module %s, file %d.\n", spec.Name, i))
		fb.add("#include <vector>\n#include <cmath>\n\n")
		fb.add("namespace apollo {\nnamespace " + spec.Name + " {\n\n")
		files[i] = fb
	}

	// Globals, spread evenly (Observation: ~900 in perception).
	for g := 0; g < spec.Globals; g++ {
		fb := files[g%len(files)]
		switch g % 3 {
		case 0:
			fb.add(fmt.Sprintf("float g_%s_state_%d = 0.0f;\n", spec.Name, g))
		case 1:
			fb.add(fmt.Sprintf("int g_%s_count_%d = 0;\n", spec.Name, g))
		default:
			fb.add(fmt.Sprintf("static float g_%s_cache_%d;\n", spec.Name, g))
		}
	}
	for _, fb := range files {
		fb.add("\n")
	}

	// Unions (MISRA finding seeds).
	for u := 0; u < spec.Unions; u++ {
		fb := files[u%len(files)]
		fb.add(fmt.Sprintf("union RawWord%d {\n  int bits;\n  float value;\n};\n\n", u))
	}

	g := &funcGen{rng: rng, module: spec.Name, castBudget: spec.Casts}

	emit := func(idx int, text string) {
		files[idx%len(files)].add(text)
	}
	next := 0

	// Specials first so exact band counts survive any LOC truncation.
	for i := 0; i < spec.Moderate; i++ {
		ccn := 11 + g.rng.Intn(10) // 11..20
		emit(next, g.function(ccn, g.multiExit(spec.MultiExitFrac)))
		next++
	}
	for i := 0; i < spec.Risky; i++ {
		ccn := 21 + g.rng.Intn(30) // 21..50
		emit(next, g.function(ccn, g.multiExit(spec.MultiExitFrac)))
		next++
	}
	for i := 0; i < spec.Unstable; i++ {
		ccn := 51 + g.rng.Intn(20) // 51..70
		emit(next, g.function(ccn, g.multiExit(spec.MultiExitFrac)))
		next++
	}
	for i := 0; i < spec.Gotos; i++ {
		emit(next, g.gotoFunction())
		next++
	}
	for i := 0; i < spec.Recursions; i++ {
		emit(next, g.recursiveFunction())
		next++
	}
	for i := 0; i < spec.UninitVars; i++ {
		emit(next, g.uninitFunction())
		next++
	}
	for i := 0; i < spec.ThreadUses; i++ {
		emit(next, g.threadFunction(i))
		next++
	}

	// Fillers until the LOC budget is met.
	total := func() int {
		n := 0
		for _, fb := range files {
			n += fb.lines
		}
		return n
	}
	budget := spec.TargetLOC - 3*len(files) // reserve for closers
	for total() < budget {
		ccn := 1 + g.rng.Intn(8) // low band
		emit(next, g.function(ccn, g.multiExit(spec.MultiExitFrac)))
		next++
	}

	for _, fb := range files {
		fb.add("\n}  // namespace " + spec.Name + "\n}  // namespace apollo\n")
		fs.AddSource(fb.path, fb.sb.String())
	}

	for i := 0; i < spec.CUDAFiles; i++ {
		fs.AddSource(fmt.Sprintf("%s/cuda/%s_kernels_%02d.cu", spec.Name, spec.Name, i),
			cudaFile(spec.Name, i))
	}
}

// funcGen emits one style-conformant function at a time.
type funcGen struct {
	rng        *rand.Rand
	module     string
	nameSeq    int
	castBudget int
}

func (g *funcGen) multiExit(frac float64) bool { return g.rng.Float64() < frac }

func (g *funcGen) name() string {
	n := fmt.Sprintf("%s%s%d", verbs[g.rng.Intn(len(verbs))],
		nouns[g.rng.Intn(len(nouns))], g.nameSeq)
	g.nameSeq++
	return n
}

// function emits a definition with exactly the requested Lizard CCN.
// Multi-exit functions receive one early return (CCN unchanged: the early
// return rides an if that is part of the CCN budget).
func (g *funcGen) function(ccn int, multiExit bool) string {
	var b strings.Builder
	name := g.name()
	fmt.Fprintf(&b, "float %s(const float* input, int size,\n", name)
	b.WriteString("            float scale, int mode) {\n")
	b.WriteString("  float acc = 0.0f;\n")
	b.WriteString("  float limit = scale * 4.0f;\n")
	b.WriteString("  int idx = 0;\n")

	remaining := ccn - 1
	if multiExit && remaining > 0 {
		b.WriteString("  if (size <= 0) {\n    return -1.0f;\n  }\n")
		remaining--
	}
	for remaining > 0 {
		k := g.rng.Intn(6)
		switch {
		case k == 0 || remaining == 1:
			fmt.Fprintf(&b, "  if (mode > %d) {\n    acc += input[idx] * scale;\n  }\n", g.rng.Intn(8))
			remaining--
		case k == 1:
			fmt.Fprintf(&b, "  if (acc > %d.0f) {\n    acc -= limit;\n  } else {\n    acc += limit;\n  }\n", 1+g.rng.Intn(9))
			remaining--
		case k == 2:
			b.WriteString("  for (idx = 0; idx < size; idx++) {\n    acc += input[idx];\n  }\n")
			remaining--
		case k == 3:
			b.WriteString("  while (acc > limit) {\n    acc -= limit;\n  }\n")
			remaining--
		case k == 4 && remaining >= 2:
			fmt.Fprintf(&b, "  if (acc > %d.0f && scale > 0.5f) {\n    acc = acc * 0.5f;\n  }\n", g.rng.Intn(6))
			remaining -= 2
		default:
			n := 2 + g.rng.Intn(3) // case labels
			if n > remaining {
				n = remaining
			}
			b.WriteString("  switch (mode) {\n")
			for c := 0; c < n; c++ {
				fmt.Fprintf(&b, "  case %d:\n    acc += %d.0f;\n    break;\n", c, c+1)
			}
			b.WriteString("  default:\n    acc += 0.5f;\n  }\n")
			remaining -= n
		}
	}
	if g.castBudget > 0 {
		// Two casts per insertion keeps density near the calibrated total.
		b.WriteString("  int bucket = (int)acc;\n")
		b.WriteString("  acc += (float)(bucket % 5);\n")
		g.castBudget -= 2
	}
	// Every ~25th function carries an implicit float→int conversion,
	// evidencing ISO26262-6 Table 8 item 7 alongside the explicit casts.
	if g.nameSeq%25 == 0 {
		b.WriteString("  int approx = acc * 0.5f;\n")
		b.WriteString("  acc += approx;\n")
	}
	b.WriteString("  return acc + (0.01f * idx);\n}\n\n")
	return b.String()
}

func (g *funcGen) gotoFunction() string {
	name := g.name()
	return fmt.Sprintf(`int %s(int* buffer, int size) {
  int status = 0;
  if (buffer == NULL) {
    status = -1;
    goto cleanup;
  }
  if (size <= 0) {
    status = -2;
    goto cleanup;
  }
  buffer[0] = size;
cleanup:
  return status;
}

`, name)
}

func (g *funcGen) recursiveFunction() string {
	name := "Traverse" + nouns[g.rng.Intn(len(nouns))] + fmt.Sprintf("Tree%d", g.nameSeq)
	g.nameSeq++
	return fmt.Sprintf(`float %s(const float* nodes, int index, int depth) {
  if (depth <= 0) {
    return 0.0f;
  }
  float left = %s(nodes, index * 2 + 1, depth - 1);
  float right = %s(nodes, index * 2 + 2, depth - 1);
  return nodes[index] + left + right;
}

`, name, name, name)
}

// threadFunction seeds a scheduling-primitive call site (pthread worker
// spawn plus a polling sleep), evidence for Table 2 item 6.
func (g *funcGen) threadFunction(i int) string {
	name := fmt.Sprintf("Spawn%sWorker%d", nouns[g.rng.Intn(len(nouns))], g.nameSeq)
	g.nameSeq++
	return fmt.Sprintf(`int %s(int* handle, int period_us) {
  int rc = pthread_create(handle, 0, 0, 0);
  if (rc != 0) {
    return rc;
  }
  usleep(period_us);
  return %d;
}

`, name, i)
}

func (g *funcGen) uninitFunction() string {
	name := g.name()
	return fmt.Sprintf(`float %s(float scale) {
  float bias;
  float acc = 0.0f;
  acc = bias * scale;
  return acc;
}

`, name)
}

// cudaFile emits a GPU source file matching Figure 4's structure: kernels
// built on pointer parameters, device allocation via cudaMalloc, and
// <<<...>>> launches.
func cudaFile(module string, idx int) string {
	return fmt.Sprintf(`// Generated CUDA source: module %[1]s, GPU file %[2]d.
#include <cuda_runtime.h>

__global__ void scale_bias_kernel_%[2]d(float *output, float *biases,
                                        int n, int size) {
  int offset = blockIdx.x * blockDim.x + threadIdx.x;
  int filter = blockIdx.y;
  if (offset < size) {
    output[(filter * size) + offset] *= biases[filter];
  }
}

__global__ void add_bias_kernel_%[2]d(float *output, float *biases,
                                      int n, int size) {
  int offset = blockIdx.x * blockDim.x + threadIdx.x;
  int filter = blockIdx.y;
  if (offset < size) {
    output[(filter * size) + offset] += biases[filter];
  }
}

float* cuda_make_array_%[2]d(float *x, int n) {
  float *x_gpu;
  cudaMalloc((void**)&x_gpu, n * sizeof(float));
  if (x) {
    cudaMemcpy(x_gpu, x, n * sizeof(float), 1);
  }
  return x_gpu;
}

void scale_bias_gpu_%[2]d(float *output, float *biases, int batch, int n,
                          int size) {
  int blocks = (size - 1) / 256 + 1;
  scale_bias_kernel_%[2]d<<<blocks, 256>>>(output, biases, n, size);
  cudaDeviceSynchronize();
}

void add_bias_gpu_%[2]d(float *output, float *biases, int batch, int n,
                        int size) {
  int blocks = (size - 1) / 256 + 1;
  add_bias_kernel_%[2]d<<<blocks, 256>>>(output, biases, n, size);
  cudaDeviceSynchronize();
}

void release_array_%[2]d(float *x_gpu) {
  cudaFree(x_gpu);
}
`, module, idx)
}

// ScaleBiasSample returns the paper's Figure 4 excerpt as a standalone
// file for the qualitative CUDA findings demonstration.
func ScaleBiasSample() *srcfile.File {
	return &srcfile.File{
		Path: "perception/cuda/scale_bias.cu",
		Lang: srcfile.LangCUDA,
		Src: `// Figure 4: typical CUDA program structure in object detection.
__global__ void scale_bias_kernel(float *output, float *biases,
                                  int n, int size) {
  int offset = blockIdx.x * blockDim.x + threadIdx.x;
  int filter = blockIdx.y;
  if (offset < size) {
    output[(filter * size) + offset] *= biases[filter];
  }
}

void scale_bias_gpu(float *output, float *biases, int batch, int n,
                    int size) {
  float *d_output;
  float *d_biases;
  cudaMalloc((void**)&d_output, batch * n * size * sizeof(float));
  cudaMalloc((void**)&d_biases, n * sizeof(float));
  int blocks = (size - 1) / 256 + 1;
  scale_bias_kernel<<<blocks, 256>>>(d_output, d_biases, n, size);
  cudaDeviceSynchronize();
  cudaFree(d_output);
  cudaFree(d_biases);
}
`,
	}
}
