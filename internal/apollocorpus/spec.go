// Package apollocorpus synthesizes the assessment subject: an Apollo-like
// autonomous-driving codebase in C/C++/CUDA whose measurable statistics are
// calibrated to what the paper reports for Apollo (Section 3):
//
//   - > 220k LOC across the AD pipeline modules of Figure 1;
//   - modules between 5k and 60k LOC (Observation 13);
//   - 554 functions of moderate-or-worse cyclomatic complexity (Figure 3);
//   - > 1,400 explicit casts (Observation 5);
//   - ≈ 900 global variables in the perception module (Table 3 item 5);
//   - 41% of object-detection functions with multiple exit points;
//   - CUDA kernels whose structure matches Figure 4 (pointers + dynamic
//     device memory);
//   - no defensive programming, a few gotos/recursions/unions, and a
//     handful of uninitialized variables (Table 3 discussion).
//
// The package also bundles the hand-written YOLO C corpus used by the
// Figure 5 coverage study and the 2D/3D stencil CUDA kernels used by the
// Figure 6 cuda4cpu study.
package apollocorpus

// ModuleSpec drives generation of one AD module.
type ModuleSpec struct {
	// Name is the module directory ("perception", "planning", ...).
	Name string
	// Files is the number of C++ source files to emit (CUDA files extra).
	Files int
	// TargetLOC is the approximate physical-line budget.
	TargetLOC int
	// Moderate/Risky/Unstable are the exact numbers of functions to emit
	// in CCN bands 11-20, 21-50, and >50 respectively.
	Moderate int
	Risky    int
	Unstable int
	// Casts is the approximate number of explicit casts to sprinkle.
	Casts int
	// Globals is the number of mutable file/namespace-scope variables.
	Globals int
	// MultiExitFrac is the fraction of functions given >1 return.
	MultiExitFrac float64
	// CUDAFiles adds GPU source files with kernels and launches.
	CUDAFiles int
	// Gotos, Recursions, Unions, UninitVars seed the respective findings.
	Gotos      int
	Recursions int
	Unions     int
	UninitVars int
	// ThreadUses seeds pthread/scheduling-API call sites (Table 2 item 6
	// evidence: scheduling primitives without WCET argumentation).
	ThreadUses int
}

// DefaultSpec returns the calibrated module set. The moderate+risky+
// unstable counts sum to 554 framework-wide, matching Figure 3's total;
// cast counts sum to 1,460 (> 1,400); perception carries 900 globals.
func DefaultSpec() []ModuleSpec {
	return []ModuleSpec{
		{Name: "perception", Files: 40, TargetLOC: 60000,
			Moderate: 120, Risky: 45, Unstable: 8,
			Casts: 420, Globals: 900, MultiExitFrac: 0.41,
			CUDAFiles: 6, Gotos: 6, Recursions: 2, Unions: 2, UninitVars: 6},
		{Name: "planning", Files: 30, TargetLOC: 45000,
			Moderate: 70, Risky: 25, Unstable: 4,
			Casts: 260, Globals: 120, MultiExitFrac: 0.3,
			Gotos: 4, Recursions: 2, Unions: 1, UninitVars: 4},
		{Name: "prediction", Files: 18, TargetLOC: 25000,
			Moderate: 45, Risky: 12, Unstable: 2,
			Casts: 150, Globals: 80, MultiExitFrac: 0.28,
			Gotos: 2, Recursions: 1, Unions: 1, UninitVars: 3},
		{Name: "localization", Files: 14, TargetLOC: 20000,
			Moderate: 30, Risky: 10, Unstable: 1,
			Casts: 120, Globals: 60, MultiExitFrac: 0.25,
			Gotos: 2, Recursions: 0, Unions: 1, UninitVars: 2},
		{Name: "map", Files: 13, TargetLOC: 18000,
			Moderate: 28, Risky: 9, Unstable: 1,
			Casts: 110, Globals: 55, MultiExitFrac: 0.25,
			Gotos: 1, Recursions: 1, Unions: 0, UninitVars: 2},
		{Name: "control", Files: 11, TargetLOC: 15000,
			Moderate: 28, Risky: 8, Unstable: 1,
			Casts: 100, Globals: 50, MultiExitFrac: 0.25,
			Gotos: 2, Recursions: 0, Unions: 0, UninitVars: 2, ThreadUses: 3},
		{Name: "common", Files: 9, TargetLOC: 12000,
			Moderate: 25, Risky: 6, Unstable: 1,
			Casts: 90, Globals: 45, MultiExitFrac: 0.22,
			Gotos: 1, Recursions: 1, Unions: 1, UninitVars: 1},
		{Name: "drivers", Files: 8, TargetLOC: 10000,
			Moderate: 24, Risky: 6, Unstable: 1,
			Casts: 90, Globals: 40, MultiExitFrac: 0.22,
			Gotos: 1, Recursions: 0, Unions: 0, UninitVars: 1, ThreadUses: 4},
		{Name: "routing", Files: 7, TargetLOC: 10000,
			Moderate: 20, Risky: 6, Unstable: 0,
			Casts: 70, Globals: 35, MultiExitFrac: 0.2,
			Gotos: 1, Recursions: 1, Unions: 0, UninitVars: 1},
		{Name: "canbus", Files: 6, TargetLOC: 8000,
			Moderate: 14, Risky: 4, Unstable: 0,
			Casts: 50, Globals: 30, MultiExitFrac: 0.2,
			Gotos: 1, Recursions: 0, Unions: 0, UninitVars: 1, ThreadUses: 6},
	}
}

// TotalModeratePlus sums the calibrated moderate-or-worse function count.
func TotalModeratePlus(specs []ModuleSpec) int {
	n := 0
	for _, s := range specs {
		n += s.Moderate + s.Risky + s.Unstable
	}
	return n
}

// TotalCasts sums the calibrated cast budget.
func TotalCasts(specs []ModuleSpec) int {
	n := 0
	for _, s := range specs {
		n += s.Casts
	}
	return n
}
