package apollocorpus

import "repro/internal/srcfile"

// StencilCorpus returns the 2D and 3D stencil CUDA kernels used by the
// Figure 6 study: GPU code modified to run on the CPU via the cuda
// emulation layer (the cuda4cpu methodology), then measured for statement
// and branch coverage.
func StencilCorpus() *srcfile.FileSet {
	fs := srcfile.NewFileSet()
	fs.AddSource("stencil/stencil2d.cu", stencil2DSrc)
	fs.AddSource("stencil/stencil3d.cu", stencil3DSrc)
	return fs
}

// StencilEntryPoints returns the host drivers the Figure 6 experiment
// executes. Each drives its kernel through the emulator with a single
// representative input, leaving boundary branches partially exercised —
// which is precisely why the paper reports <100% coverage.
func StencilEntryPoints() []string {
	return []string{"run_stencil2d", "run_stencil3d"}
}

const stencil2DSrc = `/* 5-point 2D Jacobi stencil (cuda4cpu representative kernel). */
__global__ void stencil2d_kernel(float* in, float* out, int width,
                                 int height) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    int col = tid % width;
    int row = tid / width;
    if (col >= width || row >= height) {
        return;
    }
    int idx = row * width + col;
    if (col == 0 || col == width - 1 || row == 0 || row == height - 1) {
        out[idx] = in[idx];
        return;
    }
    float center = in[idx];
    float north = in[idx - width];
    float south = in[idx + width];
    float west = in[idx - 1];
    float east = in[idx + 1];
    out[idx] = 0.2f * (center + north + south + west + east);
}

int run_stencil2d() {
    int width = 8;
    int height = 8;
    int n = width * height;
    float* in = (float*)malloc(n * sizeof(float));
    float* out = (float*)malloc(n * sizeof(float));
    for (int i = 0; i < n; i++) {
        in[i] = (float)(i % 9);
        out[i] = 0.0f;
    }
    stencil2d_kernel<<<n, 1>>>(in, out, width, height);
    int checksum = 0;
    for (int i = 0; i < n; i++) {
        checksum += (int)out[i];
    }
    free(in);
    free(out);
    return checksum;
}
`

const stencil3DSrc = `/* 7-point 3D stencil with clamped boundary handling. */
__global__ void stencil3d_kernel(float* in, float* out, int nx, int ny,
                                 int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int total = nx * ny * nz;
    if (i >= total) {
        return;
    }
    int z = i / (nx * ny);
    int rem = i % (nx * ny);
    int y = rem / nx;
    int x = rem % nx;
    float acc = in[i];
    int samples = 1;
    if (x > 0) { acc += in[i - 1]; samples++; }
    if (x < nx - 1) { acc += in[i + 1]; samples++; }
    if (y > 0) { acc += in[i - nx]; samples++; }
    if (y < ny - 1) { acc += in[i + nx]; samples++; }
    if (z > 0) { acc += in[i - nx * ny]; samples++; }
    if (z < nz - 1) { acc += in[i + nx * ny]; samples++; }
    if (samples > 1 && acc < 0.0f) {
        acc = 0.0f;
    }
    out[i] = acc / samples;
}

int run_stencil3d() {
    int nx = 4;
    int ny = 4;
    int nz = 3;
    int n = nx * ny * nz;
    float* in = (float*)malloc(n * sizeof(float));
    float* out = (float*)malloc(n * sizeof(float));
    for (int i = 0; i < n; i++) {
        in[i] = (float)(i % 5);
        out[i] = 0.0f;
    }
    stencil3d_kernel<<<n, 1>>>(in, out, nx, ny, nz);
    int checksum = 0;
    for (int i = 0; i < n; i++) {
        checksum += (int)out[i];
    }
    free(in);
    free(out);
    return checksum;
}
`
