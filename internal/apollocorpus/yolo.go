package apollocorpus

import "repro/internal/srcfile"

// YoloCorpus returns the hand-written C implementation of the YOLO object
// detection pipeline used by the Figure 5 coverage study. The files mirror
// darknet's layout (activations, blas, box, im2col, gemm, maxpool, region
// layer, network dispatch) but are struct-free so the interpreter can
// execute them directly; the coverage-relevant control structure (switches
// over layer/activation types, boundary branches, compound conditions) is
// preserved.
func YoloCorpus() *srcfile.FileSet {
	fs := srcfile.NewFileSet()
	for path, src := range yoloSources {
		fs.AddSource(path, src)
	}
	return fs
}

// YoloDriverFile is the test harness translation unit; it is executed but
// excluded from per-file coverage reporting, mirroring how RapiCover
// reports only the code under test.
const YoloDriverFile = "yolo/test_harness.c"

// YoloEntryPoints returns the driver functions the Figure 5 experiment
// executes, in order. They correspond to the "several real-scenario tests"
// the paper runs.
func YoloEntryPoints() []string {
	return []string{
		"test_activations", "test_blas", "test_box", "test_im2col",
		"test_gemm", "test_maxpool", "test_region", "test_network",
	}
}

var yoloSources = map[string]string{
	"yolo/activations.c": `/* Activation functions (darknet activations.c). */
float linear_activate(float x) { return x; }

float logistic_activate(float x) { return 1.0f / (1.0f + expf(0.0f - x)); }

float relu_activate(float x) {
    if (x > 0.0f) { return x; }
    return 0.0f;
}

float leaky_activate(float x) {
    if (x > 0.0f) { return x; }
    return 0.1f * x;
}

float tanh_activate(float x) {
    float ep = expf(x);
    float em = expf(0.0f - x);
    return (ep - em) / (ep + em);
}

float activate(float x, int a) {
    switch (a) {
    case 0:
        return linear_activate(x);
    case 1:
        return logistic_activate(x);
    case 2:
        return relu_activate(x);
    case 3:
        return leaky_activate(x);
    case 4:
        return tanh_activate(x);
    default:
        return x;
    }
}

void activate_array(float* x, int n, int a) {
    for (int i = 0; i < n; i++) {
        x[i] = activate(x[i], a);
    }
}
`,

	"yolo/blas.c": `/* Vector primitives (darknet blas.c). */
void fill_cpu(int n, float alpha, float* x, int incx) {
    for (int i = 0; i < n; i++) {
        x[i * incx] = alpha;
    }
}

void copy_cpu(int n, float* x, int incx, float* y, int incy) {
    for (int i = 0; i < n; i++) {
        y[i * incy] = x[i * incx];
    }
}

void axpy_cpu(int n, float alpha, float* x, int incx, float* y, int incy) {
    for (int i = 0; i < n; i++) {
        y[i * incy] += alpha * x[i * incx];
    }
}

void scal_cpu(int n, float alpha, float* x, int incx) {
    for (int i = 0; i < n; i++) {
        x[i * incx] *= alpha;
    }
}

float dot_cpu(int n, float* x, int incx, float* y, int incy) {
    float dot = 0.0f;
    for (int i = 0; i < n; i++) {
        dot += x[i * incx] * y[i * incy];
    }
    return dot;
}

void softmax(float* input, int n, float temp, float* output) {
    float largest = input[0];
    for (int i = 1; i < n; i++) {
        if (input[i] > largest) { largest = input[i]; }
    }
    float sum = 0.0f;
    for (int i = 0; i < n; i++) {
        float e = expf((input[i] - largest) / temp);
        sum += e;
        output[i] = e;
    }
    for (int i = 0; i < n; i++) {
        output[i] /= sum;
    }
}
`,

	"yolo/box.c": `/* Box geometry (darknet box.c). Boxes are (x, y, w, h) quads. */
float overlap(float x1, float w1, float x2, float w2) {
    float l1 = x1 - w1 / 2.0f;
    float l2 = x2 - w2 / 2.0f;
    float left = l1;
    if (l2 > l1) { left = l2; }
    float r1 = x1 + w1 / 2.0f;
    float r2 = x2 + w2 / 2.0f;
    float right = r1;
    if (r2 < r1) { right = r2; }
    return right - left;
}

float box_intersection(float* a, float* b) {
    float w = overlap(a[0], a[2], b[0], b[2]);
    float h = overlap(a[1], a[3], b[1], b[3]);
    if (w < 0.0f || h < 0.0f) { return 0.0f; }
    return w * h;
}

float box_union(float* a, float* b) {
    float i = box_intersection(a, b);
    return a[2] * a[3] + b[2] * b[3] - i;
}

float box_iou(float* a, float* b) {
    float u = box_union(a, b);
    if (u <= 0.0f) { return 0.0f; }
    return box_intersection(a, b) / u;
}

int nms_suppress(float* boxes, float* scores, int n, float thresh) {
    int removed = 0;
    for (int i = 0; i < n; i++) {
        if (scores[i] <= 0.0f) { continue; }
        for (int j = i + 1; j < n; j++) {
            if (scores[j] <= 0.0f) { continue; }
            float iou = box_iou(boxes + i * 4, boxes + j * 4);
            if (iou > thresh) {
                if (scores[i] >= scores[j]) {
                    scores[j] = 0.0f;
                } else {
                    scores[i] = 0.0f;
                }
                removed++;
            }
        }
    }
    return removed;
}
`,

	"yolo/im2col.c": `/* Image-to-column transform (darknet im2col.c), NCHW, square input. */
float im2col_get_pixel(float* im, int height, int width, int row, int col,
                       int channel, int pad) {
    row -= pad;
    col -= pad;
    if (row < 0 || col < 0 || row >= height || col >= width) {
        return 0.0f;
    }
    return im[col + width * (row + height * channel)];
}

void im2col_cpu(float* data_im, int channels, int height, int width,
                int ksize, int stride, int pad, float* data_col) {
    int height_col = (height + 2 * pad - ksize) / stride + 1;
    int width_col = (width + 2 * pad - ksize) / stride + 1;
    int channels_col = channels * ksize * ksize;
    for (int c = 0; c < channels_col; c++) {
        int w_offset = c % ksize;
        int h_offset = (c / ksize) % ksize;
        int c_im = c / ksize / ksize;
        for (int h = 0; h < height_col; h++) {
            for (int w = 0; w < width_col; w++) {
                int im_row = h_offset + h * stride;
                int im_col = w_offset + w * stride;
                int col_index = (c * height_col + h) * width_col + w;
                data_col[col_index] = im2col_get_pixel(
                    data_im, height, width, im_row, im_col, c_im, pad);
            }
        }
    }
}
`,

	"yolo/gemm.c": `/* General matrix multiply (darknet gemm.c). Row-major. */
void gemm_nn(int M, int N, int K, float ALPHA, float* A, int lda, float* B,
             int ldb, float* C, int ldc) {
    for (int i = 0; i < M; i++) {
        for (int k = 0; k < K; k++) {
            float a_part = ALPHA * A[i * lda + k];
            for (int j = 0; j < N; j++) {
                C[i * ldc + j] += a_part * B[k * ldb + j];
            }
        }
    }
}

void gemm_tn(int M, int N, int K, float ALPHA, float* A, int lda, float* B,
             int ldb, float* C, int ldc) {
    for (int i = 0; i < M; i++) {
        for (int k = 0; k < K; k++) {
            float a_part = ALPHA * A[k * lda + i];
            for (int j = 0; j < N; j++) {
                C[i * ldc + j] += a_part * B[k * ldb + j];
            }
        }
    }
}

void gemm_nt(int M, int N, int K, float ALPHA, float* A, int lda, float* B,
             int ldb, float* C, int ldc) {
    for (int i = 0; i < M; i++) {
        for (int j = 0; j < N; j++) {
            float sum = 0.0f;
            for (int k = 0; k < K; k++) {
                sum += ALPHA * A[i * lda + k] * B[j * ldb + k];
            }
            C[i * ldc + j] += sum;
        }
    }
}

void gemm_cpu(int TA, int TB, int M, int N, int K, float ALPHA, float* A,
              int lda, float* B, int ldb, float BETA, float* C, int ldc) {
    if (BETA != 1.0f) {
        for (int i = 0; i < M; i++) {
            for (int j = 0; j < N; j++) {
                C[i * ldc + j] *= BETA;
            }
        }
    }
    if (TA == 0 && TB == 0) {
        gemm_nn(M, N, K, ALPHA, A, lda, B, ldb, C, ldc);
    } else if (TA == 1 && TB == 0) {
        gemm_tn(M, N, K, ALPHA, A, lda, B, ldb, C, ldc);
    } else {
        gemm_nt(M, N, K, ALPHA, A, lda, B, ldb, C, ldc);
    }
}
`,

	"yolo/maxpool_layer.c": `/* Max pooling forward pass (darknet maxpool_layer.c). */
void forward_maxpool(float* input, int h, int w, int c, int size, int stride,
                     int pad, float* output) {
    int out_h = (h + pad - size) / stride + 1;
    int out_w = (w + pad - size) / stride + 1;
    for (int k = 0; k < c; k++) {
        for (int i = 0; i < out_h; i++) {
            for (int j = 0; j < out_w; j++) {
                float max = 0.0f - 999999.0f;
                for (int n = 0; n < size; n++) {
                    for (int m = 0; m < size; m++) {
                        int cur_h = i * stride + n - pad / 2;
                        int cur_w = j * stride + m - pad / 2;
                        int valid = 1;
                        if (cur_h < 0 || cur_h >= h) { valid = 0; }
                        if (cur_w < 0 || cur_w >= w) { valid = 0; }
                        if (valid == 1) {
                            float val = input[cur_w + w * (cur_h + h * k)];
                            if (val > max) { max = val; }
                        }
                    }
                }
                output[j + out_w * (i + out_h * k)] = max;
            }
        }
    }
}
`,

	"yolo/region_layer.c": `/* Region/detection layer (darknet region_layer.c simplified). */
float get_region_box(float* x, float* biases, int n, int index, int i, int j,
                     int w, int h, int coord) {
    if (coord == 0) { return (i + x[index]) / w; }
    if (coord == 1) { return (j + x[index + 1]) / h; }
    if (coord == 2) { return expf(x[index + 2]) * biases[2 * n] / w; }
    return expf(x[index + 3]) * biases[2 * n + 1] / h;
}

int region_detections(float* predictions, float* biases, int w, int h,
                      int num, int classes, float thresh, float* probs) {
    int count = 0;
    int stride = classes + 5;
    for (int i = 0; i < w * h; i++) {
        for (int n = 0; n < num; n++) {
            int index = (i * num + n) * stride;
            float scale = predictions[index + 4];
            if (scale <= thresh) { continue; }
            for (int c = 0; c < classes; c++) {
                float prob = scale * predictions[index + 5 + c];
                if (prob > thresh && prob > probs[i * classes + c]) {
                    probs[i * classes + c] = prob;
                    count++;
                }
            }
        }
    }
    return count;
}

int filter_confidence(float* probs, int total, float thresh, float hyst,
                      int strict) {
    int kept = 0;
    for (int i = 0; i < total; i++) {
        if ((probs[i] > thresh && strict == 1) ||
            (probs[i] > thresh * hyst && strict == 0)) {
            kept++;
        } else {
            probs[i] = 0.0f;
        }
    }
    return kept;
}
`,

	"yolo/network.c": `/* Network forward dispatch (darknet network.c simplified).
 * Layer types: 0 conv, 1 maxpool, 2 region, 3 route, 4 shortcut. */
int layer_output_size(int type, int h, int w, int c, int size, int stride) {
    if (type == 0) {
        return h * w * c;
    }
    if (type == 1) {
        int oh = (h - size) / stride + 1;
        int ow = (w - size) / stride + 1;
        return oh * ow * c;
    }
    if (type == 2) {
        return h * w * c;
    }
    if (type == 3) {
        return h * w * c * 2;
    }
    return h * w * c;
}

int forward_network(int* types, int n_layers, int h, int w, int c) {
    int total = 0;
    for (int l = 0; l < n_layers; l++) {
        int type = types[l];
        switch (type) {
        case 0:
            total += layer_output_size(0, h, w, c, 3, 1);
            break;
        case 1:
            total += layer_output_size(1, h, w, c, 2, 2);
            h = (h - 2) / 2 + 1;
            w = (w - 2) / 2 + 1;
            break;
        case 2:
            total += layer_output_size(2, h, w, c, 0, 0);
            break;
        case 3:
            total += layer_output_size(3, h, w, c, 0, 0);
            break;
        case 4:
            total += layer_output_size(4, h, w, c, 0, 0);
            break;
        default:
            total += 0;
        }
    }
    return total;
}
`,

	YoloDriverFile: `/* Test drivers: the "real-scenario tests" executed for Figure 5.
 * Deliberately incomplete, as the paper observes: available tests leave
 * statement, branch, and MC/DC coverage well short of 100%. */
int test_activations() {
    float buf[8];
    for (int i = 0; i < 8; i++) { buf[i] = (float)(i - 4); }
    activate_array(buf, 8, 2);
    activate_array(buf, 8, 1);
    return 0;
}

int test_blas() {
    float x[16];
    float y[16];
    fill_cpu(16, 1.5f, x, 1);
    copy_cpu(16, x, 1, y, 1);
    axpy_cpu(16, 2.0f, x, 1, y, 1);
    scal_cpu(16, 0.5f, y, 1);
    float d = dot_cpu(16, x, 1, y, 1);
    float sm[4];
    float out[4];
    sm[0] = 1.0f; sm[1] = 2.0f; sm[2] = 0.5f; sm[3] = 0.1f;
    softmax(sm, 4, 1.0f, out);
    return (int)d;
}

int test_box() {
    float a[4];
    float b[4];
    a[0] = 0.5f; a[1] = 0.5f; a[2] = 0.4f; a[3] = 0.4f;
    b[0] = 0.6f; b[1] = 0.6f; b[2] = 0.4f; b[3] = 0.4f;
    float iou = box_iou(a, b);
    float boxes[8];
    float scores[2];
    for (int i = 0; i < 4; i++) { boxes[i] = a[i]; boxes[4 + i] = b[i]; }
    scores[0] = 0.9f; scores[1] = 0.8f;
    nms_suppress(boxes, scores, 2, 0.3f);
    return (int)(iou * 100.0f);
}

int test_im2col() {
    float im[48];
    float col[400];
    for (int i = 0; i < 48; i++) { im[i] = (float)i; }
    im2col_cpu(im, 3, 4, 4, 2, 1, 0, col);
    return (int)col[0];
}

int test_gemm() {
    float A[16];
    float B[16];
    float C[16];
    for (int i = 0; i < 16; i++) { A[i] = 1.0f; B[i] = 2.0f; C[i] = 0.0f; }
    gemm_cpu(0, 0, 4, 4, 4, 1.0f, A, 4, B, 4, 1.0f, C, 4);
    return (int)C[0];
}

int test_maxpool() {
    float in[64];
    float out[16];
    for (int i = 0; i < 64; i++) { in[i] = (float)(i % 7); }
    forward_maxpool(in, 8, 8, 1, 2, 2, 0, out);
    return (int)out[0];
}

int test_region() {
    float preds[40];
    float biases[4];
    float probs[8];
    for (int i = 0; i < 40; i++) { preds[i] = 0.4f; }
    preds[4] = 0.9f;
    biases[0] = 1.0f; biases[1] = 1.0f; biases[2] = 2.0f; biases[3] = 2.0f;
    for (int i = 0; i < 8; i++) { probs[i] = 0.0f; }
    int n = region_detections(preds, biases, 2, 1, 1, 3, 0.2f, probs);
    filter_confidence(probs, 8, 0.2f, 0.8f, 1);
    float bx = get_region_box(preds, biases, 0, 0, 0, 0, 2, 1, 0);
    return n + (int)bx;
}

int test_network() {
    int types[4];
    types[0] = 0; types[1] = 1; types[2] = 0; types[3] = 2;
    return forward_network(types, 4, 16, 16, 3);
}
`,
}
