// Package artifact is the shared per-function analysis cache of the
// assessment pipeline. The seed pipeline re-derived the same facts about
// every function several times over: rules.NewContext walked each body for
// callees, metrics.Analyze walked it twice more for cyclomatic complexity
// and return counts, and metrics.AnalyzeArch walked it again for the
// cross-module call inventory. Build performs ONE walk per function body
// (executed in parallel across files) and records every fact those
// consumers need; control-flow graphs are built lazily and memoized so
// CFG-based consumers (coverage instrumentation) also construct each
// graph exactly once.
package artifact

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/ccast"
	"repro/internal/cfg"
	"repro/internal/par"
	"repro/internal/srcfile"
)

// Func is the cached analysis record of one function definition.
type Func struct {
	Decl   *ccast.FuncDecl
	File   *srcfile.File
	Module string
	// Calls holds the raw callee spellings in traversal order: the full
	// (possibly qualified) identifier for direct calls, the member name
	// for method calls. Consumers needing unqualified names apply Unqualified.
	Calls []string
	// CCN is the Lizard-compatible cyclomatic complexity (identical to
	// metrics.Cyclomatic, computed in the same walk that gathers Calls).
	CCN int
	// Returns is the number of return statements anywhere in the body.
	Returns int

	cfgOnce sync.Once
	cfgG    *cfg.Graph
}

// CFG returns the function's control-flow graph, building it on first use
// and memoizing it. Safe for concurrent callers.
func (f *Func) CFG() *cfg.Graph {
	f.cfgOnce.Do(func() { f.cfgG = cfg.Build(f.Decl) })
	return f.cfgG
}

// Index is the corpus-wide artifact cache shared by the rule engine,
// metrics, architectural analysis, and coverage instrumentation.
type Index struct {
	Units map[string]*ccast.TranslationUnit
	// Paths lists unit paths in sorted order; every deterministic
	// iteration in the pipeline follows this order.
	Paths []string
	// Funcs lists every function definition in path order.
	Funcs []*Func
	// ByName indexes function definitions by unqualified name; multiple
	// definitions with the same name keep the first (path order).
	ByName map[string]*Func
	// GlobalNames maps file-scope variable names to their module (later
	// files overwrite earlier ones, matching the seed rules.NewContext).
	GlobalNames map[string]string
	// unitFuncs holds each unit's functions in source order.
	unitFuncs map[string][]*Func
	// gen counts refreshes; consumers key derived caches on it.
	gen uint64
}

// Gen returns the index generation, bumped by every Build/Apply
// refresh. Two reads with equal Gen (and equal Index pointer) observe
// identical cross-file views, so derived caches can key on it.
func (ix *Index) Gen() uint64 { return ix.gen }

// UnitFuncs returns the cached per-unit function list in source order.
func (ix *Index) UnitFuncs(path string) []*Func { return ix.unitFuncs[path] }

// Unqualified strips namespace/class qualifiers from a name.
func Unqualified(name string) string {
	if i := strings.LastIndex(name, "::"); i >= 0 {
		return name[i+2:]
	}
	return name
}

// CalleeName extracts the raw callee spelling from a call expression: the
// full identifier spelling for direct calls, the member name for method
// calls, "" otherwise.
func CalleeName(c *ccast.Call) string {
	switch f := c.Fun.(type) {
	case *ccast.Ident:
		return f.Name
	case *ccast.Member:
		return f.Name
	default:
		return ""
	}
}

// Analyze computes the artifact record for one function definition with a
// single traversal of its body.
func Analyze(fn *ccast.FuncDecl, file *srcfile.File, module string) *Func {
	fa := &Func{Decl: fn, File: file, Module: module}
	if fn.Body == nil {
		return fa
	}
	ccn := 1
	ccast.Walk(fn.Body, func(n ccast.Node) bool {
		switch n := n.(type) {
		case *ccast.If, *ccast.While, *ccast.DoWhile, *ccast.Cond:
			ccn++
		case *ccast.For:
			ccn++
		case *ccast.Switch:
			for _, c := range n.Cases {
				ccn += len(c.Values)
			}
		case *ccast.Binary:
			if n.Op == "&&" || n.Op == "||" {
				ccn++
			}
		case *ccast.Return:
			fa.Returns++
		case *ccast.Call:
			if name := CalleeName(n); name != "" {
				fa.Calls = append(fa.Calls, name)
			}
		}
		return true
	})
	fa.CCN = ccn
	return fa
}

// SortedPaths returns the unit paths in sorted order.
func SortedPaths(units map[string]*ccast.TranslationUnit) []string {
	paths := make([]string, 0, len(units))
	for p := range units {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// analyzeUnit runs the per-function analysis over one translation unit.
func analyzeUnit(tu *ccast.TranslationUnit) []*Func {
	mod := tu.File.ModuleName()
	fns := tu.Funcs()
	fas := make([]*Func, 0, len(fns))
	for _, fn := range fns {
		fas = append(fas, Analyze(fn, tu.File, mod))
	}
	return fas
}

// Build constructs the corpus index. Per-file analysis runs on a worker
// pool sized to GOMAXPROCS; the cross-file indexes (ByName, GlobalNames)
// are merged afterwards in sorted path order so the result is
// deterministic regardless of scheduling.
func Build(units map[string]*ccast.TranslationUnit) *Index {
	ix := &Index{
		Units:     units,
		Paths:     SortedPaths(units),
		unitFuncs: make(map[string][]*Func, len(units)),
	}

	perUnit := make([][]*Func, len(ix.Paths))
	par.For(par.Workers(len(ix.Paths)), len(ix.Paths), func(i int) {
		perUnit[i] = analyzeUnit(units[ix.Paths[i]])
	})
	for i, p := range ix.Paths {
		ix.unitFuncs[p] = perUnit[i]
	}
	ix.refresh()
	return ix
}

// refresh rebuilds the cross-file views (Paths, Funcs, ByName,
// GlobalNames) from Units and unitFuncs in sorted path order. Per-unit
// analysis records are reused as-is, so a refresh is pointer merging
// plus a declaration-list scan — no function body is re-walked and the
// memoized CFGs of untouched functions survive.
func (ix *Index) refresh() {
	ix.gen++
	ix.Paths = SortedPaths(ix.Units)
	nFuncs := 0
	for _, fas := range ix.unitFuncs {
		nFuncs += len(fas)
	}
	ix.Funcs = make([]*Func, 0, nFuncs)
	ix.ByName = make(map[string]*Func, nFuncs)
	ix.GlobalNames = make(map[string]string, 2*len(ix.Paths))
	for _, p := range ix.Paths {
		for _, fa := range ix.unitFuncs[p] {
			ix.Funcs = append(ix.Funcs, fa)
			key := Unqualified(fa.Decl.Name)
			if _, dup := ix.ByName[key]; !dup {
				ix.ByName[key] = fa
			}
		}
		tu := ix.Units[p]
		mod := tu.File.ModuleName()
		for _, vd := range tu.GlobalVars() {
			for _, d := range vd.Names {
				ix.GlobalNames[d.Name] = mod
			}
		}
	}
}

// Apply updates the index in place for a corpus delta: every unit in
// upserts is (re-)analyzed and added or replaced under its path, every
// path in removals is dropped, and the cross-file views are rebuilt
// once. Only the upserted units are re-walked; all other units keep
// their cached Func records (and memoized CFGs) by pointer, which is
// what makes warm re-assessment after a small edit cheap.
//
// Apply is not safe for concurrent use with readers of the index.
func (ix *Index) Apply(upserts []*ccast.TranslationUnit, removals []string) {
	for _, p := range removals {
		delete(ix.Units, p)
		delete(ix.unitFuncs, p)
	}
	perUnit := make([][]*Func, len(upserts))
	par.For(par.Workers(len(upserts)), len(upserts), func(i int) {
		perUnit[i] = analyzeUnit(upserts[i])
	})
	for i, tu := range upserts {
		ix.Units[tu.File.Path] = tu
		ix.unitFuncs[tu.File.Path] = perUnit[i]
	}
	ix.refresh()
}

// AddUnit indexes one new translation unit (add or replace by path).
func (ix *Index) AddUnit(tu *ccast.TranslationUnit) {
	ix.Apply([]*ccast.TranslationUnit{tu}, nil)
}

// ReplaceUnit re-indexes one changed translation unit. It is AddUnit
// under a name that states the intent at call sites.
func (ix *Index) ReplaceUnit(tu *ccast.TranslationUnit) { ix.AddUnit(tu) }

// RemoveUnit drops one unit from the index.
func (ix *Index) RemoveUnit(path string) {
	ix.Apply(nil, []string{path})
}
