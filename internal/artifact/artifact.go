// Package artifact is the shared per-function analysis cache of the
// assessment pipeline. The seed pipeline re-derived the same facts about
// every function several times over: rules.NewContext walked each body for
// callees, metrics.Analyze walked it twice more for cyclomatic complexity
// and return counts, and metrics.AnalyzeArch walked it again for the
// cross-module call inventory. Build performs ONE walk per function body
// (executed in parallel across files) and records every fact those
// consumers need; control-flow graphs are built lazily and memoized so
// CFG-based consumers (coverage instrumentation) also construct each
// graph exactly once.
//
// The index is internally sharded by module (see shard.go): Apply
// rebuilds only the shards a delta touches and patches the global
// cross-file views from champion diffs, so warm re-indexing after a
// small edit costs O(dirty shard) instead of O(corpus).
package artifact

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/ccast"
	"repro/internal/cfg"
	"repro/internal/par"
	"repro/internal/srcfile"
)

// Func is the cached analysis record of one function definition.
type Func struct {
	Decl   *ccast.FuncDecl
	File   *srcfile.File
	Module string
	// Calls holds the raw callee spellings in traversal order: the full
	// (possibly qualified) identifier for direct calls, the member name
	// for method calls.
	Calls []string
	// Callees holds the unqualified forms of Calls, precomputed in the
	// same analysis walk so consumers (the rule engine) never re-derive
	// them. Index-aligned with Calls.
	Callees []string
	// CCN is the Lizard-compatible cyclomatic complexity (identical to
	// metrics.Cyclomatic, computed in the same walk that gathers Calls).
	CCN int
	// Returns is the number of return statements anywhere in the body.
	Returns int

	cfgOnce sync.Once
	cfgG    *cfg.Graph
}

// CFG returns the function's control-flow graph, building it on first use
// and memoizing it. Safe for concurrent callers.
func (f *Func) CFG() *cfg.Graph {
	f.cfgOnce.Do(func() { f.cfgG = cfg.Build(f.Decl) })
	return f.cfgG
}

// Index is the corpus-wide artifact cache shared by the rule engine,
// metrics, architectural analysis, and coverage instrumentation.
type Index struct {
	Units map[string]*ccast.TranslationUnit
	// Paths lists unit paths in sorted order; every deterministic
	// iteration in the pipeline follows this order.
	Paths []string
	// Funcs lists every function definition in path order.
	Funcs []*Func
	// ByName indexes function definitions by unqualified name; multiple
	// definitions with the same name keep the first (path order).
	ByName map[string]*Func
	// GlobalNames maps file-scope variable names to their module (later
	// files overwrite earlier ones, matching the seed rules.NewContext).
	GlobalNames map[string]string
	// lastDef indexes function definitions by unqualified name keeping
	// the LAST (path order) — the architectural FuncModule resolution.
	lastDef map[string]*Func
	// unitFuncs holds each unit's functions in source order.
	unitFuncs map[string][]*Func
	// shards partitions the corpus by module.
	shards     map[string]*Shard
	shardNames []string
	// gen counts refreshes; consumers key derived caches on it.
	gen uint64
	// refreshSeq issues globally-unique shard generations: every shard
	// refresh of any shard draws the next value. A shard that is
	// removed and later re-created can therefore never repeat a
	// generation its predecessor handed out, so (module, Shard.Gen)
	// keys in downstream caches cannot collide across shard lifetimes.
	refreshSeq uint64
	// lastApply describes the most recent Apply (observability).
	lastApply ApplyStats
}

// ApplyStats describes what one Apply actually touched — the
// observability face of the O(dirty shard) claim.
type ApplyStats struct {
	// Upserts is the number of units (re-)analyzed.
	Upserts int
	// Removals is the number of paths dropped.
	Removals int
	// DirtyShards is the number of shards whose views refreshed (or
	// drained), out of Shards total.
	DirtyShards int
	// Shards is the post-apply shard count.
	Shards int
	// Width is the worker count the parallel shard refresh ran at.
	Width int
}

// LastApply returns the stats of the most recent Apply (zero before
// any). Like Apply itself it must not race with Apply.
func (ix *Index) LastApply() ApplyStats { return ix.lastApply }

// Gen returns the index generation, bumped by every Build/Apply
// refresh. Two reads with equal Gen (and equal Index pointer) observe
// identical cross-file views, so derived caches can key on it. Finer
// invalidation is available per shard (Shard.Gen) and per overlay
// (ExportOverlay, GraphOverlay).
func (ix *Index) Gen() uint64 { return ix.gen }

// UnitFuncs returns the cached per-unit function list in source order.
func (ix *Index) UnitFuncs(path string) []*Func { return ix.unitFuncs[path] }

// Unqualified strips namespace/class qualifiers from a name.
func Unqualified(name string) string {
	if i := strings.LastIndex(name, "::"); i >= 0 {
		return name[i+2:]
	}
	return name
}

// CalleeName extracts the raw callee spelling from a call expression: the
// full identifier spelling for direct calls, the member name for method
// calls, "" otherwise.
func CalleeName(c *ccast.Call) string {
	switch f := c.Fun.(type) {
	case *ccast.Ident:
		return f.Name
	case *ccast.Member:
		return f.Name
	default:
		return ""
	}
}

// Analyze computes the artifact record for one function definition with a
// single traversal of its body.
func Analyze(fn *ccast.FuncDecl, file *srcfile.File, module string) *Func {
	fa := &Func{Decl: fn, File: file, Module: module}
	if fn.Body == nil {
		return fa
	}
	ccn := 1
	ccast.Walk(fn.Body, func(n ccast.Node) bool {
		switch n := n.(type) {
		case *ccast.If, *ccast.While, *ccast.DoWhile, *ccast.Cond:
			ccn++
		case *ccast.For:
			ccn++
		case *ccast.Switch:
			for _, c := range n.Cases {
				ccn += len(c.Values)
			}
		case *ccast.Binary:
			if n.Op == "&&" || n.Op == "||" {
				ccn++
			}
		case *ccast.Return:
			fa.Returns++
		case *ccast.Call:
			if name := CalleeName(n); name != "" {
				fa.Calls = append(fa.Calls, name)
			}
		}
		return true
	})
	fa.CCN = ccn
	if len(fa.Calls) > 0 {
		fa.Callees = make([]string, len(fa.Calls))
		for i, raw := range fa.Calls {
			fa.Callees[i] = Unqualified(raw)
		}
	}
	return fa
}

// SortedPaths returns the unit paths in sorted order.
func SortedPaths(units map[string]*ccast.TranslationUnit) []string {
	paths := make([]string, 0, len(units))
	for p := range units {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// analyzeUnit runs the per-function analysis over one translation unit.
func analyzeUnit(tu *ccast.TranslationUnit) []*Func {
	mod := tu.File.ModuleName()
	fns := tu.Funcs()
	fas := make([]*Func, 0, len(fns))
	for _, fn := range fns {
		fas = append(fas, Analyze(fn, tu.File, mod))
	}
	return fas
}

// Build constructs the corpus index. Per-file analysis runs on a worker
// pool sized to GOMAXPROCS; the shard and cross-file views are built
// afterwards in sorted path order so the result is deterministic
// regardless of scheduling.
func Build(units map[string]*ccast.TranslationUnit) *Index {
	ix := &Index{
		Units:     units,
		Paths:     SortedPaths(units),
		unitFuncs: make(map[string][]*Func, len(units)),
		shards:    make(map[string]*Shard),
	}

	perUnit := make([][]*Func, len(ix.Paths))
	par.For(par.Workers(len(ix.Paths)), len(ix.Paths), func(i int) {
		perUnit[i] = analyzeUnit(units[ix.Paths[i]])
	})
	for i, p := range ix.Paths {
		ix.unitFuncs[p] = perUnit[i]
	}

	// Partition into module shards (paths arrive sorted, so each shard's
	// path list is born sorted).
	for _, p := range ix.Paths {
		mod := units[p].File.ModuleName()
		sh := ix.shards[mod]
		if sh == nil {
			sh = &Shard{Module: mod}
			ix.shards[mod] = sh
		}
		sh.paths = append(sh.paths, p)
	}
	ix.rebuildShardNames()
	// Generations are drawn sequentially in sorted module order, then the
	// shard views — which read only the per-unit maps frozen above —
	// rebuild on a worker pool.
	for _, m := range ix.shardNames {
		ix.shards[m].assignGen(ix)
	}
	names := ix.shardNames
	par.For(par.Workers(len(names)), len(names), func(i int) {
		ix.shards[names[i]].rebuildViews(ix)
	})
	ix.rebuildGlobalViews()
	ix.gen++
	return ix
}

// rebuildGlobalViews re-derives the merged cross-file views from scratch
// in global path order — the cold path. Warm deltas never come here;
// they patch the maps via champion diffs instead.
func (ix *Index) rebuildGlobalViews() {
	ix.rebuildFuncs()
	n := len(ix.Funcs)
	ix.ByName = make(map[string]*Func, n)
	ix.lastDef = make(map[string]*Func, n)
	ix.GlobalNames = make(map[string]string, 2*len(ix.Paths))
	for _, fa := range ix.Funcs {
		key := Unqualified(fa.Decl.Name)
		if _, dup := ix.ByName[key]; !dup {
			ix.ByName[key] = fa
		}
		ix.lastDef[key] = fa
	}
	for _, p := range ix.Paths {
		tu := ix.Units[p]
		mod := tu.File.ModuleName()
		for _, vd := range tu.GlobalVars() {
			for _, d := range vd.Names {
				ix.GlobalNames[d.Name] = mod
			}
		}
	}
}

// Apply updates the index in place for a corpus delta: every unit in
// upserts is (re-)analyzed and added or replaced under its path, every
// path in removals is dropped. Only the upserted units are re-walked and
// only the touched shards rebuild their views; all other units keep
// their cached Func records (and memoized CFGs) by pointer, and the
// global cross-file maps are patched for exactly the names whose
// within-shard champions changed. The net cost of a warm Apply is
// O(dirty shard), not O(corpus).
//
// Apply is not safe for concurrent use with readers of the index.
func (ix *Index) Apply(upserts []*ccast.TranslationUnit, removals []string) {
	ix.gen++
	dirty := make(map[string]bool)
	pathsChanged := false

	for _, p := range removals {
		// The owning shard is found by membership, not via Units[p]:
		// callers sharing the Units map (core.Assessor) may already have
		// deleted the entry by the time Apply runs.
		sh := ix.shardContaining(p)
		if sh == nil {
			continue
		}
		delete(ix.Units, p)
		delete(ix.unitFuncs, p)
		sh.removePath(p)
		dirty[sh.Module] = true
		pathsChanged = true
	}

	perUnit := make([][]*Func, len(upserts))
	par.For(par.Workers(len(upserts)), len(upserts), func(i int) {
		perUnit[i] = analyzeUnit(upserts[i])
	})
	for i, tu := range upserts {
		p := tu.File.Path
		mod := tu.File.ModuleName()
		// Adds and module moves are detected against the shards' own
		// path lists, never against Units[p] or the previous unit's
		// File: core.Assessor shares the Units map (and the canonical
		// *File, mutated in place by FileSet.Add) with the index, so
		// both already show the post-delta state by the time Apply
		// runs. Shard membership is Apply's private bookkeeping.
		if oldShard := ix.shardContaining(p); oldShard == nil {
			pathsChanged = true
		} else if oldShard.Module != mod {
			oldShard.removePath(p)
			dirty[oldShard.Module] = true
		}
		ix.Units[p] = tu
		ix.unitFuncs[p] = perUnit[i]
		sh := ix.shards[mod]
		if sh == nil {
			sh = &Shard{Module: mod}
			ix.shards[mod] = sh
			ix.shardNames = nil // rebuilt below
		}
		sh.addPath(p)
		dirty[mod] = true
	}

	// Refresh dirty shards in sorted module order (determinism), collect
	// champion diffs, drop emptied shards.
	mods := make([]string, 0, len(dirty))
	for m := range dirty {
		mods = append(mods, m)
	}
	sort.Strings(mods)
	shardSetChanged := ix.shardNames == nil
	// Drain emptied shards and draw generations sequentially in sorted
	// module order, then refresh the surviving dirty shards' views in
	// parallel. Each diff lands in its module's slot, so the post-barrier
	// champion fold below runs in the same deterministic order as the
	// sequential loop it replaces (a zero-value diff is a no-op).
	diffs := make([]championDiff, len(mods))
	var live []*Shard
	var liveAt []int
	for i, m := range mods {
		sh := ix.shards[m]
		if sh == nil {
			continue
		}
		if len(sh.paths) == 0 {
			diffs[i] = sh.drainChampions()
			delete(ix.shards, m)
			shardSetChanged = true
			continue
		}
		sh.assignGen(ix)
		live = append(live, sh)
		liveAt = append(liveAt, i)
	}
	par.For(par.Workers(len(live)), len(live), func(k int) {
		diffs[liveAt[k]] = live[k].refreshViews(ix)
	})
	if shardSetChanged {
		ix.rebuildShardNames()
	}
	ix.applyChampionDiffs(diffs)
	if pathsChanged {
		ix.rebuildPaths()
	}
	ix.rebuildFuncs()
	ix.lastApply = ApplyStats{
		Upserts:     len(upserts),
		Removals:    len(removals),
		DirtyShards: len(mods),
		Shards:      len(ix.shards),
		Width:       par.Workers(len(live)),
	}
}

// AddUnit indexes one new translation unit (add or replace by path).
func (ix *Index) AddUnit(tu *ccast.TranslationUnit) {
	ix.Apply([]*ccast.TranslationUnit{tu}, nil)
}

// ReplaceUnit re-indexes one changed translation unit. It is AddUnit
// under a name that states the intent at call sites.
func (ix *Index) ReplaceUnit(tu *ccast.TranslationUnit) { ix.AddUnit(tu) }

// RemoveUnit drops one unit from the index.
func (ix *Index) RemoveUnit(path string) {
	ix.Apply(nil, []string{path})
}
