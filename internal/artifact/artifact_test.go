package artifact_test

import (
	"runtime"
	"testing"

	"repro/internal/apollocorpus"
	"repro/internal/artifact"
	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/metrics"
)

func buildIndex(t *testing.T) *artifact.Index {
	t.Helper()
	// Spawn real worker goroutines even on single-core runners so the
	// -race gate covers the parallel build.
	if prev := runtime.GOMAXPROCS(0); prev < 4 {
		runtime.GOMAXPROCS(4)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
	fs := apollocorpus.GenerateDefault()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	return artifact.Build(units)
}

// TestIndexMatchesReferenceTraversals pins the single-pass collector to
// the reference implementations it replaces: metrics.Cyclomatic for CCN,
// ccast.CountReturns for exits, and a dedicated call walk for the callee
// inventory.
func TestIndexMatchesReferenceTraversals(t *testing.T) {
	ix := buildIndex(t)
	if len(ix.Funcs) == 0 {
		t.Fatal("index has no functions")
	}
	for _, fa := range ix.Funcs {
		if want := metrics.Cyclomatic(fa.Decl); fa.CCN != want {
			t.Fatalf("%s: CCN %d, reference %d", fa.Decl.Name, fa.CCN, want)
		}
		if want := ccast.CountReturns(fa.Decl); fa.Returns != want {
			t.Fatalf("%s: returns %d, reference %d", fa.Decl.Name, fa.Returns, want)
		}
		var calls []string
		ccast.WalkExprs(fa.Decl.Body, func(e ccast.Expr) bool {
			if c, ok := e.(*ccast.Call); ok {
				if n := artifact.CalleeName(c); n != "" {
					calls = append(calls, n)
				}
			}
			return true
		})
		if len(calls) != len(fa.Calls) {
			t.Fatalf("%s: %d calls cached, reference %d", fa.Decl.Name, len(fa.Calls), len(calls))
		}
		for i := range calls {
			if calls[i] != fa.Calls[i] {
				t.Fatalf("%s: call %d is %q, reference %q", fa.Decl.Name, i, fa.Calls[i], calls[i])
			}
		}
	}
}

// TestBuildDeterministic checks that the parallel build produces the same
// index shape regardless of scheduling.
func TestBuildDeterministic(t *testing.T) {
	a, b := buildIndex(t), buildIndex(t)
	if len(a.Funcs) != len(b.Funcs) || len(a.Paths) != len(b.Paths) {
		t.Fatalf("index sizes differ: %d/%d funcs, %d/%d paths",
			len(a.Funcs), len(b.Funcs), len(a.Paths), len(b.Paths))
	}
	for i := range a.Funcs {
		if a.Funcs[i].Decl.Name != b.Funcs[i].Decl.Name {
			t.Fatalf("func %d ordering differs: %q vs %q", i, a.Funcs[i].Decl.Name, b.Funcs[i].Decl.Name)
		}
	}
	if len(a.ByName) != len(b.ByName) || len(a.GlobalNames) != len(b.GlobalNames) {
		t.Fatal("cross-file index sizes differ")
	}
	for name, fa := range a.ByName {
		if fb := b.ByName[name]; fb == nil || fb.Decl.Name != fa.Decl.Name || fb.File.Path != fa.File.Path {
			t.Fatalf("ByName[%q] differs between builds", name)
		}
	}
}

// TestCFGMemoized checks the lazy CFG is built once and shared.
func TestCFGMemoized(t *testing.T) {
	ix := buildIndex(t)
	fa := ix.Funcs[0]
	g1, g2 := fa.CFG(), fa.CFG()
	if g1 == nil || g1 != g2 {
		t.Fatal("CFG not memoized")
	}
	if g1.Fn != fa.Decl {
		t.Fatal("CFG built for wrong function")
	}
}
