package artifact

import (
	"sort"
	"testing"
)

// Champion diffs are gathered from map-keyed state; the adlint detrange
// invariant requires them sorted so the index re-resolves names in a
// deterministic order. These tests pin that contract directly.

func TestDiffFuncChampionsSorted(t *testing.T) {
	fa, fb, fc := &Func{}, &Func{}, &Func{}
	old := map[string]*Func{"zeta": fa, "beta": fb, "mid": fc}
	new := map[string]*Func{"zeta": fb, "alpha": fa, "mid": fc}
	// changed: zeta; added: alpha; removed: beta. mid is unchanged.
	out := diffFuncChampions(old, new)
	want := []string{"alpha", "beta", "zeta"}
	if len(out) != len(want) {
		t.Fatalf("diff = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("diff = %v, want %v (sorted)", out, want)
		}
	}
}

func TestDrainChampionsSorted(t *testing.T) {
	sh := &Shard{
		byName:     map[string]*Func{"w": nil, "a": nil, "m": nil},
		lastByName: map[string]*Func{"z": nil, "b": nil},
		globals:    map[string]globalDef{"y": {}, "c": {}, "k": {}},
	}
	diff := sh.drainChampions()
	for _, s := range [][]string{diff.byName, diff.lastDef, diff.globals} {
		if !sort.StringsAreSorted(s) {
			t.Fatalf("drainChampions slice %v is not sorted", s)
		}
	}
	if len(diff.byName) != 3 || len(diff.lastDef) != 2 || len(diff.globals) != 3 {
		t.Fatalf("drainChampions dropped names: %+v", diff)
	}
}
