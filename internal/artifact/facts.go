package artifact

import (
	"fmt"

	"repro/internal/ccast"
	"repro/internal/par"
	"repro/internal/srcfile"
)

// This file is the persistence boundary of the artifact cache. A corpus
// snapshot (internal/store) does not serialize ASTs — re-deriving them
// from source is exactly the cold parse the snapshot exists to avoid.
// It serializes *facts*: for every function the handful of fields the
// warm pipeline actually reads off untouched files (name, return
// voidness, declaration line, parameter count, complexity, return
// count, raw callee spellings) and for every unit its file-scope
// variable names. Those facts are precisely the inputs of the shard
// export/graph signatures (shard.go), so an index rebuilt from facts
// reproduces the pre-snapshot overlays bit-for-bit and every cache
// keyed on them restores warm.
//
// Restored units are *stubs*: fabricated fact-carrying nodes with no
// statement bodies. Every consumer that walks real ASTs (the fused rule
// walks, per-file metrics recomputation) only ever touches files whose
// content changed — which arrive freshly parsed — or asks the owner to
// hydrate first (core.Assessor re-parses stubs on demand via Rehydrate).

// FuncFacts is the serializable projection of a Func record: everything
// the warm pipeline reads about a function in an untouched file.
type FuncFacts struct {
	// Name is the qualified spelling as written ("Detector::Detect").
	Name string
	// Void records Ret == nil || Ret.IsVoid() — the only return fact
	// cross-file consumers (DefensiveRule, the export signature) use.
	Void bool
	// Line is the declaration's starting line.
	Line int
	// Params is the parameter count (architectural interface metrics).
	Params int
	// CCN and Returns mirror the Func counters.
	CCN     int
	Returns int
	// Calls holds the raw callee spellings in traversal order.
	Calls []string
}

// UnitFacts is the serializable projection of one translation unit.
type UnitFacts struct {
	Path string
	// Funcs lists the unit's function records in source order.
	Funcs []FuncFacts
	// Globals lists the unit's file-scope variable names in declaration
	// order (flattened across multi-declarator statements, matching the
	// iteration order of TranslationUnit.GlobalVars).
	Globals []string
}

// FactsOf extracts the persistent facts from a Func record. It works on
// fabricated records too (snapshotting a restored assessor round-trips).
func FactsOf(fa *Func) FuncFacts {
	return FuncFacts{
		Name:    fa.Decl.Name,
		Void:    fa.Decl.Ret == nil || fa.Decl.Ret.IsVoid(),
		Line:    fa.Decl.Span().Start.Line,
		Params:  len(fa.Decl.Params),
		CCN:     fa.CCN,
		Returns: fa.Returns,
		Calls:   fa.Calls,
	}
}

// UnitFacts extracts the persistent facts of one indexed unit.
func (ix *Index) UnitFacts(path string) UnitFacts {
	uf := UnitFacts{Path: path}
	fas := ix.unitFuncs[path]
	uf.Funcs = make([]FuncFacts, len(fas))
	for i, fa := range fas {
		uf.Funcs[i] = FactsOf(fa)
	}
	for _, vd := range ix.Units[path].GlobalVars() {
		for _, d := range vd.Names {
			uf.Globals = append(uf.Globals, d.Name)
		}
	}
	return uf
}

// stubRet is the shared non-void placeholder return type of fabricated
// declarations. Stubs are read-only by contract (consumers needing a
// real AST hydrate first), so one immutable value serves all of them.
var stubRet = &ccast.Type{Name: "int"}

// UnitFromFacts fabricates a stub translation unit and its function
// records from persisted facts. The stub carries exactly the facts the
// warm pipeline reads — fabricated declarations have no bodies, so any
// consumer that needs a real AST must hydrate (re-parse) first.
//
// Restore fabricates the whole corpus in one pass, so the per-function
// nodes come from per-unit backing arrays instead of one allocation
// per node.
func UnitFromFacts(file *srcfile.File, uf UnitFacts) (*ccast.TranslationUnit, []*Func) {
	tu := &ccast.TranslationUnit{File: file}
	if len(uf.Globals) > 0 {
		tu.Decls = make([]ccast.Decl, 0, len(uf.Globals))
		vds := make([]ccast.VarDecl, len(uf.Globals))
		dls := make([]ccast.Declarator, len(uf.Globals))
		for i, g := range uf.Globals {
			dls[i] = ccast.Declarator{Name: g}
			vds[i] = ccast.VarDecl{Global: true, Names: []*ccast.Declarator{&dls[i]}}
			tu.Decls = append(tu.Decls, &vds[i])
		}
	}
	module := file.ModuleName()
	fas := make([]*Func, len(uf.Funcs))
	fab := make([]Func, len(uf.Funcs))
	fds := make([]ccast.FuncDecl, len(uf.Funcs))
	nParams, nCalls := 0, 0
	for i := range uf.Funcs {
		nParams += uf.Funcs[i].Params
		nCalls += len(uf.Funcs[i].Calls)
	}
	params := make([]ccast.Param, nParams)
	pptrs := make([]*ccast.Param, nParams)
	for k := range params {
		pptrs[k] = &params[k]
	}
	callees := make([]string, nCalls)
	for i := range uf.Funcs {
		ft := &uf.Funcs[i]
		fd := &fds[i]
		fd.Name = ft.Name
		if !ft.Void {
			fd.Ret = stubRet
		}
		if ft.Params > 0 {
			fd.Params, pptrs = pptrs[:ft.Params:ft.Params], pptrs[ft.Params:]
		}
		fd.SetSpan(srcfile.Span{
			Start: srcfile.Pos{Line: ft.Line, Col: 1},
			End:   srcfile.Pos{Line: ft.Line, Col: 1},
		})
		fa := &fab[i]
		*fa = Func{
			Decl:    fd,
			File:    file,
			Module:  module,
			Calls:   ft.Calls,
			CCN:     ft.CCN,
			Returns: ft.Returns,
		}
		if len(fa.Calls) > 0 {
			cs := callees[:len(fa.Calls):len(fa.Calls)]
			callees = callees[len(fa.Calls):]
			for k, raw := range fa.Calls {
				cs[k] = Unqualified(raw)
			}
			fa.Callees = cs
		}
		fas[i] = fa
	}
	return tu, fas
}

// AnalyzeUnit runs the per-function analysis walk over one parsed
// translation unit, returning its Func records in source order (the
// unit-granular face of Build, exported for hydration).
func AnalyzeUnit(tu *ccast.TranslationUnit) []*Func { return analyzeUnit(tu) }

// BuildFromRecords constructs an index from pre-analyzed per-unit
// records instead of walking the units — the restore path. The shard
// partition, per-shard views, signatures, and global cross-file maps
// are recomputed exactly as Build computes them, so an index restored
// from facts is observationally identical to the one that produced
// them; only the generation counters start fresh.
func BuildFromRecords(units map[string]*ccast.TranslationUnit, recs map[string][]*Func) (*Index, error) {
	if len(units) != len(recs) {
		return nil, fmt.Errorf("artifact: %d units vs %d record lists", len(units), len(recs))
	}
	ix := &Index{
		Units:     units,
		Paths:     SortedPaths(units),
		unitFuncs: recs,
		shards:    make(map[string]*Shard),
	}
	for _, p := range ix.Paths {
		if _, ok := recs[p]; !ok {
			return nil, fmt.Errorf("artifact: unit %s has no function records", p)
		}
		mod := units[p].File.ModuleName()
		sh := ix.shards[mod]
		if sh == nil {
			sh = &Shard{Module: mod}
			ix.shards[mod] = sh
		}
		sh.paths = append(sh.paths, p)
	}
	ix.rebuildShardNames()
	// Same parallel scheme as Build: generations drawn sequentially in
	// sorted module order, shard views rebuilt on a worker pool.
	for _, m := range ix.shardNames {
		ix.shards[m].assignGen(ix)
	}
	names := ix.shardNames
	par.For(par.Workers(len(names)), len(names), func(i int) {
		ix.shards[names[i]].rebuildViews(ix)
	})
	ix.rebuildGlobalViews()
	ix.gen++
	return ix, nil
}

// Rehydrate replaces one unit's stub AST and fabricated records with a
// freshly parsed unit and its real analysis records. It deliberately
// leaves shard views, signatures, and generations untouched: hydration
// is only legal when the file content is unchanged since the facts were
// extracted, so every signature input is identical and downstream
// caches stay valid. Champion maps keep the old records by pointer
// until the shard's next refresh; old and new records carry equal
// facts, so every consumer observes identical output either way.
//
// Not safe for concurrent use with readers of the index.
func (ix *Index) Rehydrate(tu *ccast.TranslationUnit, recs []*Func) {
	p := tu.File.Path
	ix.Units[p] = tu
	ix.unitFuncs[p] = recs
}
