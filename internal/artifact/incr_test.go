package artifact_test

import (
	"testing"

	"repro/internal/artifact"
	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/srcfile"
)

// parseOne parses a single source file into a translation unit.
func parseOne(t *testing.T, path, src string) *ccast.TranslationUnit {
	t.Helper()
	tu, errs := ccparse.Parse(&srcfile.File{Path: path, Lang: srcfile.LanguageForPath(path), Src: src}, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse %s: %v", path, errs[0])
	}
	return tu
}

// smallUnits builds a three-file corpus for delta tests.
func smallUnits(t *testing.T) map[string]*ccast.TranslationUnit {
	t.Helper()
	units := map[string]*ccast.TranslationUnit{}
	for p, src := range map[string]string{
		"m/a.c": "int ga;\nint fa(int x) { if (x) { return 1; } return 0; }\n",
		"m/b.c": "int fb(int x) { return fa(x) + 1; }\n",
		"n/c.c": "int gc;\nint fc(void) { return fb(2); }\n",
	} {
		units[p] = parseOne(t, p, src)
	}
	return units
}

// TestApplyReplaceMatchesFullBuild requires an in-place ReplaceUnit to
// produce an index equal in every observable way to a cold Build over
// the edited corpus, while reusing the untouched units' Func records by
// pointer (that reuse is what carries the memoized CFGs across deltas).
func TestApplyReplaceMatchesFullBuild(t *testing.T) {
	units := smallUnits(t)
	ix := artifact.Build(units)

	// Touch CFGs so memoization carry-over is observable.
	cfgBefore := map[string]interface{}{}
	for _, fa := range ix.Funcs {
		cfgBefore[fa.File.Path+"/"+fa.Decl.Name] = fa.CFG()
	}
	funcBefore := map[string]*artifact.Func{}
	for _, fa := range ix.Funcs {
		funcBefore[fa.File.Path+"/"+fa.Decl.Name] = fa
	}

	edited := parseOne(t, "m/b.c", "int gb;\nint fb(int x) { while (x > 0) { x--; } return x; }\n")
	ix.ReplaceUnit(edited)

	coldUnits := map[string]*ccast.TranslationUnit{
		"m/a.c": units["m/a.c"], "n/c.c": units["n/c.c"], "m/b.c": edited,
	}
	cold := artifact.Build(coldUnits)

	requireSameIndex(t, ix, cold)

	for _, fa := range ix.Funcs {
		key := fa.File.Path + "/" + fa.Decl.Name
		if fa.File.Path == "m/b.c" {
			if funcBefore[key] == fa {
				t.Errorf("%s: edited unit's Func not re-analyzed", key)
			}
			continue
		}
		if funcBefore[key] != fa {
			t.Errorf("%s: untouched unit's Func was rebuilt", key)
		}
		if cfgBefore[key] != fa.CFG() {
			t.Errorf("%s: memoized CFG lost across ReplaceUnit", key)
		}
	}
}

// TestApplyAddRemove covers the add and remove edges of the delta API.
func TestApplyAddRemove(t *testing.T) {
	units := smallUnits(t)
	ix := artifact.Build(units)

	added := parseOne(t, "n/d.c", "int fd(void) { return gc; }\n")
	ix.AddUnit(added)
	cold := artifact.Build(map[string]*ccast.TranslationUnit{
		"m/a.c": units["m/a.c"], "m/b.c": units["m/b.c"],
		"n/c.c": units["n/c.c"], "n/d.c": added,
	})
	requireSameIndex(t, ix, cold)

	ix.RemoveUnit("m/a.c")
	cold = artifact.Build(map[string]*ccast.TranslationUnit{
		"m/b.c": units["m/b.c"], "n/c.c": units["n/c.c"], "n/d.c": added,
	})
	requireSameIndex(t, ix, cold)
	if _, ok := ix.ByName["fa"]; ok {
		t.Error("removed unit's function still in ByName")
	}
	if _, ok := ix.GlobalNames["ga"]; ok {
		t.Error("removed unit's global still in GlobalNames")
	}

	// Removing a path that is not present is a no-op.
	before := len(ix.Funcs)
	ix.RemoveUnit("missing.c")
	if len(ix.Funcs) != before {
		t.Error("removing a missing path changed the index")
	}
}

// requireSameIndex compares every observable view of two indexes.
func requireSameIndex(t *testing.T, got, want *artifact.Index) {
	t.Helper()
	if len(got.Paths) != len(want.Paths) {
		t.Fatalf("paths: %v vs %v", got.Paths, want.Paths)
	}
	for i := range got.Paths {
		if got.Paths[i] != want.Paths[i] {
			t.Fatalf("paths: %v vs %v", got.Paths, want.Paths)
		}
	}
	if len(got.Funcs) != len(want.Funcs) {
		t.Fatalf("func counts: %d vs %d", len(got.Funcs), len(want.Funcs))
	}
	for i := range got.Funcs {
		g, w := got.Funcs[i], want.Funcs[i]
		if g.Decl.Name != w.Decl.Name || g.File.Path != w.File.Path ||
			g.Module != w.Module || g.CCN != w.CCN || g.Returns != w.Returns ||
			len(g.Calls) != len(w.Calls) {
			t.Fatalf("func %d differs: %s/%s vs %s/%s", i,
				g.File.Path, g.Decl.Name, w.File.Path, w.Decl.Name)
		}
	}
	if len(got.ByName) != len(want.ByName) {
		t.Fatalf("ByName sizes: %d vs %d", len(got.ByName), len(want.ByName))
	}
	for name, w := range want.ByName {
		g := got.ByName[name]
		if g == nil || g.File.Path != w.File.Path || g.Decl.Name != w.Decl.Name {
			t.Fatalf("ByName[%q] differs", name)
		}
	}
	if len(got.GlobalNames) != len(want.GlobalNames) {
		t.Fatalf("GlobalNames sizes: %d vs %d", len(got.GlobalNames), len(want.GlobalNames))
	}
	for name, w := range want.GlobalNames {
		if got.GlobalNames[name] != w {
			t.Fatalf("GlobalNames[%q] = %q, want %q", name, got.GlobalNames[name], w)
		}
	}
	for p := range want.Units {
		gf, wf := got.UnitFuncs(p), want.UnitFuncs(p)
		if len(gf) != len(wf) {
			t.Fatalf("UnitFuncs(%s): %d vs %d", p, len(gf), len(wf))
		}
	}
}
