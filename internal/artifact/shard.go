package artifact

import (
	"hash/fnv"
	"sort"

	"repro/internal/par"
)

// This file implements the sharded corpus store underneath the Index.
// Shards are keyed by module (srcfile.File.ModuleName): each shard owns
// its sorted path list, its function records in path order, and the
// within-shard champions of every cross-file view (first-definition-wins
// ByName, last-definition-wins FuncModule, last-definition-wins global
// variable names). A corpus delta rebuilds only the dirty shards'
// views — the per-unit analysis records of untouched files are reused by
// pointer exactly as before — and the global views are patched from the
// champion diffs, so a warm Apply costs O(dirty shard), not O(corpus).
//
// Each shard also memoizes two signatures over its exported facts,
// recomputed only when the shard's generation moves:
//
//   - the export signature covers what per-file rule handlers read from
//     other files: every defined function's unqualified name and return
//     voidness, every file-scope variable name, all hashed in shard path
//     order together with the paths themselves (so moves and reorders
//     that could flip a cross-shard champion cannot go unnoticed);
//   - the graph signature additionally covers each function's full
//     spelling, declaration line, complexity, return count, and raw
//     callee list — the inputs of corpus-level rules (recursion SCC) and
//     of the architectural call-resolution pass.
//
// The Index combines the per-shard signatures into ExportOverlay and
// GraphOverlay in O(#shards); consumers key their caches on the overlays
// instead of re-hashing the corpus.

// globalDef records one shard's champion for a file-scope variable name:
// the defining file (the one with the greatest path — later files
// overwrite earlier ones, matching the seed rules.NewContext) and its
// module.
type globalDef struct {
	path   string
	module string
}

// Shard is the per-module partition of the index.
type Shard struct {
	// Module is the shard key.
	Module string

	// paths lists the shard's unit paths in sorted order.
	paths []string
	// funcs lists the shard's function records in path order.
	funcs []*Func
	// byName holds the shard's first-definition-wins champions by
	// unqualified name (minimal path, then source order).
	byName map[string]*Func
	// lastByName holds the last-definition-wins champions (maximal path,
	// then source order) backing the architectural FuncModule view.
	lastByName map[string]*Func
	// globals holds the shard's file-scope variable champions.
	globals map[string]globalDef

	// gen counts shard refreshes; derived caches key on it.
	gen uint64

	// sigGen/exportSig/graphSig memoize the signatures per generation.
	sigGen    uint64
	sigOK     bool
	exportSig uint64
	graphSig  uint64
}

// Gen returns the shard generation, bumped by every refresh that
// touches the shard. Two reads with equal (shard pointer, Gen) observe
// identical shard-local views.
func (sh *Shard) Gen() uint64 { return sh.gen }

// Paths returns the shard's unit paths in sorted order. The slice must
// not be mutated.
func (sh *Shard) Paths() []string { return sh.paths }

// Funcs returns the shard's function records in path order. The slice
// must not be mutated.
func (sh *Shard) Funcs() []*Func { return sh.funcs }

// Len returns the number of files in the shard.
func (sh *Shard) Len() int { return len(sh.paths) }

// addPath inserts p into the sorted path list (no-op when present).
func (sh *Shard) addPath(p string) {
	i := sort.SearchStrings(sh.paths, p)
	if i < len(sh.paths) && sh.paths[i] == p {
		return
	}
	sh.paths = append(sh.paths, "")
	copy(sh.paths[i+1:], sh.paths[i:])
	sh.paths[i] = p
}

// removePath deletes p from the sorted path list (no-op when absent).
func (sh *Shard) removePath(p string) {
	i := sort.SearchStrings(sh.paths, p)
	if i >= len(sh.paths) || sh.paths[i] != p {
		return
	}
	sh.paths = append(sh.paths[:i], sh.paths[i+1:]...)
}

// championDiff collects the names whose within-shard champion changed
// across a refresh; the index re-resolves exactly those names globally.
// Each slice is sorted so re-resolution runs in a deterministic order
// even though the names are gathered from map-keyed state.
type championDiff struct {
	byName  []string
	lastDef []string
	globals []string
}

// refresh rebuilds the shard's views from the index's per-unit records
// in O(shard) and returns the champion diff against the previous state.
// Function bodies are never re-walked here; the per-unit Func records
// (and their memoized CFGs) are reused by pointer. Generations come
// from the index-wide refreshSeq so they are unique across shards and
// across shard lifetimes.
func (sh *Shard) refresh(ix *Index) championDiff {
	sh.assignGen(ix)
	return sh.refreshViews(ix)
}

// refreshViews is refresh after the generation has already been drawn
// via assignGen. Distinct shards may run refreshViews concurrently: it
// reads only the index's shared per-unit maps (not mutated during the
// parallel region) and writes only shard-local state.
func (sh *Shard) refreshViews(ix *Index) championDiff {
	oldByName, oldLast, oldGlobals := sh.byName, sh.lastByName, sh.globals
	sh.rebuildViews(ix)

	var diff championDiff
	diff.byName = diffFuncChampions(oldByName, sh.byName)
	diff.lastDef = diffFuncChampions(oldLast, sh.lastByName)
	for name, def := range sh.globals {
		if old, ok := oldGlobals[name]; !ok || old != def {
			diff.globals = append(diff.globals, name)
		}
	}
	for name := range oldGlobals {
		if _, ok := sh.globals[name]; !ok {
			diff.globals = append(diff.globals, name)
		}
	}
	sort.Strings(diff.globals)
	return diff
}

// assignGen draws the shard's next generation from the index-wide
// refreshSeq. Generation assignment is split from the view rebuild so
// cold build, restore, and Apply can draw generations deterministically
// in sorted module order before rebuilding the views of distinct shards
// in parallel — the sequence of (module, Gen) pairs downstream caches
// key on is then independent of scheduling.
func (sh *Shard) assignGen(ix *Index) {
	ix.refreshSeq++
	sh.gen = ix.refreshSeq
}

// rebuild is refresh without the champion diff — for cold builds and
// restore, where the caller rebuilds the global views from scratch and
// enumerating every champion as "changed" would be thrown away.
func (sh *Shard) rebuild(ix *Index) {
	sh.assignGen(ix)
	sh.rebuildViews(ix)
}

// rebuildViews rebuilds the shard's views from the index's per-unit
// records in O(shard). It reads only shared state that is stable during
// the rebuild (unitFuncs, Units) and writes only shard-local fields, so
// distinct shards may rebuild concurrently once their generations are
// assigned.
func (sh *Shard) rebuildViews(ix *Index) {
	nFuncs := 0
	for _, p := range sh.paths {
		nFuncs += len(ix.unitFuncs[p])
	}
	sh.funcs = make([]*Func, 0, nFuncs)
	sh.byName = make(map[string]*Func, nFuncs)
	sh.lastByName = make(map[string]*Func, nFuncs)
	sh.globals = make(map[string]globalDef, 2*len(sh.paths))
	for _, p := range sh.paths {
		for _, fa := range ix.unitFuncs[p] {
			sh.funcs = append(sh.funcs, fa)
			key := Unqualified(fa.Decl.Name)
			if _, dup := sh.byName[key]; !dup {
				sh.byName[key] = fa
			}
			sh.lastByName[key] = fa
		}
		tu := ix.Units[p]
		mod := tu.File.ModuleName()
		for _, vd := range tu.GlobalVars() {
			for _, d := range vd.Names {
				sh.globals[d.Name] = globalDef{path: p, module: mod}
			}
		}
	}
}

// diffFuncChampions returns the names mapped to different *Func values
// in old vs new (either direction). Pointer identity is the right
// equality: untouched units keep their records by pointer, so equal
// pointers mean the champion (and everything hanging off it) is
// untouched.
func diffFuncChampions(old, new map[string]*Func) []string {
	var out []string
	for name, fa := range new {
		if old[name] != fa {
			out = append(out, name)
		}
	}
	for name := range old {
		if _, ok := new[name]; !ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// drainChampions returns a diff naming every champion the shard holds —
// used when a shard empties and disappears, so the global views drop or
// re-resolve all of its entries.
func (sh *Shard) drainChampions() championDiff {
	var diff championDiff
	for name := range sh.byName {
		diff.byName = append(diff.byName, name)
	}
	for name := range sh.lastByName {
		diff.lastDef = append(diff.lastDef, name)
	}
	for name := range sh.globals {
		diff.globals = append(diff.globals, name)
	}
	sort.Strings(diff.byName)
	sort.Strings(diff.lastDef)
	sort.Strings(diff.globals)
	return diff
}

// sigs returns the shard's export and graph signatures, recomputing them
// only when the shard generation moved since the last computation.
func (sh *Shard) sigs(ix *Index) (export, graph uint64) {
	if sh.sigOK && sh.sigGen == sh.gen {
		return sh.exportSig, sh.graphSig
	}
	he := fnv.New64a()
	hg := fnv.New64a()
	var num [8]byte
	writeNum := func(h interface{ Write([]byte) (int, error) }, v uint64) {
		num[0] = byte(v)
		num[1] = byte(v >> 8)
		num[2] = byte(v >> 16)
		num[3] = byte(v >> 24)
		num[4] = byte(v >> 32)
		num[5] = byte(v >> 40)
		num[6] = byte(v >> 48)
		num[7] = byte(v >> 56)
		h.Write(num[:])
	}
	sep := []byte{0xff}
	for _, p := range sh.paths {
		he.Write([]byte(p))
		he.Write(sep)
		hg.Write([]byte(p))
		hg.Write(sep)
		for _, fa := range ix.unitFuncs[p] {
			void := byte('r')
			if fa.Decl.Ret == nil || fa.Decl.Ret.IsVoid() {
				void = 'v'
			}
			he.Write([]byte(Unqualified(fa.Decl.Name)))
			he.Write([]byte{0, void})
			he.Write(sep)

			hg.Write([]byte(fa.Decl.Name))
			hg.Write([]byte{0, void})
			writeNum(hg, uint64(fa.Decl.Span().Start.Line))
			writeNum(hg, uint64(fa.CCN))
			writeNum(hg, uint64(fa.Returns))
			for _, c := range fa.Calls {
				hg.Write([]byte(c))
				hg.Write([]byte{0})
			}
			hg.Write(sep)
		}
		tu := ix.Units[p]
		for _, vd := range tu.GlobalVars() {
			for _, d := range vd.Names {
				he.Write([]byte("g\x00" + d.Name))
				he.Write(sep)
				hg.Write([]byte("g\x00" + d.Name))
				hg.Write(sep)
			}
		}
	}
	sh.exportSig, sh.graphSig = he.Sum64(), hg.Sum64()
	sh.sigGen, sh.sigOK = sh.gen, true
	return sh.exportSig, sh.graphSig
}

// ---------------------------------------------------------------------------
// Index-level shard plumbing

// ShardNames returns the module names of all shards in sorted order. The
// slice must not be mutated.
func (ix *Index) ShardNames() []string { return ix.shardNames }

// shardContaining returns the shard owning a path, or nil. Membership is
// decided by the shards' own path lists (binary search per shard), so it
// works even when the Units map no longer holds the path.
func (ix *Index) shardContaining(p string) *Shard {
	for _, sh := range ix.shards {
		i := sort.SearchStrings(sh.paths, p)
		if i < len(sh.paths) && sh.paths[i] == p {
			return sh
		}
	}
	return nil
}

// Shard returns the shard for a module, or nil.
func (ix *Index) Shard(module string) *Shard { return ix.shards[module] }

// FuncModule returns the defining module of the last definition (in
// path order) of an unqualified function name — the resolution rule the
// architectural metrics use.
func (ix *Index) FuncModule(name string) (string, bool) {
	fa := ix.lastDef[name]
	if fa == nil {
		return "", false
	}
	return fa.Module, true
}

// UnitFuncsMap exposes the live per-unit function records keyed by path.
// The rules context shares this map instead of copying it; callers must
// not mutate it, and must not read it concurrently with Apply.
func (ix *Index) UnitFuncsMap() map[string][]*Func { return ix.unitFuncs }

// warmSigs recomputes every stale shard signature on a worker pool.
// The overlay queries below then fold the memoized per-shard values
// sequentially in sorted module order, so the overlay hashes are
// byte-identical to the sequential computation. sigs writes only
// shard-local memo fields, so distinct shards are safe concurrently.
func (ix *Index) warmSigs() {
	var stale []*Shard
	for _, m := range ix.shardNames {
		sh := ix.shards[m]
		if !sh.sigOK || sh.sigGen != sh.gen {
			stale = append(stale, sh)
		}
	}
	par.For(par.Workers(len(stale)), len(stale), func(i int) {
		stale[i].sigs(ix)
	})
}

// ExportOverlay combines the per-shard export signatures into one
// corpus-wide value. Equal overlays guarantee that every cross-file fact
// a per-file rule handler can read (function voidness by name, global
// name membership) is unchanged, so per-file caches keyed on file
// content stay valid. O(#shards) when the shards' signatures are warm;
// stale signatures are recomputed in parallel first.
func (ix *Index) ExportOverlay() uint64 {
	ix.warmSigs()
	h := fnv.New64a()
	var num [8]byte
	for _, m := range ix.shardNames {
		e, _ := ix.shards[m].sigs(ix)
		h.Write([]byte(m))
		h.Write([]byte{0})
		for i := 0; i < 8; i++ {
			num[i] = byte(e >> (8 * i))
		}
		h.Write(num[:])
	}
	return h.Sum64()
}

// GraphOverlay combines the per-shard graph signatures. Equal overlays
// guarantee the corpus call-graph view (every function's name, file,
// line, complexity, return count, and callees, plus global names) is
// unchanged, so corpus-level rule output can be reused verbatim.
func (ix *Index) GraphOverlay() uint64 {
	ix.warmSigs()
	h := fnv.New64a()
	var num [8]byte
	for _, m := range ix.shardNames {
		_, g := ix.shards[m].sigs(ix)
		h.Write([]byte(m))
		h.Write([]byte{0})
		for i := 0; i < 8; i++ {
			num[i] = byte(g >> (8 * i))
		}
		h.Write(num[:])
	}
	return h.Sum64()
}

// ShardSigs returns a shard's export and graph signatures (computing
// them if stale). The snapshot writer persists the pair per shard so a
// restored index can answer overlay queries without re-hashing facts.
func (ix *Index) ShardSigs(module string) (export, graph uint64, ok bool) {
	sh := ix.shards[module]
	if sh == nil {
		return 0, 0, false
	}
	export, graph = sh.sigs(ix)
	return export, graph, true
}

// SeedShardSigs installs precomputed signatures for a shard at its
// current generation, skipping the fact re-hash on the next overlay
// query. Only sound when the signatures were computed from exactly the
// facts the shard now holds — the snapshot restore path, where the
// persisted facts and the persisted signatures come from the same
// checksummed snapshot. Any later refresh bumps the generation and
// recomputes from scratch.
func (ix *Index) SeedShardSigs(module string, export, graph uint64) bool {
	sh := ix.shards[module]
	if sh == nil {
		return false
	}
	sh.exportSig, sh.graphSig = export, graph
	sh.sigGen, sh.sigOK = sh.gen, true
	return true
}

// resolveByName re-resolves the global first-definition-wins champion
// for one name across all shards.
func (ix *Index) resolveByName(name string) {
	var best *Func
	for _, sh := range ix.shards {
		if c := sh.byName[name]; c != nil {
			if best == nil || c.File.Path < best.File.Path {
				best = c
			}
		}
	}
	if best == nil {
		delete(ix.ByName, name)
	} else {
		ix.ByName[name] = best
	}
}

// resolveLastDef re-resolves the global last-definition-wins champion.
func (ix *Index) resolveLastDef(name string) {
	var best *Func
	for _, sh := range ix.shards {
		if c := sh.lastByName[name]; c != nil {
			if best == nil || c.File.Path > best.File.Path {
				best = c
			}
		}
	}
	if best == nil {
		delete(ix.lastDef, name)
	} else {
		ix.lastDef[name] = best
	}
}

// resolveGlobal re-resolves the global variable champion (last file in
// path order wins, matching the seed rules.NewContext).
func (ix *Index) resolveGlobal(name string) {
	var best globalDef
	found := false
	for _, sh := range ix.shards {
		if def, ok := sh.globals[name]; ok {
			if !found || def.path > best.path {
				best, found = def, true
			}
		}
	}
	if !found {
		delete(ix.GlobalNames, name)
	} else {
		ix.GlobalNames[name] = best.module
	}
}

// applyChampionDiffs patches the global cross-file views for exactly the
// names whose within-shard champions changed.
func (ix *Index) applyChampionDiffs(diffs []championDiff) {
	for _, d := range diffs {
		for _, name := range d.byName {
			ix.resolveByName(name)
		}
		for _, name := range d.lastDef {
			ix.resolveLastDef(name)
		}
		for _, name := range d.globals {
			ix.resolveGlobal(name)
		}
	}
}

// rebuildShardNames re-derives the sorted shard name list.
func (ix *Index) rebuildShardNames() {
	ix.shardNames = make([]string, 0, len(ix.shards))
	for m := range ix.shards {
		ix.shardNames = append(ix.shardNames, m)
	}
	sort.Strings(ix.shardNames)
}

// shardsInPathOrder returns the shards ordered by their smallest path
// and reports whether their path ranges are pairwise disjoint. Module
// names normally prefix their paths, so ranges are disjoint and ordered
// merges degrade to concatenation; explicit File.Module overrides can
// interleave ranges, in which case callers fall back to a real merge.
func (ix *Index) shardsInPathOrder() (ordered []*Shard, disjoint bool) {
	ordered = make([]*Shard, 0, len(ix.shardNames))
	for _, m := range ix.shardNames {
		if sh := ix.shards[m]; len(sh.paths) > 0 {
			ordered = append(ordered, sh)
		}
	}
	sort.Slice(ordered, func(i, j int) bool {
		return ordered[i].paths[0] < ordered[j].paths[0]
	})
	disjoint = true
	for i := 1; i < len(ordered); i++ {
		prev := ordered[i-1]
		if prev.paths[len(prev.paths)-1] > ordered[i].paths[0] {
			disjoint = false
			break
		}
	}
	return ordered, disjoint
}

// rebuildPaths re-derives the global sorted path list from the shards.
func (ix *Index) rebuildPaths() {
	ordered, disjoint := ix.shardsInPathOrder()
	n := 0
	for _, sh := range ordered {
		n += len(sh.paths)
	}
	out := make([]string, 0, n)
	for _, sh := range ordered {
		out = append(out, sh.paths...)
	}
	if !disjoint {
		sort.Strings(out)
	}
	ix.Paths = out
}

// rebuildFuncs re-derives the global function list (path order) from the
// shards. With disjoint shard path ranges this is pure concatenation;
// otherwise the per-shard lists (each path-ordered) are merge-sorted
// stably so same-path functions keep their source order.
func (ix *Index) rebuildFuncs() {
	ordered, disjoint := ix.shardsInPathOrder()
	n := 0
	for _, sh := range ordered {
		n += len(sh.funcs)
	}
	out := make([]*Func, 0, n)
	for _, sh := range ordered {
		out = append(out, sh.funcs...)
	}
	if !disjoint {
		sort.SliceStable(out, func(i, j int) bool {
			return out[i].File.Path < out[j].File.Path
		})
	}
	ix.Funcs = out
}
