// Package brookauto implements the remediation direction the paper
// advocates for GPU code (Observations 3-4 and reference [14], Trompouki &
// Kosmidis, DAC 2018): a certification-friendly GPU programming subset in
// the spirit of Brook Auto, which hides pointers from the programmer and
// constrains kernels so MISRA-style assessment becomes possible.
//
// The package provides two things:
//
//  1. a checker that verifies CUDA kernels against the subset's decidable
//     rules (no pointer arithmetic beyond linear indexing, no dynamic
//     memory, no recursion, bounded loops, guarded global stores, no
//     unstructured jumps);
//  2. a signature synthesizer that proposes the Brook-style stream
//     declaration a conforming kernel would have, showing what porting to
//     a pointer-free language buys.
package brookauto

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ccast"
	"repro/internal/srcfile"
)

// RuleID identifies one subset rule.
type RuleID string

// The subset rules. Numbering is internal to this reproduction; the real
// Brook Auto defines its constraints as language restrictions rather than
// checkable rules, which is exactly why its programs need no checker.
const (
	// RulePointerArith forbids pointer arithmetic other than p[index].
	RulePointerArith RuleID = "BA1-pointer-arithmetic"
	// RuleDynamicMemory forbids allocation inside device code.
	RuleDynamicMemory RuleID = "BA2-dynamic-memory"
	// RuleRecursion forbids recursive device functions.
	RuleRecursion RuleID = "BA3-recursion"
	// RuleUnboundedLoop forbids loops without a structural bound.
	RuleUnboundedLoop RuleID = "BA4-unbounded-loop"
	// RuleUnguardedStore requires global stores behind a bounds guard.
	RuleUnguardedStore RuleID = "BA5-unguarded-store"
	// RuleGoto forbids unstructured jumps in kernels.
	RuleGoto RuleID = "BA6-goto"
	// RuleDoubleIndirection forbids multi-level pointers in signatures.
	RuleDoubleIndirection RuleID = "BA7-double-indirection"
)

// Violation is one subset violation inside a kernel.
type Violation struct {
	Rule RuleID
	Line int
	Msg  string
}

// KernelReport is the subset verdict for one kernel.
type KernelReport struct {
	Kernel     string
	File       string
	Violations []Violation
	// StreamSignature is the Brook-style declaration the kernel would
	// have after porting; empty when the kernel shape does not map.
	StreamSignature string
}

// Conforming reports whether the kernel fits the subset as written.
func (r *KernelReport) Conforming() bool { return len(r.Violations) == 0 }

// CheckUnits analyzes every __global__ kernel in the given units.
func CheckUnits(units map[string]*ccast.TranslationUnit) []*KernelReport {
	paths := make([]string, 0, len(units))
	for p := range units {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var out []*KernelReport
	for _, p := range paths {
		tu := units[p]
		for _, fn := range tu.Funcs() {
			if fn.IsKernel() {
				out = append(out, CheckKernel(fn, tu.File))
			}
		}
	}
	return out
}

// CheckKernel analyzes one kernel definition.
func CheckKernel(fn *ccast.FuncDecl, file *srcfile.File) *KernelReport {
	r := &KernelReport{Kernel: fn.Name, File: file.Path}
	add := func(rule RuleID, line int, format string, args ...interface{}) {
		r.Violations = append(r.Violations, Violation{
			Rule: rule, Line: line, Msg: fmt.Sprintf(format, args...),
		})
	}

	// Signature rules.
	for _, p := range fn.Params {
		if p.Type.PtrDepth > 1 {
			add(RuleDoubleIndirection, p.Span().Start.Line,
				"parameter %q has %d levels of indirection", p.Name, p.Type.PtrDepth)
		}
	}

	ptrParams := make(map[string]bool)
	for _, p := range fn.Params {
		if p.Type.IsPointer() {
			ptrParams[p.Name] = true
		}
	}

	guarded := hasIndexGuard(fn.Body)

	ccast.Walk(fn.Body, func(n ccast.Node) bool {
		switch n := n.(type) {
		case *ccast.Binary:
			// p + i / p - i where p is a pointer parameter.
			if n.Op == "+" || n.Op == "-" {
				if id, ok := stripParens(n.L).(*ccast.Ident); ok && ptrParams[id.Name] {
					add(RulePointerArith, n.Span().Start.Line,
						"pointer arithmetic on parameter %q (use stream indexing)", id.Name)
				}
			}
		case *ccast.Unary:
			if n.Op == "++" || n.Op == "--" {
				if id, ok := stripParens(n.X).(*ccast.Ident); ok && ptrParams[id.Name] {
					add(RulePointerArith, n.Span().Start.Line,
						"pointer increment on parameter %q", id.Name)
				}
			}
			if n.Op == "*" {
				if id, ok := stripParens(n.X).(*ccast.Ident); ok && ptrParams[id.Name] {
					// *p without index: only the implicit element stream is
					// allowed, which maps fine — but *(p+i) was caught above.
					_ = id
				}
			}
		case *ccast.Postfix:
			if id, ok := stripParens(n.X).(*ccast.Ident); ok && ptrParams[id.Name] {
				add(RulePointerArith, n.Span().Start.Line,
					"pointer increment on parameter %q", id.Name)
			}
		case *ccast.Call:
			name := calleeName(n)
			switch name {
			case "malloc", "calloc", "realloc", "free", "cudaMalloc", "cudaFree":
				add(RuleDynamicMemory, n.Span().Start.Line,
					"%s() in device code", name)
			}
			if name == cutName(fn.Name) {
				add(RuleRecursion, n.Span().Start.Line, "kernel calls itself")
			}
		case *ccast.NewExpr:
			add(RuleDynamicMemory, n.Span().Start.Line, "new in device code")
		case *ccast.DeleteExpr:
			add(RuleDynamicMemory, n.Span().Start.Line, "delete in device code")
		case *ccast.While:
			if !boundedCond(n.Cond) {
				add(RuleUnboundedLoop, n.Span().Start.Line,
					"while loop without structural bound")
			}
		case *ccast.DoWhile:
			if !boundedCond(n.Cond) {
				add(RuleUnboundedLoop, n.Span().Start.Line,
					"do-while loop without structural bound")
			}
		case *ccast.For:
			if n.Cond == nil {
				add(RuleUnboundedLoop, n.Span().Start.Line, "for(;;) loop")
			}
		case *ccast.Goto:
			add(RuleGoto, n.Span().Start.Line, "goto %s in kernel", n.Label)
		case *ccast.Assign:
			// Store through a pointer parameter without any index guard in
			// the kernel: flags kernels that write out-of-range when the
			// grid overshoots the data (the canonical CUDA bug class the
			// guard idiom prevents).
			if tgt := storeTarget(n.L, ptrParams); tgt != "" && !guarded {
				add(RuleUnguardedStore, n.Span().Start.Line,
					"store through %q without a thread-index bounds guard", tgt)
			}
		}
		return true
	})

	r.StreamSignature = streamSignature(fn)
	return r
}

func stripParens(e ccast.Expr) ccast.Expr {
	for {
		p, ok := e.(*ccast.Paren)
		if !ok {
			return e
		}
		e = p.X
	}
}

func calleeName(c *ccast.Call) string {
	switch f := c.Fun.(type) {
	case *ccast.Ident:
		return cutName(f.Name)
	case *ccast.Member:
		return f.Name
	default:
		return ""
	}
}

func cutName(q string) string {
	if i := strings.LastIndex(q, "::"); i >= 0 {
		return q[i+2:]
	}
	return q
}

// boundedCond accepts comparison conditions (the loop variable is compared
// against something), rejecting constants and bare truthy expressions.
func boundedCond(e ccast.Expr) bool {
	switch e := stripParens(e).(type) {
	case *ccast.Binary:
		switch e.Op {
		case "<", ">", "<=", ">=", "!=", "==":
			return true
		case "&&", "||":
			return boundedCond(e.L) || boundedCond(e.R)
		}
		return false
	default:
		return false
	}
}

// hasIndexGuard detects the canonical "if (i < n) ..." / early-return
// guard over a thread-derived index anywhere in the kernel.
func hasIndexGuard(body *ccast.Block) bool {
	found := false
	ccast.Walk(body, func(n ccast.Node) bool {
		if ifs, ok := n.(*ccast.If); ok {
			if cmp, ok := stripParens(ifs.Cond).(*ccast.Binary); ok {
				switch cmp.Op {
				case "<", "<=", ">", ">=":
					found = true
					return false
				}
			}
			if b, ok := stripParens(ifs.Cond).(*ccast.Binary); ok && (b.Op == "||" || b.Op == "&&") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// storeTarget returns the pointer-parameter name a store writes through.
func storeTarget(l ccast.Expr, ptrParams map[string]bool) string {
	switch l := stripParens(l).(type) {
	case *ccast.Index:
		if id, ok := stripParens(l.X).(*ccast.Ident); ok && ptrParams[id.Name] {
			return id.Name
		}
	case *ccast.Unary:
		if l.Op == "*" {
			if id, ok := stripParens(l.X).(*ccast.Ident); ok && ptrParams[id.Name] {
				return id.Name
			}
		}
	}
	return ""
}

// streamSignature proposes the Brook-style declaration: pointer parameters
// become streams (`float in<>`), written streams become `out` streams, and
// scalar parameters stay by-value. Returns "" when the kernel has no
// pointer parameters (nothing to gain from porting).
func streamSignature(fn *ccast.FuncDecl) string {
	written := make(map[string]bool)
	ccast.Walk(fn.Body, func(n ccast.Node) bool {
		if a, ok := n.(*ccast.Assign); ok {
			switch l := stripParens(a.L).(type) {
			case *ccast.Index:
				if id, ok := stripParens(l.X).(*ccast.Ident); ok {
					written[id.Name] = true
				}
			case *ccast.Unary:
				if l.Op == "*" {
					if id, ok := stripParens(l.X).(*ccast.Ident); ok {
						written[id.Name] = true
					}
				}
			}
		}
		return true
	})
	var parts []string
	havePtr := false
	for _, p := range fn.Params {
		if p.Type.IsPointer() {
			havePtr = true
			dir := ""
			if written[p.Name] {
				dir = "out "
			}
			parts = append(parts, fmt.Sprintf("%s%s %s<>", dir, p.Type.Name, p.Name))
		} else {
			parts = append(parts, fmt.Sprintf("%s %s", p.Type.Name, p.Name))
		}
	}
	if !havePtr {
		return ""
	}
	return fmt.Sprintf("kernel void %s(%s);", cutName(fn.Name), strings.Join(parts, ", "))
}
