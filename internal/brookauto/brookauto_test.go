package brookauto

import (
	"strings"
	"testing"

	"repro/internal/apollocorpus"
	"repro/internal/ccparse"
	"repro/internal/srcfile"
)

func checkSrc(t *testing.T, src string) []*KernelReport {
	t.Helper()
	fs := srcfile.NewFileSet()
	fs.AddSource("k.cu", src)
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	return CheckUnits(units)
}

func hasRule(r *KernelReport, id RuleID) bool {
	for _, v := range r.Violations {
		if v.Rule == id {
			return true
		}
	}
	return false
}

func TestConformingKernel(t *testing.T) {
	rs := checkSrc(t, `
__global__ void saxpy(float* x, float* y, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}`)
	if len(rs) != 1 {
		t.Fatalf("kernels = %d", len(rs))
	}
	if !rs[0].Conforming() {
		t.Errorf("saxpy should conform: %+v", rs[0].Violations)
	}
	sig := rs[0].StreamSignature
	if !strings.Contains(sig, "float x<>") {
		t.Errorf("input stream missing: %q", sig)
	}
	if !strings.Contains(sig, "out float y<>") {
		t.Errorf("output stream missing: %q", sig)
	}
	if !strings.Contains(sig, "float a, int n") {
		t.Errorf("scalars missing: %q", sig)
	}
}

func TestPointerArithmeticFlagged(t *testing.T) {
	rs := checkSrc(t, `
__global__ void shift(float* data, int n) {
    int i = threadIdx.x;
    if (i < n) {
        float v = *(data + i);
        data[i] = v * 2.0f;
    }
}`)
	if !hasRule(rs[0], RulePointerArith) {
		t.Errorf("pointer arithmetic not flagged: %+v", rs[0].Violations)
	}
}

func TestDynamicMemoryFlagged(t *testing.T) {
	rs := checkSrc(t, `
__global__ void alloc_in_kernel(float* out, int n) {
    int i = threadIdx.x;
    if (i < n) {
        float* tmp = (float*)malloc(16);
        out[i] = tmp[0];
        free(tmp);
    }
}`)
	if !hasRule(rs[0], RuleDynamicMemory) {
		t.Errorf("device malloc not flagged: %+v", rs[0].Violations)
	}
}

func TestRecursionFlagged(t *testing.T) {
	rs := checkSrc(t, `
__global__ void rec(float* x, int depth) {
    if (depth > 0) {
        rec(x, depth - 1);
    }
}`)
	if !hasRule(rs[0], RuleRecursion) {
		t.Errorf("kernel self-call not flagged: %+v", rs[0].Violations)
	}
}

func TestUnboundedLoopFlagged(t *testing.T) {
	rs := checkSrc(t, `
__global__ void spin(float* x, int n) {
    int i = threadIdx.x;
    if (i < n) {
        while (1) {
            x[i] += 1.0f;
        }
    }
}`)
	if !hasRule(rs[0], RuleUnboundedLoop) {
		t.Errorf("while(1) not flagged: %+v", rs[0].Violations)
	}
}

func TestBoundedLoopAccepted(t *testing.T) {
	rs := checkSrc(t, `
__global__ void iter(float* x, int n) {
    int i = threadIdx.x;
    if (i < n) {
        for (int k = 0; k < 4; k++) {
            x[i] += (float)k;
        }
    }
}`)
	if hasRule(rs[0], RuleUnboundedLoop) {
		t.Errorf("bounded for flagged: %+v", rs[0].Violations)
	}
}

func TestUnguardedStoreFlagged(t *testing.T) {
	rs := checkSrc(t, `
__global__ void blind(float* out, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    out[i] = 1.0f;
}`)
	if !hasRule(rs[0], RuleUnguardedStore) {
		t.Errorf("unguarded store not flagged: %+v", rs[0].Violations)
	}
}

func TestGotoFlagged(t *testing.T) {
	rs := checkSrc(t, `
__global__ void jumpy(float* x, int n) {
    int i = threadIdx.x;
    if (i >= n) goto done;
    x[i] = 0.0f;
done:
    return;
}`)
	if !hasRule(rs[0], RuleGoto) {
		t.Errorf("goto not flagged: %+v", rs[0].Violations)
	}
}

func TestDoubleIndirectionFlagged(t *testing.T) {
	rs := checkSrc(t, `
__global__ void indirect(float** rows, int n) {
    int i = threadIdx.x;
    if (i < n) {
        rows[i][0] = 0.0f;
    }
}`)
	if !hasRule(rs[0], RuleDoubleIndirection) {
		t.Errorf("double indirection not flagged: %+v", rs[0].Violations)
	}
}

func TestNonKernelIgnored(t *testing.T) {
	rs := checkSrc(t, `
void host_helper(float* p) { p[0] = 1.0f; }
__global__ void k(float* x, int n) {
    int i = threadIdx.x;
    if (i < n) { x[i] = 1.0f; }
}`)
	if len(rs) != 1 || rs[0].Kernel != "k" {
		t.Errorf("reports = %+v", rs)
	}
}

func TestScaleBiasSampleConforms(t *testing.T) {
	// The paper's Figure 4 kernel body is guarded and linear: the kernel
	// itself fits the subset — it is the *host side* (cudaMalloc, raw
	// pointers) that Brook Auto eliminates.
	fs := srcfile.NewFileSet()
	fs.Add(apollocorpus.ScaleBiasSample())
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	rs := CheckUnits(units)
	if len(rs) != 1 {
		t.Fatalf("kernels = %d", len(rs))
	}
	if !rs[0].Conforming() {
		t.Errorf("scale_bias_kernel violations: %+v", rs[0].Violations)
	}
	if !strings.Contains(rs[0].StreamSignature, "out float output<>") {
		t.Errorf("signature = %q", rs[0].StreamSignature)
	}
}

func TestCorpusCUDAKernels(t *testing.T) {
	fs := apollocorpus.Generate(apollocorpus.DefaultSpec()[:1], 26262) // perception only
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	rs := CheckUnits(units)
	if len(rs) == 0 {
		t.Fatal("no kernels found in perception")
	}
	for _, r := range rs {
		if r.StreamSignature == "" {
			t.Errorf("kernel %s has no stream mapping", r.Kernel)
		}
	}
}
