package ccast

// Arena slab-allocates AST nodes and the small slices that link them
// (argument lists, statement lists), replacing per-node heap allocation on
// the cold parse path. One arena serves one translation unit — or, on the
// batch parse path, one parser worker's run of units — so parse allocation
// count drops from O(nodes) to O(chunks): a handful per file.
//
// Lifetime: chunks are ordinary GC-managed slices referenced by the nodes
// carved from them, so an arena needs no explicit free — dropping every
// node of the unit(s) allocated from it releases the memory wholesale.
// A chunk stays live while any node in it is referenced; arenas must
// therefore not be shared between units with independent lifetimes unless
// the residual pinning is acceptable (see DESIGN.md "Arena lifetimes").
//
// The zero Arena is ready to use.
type Arena struct {
	// Node slabs, one per frequently allocated node type.
	Ident      Slab[Ident]
	IntLit     Slab[IntLit]
	FloatLit   Slab[FloatLit]
	StringLit  Slab[StringLit]
	CharLit    Slab[CharLit]
	BoolLit    Slab[BoolLit]
	Unary      Slab[Unary]
	Postfix    Slab[Postfix]
	Binary     Slab[Binary]
	Assign     Slab[Assign]
	Cond       Slab[Cond]
	Call       Slab[Call]
	Kernel     Slab[KernelLaunch]
	Index      Slab[Index]
	Member     Slab[Member]
	Cast       Slab[Cast]
	Sizeof     Slab[SizeofExpr]
	New        Slab[NewExpr]
	Delete     Slab[DeleteExpr]
	Comma      Slab[Comma]
	InitList   Slab[InitList]
	Paren      Slab[Paren]
	Type       Slab[Type]
	Block      Slab[Block]
	ExprStmt   Slab[ExprStmt]
	DeclStmt   Slab[DeclStmt]
	If         Slab[If]
	While      Slab[While]
	DoWhile    Slab[DoWhile]
	For        Slab[For]
	Switch     Slab[Switch]
	CaseClause Slab[CaseClause]
	Break      Slab[Break]
	Continue   Slab[Continue]
	Return     Slab[Return]
	Goto       Slab[Goto]
	Label      Slab[Label]
	Empty      Slab[Empty]
	VarDecl    Slab[VarDecl]
	Declarator Slab[Declarator]
	Param      Slab[Param]
	FuncDecl   Slab[FuncDecl]
	Field      Slab[Field]
	PPDir      Slab[PPDirective]

	// Slice slabs: backing stores for the child lists nodes carry.
	Exprs       Slab[Expr]
	Stmts       Slab[Stmt]
	Decls       Slab[Decl]
	Declarators Slab[*Declarator]
	Params      Slab[*Param]
	Fields      Slab[*Field]
	Funcs       Slab[*FuncDecl]
	Cases       Slab[*CaseClause]
	Comments    Slab[CommentInfo]
}

// Slab is a chunked allocator for values of one type. The zero Slab is
// ready to use. Not safe for concurrent use.
type Slab[T any] struct {
	cur  []T // current chunk; filled left to right
	next int // capacity of the next chunk
}

const (
	slabFirst = 16
	slabMax   = 1024
)

func (s *Slab[T]) grow(min int) {
	n := s.next
	if n == 0 {
		n = slabFirst
	}
	if n < min {
		n = min
	}
	s.next = n * 2
	if s.next > slabMax {
		s.next = slabMax
	}
	s.cur = make([]T, 0, n)
}

// Alloc carves one zero value out of the slab's current chunk.
func Alloc[T any](s *Slab[T]) *T {
	if len(s.cur) == cap(s.cur) {
		s.grow(1)
	}
	s.cur = s.cur[:len(s.cur)+1]
	return &s.cur[len(s.cur)-1]
}

// Carve copies src into slab-backed storage and returns the copy, capped at
// its own length so appends by callers cannot overwrite neighbours. Parsers
// accumulate children in a reusable scratch slice, then Carve the exact
// final length. A nil/empty src returns nil.
func Carve[T any](s *Slab[T], src []T) []T {
	n := len(src)
	if n == 0 {
		return nil
	}
	if cap(s.cur)-len(s.cur) < n {
		s.grow(n)
	}
	at := len(s.cur)
	s.cur = s.cur[: at+n : cap(s.cur)]
	out := s.cur[at : at+n : at+n]
	copy(out, src)
	return out
}
