// Package ccast defines the abstract syntax tree produced by ccparse for
// the C/C++/CUDA subset understood by the assessment frontend.
//
// The tree is deliberately concrete-ish: nodes keep enough source fidelity
// (positions, exact cast syntax, qualifier lists) for the MISRA-style rules
// and metrics to make judgements a real checker would make.
package ccast

import "repro/internal/srcfile"

// Node is implemented by every AST node.
type Node interface {
	Span() srcfile.Span
}

// base carries source extent for every node.
type base struct {
	Loc srcfile.Span
}

// Span returns the node's source extent.
func (b base) Span() srcfile.Span { return b.Loc }

// SetSpan records the node's source extent (used by the parser).
func (b *base) SetSpan(s srcfile.Span) { b.Loc = s }

// Spanned is the parser-facing mutator interface.
type Spanned interface {
	SetSpan(srcfile.Span)
}

// ---------------------------------------------------------------------------
// Types

// TypeQual is a bitset of qualifiers and storage-class markers that matter
// to the rules engine.
type TypeQual uint32

// Qualifier bits.
const (
	QualConst TypeQual = 1 << iota
	QualVolatile
	QualStatic
	QualExtern
	QualTypedefName // the declaration introduces a typedef
	QualInline
	QualVirtual
	QualUnsigned
	QualSigned
	QualRegister
	QualConstexpr
	QualMutable
	QualExplicit
	// CUDA qualifiers.
	QualCUDAGlobal
	QualCUDADevice
	QualCUDAHost
	QualCUDAShared
	QualCUDAConstant
)

// Has reports whether all bits in q are set.
func (t TypeQual) Has(q TypeQual) bool { return t&q == q }

// Type is a (mostly) textual type with the structure rules care about.
type Type struct {
	base
	// Name is the base type spelling without qualifiers or declarator
	// decoration: "int", "float", "Obstacle", "std::vector<int>".
	Name string
	// Quals are the qualifiers seen in the declaration specifier list.
	Quals TypeQual
	// PtrDepth counts '*' declarator levels.
	PtrDepth int
	// IsRef marks a C++ reference declarator.
	IsRef bool
	// ArrayDims holds one entry per array dimension; the expression may be
	// nil for unsized dimensions.
	ArrayDims []Expr
}

// IsPointer reports whether the type has at least one pointer level.
func (t *Type) IsPointer() bool { return t != nil && t.PtrDepth > 0 }

// IsVoid reports whether the base type is void with no pointers.
func (t *Type) IsVoid() bool {
	return t != nil && t.Name == "void" && t.PtrDepth == 0
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Ident is a (possibly qualified) name: "x", "ns::x", "Class::member".
type Ident struct {
	base
	Name string // full spelling, including :: qualifiers
}

// IntLit is an integer literal.
type IntLit struct {
	base
	Text  string
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	base
	Text  string
	Value float64
}

// StringLit is a string literal (quotes included in Text).
type StringLit struct {
	base
	Text string
}

// CharLit is a character literal.
type CharLit struct {
	base
	Text  string
	Value int64
}

// BoolLit is true/false/nullptr (nullptr carried as false with IsNull set).
type BoolLit struct {
	base
	Value  bool
	IsNull bool // nullptr
}

// Unary is a prefix operator application.
type Unary struct {
	base
	Op string // "!", "-", "+", "~", "*", "&", "++", "--"
	X  Expr
}

// Postfix is a postfix ++/--.
type Postfix struct {
	base
	Op string // "++" or "--"
	X  Expr
}

// Binary is a binary operator application. Assignment operators are
// represented by Assign, not Binary.
type Binary struct {
	base
	Op   string // "+", "==", "&&", "<<", ...
	L, R Expr
}

// Assign is an assignment, possibly compound ("=", "+=", ...).
type Assign struct {
	base
	Op   string
	L, R Expr
}

// Cond is the ternary conditional.
type Cond struct {
	base
	C, T, F Expr
}

// Call is a function or method call.
type Call struct {
	base
	Fun  Expr
	Args []Expr
}

// KernelLaunch is a CUDA kernel launch: fun<<<grid, block, ...>>>(args).
type KernelLaunch struct {
	base
	Fun    Expr
	Config []Expr // grid, block, optional shared-mem and stream
	Args   []Expr
}

// Index is array subscripting.
type Index struct {
	base
	X, I Expr
}

// Member is field selection: X.Name or X->Name.
type Member struct {
	base
	X     Expr
	Name  string
	Arrow bool
}

// CastStyle distinguishes the syntactic flavours of explicit casts; the
// strong-typing rule reports all of them, and the report breaks them down.
type CastStyle int

// Cast syntax flavours.
const (
	CastCStyle CastStyle = iota
	CastStatic
	CastDynamic
	CastConst
	CastReinterpret
	CastFunctional // T(x)
)

// String names the cast style.
func (c CastStyle) String() string {
	switch c {
	case CastCStyle:
		return "c-style"
	case CastStatic:
		return "static_cast"
	case CastDynamic:
		return "dynamic_cast"
	case CastConst:
		return "const_cast"
	case CastReinterpret:
		return "reinterpret_cast"
	case CastFunctional:
		return "functional"
	default:
		return "cast"
	}
}

// Cast is an explicit type conversion.
type Cast struct {
	base
	Style CastStyle
	To    *Type
	X     Expr
}

// SizeofExpr is sizeof(expr) or sizeof(type).
type SizeofExpr struct {
	base
	Type *Type // non-nil for sizeof(type)
	X    Expr  // non-nil for sizeof expr
}

// NewExpr is C++ new / new[].
type NewExpr struct {
	base
	Type  *Type
	Count Expr   // non-nil for new[]
	Args  []Expr // constructor arguments
}

// DeleteExpr is C++ delete / delete[].
type DeleteExpr struct {
	base
	X     Expr
	Array bool
}

// Comma is the comma operator (represented explicitly so rules can flag it).
type Comma struct {
	base
	L, R Expr
}

// InitList is a braced initializer list.
type InitList struct {
	base
	Elems []Expr
}

// Paren wraps a parenthesized expression (kept for style checks).
type Paren struct {
	base
	X Expr
}

func (*Ident) exprNode()        {}
func (*IntLit) exprNode()       {}
func (*FloatLit) exprNode()     {}
func (*StringLit) exprNode()    {}
func (*CharLit) exprNode()      {}
func (*BoolLit) exprNode()      {}
func (*Unary) exprNode()        {}
func (*Postfix) exprNode()      {}
func (*Binary) exprNode()       {}
func (*Assign) exprNode()       {}
func (*Cond) exprNode()         {}
func (*Call) exprNode()         {}
func (*KernelLaunch) exprNode() {}
func (*Index) exprNode()        {}
func (*Member) exprNode()       {}
func (*Cast) exprNode()         {}
func (*SizeofExpr) exprNode()   {}
func (*NewExpr) exprNode()      {}
func (*DeleteExpr) exprNode()   {}
func (*Comma) exprNode()        {}
func (*InitList) exprNode()     {}
func (*Paren) exprNode()        {}

// ---------------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a compound statement.
type Block struct {
	base
	Stmts []Stmt
}

// ExprStmt is an expression statement.
type ExprStmt struct {
	base
	X Expr
}

// DeclStmt is a local declaration; one statement may declare several names.
type DeclStmt struct {
	base
	Decl *VarDecl
}

// If is an if/else statement.
type If struct {
	base
	Cond Expr
	Then Stmt
	Else Stmt // nil when absent
}

// While is a while loop.
type While struct {
	base
	Cond Expr
	Body Stmt
}

// DoWhile is a do-while loop.
type DoWhile struct {
	base
	Body Stmt
	Cond Expr
}

// For is a for loop; any of Init/Cond/Post may be nil. Init is either a
// *DeclStmt or *ExprStmt.
type For struct {
	base
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// Switch is a switch statement.
type Switch struct {
	base
	Tag   Expr
	Cases []*CaseClause
}

// CaseClause is one case or default group inside a switch.
type CaseClause struct {
	base
	Values []Expr // empty for default
	Body   []Stmt
}

// Break is a break statement.
type Break struct{ base }

// Continue is a continue statement.
type Continue struct{ base }

// Return is a return statement; X may be nil.
type Return struct {
	base
	X Expr
}

// Goto is a goto statement.
type Goto struct {
	base
	Label string
}

// Label is a labeled statement.
type Label struct {
	base
	Name string
	Stmt Stmt
}

// Empty is a lone semicolon.
type Empty struct{ base }

func (*Block) stmtNode()    {}
func (*ExprStmt) stmtNode() {}
func (*DeclStmt) stmtNode() {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*DoWhile) stmtNode()  {}
func (*For) stmtNode()      {}
func (*Switch) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Return) stmtNode()   {}
func (*Goto) stmtNode()     {}
func (*Label) stmtNode()    {}
func (*Empty) stmtNode()    {}

// ---------------------------------------------------------------------------
// Declarations

// Decl is implemented by all top-level declarations.
type Decl interface {
	Node
	declNode()
}

// Declarator is one declared name within a VarDecl.
type Declarator struct {
	base
	Name string
	Type *Type // full type including per-declarator pointers/arrays
	Init Expr  // nil when uninitialized
}

// VarDecl declares one or more variables (or a typedef).
type VarDecl struct {
	base
	Names []*Declarator
	// Global marks file-scope declarations (set by the parser).
	Global bool
}

// Param is a function parameter.
type Param struct {
	base
	Name string // may be "" in prototypes
	Type *Type
}

// FuncDecl is a function definition or prototype.
type FuncDecl struct {
	base
	Name     string // qualified spelling as written ("Detector::Detect")
	Ret      *Type
	Params   []*Param
	Variadic bool
	Body     *Block // nil for prototypes
	Quals    TypeQual
	// Namespace is the enclosing namespace path, "::"-joined, if any.
	Namespace string
	// Class is the enclosing class for methods defined inline.
	Class string
}

// IsKernel reports whether the function is a CUDA __global__ kernel.
func (f *FuncDecl) IsKernel() bool { return f.Quals.Has(QualCUDAGlobal) }

// IsDefinition reports whether the declaration carries a body.
func (f *FuncDecl) IsDefinition() bool { return f.Body != nil }

// RecordKind distinguishes struct/union/class.
type RecordKind int

// Record kinds.
const (
	RecordStruct RecordKind = iota
	RecordUnion
	RecordClass
)

// String names the record kind.
func (k RecordKind) String() string {
	switch k {
	case RecordStruct:
		return "struct"
	case RecordUnion:
		return "union"
	default:
		return "class"
	}
}

// Field is one member of a record.
type Field struct {
	base
	Name string
	Type *Type
}

// RecordDecl is a struct/union/class definition.
type RecordDecl struct {
	base
	Kind    RecordKind
	Name    string
	Fields  []*Field
	Methods []*FuncDecl
}

// EnumDecl is an enum definition.
type EnumDecl struct {
	base
	Name    string
	Members []string
}

// TypedefDecl is a typedef (or using alias).
type TypedefDecl struct {
	base
	Name string
	Type *Type
}

// NamespaceDecl is a namespace block.
type NamespaceDecl struct {
	base
	Name  string
	Decls []Decl
}

// UsingDecl is "using namespace x;" or "using x::y;".
type UsingDecl struct {
	base
	Target      string
	IsNamespace bool
}

// PPDirective is a preprocessor line kept in the tree for metrics/style.
type PPDirective struct {
	base
	Text string // full directive text, e.g. "#include <vector>"
}

// BadDecl marks a region the parser could not understand; it lets analysis
// proceed on the rest of the file.
type BadDecl struct {
	base
	Reason string
}

func (*VarDecl) declNode()       {}
func (*FuncDecl) declNode()      {}
func (*RecordDecl) declNode()    {}
func (*EnumDecl) declNode()      {}
func (*TypedefDecl) declNode()   {}
func (*NamespaceDecl) declNode() {}
func (*UsingDecl) declNode()     {}
func (*PPDirective) declNode()   {}
func (*BadDecl) declNode()       {}

// TranslationUnit is one parsed source file.
type TranslationUnit struct {
	base
	File  *srcfile.File
	Decls []Decl
	// Comments holds comment tokens when the parser was configured to keep
	// them (style metrics use this).
	Comments []CommentInfo
}

// CommentInfo records a comment's position and text.
type CommentInfo struct {
	Line, Col int
	Text      string
}

// Funcs returns every function definition in the unit, including methods
// inside records and functions nested in namespaces, in source order.
func (tu *TranslationUnit) Funcs() []*FuncDecl {
	var out []*FuncDecl
	var walkDecls func(ds []Decl)
	walkDecls = func(ds []Decl) {
		for _, d := range ds {
			switch d := d.(type) {
			case *FuncDecl:
				if d.IsDefinition() {
					out = append(out, d)
				}
			case *RecordDecl:
				for _, m := range d.Methods {
					if m.IsDefinition() {
						out = append(out, m)
					}
				}
			case *NamespaceDecl:
				walkDecls(d.Decls)
			}
		}
	}
	walkDecls(tu.Decls)
	return out
}

// GlobalVars returns file-scope variable declarations, recursing into
// namespaces (namespace-scope variables are globals for the rules engine).
func (tu *TranslationUnit) GlobalVars() []*VarDecl {
	var out []*VarDecl
	var walkDecls func(ds []Decl)
	walkDecls = func(ds []Decl) {
		for _, d := range ds {
			switch d := d.(type) {
			case *VarDecl:
				out = append(out, d)
			case *NamespaceDecl:
				walkDecls(d.Decls)
			}
		}
	}
	walkDecls(tu.Decls)
	return out
}
