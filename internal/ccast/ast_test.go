package ccast

import (
	"testing"

	"repro/internal/srcfile"
)

func ident(name string) *Ident { return &Ident{Name: name} }

func TestWalkOrderAndPruning(t *testing.T) {
	// if (a) { b; } else { c; }
	stmt := &If{
		Cond: ident("a"),
		Then: &Block{Stmts: []Stmt{&ExprStmt{X: ident("b")}}},
		Else: &Block{Stmts: []Stmt{&ExprStmt{X: ident("c")}}},
	}
	var names []string
	Walk(stmt, func(n Node) bool {
		if id, ok := n.(*Ident); ok {
			names = append(names, id.Name)
		}
		return true
	})
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Errorf("walk order = %v", names)
	}

	// Pruning at the If stops descent entirely.
	count := 0
	Walk(stmt, func(n Node) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("pruned walk visited %d nodes", count)
	}
}

func TestWalkNilSafety(t *testing.T) {
	// Optional fields (Else, Init, Cond) are nil; Walk must not panic.
	f := &For{Body: &Block{}}
	Walk(f, func(Node) bool { return true })
	i := &If{Cond: ident("x"), Then: &Block{}}
	Walk(i, func(Node) bool { return true })
	var nilType *Type
	Walk(nilType, func(Node) bool { return true })
}

func TestWalkExprsAndStmts(t *testing.T) {
	body := &Block{Stmts: []Stmt{
		&ExprStmt{X: &Binary{Op: "+", L: ident("a"), R: ident("b")}},
		&Return{X: &Call{Fun: ident("f"), Args: []Expr{ident("c")}}},
	}}
	exprs, stmts := 0, 0
	WalkExprs(body, func(Expr) bool { exprs++; return true })
	WalkStmts(body, func(Stmt) bool { stmts++; return true })
	if exprs != 6 { // binary, a, b, call, f, c
		t.Errorf("exprs = %d, want 6", exprs)
	}
	if stmts != 3 { // block, exprstmt, return
		t.Errorf("stmts = %d, want 3", stmts)
	}
}

func TestCountReturns(t *testing.T) {
	fn := &FuncDecl{
		Name: "f",
		Body: &Block{Stmts: []Stmt{
			&If{Cond: ident("a"), Then: &Return{}},
			&Return{X: ident("b")},
		}},
	}
	if got := CountReturns(fn); got != 2 {
		t.Errorf("returns = %d", got)
	}
	if CountReturns(&FuncDecl{Name: "proto"}) != 0 {
		t.Error("prototype must count 0 returns")
	}
}

func TestTypeHelpers(t *testing.T) {
	p := &Type{Name: "float", PtrDepth: 1}
	if !p.IsPointer() || p.IsVoid() {
		t.Error("float* classification")
	}
	v := &Type{Name: "void"}
	if !v.IsVoid() || v.IsPointer() {
		t.Error("void classification")
	}
	var nilT *Type
	if nilT.IsPointer() || nilT.IsVoid() {
		t.Error("nil type must be neither")
	}
}

func TestQualHas(t *testing.T) {
	q := QualConst | QualStatic
	if !q.Has(QualConst) || !q.Has(QualStatic) || q.Has(QualVolatile) {
		t.Error("qualifier bitset")
	}
	if !q.Has(QualConst | QualStatic) {
		t.Error("multi-bit Has")
	}
}

func TestFuncDeclClassifiers(t *testing.T) {
	k := &FuncDecl{Name: "kern", Quals: QualCUDAGlobal, Body: &Block{}}
	if !k.IsKernel() || !k.IsDefinition() {
		t.Error("kernel classification")
	}
	p := &FuncDecl{Name: "proto"}
	if p.IsKernel() || p.IsDefinition() {
		t.Error("prototype classification")
	}
}

func TestTranslationUnitFuncsRecursesNamespaces(t *testing.T) {
	tu := &TranslationUnit{
		File: &srcfile.File{Path: "a.cc"},
		Decls: []Decl{
			&NamespaceDecl{Name: "outer", Decls: []Decl{
				&NamespaceDecl{Name: "inner", Decls: []Decl{
					&FuncDecl{Name: "deep", Body: &Block{}},
					&VarDecl{Names: []*Declarator{{Name: "g", Type: &Type{Name: "int"}}}},
				}},
			}},
			&RecordDecl{Name: "C", Methods: []*FuncDecl{
				{Name: "M", Body: &Block{}},
				{Name: "Proto"},
			}},
			&FuncDecl{Name: "top", Body: &Block{}},
		},
	}
	funcs := tu.Funcs()
	if len(funcs) != 3 {
		t.Fatalf("funcs = %d, want 3 (deep, M, top)", len(funcs))
	}
	globals := tu.GlobalVars()
	if len(globals) != 1 || globals[0].Names[0].Name != "g" {
		t.Errorf("globals = %v", globals)
	}
}

func TestCastStyleStrings(t *testing.T) {
	styles := []CastStyle{CastCStyle, CastStatic, CastDynamic, CastConst, CastReinterpret, CastFunctional}
	seen := map[string]bool{}
	for _, s := range styles {
		name := s.String()
		if name == "" || seen[name] {
			t.Errorf("bad or duplicate style name %q", name)
		}
		seen[name] = true
	}
}

func TestRecordKindStrings(t *testing.T) {
	if RecordStruct.String() != "struct" || RecordUnion.String() != "union" || RecordClass.String() != "class" {
		t.Error("record kind names")
	}
}

func TestSpanPropagation(t *testing.T) {
	n := &IntLit{Value: 1}
	sp := srcfile.Span{Start: srcfile.Pos{Line: 3, Col: 5}}
	n.SetSpan(sp)
	if n.Span().Start.Line != 3 || n.Span().Start.Col != 5 {
		t.Error("span not stored")
	}
}
