package ccast

// Visitor receives every node during a Walk. Returning false prunes the
// subtree below the node.
type Visitor func(Node) bool

// Walk traverses the tree rooted at n in depth-first source order, calling
// v for each non-nil node.
//
// The nil guard is folded into the dispatch switch: optional fields
// (FuncDecl.Ret, If.Else, Declarator.Init, ...) surface as typed-nil
// interfaces, and checking them per concrete type costs one comparison
// instead of a second type switch per node — Walk runs once per AST node
// of the corpus on every cold index build, so this is a hot path.
func Walk(n Node, v Visitor) {
	switch x := n.(type) {
	case nil:
		return
	case *Type:
		if x == nil || !v(n) {
			return
		}
		for _, e := range x.ArrayDims {
			Walk(e, v)
		}
		return
	case *Block:
		if x == nil || !v(n) {
			return
		}
		for _, s := range x.Stmts {
			Walk(s, v)
		}
		return
	case *Ident:
		if x == nil {
			return
		}
		v(n)
		return
	case *Paren:
		if x == nil || !v(n) {
			return
		}
		Walk(x.X, v)
		return
	}
	if !v(n) {
		return
	}
	switch n := n.(type) {
	case *TranslationUnit:
		for _, d := range n.Decls {
			Walk(d, v)
		}
	case *NamespaceDecl:
		for _, d := range n.Decls {
			Walk(d, v)
		}
	case *RecordDecl:
		for _, f := range n.Fields {
			Walk(f, v)
		}
		for _, m := range n.Methods {
			Walk(m, v)
		}
	case *Field:
		Walk(n.Type, v)
	case *FuncDecl:
		Walk(n.Ret, v)
		for _, p := range n.Params {
			Walk(p, v)
		}
		Walk(n.Body, v)
	case *Param:
		Walk(n.Type, v)
	case *VarDecl:
		for _, d := range n.Names {
			Walk(d, v)
		}
	case *Declarator:
		Walk(n.Type, v)
		Walk(n.Init, v)
	case *TypedefDecl:
		Walk(n.Type, v)

	case *ExprStmt:
		Walk(n.X, v)
	case *DeclStmt:
		Walk(n.Decl, v)
	case *If:
		Walk(n.Cond, v)
		Walk(n.Then, v)
		Walk(n.Else, v)
	case *While:
		Walk(n.Cond, v)
		Walk(n.Body, v)
	case *DoWhile:
		Walk(n.Body, v)
		Walk(n.Cond, v)
	case *For:
		Walk(n.Init, v)
		Walk(n.Cond, v)
		Walk(n.Post, v)
		Walk(n.Body, v)
	case *Switch:
		Walk(n.Tag, v)
		for _, c := range n.Cases {
			Walk(c, v)
		}
	case *CaseClause:
		for _, e := range n.Values {
			Walk(e, v)
		}
		for _, s := range n.Body {
			Walk(s, v)
		}
	case *Return:
		Walk(n.X, v)
	case *Label:
		Walk(n.Stmt, v)

	case *Unary:
		Walk(n.X, v)
	case *Postfix:
		Walk(n.X, v)
	case *Binary:
		Walk(n.L, v)
		Walk(n.R, v)
	case *Assign:
		Walk(n.L, v)
		Walk(n.R, v)
	case *Cond:
		Walk(n.C, v)
		Walk(n.T, v)
		Walk(n.F, v)
	case *Call:
		Walk(n.Fun, v)
		for _, a := range n.Args {
			Walk(a, v)
		}
	case *KernelLaunch:
		Walk(n.Fun, v)
		for _, c := range n.Config {
			Walk(c, v)
		}
		for _, a := range n.Args {
			Walk(a, v)
		}
	case *Index:
		Walk(n.X, v)
		Walk(n.I, v)
	case *Member:
		Walk(n.X, v)
	case *Cast:
		Walk(n.To, v)
		Walk(n.X, v)
	case *SizeofExpr:
		Walk(n.Type, v)
		Walk(n.X, v)
	case *NewExpr:
		Walk(n.Type, v)
		Walk(n.Count, v)
		for _, a := range n.Args {
			Walk(a, v)
		}
	case *DeleteExpr:
		Walk(n.X, v)
	case *Comma:
		Walk(n.L, v)
		Walk(n.R, v)
	case *InitList:
		for _, e := range n.Elems {
			Walk(e, v)
		}
	}
}

// WalkStmts visits every statement under n (inclusive when n is a Stmt).
func WalkStmts(n Node, f func(Stmt) bool) {
	Walk(n, func(m Node) bool {
		if s, ok := m.(Stmt); ok {
			return f(s)
		}
		return true
	})
}

// WalkExprs visits every expression under n.
func WalkExprs(n Node, f func(Expr) bool) {
	Walk(n, func(m Node) bool {
		if e, ok := m.(Expr); ok {
			return f(e)
		}
		return true
	})
}

// CountReturns counts return statements in a function body.
func CountReturns(f *FuncDecl) int {
	n := 0
	WalkStmts(f.Body, func(s Stmt) bool {
		if _, ok := s.(*Return); ok {
			n++
		}
		return true
	})
	return n
}
