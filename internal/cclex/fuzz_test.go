package cclex_test

import (
	"testing"

	"repro/internal/apollocorpus"
	"repro/internal/cclex"
)

// fuzzSeeds returns representative real inputs: hand-written YOLO C, the
// CUDA stencil kernels, the Figure 4 excerpt, and a slice of the
// generated Apollo-like corpus, plus adversarial fragments for every
// token class the lexer special-cases.
func fuzzSeeds() []string {
	seeds := []string{
		"",
		"int main() { return 0; }\n",
		"/* unterminated",
		"// line comment without newline",
		"\"unterminated string",
		"'c' 'unterminated",
		"0x 0b 0755 1e+ 1.5e-3f 0xZZ 08 .5f",
		"a<<<b, c>>>(d); x >>= 2; y <<= 1;",
		"#include <weird\nint x = L\"wide\";",
		"...\xff\xfe\x00...",
		"int a = 1 /*/ 2;",
		"R\"(raw)\" u8\"s\" L'x'",
	}
	seeds = append(seeds, apollocorpus.ScaleBiasSample().Src)
	for _, f := range apollocorpus.YoloCorpus().Files() {
		seeds = append(seeds, f.Src)
	}
	for _, f := range apollocorpus.StencilCorpus().Files() {
		seeds = append(seeds, f.Src)
	}
	// A couple of generated Apollo-like files (C++ and CUDA).
	gen := apollocorpus.GenerateDefault().Files()
	for i := 0; i < len(gen) && i < 4; i++ {
		seeds = append(seeds, gen[i].Src)
	}
	return seeds
}

// FuzzLex feeds arbitrary bytes through the lexer in both plain-C++ and
// CUDA modes and with comment retention on, asserting it terminates
// without panicking and that every token's position stays within the
// input.
func FuzzLex(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		for _, cuda := range []bool{false, true} {
			lx := cclex.New(src)
			lx.CUDA = cuda
			lx.KeepComments = true
			toks := lx.All()
			for _, tok := range toks {
				if tok.Line < 1 || tok.Col < 1 {
					t.Fatalf("token %v at invalid position %d:%d", tok.Kind, tok.Line, tok.Col)
				}
			}
			if len(toks) > len(src)+1 {
				t.Fatalf("lexer produced %d tokens from %d bytes", len(toks), len(src))
			}
		}
	})
}
