package cclex

import (
	"strings"
	"sync"
)

// Interner is a corpus-level identifier table shared by many lexers: every
// spelling of the same identifier across all files resolves to one canonical
// string. It is safe for concurrent use; lookups are striped across shards
// so parallel parses do not serialize on one lock.
//
// Canonical strings are cloned on first insertion, never aliased into a
// file's source — an interner outliving a corpus (deltas replace files; the
// table persists) must not pin replaced sources in memory.
type Interner struct {
	shards [internShards]internShard
}

const internShards = 64

type internShard struct {
	mu sync.RWMutex
	m  map[string]string
}

// NewInterner returns an empty shared identifier table.
func NewInterner() *Interner {
	in := &Interner{}
	for i := range in.shards {
		in.shards[i].m = make(map[string]string, 32)
	}
	return in
}

// Intern returns the canonical string equal to s, inserting a clone of s on
// first sight. The result never aliases s's backing array.
func (in *Interner) Intern(s string) string {
	sh := &in.shards[internHash(s)&(internShards-1)]
	sh.mu.RLock()
	canon, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return canon
	}
	canon = strings.Clone(s)
	sh.mu.Lock()
	if prior, ok := sh.m[canon]; ok {
		canon = prior
	} else {
		sh.m[canon] = canon
	}
	sh.mu.Unlock()
	return canon
}

// Len returns the number of interned strings (diagnostics only).
func (in *Interner) Len() int {
	n := 0
	for i := range in.shards {
		sh := &in.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// internHash is FNV-1a, inlined so shard selection costs no allocation.
func internHash(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}
