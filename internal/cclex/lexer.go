package cclex

import (
	"fmt"
	"strings"
)

// Error is a lexical error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer scans one source file. Create with New, then call Next until a
// KindEOF token is returned; errors are accumulated (the lexer recovers by
// skipping the offending byte) and available via Errors.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int

	// KeepComments makes the lexer emit KindComment tokens instead of
	// discarding comment text. Style checkers enable this.
	KeepComments bool
	// CUDA enables the <<< and >>> launch tokens. When false, those
	// sequences lex as shift operators as in plain C++.
	CUDA bool

	// Intern, when set, canonicalizes identifiers against a shared
	// corpus-level table instead of the per-lexer map — the fast path used
	// by the parallel parser so every file's "obstacle_count" is one string.
	Intern *Interner

	// interned canonicalizes identifier spellings within this file so
	// repeated names share one string allocation.
	interned map[string]string

	errs []*Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// NewBytes returns a lexer over raw file bytes. The bytes are converted to
// an immutable string once; every token text aliases that single copy, so
// lexing a []byte source costs one allocation total rather than one per
// token.
func NewBytes(src []byte) *Lexer {
	return New(string(src))
}

// Errors returns the lexical errors encountered so far.
func (lx *Lexer) Errors() []*Error { return lx.errs }

// tokensPerByte estimates token density for preallocation: C-family source
// averages roughly one token per six bytes.
const tokensPerByte = 6

// All scans the entire input and returns every token (excluding EOF).
func (lx *Lexer) All() []Token {
	return lx.AllInto(make([]Token, 0, len(lx.src)/tokensPerByte+8))
}

// AllInto scans the entire input, appending every token (excluding EOF) to
// buf[:0] and returning the result. Callers lexing many files reuse one
// buffer across calls so steady-state lexing allocates nothing.
func (lx *Lexer) AllInto(buf []Token) []Token {
	out := buf[:0]
	for {
		t := lx.Next()
		if t.Kind == KindEOF {
			return out
		}
		out = append(out, t)
	}
}

func (lx *Lexer) errorf(line, col int, format string, args ...interface{}) {
	lx.errs = append(lx.errs, &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)})
}

func (lx *Lexer) peekAt(n int) byte {
	if lx.pos+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+n]
}

func (lx *Lexer) peek() byte { return lx.peekAt(0) }

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipN(n int) {
	for i := 0; i < n && lx.pos < len(lx.src); i++ {
		lx.advance()
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Next returns the next token. After the input is exhausted it returns
// KindEOF tokens forever.
func (lx *Lexer) Next() Token {
	for {
		lx.skipSpace()
		if lx.pos >= len(lx.src) {
			return Token{Kind: KindEOF, Line: lx.line, Col: lx.col, Off: lx.pos}
		}
		start := Token{Line: lx.line, Col: lx.col, Off: lx.pos}
		c := lx.peek()

		// Comments.
		if c == '/' && lx.peekAt(1) == '/' {
			tok := lx.lexLineComment(start)
			if lx.KeepComments {
				return tok
			}
			continue
		}
		if c == '/' && lx.peekAt(1) == '*' {
			tok := lx.lexBlockComment(start)
			if lx.KeepComments {
				return tok
			}
			continue
		}

		// Preprocessor directive: '#' at start of logical line.
		if c == '#' && lx.atLineStart() {
			return lx.lexPPDirective(start)
		}

		switch {
		case isIdentStart(c):
			return lx.lexIdent(start)
		case isDigit(c) || (c == '.' && isDigit(lx.peekAt(1))):
			return lx.lexNumber(start)
		case c == '"':
			return lx.lexString(start)
		case c == '\'':
			return lx.lexChar(start)
		default:
			return lx.lexOperator(start)
		}
	}
}

func (lx *Lexer) atLineStart() bool {
	// Scan backwards over spaces/tabs to the previous newline or file start.
	for i := lx.pos - 1; i >= 0; i-- {
		switch lx.src[i] {
		case ' ', '\t', '\r':
			continue
		case '\n':
			return true
		default:
			return false
		}
	}
	return true
}

func (lx *Lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		switch lx.peek() {
		case ' ', '\t', '\r', '\n', '\v', '\f':
			lx.advance()
		case '\\':
			// Line continuation outside directives: skip "\\\n".
			if lx.peekAt(1) == '\n' {
				lx.skipN(2)
			} else {
				return
			}
		default:
			return
		}
	}
}

func (lx *Lexer) lexLineComment(start Token) Token {
	for lx.pos < len(lx.src) && lx.peek() != '\n' {
		lx.advance()
	}
	start.Kind = KindComment
	start.Text = lx.src[start.Off:lx.pos]
	return start
}

func (lx *Lexer) lexBlockComment(start Token) Token {
	lx.skipN(2)
	for lx.pos < len(lx.src) {
		if lx.peek() == '*' && lx.peekAt(1) == '/' {
			lx.skipN(2)
			start.Kind = KindComment
			start.Text = lx.src[start.Off:lx.pos]
			return start
		}
		lx.advance()
	}
	lx.errorf(start.Line, start.Col, "unterminated block comment")
	start.Kind = KindComment
	start.Text = lx.src[start.Off:lx.pos]
	return start
}

func (lx *Lexer) lexPPDirective(start Token) Token {
	// Fast path: most directives fit on one physical line with no embedded
	// comment, so the text is a plain slice of the source — no builder.
	end := lx.pos
	for end < len(lx.src) {
		c := lx.src[end]
		if c == '\n' {
			break
		}
		if (c == '\\' && end+1 < len(lx.src) && lx.src[end+1] == '\n') ||
			(c == '/' && end+1 < len(lx.src) && (lx.src[end+1] == '/' || lx.src[end+1] == '*')) {
			end = -1 // continuation or comment: take the slow path
			break
		}
		end++
	}
	if end >= 0 {
		start.Kind = KindPPDirective
		start.Text = strings.TrimRight(lx.src[lx.pos:end], " \t")
		lx.col += end - lx.pos
		lx.pos = end
		return start
	}

	// Consume to end of line, honoring backslash continuations and
	// swallowing comments so a trailing /* ... */ cannot leak.
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.peek()
		if c == '\\' && lx.peekAt(1) == '\n' {
			lx.skipN(2)
			sb.WriteByte(' ')
			continue
		}
		if c == '\n' {
			break
		}
		if c == '/' && lx.peekAt(1) == '/' {
			lx.lexLineComment(Token{})
			break
		}
		if c == '/' && lx.peekAt(1) == '*' {
			lx.lexBlockComment(Token{})
			sb.WriteByte(' ')
			continue
		}
		sb.WriteByte(c)
		lx.advance()
	}
	start.Kind = KindPPDirective
	start.Text = strings.TrimRight(sb.String(), " \t")
	return start
}

func (lx *Lexer) lexIdent(start Token) Token {
	for lx.pos < len(lx.src) && isIdentPart(lx.peek()) {
		lx.advance()
	}
	text := lx.src[start.Off:lx.pos]
	if canon, ok := keywordCanon[text]; ok {
		start.Kind = KindKeyword
		start.Text = canon
		return start
	}
	start.Kind = KindIdent
	start.Text = lx.intern(text)
	return start
}

// intern canonicalizes an identifier spelling so every occurrence of the
// same name shares one string. Common C/C++/CUDA identifiers resolve via a
// shared read-only table (safe under concurrent lexing); the rest go
// through the shared corpus table when one is attached, else a per-lexer
// table.
func (lx *Lexer) intern(text string) string {
	if canon, ok := commonIdents[text]; ok {
		return canon
	}
	if lx.Intern != nil {
		return lx.Intern.Intern(text)
	}
	if lx.interned == nil {
		lx.interned = make(map[string]string, 64)
	}
	if canon, ok := lx.interned[text]; ok {
		return canon
	}
	lx.interned[text] = text
	return text
}

func (lx *Lexer) lexNumber(start Token) Token {
	isFloat := false
	if lx.peek() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		lx.skipN(2)
		for lx.pos < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
	} else {
		for lx.pos < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		if lx.peek() == '.' {
			isFloat = true
			lx.advance()
			for lx.pos < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if c := lx.peek(); c == 'e' || c == 'E' {
			next := lx.peekAt(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(lx.peekAt(2))) {
				isFloat = true
				lx.advance()
				if c := lx.peek(); c == '+' || c == '-' {
					lx.advance()
				}
				for lx.pos < len(lx.src) && isDigit(lx.peek()) {
					lx.advance()
				}
			}
		}
	}
	// Suffixes: u, l, f combinations.
	for {
		c := lx.peek()
		if c == 'u' || c == 'U' || c == 'l' || c == 'L' {
			lx.advance()
			continue
		}
		if c == 'f' || c == 'F' {
			isFloat = true
			lx.advance()
			continue
		}
		break
	}
	start.Text = lx.src[start.Off:lx.pos]
	if isFloat {
		start.Kind = KindFloatLit
	} else {
		start.Kind = KindIntLit
	}
	return start
}

func (lx *Lexer) lexString(start Token) Token {
	lx.advance() // opening quote
	for lx.pos < len(lx.src) {
		c := lx.peek()
		if c == '\\' && lx.pos+1 < len(lx.src) {
			lx.skipN(2)
			continue
		}
		if c == '"' {
			lx.advance()
			start.Kind = KindStringLit
			start.Text = lx.src[start.Off:lx.pos]
			return start
		}
		if c == '\n' {
			break
		}
		lx.advance()
	}
	lx.errorf(start.Line, start.Col, "unterminated string literal")
	start.Kind = KindStringLit
	start.Text = lx.src[start.Off:lx.pos]
	return start
}

func (lx *Lexer) lexChar(start Token) Token {
	lx.advance() // opening quote
	for lx.pos < len(lx.src) {
		c := lx.peek()
		if c == '\\' && lx.pos+1 < len(lx.src) {
			lx.skipN(2)
			continue
		}
		if c == '\'' {
			lx.advance()
			start.Kind = KindCharLit
			start.Text = lx.src[start.Off:lx.pos]
			return start
		}
		if c == '\n' {
			break
		}
		lx.advance()
	}
	lx.errorf(start.Line, start.Col, "unterminated character literal")
	start.Kind = KindCharLit
	start.Text = lx.src[start.Off:lx.pos]
	return start
}

// lexOperator scans punctuation and operators, dispatching on the first
// byte (the seed's longest-first table scan was a parse hot spot).
func (lx *Lexer) lexOperator(start Token) Token {
	c := lx.peek()
	c1 := lx.peekAt(1)
	op := func(n int, kind Kind, text string) Token {
		lx.skipN(n)
		start.Kind, start.Text = kind, text
		return start
	}
	switch c {
	case '(':
		return op(1, KindLParen, "(")
	case ')':
		return op(1, KindRParen, ")")
	case '{':
		return op(1, KindLBrace, "{")
	case '}':
		return op(1, KindRBrace, "}")
	case '[':
		return op(1, KindLBracket, "[")
	case ']':
		return op(1, KindRBracket, "]")
	case ';':
		return op(1, KindSemi, ";")
	case ',':
		return op(1, KindComma, ",")
	case '?':
		return op(1, KindQuestion, "?")
	case '~':
		return op(1, KindTilde, "~")
	case ':':
		if c1 == ':' {
			return op(2, KindColonColon, "::")
		}
		return op(1, KindColon, ":")
	case '.':
		if c1 == '.' && lx.peekAt(2) == '.' {
			return op(3, KindEllipsis, "...")
		}
		return op(1, KindDot, ".")
	case '=':
		if c1 == '=' {
			return op(2, KindEq, "==")
		}
		return op(1, KindAssign, "=")
	case '!':
		if c1 == '=' {
			return op(2, KindNotEq, "!=")
		}
		return op(1, KindNot, "!")
	case '+':
		switch c1 {
		case '+':
			return op(2, KindPlusPlus, "++")
		case '=':
			return op(2, KindPlusEq, "+=")
		}
		return op(1, KindPlus, "+")
	case '-':
		switch c1 {
		case '-':
			return op(2, KindMinusMinus, "--")
		case '=':
			return op(2, KindMinusEq, "-=")
		case '>':
			return op(2, KindArrow, "->")
		}
		return op(1, KindMinus, "-")
	case '*':
		if c1 == '=' {
			return op(2, KindStarEq, "*=")
		}
		return op(1, KindStar, "*")
	case '/':
		if c1 == '=' {
			return op(2, KindSlashEq, "/=")
		}
		return op(1, KindSlash, "/")
	case '%':
		if c1 == '=' {
			return op(2, KindPercentEq, "%=")
		}
		return op(1, KindPercent, "%")
	case '&':
		switch c1 {
		case '&':
			return op(2, KindAndAnd, "&&")
		case '=':
			return op(2, KindAmpEq, "&=")
		}
		return op(1, KindAmp, "&")
	case '|':
		switch c1 {
		case '|':
			return op(2, KindOrOr, "||")
		case '=':
			return op(2, KindPipeEq, "|=")
		}
		return op(1, KindPipe, "|")
	case '^':
		if c1 == '=' {
			return op(2, KindCaretEq, "^=")
		}
		return op(1, KindCaret, "^")
	case '<':
		if c1 == '<' {
			if lx.CUDA && lx.peekAt(2) == '<' {
				return op(3, KindKernelLaunch, "<<<")
			}
			if lx.peekAt(2) == '=' {
				return op(3, KindShlEq, "<<=")
			}
			return op(2, KindShl, "<<")
		}
		if c1 == '=' {
			return op(2, KindLessEq, "<=")
		}
		return op(1, KindLess, "<")
	case '>':
		if c1 == '>' {
			if lx.CUDA && lx.peekAt(2) == '>' {
				return op(3, KindKernelLaunchEnd, ">>>")
			}
			if lx.peekAt(2) == '=' {
				return op(3, KindShrEq, ">>=")
			}
			return op(2, KindShr, ">>")
		}
		if c1 == '=' {
			return op(2, KindGreaterEq, ">=")
		}
		return op(1, KindGreater, ">")
	}
	lx.errorf(start.Line, start.Col, "unexpected character %q", lx.peek())
	lx.advance()
	return lx.Next()
}
