package cclex

import (
	"fmt"
	"strings"
)

// Error is a lexical error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer scans one source file. Create with New, then call Next until a
// KindEOF token is returned; errors are accumulated (the lexer recovers by
// skipping the offending byte) and available via Errors.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int

	// KeepComments makes the lexer emit KindComment tokens instead of
	// discarding comment text. Style checkers enable this.
	KeepComments bool
	// CUDA enables the <<< and >>> launch tokens. When false, those
	// sequences lex as shift operators as in plain C++.
	CUDA bool

	errs []*Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (lx *Lexer) Errors() []*Error { return lx.errs }

// All scans the entire input and returns every token (excluding EOF).
func (lx *Lexer) All() []Token {
	var out []Token
	for {
		t := lx.Next()
		if t.Kind == KindEOF {
			return out
		}
		out = append(out, t)
	}
}

func (lx *Lexer) errorf(line, col int, format string, args ...interface{}) {
	lx.errs = append(lx.errs, &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)})
}

func (lx *Lexer) peekAt(n int) byte {
	if lx.pos+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+n]
}

func (lx *Lexer) peek() byte { return lx.peekAt(0) }

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipN(n int) {
	for i := 0; i < n && lx.pos < len(lx.src); i++ {
		lx.advance()
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Next returns the next token. After the input is exhausted it returns
// KindEOF tokens forever.
func (lx *Lexer) Next() Token {
	for {
		lx.skipSpace()
		if lx.pos >= len(lx.src) {
			return Token{Kind: KindEOF, Line: lx.line, Col: lx.col, Off: lx.pos}
		}
		start := Token{Line: lx.line, Col: lx.col, Off: lx.pos}
		c := lx.peek()

		// Comments.
		if c == '/' && lx.peekAt(1) == '/' {
			tok := lx.lexLineComment(start)
			if lx.KeepComments {
				return tok
			}
			continue
		}
		if c == '/' && lx.peekAt(1) == '*' {
			tok := lx.lexBlockComment(start)
			if lx.KeepComments {
				return tok
			}
			continue
		}

		// Preprocessor directive: '#' at start of logical line.
		if c == '#' && lx.atLineStart() {
			return lx.lexPPDirective(start)
		}

		switch {
		case isIdentStart(c):
			return lx.lexIdent(start)
		case isDigit(c) || (c == '.' && isDigit(lx.peekAt(1))):
			return lx.lexNumber(start)
		case c == '"':
			return lx.lexString(start)
		case c == '\'':
			return lx.lexChar(start)
		default:
			return lx.lexOperator(start)
		}
	}
}

func (lx *Lexer) atLineStart() bool {
	// Scan backwards over spaces/tabs to the previous newline or file start.
	for i := lx.pos - 1; i >= 0; i-- {
		switch lx.src[i] {
		case ' ', '\t', '\r':
			continue
		case '\n':
			return true
		default:
			return false
		}
	}
	return true
}

func (lx *Lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		switch lx.peek() {
		case ' ', '\t', '\r', '\n', '\v', '\f':
			lx.advance()
		case '\\':
			// Line continuation outside directives: skip "\\\n".
			if lx.peekAt(1) == '\n' {
				lx.skipN(2)
			} else {
				return
			}
		default:
			return
		}
	}
}

func (lx *Lexer) lexLineComment(start Token) Token {
	for lx.pos < len(lx.src) && lx.peek() != '\n' {
		lx.advance()
	}
	start.Kind = KindComment
	start.Text = lx.src[start.Off:lx.pos]
	return start
}

func (lx *Lexer) lexBlockComment(start Token) Token {
	lx.skipN(2)
	for lx.pos < len(lx.src) {
		if lx.peek() == '*' && lx.peekAt(1) == '/' {
			lx.skipN(2)
			start.Kind = KindComment
			start.Text = lx.src[start.Off:lx.pos]
			return start
		}
		lx.advance()
	}
	lx.errorf(start.Line, start.Col, "unterminated block comment")
	start.Kind = KindComment
	start.Text = lx.src[start.Off:lx.pos]
	return start
}

func (lx *Lexer) lexPPDirective(start Token) Token {
	// Consume to end of line, honoring backslash continuations and
	// swallowing comments so a trailing /* ... */ cannot leak.
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.peek()
		if c == '\\' && lx.peekAt(1) == '\n' {
			lx.skipN(2)
			sb.WriteByte(' ')
			continue
		}
		if c == '\n' {
			break
		}
		if c == '/' && lx.peekAt(1) == '/' {
			lx.lexLineComment(Token{})
			break
		}
		if c == '/' && lx.peekAt(1) == '*' {
			lx.lexBlockComment(Token{})
			sb.WriteByte(' ')
			continue
		}
		sb.WriteByte(c)
		lx.advance()
	}
	start.Kind = KindPPDirective
	start.Text = strings.TrimRight(sb.String(), " \t")
	return start
}

func (lx *Lexer) lexIdent(start Token) Token {
	for lx.pos < len(lx.src) && isIdentPart(lx.peek()) {
		lx.advance()
	}
	start.Text = lx.src[start.Off:lx.pos]
	if IsKeyword(start.Text) {
		start.Kind = KindKeyword
	} else {
		start.Kind = KindIdent
	}
	return start
}

func (lx *Lexer) lexNumber(start Token) Token {
	isFloat := false
	if lx.peek() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		lx.skipN(2)
		for lx.pos < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
	} else {
		for lx.pos < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		if lx.peek() == '.' {
			isFloat = true
			lx.advance()
			for lx.pos < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if c := lx.peek(); c == 'e' || c == 'E' {
			next := lx.peekAt(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(lx.peekAt(2))) {
				isFloat = true
				lx.advance()
				if c := lx.peek(); c == '+' || c == '-' {
					lx.advance()
				}
				for lx.pos < len(lx.src) && isDigit(lx.peek()) {
					lx.advance()
				}
			}
		}
	}
	// Suffixes: u, l, f combinations.
	for {
		c := lx.peek()
		if c == 'u' || c == 'U' || c == 'l' || c == 'L' {
			lx.advance()
			continue
		}
		if c == 'f' || c == 'F' {
			isFloat = true
			lx.advance()
			continue
		}
		break
	}
	start.Text = lx.src[start.Off:lx.pos]
	if isFloat {
		start.Kind = KindFloatLit
	} else {
		start.Kind = KindIntLit
	}
	return start
}

func (lx *Lexer) lexString(start Token) Token {
	lx.advance() // opening quote
	for lx.pos < len(lx.src) {
		c := lx.peek()
		if c == '\\' && lx.pos+1 < len(lx.src) {
			lx.skipN(2)
			continue
		}
		if c == '"' {
			lx.advance()
			start.Kind = KindStringLit
			start.Text = lx.src[start.Off:lx.pos]
			return start
		}
		if c == '\n' {
			break
		}
		lx.advance()
	}
	lx.errorf(start.Line, start.Col, "unterminated string literal")
	start.Kind = KindStringLit
	start.Text = lx.src[start.Off:lx.pos]
	return start
}

func (lx *Lexer) lexChar(start Token) Token {
	lx.advance() // opening quote
	for lx.pos < len(lx.src) {
		c := lx.peek()
		if c == '\\' && lx.pos+1 < len(lx.src) {
			lx.skipN(2)
			continue
		}
		if c == '\'' {
			lx.advance()
			start.Kind = KindCharLit
			start.Text = lx.src[start.Off:lx.pos]
			return start
		}
		if c == '\n' {
			break
		}
		lx.advance()
	}
	lx.errorf(start.Line, start.Col, "unterminated character literal")
	start.Kind = KindCharLit
	start.Text = lx.src[start.Off:lx.pos]
	return start
}

// opTable maps operator spellings to kinds, tried longest-first.
var opTable = []struct {
	text string
	kind Kind
}{
	{"<<=", KindShlEq}, {">>=", KindShrEq}, {"...", KindEllipsis},
	{"==", KindEq}, {"!=", KindNotEq}, {"<=", KindLessEq}, {">=", KindGreaterEq},
	{"&&", KindAndAnd}, {"||", KindOrOr}, {"++", KindPlusPlus},
	{"--", KindMinusMinus}, {"+=", KindPlusEq}, {"-=", KindMinusEq},
	{"*=", KindStarEq}, {"/=", KindSlashEq}, {"%=", KindPercentEq},
	{"&=", KindAmpEq}, {"|=", KindPipeEq}, {"^=", KindCaretEq},
	{"->", KindArrow}, {"::", KindColonColon}, {"<<", KindShl}, {">>", KindShr},
	{"(", KindLParen}, {")", KindRParen}, {"{", KindLBrace}, {"}", KindRBrace},
	{"[", KindLBracket}, {"]", KindRBracket}, {";", KindSemi}, {",", KindComma},
	{":", KindColon}, {"?", KindQuestion}, {".", KindDot}, {"=", KindAssign},
	{"+", KindPlus}, {"-", KindMinus}, {"*", KindStar}, {"/", KindSlash},
	{"%", KindPercent}, {"<", KindLess}, {">", KindGreater}, {"!", KindNot},
	{"&", KindAmp}, {"|", KindPipe}, {"^", KindCaret}, {"~", KindTilde},
}

func (lx *Lexer) lexOperator(start Token) Token {
	rest := lx.src[lx.pos:]
	// CUDA launch brackets take precedence over shifts when enabled.
	if lx.CUDA {
		if strings.HasPrefix(rest, "<<<") {
			lx.skipN(3)
			start.Kind, start.Text = KindKernelLaunch, "<<<"
			return start
		}
		if strings.HasPrefix(rest, ">>>") {
			lx.skipN(3)
			start.Kind, start.Text = KindKernelLaunchEnd, ">>>"
			return start
		}
	}
	for _, op := range opTable {
		if strings.HasPrefix(rest, op.text) {
			lx.skipN(len(op.text))
			start.Kind, start.Text = op.kind, op.text
			return start
		}
	}
	lx.errorf(start.Line, start.Col, "unexpected character %q", lx.peek())
	lx.advance()
	return lx.Next()
}
