package cclex

import (
	"strings"
	"testing"
)

// benchSrc is a realistic mixed C++/CUDA-ish file of a few KB, echoing the
// shape of the synthetic corpus (includes, a struct, several functions).
var benchSrc = func() string {
	unit := `#include <vector>
#include "perception/obstacle.h"

// Detects obstacles within the planning horizon.
struct Obstacle {
  int id;
  float distance;
};

static int clamp_index(int idx, int n) {
  if (idx < 0) {
    return 0;
  }
  if (idx >= n) {
    return n - 1;
  }
  return idx;
}

float track_obstacles(const Obstacle* obs, int n, float horizon) {
  float worst = 0.0f;
  for (int i = 0; i < n; ++i) {
    float d = obs[i].distance;
    if (d < horizon && d > worst) {
      worst = d;
    }
  }
  return worst;
}
`
	return strings.Repeat(unit, 8)
}()

// BenchmarkAllGrowFromNil is the pre-optimization reference: the token
// slice grows from nil the way Lexer.All used to.
func BenchmarkAllGrowFromNil(b *testing.B) {
	b.SetBytes(int64(len(benchSrc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lx := New(benchSrc)
		var out []Token
		for {
			t := lx.Next()
			if t.Kind == KindEOF {
				break
			}
			out = append(out, t)
		}
		if len(out) == 0 {
			b.Fatal("no tokens")
		}
	}
}

// BenchmarkAll measures the preallocating All.
func BenchmarkAll(b *testing.B) {
	b.SetBytes(int64(len(benchSrc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(New(benchSrc).All()) == 0 {
			b.Fatal("no tokens")
		}
	}
}

// BenchmarkAllInto measures the steady-state fast path: reused token
// buffer plus a shared identifier table, as the parallel parser drives it.
func BenchmarkAllInto(b *testing.B) {
	b.SetBytes(int64(len(benchSrc)))
	b.ReportAllocs()
	in := NewInterner()
	var buf []Token
	for i := 0; i < b.N; i++ {
		lx := New(benchSrc)
		lx.Intern = in
		buf = lx.AllInto(buf)
		if len(buf) == 0 {
			b.Fatal("no tokens")
		}
	}
}
