package cclex

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(ts []Token) []Kind {
	out := make([]Kind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func TestLexSimpleDeclaration(t *testing.T) {
	lx := New("int x = 42;")
	ts := lx.All()
	want := []Kind{KindKeyword, KindIdent, KindAssign, KindIntLit, KindSemi}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), ts, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
	if ts[3].Text != "42" {
		t.Errorf("literal text = %q, want 42", ts[3].Text)
	}
}

func TestLexOperators(t *testing.T) {
	cases := map[string]Kind{
		"==": KindEq, "!=": KindNotEq, "<=": KindLessEq, ">=": KindGreaterEq,
		"&&": KindAndAnd, "||": KindOrOr, "<<": KindShl, ">>": KindShr,
		"->": KindArrow, "::": KindColonColon, "++": KindPlusPlus,
		"--": KindMinusMinus, "+=": KindPlusEq, "<<=": KindShlEq,
		">>=": KindShrEq, "...": KindEllipsis,
	}
	for src, want := range cases {
		ts := New(src).All()
		if len(ts) != 1 || ts[0].Kind != want {
			t.Errorf("lex(%q) = %v, want single %v", src, ts, want)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
	}{
		{"0", KindIntLit}, {"42", KindIntLit}, {"0x1F", KindIntLit},
		{"42u", KindIntLit}, {"42UL", KindIntLit}, {"1.5", KindFloatLit},
		{"1.5f", KindFloatLit}, {".5", KindFloatLit}, {"1e10", KindFloatLit},
		{"2.5e-3", KindFloatLit}, {"3f", KindFloatLit},
	}
	for _, c := range cases {
		ts := New(c.src).All()
		if len(ts) != 1 {
			t.Errorf("lex(%q): %d tokens %v", c.src, len(ts), ts)
			continue
		}
		if ts[0].Kind != c.kind {
			t.Errorf("lex(%q) kind = %v, want %v", c.src, ts[0].Kind, c.kind)
		}
		if ts[0].Text != c.src {
			t.Errorf("lex(%q) text = %q", c.src, ts[0].Text)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	ts := New(`"hello \"world\"\n"`).All()
	if len(ts) != 1 || ts[0].Kind != KindStringLit {
		t.Fatalf("got %v", ts)
	}
	if !strings.Contains(ts[0].Text, `\"world\"`) {
		t.Errorf("escape lost: %q", ts[0].Text)
	}
}

func TestLexCharLiteral(t *testing.T) {
	for _, src := range []string{"'a'", `'\n'`, `'\''`, `'\0'`} {
		ts := New(src).All()
		if len(ts) != 1 || ts[0].Kind != KindCharLit {
			t.Errorf("lex(%q) = %v", src, ts)
		}
	}
}

func TestLexCommentsDiscardedByDefault(t *testing.T) {
	ts := New("int x; // trailing\n/* block */ int y;").All()
	for _, tok := range ts {
		if tok.Kind == KindComment {
			t.Errorf("comment token leaked: %v", tok)
		}
	}
	if len(ts) != 6 {
		t.Errorf("got %d tokens, want 6: %v", len(ts), ts)
	}
}

func TestLexKeepComments(t *testing.T) {
	lx := New("// a\nint x; /* b */")
	lx.KeepComments = true
	ts := lx.All()
	n := 0
	for _, tok := range ts {
		if tok.Kind == KindComment {
			n++
		}
	}
	if n != 2 {
		t.Errorf("got %d comments, want 2", n)
	}
}

func TestLexPPDirective(t *testing.T) {
	lx := New("#include <vector>\n#define MAX \\\n  100\nint x;")
	ts := lx.All()
	if ts[0].Kind != KindPPDirective || ts[0].Text != "#include <vector>" {
		t.Errorf("directive 0 = %v", ts[0])
	}
	if ts[1].Kind != KindPPDirective || !strings.Contains(ts[1].Text, "100") {
		t.Errorf("continued directive not joined: %v", ts[1])
	}
	if ts[2].Kind != KindKeyword || ts[2].Text != "int" {
		t.Errorf("after directives: %v", ts[2])
	}
}

func TestLexHashNotDirectiveMidLine(t *testing.T) {
	// '#' appearing mid-line (e.g. inside a macro use we don't expand) should
	// not swallow the line — but '#' only starts a directive at line start,
	// and mid-line '#' is a lex error that is skipped.
	lx := New("int x; # not a directive start")
	_ = lx.All()
	// We only require that "int x ;" survived.
	lx2 := New("int x; # y")
	ts := lx2.All()
	if ts[0].Text != "int" || ts[1].Text != "x" {
		t.Errorf("prefix tokens lost: %v", ts)
	}
}

func TestLexCUDALaunch(t *testing.T) {
	lx := New("kernel<<<grid, block>>>(a, b);")
	lx.CUDA = true
	ts := lx.All()
	found := 0
	for _, tok := range ts {
		if tok.Kind == KindKernelLaunch || tok.Kind == KindKernelLaunchEnd {
			found++
		}
	}
	if found != 2 {
		t.Errorf("launch brackets = %d, want 2 in %v", found, ts)
	}
	// Without CUDA mode the same text must lex as shifts.
	lx2 := New("a <<< b")
	ts2 := lx2.All()
	if ts2[1].Kind != KindShl {
		t.Errorf("non-CUDA <<< should start with <<: %v", ts2)
	}
}

func TestLexPositions(t *testing.T) {
	ts := New("int\n  x;").All()
	if ts[0].Line != 1 || ts[0].Col != 1 {
		t.Errorf("int at %d:%d", ts[0].Line, ts[0].Col)
	}
	if ts[1].Line != 2 || ts[1].Col != 3 {
		t.Errorf("x at %d:%d, want 2:3", ts[1].Line, ts[1].Col)
	}
}

func TestLexUnterminatedString(t *testing.T) {
	lx := New("\"abc\nint x;")
	ts := lx.All()
	if len(lx.Errors()) == 0 {
		t.Error("expected unterminated string error")
	}
	// Lexing continues on the next line.
	var sawInt bool
	for _, tok := range ts {
		if tok.Is("int") {
			sawInt = true
		}
	}
	if !sawInt {
		t.Error("lexer did not recover after bad string")
	}
}

func TestLexErrorRecovery(t *testing.T) {
	lx := New("int @ x;")
	ts := lx.All()
	if len(lx.Errors()) != 1 {
		t.Errorf("errors = %v", lx.Errors())
	}
	if len(ts) != 3 {
		t.Errorf("tokens = %v", ts)
	}
}

// Property: lexing never panics and every token's text is a substring of
// the input at its offset (except synthesized directive text).
func TestLexRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		lx := New(s)
		for {
			tok := lx.Next()
			if tok.Kind == KindEOF {
				return true
			}
			if tok.Off < 0 || tok.Off > len(s) {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: concatenating token texts of an identifier/number-only input
// with separators reproduces the input tokens in order.
func TestLexOffsetsMonotonicProperty(t *testing.T) {
	f := func(words []uint8) bool {
		var sb strings.Builder
		for _, w := range words {
			sb.WriteString("x")
			sb.WriteString(strings.Repeat("a", int(w%5)))
			sb.WriteString(" ")
		}
		ts := New(sb.String()).All()
		last := -1
		for _, tok := range ts {
			if tok.Off <= last {
				return false
			}
			last = tok.Off
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsKeyword(t *testing.T) {
	for _, kw := range []string{"int", "if", "while", "__global__", "class", "nullptr"} {
		if !IsKeyword(kw) {
			t.Errorf("IsKeyword(%q) = false", kw)
		}
	}
	for _, id := range []string{"x", "main", "foo_bar", "Int"} {
		if IsKeyword(id) {
			t.Errorf("IsKeyword(%q) = true", id)
		}
	}
}
