// Package cclex tokenizes C, C++, and CUDA source for the assessment
// frontend. It is a from-scratch lexer: no external toolchain is used.
//
// Preprocessor directives are surfaced as single PPDirective tokens so the
// parser and the style/metrics passes can reason about them without a full
// preprocessing stage (the synthetic corpus is written to be parseable
// without macro expansion).
package cclex

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds. Operators and punctuation get individual kinds because the
// parser dispatches on them; keywords share KindKeyword with the spelling
// in Token.Text.
const (
	KindEOF Kind = iota
	KindIdent
	KindKeyword
	KindIntLit
	KindFloatLit
	KindCharLit
	KindStringLit
	KindPPDirective // whole preprocessor line, e.g. "#include <x.h>"
	KindComment     // emitted only when Lexer.KeepComments is set

	// Punctuation and operators.
	KindLParen   // (
	KindRParen   // )
	KindLBrace   // {
	KindRBrace   // }
	KindLBracket // [
	KindRBracket // ]
	KindSemi     // ;
	KindComma    // ,
	KindColon    // :
	KindColonColon
	KindQuestion // ?
	KindDot      // .
	KindEllipsis // ...
	KindArrow    // ->

	KindAssign     // =
	KindPlus       // +
	KindMinus      // -
	KindStar       // *
	KindSlash      // /
	KindPercent    // %
	KindPlusPlus   // ++
	KindMinusMinus // --
	KindPlusEq     // +=
	KindMinusEq    // -=
	KindStarEq     // *=
	KindSlashEq    // /=
	KindPercentEq  // %=
	KindAmpEq      // &=
	KindPipeEq     // |=
	KindCaretEq    // ^=
	KindShlEq      // <<=
	KindShrEq      // >>=

	KindEq        // ==
	KindNotEq     // !=
	KindLess      // <
	KindGreater   // >
	KindLessEq    // <=
	KindGreaterEq // >=

	KindAndAnd // &&
	KindOrOr   // ||
	KindNot    // !
	KindAmp    // &
	KindPipe   // |
	KindCaret  // ^
	KindTilde  // ~
	KindShl    // <<
	KindShr    // >>

	KindKernelLaunch    // <<< (CUDA)
	KindKernelLaunchEnd // >>> (CUDA)
)

var kindNames = map[Kind]string{
	KindEOF: "EOF", KindIdent: "ident", KindKeyword: "keyword",
	KindIntLit: "int", KindFloatLit: "float", KindCharLit: "char",
	KindStringLit: "string", KindPPDirective: "preproc", KindComment: "comment",
	KindLParen: "(", KindRParen: ")", KindLBrace: "{", KindRBrace: "}",
	KindLBracket: "[", KindRBracket: "]", KindSemi: ";", KindComma: ",",
	KindColon: ":", KindColonColon: "::", KindQuestion: "?", KindDot: ".",
	KindEllipsis: "...", KindArrow: "->", KindAssign: "=", KindPlus: "+",
	KindMinus: "-", KindStar: "*", KindSlash: "/", KindPercent: "%",
	KindPlusPlus: "++", KindMinusMinus: "--", KindPlusEq: "+=",
	KindMinusEq: "-=", KindStarEq: "*=", KindSlashEq: "/=", KindPercentEq: "%=",
	KindAmpEq: "&=", KindPipeEq: "|=", KindCaretEq: "^=", KindShlEq: "<<=",
	KindShrEq: ">>=", KindEq: "==", KindNotEq: "!=", KindLess: "<",
	KindGreater: ">", KindLessEq: "<=", KindGreaterEq: ">=",
	KindAndAnd: "&&", KindOrOr: "||", KindNot: "!", KindAmp: "&",
	KindPipe: "|", KindCaret: "^", KindTilde: "~", KindShl: "<<", KindShr: ">>",
	KindKernelLaunch: "<<<", KindKernelLaunchEnd: ">>>",
}

// String returns a printable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is one lexical element.
type Token struct {
	Kind Kind
	// Text is the exact source spelling (for PPDirective, the whole line
	// including continuations, without the trailing newline).
	Text string
	Line int // 1-based
	Col  int // 1-based
	Off  int // byte offset of the first character
}

// Is reports whether the token is a keyword with the given spelling.
func (t Token) Is(keyword string) bool {
	return t.Kind == KindKeyword && t.Text == keyword
}

// String renders the token for diagnostics.
func (t Token) String() string {
	if t.Text != "" && t.Kind != KindEOF {
		return fmt.Sprintf("%s(%q)@%d:%d", t.Kind, t.Text, t.Line, t.Col)
	}
	return fmt.Sprintf("%s@%d:%d", t.Kind, t.Line, t.Col)
}

// keywords covers C99, the C++ subset the parser understands, and the CUDA
// qualifiers. CUDA qualifiers are keywords in all dialects; the parser
// rejects them outside CUDA files.
var keywords = map[string]bool{
	// C
	"auto": true, "break": true, "case": true, "char": true, "const": true,
	"continue": true, "default": true, "do": true, "double": true,
	"else": true, "enum": true, "extern": true, "float": true, "for": true,
	"goto": true, "if": true, "inline": true, "int": true, "long": true,
	"register": true, "restrict": true, "return": true, "short": true,
	"signed": true, "sizeof": true, "static": true, "struct": true,
	"switch": true, "typedef": true, "union": true, "unsigned": true,
	"void": true, "volatile": true, "while": true, "_Bool": true,
	// C++ subset
	"bool": true, "class": true, "namespace": true, "new": true,
	"delete": true, "private": true, "protected": true, "public": true,
	"template": true, "typename": true, "using": true, "virtual": true,
	"true": true, "false": true, "nullptr": true, "this": true,
	"operator": true, "friend": true, "explicit": true, "mutable": true,
	"constexpr": true, "static_cast": true, "dynamic_cast": true,
	"const_cast": true, "reinterpret_cast": true, "try": true, "catch": true,
	"throw": true, "override": true, "final": false, // contextual, not reserved
	// CUDA
	"__global__": true, "__device__": true, "__host__": true,
	"__shared__": true, "__constant__": true, "__restrict__": true,
	"__forceinline__": true,
}

// IsKeyword reports whether s is a reserved word in the accepted dialects.
func IsKeyword(s string) bool { return keywords[s] }

// keywordCanon maps every reserved word to its canonical string so keyword
// tokens across all files share one allocation. Built once at init; the
// lexer reads it concurrently.
var keywordCanon = func() map[string]string {
	m := make(map[string]string, len(keywords))
	for k, reserved := range keywords {
		if reserved {
			m[k] = k
		}
	}
	return m
}()

// commonIdents canonicalizes identifiers that recur throughout C/C++/CUDA
// corpora (standard types, library calls, loop variables) so the lexers
// can intern them without per-lexer table traffic. Read-only after init,
// safe for concurrent lexing.
var commonIdents = func() map[string]string {
	names := []string{
		"size_t", "int8_t", "int16_t", "int32_t", "int64_t",
		"uint8_t", "uint16_t", "uint32_t", "uint64_t", "uint",
		"NULL", "std", "string", "vector", "map", "printf", "fprintf",
		"sprintf", "snprintf", "memcpy", "memset", "strlen", "strcmp",
		"malloc", "calloc", "realloc", "free", "abs", "fabs", "sqrt",
		"sqrtf", "exp", "expf", "log", "logf", "pow", "powf", "fmaxf",
		"fminf", "min", "max", "cudaMalloc", "cudaFree", "cudaMemcpy",
		"cudaMallocManaged", "cudaMallocHost", "cudaFreeHost",
		"blockIdx", "blockDim", "threadIdx", "gridDim", "x", "y", "z",
		"i", "j", "k", "n", "m", "idx", "len", "size", "count", "data",
		"buf", "out", "in", "src", "dst", "tmp", "val", "value", "result",
		"ret", "status", "err", "ok", "it", "begin", "end", "first", "last",
	}
	m := make(map[string]string, len(names))
	for _, s := range names {
		m[s] = s
	}
	return m
}()
