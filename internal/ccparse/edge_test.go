package ccparse

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ccast"
	"repro/internal/srcfile"
)

// parseLoose parses without failing the test on errors (failure-injection
// helpers use this).
func parseLoose(path, src string) (*ccast.TranslationUnit, []*Error) {
	f := &srcfile.File{Path: path, Lang: srcfile.LanguageForPath(path), Src: src}
	return Parse(f, Options{})
}

func TestParseEmptyFile(t *testing.T) {
	tu, errs := parseLoose("a.c", "")
	if len(errs) != 0 || len(tu.Decls) != 0 {
		t.Errorf("empty file: %d decls, %v", len(tu.Decls), errs)
	}
}

func TestParseOnlyComments(t *testing.T) {
	tu, errs := parseLoose("a.c", "// just\n/* comments */\n")
	if len(errs) != 0 || len(tu.Decls) != 0 {
		t.Errorf("comments-only: %d decls, %v", len(tu.Decls), errs)
	}
}

func TestParseOnlyDirectives(t *testing.T) {
	tu, errs := parseLoose("a.h", "#pragma once\n#include <x>\n#define Y 1\n")
	if len(errs) != 0 || len(tu.Decls) != 3 {
		t.Errorf("directives: %d decls, %v", len(tu.Decls), errs)
	}
}

func TestParseDeeplyNestedBlocks(t *testing.T) {
	depth := 60
	src := "void f() {\n" + strings.Repeat("if (1) {\n", depth) +
		"int x = 0;\n" + strings.Repeat("}\n", depth) + "}\n"
	tu, errs := parseLoose("a.c", src)
	if len(errs) != 0 {
		t.Fatalf("nested blocks: %v", errs)
	}
	if len(tu.Funcs()) != 1 {
		t.Fatal("function lost")
	}
}

func TestParseUnbalancedBraceRecovers(t *testing.T) {
	tu, errs := parseLoose("a.c", `
int broken(int a) {
    if (a > 0) {
        return a;
}
int next_fn(int b) { return b; }
`)
	if len(errs) == 0 {
		t.Log("parser tolerated unbalanced brace silently (acceptable)")
	}
	// At least one function must survive.
	if len(tu.Funcs()) == 0 {
		t.Error("no functions recovered")
	}
}

func TestParseKeywordSoup(t *testing.T) {
	// Degenerate input must not hang or panic.
	tu, _ := parseLoose("a.c", "if while for return int ; ; ; }")
	_ = tu
}

func TestParseMissingSemicolons(t *testing.T) {
	tu, errs := parseLoose("a.c", `
int f() {
    int x = 1
    int y = 2;
    return x + y;
}
int g() { return 3; }
`)
	if len(errs) == 0 {
		t.Error("expected missing-semicolon diagnostics")
	}
	// g must still parse.
	found := false
	for _, fn := range tu.Funcs() {
		if fn.Name == "g" {
			found = true
		}
	}
	if !found {
		t.Error("g() lost after recovery")
	}
}

func TestParseConditionalOperatorChain(t *testing.T) {
	tu, errs := parseLoose("a.c", "int f(int a) { return a > 2 ? 2 : a > 1 ? 1 : 0; }")
	if len(errs) != 0 {
		t.Fatalf("ternary chain: %v", errs)
	}
	ret := tu.Funcs()[0].Body.Stmts[0].(*ccast.Return)
	outer, ok := ret.X.(*ccast.Cond)
	if !ok {
		t.Fatalf("expr = %T", ret.X)
	}
	if _, ok := outer.F.(*ccast.Cond); !ok {
		t.Errorf("right-nested ternary lost: %T", outer.F)
	}
}

func TestParseCommaOperatorInFor(t *testing.T) {
	tu, errs := parseLoose("a.c", `
void f(int n) {
    int i;
    int j;
    for (i = 0, j = n; i < j; i++, j--) { }
}`)
	if len(errs) != 0 {
		t.Fatalf("comma-for: %v", errs)
	}
	var commas int
	ccast.WalkExprs(tu.Funcs()[0], func(e ccast.Expr) bool {
		if _, ok := e.(*ccast.Comma); ok {
			commas++
		}
		return true
	})
	if commas != 2 {
		t.Errorf("comma exprs = %d, want 2", commas)
	}
}

func TestParseNestedStructAccessChains(t *testing.T) {
	tu, errs := parseLoose("a.cc", `
void f() {
    obj.inner.deep.field = obj.other->ptr->value;
}`)
	if len(errs) != 0 {
		t.Fatalf("chains: %v", errs)
	}
	var members int
	ccast.WalkExprs(tu.Funcs()[0], func(e ccast.Expr) bool {
		if _, ok := e.(*ccast.Member); ok {
			members++
		}
		return true
	})
	if members != 6 {
		t.Errorf("member accesses = %d, want 6", members)
	}
}

func TestParseHexOctalLiterals(t *testing.T) {
	tu, errs := parseLoose("a.c", "int a = 0xFF; int b = 010; int c = 0;")
	if len(errs) != 0 {
		t.Fatalf("%v", errs)
	}
	vals := []int64{255, 8, 0}
	for i, vd := range tu.GlobalVars() {
		lit := vd.Names[0].Init.(*ccast.IntLit)
		if lit.Value != vals[i] {
			t.Errorf("literal %d = %d, want %d", i, lit.Value, vals[i])
		}
	}
}

func TestParseNegativeArrayAndWeirdDims(t *testing.T) {
	// Expressions in array dims must parse (constant folding not needed).
	_, errs := parseLoose("a.c", "int buf[4 * 16 + 2];")
	if len(errs) != 0 {
		t.Fatalf("%v", errs)
	}
}

func TestParseAdjacentStringLiterals(t *testing.T) {
	tu, errs := parseLoose("a.c", `const char* s = "a" "b" "c";`)
	if len(errs) != 0 {
		t.Fatalf("%v", errs)
	}
	lit := tu.GlobalVars()[0].Names[0].Init.(*ccast.StringLit)
	if !strings.Contains(lit.Text, `"a"`) || !strings.Contains(lit.Text, `"c"`) {
		t.Errorf("concatenated literal = %q", lit.Text)
	}
}

func TestParseDoubleNestedTemplates(t *testing.T) {
	tu, errs := parseLoose("a.cc", `
void f() {
    std::vector<std::vector<float>> grid;
    grid.clear();
}`)
	if len(errs) != 0 {
		t.Fatalf("nested templates: %v", errs)
	}
	if len(tu.Funcs()[0].Body.Stmts) != 2 {
		t.Errorf("stmts = %d", len(tu.Funcs()[0].Body.Stmts))
	}
}

func TestParseStaticFunctions(t *testing.T) {
	tu, errs := parseLoose("a.c", "static inline int helper(int x) { return x; }")
	if len(errs) != 0 {
		t.Fatalf("%v", errs)
	}
	fn := tu.Funcs()[0]
	if !fn.Quals.Has(ccast.QualStatic) || !fn.Quals.Has(ccast.QualInline) {
		t.Error("static/inline qualifiers lost")
	}
}

func TestParseVariadicFunction(t *testing.T) {
	tu, errs := parseLoose("a.c", "int log_msg(const char* fmt, ...) { return 0; }")
	if len(errs) != 0 {
		t.Fatalf("%v", errs)
	}
	if !tu.Funcs()[0].Variadic {
		t.Error("variadic flag lost")
	}
}

func TestParseConstructorInitializerList(t *testing.T) {
	tu, errs := parseLoose("a.cc", `
class Tracker {
 public:
  Tracker() : count_(0), scale_(1.0f) {
    count_++;
  }
 private:
  int count_;
  float scale_;
};`)
	if len(errs) != 0 {
		t.Fatalf("%v", errs)
	}
	if len(tu.Funcs()) != 1 {
		t.Errorf("ctor not parsed as definition")
	}
}

func TestParsePureVirtualAndDefault(t *testing.T) {
	_, errs := parseLoose("a.h", `
class Base {
 public:
  virtual int Run() = 0;
  Base() = default;
  virtual ~Base();
};`)
	if len(errs) != 0 {
		t.Fatalf("%v", errs)
	}
}

// Failure injection: random mutations of a valid program must never hang
// or panic the parser, and must always return a unit.
func TestParserRobustnessProperty(t *testing.T) {
	base := `
int g_state = 0;
float compute(const float* xs, int n, float scale) {
    float acc = 0.0f;
    if (xs == 0) { return -1.0f; }
    for (int i = 0; i < n; i++) {
        acc += xs[i] * scale;
    }
    switch (n) {
    case 0: acc = 0.0f; break;
    default: acc *= 2.0f;
    }
    return acc;
}`
	f := func(pos uint16, repl byte) bool {
		src := []byte(base)
		p := int(pos) % len(src)
		src[p] = repl
		tu, _ := parseLoose("m.c", string(src))
		return tu != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Failure injection: truncating a valid program at any byte must not hang
// or panic.
func TestParserTruncationProperty(t *testing.T) {
	base := `
class Detector {
 public:
  bool Detect(const float* input, int size) {
    if (input == nullptr) { return false; }
    float sum = 0.0f;
    for (int i = 0; i < size; i++) { sum += input[i]; }
    return sum > 0.5f;
  }
};
__global__ void kern(float* x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { x[i] = 0.0f; }
}`
	f := func(cut uint16) bool {
		n := int(cut) % (len(base) + 1)
		tu, _ := parseLoose("m.cu", base[:n])
		return tu != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
