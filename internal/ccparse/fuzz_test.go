package ccparse_test

import (
	"reflect"
	"testing"

	"repro/internal/apollocorpus"
	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/srcfile"
)

// FuzzParse feeds arbitrary source through the error-tolerant parser as
// C, C++, and CUDA, asserting the contract the pipeline relies on: a
// non-nil translation unit whatever the input (bad regions become
// BadDecls), no panics, and an AST that the shared Walk can traverse.
func FuzzParse(f *testing.F) {
	f.Add("int main() { return 0; }\n")
	f.Add("float f(const float* p, int n) { if (p != 0) { return p[0]; } return 0.0f; }\n")
	f.Add("union U { int a; float b; }; struct S { int x; };\n")
	f.Add("int g(int x) { switch (x) { case 0: return 1; default: break; } goto l;\nl:\n  return 0; }\n")
	f.Add("__global__ void k(float *o) { o[threadIdx.x] = 0.0f; }\nvoid h(float *o) { k<<<1, 2>>>(o); }\n")
	f.Add("namespace a { namespace b { int c; } }\n")
	f.Add("int bad( { ; } )))) struct\n")
	f.Add("for while if else ( ( { [ <<< \"str\n")
	f.Add("typedef unsigned long long u64; u64 v = 077;\n")
	f.Add(apollocorpus.ScaleBiasSample().Src)
	for _, fl := range apollocorpus.YoloCorpus().Files() {
		f.Add(fl.Src)
	}
	gen := apollocorpus.GenerateDefault().Files()
	for i := 0; i < len(gen) && i < 3; i++ {
		f.Add(gen[i].Src)
	}

	paths := []string{"fuzz.c", "fuzz.cc", "fuzz.cu"}
	f.Fuzz(func(t *testing.T, src string) {
		for _, p := range paths {
			file := &srcfile.File{Path: p, Src: src}
			file.Lang = srcfile.LanguageForPath(p)
			tu, errs := ccparse.Parse(file, ccparse.Options{KeepComments: true})
			if tu == nil {
				t.Fatalf("%s: nil translation unit (the pipeline requires error tolerance)", p)
			}
			// The arena fast path must agree with the reference heap path
			// on arbitrary (including malformed) input, not just on the
			// corpora the parity tests cover: same rendered AST, same
			// error list.
			refTU, refErrs := ccparse.Parse(file, ccparse.Options{KeepComments: true, Reference: true})
			if ref, fast := dumpTU(refTU), dumpTU(tu); ref != fast {
				t.Fatalf("%s: arena AST diverges from reference\n%s", p, firstDiff(ref, fast))
			}
			if r, g := errStrings(refErrs), errStrings(errs); !reflect.DeepEqual(r, g) {
				t.Fatalf("%s: arena errors %v, reference %v", p, g, r)
			}
			// The AST must be walkable and positioned: every span the
			// checkers anchor findings to needs a valid line.
			ccast.Walk(tu, func(n ccast.Node) bool {
				if sp := n.Span(); sp.Start.Line < 0 || sp.Start.Col < 0 {
					t.Fatalf("%s: node %T at negative position %v", p, n, sp.Start)
				}
				return true
			})
			for _, fn := range tu.Funcs() {
				ccast.CountReturns(fn)
			}
		}
	})
}
