package ccparse

import (
	"testing"

	"repro/internal/apollocorpus"
)

// TestParseAllParallelDeterministic checks the worker-pool frontend:
// any worker count yields the same units (compared structurally via the
// per-unit declaration and function counts) and the same error list in
// the same order as a sequential parse.
func TestParseAllParallelDeterministic(t *testing.T) {
	fs := apollocorpus.GenerateDefault()
	seqUnits, seqErrs := ParseAll(fs, Options{Workers: 1})
	for _, workers := range []int{0, 2, 8} {
		parUnits, parErrs := ParseAll(fs, Options{Workers: workers})
		if len(parUnits) != len(seqUnits) {
			t.Fatalf("workers=%d: %d units, sequential %d", workers, len(parUnits), len(seqUnits))
		}
		if len(parErrs) != len(seqErrs) {
			t.Fatalf("workers=%d: %d errors, sequential %d", workers, len(parErrs), len(seqErrs))
		}
		for i := range seqErrs {
			if parErrs[i].Error() != seqErrs[i].Error() {
				t.Fatalf("workers=%d: error %d is %q, sequential %q",
					workers, i, parErrs[i].Error(), seqErrs[i].Error())
			}
		}
		for p, seqTU := range seqUnits {
			parTU := parUnits[p]
			if parTU == nil {
				t.Fatalf("workers=%d: unit %s missing", workers, p)
			}
			if len(parTU.Decls) != len(seqTU.Decls) {
				t.Fatalf("workers=%d: %s has %d decls, sequential %d",
					workers, p, len(parTU.Decls), len(seqTU.Decls))
			}
			seqFns, parFns := seqTU.Funcs(), parTU.Funcs()
			if len(parFns) != len(seqFns) {
				t.Fatalf("workers=%d: %s has %d funcs, sequential %d",
					workers, p, len(parFns), len(seqFns))
			}
			for i := range seqFns {
				if parFns[i].Name != seqFns[i].Name {
					t.Fatalf("workers=%d: %s func %d is %q, sequential %q",
						workers, p, i, parFns[i].Name, seqFns[i].Name)
				}
			}
		}
	}
}
