package ccparse_test

// Differential parity tests for the cold-path optimizations: the []byte
// lexer fast path with corpus-level interning and the arena-allocated
// parser must be observationally identical to the pre-optimization
// reference path (Options.Reference). Every corpus the repo can generate
// is pushed through both and the outputs — token streams, fully rendered
// ASTs, and rule findings — are compared byte for byte. A divergence
// here means the fast path changed meaning, not just speed.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/apollocorpus"
	"repro/internal/ccast"
	"repro/internal/cclex"
	"repro/internal/ccparse"
	"repro/internal/corpusgen"
	"repro/internal/rules"
	"repro/internal/srcfile"
)

// parityCorpora returns every generated corpus in the repo: the
// calibrated Apollo-like default, the two CUDA-heavy corpora, the paper's
// Figure 4 excerpt, and a mixed corpusgen scenario corpus (different
// generator, different idioms).
func parityCorpora() []struct {
	name string
	fs   *srcfile.FileSet
} {
	sb := srcfile.NewFileSet()
	sb.Add(apollocorpus.ScaleBiasSample())
	return []struct {
		name string
		fs   *srcfile.FileSet
	}{
		{"default", apollocorpus.GenerateDefault()},
		{"yolo", apollocorpus.YoloCorpus()},
		{"stencil", apollocorpus.StencilCorpus()},
		{"scale_bias", sb},
		{"corpusgen", corpusgen.New(corpusgen.Params{
			Modules: 3, FilesPerModule: 5, FuncsPerFile: 4,
			ViolationsPerFile: 2, CUDAFiles: 1,
		}, 7).FileSet()},
	}
}

// TestLexParity locks the lexer fast paths to the plain string lexer:
// the []byte entry point and corpus-level interning must both produce
// the identical token stream (kind, spelling, position, offset) and the
// identical error list on every corpus file.
func TestLexParity(t *testing.T) {
	lexAll := func(f *srcfile.File, useBytes bool, in *cclex.Interner) ([]cclex.Token, []string) {
		var lx *cclex.Lexer
		if useBytes {
			lx = cclex.NewBytes([]byte(f.Src))
		} else {
			lx = cclex.New(f.Src)
		}
		lx.CUDA = f.Lang == srcfile.LangCUDA
		lx.KeepComments = true
		lx.Intern = in
		toks := lx.All()
		var errs []string
		for _, e := range lx.Errors() {
			errs = append(errs, e.Error())
		}
		return toks, errs
	}
	for _, c := range parityCorpora() {
		in := cclex.NewInterner()
		for _, f := range c.fs.Files() {
			ref, refErrs := lexAll(f, false, nil)
			for _, alt := range []struct {
				name     string
				useBytes bool
				in       *cclex.Interner
			}{
				{"bytes", true, nil},
				{"interned", false, in},
				{"bytes+interned", true, in},
			} {
				got, gotErrs := lexAll(f, alt.useBytes, alt.in)
				if len(got) != len(ref) {
					t.Fatalf("%s/%s [%s]: %d tokens, reference %d", c.name, f.Path, alt.name, len(got), len(ref))
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("%s/%s [%s]: token %d = %+v, reference %+v", c.name, f.Path, alt.name, i, got[i], ref[i])
					}
				}
				if !reflect.DeepEqual(gotErrs, refErrs) {
					t.Fatalf("%s/%s [%s]: errors %v, reference %v", c.name, f.Path, alt.name, gotErrs, refErrs)
				}
			}
		}
	}
}

// TestParseParity renders every AST the arena fast path produces and
// byte-compares it against the reference heap path, file by file, along
// with the parse error lists. The render covers every node kind, every
// salient field, and every span, so any structural or positional drift
// fails loudly with the first diverging file.
func TestParseParity(t *testing.T) {
	for _, c := range parityCorpora() {
		in := cclex.NewInterner()
		arena := &ccast.Arena{}
		for _, f := range c.fs.Files() {
			refTU, refErrs := ccparse.Parse(f, ccparse.Options{Reference: true})
			fastTU, fastErrs := ccparse.Parse(f, ccparse.Options{Intern: in, Arena: arena})
			ref, fast := dumpTU(refTU), dumpTU(fastTU)
			if ref != fast {
				t.Fatalf("%s/%s: AST diverges\n%s", c.name, f.Path, firstDiff(ref, fast))
			}
			if r, g := errStrings(refErrs), errStrings(fastErrs); !reflect.DeepEqual(r, g) {
				t.Fatalf("%s/%s: errors %v, reference %v", c.name, f.Path, g, r)
			}
		}
	}
}

// TestFindingsParity runs the full default rule set over the whole
// corpus parsed each way and demands byte-identical findings JSON — the
// end-to-end guarantee the assessment pipeline actually depends on.
func TestFindingsParity(t *testing.T) {
	for _, c := range parityCorpora() {
		refUnits, _ := ccparse.ParseAll(c.fs, ccparse.Options{Reference: true})
		fastUnits, _ := ccparse.ParseAll(c.fs, ccparse.Options{})
		ref, err := json.Marshal(rules.Run(rules.NewContext(refUnits), rules.DefaultRules()))
		if err != nil {
			t.Fatal(err)
		}
		fast, err := json.Marshal(rules.Run(rules.NewContext(fastUnits), rules.DefaultRules()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, fast) {
			t.Fatalf("%s: findings diverge between reference and fast parse", c.name)
		}
	}
}

func errStrings(errs []*ccparse.Error) []string {
	out := make([]string, len(errs))
	for i, e := range errs {
		out[i] = e.Error()
	}
	return out
}

// firstDiff locates the first diverging line of two renders.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  reference: %s\n  fast:      %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: reference %d lines, fast %d lines", len(al), len(bl))
}

// dumpTU renders a translation unit deterministically: every node kind,
// every field the pipeline reads, every span. Two ASTs render equal iff
// they are structurally identical.
func dumpTU(tu *ccast.TranslationUnit) string {
	var b strings.Builder
	fmt.Fprintf(&b, "unit %s decls=%d\n", tu.File.Path, len(tu.Decls))
	for _, c := range tu.Comments {
		fmt.Fprintf(&b, "comment %d:%d %q\n", c.Line, c.Col, c.Text)
	}
	for _, d := range tu.Decls {
		dumpNode(&b, d, 1)
	}
	return b.String()
}

func indent(b *strings.Builder, d int) {
	for i := 0; i < d; i++ {
		b.WriteString("  ")
	}
}

func typeStr(t *ccast.Type) string {
	if t == nil {
		return "<nil>"
	}
	return fmt.Sprintf("{%s q=%d ptr=%d ref=%v dims=%d}", t.Name, t.Quals, t.PtrDepth, t.IsRef, len(t.ArrayDims))
}

// dumpTypeDims renders a type's array-dimension expressions as children
// (typeStr only records the count).
func dumpTypeDims(b *strings.Builder, t *ccast.Type, d int) {
	if t == nil {
		return
	}
	for _, dim := range t.ArrayDims {
		dumpNode(b, dim, d)
	}
}

func dumpNode(b *strings.Builder, n ccast.Node, d int) {
	indent(b, d)
	if n == nil || reflect.ValueOf(n).IsNil() {
		b.WriteString("nil\n")
		return
	}
	sp := n.Span()
	fmt.Fprintf(b, "[%d:%d-%d:%d] ", sp.Start.Line, sp.Start.Col, sp.End.Line, sp.End.Col)
	switch x := n.(type) {
	// Expressions.
	case *ccast.Ident:
		fmt.Fprintf(b, "Ident %q\n", x.Name)
	case *ccast.IntLit:
		fmt.Fprintf(b, "IntLit %q %d\n", x.Text, x.Value)
	case *ccast.FloatLit:
		fmt.Fprintf(b, "FloatLit %q %v\n", x.Text, x.Value)
	case *ccast.StringLit:
		fmt.Fprintf(b, "StringLit %q\n", x.Text)
	case *ccast.CharLit:
		fmt.Fprintf(b, "CharLit %q %d\n", x.Text, x.Value)
	case *ccast.BoolLit:
		fmt.Fprintf(b, "BoolLit %v null=%v\n", x.Value, x.IsNull)
	case *ccast.Unary:
		fmt.Fprintf(b, "Unary %q\n", x.Op)
		dumpNode(b, x.X, d+1)
	case *ccast.Postfix:
		fmt.Fprintf(b, "Postfix %q\n", x.Op)
		dumpNode(b, x.X, d+1)
	case *ccast.Binary:
		fmt.Fprintf(b, "Binary %q\n", x.Op)
		dumpNode(b, x.L, d+1)
		dumpNode(b, x.R, d+1)
	case *ccast.Assign:
		fmt.Fprintf(b, "Assign %q\n", x.Op)
		dumpNode(b, x.L, d+1)
		dumpNode(b, x.R, d+1)
	case *ccast.Cond:
		b.WriteString("Cond\n")
		dumpNode(b, x.C, d+1)
		dumpNode(b, x.T, d+1)
		dumpNode(b, x.F, d+1)
	case *ccast.Call:
		fmt.Fprintf(b, "Call args=%d\n", len(x.Args))
		dumpNode(b, x.Fun, d+1)
		for _, a := range x.Args {
			dumpNode(b, a, d+1)
		}
	case *ccast.KernelLaunch:
		fmt.Fprintf(b, "KernelLaunch cfg=%d args=%d\n", len(x.Config), len(x.Args))
		dumpNode(b, x.Fun, d+1)
		for _, e := range x.Config {
			dumpNode(b, e, d+1)
		}
		for _, a := range x.Args {
			dumpNode(b, a, d+1)
		}
	case *ccast.Index:
		b.WriteString("Index\n")
		dumpNode(b, x.X, d+1)
		dumpNode(b, x.I, d+1)
	case *ccast.Member:
		fmt.Fprintf(b, "Member %q arrow=%v\n", x.Name, x.Arrow)
		dumpNode(b, x.X, d+1)
	case *ccast.Cast:
		fmt.Fprintf(b, "Cast style=%d to=%s\n", x.Style, typeStr(x.To))
		dumpTypeDims(b, x.To, d+1)
		dumpNode(b, x.X, d+1)
	case *ccast.SizeofExpr:
		fmt.Fprintf(b, "Sizeof type=%s\n", typeStr(x.Type))
		dumpTypeDims(b, x.Type, d+1)
		if x.X != nil {
			dumpNode(b, x.X, d+1)
		}
	case *ccast.NewExpr:
		fmt.Fprintf(b, "New type=%s args=%d\n", typeStr(x.Type), len(x.Args))
		dumpTypeDims(b, x.Type, d+1)
		if x.Count != nil {
			dumpNode(b, x.Count, d+1)
		}
		for _, a := range x.Args {
			dumpNode(b, a, d+1)
		}
	case *ccast.DeleteExpr:
		fmt.Fprintf(b, "Delete array=%v\n", x.Array)
		dumpNode(b, x.X, d+1)
	case *ccast.Comma:
		b.WriteString("Comma\n")
		dumpNode(b, x.L, d+1)
		dumpNode(b, x.R, d+1)
	case *ccast.InitList:
		fmt.Fprintf(b, "InitList n=%d\n", len(x.Elems))
		for _, e := range x.Elems {
			dumpNode(b, e, d+1)
		}
	case *ccast.Paren:
		b.WriteString("Paren\n")
		dumpNode(b, x.X, d+1)

	// Statements.
	case *ccast.Block:
		fmt.Fprintf(b, "Block n=%d\n", len(x.Stmts))
		for _, s := range x.Stmts {
			dumpNode(b, s, d+1)
		}
	case *ccast.ExprStmt:
		b.WriteString("ExprStmt\n")
		dumpNode(b, x.X, d+1)
	case *ccast.DeclStmt:
		b.WriteString("DeclStmt\n")
		dumpNode(b, x.Decl, d+1)
	case *ccast.If:
		b.WriteString("If\n")
		dumpNode(b, x.Cond, d+1)
		dumpNode(b, x.Then, d+1)
		dumpNode(b, x.Else, d+1)
	case *ccast.While:
		b.WriteString("While\n")
		dumpNode(b, x.Cond, d+1)
		dumpNode(b, x.Body, d+1)
	case *ccast.DoWhile:
		b.WriteString("DoWhile\n")
		dumpNode(b, x.Body, d+1)
		dumpNode(b, x.Cond, d+1)
	case *ccast.For:
		b.WriteString("For\n")
		dumpNode(b, x.Init, d+1)
		dumpNode(b, x.Cond, d+1)
		dumpNode(b, x.Post, d+1)
		dumpNode(b, x.Body, d+1)
	case *ccast.Switch:
		fmt.Fprintf(b, "Switch cases=%d\n", len(x.Cases))
		dumpNode(b, x.Tag, d+1)
		for _, cc := range x.Cases {
			dumpNode(b, cc, d+1)
		}
	case *ccast.CaseClause:
		fmt.Fprintf(b, "Case values=%d body=%d\n", len(x.Values), len(x.Body))
		for _, v := range x.Values {
			dumpNode(b, v, d+1)
		}
		for _, s := range x.Body {
			dumpNode(b, s, d+1)
		}
	case *ccast.Break:
		b.WriteString("Break\n")
	case *ccast.Continue:
		b.WriteString("Continue\n")
	case *ccast.Return:
		b.WriteString("Return\n")
		if x.X != nil {
			dumpNode(b, x.X, d+1)
		}
	case *ccast.Goto:
		fmt.Fprintf(b, "Goto %q\n", x.Label)
	case *ccast.Label:
		fmt.Fprintf(b, "Label %q\n", x.Name)
		dumpNode(b, x.Stmt, d+1)
	case *ccast.Empty:
		b.WriteString("Empty\n")

	// Declarations.
	case *ccast.Declarator:
		fmt.Fprintf(b, "Declarator %q type=%s\n", x.Name, typeStr(x.Type))
		dumpTypeDims(b, x.Type, d+1)
		if x.Init != nil {
			dumpNode(b, x.Init, d+1)
		}
	case *ccast.VarDecl:
		fmt.Fprintf(b, "VarDecl global=%v n=%d\n", x.Global, len(x.Names))
		for _, dl := range x.Names {
			dumpNode(b, dl, d+1)
		}
	case *ccast.Param:
		fmt.Fprintf(b, "Param %q type=%s\n", x.Name, typeStr(x.Type))
		dumpTypeDims(b, x.Type, d+1)
	case *ccast.FuncDecl:
		fmt.Fprintf(b, "FuncDecl %q ret=%s variadic=%v quals=%d ns=%q class=%q\n",
			x.Name, typeStr(x.Ret), x.Variadic, x.Quals, x.Namespace, x.Class)
		for _, p := range x.Params {
			dumpNode(b, p, d+1)
		}
		if x.Body != nil {
			dumpNode(b, x.Body, d+1)
		}
	case *ccast.Field:
		fmt.Fprintf(b, "Field %q type=%s\n", x.Name, typeStr(x.Type))
		dumpTypeDims(b, x.Type, d+1)
	case *ccast.RecordDecl:
		fmt.Fprintf(b, "Record kind=%d %q fields=%d methods=%d\n", x.Kind, x.Name, len(x.Fields), len(x.Methods))
		for _, fl := range x.Fields {
			dumpNode(b, fl, d+1)
		}
		for _, m := range x.Methods {
			dumpNode(b, m, d+1)
		}
	case *ccast.EnumDecl:
		fmt.Fprintf(b, "Enum %q members=%v\n", x.Name, x.Members)
	case *ccast.TypedefDecl:
		fmt.Fprintf(b, "Typedef %q type=%s\n", x.Name, typeStr(x.Type))
		dumpTypeDims(b, x.Type, d+1)
	case *ccast.NamespaceDecl:
		fmt.Fprintf(b, "Namespace %q n=%d\n", x.Name, len(x.Decls))
		for _, dd := range x.Decls {
			dumpNode(b, dd, d+1)
		}
	case *ccast.UsingDecl:
		fmt.Fprintf(b, "Using %q ns=%v\n", x.Target, x.IsNamespace)
	case *ccast.PPDirective:
		fmt.Fprintf(b, "PP %q\n", x.Text)
	case *ccast.BadDecl:
		fmt.Fprintf(b, "Bad %q\n", x.Reason)
	default:
		panic(fmt.Sprintf("dumpNode: unhandled node type %T", n))
	}
}
