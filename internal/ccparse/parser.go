// Package ccparse parses the C/C++/CUDA dialect used by the assessment
// subjects into ccast trees.
//
// The parser is recursive descent with one-token lookahead plus a small
// amount of backtracking for the declaration-vs-expression and
// cast-vs-parenthesis ambiguities. It is error tolerant: a declaration
// that cannot be parsed becomes a BadDecl and parsing resumes at the next
// synchronization point, so one exotic construct does not lose a file.
package ccparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ccast"
	"repro/internal/cclex"
	"repro/internal/par"
	"repro/internal/srcfile"
)

// Error is a parse diagnostic.
type Error struct {
	File      string
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

// Options configures parsing.
type Options struct {
	// KeepComments records comments on the translation unit for style
	// analysis.
	KeepComments bool
	// Workers bounds the concurrency of ParseAll: 0 means GOMAXPROCS,
	// 1 forces sequential parsing. Files are independent, so the result
	// is identical at any worker count.
	Workers int
}

// Parse parses one file. The returned unit is non-nil even when errors are
// reported; unparseable regions appear as BadDecl nodes.
func Parse(f *srcfile.File, opts Options) (*ccast.TranslationUnit, []*Error) {
	lx := cclex.New(f.Src)
	lx.CUDA = f.Lang == srcfile.LangCUDA
	lx.KeepComments = true // always collect; surfaced only when requested

	p := &parser{file: f, lexer: lx, keepComments: opts.KeepComments}
	p.next() // prime tok
	tu := &ccast.TranslationUnit{File: f}
	tu.SetSpan(srcfile.Span{Start: srcfile.Pos{Line: 1, Col: 1}})

	for p.tok.Kind != cclex.KindEOF {
		d := p.parseTopDecl()
		if d != nil {
			tu.Decls = append(tu.Decls, d)
		}
	}
	tu.Comments = p.comments
	for _, le := range lx.Errors() {
		p.errs = append(p.errs, &Error{File: f.Path, Line: le.Line, Col: le.Col, Msg: le.Msg})
	}
	return tu, p.errs
}

type parser struct {
	file         *srcfile.File
	lexer        *cclex.Lexer
	tok          cclex.Token
	peeked       []cclex.Token
	peekHead     int
	errs         []*Error
	comments     []ccast.CommentInfo
	keepComments bool

	// typedefNames accumulates names introduced by typedef/using/class so
	// the decl-vs-expr heuristic can recognize them.
	typedefNames map[string]bool

	namespace []string // current namespace path
	class     string   // current class name when parsing methods
	panicking bool     // recovering from an error; suppress cascades
}

// next advances to the following significant token, routing comments aside.
func (p *parser) next() {
	for {
		var t cclex.Token
		if p.peekHead < len(p.peeked) {
			t = p.peeked[p.peekHead]
			p.peekHead++
			if p.peekHead == len(p.peeked) {
				// Drained: reset to reuse the buffer's capacity instead of
				// re-slicing it away (this path is hot).
				p.peeked = p.peeked[:0]
				p.peekHead = 0
			}
		} else {
			t = p.lexer.Next()
		}
		if t.Kind == cclex.KindComment {
			p.comments = append(p.comments, ccast.CommentInfo{Line: t.Line, Col: t.Col, Text: t.Text})
			continue
		}
		p.tok = t
		return
	}
}

// peek returns the n-th upcoming significant token (0 = the one after tok).
func (p *parser) peek(n int) cclex.Token {
	for len(p.peeked)-p.peekHead <= n {
		t := p.lexer.Next()
		if t.Kind == cclex.KindComment {
			p.comments = append(p.comments, ccast.CommentInfo{Line: t.Line, Col: t.Col, Text: t.Text})
			continue
		}
		p.peeked = append(p.peeked, t)
		if t.Kind == cclex.KindEOF {
			break
		}
	}
	if p.peekHead+n < len(p.peeked) {
		return p.peeked[p.peekHead+n]
	}
	return p.peeked[len(p.peeked)-1]
}

func (p *parser) pos() srcfile.Pos {
	return srcfile.Pos{Line: p.tok.Line, Col: p.tok.Col, Offset: p.tok.Off}
}

func (p *parser) endPos(t cclex.Token) srcfile.Pos {
	return srcfile.Pos{Line: t.Line, Col: t.Col + len(t.Text), Offset: t.Off + len(t.Text)}
}

func (p *parser) errorf(format string, args ...interface{}) {
	if p.panicking {
		return
	}
	p.errs = append(p.errs, &Error{
		File: p.file.Path, Line: p.tok.Line, Col: p.tok.Col,
		Msg: fmt.Sprintf(format, args...),
	})
}

func (p *parser) expect(k cclex.Kind) cclex.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf("expected %s, found %s", k, t)
		return t
	}
	p.next()
	return t
}

func (p *parser) accept(k cclex.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.tok.Is(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) span(start srcfile.Pos) srcfile.Span {
	return srcfile.Span{Start: start, End: srcfile.Pos{Line: p.tok.Line, Col: p.tok.Col, Offset: p.tok.Off}}
}

func (p *parser) setSpan(n ccast.Spanned, start srcfile.Pos) {
	n.SetSpan(p.span(start))
}

// syncTopLevel skips tokens until a likely declaration boundary.
func (p *parser) syncTopLevel() {
	depth := 0
	for p.tok.Kind != cclex.KindEOF {
		switch p.tok.Kind {
		case cclex.KindLBrace:
			depth++
		case cclex.KindRBrace:
			if depth == 0 {
				p.next()
				return
			}
			depth--
		case cclex.KindSemi:
			if depth == 0 {
				p.next()
				return
			}
		}
		p.next()
	}
}

// ---------------------------------------------------------------------------
// Top-level declarations

var builtinTypeNames = map[string]bool{
	"size_t": true, "ssize_t": true, "ptrdiff_t": true,
	"int8_t": true, "int16_t": true, "int32_t": true, "int64_t": true,
	"uint8_t": true, "uint16_t": true, "uint32_t": true, "uint64_t": true,
	"uintptr_t": true, "intptr_t": true, "wchar_t": true,
	"float2": true, "float3": true, "float4": true, "dim3": true,
	"cudaError_t": true, "cudaStream_t": true, "FILE": true,
}

func (p *parser) isTypeName(name string) bool {
	if builtinTypeNames[name] {
		return true
	}
	if p.typedefNames != nil && p.typedefNames[name] {
		return true
	}
	return false
}

func (p *parser) recordTypeName(name string) {
	if name == "" {
		return
	}
	if p.typedefNames == nil {
		p.typedefNames = make(map[string]bool)
	}
	p.typedefNames[name] = true
}

func (p *parser) parseTopDecl() ccast.Decl {
	p.panicking = false
	start := p.pos()
	switch {
	case p.tok.Kind == cclex.KindPPDirective:
		d := &ccast.PPDirective{Text: p.tok.Text}
		p.setSpan(d, start)
		p.next()
		return d
	case p.tok.Kind == cclex.KindSemi:
		p.next()
		return nil
	case p.tok.Is("namespace"):
		return p.parseNamespace()
	case p.tok.Is("using"):
		return p.parseUsing()
	case p.tok.Is("template"):
		p.skipTemplateHeader()
		return p.parseTopDecl()
	case p.tok.Is("typedef"):
		return p.parseTypedef()
	case p.tok.Is("extern") && p.peek(0).Kind == cclex.KindStringLit:
		return p.parseExternC()
	case p.tok.Is("struct") || p.tok.Is("union") || p.tok.Is("class"):
		// Definition if a '{' follows the tag name; otherwise a declaration
		// using an elaborated type.
		if p.peek(0).Kind == cclex.KindIdent &&
			(p.peek(1).Kind == cclex.KindLBrace || p.peek(1).Kind == cclex.KindColon) {
			return p.parseRecord()
		}
		return p.parseVarOrFunc()
	case p.tok.Is("enum"):
		if p.peek(0).Kind == cclex.KindIdent && p.peek(1).Kind == cclex.KindLBrace ||
			p.peek(0).Kind == cclex.KindLBrace {
			return p.parseEnum()
		}
		return p.parseVarOrFunc()
	default:
		return p.parseVarOrFunc()
	}
}

func (p *parser) parseNamespace() ccast.Decl {
	start := p.pos()
	p.next() // namespace
	name := ""
	if p.tok.Kind == cclex.KindIdent {
		name = p.tok.Text
		p.next()
	}
	ns := &ccast.NamespaceDecl{Name: name}
	p.expect(cclex.KindLBrace)
	p.namespace = append(p.namespace, name)
	for p.tok.Kind != cclex.KindRBrace && p.tok.Kind != cclex.KindEOF {
		d := p.parseTopDecl()
		if d != nil {
			ns.Decls = append(ns.Decls, d)
		}
	}
	p.namespace = p.namespace[:len(p.namespace)-1]
	p.expect(cclex.KindRBrace)
	p.accept(cclex.KindSemi)
	p.setSpan(ns, start)
	return ns
}

func (p *parser) parseUsing() ccast.Decl {
	start := p.pos()
	p.next() // using
	u := &ccast.UsingDecl{}
	if p.acceptKeyword("namespace") {
		u.IsNamespace = true
	}
	// "using Alias = Type;" is a typedef.
	if p.tok.Kind == cclex.KindIdent && p.peek(0).Kind == cclex.KindAssign {
		name := p.tok.Text
		p.next()
		p.next() // =
		ty := p.parseType()
		p.expect(cclex.KindSemi)
		p.recordTypeName(name)
		td := &ccast.TypedefDecl{Name: name, Type: ty}
		p.setSpan(td, start)
		return td
	}
	var sb strings.Builder
	for p.tok.Kind == cclex.KindIdent || p.tok.Kind == cclex.KindColonColon {
		sb.WriteString(p.tok.Text)
		p.next()
	}
	u.Target = sb.String()
	p.expect(cclex.KindSemi)
	p.setSpan(u, start)
	return u
}

func (p *parser) skipTemplateHeader() {
	p.next() // template
	if p.tok.Kind != cclex.KindLess {
		return
	}
	depth := 0
	for p.tok.Kind != cclex.KindEOF {
		switch p.tok.Kind {
		case cclex.KindLess:
			depth++
		case cclex.KindGreater:
			depth--
			if depth == 0 {
				p.next()
				return
			}
		case cclex.KindShr:
			depth -= 2
			if depth <= 0 {
				p.next()
				return
			}
		}
		p.next()
	}
}

func (p *parser) parseTypedef() ccast.Decl {
	start := p.pos()
	p.next() // typedef
	ty := p.parseType()
	// "typedef struct Tag { ... } Name;": consume the record body. The
	// member structure is not needed for the typedef itself (the record is
	// also visible via its tag when declared separately).
	if p.tok.Kind == cclex.KindLBrace {
		depth := 0
		for p.tok.Kind != cclex.KindEOF {
			switch p.tok.Kind {
			case cclex.KindLBrace:
				depth++
			case cclex.KindRBrace:
				depth--
			}
			p.next()
			if depth == 0 {
				break
			}
		}
	}
	name := ""
	if p.tok.Kind == cclex.KindIdent {
		name = p.tok.Text
		p.next()
	}
	// Array suffix on typedef name.
	for p.tok.Kind == cclex.KindLBracket {
		p.next()
		if p.tok.Kind != cclex.KindRBracket {
			e := p.parseExpr()
			ty.ArrayDims = append(ty.ArrayDims, e)
		} else {
			ty.ArrayDims = append(ty.ArrayDims, nil)
		}
		p.expect(cclex.KindRBracket)
	}
	p.expect(cclex.KindSemi)
	p.recordTypeName(name)
	td := &ccast.TypedefDecl{Name: name, Type: ty}
	p.setSpan(td, start)
	return td
}

func (p *parser) parseExternC() ccast.Decl {
	start := p.pos()
	p.next() // extern
	p.next() // "C"
	if p.tok.Kind == cclex.KindLBrace {
		p.next()
		ns := &ccast.NamespaceDecl{Name: `extern "C"`}
		for p.tok.Kind != cclex.KindRBrace && p.tok.Kind != cclex.KindEOF {
			d := p.parseTopDecl()
			if d != nil {
				ns.Decls = append(ns.Decls, d)
			}
		}
		p.expect(cclex.KindRBrace)
		p.setSpan(ns, start)
		return ns
	}
	return p.parseVarOrFunc()
}

func (p *parser) parseEnum() ccast.Decl {
	start := p.pos()
	p.next() // enum
	p.acceptKeyword("class")
	e := &ccast.EnumDecl{}
	if p.tok.Kind == cclex.KindIdent {
		e.Name = p.tok.Text
		p.recordTypeName(e.Name)
		p.next()
	}
	p.expect(cclex.KindLBrace)
	for p.tok.Kind != cclex.KindRBrace && p.tok.Kind != cclex.KindEOF {
		if p.tok.Kind == cclex.KindIdent {
			e.Members = append(e.Members, p.tok.Text)
			p.next()
			if p.accept(cclex.KindAssign) {
				p.parseAssignExpr()
			}
		}
		if !p.accept(cclex.KindComma) {
			break
		}
	}
	p.expect(cclex.KindRBrace)
	p.expect(cclex.KindSemi)
	p.setSpan(e, start)
	return e
}

func (p *parser) parseRecord() ccast.Decl {
	start := p.pos()
	kind := ccast.RecordStruct
	switch p.tok.Text {
	case "union":
		kind = ccast.RecordUnion
	case "class":
		kind = ccast.RecordClass
	}
	p.next()
	r := &ccast.RecordDecl{Kind: kind}
	if p.tok.Kind == cclex.KindIdent {
		r.Name = p.tok.Text
		p.recordTypeName(r.Name)
		p.next()
	}
	// Base-class list: ": public Base, ..." — skipped structurally.
	if p.accept(cclex.KindColon) {
		for p.tok.Kind != cclex.KindLBrace && p.tok.Kind != cclex.KindEOF {
			p.next()
		}
	}
	p.expect(cclex.KindLBrace)
	prevClass := p.class
	p.class = r.Name
	for p.tok.Kind != cclex.KindRBrace && p.tok.Kind != cclex.KindEOF {
		// Access specifiers.
		if (p.tok.Is("public") || p.tok.Is("private") || p.tok.Is("protected")) &&
			p.peek(0).Kind == cclex.KindColon {
			p.next()
			p.next()
			continue
		}
		if p.tok.Kind == cclex.KindPPDirective {
			p.next()
			continue
		}
		if p.tok.Is("friend") {
			// Skip friend declarations to the semicolon.
			for p.tok.Kind != cclex.KindSemi && p.tok.Kind != cclex.KindEOF {
				p.next()
			}
			p.next()
			continue
		}
		if p.tok.Is("typedef") {
			p.parseTypedef()
			continue
		}
		if p.tok.Is("template") {
			p.skipTemplateHeader()
			continue
		}
		d := p.parseMemberDecl(r.Name)
		switch d := d.(type) {
		case *ccast.FuncDecl:
			r.Methods = append(r.Methods, d)
		case *ccast.VarDecl:
			for _, dd := range d.Names {
				f := &ccast.Field{Name: dd.Name, Type: dd.Type}
				f.SetSpan(dd.Span())
				r.Fields = append(r.Fields, f)
			}
		case nil:
			// error already recorded; avoid livelock
			if p.tok.Kind != cclex.KindRBrace {
				p.next()
			}
		}
	}
	p.class = prevClass
	p.expect(cclex.KindRBrace)
	p.expect(cclex.KindSemi)
	p.setSpan(r, start)
	return r
}

// parseMemberDecl parses one class member (method or field group).
func (p *parser) parseMemberDecl(className string) ccast.Decl {
	start := p.pos()
	quals := p.parseQualifiers()

	// Constructor / destructor: Name( or ~Name(.
	isDtor := false
	if p.tok.Kind == cclex.KindTilde {
		isDtor = true
		p.next()
	}
	if p.tok.Kind == cclex.KindIdent && p.tok.Text == className &&
		(isDtor || p.peek(0).Kind == cclex.KindLParen) {
		name := p.tok.Text
		if isDtor {
			name = "~" + name
		}
		p.next()
		fd := &ccast.FuncDecl{
			Name: name, Quals: quals, Class: className,
			Namespace: strings.Join(p.namespace, "::"),
			Ret:       &ccast.Type{Name: "void"},
		}
		p.parseFuncRest(fd)
		p.setSpan(fd, start)
		return fd
	}
	if isDtor {
		p.errorf("expected destructor name")
		p.syncTopLevel()
		return nil
	}

	ty := p.parseType()
	ty.Quals |= quals
	if p.tok.Kind != cclex.KindIdent {
		p.errorf("expected member name, found %s", p.tok)
		p.syncTopLevel()
		return nil
	}
	name := p.tok.Text
	p.next()
	applyDeclaratorSuffix(ty, p)

	if p.tok.Kind == cclex.KindLParen {
		fd := &ccast.FuncDecl{
			Name: name, Ret: ty, Quals: quals, Class: className,
			Namespace: strings.Join(p.namespace, "::"),
		}
		p.parseFuncRest(fd)
		p.setSpan(fd, start)
		return fd
	}
	return p.parseVarDeclRest(start, ty, name, quals)
}

// parseQualifiers consumes leading storage-class/qualifier keywords.
func (p *parser) parseQualifiers() ccast.TypeQual {
	var q ccast.TypeQual
	for {
		switch {
		case p.acceptKeyword("static"):
			q |= ccast.QualStatic
		case p.acceptKeyword("extern"):
			q |= ccast.QualExtern
		case p.acceptKeyword("inline"), p.acceptKeyword("__forceinline__"):
			q |= ccast.QualInline
		case p.acceptKeyword("virtual"):
			q |= ccast.QualVirtual
		case p.acceptKeyword("explicit"):
			q |= ccast.QualExplicit
		case p.acceptKeyword("constexpr"):
			q |= ccast.QualConstexpr
		case p.acceptKeyword("mutable"):
			q |= ccast.QualMutable
		case p.acceptKeyword("register"):
			q |= ccast.QualRegister
		case p.acceptKeyword("__global__"):
			q |= ccast.QualCUDAGlobal
		case p.acceptKeyword("__device__"):
			q |= ccast.QualCUDADevice
		case p.acceptKeyword("__host__"):
			q |= ccast.QualCUDAHost
		case p.acceptKeyword("__shared__"):
			q |= ccast.QualCUDAShared
		case p.acceptKeyword("__constant__"):
			q |= ccast.QualCUDAConstant
		default:
			return q
		}
	}
}

// typeKeywords are specifier keywords that begin or continue a base type.
var typeKeywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "signed": true, "unsigned": true,
	"bool": true, "_Bool": true, "auto": true,
}

// parseType parses a type specifier plus pointer declarator prefix.
func (p *parser) parseType() *ccast.Type {
	start := p.pos()
	ty := &ccast.Type{}
	var parts []string

	for {
		switch {
		case p.acceptKeyword("const"):
			ty.Quals |= ccast.QualConst
		case p.acceptKeyword("volatile"):
			ty.Quals |= ccast.QualVolatile
		case p.acceptKeyword("restrict"), p.acceptKeyword("__restrict__"):
			// qualifier without structural effect
		case p.acceptKeyword("unsigned"):
			ty.Quals |= ccast.QualUnsigned
			parts = append(parts, "unsigned")
		case p.acceptKeyword("signed"):
			ty.Quals |= ccast.QualSigned
			parts = append(parts, "signed")
		case p.tok.Is("struct") || p.tok.Is("union") || p.tok.Is("class") ||
			p.tok.Is("enum"):
			kw := p.tok.Text
			p.next()
			if p.tok.Kind == cclex.KindIdent {
				parts = append(parts, kw+" "+p.tok.Text)
				p.next()
			} else {
				parts = append(parts, kw)
			}
			goto specDone
		case p.tok.Kind == cclex.KindKeyword && typeKeywords[p.tok.Text]:
			parts = append(parts, p.tok.Text)
			p.next()
			// Multi-word types: long long, long double, unsigned int...
			for p.tok.Kind == cclex.KindKeyword && typeKeywords[p.tok.Text] {
				parts = append(parts, p.tok.Text)
				p.next()
			}
			goto specDone
		case p.tok.Kind == cclex.KindIdent:
			parts = append(parts, p.parseQualifiedName())
			goto specDone
		case p.tok.Is("typename"):
			p.next()
		default:
			goto specDone
		}
	}
specDone:
	// Trailing const: "int const".
	for p.acceptKeyword("const") {
		ty.Quals |= ccast.QualConst
	}
	ty.Name = strings.Join(parts, " ")
	if ty.Name == "" {
		ty.Name = "int" // implicit int fallback for robustness
	}
	for {
		if p.accept(cclex.KindStar) {
			ty.PtrDepth++
			for p.acceptKeyword("const") || p.acceptKeyword("volatile") ||
				p.acceptKeyword("restrict") || p.acceptKeyword("__restrict__") {
			}
			continue
		}
		if p.accept(cclex.KindAmp) {
			ty.IsRef = true
			continue
		}
		break
	}
	p.setSpan(ty, start)
	return ty
}

// parseQualifiedName parses Ident(::Ident)* with balanced template args.
func (p *parser) parseQualifiedName() string {
	var sb strings.Builder
	for {
		if p.tok.Kind != cclex.KindIdent {
			break
		}
		sb.WriteString(p.tok.Text)
		p.next()
		// Template arguments: consume balanced <...> when it looks like a
		// template, i.e. next token opens '<' and some '>' closes before a
		// ';' at depth 0. We use a bounded scan.
		if p.tok.Kind == cclex.KindLess && p.looksLikeTemplateArgs() {
			sb.WriteString(p.consumeTemplateArgs())
		}
		if p.tok.Kind == cclex.KindColonColon && p.peek(0).Kind == cclex.KindIdent {
			sb.WriteString("::")
			p.next()
			continue
		}
		break
	}
	return sb.String()
}

// looksLikeTemplateArgs scans ahead from a '<' for a matching '>' before
// any token that rules out a template argument list.
func (p *parser) looksLikeTemplateArgs() bool {
	depth := 0
	for i := 0; i < 64; i++ {
		var t cclex.Token
		if i == 0 {
			t = p.tok
		} else {
			t = p.peek(i - 1)
		}
		switch t.Kind {
		case cclex.KindLess:
			depth++
		case cclex.KindGreater:
			depth--
			if depth == 0 {
				return true
			}
		case cclex.KindShr:
			depth -= 2
			if depth <= 0 {
				return true
			}
		case cclex.KindSemi, cclex.KindLBrace, cclex.KindRBrace, cclex.KindEOF,
			cclex.KindAndAnd, cclex.KindOrOr, cclex.KindPlus, cclex.KindMinus,
			cclex.KindStringLit:
			return false
		case cclex.KindKeyword:
			// Type keywords inside <> support the template reading.
			if !typeKeywords[t.Text] && t.Text != "const" && t.Text != "unsigned" &&
				t.Text != "signed" && t.Text != "struct" {
				return false
			}
		case cclex.KindIdent, cclex.KindIntLit, cclex.KindComma, cclex.KindStar,
			cclex.KindColonColon, cclex.KindAmp:
			// plausible inside template args
		default:
			return false
		}
	}
	return false
}

func (p *parser) consumeTemplateArgs() string {
	var sb strings.Builder
	depth := 0
	for p.tok.Kind != cclex.KindEOF {
		switch p.tok.Kind {
		case cclex.KindLess:
			depth++
		case cclex.KindGreater:
			depth--
		case cclex.KindShr:
			depth -= 2
		}
		sb.WriteString(p.tok.Text)
		done := depth <= 0
		p.next()
		if done {
			break
		}
	}
	return sb.String()
}

// applyDeclaratorSuffix consumes array dimensions after a declared name.
func applyDeclaratorSuffix(ty *ccast.Type, p *parser) {
	for p.tok.Kind == cclex.KindLBracket {
		p.next()
		if p.tok.Kind == cclex.KindRBracket {
			ty.ArrayDims = append(ty.ArrayDims, nil)
		} else {
			ty.ArrayDims = append(ty.ArrayDims, p.parseExpr())
		}
		p.expect(cclex.KindRBracket)
	}
}

// parseVarOrFunc parses a top-level variable or function declaration.
func (p *parser) parseVarOrFunc() ccast.Decl {
	start := p.pos()
	quals := p.parseQualifiers()

	if p.tok.Kind == cclex.KindEOF {
		return nil
	}
	ty := p.parseType()
	ty.Quals |= quals

	if p.tok.Kind != cclex.KindIdent {
		// Could be "struct X;" style forward declaration.
		if p.accept(cclex.KindSemi) {
			return nil
		}
		p.errorf("expected declarator, found %s", p.tok)
		p.panicking = true
		bd := &ccast.BadDecl{Reason: "unparsed declaration"}
		p.setSpan(bd, start)
		p.syncTopLevel()
		return bd
	}

	name := p.parseQualifiedName()
	applyDeclaratorSuffix(ty, p)

	if p.tok.Kind == cclex.KindLParen {
		fd := &ccast.FuncDecl{
			Name: name, Ret: ty, Quals: quals,
			Namespace: strings.Join(p.namespace, "::"),
		}
		if i := strings.LastIndex(name, "::"); i >= 0 {
			fd.Class = name[:i]
		}
		p.parseFuncRest(fd)
		p.setSpan(fd, start)
		return fd
	}
	return p.parseVarDeclRest(start, ty, name, quals)
}

// parseVarDeclRest parses declarators after the first name has been read.
func (p *parser) parseVarDeclRest(start srcfile.Pos, ty *ccast.Type, firstName string, quals ccast.TypeQual) ccast.Decl {
	vd := &ccast.VarDecl{Global: p.class == ""}
	first := &ccast.Declarator{Name: firstName, Type: ty}
	first.SetSpan(p.span(start))
	vd.Names = append(vd.Names, first)

	if p.accept(cclex.KindAssign) {
		first.Init = p.parseInitializer()
	} else if p.tok.Kind == cclex.KindLBrace {
		first.Init = p.parseInitializer()
	}
	for p.accept(cclex.KindComma) {
		dstart := p.pos()
		dty := &ccast.Type{Name: ty.Name, Quals: ty.Quals}
		for p.accept(cclex.KindStar) {
			dty.PtrDepth++
		}
		if p.tok.Kind != cclex.KindIdent {
			p.errorf("expected declarator name, found %s", p.tok)
			break
		}
		d := &ccast.Declarator{Name: p.tok.Text, Type: dty}
		p.next()
		applyDeclaratorSuffix(dty, p)
		if p.accept(cclex.KindAssign) {
			d.Init = p.parseInitializer()
		}
		d.SetSpan(p.span(dstart))
		vd.Names = append(vd.Names, d)
	}
	p.expect(cclex.KindSemi)
	p.setSpan(vd, start)
	return vd
}

func (p *parser) parseInitializer() ccast.Expr {
	if p.tok.Kind == cclex.KindLBrace {
		start := p.pos()
		p.next()
		il := &ccast.InitList{}
		for p.tok.Kind != cclex.KindRBrace && p.tok.Kind != cclex.KindEOF {
			il.Elems = append(il.Elems, p.parseInitializer())
			if !p.accept(cclex.KindComma) {
				break
			}
		}
		p.expect(cclex.KindRBrace)
		p.setSpan(il, start)
		return il
	}
	return p.parseAssignExpr()
}

// parseFuncRest parses parameters and optional body; p.tok is '('.
func (p *parser) parseFuncRest(fd *ccast.FuncDecl) {
	p.expect(cclex.KindLParen)
	if !p.accept(cclex.KindRParen) {
		for {
			if p.accept(cclex.KindEllipsis) {
				fd.Variadic = true
				break
			}
			if p.tok.Is("void") && p.peek(0).Kind == cclex.KindRParen {
				p.next()
				break
			}
			pstart := p.pos()
			pq := p.parseQualifiers()
			pty := p.parseType()
			pty.Quals |= pq
			prm := &ccast.Param{Type: pty}
			if p.tok.Kind == cclex.KindIdent {
				prm.Name = p.tok.Text
				p.next()
			}
			applyDeclaratorSuffix(pty, p)
			if p.accept(cclex.KindAssign) {
				p.parseAssignExpr() // default argument, discarded
			}
			prm.SetSpan(p.span(pstart))
			fd.Params = append(fd.Params, prm)
			if !p.accept(cclex.KindComma) {
				break
			}
		}
		p.expect(cclex.KindRParen)
	}
	// Trailing qualifiers: const, override, noexcept-ish idents.
	for p.acceptKeyword("const") || p.acceptKeyword("override") {
	}
	// Constructor initializer list: ": field(x), ..." before the body.
	if p.accept(cclex.KindColon) {
		for p.tok.Kind != cclex.KindLBrace && p.tok.Kind != cclex.KindEOF &&
			p.tok.Kind != cclex.KindSemi {
			p.next()
		}
	}
	switch {
	case p.accept(cclex.KindSemi):
		// prototype
	case p.tok.Kind == cclex.KindLBrace:
		fd.Body = p.parseBlock()
	case p.accept(cclex.KindAssign):
		// "= 0;" pure virtual, "= default;", "= delete;"
		for p.tok.Kind != cclex.KindSemi && p.tok.Kind != cclex.KindEOF {
			p.next()
		}
		p.accept(cclex.KindSemi)
	default:
		p.errorf("expected function body or ';', found %s", p.tok)
		p.panicking = true
		p.syncTopLevel()
	}
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseBlock() *ccast.Block {
	start := p.pos()
	b := &ccast.Block{}
	p.expect(cclex.KindLBrace)
	for p.tok.Kind != cclex.KindRBrace && p.tok.Kind != cclex.KindEOF {
		s := p.parseStmt()
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.expect(cclex.KindRBrace)
	p.setSpan(b, start)
	return b
}

func (p *parser) parseStmt() ccast.Stmt {
	start := p.pos()
	switch {
	case p.tok.Kind == cclex.KindPPDirective:
		p.next()
		return nil
	case p.tok.Kind == cclex.KindLBrace:
		return p.parseBlock()
	case p.tok.Kind == cclex.KindSemi:
		p.next()
		e := &ccast.Empty{}
		p.setSpan(e, start)
		return e
	case p.tok.Is("if"):
		return p.parseIf()
	case p.tok.Is("while"):
		return p.parseWhile()
	case p.tok.Is("do"):
		return p.parseDoWhile()
	case p.tok.Is("for"):
		return p.parseFor()
	case p.tok.Is("switch"):
		return p.parseSwitch()
	case p.tok.Is("break"):
		p.next()
		p.expect(cclex.KindSemi)
		s := &ccast.Break{}
		p.setSpan(s, start)
		return s
	case p.tok.Is("continue"):
		p.next()
		p.expect(cclex.KindSemi)
		s := &ccast.Continue{}
		p.setSpan(s, start)
		return s
	case p.tok.Is("return"):
		p.next()
		r := &ccast.Return{}
		if p.tok.Kind != cclex.KindSemi {
			r.X = p.parseExpr()
		}
		p.expect(cclex.KindSemi)
		p.setSpan(r, start)
		return r
	case p.tok.Is("goto"):
		p.next()
		g := &ccast.Goto{}
		if p.tok.Kind == cclex.KindIdent {
			g.Label = p.tok.Text
			p.next()
		}
		p.expect(cclex.KindSemi)
		p.setSpan(g, start)
		return g
	case p.tok.Is("try"):
		// try { ... } catch (...) { ... } — modeled as the try block
		// followed by catch bodies folded into a Block.
		p.next()
		blk := p.parseBlock()
		for p.tok.Is("catch") {
			p.next()
			p.expect(cclex.KindLParen)
			depth := 1
			for depth > 0 && p.tok.Kind != cclex.KindEOF {
				switch p.tok.Kind {
				case cclex.KindLParen:
					depth++
				case cclex.KindRParen:
					depth--
				}
				p.next()
			}
			cb := p.parseBlock()
			blk.Stmts = append(blk.Stmts, cb)
		}
		return blk
	case p.tok.Is("throw"):
		p.next()
		if p.tok.Kind != cclex.KindSemi {
			p.parseExpr()
		}
		p.expect(cclex.KindSemi)
		s := &ccast.ExprStmt{X: &ccast.Ident{Name: "throw"}}
		p.setSpan(s, start)
		return s
	// Label: Ident ':' not followed by ':' (to exclude ::).
	case p.tok.Kind == cclex.KindIdent && p.peek(0).Kind == cclex.KindColon &&
		p.peek(1).Kind != cclex.KindColon:
		l := &ccast.Label{Name: p.tok.Text}
		p.next()
		p.next()
		l.Stmt = p.parseStmt()
		p.setSpan(l, start)
		return l
	default:
		if p.startsDecl() {
			return p.parseDeclStmt()
		}
		return p.parseExprStmt()
	}
}

// startsDecl decides whether the upcoming tokens begin a declaration.
func (p *parser) startsDecl() bool {
	t := p.tok
	if t.Kind == cclex.KindKeyword {
		switch t.Text {
		case "const", "static", "struct", "union", "enum", "unsigned",
			"signed", "volatile", "register", "auto", "constexpr",
			"__shared__", "__device__", "__constant__", "typename":
			return true
		}
		return typeKeywords[t.Text]
	}
	if t.Kind != cclex.KindIdent {
		return false
	}
	// Ident path: a declaration when a known type name or the classic
	// "A b", "A* b", "A& b", "ns::A b" shapes follow.
	i := 0
	// Consume qualified name with optional template args in lookahead.
	if !p.isTypeName(t.Text) {
		// Unknown first identifier: require shape evidence.
	}
	// Walk lookahead over name ( :: name )* ( < ... > )?
	seenName := true
	cur := func() cclex.Token {
		if i == 0 {
			return p.tok
		}
		return p.peek(i - 1)
	}
	_ = cur
	// Simplified: scan tokens.
	j := 0
	tokAt := func(n int) cclex.Token {
		if n == 0 {
			return p.tok
		}
		return p.peek(n - 1)
	}
	// name
	j++
	for tokAt(j).Kind == cclex.KindColonColon && tokAt(j+1).Kind == cclex.KindIdent {
		j += 2
	}
	// template args
	if tokAt(j).Kind == cclex.KindLess {
		depth := 0
		k := j
		for k < j+64 {
			switch tokAt(k).Kind {
			case cclex.KindLess:
				depth++
			case cclex.KindGreater:
				depth--
			case cclex.KindShr:
				depth -= 2
			case cclex.KindSemi, cclex.KindEOF, cclex.KindLBrace:
				depth = -99
			}
			k++
			if depth <= 0 {
				break
			}
		}
		if depth == 0 {
			j = k
		} else if depth < -1 {
			return false
		}
	}
	// pointers/refs
	stars := 0
	for tokAt(j).Kind == cclex.KindStar || tokAt(j).Kind == cclex.KindAmp {
		stars++
		j++
		for tokAt(j).Is("const") {
			j++
		}
	}
	nt := tokAt(j)
	if nt.Kind == cclex.KindIdent {
		// "A b" is a decl if followed by = ; , [ ( or end-ish token.
		after := tokAt(j + 1)
		switch after.Kind {
		case cclex.KindAssign, cclex.KindSemi, cclex.KindComma,
			cclex.KindLBracket, cclex.KindLBrace:
			return true
		case cclex.KindLParen:
			// Could be a constructor-style init "A b(1);" — treat as decl
			// only when the first ident is a known type.
			return p.isTypeName(t.Text) && seenName
		}
		return false
	}
	return false
}

func (p *parser) parseDeclStmt() ccast.Stmt {
	start := p.pos()
	quals := p.parseQualifiers()
	ty := p.parseType()
	ty.Quals |= quals
	ds := &ccast.DeclStmt{}
	vd := &ccast.VarDecl{}
	for {
		dstart := p.pos()
		dty := ty
		if len(vd.Names) > 0 {
			dty = &ccast.Type{Name: ty.Name, Quals: ty.Quals}
			for p.accept(cclex.KindStar) {
				dty.PtrDepth++
			}
		}
		if p.tok.Kind != cclex.KindIdent {
			p.errorf("expected local declarator, found %s", p.tok)
			break
		}
		d := &ccast.Declarator{Name: p.tok.Text, Type: dty}
		p.next()
		applyDeclaratorSuffix(dty, p)
		switch {
		case p.accept(cclex.KindAssign):
			d.Init = p.parseInitializer()
		case p.tok.Kind == cclex.KindLBrace:
			d.Init = p.parseInitializer()
		case p.tok.Kind == cclex.KindLParen:
			// Constructor-style initialization "T x(a, b);".
			p.next()
			il := &ccast.InitList{}
			for p.tok.Kind != cclex.KindRParen && p.tok.Kind != cclex.KindEOF {
				il.Elems = append(il.Elems, p.parseAssignExpr())
				if !p.accept(cclex.KindComma) {
					break
				}
			}
			p.expect(cclex.KindRParen)
			d.Init = il
		}
		d.SetSpan(p.span(dstart))
		vd.Names = append(vd.Names, d)
		if !p.accept(cclex.KindComma) {
			break
		}
	}
	p.expect(cclex.KindSemi)
	p.setSpan(vd, start)
	ds.Decl = vd
	p.setSpan(ds, start)
	return ds
}

func (p *parser) parseExprStmt() ccast.Stmt {
	start := p.pos()
	x := p.parseExpr()
	p.expect(cclex.KindSemi)
	s := &ccast.ExprStmt{X: x}
	p.setSpan(s, start)
	return s
}

func (p *parser) parseIf() ccast.Stmt {
	start := p.pos()
	p.next() // if
	p.expect(cclex.KindLParen)
	cond := p.parseExpr()
	p.expect(cclex.KindRParen)
	s := &ccast.If{Cond: cond}
	s.Then = p.parseStmt()
	if p.acceptKeyword("else") {
		s.Else = p.parseStmt()
	}
	p.setSpan(s, start)
	return s
}

func (p *parser) parseWhile() ccast.Stmt {
	start := p.pos()
	p.next()
	p.expect(cclex.KindLParen)
	cond := p.parseExpr()
	p.expect(cclex.KindRParen)
	s := &ccast.While{Cond: cond}
	s.Body = p.parseStmt()
	p.setSpan(s, start)
	return s
}

func (p *parser) parseDoWhile() ccast.Stmt {
	start := p.pos()
	p.next()
	s := &ccast.DoWhile{}
	s.Body = p.parseStmt()
	if !p.acceptKeyword("while") {
		p.errorf("expected 'while' after do body")
	}
	p.expect(cclex.KindLParen)
	s.Cond = p.parseExpr()
	p.expect(cclex.KindRParen)
	p.expect(cclex.KindSemi)
	p.setSpan(s, start)
	return s
}

func (p *parser) parseFor() ccast.Stmt {
	start := p.pos()
	p.next()
	p.expect(cclex.KindLParen)
	s := &ccast.For{}
	if !p.accept(cclex.KindSemi) {
		if p.startsDecl() {
			s.Init = p.parseDeclStmt() // consumes ';'
		} else {
			istart := p.pos()
			x := p.parseExpr()
			es := &ccast.ExprStmt{X: x}
			p.setSpan(es, istart)
			s.Init = es
			p.expect(cclex.KindSemi)
		}
	}
	if p.tok.Kind != cclex.KindSemi {
		s.Cond = p.parseExpr()
	}
	p.expect(cclex.KindSemi)
	if p.tok.Kind != cclex.KindRParen {
		s.Post = p.parseExpr()
	}
	p.expect(cclex.KindRParen)
	s.Body = p.parseStmt()
	p.setSpan(s, start)
	return s
}

func (p *parser) parseSwitch() ccast.Stmt {
	start := p.pos()
	p.next()
	p.expect(cclex.KindLParen)
	s := &ccast.Switch{Tag: p.parseExpr()}
	p.expect(cclex.KindRParen)
	p.expect(cclex.KindLBrace)
	var cur *ccast.CaseClause
	for p.tok.Kind != cclex.KindRBrace && p.tok.Kind != cclex.KindEOF {
		switch {
		case p.tok.Is("case"):
			cstart := p.pos()
			p.next()
			v := p.parseExpr()
			p.expect(cclex.KindColon)
			if cur != nil && len(cur.Body) == 0 {
				// fallthrough label stacking: case 1: case 2: body
				cur.Values = append(cur.Values, v)
			} else {
				cur = &ccast.CaseClause{Values: []ccast.Expr{v}}
				cur.SetSpan(p.span(cstart))
				s.Cases = append(s.Cases, cur)
			}
		case p.tok.Is("default"):
			cstart := p.pos()
			p.next()
			p.expect(cclex.KindColon)
			cur = &ccast.CaseClause{}
			cur.SetSpan(p.span(cstart))
			s.Cases = append(s.Cases, cur)
		default:
			st := p.parseStmt()
			if st != nil {
				if cur == nil {
					cur = &ccast.CaseClause{}
					s.Cases = append(s.Cases, cur)
				}
				cur.Body = append(cur.Body, st)
			}
		}
	}
	p.expect(cclex.KindRBrace)
	p.setSpan(s, start)
	return s
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() ccast.Expr {
	start := p.pos()
	x := p.parseAssignExpr()
	for p.tok.Kind == cclex.KindComma {
		p.next()
		r := p.parseAssignExpr()
		c := &ccast.Comma{L: x, R: r}
		p.setSpan(c, start)
		x = c
	}
	return x
}

var assignOps = map[cclex.Kind]string{
	cclex.KindAssign: "=", cclex.KindPlusEq: "+=", cclex.KindMinusEq: "-=",
	cclex.KindStarEq: "*=", cclex.KindSlashEq: "/=", cclex.KindPercentEq: "%=",
	cclex.KindAmpEq: "&=", cclex.KindPipeEq: "|=", cclex.KindCaretEq: "^=",
	cclex.KindShlEq: "<<=", cclex.KindShrEq: ">>=",
}

func (p *parser) parseAssignExpr() ccast.Expr {
	start := p.pos()
	x := p.parseCondExpr()
	if op, ok := assignOps[p.tok.Kind]; ok {
		p.next()
		r := p.parseAssignExpr()
		a := &ccast.Assign{Op: op, L: x, R: r}
		p.setSpan(a, start)
		return a
	}
	return x
}

func (p *parser) parseCondExpr() ccast.Expr {
	start := p.pos()
	c := p.parseBinaryExpr(1)
	if p.tok.Kind != cclex.KindQuestion {
		return c
	}
	p.next()
	t := p.parseAssignExpr()
	p.expect(cclex.KindColon)
	f := p.parseAssignExpr()
	e := &ccast.Cond{C: c, T: t, F: f}
	p.setSpan(e, start)
	return e
}

// binPrec maps operators to precedence (higher binds tighter).
var binPrec = map[cclex.Kind]int{
	cclex.KindOrOr:   1,
	cclex.KindAndAnd: 2,
	cclex.KindPipe:   3,
	cclex.KindCaret:  4,
	cclex.KindAmp:    5,
	cclex.KindEq:     6, cclex.KindNotEq: 6,
	cclex.KindLess: 7, cclex.KindGreater: 7, cclex.KindLessEq: 7, cclex.KindGreaterEq: 7,
	cclex.KindShl: 8, cclex.KindShr: 8,
	cclex.KindPlus: 9, cclex.KindMinus: 9,
	cclex.KindStar: 10, cclex.KindSlash: 10, cclex.KindPercent: 10,
}

func (p *parser) parseBinaryExpr(minPrec int) ccast.Expr {
	start := p.pos()
	x := p.parseUnaryExpr()
	for {
		prec, ok := binPrec[p.tok.Kind]
		if !ok || prec < minPrec {
			return x
		}
		op := p.tok.Text
		p.next()
		r := p.parseBinaryExpr(prec + 1)
		b := &ccast.Binary{Op: op, L: x, R: r}
		p.setSpan(b, start)
		x = b
	}
}

func (p *parser) parseUnaryExpr() ccast.Expr {
	start := p.pos()
	switch p.tok.Kind {
	case cclex.KindPlus, cclex.KindMinus, cclex.KindNot, cclex.KindTilde,
		cclex.KindStar, cclex.KindAmp:
		op := p.tok.Text
		p.next()
		x := p.parseUnaryExpr()
		u := &ccast.Unary{Op: op, X: x}
		p.setSpan(u, start)
		return u
	case cclex.KindPlusPlus, cclex.KindMinusMinus:
		op := p.tok.Text
		p.next()
		x := p.parseUnaryExpr()
		u := &ccast.Unary{Op: op, X: x}
		p.setSpan(u, start)
		return u
	case cclex.KindKeyword:
		switch p.tok.Text {
		case "sizeof":
			p.next()
			se := &ccast.SizeofExpr{}
			if p.tok.Kind == cclex.KindLParen && p.startsTypeInParens() {
				p.next()
				se.Type = p.parseType()
				p.expect(cclex.KindRParen)
			} else {
				se.X = p.parseUnaryExpr()
			}
			p.setSpan(se, start)
			return se
		case "new":
			p.next()
			ne := &ccast.NewExpr{Type: p.parseType()}
			if p.accept(cclex.KindLBracket) {
				ne.Count = p.parseExpr()
				p.expect(cclex.KindRBracket)
			} else if p.accept(cclex.KindLParen) {
				for p.tok.Kind != cclex.KindRParen && p.tok.Kind != cclex.KindEOF {
					ne.Args = append(ne.Args, p.parseAssignExpr())
					if !p.accept(cclex.KindComma) {
						break
					}
				}
				p.expect(cclex.KindRParen)
			}
			p.setSpan(ne, start)
			return ne
		case "delete":
			p.next()
			de := &ccast.DeleteExpr{}
			if p.accept(cclex.KindLBracket) {
				p.expect(cclex.KindRBracket)
				de.Array = true
			}
			de.X = p.parseUnaryExpr()
			p.setSpan(de, start)
			return de
		case "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast":
			style := map[string]ccast.CastStyle{
				"static_cast":      ccast.CastStatic,
				"dynamic_cast":     ccast.CastDynamic,
				"const_cast":       ccast.CastConst,
				"reinterpret_cast": ccast.CastReinterpret,
			}[p.tok.Text]
			p.next()
			p.expect(cclex.KindLess)
			ty := p.parseType()
			// close '>': tolerate '>>' from nested templates
			if p.tok.Kind == cclex.KindShr {
				p.tok.Kind = cclex.KindGreater
				p.tok.Text = ">"
			}
			p.expect(cclex.KindGreater)
			p.expect(cclex.KindLParen)
			x := p.parseExpr()
			p.expect(cclex.KindRParen)
			c := &ccast.Cast{Style: style, To: ty, X: x}
			p.setSpan(c, start)
			return c
		}
	}
	return p.parsePostfixExpr()
}

// startsTypeInParens peeks after a '(' to decide cast vs parenthesized expr.
func (p *parser) startsTypeInParens() bool {
	t := p.peek(0)
	if t.Kind == cclex.KindKeyword {
		switch t.Text {
		case "const", "volatile", "unsigned", "signed", "struct", "union",
			"enum", "typename":
			return true
		}
		return typeKeywords[t.Text]
	}
	if t.Kind != cclex.KindIdent || !p.isTypeName(t.Text) {
		return false
	}
	// Known type name: cast if followed by ')' or '*'s then ')'.
	i := 1
	for p.peek(i).Kind == cclex.KindColonColon {
		i += 2
	}
	for p.peek(i).Kind == cclex.KindStar || p.peek(i).Is("const") {
		i++
	}
	return p.peek(i).Kind == cclex.KindRParen
}

func (p *parser) parsePostfixExpr() ccast.Expr {
	start := p.pos()
	x := p.parsePrimaryExpr()
	for {
		switch p.tok.Kind {
		case cclex.KindLParen:
			p.next()
			c := &ccast.Call{Fun: x}
			for p.tok.Kind != cclex.KindRParen && p.tok.Kind != cclex.KindEOF {
				c.Args = append(c.Args, p.parseAssignExpr())
				if !p.accept(cclex.KindComma) {
					break
				}
			}
			p.expect(cclex.KindRParen)
			p.setSpan(c, start)
			x = c
		case cclex.KindKernelLaunch:
			p.next()
			kl := &ccast.KernelLaunch{Fun: x}
			for p.tok.Kind != cclex.KindKernelLaunchEnd && p.tok.Kind != cclex.KindEOF {
				kl.Config = append(kl.Config, p.parseAssignExpr())
				if !p.accept(cclex.KindComma) {
					break
				}
			}
			p.expect(cclex.KindKernelLaunchEnd)
			p.expect(cclex.KindLParen)
			for p.tok.Kind != cclex.KindRParen && p.tok.Kind != cclex.KindEOF {
				kl.Args = append(kl.Args, p.parseAssignExpr())
				if !p.accept(cclex.KindComma) {
					break
				}
			}
			p.expect(cclex.KindRParen)
			p.setSpan(kl, start)
			x = kl
		case cclex.KindLBracket:
			p.next()
			i := p.parseExpr()
			p.expect(cclex.KindRBracket)
			ix := &ccast.Index{X: x, I: i}
			p.setSpan(ix, start)
			x = ix
		case cclex.KindDot, cclex.KindArrow:
			arrow := p.tok.Kind == cclex.KindArrow
			p.next()
			name := ""
			if p.tok.Kind == cclex.KindIdent {
				name = p.tok.Text
				p.next()
			} else {
				p.errorf("expected member name, found %s", p.tok)
			}
			m := &ccast.Member{X: x, Name: name, Arrow: arrow}
			p.setSpan(m, start)
			x = m
		case cclex.KindPlusPlus, cclex.KindMinusMinus:
			op := p.tok.Text
			p.next()
			pf := &ccast.Postfix{Op: op, X: x}
			p.setSpan(pf, start)
			x = pf
		default:
			return x
		}
	}
}

func (p *parser) parsePrimaryExpr() ccast.Expr {
	start := p.pos()
	switch p.tok.Kind {
	case cclex.KindIntLit:
		text := p.tok.Text
		p.next()
		v := parseIntText(text)
		e := &ccast.IntLit{Text: text, Value: v}
		p.setSpan(e, start)
		return e
	case cclex.KindFloatLit:
		text := p.tok.Text
		p.next()
		v, _ := strconv.ParseFloat(strings.TrimRight(text, "fFlL"), 64)
		e := &ccast.FloatLit{Text: text, Value: v}
		p.setSpan(e, start)
		return e
	case cclex.KindStringLit:
		text := p.tok.Text
		p.next()
		// Adjacent string literal concatenation.
		for p.tok.Kind == cclex.KindStringLit {
			text += p.tok.Text
			p.next()
		}
		e := &ccast.StringLit{Text: text}
		p.setSpan(e, start)
		return e
	case cclex.KindCharLit:
		text := p.tok.Text
		p.next()
		e := &ccast.CharLit{Text: text, Value: charValue(text)}
		p.setSpan(e, start)
		return e
	case cclex.KindLParen:
		// Cast or parenthesized expression.
		if p.startsTypeInParens() {
			p.next()
			ty := p.parseType()
			p.expect(cclex.KindRParen)
			x := p.parseUnaryExpr()
			c := &ccast.Cast{Style: ccast.CastCStyle, To: ty, X: x}
			p.setSpan(c, start)
			return c
		}
		p.next()
		x := p.parseExpr()
		p.expect(cclex.KindRParen)
		pe := &ccast.Paren{X: x}
		p.setSpan(pe, start)
		return pe
	case cclex.KindKeyword:
		switch p.tok.Text {
		case "true", "false":
			v := p.tok.Text == "true"
			p.next()
			e := &ccast.BoolLit{Value: v}
			p.setSpan(e, start)
			return e
		case "nullptr":
			p.next()
			e := &ccast.BoolLit{IsNull: true}
			p.setSpan(e, start)
			return e
		case "this":
			p.next()
			e := &ccast.Ident{Name: "this"}
			p.setSpan(e, start)
			return e
		}
		// Functional cast on a type keyword: float(x), int(x).
		if typeKeywords[p.tok.Text] && p.peek(0).Kind == cclex.KindLParen {
			tyName := p.tok.Text
			p.next()
			p.next() // (
			x := p.parseExpr()
			p.expect(cclex.KindRParen)
			c := &ccast.Cast{Style: ccast.CastFunctional, To: &ccast.Type{Name: tyName}, X: x}
			p.setSpan(c, start)
			return c
		}
		p.errorf("unexpected keyword %q in expression", p.tok.Text)
		p.panicking = true
		p.next()
		e := &ccast.Ident{Name: "<error>"}
		p.setSpan(e, start)
		return e
	case cclex.KindIdent:
		name := p.parseQualifiedName()
		e := &ccast.Ident{Name: name}
		p.setSpan(e, start)
		return e
	case cclex.KindColonColon:
		p.next()
		name := "::" + p.parseQualifiedName()
		e := &ccast.Ident{Name: name}
		p.setSpan(e, start)
		return e
	default:
		p.errorf("unexpected token %s in expression", p.tok)
		p.panicking = true
		p.next()
		e := &ccast.Ident{Name: "<error>"}
		p.setSpan(e, start)
		return e
	}
}

func parseIntText(text string) int64 {
	t := strings.TrimRight(text, "uUlL")
	var v int64
	var err error
	if strings.HasPrefix(t, "0x") || strings.HasPrefix(t, "0X") {
		var uv uint64
		uv, err = strconv.ParseUint(t[2:], 16, 64)
		v = int64(uv)
	} else if len(t) > 1 && t[0] == '0' {
		v, err = strconv.ParseInt(t[1:], 8, 64)
	} else {
		v, err = strconv.ParseInt(t, 10, 64)
	}
	if err != nil {
		return 0
	}
	return v
}

func charValue(text string) int64 {
	s := strings.TrimSuffix(strings.TrimPrefix(text, "'"), "'")
	if s == "" {
		return 0
	}
	if s[0] == '\\' && len(s) >= 2 {
		switch s[1] {
		case 'n':
			return '\n'
		case 't':
			return '\t'
		case 'r':
			return '\r'
		case '0':
			return 0
		case '\\':
			return '\\'
		case '\'':
			return '\''
		default:
			return int64(s[1])
		}
	}
	return int64(s[0])
}

// ParseAll parses every file in the set, returning units keyed by path.
// Files parse concurrently on a worker pool sized to Options.Workers
// (default GOMAXPROCS); units and errors are merged in file order, so the
// output is deterministic and identical to a sequential parse.
func ParseAll(fs *srcfile.FileSet, opts Options) (map[string]*ccast.TranslationUnit, []*Error) {
	files := fs.Files()
	workers := opts.Workers
	if workers <= 0 {
		workers = par.Workers(len(files))
	}
	if workers > len(files) {
		workers = len(files)
	}

	type result struct {
		tu   *ccast.TranslationUnit
		errs []*Error
	}
	results := make([]result, len(files))
	par.For(workers, len(files), func(i int) {
		tu, es := Parse(files[i], opts)
		results[i] = result{tu, es}
	})

	units := make(map[string]*ccast.TranslationUnit, len(files))
	nerrs := 0
	for i := range results {
		nerrs += len(results[i].errs)
	}
	var errs []*Error
	if nerrs > 0 {
		errs = make([]*Error, 0, nerrs)
	}
	for i, f := range files {
		units[f.Path] = results[i].tu
		errs = append(errs, results[i].errs...)
	}
	return units, errs
}
