// Package ccparse parses the C/C++/CUDA dialect used by the assessment
// subjects into ccast trees.
//
// The parser is recursive descent with index-based lookahead over a
// pre-lexed token slice, plus a small amount of backtracking for the
// declaration-vs-expression and cast-vs-parenthesis ambiguities. It is
// error tolerant: a declaration that cannot be parsed becomes a BadDecl
// and parsing resumes at the next synchronization point, so one exotic
// construct does not lose a file.
//
// Allocation model (the cold-path fast path): tokens land in a pooled
// per-parser buffer, AST nodes are slab-allocated from a ccast.Arena, and
// child lists (arguments, statements, declarators) accumulate in reusable
// scratch slices before being carved into arena-backed storage at their
// exact final length. Options.Reference disables all of it, giving the
// pre-optimization heap path for differential testing.
package ccparse

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/ccast"
	"repro/internal/cclex"
	"repro/internal/par"
	"repro/internal/srcfile"
)

// Error is a parse diagnostic.
type Error struct {
	File      string
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

// Options configures parsing.
type Options struct {
	// KeepComments is retained for API compatibility; comments are always
	// collected onto the translation unit.
	KeepComments bool
	// Workers bounds the concurrency of ParseAll: 0 means GOMAXPROCS,
	// 1 forces sequential parsing. Files are independent, so the result
	// is identical at any worker count.
	Workers int
	// Intern, when set, canonicalizes identifiers against a shared
	// corpus-level table so every file's spelling of the same name is one
	// string. ParseAll supplies a table automatically when none is given.
	Intern *cclex.Interner
	// Arena, when set, is the slab allocator AST nodes are carved from;
	// the caller owns its lifetime (it must outlive the returned unit).
	// When nil, Parse gives the unit a private arena that is freed
	// wholesale when the unit becomes unreachable.
	Arena *ccast.Arena
	// Reference forces the pre-optimization allocation path: every node
	// comes from the heap, child lists grow from nil, and identifiers
	// intern per-file. Differential tests run it against the arena path;
	// production callers leave it false.
	Reference bool
}

// Parse parses one file. The returned unit is non-nil even when errors are
// reported; unparseable regions appear as BadDecl nodes.
func Parse(f *srcfile.File, opts Options) (*ccast.TranslationUnit, []*Error) {
	lx := cclex.New(f.Src)
	lx.CUDA = f.Lang == srcfile.LangCUDA
	lx.KeepComments = true // always collect; surfaced on the unit

	p := getParser()
	p.file = f
	if opts.Reference {
		p.ref = true
		p.a = &ccast.Arena{} // untouched; keeps alloc sites nil-safe
	} else {
		lx.Intern = opts.Intern
		p.a = opts.Arena
		if p.a == nil {
			p.a = &ccast.Arena{}
		}
	}
	p.prelex(lx)

	tu := &ccast.TranslationUnit{File: f}
	tu.SetSpan(srcfile.Span{Start: srcfile.Pos{Line: 1, Col: 1}})

	mark := len(p.scratchDecl)
	for p.tok.Kind != cclex.KindEOF {
		d := p.parseTopDecl()
		if d != nil {
			p.scratchDecl = append(p.scratchDecl, d)
		}
	}
	tu.Decls = p.carveDecls(mark)
	tu.Comments = p.comments
	for _, le := range lx.Errors() {
		p.errs = append(p.errs, &Error{File: f.Path, Line: le.Line, Col: le.Col, Msg: le.Msg})
	}
	errs := p.errs
	putParser(p)
	return tu, errs
}

type parser struct {
	file *srcfile.File

	// Pre-lexed significant tokens, terminated by one KindEOF entry.
	// tok mirrors toks[idx] (a copy, so local fix-ups like splitting '>>'
	// do not disturb the buffer).
	toks []cclex.Token
	idx  int
	tok  cclex.Token

	a   *ccast.Arena // never nil; unused when ref is set
	ref bool         // reference (heap) allocation mode

	errs     []*Error
	comments []ccast.CommentInfo

	// Scratch accumulators for child lists: append at the top, carve from
	// a saved mark. Nesting is safe because every production restores the
	// scratch to its mark before returning.
	scratchComments []ccast.CommentInfo
	scratchExpr     []ccast.Expr
	scratchStmt     []ccast.Stmt
	scratchDecl     []ccast.Decl
	scratchDtor     []*ccast.Declarator
	scratchParam    []*ccast.Param
	scratchField    []*ccast.Field
	scratchFunc     []*ccast.FuncDecl
	scratchCase     []*ccast.CaseClause

	// typedefNames accumulates names introduced by typedef/using/class so
	// the decl-vs-expr heuristic can recognize them.
	typedefNames map[string]bool

	namespace []string // current namespace path
	class     string   // current class name when parsing methods
	panicking bool     // recovering from an error; suppress cascades
}

// parserPool recycles parser state (token buffer, scratch slices, typedef
// table) across files so steady-state parsing allocates almost nothing
// beyond the AST itself.
var parserPool = sync.Pool{New: func() any { return &parser{} }}

func getParser() *parser { return parserPool.Get().(*parser) }

func putParser(p *parser) {
	p.file = nil
	p.a = nil
	p.ref = false
	p.errs = nil
	p.comments = nil
	p.scratchComments = p.scratchComments[:0]
	p.scratchExpr = p.scratchExpr[:0]
	p.scratchStmt = p.scratchStmt[:0]
	p.scratchDecl = p.scratchDecl[:0]
	p.scratchDtor = p.scratchDtor[:0]
	p.scratchParam = p.scratchParam[:0]
	p.scratchField = p.scratchField[:0]
	p.scratchFunc = p.scratchFunc[:0]
	p.scratchCase = p.scratchCase[:0]
	if p.typedefNames != nil {
		clear(p.typedefNames)
	}
	p.namespace = p.namespace[:0]
	p.class = ""
	p.panicking = false
	parserPool.Put(p)
}

// prelex tokenizes the whole file into the reusable token buffer, routing
// comments aside, and primes tok on the first significant token.
func (p *parser) prelex(lx *cclex.Lexer) {
	toks := p.toks
	if toks == nil {
		toks = make([]cclex.Token, 0, len(p.file.Src)/6+16)
	} else {
		toks = toks[:0]
	}
	comments := p.scratchComments[:0]
	for {
		t := lx.Next()
		if t.Kind == cclex.KindComment {
			comments = append(comments, ccast.CommentInfo{Line: t.Line, Col: t.Col, Text: t.Text})
			continue
		}
		toks = append(toks, t)
		if t.Kind == cclex.KindEOF {
			break
		}
	}
	p.toks = toks
	p.scratchComments = comments
	p.comments = carve(p, &p.a.Comments, comments)
	p.idx = 0
	p.tok = toks[0]
}

// next advances to the following significant token.
func (p *parser) next() {
	if p.idx+1 < len(p.toks) {
		p.idx++
	}
	p.tok = p.toks[p.idx]
}

// at returns the token n positions ahead of the current one (0 = current),
// clamped to the trailing EOF.
func (p *parser) at(n int) cclex.Token {
	i := p.idx + n
	if i >= len(p.toks) {
		i = len(p.toks) - 1
	}
	return p.toks[i]
}

// peek returns the n-th upcoming significant token (0 = the one after tok).
func (p *parser) peek(n int) cclex.Token { return p.at(n + 1) }

// alloc returns a zeroed node from the arena slab, or the heap in
// reference mode.
func alloc[T any](p *parser, s *ccast.Slab[T]) *T {
	if p.ref {
		return new(T)
	}
	return ccast.Alloc(s)
}

// carve copies a scratch range into arena-backed (or, in reference mode,
// heap) storage at its exact final length.
func carve[T any](p *parser, s *ccast.Slab[T], src []T) []T {
	if len(src) == 0 {
		return nil
	}
	if p.ref {
		out := make([]T, len(src))
		copy(out, src)
		return out
	}
	return ccast.Carve(s, src)
}

func (p *parser) carveExprs(mark int) []ccast.Expr {
	out := carve(p, &p.a.Exprs, p.scratchExpr[mark:])
	p.scratchExpr = p.scratchExpr[:mark]
	return out
}

func (p *parser) carveStmts(mark int) []ccast.Stmt {
	out := carve(p, &p.a.Stmts, p.scratchStmt[mark:])
	p.scratchStmt = p.scratchStmt[:mark]
	return out
}

func (p *parser) carveDecls(mark int) []ccast.Decl {
	out := carve(p, &p.a.Decls, p.scratchDecl[mark:])
	p.scratchDecl = p.scratchDecl[:mark]
	return out
}

func (p *parser) carveDtors(mark int) []*ccast.Declarator {
	out := carve(p, &p.a.Declarators, p.scratchDtor[mark:])
	p.scratchDtor = p.scratchDtor[:mark]
	return out
}

func (p *parser) carveParams(mark int) []*ccast.Param {
	out := carve(p, &p.a.Params, p.scratchParam[mark:])
	p.scratchParam = p.scratchParam[:mark]
	return out
}

func (p *parser) carveFields(mark int) []*ccast.Field {
	out := carve(p, &p.a.Fields, p.scratchField[mark:])
	p.scratchField = p.scratchField[:mark]
	return out
}

func (p *parser) carveFuncs(mark int) []*ccast.FuncDecl {
	out := carve(p, &p.a.Funcs, p.scratchFunc[mark:])
	p.scratchFunc = p.scratchFunc[:mark]
	return out
}

func (p *parser) carveCases(mark int) []*ccast.CaseClause {
	out := carve(p, &p.a.Cases, p.scratchCase[mark:])
	p.scratchCase = p.scratchCase[:mark]
	return out
}

func (p *parser) pos() srcfile.Pos {
	return srcfile.Pos{Line: p.tok.Line, Col: p.tok.Col, Offset: p.tok.Off}
}

func (p *parser) endPos(t cclex.Token) srcfile.Pos {
	return srcfile.Pos{Line: t.Line, Col: t.Col + len(t.Text), Offset: t.Off + len(t.Text)}
}

func (p *parser) errorf(format string, args ...interface{}) {
	if p.panicking {
		return
	}
	p.errs = append(p.errs, &Error{
		File: p.file.Path, Line: p.tok.Line, Col: p.tok.Col,
		Msg: fmt.Sprintf(format, args...),
	})
}

func (p *parser) expect(k cclex.Kind) cclex.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf("expected %s, found %s", k, t)
		return t
	}
	p.next()
	return t
}

func (p *parser) accept(k cclex.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.tok.Is(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) span(start srcfile.Pos) srcfile.Span {
	return srcfile.Span{Start: start, End: srcfile.Pos{Line: p.tok.Line, Col: p.tok.Col, Offset: p.tok.Off}}
}

func (p *parser) setSpan(n ccast.Spanned, start srcfile.Pos) {
	n.SetSpan(p.span(start))
}

// syncTopLevel skips tokens until a likely declaration boundary.
func (p *parser) syncTopLevel() {
	depth := 0
	for p.tok.Kind != cclex.KindEOF {
		switch p.tok.Kind {
		case cclex.KindLBrace:
			depth++
		case cclex.KindRBrace:
			if depth == 0 {
				p.next()
				return
			}
			depth--
		case cclex.KindSemi:
			if depth == 0 {
				p.next()
				return
			}
		}
		p.next()
	}
}

// ---------------------------------------------------------------------------
// Top-level declarations

var builtinTypeNames = map[string]bool{
	"size_t": true, "ssize_t": true, "ptrdiff_t": true,
	"int8_t": true, "int16_t": true, "int32_t": true, "int64_t": true,
	"uint8_t": true, "uint16_t": true, "uint32_t": true, "uint64_t": true,
	"uintptr_t": true, "intptr_t": true, "wchar_t": true,
	"float2": true, "float3": true, "float4": true, "dim3": true,
	"cudaError_t": true, "cudaStream_t": true, "FILE": true,
}

func (p *parser) isTypeName(name string) bool {
	if builtinTypeNames[name] {
		return true
	}
	if p.typedefNames != nil && p.typedefNames[name] {
		return true
	}
	return false
}

func (p *parser) recordTypeName(name string) {
	if name == "" {
		return
	}
	if p.typedefNames == nil {
		p.typedefNames = make(map[string]bool)
	}
	p.typedefNames[name] = true
}

func (p *parser) parseTopDecl() ccast.Decl {
	p.panicking = false
	start := p.pos()
	switch {
	case p.tok.Kind == cclex.KindPPDirective:
		d := alloc(p, &p.a.PPDir)
		d.Text = p.tok.Text
		p.setSpan(d, start)
		p.next()
		return d
	case p.tok.Kind == cclex.KindSemi:
		p.next()
		return nil
	case p.tok.Is("namespace"):
		return p.parseNamespace()
	case p.tok.Is("using"):
		return p.parseUsing()
	case p.tok.Is("template"):
		p.skipTemplateHeader()
		return p.parseTopDecl()
	case p.tok.Is("typedef"):
		return p.parseTypedef()
	case p.tok.Is("extern") && p.peek(0).Kind == cclex.KindStringLit:
		return p.parseExternC()
	case p.tok.Is("struct") || p.tok.Is("union") || p.tok.Is("class"):
		// Definition if a '{' follows the tag name; otherwise a declaration
		// using an elaborated type.
		if p.peek(0).Kind == cclex.KindIdent &&
			(p.peek(1).Kind == cclex.KindLBrace || p.peek(1).Kind == cclex.KindColon) {
			return p.parseRecord()
		}
		return p.parseVarOrFunc()
	case p.tok.Is("enum"):
		if p.peek(0).Kind == cclex.KindIdent && p.peek(1).Kind == cclex.KindLBrace ||
			p.peek(0).Kind == cclex.KindLBrace {
			return p.parseEnum()
		}
		return p.parseVarOrFunc()
	default:
		return p.parseVarOrFunc()
	}
}

func (p *parser) parseNamespace() ccast.Decl {
	start := p.pos()
	p.next() // namespace
	name := ""
	if p.tok.Kind == cclex.KindIdent {
		name = p.tok.Text
		p.next()
	}
	ns := &ccast.NamespaceDecl{Name: name}
	p.expect(cclex.KindLBrace)
	p.namespace = append(p.namespace, name)
	mark := len(p.scratchDecl)
	for p.tok.Kind != cclex.KindRBrace && p.tok.Kind != cclex.KindEOF {
		d := p.parseTopDecl()
		if d != nil {
			p.scratchDecl = append(p.scratchDecl, d)
		}
	}
	ns.Decls = p.carveDecls(mark)
	p.namespace = p.namespace[:len(p.namespace)-1]
	p.expect(cclex.KindRBrace)
	p.accept(cclex.KindSemi)
	p.setSpan(ns, start)
	return ns
}

func (p *parser) parseUsing() ccast.Decl {
	start := p.pos()
	p.next() // using
	u := &ccast.UsingDecl{}
	if p.acceptKeyword("namespace") {
		u.IsNamespace = true
	}
	// "using Alias = Type;" is a typedef.
	if p.tok.Kind == cclex.KindIdent && p.peek(0).Kind == cclex.KindAssign {
		name := p.tok.Text
		p.next()
		p.next() // =
		ty := p.parseType()
		p.expect(cclex.KindSemi)
		p.recordTypeName(name)
		td := &ccast.TypedefDecl{Name: name, Type: ty}
		p.setSpan(td, start)
		return td
	}
	var sb strings.Builder
	for p.tok.Kind == cclex.KindIdent || p.tok.Kind == cclex.KindColonColon {
		sb.WriteString(p.tok.Text)
		p.next()
	}
	u.Target = sb.String()
	p.expect(cclex.KindSemi)
	p.setSpan(u, start)
	return u
}

func (p *parser) skipTemplateHeader() {
	p.next() // template
	if p.tok.Kind != cclex.KindLess {
		return
	}
	depth := 0
	for p.tok.Kind != cclex.KindEOF {
		switch p.tok.Kind {
		case cclex.KindLess:
			depth++
		case cclex.KindGreater:
			depth--
			if depth == 0 {
				p.next()
				return
			}
		case cclex.KindShr:
			depth -= 2
			if depth <= 0 {
				p.next()
				return
			}
		}
		p.next()
	}
}

func (p *parser) parseTypedef() ccast.Decl {
	start := p.pos()
	p.next() // typedef
	ty := p.parseType()
	// "typedef struct Tag { ... } Name;": consume the record body. The
	// member structure is not needed for the typedef itself (the record is
	// also visible via its tag when declared separately).
	if p.tok.Kind == cclex.KindLBrace {
		depth := 0
		for p.tok.Kind != cclex.KindEOF {
			switch p.tok.Kind {
			case cclex.KindLBrace:
				depth++
			case cclex.KindRBrace:
				depth--
			}
			p.next()
			if depth == 0 {
				break
			}
		}
	}
	name := ""
	if p.tok.Kind == cclex.KindIdent {
		name = p.tok.Text
		p.next()
	}
	// Array suffix on typedef name.
	for p.tok.Kind == cclex.KindLBracket {
		p.next()
		if p.tok.Kind != cclex.KindRBracket {
			e := p.parseExpr()
			ty.ArrayDims = append(ty.ArrayDims, e)
		} else {
			ty.ArrayDims = append(ty.ArrayDims, nil)
		}
		p.expect(cclex.KindRBracket)
	}
	p.expect(cclex.KindSemi)
	p.recordTypeName(name)
	td := &ccast.TypedefDecl{Name: name, Type: ty}
	p.setSpan(td, start)
	return td
}

func (p *parser) parseExternC() ccast.Decl {
	start := p.pos()
	p.next() // extern
	p.next() // "C"
	if p.tok.Kind == cclex.KindLBrace {
		p.next()
		ns := &ccast.NamespaceDecl{Name: `extern "C"`}
		mark := len(p.scratchDecl)
		for p.tok.Kind != cclex.KindRBrace && p.tok.Kind != cclex.KindEOF {
			d := p.parseTopDecl()
			if d != nil {
				p.scratchDecl = append(p.scratchDecl, d)
			}
		}
		ns.Decls = p.carveDecls(mark)
		p.expect(cclex.KindRBrace)
		p.setSpan(ns, start)
		return ns
	}
	return p.parseVarOrFunc()
}

func (p *parser) parseEnum() ccast.Decl {
	start := p.pos()
	p.next() // enum
	p.acceptKeyword("class")
	e := &ccast.EnumDecl{}
	if p.tok.Kind == cclex.KindIdent {
		e.Name = p.tok.Text
		p.recordTypeName(e.Name)
		p.next()
	}
	p.expect(cclex.KindLBrace)
	for p.tok.Kind != cclex.KindRBrace && p.tok.Kind != cclex.KindEOF {
		if p.tok.Kind == cclex.KindIdent {
			e.Members = append(e.Members, p.tok.Text)
			p.next()
			if p.accept(cclex.KindAssign) {
				p.parseAssignExpr()
			}
		}
		if !p.accept(cclex.KindComma) {
			break
		}
	}
	p.expect(cclex.KindRBrace)
	p.expect(cclex.KindSemi)
	p.setSpan(e, start)
	return e
}

func (p *parser) parseRecord() ccast.Decl {
	start := p.pos()
	kind := ccast.RecordStruct
	switch p.tok.Text {
	case "union":
		kind = ccast.RecordUnion
	case "class":
		kind = ccast.RecordClass
	}
	p.next()
	r := &ccast.RecordDecl{Kind: kind}
	if p.tok.Kind == cclex.KindIdent {
		r.Name = p.tok.Text
		p.recordTypeName(r.Name)
		p.next()
	}
	// Base-class list: ": public Base, ..." — skipped structurally.
	if p.accept(cclex.KindColon) {
		for p.tok.Kind != cclex.KindLBrace && p.tok.Kind != cclex.KindEOF {
			p.next()
		}
	}
	p.expect(cclex.KindLBrace)
	prevClass := p.class
	p.class = r.Name
	fieldMark := len(p.scratchField)
	funcMark := len(p.scratchFunc)
	for p.tok.Kind != cclex.KindRBrace && p.tok.Kind != cclex.KindEOF {
		// Access specifiers.
		if (p.tok.Is("public") || p.tok.Is("private") || p.tok.Is("protected")) &&
			p.peek(0).Kind == cclex.KindColon {
			p.next()
			p.next()
			continue
		}
		if p.tok.Kind == cclex.KindPPDirective {
			p.next()
			continue
		}
		if p.tok.Is("friend") {
			// Skip friend declarations to the semicolon.
			for p.tok.Kind != cclex.KindSemi && p.tok.Kind != cclex.KindEOF {
				p.next()
			}
			p.next()
			continue
		}
		if p.tok.Is("typedef") {
			p.parseTypedef()
			continue
		}
		if p.tok.Is("template") {
			p.skipTemplateHeader()
			continue
		}
		d := p.parseMemberDecl(r.Name)
		switch d := d.(type) {
		case *ccast.FuncDecl:
			p.scratchFunc = append(p.scratchFunc, d)
		case *ccast.VarDecl:
			for _, dd := range d.Names {
				f := alloc(p, &p.a.Field)
				f.Name, f.Type = dd.Name, dd.Type
				f.SetSpan(dd.Span())
				p.scratchField = append(p.scratchField, f)
			}
		case nil:
			// error already recorded; avoid livelock
			if p.tok.Kind != cclex.KindRBrace {
				p.next()
			}
		}
	}
	r.Fields = p.carveFields(fieldMark)
	r.Methods = p.carveFuncs(funcMark)
	p.class = prevClass
	p.expect(cclex.KindRBrace)
	p.expect(cclex.KindSemi)
	p.setSpan(r, start)
	return r
}

// parseMemberDecl parses one class member (method or field group).
func (p *parser) parseMemberDecl(className string) ccast.Decl {
	start := p.pos()
	quals := p.parseQualifiers()

	// Constructor / destructor: Name( or ~Name(.
	isDtor := false
	if p.tok.Kind == cclex.KindTilde {
		isDtor = true
		p.next()
	}
	if p.tok.Kind == cclex.KindIdent && p.tok.Text == className &&
		(isDtor || p.peek(0).Kind == cclex.KindLParen) {
		name := p.tok.Text
		if isDtor {
			name = "~" + name
		}
		p.next()
		ret := alloc(p, &p.a.Type)
		ret.Name = "void"
		fd := alloc(p, &p.a.FuncDecl)
		fd.Name, fd.Quals, fd.Class = name, quals, className
		fd.Namespace = strings.Join(p.namespace, "::")
		fd.Ret = ret
		p.parseFuncRest(fd)
		p.setSpan(fd, start)
		return fd
	}
	if isDtor {
		p.errorf("expected destructor name")
		p.syncTopLevel()
		return nil
	}

	ty := p.parseType()
	ty.Quals |= quals
	if p.tok.Kind != cclex.KindIdent {
		p.errorf("expected member name, found %s", p.tok)
		p.syncTopLevel()
		return nil
	}
	name := p.tok.Text
	p.next()
	applyDeclaratorSuffix(ty, p)

	if p.tok.Kind == cclex.KindLParen {
		fd := alloc(p, &p.a.FuncDecl)
		fd.Name, fd.Ret, fd.Quals, fd.Class = name, ty, quals, className
		fd.Namespace = strings.Join(p.namespace, "::")
		p.parseFuncRest(fd)
		p.setSpan(fd, start)
		return fd
	}
	return p.parseVarDeclRest(start, ty, name, quals)
}

// parseQualifiers consumes leading storage-class/qualifier keywords.
func (p *parser) parseQualifiers() ccast.TypeQual {
	var q ccast.TypeQual
	for {
		switch {
		case p.acceptKeyword("static"):
			q |= ccast.QualStatic
		case p.acceptKeyword("extern"):
			q |= ccast.QualExtern
		case p.acceptKeyword("inline"), p.acceptKeyword("__forceinline__"):
			q |= ccast.QualInline
		case p.acceptKeyword("virtual"):
			q |= ccast.QualVirtual
		case p.acceptKeyword("explicit"):
			q |= ccast.QualExplicit
		case p.acceptKeyword("constexpr"):
			q |= ccast.QualConstexpr
		case p.acceptKeyword("mutable"):
			q |= ccast.QualMutable
		case p.acceptKeyword("register"):
			q |= ccast.QualRegister
		case p.acceptKeyword("__global__"):
			q |= ccast.QualCUDAGlobal
		case p.acceptKeyword("__device__"):
			q |= ccast.QualCUDADevice
		case p.acceptKeyword("__host__"):
			q |= ccast.QualCUDAHost
		case p.acceptKeyword("__shared__"):
			q |= ccast.QualCUDAShared
		case p.acceptKeyword("__constant__"):
			q |= ccast.QualCUDAConstant
		default:
			return q
		}
	}
}

// typeKeywords are specifier keywords that begin or continue a base type.
var typeKeywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "signed": true, "unsigned": true,
	"bool": true, "_Bool": true, "auto": true,
}

// parseType parses a type specifier plus pointer declarator prefix.
func (p *parser) parseType() *ccast.Type {
	start := p.pos()
	ty := alloc(p, &p.a.Type)
	var partsArr [4]string
	parts := partsArr[:0]

	for {
		switch {
		case p.acceptKeyword("const"):
			ty.Quals |= ccast.QualConst
		case p.acceptKeyword("volatile"):
			ty.Quals |= ccast.QualVolatile
		case p.acceptKeyword("restrict"), p.acceptKeyword("__restrict__"):
			// qualifier without structural effect
		case p.acceptKeyword("unsigned"):
			ty.Quals |= ccast.QualUnsigned
			parts = append(parts, "unsigned")
		case p.acceptKeyword("signed"):
			ty.Quals |= ccast.QualSigned
			parts = append(parts, "signed")
		case p.tok.Is("struct") || p.tok.Is("union") || p.tok.Is("class") ||
			p.tok.Is("enum"):
			kw := p.tok.Text
			p.next()
			if p.tok.Kind == cclex.KindIdent {
				parts = append(parts, kw+" "+p.tok.Text)
				p.next()
			} else {
				parts = append(parts, kw)
			}
			goto specDone
		case p.tok.Kind == cclex.KindKeyword && typeKeywords[p.tok.Text]:
			parts = append(parts, p.tok.Text)
			p.next()
			// Multi-word types: long long, long double, unsigned int...
			for p.tok.Kind == cclex.KindKeyword && typeKeywords[p.tok.Text] {
				parts = append(parts, p.tok.Text)
				p.next()
			}
			goto specDone
		case p.tok.Kind == cclex.KindIdent:
			parts = append(parts, p.parseQualifiedName())
			goto specDone
		case p.tok.Is("typename"):
			p.next()
		default:
			goto specDone
		}
	}
specDone:
	// Trailing const: "int const".
	for p.acceptKeyword("const") {
		ty.Quals |= ccast.QualConst
	}
	ty.Name = strings.Join(parts, " ")
	if ty.Name == "" {
		ty.Name = "int" // implicit int fallback for robustness
	}
	for {
		if p.accept(cclex.KindStar) {
			ty.PtrDepth++
			for p.acceptKeyword("const") || p.acceptKeyword("volatile") ||
				p.acceptKeyword("restrict") || p.acceptKeyword("__restrict__") {
			}
			continue
		}
		if p.accept(cclex.KindAmp) {
			ty.IsRef = true
			continue
		}
		break
	}
	p.setSpan(ty, start)
	return ty
}

// parseQualifiedName parses Ident(::Ident)* with balanced template args.
// The common case — a lone identifier — returns the interned token text
// without touching a builder.
func (p *parser) parseQualifiedName() string {
	if p.tok.Kind == cclex.KindIdent {
		nxt := p.peek(0)
		if nxt.Kind != cclex.KindColonColon &&
			(nxt.Kind != cclex.KindLess || !p.looksLikeTemplateArgsAt(1)) {
			name := p.tok.Text
			p.next()
			return name
		}
	}
	var sb strings.Builder
	for {
		if p.tok.Kind != cclex.KindIdent {
			break
		}
		sb.WriteString(p.tok.Text)
		p.next()
		// Template arguments: consume balanced <...> when it looks like a
		// template, i.e. next token opens '<' and some '>' closes before a
		// ';' at depth 0. We use a bounded scan.
		if p.tok.Kind == cclex.KindLess && p.looksLikeTemplateArgsAt(0) {
			sb.WriteString(p.consumeTemplateArgs())
		}
		if p.tok.Kind == cclex.KindColonColon && p.peek(0).Kind == cclex.KindIdent {
			sb.WriteString("::")
			p.next()
			continue
		}
		break
	}
	return sb.String()
}

// looksLikeTemplateArgsAt scans ahead from the '<' sitting d tokens past
// the current one for a matching '>' before any token that rules out a
// template argument list.
func (p *parser) looksLikeTemplateArgsAt(d int) bool {
	depth := 0
	for i := 0; i < 64; i++ {
		t := p.at(d + i)
		switch t.Kind {
		case cclex.KindLess:
			depth++
		case cclex.KindGreater:
			depth--
			if depth == 0 {
				return true
			}
		case cclex.KindShr:
			depth -= 2
			if depth <= 0 {
				return true
			}
		case cclex.KindSemi, cclex.KindLBrace, cclex.KindRBrace, cclex.KindEOF,
			cclex.KindAndAnd, cclex.KindOrOr, cclex.KindPlus, cclex.KindMinus,
			cclex.KindStringLit:
			return false
		case cclex.KindKeyword:
			// Type keywords inside <> support the template reading.
			if !typeKeywords[t.Text] && t.Text != "const" && t.Text != "unsigned" &&
				t.Text != "signed" && t.Text != "struct" {
				return false
			}
		case cclex.KindIdent, cclex.KindIntLit, cclex.KindComma, cclex.KindStar,
			cclex.KindColonColon, cclex.KindAmp:
			// plausible inside template args
		default:
			return false
		}
	}
	return false
}

func (p *parser) consumeTemplateArgs() string {
	var sb strings.Builder
	depth := 0
	for p.tok.Kind != cclex.KindEOF {
		switch p.tok.Kind {
		case cclex.KindLess:
			depth++
		case cclex.KindGreater:
			depth--
		case cclex.KindShr:
			depth -= 2
		}
		sb.WriteString(p.tok.Text)
		done := depth <= 0
		p.next()
		if done {
			break
		}
	}
	return sb.String()
}

// applyDeclaratorSuffix consumes array dimensions after a declared name.
func applyDeclaratorSuffix(ty *ccast.Type, p *parser) {
	for p.tok.Kind == cclex.KindLBracket {
		p.next()
		if p.tok.Kind == cclex.KindRBracket {
			ty.ArrayDims = append(ty.ArrayDims, nil)
		} else {
			ty.ArrayDims = append(ty.ArrayDims, p.parseExpr())
		}
		p.expect(cclex.KindRBracket)
	}
}

// parseVarOrFunc parses a top-level variable or function declaration.
func (p *parser) parseVarOrFunc() ccast.Decl {
	start := p.pos()
	quals := p.parseQualifiers()

	if p.tok.Kind == cclex.KindEOF {
		return nil
	}
	ty := p.parseType()
	ty.Quals |= quals

	if p.tok.Kind != cclex.KindIdent {
		// Could be "struct X;" style forward declaration.
		if p.accept(cclex.KindSemi) {
			return nil
		}
		p.errorf("expected declarator, found %s", p.tok)
		p.panicking = true
		bd := &ccast.BadDecl{Reason: "unparsed declaration"}
		p.setSpan(bd, start)
		p.syncTopLevel()
		return bd
	}

	name := p.parseQualifiedName()
	applyDeclaratorSuffix(ty, p)

	if p.tok.Kind == cclex.KindLParen {
		fd := alloc(p, &p.a.FuncDecl)
		fd.Name, fd.Ret, fd.Quals = name, ty, quals
		fd.Namespace = strings.Join(p.namespace, "::")
		if i := strings.LastIndex(name, "::"); i >= 0 {
			fd.Class = name[:i]
		}
		p.parseFuncRest(fd)
		p.setSpan(fd, start)
		return fd
	}
	return p.parseVarDeclRest(start, ty, name, quals)
}

// parseVarDeclRest parses declarators after the first name has been read.
func (p *parser) parseVarDeclRest(start srcfile.Pos, ty *ccast.Type, firstName string, quals ccast.TypeQual) ccast.Decl {
	vd := alloc(p, &p.a.VarDecl)
	vd.Global = p.class == ""
	first := alloc(p, &p.a.Declarator)
	first.Name, first.Type = firstName, ty
	first.SetSpan(p.span(start))
	mark := len(p.scratchDtor)
	p.scratchDtor = append(p.scratchDtor, first)

	if p.accept(cclex.KindAssign) {
		first.Init = p.parseInitializer()
	} else if p.tok.Kind == cclex.KindLBrace {
		first.Init = p.parseInitializer()
	}
	for p.accept(cclex.KindComma) {
		dstart := p.pos()
		dty := alloc(p, &p.a.Type)
		dty.Name, dty.Quals = ty.Name, ty.Quals
		for p.accept(cclex.KindStar) {
			dty.PtrDepth++
		}
		if p.tok.Kind != cclex.KindIdent {
			p.errorf("expected declarator name, found %s", p.tok)
			break
		}
		d := alloc(p, &p.a.Declarator)
		d.Name, d.Type = p.tok.Text, dty
		p.next()
		applyDeclaratorSuffix(dty, p)
		if p.accept(cclex.KindAssign) {
			d.Init = p.parseInitializer()
		}
		d.SetSpan(p.span(dstart))
		p.scratchDtor = append(p.scratchDtor, d)
	}
	p.expect(cclex.KindSemi)
	vd.Names = p.carveDtors(mark)
	p.setSpan(vd, start)
	return vd
}

func (p *parser) parseInitializer() ccast.Expr {
	if p.tok.Kind == cclex.KindLBrace {
		start := p.pos()
		p.next()
		il := alloc(p, &p.a.InitList)
		mark := len(p.scratchExpr)
		for p.tok.Kind != cclex.KindRBrace && p.tok.Kind != cclex.KindEOF {
			p.scratchExpr = append(p.scratchExpr, p.parseInitializer())
			if !p.accept(cclex.KindComma) {
				break
			}
		}
		il.Elems = p.carveExprs(mark)
		p.expect(cclex.KindRBrace)
		p.setSpan(il, start)
		return il
	}
	return p.parseAssignExpr()
}

// parseFuncRest parses parameters and optional body; p.tok is '('.
func (p *parser) parseFuncRest(fd *ccast.FuncDecl) {
	p.expect(cclex.KindLParen)
	if !p.accept(cclex.KindRParen) {
		mark := len(p.scratchParam)
		for {
			if p.accept(cclex.KindEllipsis) {
				fd.Variadic = true
				break
			}
			if p.tok.Is("void") && p.peek(0).Kind == cclex.KindRParen {
				p.next()
				break
			}
			pstart := p.pos()
			pq := p.parseQualifiers()
			pty := p.parseType()
			pty.Quals |= pq
			prm := alloc(p, &p.a.Param)
			prm.Type = pty
			if p.tok.Kind == cclex.KindIdent {
				prm.Name = p.tok.Text
				p.next()
			}
			applyDeclaratorSuffix(pty, p)
			if p.accept(cclex.KindAssign) {
				p.parseAssignExpr() // default argument, discarded
			}
			prm.SetSpan(p.span(pstart))
			p.scratchParam = append(p.scratchParam, prm)
			if !p.accept(cclex.KindComma) {
				break
			}
		}
		fd.Params = p.carveParams(mark)
		p.expect(cclex.KindRParen)
	}
	// Trailing qualifiers: const, override, noexcept-ish idents.
	for p.acceptKeyword("const") || p.acceptKeyword("override") {
	}
	// Constructor initializer list: ": field(x), ..." before the body.
	if p.accept(cclex.KindColon) {
		for p.tok.Kind != cclex.KindLBrace && p.tok.Kind != cclex.KindEOF &&
			p.tok.Kind != cclex.KindSemi {
			p.next()
		}
	}
	switch {
	case p.accept(cclex.KindSemi):
		// prototype
	case p.tok.Kind == cclex.KindLBrace:
		fd.Body = p.parseBlock()
	case p.accept(cclex.KindAssign):
		// "= 0;" pure virtual, "= default;", "= delete;"
		for p.tok.Kind != cclex.KindSemi && p.tok.Kind != cclex.KindEOF {
			p.next()
		}
		p.accept(cclex.KindSemi)
	default:
		p.errorf("expected function body or ';', found %s", p.tok)
		p.panicking = true
		p.syncTopLevel()
	}
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseBlock() *ccast.Block {
	start := p.pos()
	b := alloc(p, &p.a.Block)
	p.expect(cclex.KindLBrace)
	mark := len(p.scratchStmt)
	for p.tok.Kind != cclex.KindRBrace && p.tok.Kind != cclex.KindEOF {
		s := p.parseStmt()
		if s != nil {
			p.scratchStmt = append(p.scratchStmt, s)
		}
	}
	b.Stmts = p.carveStmts(mark)
	p.expect(cclex.KindRBrace)
	p.setSpan(b, start)
	return b
}

func (p *parser) parseStmt() ccast.Stmt {
	start := p.pos()
	switch {
	case p.tok.Kind == cclex.KindPPDirective:
		p.next()
		return nil
	case p.tok.Kind == cclex.KindLBrace:
		return p.parseBlock()
	case p.tok.Kind == cclex.KindSemi:
		p.next()
		e := alloc(p, &p.a.Empty)
		p.setSpan(e, start)
		return e
	case p.tok.Is("if"):
		return p.parseIf()
	case p.tok.Is("while"):
		return p.parseWhile()
	case p.tok.Is("do"):
		return p.parseDoWhile()
	case p.tok.Is("for"):
		return p.parseFor()
	case p.tok.Is("switch"):
		return p.parseSwitch()
	case p.tok.Is("break"):
		p.next()
		p.expect(cclex.KindSemi)
		s := alloc(p, &p.a.Break)
		p.setSpan(s, start)
		return s
	case p.tok.Is("continue"):
		p.next()
		p.expect(cclex.KindSemi)
		s := alloc(p, &p.a.Continue)
		p.setSpan(s, start)
		return s
	case p.tok.Is("return"):
		p.next()
		r := alloc(p, &p.a.Return)
		if p.tok.Kind != cclex.KindSemi {
			r.X = p.parseExpr()
		}
		p.expect(cclex.KindSemi)
		p.setSpan(r, start)
		return r
	case p.tok.Is("goto"):
		p.next()
		g := alloc(p, &p.a.Goto)
		if p.tok.Kind == cclex.KindIdent {
			g.Label = p.tok.Text
			p.next()
		}
		p.expect(cclex.KindSemi)
		p.setSpan(g, start)
		return g
	case p.tok.Is("try"):
		// try { ... } catch (...) { ... } — modeled as the try block
		// followed by catch bodies folded into a Block.
		p.next()
		blk := p.parseBlock()
		for p.tok.Is("catch") {
			p.next()
			p.expect(cclex.KindLParen)
			depth := 1
			for depth > 0 && p.tok.Kind != cclex.KindEOF {
				switch p.tok.Kind {
				case cclex.KindLParen:
					depth++
				case cclex.KindRParen:
					depth--
				}
				p.next()
			}
			cb := p.parseBlock()
			blk.Stmts = append(blk.Stmts, cb)
		}
		return blk
	case p.tok.Is("throw"):
		p.next()
		if p.tok.Kind != cclex.KindSemi {
			p.parseExpr()
		}
		p.expect(cclex.KindSemi)
		id := alloc(p, &p.a.Ident)
		id.Name = "throw"
		s := alloc(p, &p.a.ExprStmt)
		s.X = id
		p.setSpan(s, start)
		return s
	// Label: Ident ':' not followed by ':' (to exclude ::).
	case p.tok.Kind == cclex.KindIdent && p.peek(0).Kind == cclex.KindColon &&
		p.peek(1).Kind != cclex.KindColon:
		l := alloc(p, &p.a.Label)
		l.Name = p.tok.Text
		p.next()
		p.next()
		l.Stmt = p.parseStmt()
		p.setSpan(l, start)
		return l
	default:
		if p.startsDecl() {
			return p.parseDeclStmt()
		}
		return p.parseExprStmt()
	}
}

// startsDecl decides whether the upcoming tokens begin a declaration.
func (p *parser) startsDecl() bool {
	t := p.tok
	if t.Kind == cclex.KindKeyword {
		switch t.Text {
		case "const", "static", "struct", "union", "enum", "unsigned",
			"signed", "volatile", "register", "auto", "constexpr",
			"__shared__", "__device__", "__constant__", "typename":
			return true
		}
		return typeKeywords[t.Text]
	}
	if t.Kind != cclex.KindIdent {
		return false
	}
	// Ident path: a declaration when a known type name or the classic
	// "A b", "A* b", "A& b", "ns::A b" shapes follow.
	// Walk lookahead over name ( :: name )* ( < ... > )? then pointers.
	j := 1
	for p.at(j).Kind == cclex.KindColonColon && p.at(j+1).Kind == cclex.KindIdent {
		j += 2
	}
	// template args
	if p.at(j).Kind == cclex.KindLess {
		depth := 0
		k := j
		for k < j+64 {
			switch p.at(k).Kind {
			case cclex.KindLess:
				depth++
			case cclex.KindGreater:
				depth--
			case cclex.KindShr:
				depth -= 2
			case cclex.KindSemi, cclex.KindEOF, cclex.KindLBrace:
				depth = -99
			}
			k++
			if depth <= 0 {
				break
			}
		}
		if depth == 0 {
			j = k
		} else if depth < -1 {
			return false
		}
	}
	// pointers/refs
	for p.at(j).Kind == cclex.KindStar || p.at(j).Kind == cclex.KindAmp {
		j++
		for p.at(j).Is("const") {
			j++
		}
	}
	nt := p.at(j)
	if nt.Kind == cclex.KindIdent {
		// "A b" is a decl if followed by = ; , [ ( or end-ish token.
		after := p.at(j + 1)
		switch after.Kind {
		case cclex.KindAssign, cclex.KindSemi, cclex.KindComma,
			cclex.KindLBracket, cclex.KindLBrace:
			return true
		case cclex.KindLParen:
			// Could be a constructor-style init "A b(1);" — treat as decl
			// only when the first ident is a known type.
			return p.isTypeName(t.Text)
		}
		return false
	}
	return false
}

func (p *parser) parseDeclStmt() ccast.Stmt {
	start := p.pos()
	quals := p.parseQualifiers()
	ty := p.parseType()
	ty.Quals |= quals
	ds := alloc(p, &p.a.DeclStmt)
	vd := alloc(p, &p.a.VarDecl)
	mark := len(p.scratchDtor)
	for {
		dstart := p.pos()
		dty := ty
		if len(p.scratchDtor) > mark {
			dty = alloc(p, &p.a.Type)
			dty.Name, dty.Quals = ty.Name, ty.Quals
			for p.accept(cclex.KindStar) {
				dty.PtrDepth++
			}
		}
		if p.tok.Kind != cclex.KindIdent {
			p.errorf("expected local declarator, found %s", p.tok)
			break
		}
		d := alloc(p, &p.a.Declarator)
		d.Name, d.Type = p.tok.Text, dty
		p.next()
		applyDeclaratorSuffix(dty, p)
		switch {
		case p.accept(cclex.KindAssign):
			d.Init = p.parseInitializer()
		case p.tok.Kind == cclex.KindLBrace:
			d.Init = p.parseInitializer()
		case p.tok.Kind == cclex.KindLParen:
			// Constructor-style initialization "T x(a, b);".
			p.next()
			il := alloc(p, &p.a.InitList)
			emark := len(p.scratchExpr)
			for p.tok.Kind != cclex.KindRParen && p.tok.Kind != cclex.KindEOF {
				p.scratchExpr = append(p.scratchExpr, p.parseAssignExpr())
				if !p.accept(cclex.KindComma) {
					break
				}
			}
			il.Elems = p.carveExprs(emark)
			p.expect(cclex.KindRParen)
			d.Init = il
		}
		d.SetSpan(p.span(dstart))
		p.scratchDtor = append(p.scratchDtor, d)
		if !p.accept(cclex.KindComma) {
			break
		}
	}
	p.expect(cclex.KindSemi)
	vd.Names = p.carveDtors(mark)
	p.setSpan(vd, start)
	ds.Decl = vd
	p.setSpan(ds, start)
	return ds
}

func (p *parser) parseExprStmt() ccast.Stmt {
	start := p.pos()
	x := p.parseExpr()
	p.expect(cclex.KindSemi)
	s := alloc(p, &p.a.ExprStmt)
	s.X = x
	p.setSpan(s, start)
	return s
}

func (p *parser) parseIf() ccast.Stmt {
	start := p.pos()
	p.next() // if
	p.expect(cclex.KindLParen)
	cond := p.parseExpr()
	p.expect(cclex.KindRParen)
	s := alloc(p, &p.a.If)
	s.Cond = cond
	s.Then = p.parseStmt()
	if p.acceptKeyword("else") {
		s.Else = p.parseStmt()
	}
	p.setSpan(s, start)
	return s
}

func (p *parser) parseWhile() ccast.Stmt {
	start := p.pos()
	p.next()
	p.expect(cclex.KindLParen)
	cond := p.parseExpr()
	p.expect(cclex.KindRParen)
	s := alloc(p, &p.a.While)
	s.Cond = cond
	s.Body = p.parseStmt()
	p.setSpan(s, start)
	return s
}

func (p *parser) parseDoWhile() ccast.Stmt {
	start := p.pos()
	p.next()
	s := alloc(p, &p.a.DoWhile)
	s.Body = p.parseStmt()
	if !p.acceptKeyword("while") {
		p.errorf("expected 'while' after do body")
	}
	p.expect(cclex.KindLParen)
	s.Cond = p.parseExpr()
	p.expect(cclex.KindRParen)
	p.expect(cclex.KindSemi)
	p.setSpan(s, start)
	return s
}

func (p *parser) parseFor() ccast.Stmt {
	start := p.pos()
	p.next()
	p.expect(cclex.KindLParen)
	s := alloc(p, &p.a.For)
	if !p.accept(cclex.KindSemi) {
		if p.startsDecl() {
			s.Init = p.parseDeclStmt() // consumes ';'
		} else {
			istart := p.pos()
			x := p.parseExpr()
			es := alloc(p, &p.a.ExprStmt)
			es.X = x
			p.setSpan(es, istart)
			s.Init = es
			p.expect(cclex.KindSemi)
		}
	}
	if p.tok.Kind != cclex.KindSemi {
		s.Cond = p.parseExpr()
	}
	p.expect(cclex.KindSemi)
	if p.tok.Kind != cclex.KindRParen {
		s.Post = p.parseExpr()
	}
	p.expect(cclex.KindRParen)
	s.Body = p.parseStmt()
	p.setSpan(s, start)
	return s
}

func (p *parser) parseSwitch() ccast.Stmt {
	start := p.pos()
	p.next()
	p.expect(cclex.KindLParen)
	s := alloc(p, &p.a.Switch)
	s.Tag = p.parseExpr()
	p.expect(cclex.KindRParen)
	p.expect(cclex.KindLBrace)
	casesMark := len(p.scratchCase)
	var cur *ccast.CaseClause
	valsMark, bodyMark := 0, 0
	closeCur := func() {
		if cur != nil {
			cur.Body = p.carveStmts(bodyMark)
			cur.Values = p.carveExprs(valsMark)
			cur = nil
		}
	}
	for p.tok.Kind != cclex.KindRBrace && p.tok.Kind != cclex.KindEOF {
		switch {
		case p.tok.Is("case"):
			cstart := p.pos()
			p.next()
			v := p.parseExpr()
			p.expect(cclex.KindColon)
			if cur != nil && len(p.scratchStmt) == bodyMark {
				// fallthrough label stacking: case 1: case 2: body
				p.scratchExpr = append(p.scratchExpr, v)
			} else {
				closeCur()
				cur = alloc(p, &p.a.CaseClause)
				valsMark = len(p.scratchExpr)
				bodyMark = len(p.scratchStmt)
				p.scratchExpr = append(p.scratchExpr, v)
				cur.SetSpan(p.span(cstart))
				p.scratchCase = append(p.scratchCase, cur)
			}
		case p.tok.Is("default"):
			cstart := p.pos()
			p.next()
			p.expect(cclex.KindColon)
			closeCur()
			cur = alloc(p, &p.a.CaseClause)
			valsMark = len(p.scratchExpr)
			bodyMark = len(p.scratchStmt)
			cur.SetSpan(p.span(cstart))
			p.scratchCase = append(p.scratchCase, cur)
		default:
			st := p.parseStmt()
			if st != nil {
				if cur == nil {
					cur = alloc(p, &p.a.CaseClause)
					valsMark = len(p.scratchExpr)
					bodyMark = len(p.scratchStmt)
					p.scratchCase = append(p.scratchCase, cur)
				}
				p.scratchStmt = append(p.scratchStmt, st)
			}
		}
	}
	closeCur()
	p.expect(cclex.KindRBrace)
	s.Cases = p.carveCases(casesMark)
	p.setSpan(s, start)
	return s
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() ccast.Expr {
	start := p.pos()
	x := p.parseAssignExpr()
	for p.tok.Kind == cclex.KindComma {
		p.next()
		r := p.parseAssignExpr()
		c := alloc(p, &p.a.Comma)
		c.L, c.R = x, r
		p.setSpan(c, start)
		x = c
	}
	return x
}

var assignOps = map[cclex.Kind]string{
	cclex.KindAssign: "=", cclex.KindPlusEq: "+=", cclex.KindMinusEq: "-=",
	cclex.KindStarEq: "*=", cclex.KindSlashEq: "/=", cclex.KindPercentEq: "%=",
	cclex.KindAmpEq: "&=", cclex.KindPipeEq: "|=", cclex.KindCaretEq: "^=",
	cclex.KindShlEq: "<<=", cclex.KindShrEq: ">>=",
}

func (p *parser) parseAssignExpr() ccast.Expr {
	start := p.pos()
	x := p.parseCondExpr()
	if op, ok := assignOps[p.tok.Kind]; ok {
		p.next()
		r := p.parseAssignExpr()
		a := alloc(p, &p.a.Assign)
		a.Op, a.L, a.R = op, x, r
		p.setSpan(a, start)
		return a
	}
	return x
}

func (p *parser) parseCondExpr() ccast.Expr {
	start := p.pos()
	c := p.parseBinaryExpr(1)
	if p.tok.Kind != cclex.KindQuestion {
		return c
	}
	p.next()
	t := p.parseAssignExpr()
	p.expect(cclex.KindColon)
	f := p.parseAssignExpr()
	e := alloc(p, &p.a.Cond)
	e.C, e.T, e.F = c, t, f
	p.setSpan(e, start)
	return e
}

// binPrec maps operators to precedence (higher binds tighter).
var binPrec = map[cclex.Kind]int{
	cclex.KindOrOr:   1,
	cclex.KindAndAnd: 2,
	cclex.KindPipe:   3,
	cclex.KindCaret:  4,
	cclex.KindAmp:    5,
	cclex.KindEq:     6, cclex.KindNotEq: 6,
	cclex.KindLess: 7, cclex.KindGreater: 7, cclex.KindLessEq: 7, cclex.KindGreaterEq: 7,
	cclex.KindShl: 8, cclex.KindShr: 8,
	cclex.KindPlus: 9, cclex.KindMinus: 9,
	cclex.KindStar: 10, cclex.KindSlash: 10, cclex.KindPercent: 10,
}

func (p *parser) parseBinaryExpr(minPrec int) ccast.Expr {
	start := p.pos()
	x := p.parseUnaryExpr()
	for {
		prec, ok := binPrec[p.tok.Kind]
		if !ok || prec < minPrec {
			return x
		}
		op := p.tok.Text
		p.next()
		r := p.parseBinaryExpr(prec + 1)
		b := alloc(p, &p.a.Binary)
		b.Op, b.L, b.R = op, x, r
		p.setSpan(b, start)
		x = b
	}
}

func (p *parser) parseUnaryExpr() ccast.Expr {
	start := p.pos()
	switch p.tok.Kind {
	case cclex.KindPlus, cclex.KindMinus, cclex.KindNot, cclex.KindTilde,
		cclex.KindStar, cclex.KindAmp:
		op := p.tok.Text
		p.next()
		x := p.parseUnaryExpr()
		u := alloc(p, &p.a.Unary)
		u.Op, u.X = op, x
		p.setSpan(u, start)
		return u
	case cclex.KindPlusPlus, cclex.KindMinusMinus:
		op := p.tok.Text
		p.next()
		x := p.parseUnaryExpr()
		u := alloc(p, &p.a.Unary)
		u.Op, u.X = op, x
		p.setSpan(u, start)
		return u
	case cclex.KindKeyword:
		switch p.tok.Text {
		case "sizeof":
			p.next()
			se := alloc(p, &p.a.Sizeof)
			if p.tok.Kind == cclex.KindLParen && p.startsTypeInParens() {
				p.next()
				se.Type = p.parseType()
				p.expect(cclex.KindRParen)
			} else {
				se.X = p.parseUnaryExpr()
			}
			p.setSpan(se, start)
			return se
		case "new":
			p.next()
			ne := alloc(p, &p.a.New)
			ne.Type = p.parseType()
			if p.accept(cclex.KindLBracket) {
				ne.Count = p.parseExpr()
				p.expect(cclex.KindRBracket)
			} else if p.accept(cclex.KindLParen) {
				mark := len(p.scratchExpr)
				for p.tok.Kind != cclex.KindRParen && p.tok.Kind != cclex.KindEOF {
					p.scratchExpr = append(p.scratchExpr, p.parseAssignExpr())
					if !p.accept(cclex.KindComma) {
						break
					}
				}
				ne.Args = p.carveExprs(mark)
				p.expect(cclex.KindRParen)
			}
			p.setSpan(ne, start)
			return ne
		case "delete":
			p.next()
			de := alloc(p, &p.a.Delete)
			if p.accept(cclex.KindLBracket) {
				p.expect(cclex.KindRBracket)
				de.Array = true
			}
			de.X = p.parseUnaryExpr()
			p.setSpan(de, start)
			return de
		case "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast":
			style := map[string]ccast.CastStyle{
				"static_cast":      ccast.CastStatic,
				"dynamic_cast":     ccast.CastDynamic,
				"const_cast":       ccast.CastConst,
				"reinterpret_cast": ccast.CastReinterpret,
			}[p.tok.Text]
			p.next()
			p.expect(cclex.KindLess)
			ty := p.parseType()
			// close '>': tolerate '>>' from nested templates
			if p.tok.Kind == cclex.KindShr {
				p.tok.Kind = cclex.KindGreater
				p.tok.Text = ">"
			}
			p.expect(cclex.KindGreater)
			p.expect(cclex.KindLParen)
			x := p.parseExpr()
			p.expect(cclex.KindRParen)
			c := alloc(p, &p.a.Cast)
			c.Style, c.To, c.X = style, ty, x
			p.setSpan(c, start)
			return c
		}
	}
	return p.parsePostfixExpr()
}

// startsTypeInParens peeks after a '(' to decide cast vs parenthesized expr.
func (p *parser) startsTypeInParens() bool {
	t := p.peek(0)
	if t.Kind == cclex.KindKeyword {
		switch t.Text {
		case "const", "volatile", "unsigned", "signed", "struct", "union",
			"enum", "typename":
			return true
		}
		return typeKeywords[t.Text]
	}
	if t.Kind != cclex.KindIdent || !p.isTypeName(t.Text) {
		return false
	}
	// Known type name: cast if followed by ')' or '*'s then ')'.
	i := 1
	for p.peek(i).Kind == cclex.KindColonColon {
		i += 2
	}
	for p.peek(i).Kind == cclex.KindStar || p.peek(i).Is("const") {
		i++
	}
	return p.peek(i).Kind == cclex.KindRParen
}

func (p *parser) parsePostfixExpr() ccast.Expr {
	start := p.pos()
	x := p.parsePrimaryExpr()
	for {
		switch p.tok.Kind {
		case cclex.KindLParen:
			p.next()
			c := alloc(p, &p.a.Call)
			c.Fun = x
			mark := len(p.scratchExpr)
			for p.tok.Kind != cclex.KindRParen && p.tok.Kind != cclex.KindEOF {
				p.scratchExpr = append(p.scratchExpr, p.parseAssignExpr())
				if !p.accept(cclex.KindComma) {
					break
				}
			}
			c.Args = p.carveExprs(mark)
			p.expect(cclex.KindRParen)
			p.setSpan(c, start)
			x = c
		case cclex.KindKernelLaunch:
			p.next()
			kl := alloc(p, &p.a.Kernel)
			kl.Fun = x
			cmark := len(p.scratchExpr)
			for p.tok.Kind != cclex.KindKernelLaunchEnd && p.tok.Kind != cclex.KindEOF {
				p.scratchExpr = append(p.scratchExpr, p.parseAssignExpr())
				if !p.accept(cclex.KindComma) {
					break
				}
			}
			kl.Config = p.carveExprs(cmark)
			p.expect(cclex.KindKernelLaunchEnd)
			p.expect(cclex.KindLParen)
			amark := len(p.scratchExpr)
			for p.tok.Kind != cclex.KindRParen && p.tok.Kind != cclex.KindEOF {
				p.scratchExpr = append(p.scratchExpr, p.parseAssignExpr())
				if !p.accept(cclex.KindComma) {
					break
				}
			}
			kl.Args = p.carveExprs(amark)
			p.expect(cclex.KindRParen)
			p.setSpan(kl, start)
			x = kl
		case cclex.KindLBracket:
			p.next()
			i := p.parseExpr()
			p.expect(cclex.KindRBracket)
			ix := alloc(p, &p.a.Index)
			ix.X, ix.I = x, i
			p.setSpan(ix, start)
			x = ix
		case cclex.KindDot, cclex.KindArrow:
			arrow := p.tok.Kind == cclex.KindArrow
			p.next()
			name := ""
			if p.tok.Kind == cclex.KindIdent {
				name = p.tok.Text
				p.next()
			} else {
				p.errorf("expected member name, found %s", p.tok)
			}
			m := alloc(p, &p.a.Member)
			m.X, m.Name, m.Arrow = x, name, arrow
			p.setSpan(m, start)
			x = m
		case cclex.KindPlusPlus, cclex.KindMinusMinus:
			op := p.tok.Text
			p.next()
			pf := alloc(p, &p.a.Postfix)
			pf.Op, pf.X = op, x
			p.setSpan(pf, start)
			x = pf
		default:
			return x
		}
	}
}

func (p *parser) parsePrimaryExpr() ccast.Expr {
	start := p.pos()
	switch p.tok.Kind {
	case cclex.KindIntLit:
		text := p.tok.Text
		p.next()
		e := alloc(p, &p.a.IntLit)
		e.Text, e.Value = text, parseIntText(text)
		p.setSpan(e, start)
		return e
	case cclex.KindFloatLit:
		text := p.tok.Text
		p.next()
		v, _ := strconv.ParseFloat(strings.TrimRight(text, "fFlL"), 64)
		e := alloc(p, &p.a.FloatLit)
		e.Text, e.Value = text, v
		p.setSpan(e, start)
		return e
	case cclex.KindStringLit:
		text := p.tok.Text
		p.next()
		// Adjacent string literal concatenation.
		for p.tok.Kind == cclex.KindStringLit {
			text += p.tok.Text
			p.next()
		}
		e := alloc(p, &p.a.StringLit)
		e.Text = text
		p.setSpan(e, start)
		return e
	case cclex.KindCharLit:
		text := p.tok.Text
		p.next()
		e := alloc(p, &p.a.CharLit)
		e.Text, e.Value = text, charValue(text)
		p.setSpan(e, start)
		return e
	case cclex.KindLParen:
		// Cast or parenthesized expression.
		if p.startsTypeInParens() {
			p.next()
			ty := p.parseType()
			p.expect(cclex.KindRParen)
			x := p.parseUnaryExpr()
			c := alloc(p, &p.a.Cast)
			c.Style, c.To, c.X = ccast.CastCStyle, ty, x
			p.setSpan(c, start)
			return c
		}
		p.next()
		x := p.parseExpr()
		p.expect(cclex.KindRParen)
		pe := alloc(p, &p.a.Paren)
		pe.X = x
		p.setSpan(pe, start)
		return pe
	case cclex.KindKeyword:
		switch p.tok.Text {
		case "true", "false":
			v := p.tok.Text == "true"
			p.next()
			e := alloc(p, &p.a.BoolLit)
			e.Value = v
			p.setSpan(e, start)
			return e
		case "nullptr":
			p.next()
			e := alloc(p, &p.a.BoolLit)
			e.IsNull = true
			p.setSpan(e, start)
			return e
		case "this":
			p.next()
			e := alloc(p, &p.a.Ident)
			e.Name = "this"
			p.setSpan(e, start)
			return e
		}
		// Functional cast on a type keyword: float(x), int(x).
		if typeKeywords[p.tok.Text] && p.peek(0).Kind == cclex.KindLParen {
			tyName := p.tok.Text
			p.next()
			p.next() // (
			x := p.parseExpr()
			p.expect(cclex.KindRParen)
			to := alloc(p, &p.a.Type)
			to.Name = tyName
			c := alloc(p, &p.a.Cast)
			c.Style, c.To, c.X = ccast.CastFunctional, to, x
			p.setSpan(c, start)
			return c
		}
		p.errorf("unexpected keyword %q in expression", p.tok.Text)
		p.panicking = true
		p.next()
		e := alloc(p, &p.a.Ident)
		e.Name = "<error>"
		p.setSpan(e, start)
		return e
	case cclex.KindIdent:
		name := p.parseQualifiedName()
		e := alloc(p, &p.a.Ident)
		e.Name = name
		p.setSpan(e, start)
		return e
	case cclex.KindColonColon:
		p.next()
		name := "::" + p.parseQualifiedName()
		e := alloc(p, &p.a.Ident)
		e.Name = name
		p.setSpan(e, start)
		return e
	default:
		p.errorf("unexpected token %s in expression", p.tok)
		p.panicking = true
		p.next()
		e := alloc(p, &p.a.Ident)
		e.Name = "<error>"
		p.setSpan(e, start)
		return e
	}
}

func parseIntText(text string) int64 {
	t := strings.TrimRight(text, "uUlL")
	var v int64
	var err error
	if strings.HasPrefix(t, "0x") || strings.HasPrefix(t, "0X") {
		var uv uint64
		uv, err = strconv.ParseUint(t[2:], 16, 64)
		v = int64(uv)
	} else if len(t) > 1 && t[0] == '0' {
		v, err = strconv.ParseInt(t[1:], 8, 64)
	} else {
		v, err = strconv.ParseInt(t, 10, 64)
	}
	if err != nil {
		return 0
	}
	return v
}

func charValue(text string) int64 {
	s := strings.TrimSuffix(strings.TrimPrefix(text, "'"), "'")
	if s == "" {
		return 0
	}
	if s[0] == '\\' && len(s) >= 2 {
		switch s[1] {
		case 'n':
			return '\n'
		case 't':
			return '\t'
		case 'r':
			return '\r'
		case '0':
			return 0
		case '\\':
			return '\\'
		case '\'':
			return '\''
		default:
			return int64(s[1])
		}
	}
	return int64(s[0])
}

// ParseAll parses every file in the set, returning units keyed by path.
// Files parse concurrently on a worker pool sized to Options.Workers
// (default GOMAXPROCS); units and errors are merged in file order, so the
// output is deterministic and identical to a sequential parse.
//
// Unless the caller supplies them, ParseAll creates one shared identifier
// table for the whole run and a small pool of arenas that workers reuse
// across files, so a batch parse performs a handful of slab allocations
// per file. The resulting units jointly own the arena memory; it is
// released when the whole batch becomes unreachable (the batch corpus is
// replaced wholesale, so per-unit eviction granularity is not needed —
// deltas re-parse single files with private arenas).
func ParseAll(fs *srcfile.FileSet, opts Options) (map[string]*ccast.TranslationUnit, []*Error) {
	files := fs.Files()
	workers := opts.Workers
	if workers <= 0 {
		workers = par.Workers(len(files))
	}
	if workers > len(files) {
		workers = len(files)
	}

	if !opts.Reference && opts.Intern == nil {
		opts.Intern = cclex.NewInterner()
	}
	var arenas *sync.Pool
	if !opts.Reference && opts.Arena == nil {
		arenas = &sync.Pool{New: func() any { return &ccast.Arena{} }}
	}

	type result struct {
		tu   *ccast.TranslationUnit
		errs []*Error
	}
	results := make([]result, len(files))
	par.For(workers, len(files), func(i int) {
		o := opts
		if arenas != nil {
			a := arenas.Get().(*ccast.Arena)
			o.Arena = a
			defer arenas.Put(a)
		}
		tu, es := Parse(files[i], o)
		results[i] = result{tu, es}
	})

	units := make(map[string]*ccast.TranslationUnit, len(files))
	nerrs := 0
	for i := range results {
		nerrs += len(results[i].errs)
	}
	var errs []*Error
	if nerrs > 0 {
		errs = make([]*Error, 0, nerrs)
	}
	for i, f := range files {
		units[f.Path] = results[i].tu
		errs = append(errs, results[i].errs...)
	}
	return units, errs
}
