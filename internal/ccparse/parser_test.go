package ccparse

import (
	"testing"

	"repro/internal/ccast"
	"repro/internal/srcfile"
)

func parseSrc(t *testing.T, path, src string) *ccast.TranslationUnit {
	t.Helper()
	f := &srcfile.File{Path: path, Lang: srcfile.LanguageForPath(path), Src: src}
	tu, errs := Parse(f, Options{})
	for _, e := range errs {
		t.Errorf("parse error: %v", e)
	}
	return tu
}

func TestParseSimpleFunction(t *testing.T) {
	tu := parseSrc(t, "a.c", `
int add(int a, int b) {
    return a + b;
}
`)
	funcs := tu.Funcs()
	if len(funcs) != 1 {
		t.Fatalf("funcs = %d, want 1", len(funcs))
	}
	f := funcs[0]
	if f.Name != "add" || len(f.Params) != 2 || f.Ret.Name != "int" {
		t.Errorf("unexpected function: %+v", f)
	}
	if len(f.Body.Stmts) != 1 {
		t.Fatalf("body stmts = %d", len(f.Body.Stmts))
	}
	ret, ok := f.Body.Stmts[0].(*ccast.Return)
	if !ok {
		t.Fatalf("stmt is %T, want *Return", f.Body.Stmts[0])
	}
	if _, ok := ret.X.(*ccast.Binary); !ok {
		t.Errorf("return expr is %T, want Binary", ret.X)
	}
}

func TestParsePrecedence(t *testing.T) {
	tu := parseSrc(t, "a.c", "int f() { return 1 + 2 * 3; }")
	ret := tu.Funcs()[0].Body.Stmts[0].(*ccast.Return)
	b := ret.X.(*ccast.Binary)
	if b.Op != "+" {
		t.Fatalf("top op = %q, want +", b.Op)
	}
	r := b.R.(*ccast.Binary)
	if r.Op != "*" {
		t.Errorf("right op = %q, want *", r.Op)
	}
}

func TestParseControlFlow(t *testing.T) {
	tu := parseSrc(t, "a.c", `
void f(int n) {
    if (n > 0) { n--; } else { n++; }
    while (n < 10) { n += 2; }
    do { n--; } while (n > 0);
    for (int i = 0; i < n; i++) { n += i; }
    switch (n) {
    case 0: n = 1; break;
    case 1:
    case 2: n = 3; break;
    default: n = 0;
    }
}
`)
	body := tu.Funcs()[0].Body
	if len(body.Stmts) != 5 {
		t.Fatalf("stmts = %d, want 5", len(body.Stmts))
	}
	if _, ok := body.Stmts[0].(*ccast.If); !ok {
		t.Errorf("stmt 0 = %T", body.Stmts[0])
	}
	if _, ok := body.Stmts[1].(*ccast.While); !ok {
		t.Errorf("stmt 1 = %T", body.Stmts[1])
	}
	if _, ok := body.Stmts[2].(*ccast.DoWhile); !ok {
		t.Errorf("stmt 2 = %T", body.Stmts[2])
	}
	if _, ok := body.Stmts[3].(*ccast.For); !ok {
		t.Errorf("stmt 3 = %T", body.Stmts[3])
	}
	sw, ok := body.Stmts[4].(*ccast.Switch)
	if !ok {
		t.Fatalf("stmt 4 = %T", body.Stmts[4])
	}
	if len(sw.Cases) != 3 {
		t.Errorf("cases = %d, want 3 (stacked labels merge)", len(sw.Cases))
	}
	if len(sw.Cases[1].Values) != 2 {
		t.Errorf("case 1 values = %d, want 2", len(sw.Cases[1].Values))
	}
}

func TestParseGlobalsAndPointers(t *testing.T) {
	tu := parseSrc(t, "a.c", `
static int counter = 0;
float* buffer;
const char *name = "apollo";
int values[16];
`)
	gs := tu.GlobalVars()
	if len(gs) != 4 {
		t.Fatalf("globals = %d, want 4", len(gs))
	}
	if !gs[0].Names[0].Type.Quals.Has(ccast.QualStatic) {
		t.Error("static qualifier lost")
	}
	if gs[1].Names[0].Type.PtrDepth != 1 {
		t.Error("pointer depth lost on float*")
	}
	if gs[2].Names[0].Type.PtrDepth != 1 || !gs[2].Names[0].Type.Quals.Has(ccast.QualConst) {
		t.Error("const char* not parsed")
	}
	if len(gs[3].Names[0].Type.ArrayDims) != 1 {
		t.Error("array dimension lost")
	}
}

func TestParseCasts(t *testing.T) {
	tu := parseSrc(t, "a.cc", `
void f() {
    int x = (int)3.5;
    float y = static_cast<float>(x);
    void* p = reinterpret_cast<void*>(x);
    double z = double(x);
}
`)
	var styles []ccast.CastStyle
	ccast.WalkExprs(tu.Funcs()[0], func(e ccast.Expr) bool {
		if c, ok := e.(*ccast.Cast); ok {
			styles = append(styles, c.Style)
		}
		return true
	})
	want := []ccast.CastStyle{ccast.CastCStyle, ccast.CastStatic, ccast.CastReinterpret, ccast.CastFunctional}
	if len(styles) != len(want) {
		t.Fatalf("casts = %v, want %v", styles, want)
	}
	for i := range want {
		if styles[i] != want[i] {
			t.Errorf("cast %d = %v, want %v", i, styles[i], want[i])
		}
	}
}

func TestParseClassWithMethods(t *testing.T) {
	tu := parseSrc(t, "det.h", `
class Detector {
 public:
  Detector();
  ~Detector();
  bool Detect(const float* input, int size) {
    if (input == nullptr) return false;
    count_++;
    return true;
  }
 private:
  int count_;
  float threshold_;
};
`)
	if len(tu.Decls) != 1 {
		t.Fatalf("decls = %d", len(tu.Decls))
	}
	r, ok := tu.Decls[0].(*ccast.RecordDecl)
	if !ok {
		t.Fatalf("decl = %T", tu.Decls[0])
	}
	if r.Name != "Detector" || r.Kind != ccast.RecordClass {
		t.Errorf("record = %v %q", r.Kind, r.Name)
	}
	if len(r.Fields) != 2 {
		t.Errorf("fields = %d, want 2", len(r.Fields))
	}
	if len(r.Methods) != 3 {
		t.Fatalf("methods = %d, want 3", len(r.Methods))
	}
	defs := tu.Funcs()
	if len(defs) != 1 || defs[0].Name != "Detect" {
		t.Errorf("definitions = %v", defs)
	}
	if defs[0].Class != "Detector" {
		t.Errorf("class = %q", defs[0].Class)
	}
}

func TestParseNamespace(t *testing.T) {
	tu := parseSrc(t, "a.cc", `
namespace apollo {
namespace perception {
int Detect() { return 1; }
int g_frame_count = 0;
}
}
`)
	funcs := tu.Funcs()
	if len(funcs) != 1 {
		t.Fatalf("funcs = %d", len(funcs))
	}
	if funcs[0].Namespace != "apollo::perception" {
		t.Errorf("namespace = %q", funcs[0].Namespace)
	}
	gs := tu.GlobalVars()
	if len(gs) != 1 || gs[0].Names[0].Name != "g_frame_count" {
		t.Errorf("globals = %v", gs)
	}
}

func TestParseCUDAKernel(t *testing.T) {
	tu := parseSrc(t, "k.cu", `
__global__ void scale_bias_kernel(float *output, float *biases, int n, int size) {
    int offset = blockIdx.x * blockDim.x + threadIdx.x;
    if (offset < size) output[offset] *= biases[blockIdx.y];
}

void scale_bias_gpu(float *output, float *biases, int batch, int n, int size) {
    scale_bias_kernel<<<n, batch>>>(output, biases, n, size);
}
`)
	funcs := tu.Funcs()
	if len(funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(funcs))
	}
	if !funcs[0].IsKernel() {
		t.Error("kernel qualifier lost")
	}
	var launches int
	ccast.WalkExprs(funcs[1], func(e ccast.Expr) bool {
		if _, ok := e.(*ccast.KernelLaunch); ok {
			launches++
		}
		return true
	})
	if launches != 1 {
		t.Errorf("kernel launches = %d, want 1", launches)
	}
}

func TestParseTypedefAndUse(t *testing.T) {
	tu := parseSrc(t, "a.c", `
typedef unsigned char uchar;
typedef struct Point { int x; int y; } Point;
void f() {
    uchar c = 0;
    Point p;
    p.x = (int)c;
}
`)
	funcs := tu.Funcs()
	if len(funcs) != 1 {
		t.Fatalf("funcs = %d", len(funcs))
	}
	body := funcs[0].Body
	if len(body.Stmts) != 3 {
		t.Fatalf("stmts = %d, want 3: typedef name must parse as decl", len(body.Stmts))
	}
	if _, ok := body.Stmts[0].(*ccast.DeclStmt); !ok {
		t.Errorf("stmt 0 = %T, want DeclStmt", body.Stmts[0])
	}
	if _, ok := body.Stmts[1].(*ccast.DeclStmt); !ok {
		t.Errorf("stmt 1 = %T, want DeclStmt", body.Stmts[1])
	}
}

func TestParseNewDelete(t *testing.T) {
	tu := parseSrc(t, "a.cc", `
void f(int n) {
    float* buf = new float[n];
    int* one = new int(5);
    delete[] buf;
    delete one;
}
`)
	var news, dels int
	ccast.WalkExprs(tu.Funcs()[0], func(e ccast.Expr) bool {
		switch e.(type) {
		case *ccast.NewExpr:
			news++
		case *ccast.DeleteExpr:
			dels++
		}
		return true
	})
	if news != 2 || dels != 2 {
		t.Errorf("new = %d, delete = %d; want 2, 2", news, dels)
	}
}

func TestParseGotoAndLabels(t *testing.T) {
	tu := parseSrc(t, "a.c", `
int f(int n) {
    if (n < 0) goto fail;
    return n;
fail:
    return -1;
}
`)
	var gotos, labels int
	ccast.WalkStmts(tu.Funcs()[0].Body, func(s ccast.Stmt) bool {
		switch s.(type) {
		case *ccast.Goto:
			gotos++
		case *ccast.Label:
			labels++
		}
		return true
	})
	if gotos != 1 || labels != 1 {
		t.Errorf("gotos = %d labels = %d", gotos, labels)
	}
}

func TestParseTernaryAndLogical(t *testing.T) {
	tu := parseSrc(t, "a.c", `
int f(int a, int b, int c) {
    return (a > 0 && b > 0) || c != 0 ? a : b;
}
`)
	ret := tu.Funcs()[0].Body.Stmts[0].(*ccast.Return)
	if _, ok := ret.X.(*ccast.Cond); !ok {
		t.Errorf("expr = %T, want Cond", ret.X)
	}
}

func TestParseEnum(t *testing.T) {
	tu := parseSrc(t, "a.h", `
enum Mode { MODE_AUTO = 0, MODE_MANUAL, MODE_SAFE };
`)
	e, ok := tu.Decls[0].(*ccast.EnumDecl)
	if !ok {
		t.Fatalf("decl = %T", tu.Decls[0])
	}
	if e.Name != "Mode" || len(e.Members) != 3 {
		t.Errorf("enum = %q %v", e.Name, e.Members)
	}
}

func TestParsePPDirectivesKept(t *testing.T) {
	tu := parseSrc(t, "a.c", `
#include <stdio.h>
#define MAX 100
int x;
`)
	pp := 0
	for _, d := range tu.Decls {
		if _, ok := d.(*ccast.PPDirective); ok {
			pp++
		}
	}
	if pp != 2 {
		t.Errorf("directives = %d, want 2", pp)
	}
}

func TestParseErrorRecovery(t *testing.T) {
	f := &srcfile.File{Path: "bad.c", Lang: srcfile.LangC, Src: `
int ok1() { return 1; }
int $$$ garbage here;
int ok2() { return 2; }
`}
	tu, errs := Parse(f, Options{})
	if len(errs) == 0 {
		t.Error("expected parse errors")
	}
	funcs := tu.Funcs()
	if len(funcs) != 2 {
		t.Errorf("recovered funcs = %d, want 2", len(funcs))
	}
}

func TestParseMultipleDeclarators(t *testing.T) {
	tu := parseSrc(t, "a.c", "int a = 1, *b, c[4];")
	gs := tu.GlobalVars()
	if len(gs) != 1 || len(gs[0].Names) != 3 {
		t.Fatalf("decl shape: %+v", gs)
	}
	if gs[0].Names[1].Type.PtrDepth != 1 {
		t.Error("second declarator pointer lost")
	}
	if len(gs[0].Names[2].Type.ArrayDims) != 1 {
		t.Error("third declarator array lost")
	}
}

func TestParseUninitializedLocal(t *testing.T) {
	tu := parseSrc(t, "a.c", `
void f() {
    int x;
    int y = 0;
    x = y;
}
`)
	ds := tu.Funcs()[0].Body.Stmts[0].(*ccast.DeclStmt)
	if ds.Decl.Names[0].Init != nil {
		t.Error("x should be uninitialized")
	}
	ds2 := tu.Funcs()[0].Body.Stmts[1].(*ccast.DeclStmt)
	if ds2.Decl.Names[0].Init == nil {
		t.Error("y should be initialized")
	}
}

func TestParseMethodOutOfLine(t *testing.T) {
	tu := parseSrc(t, "a.cc", `
bool Detector::Detect(const float* input) {
    return input != nullptr;
}
`)
	funcs := tu.Funcs()
	if len(funcs) != 1 {
		t.Fatalf("funcs = %d", len(funcs))
	}
	if funcs[0].Name != "Detector::Detect" || funcs[0].Class != "Detector" {
		t.Errorf("name = %q class = %q", funcs[0].Name, funcs[0].Class)
	}
}

func TestParseTemplateSkipped(t *testing.T) {
	tu := parseSrc(t, "a.cc", `
template <typename T>
T max_of(T a, T b) { return a > b ? a : b; }
`)
	funcs := tu.Funcs()
	if len(funcs) != 1 || funcs[0].Name != "max_of" {
		t.Errorf("template function lost: %v", funcs)
	}
}

func TestParseStdVectorDecl(t *testing.T) {
	tu := parseSrc(t, "a.cc", `
#include <vector>
void f() {
    std::vector<float> scores;
    scores.push_back(0.5f);
}
`)
	funcs := tu.Funcs()
	if len(funcs) != 1 {
		t.Fatalf("funcs = %d", len(funcs))
	}
	if len(funcs[0].Body.Stmts) != 2 {
		t.Fatalf("stmts = %d, want 2", len(funcs[0].Body.Stmts))
	}
	if _, ok := funcs[0].Body.Stmts[0].(*ccast.DeclStmt); !ok {
		t.Errorf("vector decl parsed as %T", funcs[0].Body.Stmts[0])
	}
}

func TestParseSizeof(t *testing.T) {
	tu := parseSrc(t, "a.c", `
void f() {
    int a = sizeof(int);
    int b = sizeof(a);
}
`)
	var tySizeof, exprSizeof int
	ccast.WalkExprs(tu.Funcs()[0], func(e ccast.Expr) bool {
		if s, ok := e.(*ccast.SizeofExpr); ok {
			if s.Type != nil {
				tySizeof++
			} else {
				exprSizeof++
			}
		}
		return true
	})
	if tySizeof != 1 || exprSizeof != 1 {
		t.Errorf("sizeof(type) = %d, sizeof expr = %d", tySizeof, exprSizeof)
	}
}

func TestParseSpansCoverFunction(t *testing.T) {
	src := "int f() {\n  return 1;\n}\n"
	tu := parseSrc(t, "a.c", src)
	f := tu.Funcs()[0]
	sp := f.Span()
	if sp.Start.Line != 1 {
		t.Errorf("start line = %d", sp.Start.Line)
	}
	if sp.End.Line < 3 {
		t.Errorf("end line = %d, want >= 3", sp.End.Line)
	}
}

func TestParseExternC(t *testing.T) {
	tu := parseSrc(t, "a.cc", `
extern "C" {
int c_func(int x);
int c_impl(int x) { return x; }
}
`)
	if len(tu.Funcs()) != 1 {
		t.Errorf("extern C functions = %d", len(tu.Funcs()))
	}
}

func TestParseAllFileSet(t *testing.T) {
	fs := srcfile.NewFileSet()
	fs.AddSource("m1/a.c", "int f() { return 0; }")
	fs.AddSource("m2/b.cc", "int g() { return 1; }")
	units, errs := ParseAll(fs, Options{})
	if len(errs) != 0 {
		t.Errorf("errors: %v", errs)
	}
	if len(units) != 2 {
		t.Errorf("units = %d", len(units))
	}
}
