// Package cfg builds per-function control-flow graphs from ccast trees.
//
// The graphs drive three consumers: cyclomatic complexity (E - N + 2),
// structural checks (single-entry/single-exit, unreachable code), and the
// decision inventory used by branch and MC/DC coverage.
package cfg

import (
	"fmt"

	"repro/internal/ccast"
	"repro/internal/srcfile"
)

// Node is one basic block.
type Node struct {
	ID int
	// Stmts are the non-branching statements grouped into this block.
	Stmts []ccast.Stmt
	// Cond is the controlling expression when the block ends in a branch.
	Cond ccast.Expr
	// Succs are outgoing edges in evaluation order (true edge first for
	// conditional blocks).
	Succs []*Node
	// Label names the block for diagnostics ("entry", "exit", "if.then"...).
	Label string
}

// Graph is the CFG of one function.
type Graph struct {
	Fn    *ccast.FuncDecl
	Entry *Node
	Exit  *Node
	Nodes []*Node
	// Decisions are the controlling expressions of branching constructs in
	// source order (if/while/do/for conditions, and one per case value).
	Decisions []Decision
	// Stmts is the source-order statement inventory: every statement
	// except the Block and Label containers, exactly the set coverage
	// instrumentation probes. Collected in the same walk as Decisions so
	// CFG consumers need no further traversals.
	Stmts []ccast.Stmt
	// Cases lists the non-default case clauses of every switch in source
	// order (the branch-coverage contributors).
	Cases []*ccast.CaseClause
}

// DecisionKind classifies where a decision comes from.
type DecisionKind int

// Decision kinds.
const (
	DecisionIf DecisionKind = iota
	DecisionWhile
	DecisionDoWhile
	DecisionFor
	DecisionCase
	DecisionTernary
)

// String names the decision kind.
func (k DecisionKind) String() string {
	switch k {
	case DecisionIf:
		return "if"
	case DecisionWhile:
		return "while"
	case DecisionDoWhile:
		return "do-while"
	case DecisionFor:
		return "for"
	case DecisionCase:
		return "case"
	case DecisionTernary:
		return "?:"
	default:
		return fmt.Sprintf("DecisionKind(%d)", int(k))
	}
}

// Decision is one branching point.
type Decision struct {
	Kind DecisionKind
	// Expr is the controlling expression (nil for a case decision, whose
	// branch is the label equality test).
	Expr ccast.Expr
	Span srcfile.Span
	// Owner is the AST node the decision belongs to (*ccast.If,
	// *ccast.While, *ccast.DoWhile, *ccast.For, *ccast.Switch, or
	// *ccast.Cond); probe-based consumers key instrumentation off it.
	Owner ccast.Node
}

// builder holds construction state.
type builder struct {
	g          *Graph
	labels     map[string]*Node
	gotoFixups map[string][]*Node
	breakTgt   []*Node
	contTgt    []*Node
}

// Build constructs the CFG for a function definition. It returns nil for
// prototypes (no body).
func Build(fn *ccast.FuncDecl) *Graph {
	if fn == nil || fn.Body == nil {
		return nil
	}
	b := &builder{
		g:          &Graph{Fn: fn},
		labels:     make(map[string]*Node),
		gotoFixups: make(map[string][]*Node),
	}
	b.g.Entry = b.newNode("entry")
	b.g.Exit = b.newNode("exit")

	last := b.buildStmts(fn.Body.Stmts, b.g.Entry)
	if last != nil {
		b.link(last, b.g.Exit)
	}
	// Resolve forward gotos.
	for name, sources := range b.gotoFixups {
		tgt := b.labels[name]
		if tgt == nil {
			tgt = b.g.Exit // unknown label: treat as function exit
		}
		for _, src := range sources {
			b.link(src, tgt)
		}
	}
	b.collectDecisions(fn.Body)
	return b.g
}

func (b *builder) newNode(label string) *Node {
	n := &Node{ID: len(b.g.Nodes), Label: label}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *builder) link(from, to *Node) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// buildStmts threads stmts from cur; returns the live fall-through block or
// nil when control cannot fall out (return/break/goto on all paths).
func (b *builder) buildStmts(stmts []ccast.Stmt, cur *Node) *Node {
	for _, s := range stmts {
		if cur == nil {
			// Unreachable code after a jump: give it its own block so the
			// complexity and coverage accounting still see it.
			cur = b.newNode("unreachable")
		}
		cur = b.buildStmt(s, cur)
	}
	return cur
}

func (b *builder) buildStmt(s ccast.Stmt, cur *Node) *Node {
	switch s := s.(type) {
	case *ccast.Block:
		return b.buildStmts(s.Stmts, cur)

	case *ccast.If:
		cur.Cond = s.Cond
		cur.Label = "if"
		join := b.newNode("if.join")
		thenB := b.newNode("if.then")
		b.link(cur, thenB)
		thenEnd := b.buildStmt(s.Then, thenB)
		if thenEnd != nil {
			b.link(thenEnd, join)
		}
		if s.Else != nil {
			elseB := b.newNode("if.else")
			b.link(cur, elseB)
			elseEnd := b.buildStmt(s.Else, elseB)
			if elseEnd != nil {
				b.link(elseEnd, join)
			}
		} else {
			b.link(cur, join)
		}
		if len(join.Succs) == 0 && joinUnreached(join) {
			// keep join; may be linked later by gotos
		}
		return join

	case *ccast.While:
		head := b.newNode("while.head")
		b.link(cur, head)
		head.Cond = s.Cond
		body := b.newNode("while.body")
		exit := b.newNode("while.exit")
		b.link(head, body)
		b.link(head, exit)
		b.breakTgt = append(b.breakTgt, exit)
		b.contTgt = append(b.contTgt, head)
		bodyEnd := b.buildStmt(s.Body, body)
		b.breakTgt = b.breakTgt[:len(b.breakTgt)-1]
		b.contTgt = b.contTgt[:len(b.contTgt)-1]
		if bodyEnd != nil {
			b.link(bodyEnd, head)
		}
		return exit

	case *ccast.DoWhile:
		body := b.newNode("do.body")
		b.link(cur, body)
		cond := b.newNode("do.cond")
		cond.Cond = s.Cond
		exit := b.newNode("do.exit")
		b.breakTgt = append(b.breakTgt, exit)
		b.contTgt = append(b.contTgt, cond)
		bodyEnd := b.buildStmt(s.Body, body)
		b.breakTgt = b.breakTgt[:len(b.breakTgt)-1]
		b.contTgt = b.contTgt[:len(b.contTgt)-1]
		if bodyEnd != nil {
			b.link(bodyEnd, cond)
		}
		b.link(cond, body)
		b.link(cond, exit)
		return exit

	case *ccast.For:
		if s.Init != nil {
			cur = b.buildStmt(s.Init, cur)
		}
		head := b.newNode("for.head")
		b.link(cur, head)
		body := b.newNode("for.body")
		exit := b.newNode("for.exit")
		post := b.newNode("for.post")
		if s.Cond != nil {
			head.Cond = s.Cond
			b.link(head, body)
			b.link(head, exit)
		} else {
			b.link(head, body)
		}
		b.breakTgt = append(b.breakTgt, exit)
		b.contTgt = append(b.contTgt, post)
		bodyEnd := b.buildStmt(s.Body, body)
		b.breakTgt = b.breakTgt[:len(b.breakTgt)-1]
		b.contTgt = b.contTgt[:len(b.contTgt)-1]
		if bodyEnd != nil {
			b.link(bodyEnd, post)
		}
		b.link(post, head)
		return exit

	case *ccast.Switch:
		cur.Cond = s.Tag
		cur.Label = "switch"
		exit := b.newNode("switch.exit")
		b.breakTgt = append(b.breakTgt, exit)
		var prevFall *Node
		hasDefault := false
		for _, c := range s.Cases {
			cb := b.newNode("case")
			b.link(cur, cb)
			if len(c.Values) == 0 {
				hasDefault = true
			}
			if prevFall != nil {
				b.link(prevFall, cb)
			}
			end := b.buildStmts(c.Body, cb)
			prevFall = end
		}
		if prevFall != nil {
			b.link(prevFall, exit)
		}
		if !hasDefault {
			b.link(cur, exit)
		}
		b.breakTgt = b.breakTgt[:len(b.breakTgt)-1]
		return exit

	case *ccast.Break:
		cur.Stmts = append(cur.Stmts, s)
		if len(b.breakTgt) > 0 {
			b.link(cur, b.breakTgt[len(b.breakTgt)-1])
		} else {
			b.link(cur, b.g.Exit)
		}
		return nil

	case *ccast.Continue:
		cur.Stmts = append(cur.Stmts, s)
		if len(b.contTgt) > 0 {
			b.link(cur, b.contTgt[len(b.contTgt)-1])
		} else {
			b.link(cur, b.g.Exit)
		}
		return nil

	case *ccast.Return:
		cur.Stmts = append(cur.Stmts, s)
		b.link(cur, b.g.Exit)
		return nil

	case *ccast.Goto:
		cur.Stmts = append(cur.Stmts, s)
		if tgt, ok := b.labels[s.Label]; ok {
			b.link(cur, tgt)
		} else {
			b.gotoFixups[s.Label] = append(b.gotoFixups[s.Label], cur)
		}
		return nil

	case *ccast.Label:
		lb := b.newNode("label." + s.Name)
		b.labels[s.Name] = lb
		b.link(cur, lb)
		return b.buildStmt(s.Stmt, lb)

	case *ccast.Empty:
		return cur

	default:
		cur.Stmts = append(cur.Stmts, s)
		return cur
	}
}

func joinUnreached(n *Node) bool { return len(n.Stmts) == 0 }

// collectDecisions walks the body gathering branching points, statements,
// and case clauses in source order (one traversal for all inventories).
func (b *builder) collectDecisions(body *ccast.Block) {
	ccast.Walk(body, func(n ccast.Node) bool {
		if s, ok := n.(ccast.Stmt); ok {
			switch n.(type) {
			case *ccast.Block, *ccast.Label:
				// containers: not counted as statements
			default:
				b.g.Stmts = append(b.g.Stmts, s)
			}
		}
		switch n := n.(type) {
		case *ccast.If:
			b.g.Decisions = append(b.g.Decisions, Decision{Kind: DecisionIf, Expr: n.Cond, Span: n.Span(), Owner: n})
		case *ccast.While:
			b.g.Decisions = append(b.g.Decisions, Decision{Kind: DecisionWhile, Expr: n.Cond, Span: n.Span(), Owner: n})
		case *ccast.DoWhile:
			b.g.Decisions = append(b.g.Decisions, Decision{Kind: DecisionDoWhile, Expr: n.Cond, Span: n.Span(), Owner: n})
		case *ccast.For:
			if n.Cond != nil {
				b.g.Decisions = append(b.g.Decisions, Decision{Kind: DecisionFor, Expr: n.Cond, Span: n.Span(), Owner: n})
			}
		case *ccast.Switch:
			for _, c := range n.Cases {
				if len(c.Values) > 0 {
					b.g.Cases = append(b.g.Cases, c)
				}
				for range c.Values {
					b.g.Decisions = append(b.g.Decisions, Decision{Kind: DecisionCase, Span: c.Span(), Owner: n})
				}
			}
		case *ccast.Cond:
			b.g.Decisions = append(b.g.Decisions, Decision{Kind: DecisionTernary, Expr: n.C, Span: n.Span(), Owner: n})
		}
		return true
	})
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, nd := range g.Nodes {
		n += len(nd.Succs)
	}
	return n
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// Cyclomatic returns the graph-theoretic cyclomatic number E - N + 2.
// Compound logical conditions are not expanded in the graph; callers who
// want Lizard-compatible CCN should use metrics.Cyclomatic, which counts
// short-circuit operators as decisions too.
func (g *Graph) Cyclomatic() int {
	return g.NumEdges() - g.NumNodes() + 2
}

// ExitEdges returns how many distinct blocks jump to the exit node. A
// single-exit function (ISO 26262-6 Table 8 item 1) has exactly one.
func (g *Graph) ExitEdges() int {
	n := 0
	for _, nd := range g.Nodes {
		for _, s := range nd.Succs {
			if s == g.Exit {
				n++
				break
			}
		}
	}
	return n
}

// Reachable returns the set of node IDs reachable from the entry.
func (g *Graph) Reachable() map[int]bool {
	seen := make(map[int]bool)
	var dfs func(*Node)
	dfs = func(n *Node) {
		if n == nil || seen[n.ID] {
			return
		}
		seen[n.ID] = true
		for _, s := range n.Succs {
			dfs(s)
		}
	}
	dfs(g.Entry)
	return seen
}
