package cfg

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/srcfile"
)

func buildFrom(t *testing.T, src string) *Graph {
	t.Helper()
	f := &srcfile.File{Path: "t.c", Lang: srcfile.LangC, Src: src}
	tu, errs := ccparse.Parse(f, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	funcs := tu.Funcs()
	if len(funcs) != 1 {
		t.Fatalf("want 1 function, got %d", len(funcs))
	}
	g := Build(funcs[0])
	if g == nil {
		t.Fatal("nil graph")
	}
	return g
}

func TestStraightLine(t *testing.T) {
	g := buildFrom(t, "int f() { int x = 1; x++; return x; }")
	if got := g.Cyclomatic(); got != 1 {
		t.Errorf("cyclomatic = %d, want 1", got)
	}
	if got := g.ExitEdges(); got != 1 {
		t.Errorf("exit edges = %d, want 1", got)
	}
}

func TestIfAddsOne(t *testing.T) {
	g := buildFrom(t, "int f(int a) { if (a) { a++; } return a; }")
	if got := g.Cyclomatic(); got != 2 {
		t.Errorf("cyclomatic = %d, want 2", got)
	}
}

func TestIfElse(t *testing.T) {
	g := buildFrom(t, "int f(int a) { if (a) { a++; } else { a--; } return a; }")
	if got := g.Cyclomatic(); got != 2 {
		t.Errorf("cyclomatic = %d, want 2", got)
	}
}

func TestNestedIf(t *testing.T) {
	g := buildFrom(t, "int f(int a) { if (a) { if (a > 1) { a++; } } return a; }")
	if got := g.Cyclomatic(); got != 3 {
		t.Errorf("cyclomatic = %d, want 3", got)
	}
}

func TestWhileLoop(t *testing.T) {
	g := buildFrom(t, "int f(int a) { while (a > 0) { a--; } return a; }")
	if got := g.Cyclomatic(); got != 2 {
		t.Errorf("cyclomatic = %d, want 2", got)
	}
}

func TestDoWhile(t *testing.T) {
	g := buildFrom(t, "int f(int a) { do { a--; } while (a > 0); return a; }")
	if got := g.Cyclomatic(); got != 2 {
		t.Errorf("cyclomatic = %d, want 2", got)
	}
}

func TestForLoop(t *testing.T) {
	g := buildFrom(t, "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }")
	if got := g.Cyclomatic(); got != 2 {
		t.Errorf("cyclomatic = %d, want 2", got)
	}
}

func TestSwitchCases(t *testing.T) {
	g := buildFrom(t, `
int f(int a) {
    switch (a) {
    case 0: a = 1; break;
    case 1: a = 2; break;
    default: a = 0;
    }
    return a;
}`)
	// switch with 2 cases + default: complexity 3 (E-N+2 counts each case
	// edge; default covers the remaining path).
	if got := g.Cyclomatic(); got != 3 {
		t.Errorf("cyclomatic = %d, want 3", got)
	}
}

func TestMultipleReturnsExitEdges(t *testing.T) {
	g := buildFrom(t, `
int f(int a) {
    if (a < 0) return -1;
    if (a == 0) return 0;
    return 1;
}`)
	if got := g.ExitEdges(); got != 3 {
		t.Errorf("exit edges = %d, want 3", got)
	}
}

func TestGotoEdge(t *testing.T) {
	g := buildFrom(t, `
int f(int a) {
    if (a < 0) goto fail;
    return a;
fail:
    return -1;
}`)
	if got := g.Cyclomatic(); got < 2 {
		t.Errorf("cyclomatic = %d, want >= 2", got)
	}
	if got := g.ExitEdges(); got != 2 {
		t.Errorf("exit edges = %d, want 2", got)
	}
}

func TestBreakContinue(t *testing.T) {
	g := buildFrom(t, `
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i == 3) continue;
        if (i == 7) break;
        s += i;
    }
    return s;
}`)
	if got := g.Cyclomatic(); got != 4 {
		t.Errorf("cyclomatic = %d, want 4", got)
	}
}

func TestDecisionInventory(t *testing.T) {
	g := buildFrom(t, `
int f(int a, int b) {
    if (a > 0 && b > 0) { a++; }
    while (a < 10) { a++; }
    for (int i = 0; i < b; i++) { a += i; }
    switch (a) { case 1: b = 1; break; case 2: b = 2; break; }
    return a > b ? a : b;
}`)
	var kinds []DecisionKind
	for _, d := range g.Decisions {
		kinds = append(kinds, d.Kind)
	}
	want := []DecisionKind{DecisionIf, DecisionWhile, DecisionFor, DecisionCase, DecisionCase, DecisionTernary}
	if len(kinds) != len(want) {
		t.Fatalf("decisions = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("decision %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestReachability(t *testing.T) {
	g := buildFrom(t, `
int f(int a) {
    return a;
    a++;
}`)
	reach := g.Reachable()
	if !reach[g.Entry.ID] || !reach[g.Exit.ID] {
		t.Error("entry/exit must be reachable")
	}
	// The a++ block after return must be unreachable.
	unreachable := 0
	for _, n := range g.Nodes {
		if !reach[n.ID] {
			unreachable++
		}
	}
	if unreachable == 0 {
		t.Error("expected an unreachable block after return")
	}
}

func TestPrototypeBuildsNil(t *testing.T) {
	f := &srcfile.File{Path: "t.c", Lang: srcfile.LangC, Src: "int f(int a);"}
	tu, _ := ccparse.Parse(f, ccparse.Options{})
	for _, d := range tu.Decls {
		if fd, ok := d.(*ccast.FuncDecl); ok {
			if g := Build(fd); g != nil {
				t.Error("prototype should build nil graph")
			}
		}
	}
}

// Property: for randomly generated structured functions with simple (non
// short-circuit) conditions, graph cyclomatic complexity equals the number
// of simple decisions + 1, where a switch with k cases and no default
// contributes k and with default contributes k (default absorbs one path).
func TestCyclomaticMatchesDecisionsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		gen := &stmtGen{rng: rng, varCount: 2}
		body, decisions := gen.genStmts(3, 2)
		src := "int f(int a, int b) {\n" + body + "return a;\n}\n"
		g := buildFrom(t, src)
		want := decisions + 1
		if got := g.Cyclomatic(); got != want {
			t.Fatalf("trial %d: cyclomatic = %d, want %d\nsrc:\n%s", trial, got, want, src)
		}
	}
}

type stmtGen struct {
	rng      *rand.Rand
	varCount int
}

// genStmts emits up to n statements at the given max nesting depth,
// returning source text and the number of decision points generated.
func (g *stmtGen) genStmts(n, depth int) (string, int) {
	var sb strings.Builder
	decisions := 0
	count := 1 + g.rng.Intn(n)
	for i := 0; i < count; i++ {
		s, d := g.genStmt(depth)
		sb.WriteString(s)
		decisions += d
	}
	return sb.String(), decisions
}

func (g *stmtGen) genStmt(depth int) (string, int) {
	choice := g.rng.Intn(6)
	if depth == 0 {
		choice = g.rng.Intn(2) // only simple statements at depth 0
	}
	switch choice {
	case 0:
		return "a = a + 1;\n", 0
	case 1:
		return "b = a * 2;\n", 0
	case 2:
		inner, d := g.genStmts(2, depth-1)
		return fmt.Sprintf("if (a > %d) {\n%s}\n", g.rng.Intn(10), inner), d + 1
	case 3:
		inner, d := g.genStmts(2, depth-1)
		alt, d2 := g.genStmts(2, depth-1)
		return fmt.Sprintf("if (b < %d) {\n%s} else {\n%s}\n", g.rng.Intn(10), inner, alt), d + d2 + 1
	case 4:
		inner, d := g.genStmts(2, depth-1)
		return fmt.Sprintf("while (a < %d) {\na = a + 1;\n%s}\n", 5+g.rng.Intn(5), inner), d + 1
	default:
		inner, d := g.genStmts(2, depth-1)
		return fmt.Sprintf("for (int i = 0; i < %d; i++) {\n%s}\n", 1+g.rng.Intn(5), inner), d + 1
	}
}
