package cfg

import (
	"testing"

	"repro/internal/ccparse"
	"repro/internal/srcfile"
)

func TestInfiniteForLoop(t *testing.T) {
	g := buildFrom(t, `
int f(int a) {
    for (;;) {
        a++;
        if (a > 10) { break; }
    }
    return a;
}`)
	// for(;;) has no condition edge; the if provides the only decision.
	if got := g.Cyclomatic(); got != 2 {
		t.Errorf("cyclomatic = %d, want 2", got)
	}
	if got := g.ExitEdges(); got != 1 {
		t.Errorf("exit edges = %d, want 1", got)
	}
}

func TestSwitchWithoutDefault(t *testing.T) {
	g := buildFrom(t, `
int f(int a) {
    switch (a) {
    case 1: a = 10; break;
    case 2: a = 20; break;
    }
    return a;
}`)
	// Without default the switch head gains a direct edge to the exit of
	// the switch (the "no case matched" path).
	if got := g.Cyclomatic(); got != 3 {
		t.Errorf("cyclomatic = %d, want 3", got)
	}
}

func TestSwitchFallthroughEdges(t *testing.T) {
	g := buildFrom(t, `
int f(int a) {
    int acc = 0;
    switch (a) {
    case 1:
        acc = 1;
    case 2:
        acc += 2;
        break;
    default:
        acc = -1;
    }
    return acc;
}`)
	// Fallthrough adds an edge from case 1's body to case 2's body.
	if got := g.Cyclomatic(); got < 3 {
		t.Errorf("cyclomatic = %d, want >= 3 with fallthrough edge", got)
	}
}

func TestEmptyFunctionGraph(t *testing.T) {
	g := buildFrom(t, "void f() { }")
	if got := g.Cyclomatic(); got != 1 {
		t.Errorf("cyclomatic = %d, want 1", got)
	}
	reach := g.Reachable()
	if !reach[g.Exit.ID] {
		t.Error("exit unreachable in empty function")
	}
}

func TestContinueOnlyLoop(t *testing.T) {
	g := buildFrom(t, `
void f(int n) {
    for (int i = 0; i < n; i++) {
        if (i == 2) { continue; }
        n--;
    }
}`)
	if got := g.Cyclomatic(); got != 3 {
		t.Errorf("cyclomatic = %d, want 3", got)
	}
}

func TestNestedLoopsDecisions(t *testing.T) {
	g := buildFrom(t, `
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < i; j++) {
            while (s > 100) { s -= 10; }
            s += j;
        }
    }
    return s;
}`)
	if got := len(g.Decisions); got != 3 {
		t.Errorf("decisions = %d, want 3", got)
	}
	if got := g.Cyclomatic(); got != 4 {
		t.Errorf("cyclomatic = %d, want 4", got)
	}
}

func TestDecisionKindStrings(t *testing.T) {
	kinds := []DecisionKind{DecisionIf, DecisionWhile, DecisionDoWhile, DecisionFor, DecisionCase, DecisionTernary}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("bad decision kind name %q", s)
		}
		seen[s] = true
	}
}

func TestGraphOnParsedCUDAKernel(t *testing.T) {
	f := &srcfile.File{Path: "k.cu", Lang: srcfile.LangCUDA, Src: `
__global__ void kern(float* x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) {
        return;
    }
    x[i] = 0.0f;
}`}
	tu, errs := ccparse.Parse(f, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	g := Build(tu.Funcs()[0])
	if g.ExitEdges() != 2 {
		t.Errorf("kernel exit edges = %d, want 2 (early return + fall-through)", g.ExitEdges())
	}
}
