package cinterp

import (
	"testing"

	"repro/internal/ccparse"
	"repro/internal/srcfile"
)

func mustMachine(t *testing.T, src string) *Machine {
	t.Helper()
	f := &srcfile.File{Path: "t.c", Lang: srcfile.LangC, Src: src}
	tu, errs := ccparse.Parse(f, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	return NewMachine(tu)
}

func TestValueConversions(t *testing.T) {
	if IntVal(5).AsFloat() != 5 {
		t.Error("int→float")
	}
	if FloatVal(3.9).AsInt() != 3 {
		t.Error("float→int must truncate")
	}
	if FloatVal(-3.9).AsInt() != -3 {
		t.Error("negative float→int must truncate toward zero")
	}
	if NullPtr().AsInt() != 0 {
		t.Error("null pointer as int")
	}
	blk := make([]Value, 1)
	if PtrVal(blk, 0).AsInt() != 1 {
		t.Error("non-null pointer truthiness as int")
	}
}

func TestValueTruthiness(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{IntVal(0), false}, {IntVal(-1), true}, {FloatVal(0), false},
		{FloatVal(0.001), true}, {NullPtr(), false},
		{PtrVal(make([]Value, 1), 0), true},
	}
	for _, c := range cases {
		if c.v.Truthy() != c.want {
			t.Errorf("Truthy(%v) = %v", c.v, c.v.Truthy())
		}
	}
}

func TestValueStrings(t *testing.T) {
	for _, v := range []Value{IntVal(1), FloatVal(2.5), NullPtr(), PtrVal(make([]Value, 3), 1)} {
		if v.String() == "" {
			t.Error("empty value string")
		}
	}
}

func TestGlobalInitializerExpression(t *testing.T) {
	m := mustMachine(t, `
int base = 10 * 4 + 2;
int get_base() { return base; }`)
	if got := callInt(t, m, "get_base"); got != 42 {
		t.Errorf("global init = %d, want 42", got)
	}
}

func TestNestedCalls(t *testing.T) {
	m := mustMachine(t, `
int inc(int x) { return x + 1; }
int f(int x) { return inc(inc(inc(x))); }`)
	if got := callInt(t, m, "f", IntVal(0)); got != 3 {
		t.Errorf("nested calls = %d", got)
	}
}

func TestScopingBlockLocals(t *testing.T) {
	m := mustMachine(t, `
int f(int a) {
    int x = 1;
    {
        int x = 100;
        a += x;
    }
    return a + x;
}`)
	// a=0: 0+100+1 = 101.
	if got := callInt(t, m, "f", IntVal(0)); got != 101 {
		t.Errorf("block scoping = %d, want 101", got)
	}
}

func TestForScopeLeak(t *testing.T) {
	m := mustMachine(t, `
int f(int n) {
    int total = 0;
    for (int i = 0; i < n; i++) { total += i; }
    for (int i = 0; i < n; i++) { total += i; }
    return total;
}`)
	if got := callInt(t, m, "f", IntVal(4)); got != 12 {
		t.Errorf("two for loops = %d, want 12", got)
	}
}

func TestPointerComparisonSemantics(t *testing.T) {
	m := mustMachine(t, `
int same(float* a, float* b) { return a == b; }`)
	blk := make([]Value, 4)
	if callInt(t, m, "same", PtrVal(blk, 0), PtrVal(blk, 0)) != 1 {
		t.Error("identical pointers must compare equal")
	}
	if callInt(t, m, "same", PtrVal(blk, 0), PtrVal(blk, 1)) != 0 {
		t.Error("offset pointers must compare unequal")
	}
	if callInt(t, m, "same", NullPtr(), NullPtr()) != 1 {
		t.Error("null == null")
	}
	if callInt(t, m, "same", PtrVal(blk, 0), NullPtr()) != 0 {
		t.Error("ptr == null must be false")
	}
}

func TestPointerDifference(t *testing.T) {
	m := mustMachine(t, `
int dist(float* a) {
    float* b = a + 5;
    return b - a;
}`)
	if got := callInt(t, m, "dist", PtrVal(make([]Value, 8), 0)); got != 5 {
		t.Errorf("pointer difference = %d", got)
	}
}

func TestNegativeModuloAndDivision(t *testing.T) {
	m := mustMachine(t, `
int mod(int a, int b) { return a % b; }
int div(int a, int b) { return a / b; }`)
	// C semantics: truncation toward zero.
	if got := callInt(t, m, "mod", IntVal(-7), IntVal(3)); got != -1 {
		t.Errorf("-7 %% 3 = %d, want -1", got)
	}
	if got := callInt(t, m, "div", IntVal(-7), IntVal(3)); got != -2 {
		t.Errorf("-7 / 3 = %d, want -2", got)
	}
}

func TestCastTruncation(t *testing.T) {
	m := mustMachine(t, `
int f(float x) { return (int)x + (int)(x * 2.0f); }`)
	if got := callInt(t, m, "f", FloatVal(1.9)); got != 1+3 {
		t.Errorf("cast arithmetic = %d, want 4", got)
	}
}

func TestWriteThroughFunctionPointerParam(t *testing.T) {
	m := mustMachine(t, `
void fill(float* dst, int n, float v) {
    for (int i = 0; i < n; i++) { dst[i] = v; }
}
float sum_after_fill(int n) {
    float buf[8];
    fill(buf, n, 2.5f);
    float s = 0;
    for (int i = 0; i < n; i++) { s += buf[i]; }
    return s;
}`)
	if got := callFloat(t, m, "sum_after_fill", IntVal(4)); got != 10 {
		t.Errorf("aliased write = %v, want 10", got)
	}
}

func TestVoidFunctionReturnsZeroValue(t *testing.T) {
	m := mustMachine(t, `void noop() { }`)
	v, err := m.Call("noop")
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 0 {
		t.Errorf("void return = %v", v)
	}
}

func TestEarlyReturnSkipsRest(t *testing.T) {
	m := mustMachine(t, `
int calls = 0;
int side() { calls++; return 1; }
int f(int a) {
    if (a > 0) { return 0; }
    side();
    return calls;
}
int observed() { return calls; }`)
	callInt(t, m, "f", IntVal(5))
	if got := callInt(t, m, "observed"); got != 0 {
		t.Errorf("side effect after return: calls = %d", got)
	}
}

func TestDeepRecursionBudget(t *testing.T) {
	m := mustMachine(t, `
int down(int n) {
    if (n <= 0) { return 0; }
    return down(n - 1);
}`)
	m.MaxSteps = 100000
	if _, err := m.Call("down", IntVal(1_000_000)); err == nil {
		t.Error("expected budget exhaustion on deep recursion")
	}
}

func TestStringLiteralArgumentsAreInert(t *testing.T) {
	m := mustMachine(t, `
int f() {
    printf("value: %d\n", 42);
    return 1;
}`)
	if got := callInt(t, m, "f"); got != 1 {
		t.Errorf("printf flow = %d", got)
	}
	if m.Printed != 1 {
		t.Errorf("printed = %d", m.Printed)
	}
}

func TestCompoundAssignOnArrayElement(t *testing.T) {
	m := mustMachine(t, `
int f() {
    int a[3];
    a[0] = 1; a[1] = 2; a[2] = 3;
    a[1] *= 10;
    a[2] += a[1];
    return a[2];
}`)
	if got := callInt(t, m, "f"); got != 23 {
		t.Errorf("compound on element = %d, want 23", got)
	}
}
