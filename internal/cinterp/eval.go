package cinterp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ccast"
)

// cudaBuiltins are the CUDA geometry variables resolved via
// Machine.CUDAVars during kernel emulation.
var cudaBuiltins = map[string]bool{
	"threadIdx": true, "blockIdx": true, "blockDim": true, "gridDim": true,
}

// eval computes an expression value.
func (fr *frame) eval(e ccast.Expr) (Value, error) {
	if err := fr.m.step(e.Span().Start.Line); err != nil {
		return Value{}, err
	}
	switch x := e.(type) {
	case *litExpr:
		return x.v, nil
	case *ccast.IntLit:
		return IntVal(x.Value), nil
	case *ccast.FloatLit:
		return FloatVal(x.Value), nil
	case *ccast.CharLit:
		return IntVal(x.Value), nil
	case *ccast.StringLit:
		// Strings appear only as printf formats; model as non-null ptr.
		blk := make([]Value, 1)
		return PtrVal(blk, 0), nil
	case *ccast.BoolLit:
		if x.IsNull {
			return NullPtr(), nil
		}
		if x.Value {
			return IntVal(1), nil
		}
		return IntVal(0), nil

	case *ccast.Ident:
		if x.Name == "NULL" {
			return NullPtr(), nil
		}
		if blk, ok := fr.lookup(x.Name); ok {
			// Arrays decay to pointers when the block is larger than a
			// scalar cell; scalars load their single element.
			if len(blk) > 1 {
				return PtrVal(blk, 0), nil
			}
			return blk[0], nil
		}
		return Value{}, &RuntimeError{
			Msg: fmt.Sprintf("undefined identifier %q", x.Name), Line: x.Span().Start.Line,
		}

	case *ccast.Paren:
		return fr.eval(x.X)

	case *ccast.Unary:
		return fr.evalUnary(x)

	case *ccast.Postfix:
		blk, off, err := fr.lvalue(x.X)
		if err != nil {
			return Value{}, err
		}
		old := blk[off]
		delta := int64(1)
		if x.Op == "--" {
			delta = -1
		}
		blk[off] = addValue(old, delta)
		return old, nil

	case *ccast.Binary:
		return fr.evalBinary(x)

	case *ccast.Assign:
		return fr.evalAssign(x)

	case *ccast.Cond:
		c, err := fr.evalDecision(x, x.C)
		if err != nil {
			return Value{}, err
		}
		if c {
			return fr.eval(x.T)
		}
		return fr.eval(x.F)

	case *ccast.Index:
		blk, off, err := fr.lvalue(x)
		if err != nil {
			return Value{}, err
		}
		return blk[off], nil

	case *ccast.Member:
		// CUDA geometry: threadIdx.x etc.
		if id, ok := x.X.(*ccast.Ident); ok && cudaBuiltins[id.Name] {
			return fr.cudaComponent(id.Name, x.Name, x.Span().Start.Line)
		}
		return Value{}, &RuntimeError{
			Msg: fmt.Sprintf("member access .%s not supported", x.Name), Line: x.Span().Start.Line,
		}

	case *ccast.Cast:
		v, err := fr.eval(x.X)
		if err != nil {
			return Value{}, err
		}
		return castTo(v, x.To), nil

	case *ccast.SizeofExpr:
		if x.Type != nil {
			return IntVal(sizeofType(x.Type)), nil
		}
		return IntVal(4), nil

	case *ccast.Call:
		return fr.evalCall(x)

	case *ccast.KernelLaunch:
		if fr.m.LaunchHandler == nil {
			return Value{}, &RuntimeError{
				Msg:  "kernel launch requires the cuda emulation layer",
				Line: x.Span().Start.Line,
			}
		}
		id, ok := x.Fun.(*ccast.Ident)
		if !ok {
			return Value{}, &RuntimeError{Msg: "unsupported kernel expression", Line: x.Span().Start.Line}
		}
		config := make([]Value, len(x.Config))
		for i, c := range x.Config {
			v, err := fr.eval(c)
			if err != nil {
				return Value{}, err
			}
			config[i] = v
		}
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := fr.eval(a)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		if err := fr.m.LaunchHandler(id.Name, config, args); err != nil {
			return Value{}, err
		}
		return IntVal(0), nil

	case *ccast.NewExpr:
		n := 1
		if x.Count != nil {
			cv, err := fr.eval(x.Count)
			if err != nil {
				return Value{}, err
			}
			n = int(cv.AsInt())
		}
		if n < 1 {
			n = 1
		}
		blk := make([]Value, n)
		if isFloatType(x.Type) {
			for i := range blk {
				blk[i] = FloatVal(0)
			}
		}
		return PtrVal(blk, 0), nil

	case *ccast.DeleteExpr:
		_, err := fr.eval(x.X)
		return IntVal(0), err

	case *ccast.Comma:
		if _, err := fr.eval(x.L); err != nil {
			return Value{}, err
		}
		return fr.eval(x.R)

	case *ccast.InitList:
		// Appears as a value only in scalar contexts; take first element.
		if len(x.Elems) > 0 {
			return fr.eval(x.Elems[0])
		}
		return IntVal(0), nil

	default:
		return Value{}, &RuntimeError{
			Msg: fmt.Sprintf("unsupported expression %T", e), Line: e.Span().Start.Line,
		}
	}
}

func (fr *frame) cudaComponent(builtin, comp string, line int) (Value, error) {
	vars := fr.m.CUDAVars
	if vars == nil {
		return Value{}, &RuntimeError{
			Msg: fmt.Sprintf("%s.%s used outside kernel emulation", builtin, comp), Line: line,
		}
	}
	xyz := vars[builtin]
	switch comp {
	case "x":
		return IntVal(xyz[0]), nil
	case "y":
		return IntVal(xyz[1]), nil
	case "z":
		return IntVal(xyz[2]), nil
	default:
		return Value{}, &RuntimeError{Msg: fmt.Sprintf("unknown component %q", comp), Line: line}
	}
}

func (fr *frame) evalUnary(x *ccast.Unary) (Value, error) {
	switch x.Op {
	case "&":
		blk, off, err := fr.lvalue(x.X)
		if err != nil {
			return Value{}, err
		}
		return PtrVal(blk, off), nil
	case "*":
		v, err := fr.eval(x.X)
		if err != nil {
			return Value{}, err
		}
		if v.Kind != KindPtr || v.Blk == nil || v.Off < 0 || v.Off >= len(v.Blk) {
			return Value{}, &RuntimeError{Msg: "invalid pointer dereference", Line: x.Span().Start.Line}
		}
		return v.Blk[v.Off], nil
	case "++", "--":
		blk, off, err := fr.lvalue(x.X)
		if err != nil {
			return Value{}, err
		}
		delta := int64(1)
		if x.Op == "--" {
			delta = -1
		}
		blk[off] = addValue(blk[off], delta)
		return blk[off], nil
	case "-":
		v, err := fr.eval(x.X)
		if err != nil {
			return Value{}, err
		}
		if v.Kind == KindFloat {
			return FloatVal(-v.F), nil
		}
		return IntVal(-v.AsInt()), nil
	case "+":
		return fr.eval(x.X)
	case "!":
		v, err := fr.eval(x.X)
		if err != nil {
			return Value{}, err
		}
		if v.Truthy() {
			return IntVal(0), nil
		}
		return IntVal(1), nil
	case "~":
		v, err := fr.eval(x.X)
		if err != nil {
			return Value{}, err
		}
		return IntVal(^v.AsInt()), nil
	default:
		return Value{}, &RuntimeError{Msg: fmt.Sprintf("unsupported unary %q", x.Op), Line: x.Span().Start.Line}
	}
}

// addValue adds an integer delta preserving numeric/pointer kind.
func addValue(v Value, delta int64) Value {
	switch v.Kind {
	case KindFloat:
		return FloatVal(v.F + float64(delta))
	case KindPtr:
		return PtrVal(v.Blk, v.Off+int(delta))
	default:
		return IntVal(v.I + delta)
	}
}

func (fr *frame) evalBinary(x *ccast.Binary) (Value, error) {
	// Short-circuit operators outside decision context still short-circuit.
	if x.Op == "&&" || x.Op == "||" {
		l, err := fr.eval(x.L)
		if err != nil {
			return Value{}, err
		}
		if x.Op == "&&" && !l.Truthy() {
			return IntVal(0), nil
		}
		if x.Op == "||" && l.Truthy() {
			return IntVal(1), nil
		}
		r, err := fr.eval(x.R)
		if err != nil {
			return Value{}, err
		}
		if r.Truthy() {
			return IntVal(1), nil
		}
		return IntVal(0), nil
	}

	l, err := fr.eval(x.L)
	if err != nil {
		return Value{}, err
	}
	r, err := fr.eval(x.R)
	if err != nil {
		return Value{}, err
	}

	// Pointer arithmetic and comparison.
	if l.Kind == KindPtr || r.Kind == KindPtr {
		return evalPtrBinary(x, l, r)
	}

	isF := l.Kind == KindFloat || r.Kind == KindFloat
	switch x.Op {
	case "+", "-", "*", "/", "%":
		if isF {
			a, b := l.AsFloat(), r.AsFloat()
			switch x.Op {
			case "+":
				return FloatVal(a + b), nil
			case "-":
				return FloatVal(a - b), nil
			case "*":
				return FloatVal(a * b), nil
			case "/":
				if b == 0 {
					return FloatVal(math.Inf(sign(a))), nil
				}
				return FloatVal(a / b), nil
			case "%":
				return FloatVal(math.Mod(a, b)), nil
			}
		}
		a, b := l.AsInt(), r.AsInt()
		switch x.Op {
		case "+":
			return IntVal(a + b), nil
		case "-":
			return IntVal(a - b), nil
		case "*":
			return IntVal(a * b), nil
		case "/":
			if b == 0 {
				return Value{}, &RuntimeError{Msg: "integer division by zero", Line: x.Span().Start.Line}
			}
			return IntVal(a / b), nil
		case "%":
			if b == 0 {
				return Value{}, &RuntimeError{Msg: "integer modulo by zero", Line: x.Span().Start.Line}
			}
			return IntVal(a % b), nil
		}
	case "<", ">", "<=", ">=", "==", "!=":
		var res bool
		if isF {
			a, b := l.AsFloat(), r.AsFloat()
			switch x.Op {
			case "<":
				res = a < b
			case ">":
				res = a > b
			case "<=":
				res = a <= b
			case ">=":
				res = a >= b
			case "==":
				res = a == b
			case "!=":
				res = a != b
			}
		} else {
			a, b := l.AsInt(), r.AsInt()
			switch x.Op {
			case "<":
				res = a < b
			case ">":
				res = a > b
			case "<=":
				res = a <= b
			case ">=":
				res = a >= b
			case "==":
				res = a == b
			case "!=":
				res = a != b
			}
		}
		return boolVal(res), nil
	case "&", "|", "^", "<<", ">>":
		a, b := l.AsInt(), r.AsInt()
		switch x.Op {
		case "&":
			return IntVal(a & b), nil
		case "|":
			return IntVal(a | b), nil
		case "^":
			return IntVal(a ^ b), nil
		case "<<":
			return IntVal(a << uint(b&63)), nil
		case ">>":
			return IntVal(a >> uint(b&63)), nil
		}
	}
	return Value{}, &RuntimeError{Msg: fmt.Sprintf("unsupported binary %q", x.Op), Line: x.Span().Start.Line}
}

func evalPtrBinary(x *ccast.Binary, l, r Value) (Value, error) {
	switch x.Op {
	case "+":
		if l.Kind == KindPtr {
			return PtrVal(l.Blk, l.Off+int(r.AsInt())), nil
		}
		return PtrVal(r.Blk, r.Off+int(l.AsInt())), nil
	case "-":
		if l.Kind == KindPtr && r.Kind == KindPtr {
			return IntVal(int64(l.Off - r.Off)), nil
		}
		if l.Kind == KindPtr {
			return PtrVal(l.Blk, l.Off-int(r.AsInt())), nil
		}
	case "==", "!=":
		same := samePtr(l, r)
		if x.Op == "!=" {
			same = !same
		}
		return boolVal(same), nil
	case "<", ">", "<=", ">=":
		a, b := int64(l.Off), int64(r.Off)
		var res bool
		switch x.Op {
		case "<":
			res = a < b
		case ">":
			res = a > b
		case "<=":
			res = a <= b
		case ">=":
			res = a >= b
		}
		return boolVal(res), nil
	}
	return Value{}, &RuntimeError{Msg: fmt.Sprintf("unsupported pointer op %q", x.Op), Line: x.Span().Start.Line}
}

func samePtr(l, r Value) bool {
	lNull := l.Kind != KindPtr || l.Blk == nil
	rNull := r.Kind != KindPtr || r.Blk == nil
	if lNull || rNull {
		// Comparing against null (or integer 0).
		lz := lNull && l.AsInt() == 0 || l.IsNull()
		rz := rNull && r.AsInt() == 0 || r.IsNull()
		return lz == rz && (lz || sameBacking(l, r))
	}
	return sameBacking(l, r) && l.Off == r.Off
}

func sameBacking(l, r Value) bool {
	if len(l.Blk) == 0 || len(r.Blk) == 0 {
		return len(l.Blk) == len(r.Blk)
	}
	return &l.Blk[0] == &r.Blk[0]
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

func sign(a float64) int {
	if a < 0 {
		return -1
	}
	return 1
}

func (fr *frame) evalAssign(x *ccast.Assign) (Value, error) {
	blk, off, err := fr.lvalue(x.L)
	if err != nil {
		return Value{}, err
	}
	r, err := fr.eval(x.R)
	if err != nil {
		return Value{}, err
	}
	if x.Op == "=" {
		// Preserve float cell kind on plain stores into float slots.
		if blk[off].Kind == KindFloat && r.Kind == KindInt {
			r = FloatVal(r.AsFloat())
		}
		blk[off] = r
		return r, nil
	}
	op := strings.TrimSuffix(x.Op, "=")
	fake := &ccast.Binary{Op: op, L: &litExpr{v: blk[off]}, R: &litExpr{v: r}}
	fake.SetSpan(x.Span())
	v, err := fr.evalBinary(fake)
	if err != nil {
		return Value{}, err
	}
	blk[off] = v
	return v, nil
}

// litExpr wraps an already-computed value as an expression operand for
// compound assignment reuse of evalBinary.
type litExpr struct {
	ccast.Ident
	v Value
}

// lvalue resolves an expression to a (block, offset) storage location.
func (fr *frame) lvalue(e ccast.Expr) ([]Value, int, error) {
	switch x := e.(type) {
	case *ccast.Ident:
		if blk, ok := fr.lookup(x.Name); ok {
			return blk, 0, nil
		}
		return nil, 0, &RuntimeError{
			Msg: fmt.Sprintf("undefined identifier %q", x.Name), Line: x.Span().Start.Line,
		}
	case *ccast.Paren:
		return fr.lvalue(x.X)
	case *ccast.Unary:
		if x.Op == "*" {
			v, err := fr.eval(x.X)
			if err != nil {
				return nil, 0, err
			}
			if v.Kind != KindPtr || v.Blk == nil || v.Off < 0 || v.Off >= len(v.Blk) {
				return nil, 0, &RuntimeError{Msg: "invalid pointer store", Line: x.Span().Start.Line}
			}
			return v.Blk, v.Off, nil
		}
	case *ccast.Index:
		base, err := fr.eval(x.X)
		if err != nil {
			return nil, 0, err
		}
		idx, err := fr.eval(x.I)
		if err != nil {
			return nil, 0, err
		}
		if base.Kind != KindPtr || base.Blk == nil {
			return nil, 0, &RuntimeError{Msg: "indexing non-pointer", Line: x.Span().Start.Line}
		}
		off := base.Off + int(idx.AsInt())
		if off < 0 || off >= len(base.Blk) {
			return nil, 0, &RuntimeError{
				Msg:  fmt.Sprintf("index %d out of bounds (len %d)", off, len(base.Blk)),
				Line: x.Span().Start.Line,
			}
		}
		return base.Blk, off, nil
	}
	return nil, 0, &RuntimeError{
		Msg: fmt.Sprintf("expression %T is not an lvalue", e), Line: e.Span().Start.Line,
	}
}

// evalCall dispatches defined functions and builtins.
func (fr *frame) evalCall(x *ccast.Call) (Value, error) {
	name := ""
	switch f := x.Fun.(type) {
	case *ccast.Ident:
		name = f.Name
		if i := strings.LastIndex(name, "::"); i >= 0 {
			name = name[i+2:]
		}
	case *ccast.Member:
		name = f.Name
	default:
		return Value{}, &RuntimeError{Msg: "unsupported call target", Line: x.Span().Start.Line}
	}

	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := fr.eval(a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}

	if fn, ok := fr.m.Funcs[name]; ok {
		return fr.m.call(fn, args)
	}
	return fr.m.builtin(name, args, x.Span().Start.Line)
}

// builtin implements the libc/libm/CUDA-host subset the corpora use.
func (m *Machine) builtin(name string, args []Value, line int) (Value, error) {
	f1 := func(f func(float64) float64) (Value, error) {
		if len(args) < 1 {
			return Value{}, &RuntimeError{Msg: name + ": missing argument", Line: line}
		}
		return FloatVal(f(args[0].AsFloat())), nil
	}
	switch name {
	case "printf", "fprintf", "puts", "putchar":
		m.Printed++
		return IntVal(0), nil
	case "sqrt", "sqrtf":
		return f1(math.Sqrt)
	case "fabs", "fabsf":
		return f1(math.Abs)
	case "exp", "expf":
		return f1(math.Exp)
	case "log", "logf":
		return f1(math.Log)
	case "floor", "floorf":
		return f1(math.Floor)
	case "ceil", "ceilf":
		return f1(math.Ceil)
	case "pow", "powf":
		if len(args) < 2 {
			return Value{}, &RuntimeError{Msg: "pow: missing argument", Line: line}
		}
		return FloatVal(math.Pow(args[0].AsFloat(), args[1].AsFloat())), nil
	case "fmax", "fmaxf":
		return FloatVal(math.Max(args[0].AsFloat(), args[1].AsFloat())), nil
	case "fmin", "fminf":
		return FloatVal(math.Min(args[0].AsFloat(), args[1].AsFloat())), nil
	case "abs":
		v := args[0].AsInt()
		if v < 0 {
			v = -v
		}
		return IntVal(v), nil
	case "malloc", "calloc":
		n := args[0].AsInt()
		if name == "calloc" && len(args) > 1 {
			n = args[0].AsInt() * args[1].AsInt()
		}
		elems := int(n / 4)
		if elems < 1 {
			elems = 1
		}
		return PtrVal(make([]Value, elems), 0), nil
	case "free":
		return IntVal(0), nil
	case "memset":
		if len(args) >= 3 && args[0].Kind == KindPtr && args[0].Blk != nil {
			fill := args[1]
			n := int(args[2].AsInt() / 4)
			for i := 0; i < n && args[0].Off+i < len(args[0].Blk); i++ {
				args[0].Blk[args[0].Off+i] = fill
			}
		}
		return args[0], nil
	case "memcpy":
		if len(args) >= 3 && args[0].Kind == KindPtr && args[1].Kind == KindPtr {
			n := int(args[2].AsInt() / 4)
			for i := 0; i < n; i++ {
				di, si := args[0].Off+i, args[1].Off+i
				if di < len(args[0].Blk) && si < len(args[1].Blk) {
					args[0].Blk[di] = args[1].Blk[si]
				}
			}
		}
		return args[0], nil
	case "assert":
		if len(args) == 1 && !args[0].Truthy() {
			return Value{}, &RuntimeError{Msg: "assertion failed", Line: line}
		}
		return IntVal(0), nil
	case "cudaDeviceSynchronize", "cudaGetLastError":
		return IntVal(0), nil
	default:
		return Value{}, &RuntimeError{
			Msg: fmt.Sprintf("call to undefined function %q", name), Line: line,
		}
	}
}

func castTo(v Value, t *ccast.Type) Value {
	if t.PtrDepth > 0 {
		if v.Kind == KindPtr {
			return v
		}
		if v.AsInt() == 0 {
			return NullPtr()
		}
		return v
	}
	if isFloatType(t) {
		return FloatVal(v.AsFloat())
	}
	switch t.Name {
	case "int", "long", "short", "unsigned", "signed", "char", "bool", "_Bool",
		"size_t", "int32_t", "int64_t", "uint32_t", "long long",
		"unsigned int", "unsigned long":
		return IntVal(v.AsInt())
	}
	return v
}

func sizeofType(t *ccast.Type) int64 {
	if t.PtrDepth > 0 {
		return 8
	}
	switch t.Name {
	case "double", "long double", "long long", "int64_t", "uint64_t", "long",
		"size_t":
		return 8
	case "char", "int8_t", "uint8_t", "bool", "_Bool":
		return 1
	case "short", "int16_t", "uint16_t":
		return 2
	default:
		return 4
	}
}
