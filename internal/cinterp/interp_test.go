package cinterp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/srcfile"
)

func machine(t *testing.T, src string) *Machine {
	t.Helper()
	f := &srcfile.File{Path: "t.c", Lang: srcfile.LangC, Src: src}
	tu, errs := ccparse.Parse(f, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return NewMachine(tu)
}

func callInt(t *testing.T, m *Machine, name string, args ...Value) int64 {
	t.Helper()
	v, err := m.Call(name, args...)
	if err != nil {
		t.Fatalf("Call(%s): %v", name, err)
	}
	return v.AsInt()
}

func callFloat(t *testing.T, m *Machine, name string, args ...Value) float64 {
	t.Helper()
	v, err := m.Call(name, args...)
	if err != nil {
		t.Fatalf("Call(%s): %v", name, err)
	}
	return v.AsFloat()
}

func TestArithmetic(t *testing.T) {
	m := machine(t, `
int calc(int a, int b) {
    return (a + b) * 2 - a / b + a % b;
}`)
	if got := callInt(t, m, "calc", IntVal(7), IntVal(3)); got != 19 {
		t.Errorf("calc(7,3) = %d, want 19", got)
	}
}

func TestFloatPromotion(t *testing.T) {
	m := machine(t, `
float mix(int a, float b) { return a / 2 + b * 2.0f; }`)
	got := callFloat(t, m, "mix", IntVal(5), FloatVal(1.5))
	if got != 5.0 { // 5/2 = 2 (int div), + 3.0
		t.Errorf("mix = %v, want 5", got)
	}
}

func TestControlFlow(t *testing.T) {
	m := machine(t, `
int clamp(int x, int lo, int hi) {
    if (x < lo) return lo;
    if (x > hi) return hi;
    return x;
}`)
	cases := [][4]int64{{5, 0, 10, 5}, {-3, 0, 10, 0}, {42, 0, 10, 10}}
	for _, c := range cases {
		if got := callInt(t, m, "clamp", IntVal(c[0]), IntVal(c[1]), IntVal(c[2])); got != c[3] {
			t.Errorf("clamp(%d,%d,%d) = %d, want %d", c[0], c[1], c[2], got, c[3])
		}
	}
}

func TestLoops(t *testing.T) {
	m := machine(t, `
int sum_to(int n) {
    int s = 0;
    for (int i = 1; i <= n; i++) { s += i; }
    return s;
}
int count_down(int n) {
    int c = 0;
    while (n > 0) { n--; c++; }
    return c;
}
int do_once(int n) {
    int c = 0;
    do { c++; } while (c < n);
    return c;
}`)
	if got := callInt(t, m, "sum_to", IntVal(10)); got != 55 {
		t.Errorf("sum_to(10) = %d", got)
	}
	if got := callInt(t, m, "count_down", IntVal(7)); got != 7 {
		t.Errorf("count_down(7) = %d", got)
	}
	if got := callInt(t, m, "do_once", IntVal(0)); got != 1 {
		t.Errorf("do_once(0) = %d, want 1 (body runs once)", got)
	}
}

func TestBreakContinue(t *testing.T) {
	m := machine(t, `
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i == 2) continue;
        if (i == 5) break;
        s += i;
    }
    return s;
}`)
	// 0+1+3+4 = 8
	if got := callInt(t, m, "f", IntVal(10)); got != 8 {
		t.Errorf("f(10) = %d, want 8", got)
	}
}

func TestSwitch(t *testing.T) {
	m := machine(t, `
int classify(int x) {
    switch (x) {
    case 0: return 100;
    case 1:
    case 2: return 200;
    default: return 300;
    }
}`)
	for in, want := range map[int64]int64{0: 100, 1: 200, 2: 200, 9: 300} {
		if got := callInt(t, m, "classify", IntVal(in)); got != want {
			t.Errorf("classify(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSwitchFallthrough(t *testing.T) {
	m := machine(t, `
int f(int x) {
    int acc = 0;
    switch (x) {
    case 1: acc += 1;
    case 2: acc += 2; break;
    case 3: acc += 4;
    }
    return acc;
}`)
	for in, want := range map[int64]int64{1: 3, 2: 2, 3: 4, 9: 0} {
		if got := callInt(t, m, "f", IntVal(in)); got != want {
			t.Errorf("f(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestArraysAndPointers(t *testing.T) {
	m := machine(t, `
float sum_array(float* a, int n) {
    float s = 0;
    for (int i = 0; i < n; i++) { s += a[i]; }
    return s;
}
float run() {
    float data[4];
    for (int i = 0; i < 4; i++) { data[i] = (float)(i + 1); }
    return sum_array(data, 4);
}`)
	if got := callFloat(t, m, "run"); got != 10 {
		t.Errorf("run() = %v, want 10", got)
	}
}

func TestPointerArithmetic(t *testing.T) {
	m := machine(t, `
int f() {
    int a[5];
    int* p = a;
    *p = 10;
    *(p + 2) = 20;
    p++;
    *p = 15;
    return a[0] + a[1] + a[2];
}`)
	if got := callInt(t, m, "f"); got != 45 {
		t.Errorf("f() = %d, want 45", got)
	}
}

func TestAddressOfScalar(t *testing.T) {
	m := machine(t, `
void set42(int* p) { *p = 42; }
int f() {
    int x = 0;
    set42(&x);
    return x;
}`)
	if got := callInt(t, m, "f"); got != 42 {
		t.Errorf("f() = %d, want 42", got)
	}
}

func TestMallocFree(t *testing.T) {
	m := machine(t, `
float f(int n) {
    float* buf = (float*)malloc(n * sizeof(float));
    for (int i = 0; i < n; i++) { buf[i] = 2.0f; }
    float s = 0;
    for (int i = 0; i < n; i++) { s += buf[i]; }
    free(buf);
    return s;
}`)
	if got := callFloat(t, m, "f", IntVal(8)); got != 16 {
		t.Errorf("f(8) = %v, want 16", got)
	}
}

func TestGlobals(t *testing.T) {
	m := machine(t, `
int counter = 5;
void bump() { counter++; }
int get() { bump(); bump(); return counter; }`)
	if got := callInt(t, m, "get"); got != 7 {
		t.Errorf("get() = %d, want 7", got)
	}
}

func TestRecursionRuns(t *testing.T) {
	m := machine(t, `
int fact(int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
}`)
	if got := callInt(t, m, "fact", IntVal(6)); got != 720 {
		t.Errorf("fact(6) = %d", got)
	}
}

func TestMathBuiltins(t *testing.T) {
	m := machine(t, `
float f(float x) { return sqrtf(x) + fabsf(0.0f - 1.0f) + fmaxf(x, 2.0f); }`)
	got := callFloat(t, m, "f", FloatVal(9))
	if math.Abs(got-(3+1+9)) > 1e-9 {
		t.Errorf("f(9) = %v, want 13", got)
	}
}

func TestTernaryAndLogic(t *testing.T) {
	m := machine(t, `
int f(int a, int b) { return (a > 0 && b > 0) ? a + b : -1; }`)
	if got := callInt(t, m, "f", IntVal(2), IntVal(3)); got != 5 {
		t.Errorf("f(2,3) = %d", got)
	}
	if got := callInt(t, m, "f", IntVal(2), IntVal(-3)); got != -1 {
		t.Errorf("f(2,-3) = %d", got)
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	m := machine(t, `
int calls = 0;
int bump() { calls++; return 1; }
int f(int a) {
    if (a > 0 || bump()) { }
    return calls;
}`)
	if got := callInt(t, m, "f", IntVal(1)); got != 0 {
		t.Errorf("short circuit failed: calls = %d", got)
	}
}

func TestCompoundAssign(t *testing.T) {
	m := machine(t, `
int f(int a) {
    a += 3; a *= 2; a -= 1; a /= 3; a %= 4;
    a <<= 2; a >>= 1; a |= 8; a &= 12; a ^= 5;
    return a;
}`)
	want := int64(7)
	a := int64(5)
	a += 3
	a *= 2
	a -= 1
	a /= 3
	a %= 4
	a <<= 2
	a >>= 1
	a |= 8
	a &= 12
	a ^= 5
	want = a
	if got := callInt(t, m, "f", IntVal(5)); got != want {
		t.Errorf("f(5) = %d, want %d", got, want)
	}
}

func TestCUDABuiltinsViaVars(t *testing.T) {
	m := machine(t, `
int idx() { return blockIdx.x * blockDim.x + threadIdx.x; }`)
	m.CUDAVars = map[string][3]int64{
		"blockIdx": {2, 0, 0}, "blockDim": {64, 1, 1}, "threadIdx": {5, 0, 0},
	}
	if got := callInt(t, m, "idx"); got != 133 {
		t.Errorf("idx = %d, want 133", got)
	}
}

func TestInfiniteLoopBudget(t *testing.T) {
	m := machine(t, `void hang() { while (1) { } }`)
	m.MaxSteps = 10000
	if _, err := m.Call("hang"); err == nil {
		t.Fatal("expected step-budget error")
	}
}

func TestDivisionByZeroError(t *testing.T) {
	m := machine(t, `int f(int a) { return 10 / a; }`)
	if _, err := m.Call("f", IntVal(0)); err == nil {
		t.Fatal("expected division error")
	}
}

func TestOutOfBoundsError(t *testing.T) {
	m := machine(t, `
int f() {
    int a[3];
    return a[10];
}`)
	if _, err := m.Call("f"); err == nil {
		t.Fatal("expected bounds error")
	}
}

func TestUndefinedFunctionError(t *testing.T) {
	m := machine(t, `int f() { return mystery(); }`)
	if _, err := m.Call("f"); err == nil {
		t.Fatal("expected undefined function error")
	}
	if _, err := m.Call("nothere"); err == nil {
		t.Fatal("expected undefined entry error")
	}
}

func TestNullPointerChecks(t *testing.T) {
	m := machine(t, `
int safe(float* p) {
    if (p == NULL) return -1;
    return 1;
}`)
	if got := callInt(t, m, "safe", NullPtr()); got != -1 {
		t.Errorf("safe(NULL) = %d", got)
	}
	blk := make([]Value, 4)
	if got := callInt(t, m, "safe", PtrVal(blk, 0)); got != 1 {
		t.Errorf("safe(ptr) = %d", got)
	}
}

func TestInitList(t *testing.T) {
	m := machine(t, `
int f() {
    int a[3] = {10, 20, 30};
    return a[0] + a[1] + a[2];
}`)
	if got := callInt(t, m, "f"); got != 60 {
		t.Errorf("f() = %d, want 60", got)
	}
}

func TestMemset(t *testing.T) {
	m := machine(t, `
int f() {
    int a[4];
    memset(a, 0, 4 * sizeof(int));
    return a[0] + a[3];
}`)
	if got := callInt(t, m, "f"); got != 0 {
		t.Errorf("f() = %d, want 0", got)
	}
}

// Property: interpreted integer arithmetic matches Go semantics for a
// fixed expression shape across random inputs.
func TestArithmeticAgainstGoProperty(t *testing.T) {
	m := machine(t, `
int f(int a, int b) {
    if (b == 0) { return a; }
    return (a * 3 - b) / b + (a & b) - (a | 1);
}`)
	f := func(a, b int16) bool {
		got := callInt(t, m, "f", IntVal(int64(a)), IntVal(int64(b)))
		var want int64
		A, B := int64(a), int64(b)
		if B == 0 {
			want = A
		} else {
			want = (A*3-B)/B + (A & B) - (A | 1)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: sum over a filled array equals n*(n+1)/2 for random n.
func TestArraySumProperty(t *testing.T) {
	m := machine(t, `
int tri(int n) {
    int buf[64];
    int s = 0;
    for (int i = 0; i < n; i++) { buf[i] = i + 1; }
    for (int i = 0; i < n; i++) { s += buf[i]; }
    return s;
}`)
	f := func(n uint8) bool {
		k := int64(n % 65)
		m.Reset()
		return callInt(t, m, "tri", IntVal(k)) == k*(k+1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHooksFire(t *testing.T) {
	m := machine(t, `
int f(int a) {
    if (a > 0 && a < 10) { a++; }
    return a;
}`)
	var stmts, decisions, conds int
	m.Hooks = Hooks{
		OnStmt:      func(ccast.Stmt) { stmts++ },
		OnDecision:  func(ccast.Node, bool) { decisions++ },
		OnCondition: func(ccast.Node, ccast.Expr, bool) { conds++ },
	}
	callInt(t, m, "f", IntVal(5))
	if stmts < 3 {
		t.Errorf("stmts = %d", stmts)
	}
	if decisions != 1 {
		t.Errorf("decisions = %d", decisions)
	}
	if conds != 2 {
		t.Errorf("conds = %d (both legs of && should evaluate)", conds)
	}
}

func TestGotoUnsupportedAtRuntimeOnly(t *testing.T) {
	m := machine(t, `
int f(int a) {
    if (a > 0) { return a; }
    goto out;
out:
    return -1;
}`)
	// Path not taking goto works.
	if got := callInt(t, m, "f", IntVal(3)); got != 3 {
		t.Errorf("f(3) = %d", got)
	}
	// Path through goto errors (documented interpreter restriction).
	if _, err := m.Call("f", IntVal(-1)); err == nil {
		t.Error("goto execution should error")
	}
}
