package cinterp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ccast"
)

// Hooks receives execution events; the coverage package implements them.
// All fields are optional.
type Hooks struct {
	// OnStmt fires for every executed non-compound statement.
	OnStmt func(s ccast.Stmt)
	// OnDecision fires after a decision (if/while/do/for/?:) evaluates,
	// with the owning AST node and the outcome.
	OnDecision func(owner ccast.Node, outcome bool)
	// OnCondition fires for each evaluated leaf condition inside a
	// decision, in evaluation order (short-circuited leaves do not fire).
	OnCondition func(owner ccast.Node, leaf ccast.Expr, outcome bool)
	// OnCase fires when a switch case label is tested.
	OnCase func(c *ccast.CaseClause, matched bool)
}

// RuntimeError is an execution failure with location context.
type RuntimeError struct {
	Msg  string
	Line int
}

// Error implements the error interface.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error at line %d: %s", e.Line, e.Msg)
}

// Machine executes functions from a set of translation units.
type Machine struct {
	Funcs map[string]*ccast.FuncDecl
	Hooks Hooks
	// MaxSteps bounds execution to catch runaway loops (default 50M).
	MaxSteps int64
	// CUDAVars provides threadIdx/blockIdx/blockDim/gridDim components
	// when kernels run under emulation; keyed by builtin name, value is
	// [x, y, z].
	CUDAVars map[string][3]int64
	// LaunchHandler, when set, receives kernel launches
	// (fun<<<grid, block>>>(args)); the cuda package installs the
	// grid-iterating CPU emulation here. Without a handler, launches are
	// runtime errors.
	LaunchHandler func(kernel string, config, args []Value) error
	// Printed counts printf-family calls (output is discarded).
	Printed int

	steps   int64
	globals map[string][]Value
}

// NewMachine indexes the functions of the given units.
func NewMachine(units ...*ccast.TranslationUnit) *Machine {
	m := &Machine{
		Funcs:    make(map[string]*ccast.FuncDecl),
		MaxSteps: 50_000_000,
		globals:  make(map[string][]Value),
	}
	for _, tu := range units {
		for _, fn := range tu.Funcs() {
			name := fn.Name
			if i := strings.LastIndex(name, "::"); i >= 0 {
				name = name[i+2:]
			}
			if _, dup := m.Funcs[name]; !dup {
				m.Funcs[name] = fn
			}
		}
		for _, vd := range tu.GlobalVars() {
			for _, d := range vd.Names {
				blk := make([]Value, blockLen(d.Type))
				if d.Init != nil {
					if v, err := (&frame{m: m}).eval(d.Init); err == nil {
						blk[0] = v
					}
				}
				m.globals[d.Name] = blk
			}
		}
	}
	return m
}

// blockLen returns the element count a declaration allocates.
func blockLen(t *ccast.Type) int {
	n := 1
	for _, dim := range t.ArrayDims {
		if lit, ok := dim.(*ccast.IntLit); ok && lit.Value > 0 {
			n *= int(lit.Value)
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// control is the statement-level control signal.
type control int

const (
	ctrlNormal control = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// frame is one function activation.
type frame struct {
	m      *Machine
	scopes []map[string][]Value
	ret    Value
}

func (fr *frame) push() { fr.scopes = append(fr.scopes, make(map[string][]Value)) }
func (fr *frame) pop()  { fr.scopes = fr.scopes[:len(fr.scopes)-1] }

func (fr *frame) define(name string, blk []Value) {
	fr.scopes[len(fr.scopes)-1][name] = blk
}

func (fr *frame) lookup(name string) ([]Value, bool) {
	for i := len(fr.scopes) - 1; i >= 0; i-- {
		if blk, ok := fr.scopes[i][name]; ok {
			return blk, true
		}
	}
	if blk, ok := fr.m.globals[name]; ok {
		return blk, true
	}
	return nil, false
}

// Call executes a defined function by (unqualified) name.
func (m *Machine) Call(name string, args ...Value) (Value, error) {
	fn, ok := m.Funcs[name]
	if !ok {
		return Value{}, fmt.Errorf("cinterp: undefined function %q", name)
	}
	return m.call(fn, args)
}

// Reset clears the step budget between test-vector runs.
func (m *Machine) Reset() { m.steps = 0 }

func (m *Machine) call(fn *ccast.FuncDecl, args []Value) (Value, error) {
	fr := &frame{m: m}
	fr.push()
	for i, p := range fn.Params {
		blk := make([]Value, 1)
		if i < len(args) {
			blk[0] = args[i]
		}
		if p.Name != "" {
			fr.define(p.Name, blk)
		}
	}
	_, err := fr.execBlock(fn.Body)
	if err != nil {
		return Value{}, err
	}
	return fr.ret, nil
}

func (m *Machine) step(line int) error {
	m.steps++
	if m.steps > m.MaxSteps {
		return &RuntimeError{Msg: "step budget exhausted (possible infinite loop)", Line: line}
	}
	return nil
}

func (fr *frame) execBlock(b *ccast.Block) (control, error) {
	if b == nil {
		return ctrlNormal, nil
	}
	fr.push()
	defer fr.pop()
	for _, s := range b.Stmts {
		c, err := fr.exec(s)
		if err != nil || c != ctrlNormal {
			return c, err
		}
	}
	return ctrlNormal, nil
}

func (fr *frame) exec(s ccast.Stmt) (control, error) {
	m := fr.m
	if err := m.step(s.Span().Start.Line); err != nil {
		return ctrlNormal, err
	}
	if _, isBlock := s.(*ccast.Block); !isBlock && m.Hooks.OnStmt != nil {
		m.Hooks.OnStmt(s)
	}
	switch s := s.(type) {
	case *ccast.Block:
		return fr.execBlock(s)

	case *ccast.Empty:
		return ctrlNormal, nil

	case *ccast.ExprStmt:
		_, err := fr.eval(s.X)
		return ctrlNormal, err

	case *ccast.DeclStmt:
		for _, d := range s.Decl.Names {
			blk := make([]Value, blockLen(d.Type))
			if isFloatType(d.Type) && d.Type.PtrDepth == 0 {
				for i := range blk {
					blk[i] = FloatVal(0)
				}
			}
			if d.Init != nil {
				switch init := d.Init.(type) {
				case *ccast.InitList:
					for i, e := range init.Elems {
						if i >= len(blk) {
							break
						}
						v, err := fr.eval(e)
						if err != nil {
							return ctrlNormal, err
						}
						blk[i] = coerce(v, d.Type)
					}
				default:
					v, err := fr.eval(d.Init)
					if err != nil {
						return ctrlNormal, err
					}
					blk[0] = coerce(v, d.Type)
				}
			}
			fr.define(d.Name, blk)
		}
		return ctrlNormal, nil

	case *ccast.If:
		cond, err := fr.evalDecision(s, s.Cond)
		if err != nil {
			return ctrlNormal, err
		}
		if cond {
			return fr.exec(s.Then)
		}
		if s.Else != nil {
			return fr.exec(s.Else)
		}
		return ctrlNormal, nil

	case *ccast.While:
		for {
			cond, err := fr.evalDecision(s, s.Cond)
			if err != nil {
				return ctrlNormal, err
			}
			if !cond {
				return ctrlNormal, nil
			}
			c, err := fr.exec(s.Body)
			if err != nil {
				return ctrlNormal, err
			}
			if c == ctrlBreak {
				return ctrlNormal, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
			if err := m.step(s.Span().Start.Line); err != nil {
				return ctrlNormal, err
			}
		}

	case *ccast.DoWhile:
		for {
			c, err := fr.exec(s.Body)
			if err != nil {
				return ctrlNormal, err
			}
			if c == ctrlBreak {
				return ctrlNormal, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
			cond, err := fr.evalDecision(s, s.Cond)
			if err != nil {
				return ctrlNormal, err
			}
			if !cond {
				return ctrlNormal, nil
			}
			if err := m.step(s.Span().Start.Line); err != nil {
				return ctrlNormal, err
			}
		}

	case *ccast.For:
		fr.push()
		defer fr.pop()
		if s.Init != nil {
			if _, err := fr.exec(s.Init); err != nil {
				return ctrlNormal, err
			}
		}
		for {
			if s.Cond != nil {
				cond, err := fr.evalDecision(s, s.Cond)
				if err != nil {
					return ctrlNormal, err
				}
				if !cond {
					return ctrlNormal, nil
				}
			}
			c, err := fr.exec(s.Body)
			if err != nil {
				return ctrlNormal, err
			}
			if c == ctrlBreak {
				return ctrlNormal, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
			if s.Post != nil {
				if _, err := fr.eval(s.Post); err != nil {
					return ctrlNormal, err
				}
			}
			if err := m.step(s.Span().Start.Line); err != nil {
				return ctrlNormal, err
			}
		}

	case *ccast.Switch:
		tag, err := fr.eval(s.Tag)
		if err != nil {
			return ctrlNormal, err
		}
		matchedIdx := -1
		defaultIdx := -1
		for i, c := range s.Cases {
			if len(c.Values) == 0 {
				defaultIdx = i
				continue
			}
			matched := false
			for _, v := range c.Values {
				cv, err := fr.eval(v)
				if err != nil {
					return ctrlNormal, err
				}
				if cv.AsInt() == tag.AsInt() {
					matched = true
					break
				}
			}
			if m.Hooks.OnCase != nil {
				m.Hooks.OnCase(c, matched)
			}
			if matched && matchedIdx < 0 {
				matchedIdx = i
			}
		}
		start := matchedIdx
		if start < 0 {
			start = defaultIdx
		}
		if start < 0 {
			return ctrlNormal, nil
		}
		for i := start; i < len(s.Cases); i++ {
			for _, st := range s.Cases[i].Body {
				c, err := fr.exec(st)
				if err != nil {
					return ctrlNormal, err
				}
				if c == ctrlBreak {
					return ctrlNormal, nil
				}
				if c != ctrlNormal {
					return c, nil
				}
			}
		}
		return ctrlNormal, nil

	case *ccast.Break:
		return ctrlBreak, nil
	case *ccast.Continue:
		return ctrlContinue, nil

	case *ccast.Return:
		if s.X != nil {
			v, err := fr.eval(s.X)
			if err != nil {
				return ctrlNormal, err
			}
			fr.ret = v
		}
		return ctrlReturn, nil

	case *ccast.Label:
		return fr.exec(s.Stmt)

	case *ccast.Goto:
		return ctrlNormal, &RuntimeError{
			Msg:  fmt.Sprintf("goto %q not supported by the interpreter", s.Label),
			Line: s.Span().Start.Line,
		}

	default:
		return ctrlNormal, &RuntimeError{
			Msg: fmt.Sprintf("unsupported statement %T", s), Line: s.Span().Start.Line,
		}
	}
}

// evalDecision evaluates a controlling expression, reporting condition and
// decision outcomes to the hooks with correct short-circuit semantics.
func (fr *frame) evalDecision(owner ccast.Node, cond ccast.Expr) (bool, error) {
	out, err := fr.evalCondTree(owner, cond)
	if err != nil {
		return false, err
	}
	if fr.m.Hooks.OnDecision != nil {
		fr.m.Hooks.OnDecision(owner, out)
	}
	return out, nil
}

// evalCondTree walks the boolean structure (&&, ||, !, parens) of a
// decision; leaves are reported via OnCondition.
func (fr *frame) evalCondTree(owner ccast.Node, e ccast.Expr) (bool, error) {
	switch x := e.(type) {
	case *ccast.Paren:
		return fr.evalCondTree(owner, x.X)
	case *ccast.Unary:
		if x.Op == "!" {
			v, err := fr.evalCondTree(owner, x.X)
			return !v, err
		}
	case *ccast.Binary:
		switch x.Op {
		case "&&":
			l, err := fr.evalCondTree(owner, x.L)
			if err != nil || !l {
				return false, err
			}
			return fr.evalCondTree(owner, x.R)
		case "||":
			l, err := fr.evalCondTree(owner, x.L)
			if err != nil || l {
				return l, err
			}
			return fr.evalCondTree(owner, x.R)
		}
	}
	v, err := fr.eval(e)
	if err != nil {
		return false, err
	}
	out := v.Truthy()
	if fr.m.Hooks.OnCondition != nil {
		fr.m.Hooks.OnCondition(owner, e, out)
	}
	return out, nil
}

func isFloatType(t *ccast.Type) bool {
	switch t.Name {
	case "float", "double", "long double":
		return true
	}
	return false
}

// coerce adapts an initializer value to the declared scalar type.
func coerce(v Value, t *ccast.Type) Value {
	if t.PtrDepth > 0 || len(t.ArrayDims) > 0 {
		return v
	}
	if isFloatType(t) {
		return FloatVal(v.AsFloat())
	}
	if v.Kind == KindPtr {
		return v
	}
	switch t.Name {
	case "", "auto":
		return v
	}
	if v.Kind == KindFloat {
		return IntVal(v.AsInt())
	}
	return v
}

var _ = math.Sqrt // referenced by eval.go builtins
