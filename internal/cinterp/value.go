// Package cinterp interprets the C subset produced by the frontend. It
// exists to execute test vectors against the YOLO and stencil corpora so
// the coverage experiments (paper Figures 5 and 6) measure real dynamic
// behaviour rather than synthetic hit tables.
//
// The value model is deliberately small: 64-bit ints, 64-bit floats, and
// pointers into flat blocks. Every variable lives in a one-element block
// so address-taking is uniform; arrays are flat blocks; malloc-family
// calls allocate fresh blocks sized in 4-byte units (the corpus only
// allocates float/int buffers).
package cinterp

import "fmt"

// Kind discriminates runtime values.
type Kind int

// Value kinds.
const (
	KindInt Kind = iota
	KindFloat
	KindPtr
)

// Value is one runtime value.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	// Blk/Off form a pointer: Blk is the target block (a Go slice shares
	// its backing across aliases), Off the element offset.
	Blk []Value
	Off int
}

// IntVal constructs an integer value.
func IntVal(i int64) Value { return Value{Kind: KindInt, I: i} }

// FloatVal constructs a float value.
func FloatVal(f float64) Value { return Value{Kind: KindFloat, F: f} }

// PtrVal constructs a pointer to blk[off].
func PtrVal(blk []Value, off int) Value {
	return Value{Kind: KindPtr, Blk: blk, Off: off}
}

// NullPtr is the null pointer.
func NullPtr() Value { return Value{Kind: KindPtr} }

// IsNull reports whether a pointer value is null.
func (v Value) IsNull() bool { return v.Kind == KindPtr && v.Blk == nil }

// AsFloat converts to float64.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindFloat:
		return v.F
	case KindInt:
		return float64(v.I)
	default:
		return 0
	}
}

// AsInt converts to int64 (floats truncate toward zero as in C).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		if v.Blk == nil {
			return 0
		}
		return 1
	}
}

// Truthy implements C truthiness.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	default:
		return v.Blk != nil
	}
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindFloat:
		return fmt.Sprintf("%g", v.F)
	default:
		if v.Blk == nil {
			return "nullptr"
		}
		return fmt.Sprintf("ptr(+%d/%d)", v.Off, len(v.Blk))
	}
}
