// Package core is the paper's primary contribution as a reusable library:
// an ISO 26262 Part-6 software-guideline assessor for C/C++/CUDA
// codebases. It orchestrates the frontend, metrics, rules, coverage, and
// performance-model substrates and produces the compliance verdicts,
// observations, and experiment data behind every table and figure of the
// paper.
package core

import (
	"fmt"

	"repro/internal/apollocorpus"
	"repro/internal/artifact"
	"repro/internal/ccast"
	"repro/internal/cclex"
	"repro/internal/ccparse"
	"repro/internal/coverage"
	"repro/internal/iso26262"
	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/srcfile"
)

// Config parameterizes an assessment run.
type Config struct {
	// TargetASIL is the integrity level the verdicts are judged against;
	// the paper uses ASIL-D for the whole AD pipeline.
	TargetASIL iso26262.ASIL
	// Seed drives the synthetic corpus generation.
	Seed int64
	// Specs selects the corpus modules; nil means the calibrated default.
	Specs []apollocorpus.ModuleSpec
	// MCDCMode selects unique-cause (default) or masking analysis.
	MCDCMode coverage.MCDCMode
	// Rules overrides the checker set; nil means rules.DefaultRules().
	Rules []rules.Rule
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{TargetASIL: iso26262.ASILD, Seed: 26262}
}

// Assessor runs the assessment pipeline over a corpus. It keeps warm
// per-shard caches (rule finding segments, metrics rows and module
// partials, resolved architectural partials, artifact records) so a
// re-assessment after ApplyDelta recomputes only the shards the delta
// touched while producing output byte-identical to a cold full run.
type Assessor struct {
	cfg   Config
	fs    *srcfile.FileSet
	units map[string]*ccast.TranslationUnit

	// intern is the corpus-level identifier table: every parse this
	// assessor performs (cold load, delta, stub hydration) canonicalizes
	// identifier spellings against it, so repeated names across 10k files
	// share one string.
	intern *cclex.Interner

	ix       *artifact.Index
	ruleEng  *rules.Sharded
	mcache   *metrics.Cache
	acache   *metrics.ArchCache
	findings []rules.Finding
	stats    *rules.Stats
	fw       *metrics.FrameworkMetrics
	arch     []*metrics.ArchMetrics

	// stubs tracks snapshot-restored units that are still fact-carrying
	// stubs (no statement bodies); hydratePaths re-parses them on
	// demand. nil for assessors that never restored.
	stubs map[string]bool
	// commitHook, when set, observes every CommitDelta before any state
	// mutates — the write-ahead-journal hook of the persistence layer.
	commitHook func(changed []*srcfile.File, removed []string) error

	// gen counts observable-state generations: it advances on every load
	// and every commit that changed the corpus (no-op deltas keep it).
	// Anything rendered from the assessor — report, findings rows — is
	// valid exactly as long as gen holds still; the serving layer keys
	// its projection caches on it.
	gen uint64
}

// Config returns the assessor's configuration.
func (a *Assessor) Config() Config { return a.cfg }

// Gen returns the observable-state generation: it advances on every
// load and every state-changing commit, and everything derivable from
// the assessor (findings, report tables, metrics) is a pure function of
// it. Callers memoizing rendered views invalidate on a Gen change.
func (a *Assessor) Gen() uint64 { return a.gen }

// NewAssessor creates an assessor; call LoadDefaultCorpus, LoadFileSet,
// or LoadDir before Assess.
func NewAssessor(cfg Config) *Assessor {
	if cfg.Rules == nil {
		cfg.Rules = rules.DefaultRules()
	}
	return &Assessor{
		cfg:     cfg,
		intern:  cclex.NewInterner(),
		ruleEng: rules.NewSharded(cfg.Rules),
		mcache:  metrics.NewCache(),
		acache:  metrics.NewArchCache(),
	}
}

// LoadDefaultCorpus generates and parses the calibrated Apollo-like corpus.
func (a *Assessor) LoadDefaultCorpus() error {
	specs := a.cfg.Specs
	if specs == nil {
		specs = apollocorpus.DefaultSpec()
	}
	return a.LoadFileSet(apollocorpus.Generate(specs, a.cfg.Seed))
}

// LoadFileSet parses an arbitrary corpus (user-provided source trees take
// this path).
func (a *Assessor) LoadFileSet(fs *srcfile.FileSet) error {
	units, errs := ccparse.ParseAll(fs, ccparse.Options{Intern: a.intern})
	if len(errs) > 0 {
		// Error-tolerant parsing yields BadDecls; only fail when a file
		// produced nothing at all.
		for _, f := range fs.Files() {
			if tu := units[f.Path]; tu == nil {
				return fmt.Errorf("core: file %s failed to parse: %v", f.Path, errs[0])
			}
		}
	}
	a.fs = fs
	a.units = units
	a.ix = nil
	a.findings = nil
	a.stats = nil
	a.fw = nil
	a.arch = nil
	a.gen++
	return nil
}

// Index returns (and caches) the shared artifact index: one analysis walk
// per function, reused by the rule engine, metrics, architectural
// analysis, and coverage instrumentation.
func (a *Assessor) Index() *artifact.Index {
	if a.ix == nil {
		a.ix = artifact.Build(a.units)
	}
	return a.ix
}

// FileSet returns the loaded corpus.
func (a *Assessor) FileSet() *srcfile.FileSet { return a.fs }

// Units returns the parsed translation units.
func (a *Assessor) Units() map[string]*ccast.TranslationUnit { return a.units }

// Findings runs (and caches) the rule engine over the shared index. The
// sharded engine caches per-file findings by content hash inside
// per-module shard segments, so after an ApplyDelta only the dirty
// shard's dirty files are re-checked and the global stream is a k-way
// merge of the presorted segments.
func (a *Assessor) Findings() []rules.Finding {
	if a.findings == nil {
		ctx := rules.NewContextFromIndex(a.Index())
		a.findings = a.ruleEng.Run(ctx)
		a.stats = a.ruleEng.Stats()
	}
	return a.findings
}

// Stats returns aggregated finding statistics.
func (a *Assessor) Stats() *rules.Stats {
	a.Findings()
	return a.stats
}

// Metrics returns (and caches) framework metrics from the shared index,
// reusing per-file rows for files untouched since the previous run.
func (a *Assessor) Metrics() *metrics.FrameworkMetrics {
	if a.fw == nil {
		a.fw = a.mcache.AnalyzeIndexed(a.Index())
	}
	return a.fw
}

// Arch returns (and caches) architectural metrics per module from the
// shared index, reusing per-shard resolved partials for modules
// untouched since the previous run.
func (a *Assessor) Arch() []*metrics.ArchMetrics {
	if a.arch == nil {
		a.arch = a.acache.AnalyzeIndexed(a.Index())
	}
	return a.arch
}

// Observation is one of the paper's numbered findings.
type Observation struct {
	Number int
	Text   string
	// Evidence is the quantitative backing, already formatted.
	Evidence string
}

// Assessment is the full ISO 26262 verdict set.
type Assessment struct {
	Target iso26262.ASIL
	// Coding/Arch/Unit hold the verdicts of the paper's Tables 1/2/3.
	Coding []iso26262.TopicAssessment
	Arch   []iso26262.TopicAssessment
	Unit   []iso26262.TopicAssessment
	// Observations reproduces Observations 1-14.
	Observations []Observation
}

// Gaps returns the topics blocking certification at the target ASIL.
func (as *Assessment) Gaps() []iso26262.TopicAssessment {
	var out []iso26262.TopicAssessment
	for _, group := range [][]iso26262.TopicAssessment{as.Coding, as.Arch, as.Unit} {
		for _, ta := range group {
			if ta.Gap(as.Target) {
				out = append(out, ta)
			}
		}
	}
	return out
}

// Assess computes the full compliance verdict set.
func (a *Assessor) Assess() *Assessment {
	a.Findings()
	fw := a.Metrics()
	arch := a.Arch()
	st := a.stats

	as := &Assessment{Target: a.cfg.TargetASIL}
	as.Coding = a.assessCoding(fw, st)
	as.Arch = a.assessArch(fw, arch)
	as.Unit = a.assessUnit(fw, st)
	as.Observations = a.observations(fw, st, arch)
	return as
}

// verdictByCount grades a count against partial/full thresholds.
func verdictByCount(n, partialMax int) iso26262.Verdict {
	switch {
	case n == 0:
		return iso26262.Compliant
	case n <= partialMax:
		return iso26262.PartiallyCompliant
	default:
		return iso26262.NonCompliant
	}
}

func topic(t iso26262.TableID, item int) iso26262.Topic {
	return *iso26262.Lookup(iso26262.Ref{Table: t, Item: item})
}

func (a *Assessor) assessCoding(fw *metrics.FrameworkMetrics, st *rules.Stats) []iso26262.TopicAssessment {
	out := make([]iso26262.TopicAssessment, 0, 8)

	// 1) Low complexity: the paper finds 554 moderate-or-worse functions
	// and concludes significant redesign is needed.
	out = append(out, iso26262.TopicAssessment{
		Topic:      topic(iso26262.TableCoding, 1),
		Verdict:    verdictByCount(fw.ModerateOrWorse, 25),
		Violations: fw.ModerateOrWorse,
		Evidence: fmt.Sprintf("%d functions with CCN>=11 across %d total",
			fw.ModerateOrWorse, fw.TotalFunc),
		Effort: iso26262.EffortModerate,
	})
	// 2) Language subsets: CPU code not MISRA-conformant; GPU code has no
	// subset at all (Observations 2-4) — research effort.
	subsetViolations := st.ByRule["lang-subset"]
	out = append(out, iso26262.TopicAssessment{
		Topic:      topic(iso26262.TableCoding, 2),
		Verdict:    verdictByCount(subsetViolations, 0),
		Violations: subsetViolations,
		Evidence:   fmt.Sprintf("%d language-subset findings; no GPU subset exists", subsetViolations),
		Effort:     iso26262.EffortResearch,
	})
	// 3) Strong typing: explicit casts (paper: >1,400).
	casts := st.ByRule["cast"]
	out = append(out, iso26262.TopicAssessment{
		Topic:      topic(iso26262.TableCoding, 3),
		Verdict:    verdictByCount(casts, 100),
		Violations: casts,
		Evidence:   fmt.Sprintf("%d explicit casts", casts),
		Effort:     iso26262.EffortModerate,
	})
	// 4) Defensive implementation (paper: not used; limited effort to add).
	def := st.ByRule["defensive"]
	out = append(out, iso26262.TopicAssessment{
		Topic:      topic(iso26262.TableCoding, 4),
		Verdict:    verdictByCount(def, 20),
		Violations: def,
		Evidence:   fmt.Sprintf("%d unchecked-parameter / ignored-return findings", def),
		Effort:     iso26262.EffortLimited,
	})
	// 5) Established design principles: global variables dominate.
	globals := st.ByRule["global-var"]
	out = append(out, iso26262.TopicAssessment{
		Topic:      topic(iso26262.TableCoding, 5),
		Verdict:    verdictByCount(globals, 50),
		Violations: globals,
		Evidence:   fmt.Sprintf("%d mutable global variables", globals),
		Effort:     iso26262.EffortModerate,
	})
	// 6) Graphical representation: N/A for C/C++ (paper Section 3.1.6).
	out = append(out, iso26262.TopicAssessment{
		Topic:    topic(iso26262.TableCoding, 6),
		Verdict:  iso26262.NotApplicable,
		Evidence: "all subject code is C/C++/CUDA; requirement not applicable",
	})
	// 7) Style guides: Apollo passes (Observation 8); judge by density.
	style := st.ByRule["style"]
	out = append(out, iso26262.TopicAssessment{
		Topic:      topic(iso26262.TableCoding, 7),
		Verdict:    styleVerdict(style, fw.TotalLOC),
		Violations: style,
		Evidence:   fmt.Sprintf("%d style findings over %d LOC", style, fw.TotalLOC),
		Effort:     iso26262.EffortNone,
	})
	// 8) Naming conventions: Apollo passes (Observation 9).
	naming := st.ByRule["naming"]
	out = append(out, iso26262.TopicAssessment{
		Topic:      topic(iso26262.TableCoding, 8),
		Verdict:    verdictByCount(naming, 20),
		Violations: naming,
		Evidence:   fmt.Sprintf("%d naming findings", naming),
		Effort:     iso26262.EffortNone,
	})
	return out
}

// styleVerdict passes when findings are rarer than 1 per 500 LOC.
func styleVerdict(findings, loc int) iso26262.Verdict {
	if loc == 0 {
		return iso26262.NotAssessed
	}
	per := float64(findings) / float64(loc)
	switch {
	case per < 1.0/500:
		return iso26262.Compliant
	case per < 1.0/50:
		return iso26262.PartiallyCompliant
	default:
		return iso26262.NonCompliant
	}
}

func (a *Assessor) assessArch(fw *metrics.FrameworkMetrics, arch []*metrics.ArchMetrics) []iso26262.TopicAssessment {
	out := make([]iso26262.TopicAssessment, 0, 7)

	// 1) Hierarchical structure: derivable mechanically (Section 3.4.1).
	out = append(out, iso26262.TopicAssessment{
		Topic:    topic(iso26262.TableArch, 1),
		Verdict:  iso26262.Compliant,
		Evidence: fmt.Sprintf("component tree derivable: %d modules / %d files / %d functions", len(fw.Modules), len(fw.Files), fw.TotalFunc),
	})
	// 2) Restricted component size: modules of 5k-60k LOC exceed any
	// plausible restriction (Observation 13).
	oversized := 0
	maxLOC := 0
	for _, m := range fw.Modules {
		if m.LOC > 10000 {
			oversized++
		}
		if m.LOC > maxLOC {
			maxLOC = m.LOC
		}
	}
	out = append(out, iso26262.TopicAssessment{
		Topic:      topic(iso26262.TableArch, 2),
		Verdict:    verdictByCount(oversized, 0),
		Violations: oversized,
		Evidence:   fmt.Sprintf("%d modules exceed 10k LOC (largest %d)", oversized, maxLOC),
		Effort:     iso26262.EffortModerate,
	})
	// 3) Restricted interface size.
	wide := 0
	maxPar := 0
	for _, m := range arch {
		if m.MaxInterfaceParams > 6 {
			wide++
		}
		if m.MaxInterfaceParams > maxPar {
			maxPar = m.MaxInterfaceParams
		}
	}
	out = append(out, iso26262.TopicAssessment{
		Topic:      topic(iso26262.TableArch, 3),
		Verdict:    verdictByCount(wide, 3),
		Violations: wide,
		Evidence:   fmt.Sprintf("%d modules expose functions with >6 parameters (max %d)", wide, maxPar),
		Effort:     iso26262.EffortLimited,
	})
	// 4) High cohesion.
	lowCohesion := 0
	for _, m := range arch {
		if m.Cohesion < 0.7 {
			lowCohesion++
		}
	}
	out = append(out, iso26262.TopicAssessment{
		Topic:      topic(iso26262.TableArch, 4),
		Verdict:    verdictByCount(lowCohesion, 2),
		Violations: lowCohesion,
		Evidence:   fmt.Sprintf("%d modules below 0.7 intra-module call cohesion", lowCohesion),
		Effort:     iso26262.EffortModerate,
	})
	// 5) Restricted coupling.
	coupled := 0
	for _, m := range arch {
		if m.FanOut > 4 {
			coupled++
		}
	}
	out = append(out, iso26262.TopicAssessment{
		Topic:      topic(iso26262.TableArch, 5),
		Verdict:    verdictByCount(coupled, 2),
		Violations: coupled,
		Evidence:   fmt.Sprintf("%d modules call into more than 4 other modules", coupled),
		Effort:     iso26262.EffortModerate,
	})
	// 6) Appropriate scheduling properties: thread primitives without a
	// documented scheduling policy are at best partial.
	threads := 0
	for _, m := range arch {
		threads += m.ThreadPrimitives
	}
	v := iso26262.PartiallyCompliant
	if threads == 0 {
		v = iso26262.NotAssessed
	}
	out = append(out, iso26262.TopicAssessment{
		Topic:      topic(iso26262.TableArch, 6),
		Verdict:    v,
		Violations: threads,
		Evidence:   fmt.Sprintf("%d thread/scheduling primitive uses without WCET evidence", threads),
		Effort:     iso26262.EffortResearch,
	})
	// 7) Restricted use of interrupts.
	irqs := 0
	for _, m := range arch {
		irqs += m.InterruptHandlers
	}
	out = append(out, iso26262.TopicAssessment{
		Topic:      topic(iso26262.TableArch, 7),
		Verdict:    verdictByCount(irqs, 2),
		Violations: irqs,
		Evidence:   fmt.Sprintf("%d signal/interrupt handler registrations", irqs),
		Effort:     iso26262.EffortLimited,
	})
	return out
}

func (a *Assessor) assessUnit(fw *metrics.FrameworkMetrics, st *rules.Stats) []iso26262.TopicAssessment {
	out := make([]iso26262.TopicAssessment, 0, 10)
	add := func(item int, ruleID string, partialMax int, effort iso26262.Effort, evidence string) {
		n := st.ByRule[ruleID]
		out = append(out, iso26262.TopicAssessment{
			Topic:      topic(iso26262.TableUnit, item),
			Verdict:    verdictByCount(n, partialMax),
			Violations: n,
			Evidence:   fmt.Sprintf(evidence, n),
			Effort:     effort,
		})
	}
	add(1, "multi-exit", 20, iso26262.EffortLimited, "%d functions with multiple exit points")
	add(2, "dynamic-memory", 0, iso26262.EffortResearch, "%d dynamic allocations (incl. CUDA device memory)")
	add(3, "uninit", 20, iso26262.EffortLimited, "%d potentially uninitialized reads")
	add(4, "shadow", 30, iso26262.EffortLimited, "%d shadowed / reused variable names")
	// 5) Globals: the standard permits justified usage → partial even at
	// volume, unless truly clean.
	globals := st.ByRule["global-var"]
	gv := iso26262.PartiallyCompliant
	if globals == 0 {
		gv = iso26262.Compliant
	}
	out = append(out, iso26262.TopicAssessment{
		Topic:      topic(iso26262.TableUnit, 5),
		Verdict:    gv,
		Violations: globals,
		Evidence:   fmt.Sprintf("%d global variables (justified usage may be permitted)", globals),
		Effort:     iso26262.EffortModerate,
	})
	add(6, "pointer", 100, iso26262.EffortResearch, "%d pointer declarations (CUDA makes pointers intrinsic)")
	add(7, "implicit-conv", 50, iso26262.EffortModerate, "%d implicit arithmetic conversions")
	// 8) Hidden data/control flow: evidenced via coverage shortfalls; the
	// static proxy is the presence of unstructured flow.
	hidden := st.ByRule["goto"] + st.ByRule["shadow"]
	out = append(out, iso26262.TopicAssessment{
		Topic:      topic(iso26262.TableUnit, 8),
		Verdict:    verdictByCount(hidden, 40),
		Violations: hidden,
		Evidence:   fmt.Sprintf("%d unstructured-flow indicators (goto + shadowing)", hidden),
		Effort:     iso26262.EffortModerate,
	})
	add(9, "goto", 10, iso26262.EffortLimited, "%d unconditional jumps")
	add(10, "recursion", 10, iso26262.EffortLimited, "%d recursive functions")
	return out
}

func (a *Assessor) observations(fw *metrics.FrameworkMetrics, st *rules.Stats, arch []*metrics.ArchMetrics) []Observation {
	multiExit, totalPer := a.multiExitFraction("perception")
	cudaLaunches := 0
	for _, f := range a.findings {
		if f.RuleID == "lang-subset" && f.Module == "perception" {
			cudaLaunches++
		}
	}
	obs := []Observation{
		{1, "AD frameworks present a high complexity in terms of cyclomatic complexity.",
			fmt.Sprintf("%d functions with CCN>=11 (bands: moderate/risky/unstable)", fw.ModerateOrWorse)},
		{2, "The CPU part of AD frameworks is not programmed according to any safety-related guideline.",
			fmt.Sprintf("%d MISRA-style language-subset findings", st.ByRule["lang-subset"])},
		{3, "No guideline or language subset exists for GPU code to facilitate code safety assessment.",
			fmt.Sprintf("%d CUDA constructs flagged as unassessable", cudaLaunches)},
		{4, "CUDA code intrinsically uses features not recommended in ISO 26262 (pointers, dynamic memory).",
			fmt.Sprintf("%d dynamic-memory findings, %d pointer findings", st.ByRule["dynamic-memory"], st.ByRule["pointer"])},
		{5, "AD frameworks are programmed in C/C++, requiring programmers to resolve castings.",
			fmt.Sprintf("%d explicit casts (paper: >1,400)", st.ByRule["cast"])},
		{6, "AD frameworks do not implement defensive programming techniques.",
			fmt.Sprintf("%d defensive-implementation findings", st.ByRule["defensive"])},
		{7, "AD software uses global variables.",
			fmt.Sprintf("%d mutable globals; perception alone has %d", st.ByRule["global-var"], st.Count("global-var", "perception"))},
		{8, "AD software follows style guides.",
			fmt.Sprintf("%d style findings over %d LOC", st.ByRule["style"], fw.TotalLOC)},
		{9, "AD software adheres to naming conventions.",
			fmt.Sprintf("%d naming findings", st.ByRule["naming"])},
		{10, "Code coverage for AD software is low with available tests.",
			"see Figure 5 experiment: statement/branch/MC-DC well below 100%"},
		{11, "Tool support to measure code coverage of GPU code is very limited.",
			"see Figure 6 experiment: coverage obtained only via CPU emulation (cuda4cpu)"},
		{12, "Heterogeneous AD software makes extensive use of closed-source CUDA libraries.",
			"see Figures 7-8: open-source CUTLASS/ISAAC are competitive replacements"},
		{13, "AD frameworks do not comply with many architectural design principles.",
			fmt.Sprintf("modules up to %d LOC; coupling/cohesion gaps in %d modules", maxModuleLOC(fw), len(arch))},
		{14, "Apollo AD software does not comply with the principles for unit design and implementation.",
			fmt.Sprintf("%.0f%% multi-exit functions in perception (%d assessed)", 100*multiExit, totalPer)},
	}
	return obs
}

// multiExitFraction computes the paper's 41% statistic for a module from
// the cached per-function return counts.
func (a *Assessor) multiExitFraction(module string) (float64, int) {
	total, multi := 0, 0
	for _, fa := range a.Index().Funcs {
		if fa.Module != module {
			continue
		}
		total++
		if fa.Returns > 1 {
			multi++
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(multi) / float64(total), total
}

func maxModuleLOC(fw *metrics.FrameworkMetrics) int {
	max := 0
	for _, m := range fw.Modules {
		if m.LOC > max {
			max = m.LOC
		}
	}
	return max
}
