package core

import (
	"sync"
	"testing"

	"repro/internal/coverage"
	"repro/internal/iso26262"
	"repro/internal/srcfile"
)

// The default assessment is expensive (220k LOC); share one per binary.
var (
	assessOnce sync.Once
	sharedA    *Assessor
	sharedAs   *Assessment
)

func defaultAssessment(t *testing.T) (*Assessor, *Assessment) {
	t.Helper()
	assessOnce.Do(func() {
		sharedA = NewAssessor(DefaultConfig())
		if err := sharedA.LoadDefaultCorpus(); err != nil {
			t.Fatalf("load corpus: %v", err)
		}
		sharedAs = sharedA.Assess()
	})
	if sharedAs == nil {
		t.Fatal("assessment unavailable")
	}
	return sharedA, sharedAs
}

func TestAssessmentTablesComplete(t *testing.T) {
	_, as := defaultAssessment(t)
	if len(as.Coding) != 8 {
		t.Errorf("Table 1 verdicts = %d, want 8", len(as.Coding))
	}
	if len(as.Arch) != 7 {
		t.Errorf("Table 2 verdicts = %d, want 7", len(as.Arch))
	}
	if len(as.Unit) != 10 {
		t.Errorf("Table 3 verdicts = %d, want 10", len(as.Unit))
	}
	if len(as.Observations) != 14 {
		t.Errorf("observations = %d, want 14", len(as.Observations))
	}
}

// TestPaperVerdictShape pins the qualitative outcome of the paper: the
// framework fails complexity, language subsets, strong typing, defensive
// programming, dynamic memory, and single-exit — but passes style and
// naming, and graphical representation is N/A.
func TestPaperVerdictShape(t *testing.T) {
	_, as := defaultAssessment(t)
	get := func(group []iso26262.TopicAssessment, item int) iso26262.TopicAssessment {
		for _, ta := range group {
			if ta.Topic.Item == item {
				return ta
			}
		}
		t.Fatalf("missing item %d", item)
		return iso26262.TopicAssessment{}
	}
	if v := get(as.Coding, 1).Verdict; v != iso26262.NonCompliant {
		t.Errorf("low complexity verdict = %v, want non-compliant (Obs 1)", v)
	}
	if v := get(as.Coding, 2).Verdict; v != iso26262.NonCompliant {
		t.Errorf("language subset verdict = %v, want non-compliant (Obs 2-4)", v)
	}
	if v := get(as.Coding, 3).Verdict; v != iso26262.NonCompliant {
		t.Errorf("strong typing verdict = %v, want non-compliant (Obs 5)", v)
	}
	if v := get(as.Coding, 4).Verdict; v != iso26262.NonCompliant {
		t.Errorf("defensive verdict = %v, want non-compliant (Obs 6)", v)
	}
	if v := get(as.Coding, 6).Verdict; v != iso26262.NotApplicable {
		t.Errorf("graphical representation = %v, want n/a", v)
	}
	if v := get(as.Coding, 7).Verdict; v != iso26262.Compliant {
		t.Errorf("style verdict = %v, want compliant (Obs 8)", v)
	}
	if v := get(as.Coding, 8).Verdict; v != iso26262.Compliant {
		t.Errorf("naming verdict = %v, want compliant (Obs 9)", v)
	}
	if v := get(as.Unit, 1).Verdict; v != iso26262.NonCompliant {
		t.Errorf("single-exit verdict = %v, want non-compliant (41%% multi-exit)", v)
	}
	if v := get(as.Unit, 2).Verdict; v != iso26262.NonCompliant {
		t.Errorf("dynamic memory verdict = %v, want non-compliant (Obs 4)", v)
	}
	if v := get(as.Arch, 2).Verdict; v != iso26262.NonCompliant {
		t.Errorf("component size verdict = %v, want non-compliant (Obs 13)", v)
	}
}

func TestGapsAtASILD(t *testing.T) {
	_, as := defaultAssessment(t)
	gaps := as.Gaps()
	if len(gaps) < 6 {
		t.Errorf("certification gaps = %d, want many (the paper's core message)", len(gaps))
	}
	for _, g := range gaps {
		if g.Topic.RecommendationFor(iso26262.ASILD) == iso26262.NotRequired {
			t.Errorf("gap on not-required topic %v", g.Topic.Name)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	a, _ := defaultAssessment(t)
	rows := a.Figure3()
	if len(rows) != 10 {
		t.Fatalf("modules = %d, want 10", len(rows))
	}
	totalOver10 := 0
	for _, r := range rows {
		if r.LOC == 0 || r.Functions == 0 {
			t.Errorf("module %s has empty stats", r.Module)
		}
		if r.Over10 < r.Over20 || r.Over20 < r.Over50 {
			t.Errorf("module %s threshold counts not monotone: %d/%d/%d",
				r.Module, r.Over10, r.Over20, r.Over50)
		}
		totalOver10 += r.Over10
	}
	if totalOver10 != 554 {
		t.Errorf("total moderate-or-worse = %d, want 554", totalOver10)
	}
}

func TestFigure4Findings(t *testing.T) {
	fs, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	var dyn, ptr bool
	for _, f := range fs {
		switch f.Rule {
		case "dynamic-memory":
			dyn = true
		case "pointer":
			ptr = true
		}
	}
	if !dyn || !ptr {
		t.Errorf("Figure 4 must evidence pointers and dynamic memory: %+v", fs)
	}
}

func TestFigure5CoverageShape(t *testing.T) {
	res, err := Figure5(coverage.UniqueCause)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("files = %d, want 8", len(res.Rows))
	}
	// Paper shape: averages well below 100, ordered stmt >= branch >= mcdc.
	if res.AvgStmt >= 100 || res.AvgStmt < 50 {
		t.Errorf("avg stmt = %.1f, want in [50, 100)", res.AvgStmt)
	}
	if res.AvgBranch >= res.AvgStmt {
		t.Errorf("avg branch (%.1f) should be below stmt (%.1f)", res.AvgBranch, res.AvgStmt)
	}
	if res.AvgMCDC >= res.AvgBranch {
		t.Errorf("avg mcdc (%.1f) should be below branch (%.1f)", res.AvgMCDC, res.AvgBranch)
	}
	// Individual files dip much lower than the average (paper: 19/37/10).
	minStmt := 100.0
	for _, r := range res.Rows {
		if r.StmtPct < minStmt {
			minStmt = r.StmtPct
		}
	}
	if minStmt > 90 {
		t.Errorf("min per-file stmt = %.1f, want a clearly under-tested file", minStmt)
	}
}

func TestFigure5MaskingAtLeastUniqueCause(t *testing.T) {
	uc, err := Figure5(coverage.UniqueCause)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := Figure5(coverage.Masking)
	if err != nil {
		t.Fatal(err)
	}
	if mk.AvgMCDC < uc.AvgMCDC-1e-9 {
		t.Errorf("masking avg MC/DC (%.1f) below unique-cause (%.1f)", mk.AvgMCDC, uc.AvgMCDC)
	}
	// Statement and branch metrics are mode-independent.
	if mk.AvgStmt != uc.AvgStmt || mk.AvgBranch != uc.AvgBranch {
		t.Error("stmt/branch coverage must not depend on MC/DC mode")
	}
}

func TestMixedLanguageCorpusEndToEnd(t *testing.T) {
	fs := srcfile.NewFileSet()
	fs.AddSource("control/pid.c", `
int clamp(int x, int lo, int hi) {
    if (x < lo) return lo;
    if (x > hi) return hi;
    return x;
}`)
	fs.AddSource("perception/det.cc", `
namespace apollo {
class Det {
 public:
  int Count() { return n_; }
 private:
  int n_;
};
}`)
	fs.AddSource("perception/k.cu", `
__global__ void zero(float* x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { x[i] = 0.0f; }
}`)
	a := NewAssessor(DefaultConfig())
	if err := a.LoadFileSet(fs); err != nil {
		t.Fatal(err)
	}
	as := a.Assess()
	if len(as.Coding) != 8 || len(as.Unit) != 10 {
		t.Fatal("verdict tables incomplete on mixed corpus")
	}
	fw := a.Metrics()
	if fw.TotalFunc != 3 {
		t.Errorf("functions = %d, want 3 across C/C++/CUDA", fw.TotalFunc)
	}
	if a.Stats().ByRule["multi-exit"] != 1 {
		t.Errorf("multi-exit = %d", a.Stats().ByRule["multi-exit"])
	}
}

func TestFigure6CoverageShape(t *testing.T) {
	rows, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("kernels = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.StmtPct <= 0 || r.StmtPct > 100 {
			t.Errorf("%s stmt = %.1f", r.Kernel, r.StmtPct)
		}
		if r.BranchPct >= 100 {
			t.Errorf("%s branch = %.1f, want <100 (paper: full coverage not achieved)",
				r.Kernel, r.BranchPct)
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	rows := Figure7()
	if len(rows) != 6 {
		t.Fatalf("libraries = %d, want 6", len(rows))
	}
	byName := map[string]Figure7Row{}
	for _, r := range rows {
		byName[r.Library] = r
	}
	if rel := byName["ISAAC"].RelToCuDNN; rel < 0.7 || rel > 1.4 {
		t.Errorf("ISAAC relative = %.2f, want competitive", rel)
	}
	if rel := byName["CUTLASS"].RelToCuDNN; rel < 0.5 || rel > 2 {
		t.Errorf("CUTLASS relative = %.2f", rel)
	}
	if rel := byName["ATLAS"].RelToCuDNN; rel < 40 {
		t.Errorf("ATLAS relative = %.0fx, want ~two orders of magnitude", rel)
	}
	if rel := byName["OpenBLAS"].RelToCuDNN; rel < 40 {
		t.Errorf("OpenBLAS relative = %.0fx", rel)
	}
}

func TestFigure8Shapes(t *testing.T) {
	for _, r := range Figure8a() {
		if r.Relative < 0.7 || r.Relative > 1.2 {
			t.Errorf("Figure 8a %s: CUTLASS relative %.2f outside competitive band", r.Workload, r.Relative)
		}
	}
	wins := 0
	for _, r := range Figure8b() {
		if r.Relative < 0.6 || r.Relative > 1.5 {
			t.Errorf("Figure 8b %s: ISAAC relative %.2f outside band", r.Workload, r.Relative)
		}
		if r.Relative >= 1 {
			wins++
		}
	}
	if wins == 0 {
		t.Error("ISAAC should win at least one workload")
	}
}

func TestLoadFileSetCustomCorpus(t *testing.T) {
	fs := srcfile.NewFileSet()
	fs.AddSource("tiny/a.c", `
int g_counter;
int check(int* p) { return p[0]; }
int twice(int x) {
    if (x < 0) return 0;
    return 2 * x;
}`)
	a := NewAssessor(DefaultConfig())
	if err := a.LoadFileSet(fs); err != nil {
		t.Fatal(err)
	}
	as := a.Assess()
	if len(as.Unit) != 10 {
		t.Fatalf("unit verdicts = %d", len(as.Unit))
	}
	if a.Stats().ByRule["multi-exit"] != 1 {
		t.Errorf("multi-exit = %d, want 1", a.Stats().ByRule["multi-exit"])
	}
	if a.Stats().ByRule["global-var"] != 1 {
		t.Errorf("global-var = %d, want 1", a.Stats().ByRule["global-var"])
	}
}

func TestObservation14FractionMatchesPaper(t *testing.T) {
	a, _ := defaultAssessment(t)
	frac, total := a.multiExitFraction("perception")
	if total == 0 {
		t.Fatal("no perception functions")
	}
	if frac < 0.33 || frac > 0.49 {
		t.Errorf("perception multi-exit = %.2f, want ≈0.41", frac)
	}
}
