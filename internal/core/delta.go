package core

import (
	"errors"
	"fmt"

	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/par"
	"repro/internal/srcfile"
)

// Delta is a corpus edit: files to add or replace, and paths to remove.
type Delta struct {
	// Changed holds new or replacement files keyed by their Path. Only
	// Path, Src, and (optionally) Module are honored: Lang is always
	// derived from the path, as in a cold ingest.
	Changed []*srcfile.File
	// Removed lists paths to drop from the corpus.
	Removed []string
}

// DeltaResult reports what a delta actually did.
type DeltaResult struct {
	// Parsed counts files whose content changed (or that are new) and
	// were therefore re-parsed and re-indexed.
	Parsed int
	// Unchanged counts files in Changed whose content matched the
	// corpus and were skipped entirely.
	Unchanged int
	// Removed counts files dropped.
	Removed int
}

// LoadDir ingests a real on-disk C/C++/CUDA tree (srcfile.LoadDir with
// default filters) and parses it as the corpus.
func (a *Assessor) LoadDir(root string) error {
	fs, err := srcfile.LoadDir(root, srcfile.LoadOptions{})
	if err != nil {
		return err
	}
	if fs.Len() == 0 {
		return fmt.Errorf("core: no C/C++/CUDA sources under %s", root)
	}
	return a.LoadFileSet(fs)
}

// ApplyDelta applies a corpus edit in place. Only genuinely changed
// files are re-parsed and re-indexed; every warm per-file cache (rule
// findings, metrics rows, memoized CFGs) survives for untouched files.
// The next Assess/Findings/Metrics call recomputes exactly the dirty
// remainder and yields results byte-identical to a cold full run over
// the edited corpus.
//
// On error (unloaded corpus, unparseable file) the assessor state is
// unchanged: parsing happens before any mutation.
func (a *Assessor) ApplyDelta(d Delta) (*DeltaResult, error) {
	if a.fs == nil {
		return nil, errors.New("core: ApplyDelta before a corpus is loaded")
	}
	res := &DeltaResult{}

	// Decide what actually changed.
	var dirty []*srcfile.File
	for _, f := range d.Changed {
		if f == nil || f.Path == "" {
			return nil, errors.New("core: delta file without a path")
		}
		old := a.fs.Lookup(f.Path)
		if old != nil && old.Src == f.Src {
			res.Unchanged++
			continue
		}
		// Normalize before parsing (the parser keys CUDA lexing off
		// Lang). Delta files are (path, content) pairs: Lang always
		// derives from the path — the zero Language value is LangC, so
		// "caller left it unset" is indistinguishable from an explicit
		// C override and path-derivation is the only sound rule, exactly
		// matching a cold AddSource/LoadDir ingest. A Module override
		// is corpus metadata: an explicit value wins, a replaced file's
		// existing override is inherited, otherwise the path decides.
		f.Lang = srcfile.LanguageForPath(f.Path)
		if f.Module == "" && old != nil {
			f.Module = old.Module
		}
		if f.Module == "" {
			f.Module = f.ModuleName()
		}
		dirty = append(dirty, f)
	}

	// Parse the dirty files before touching any state, mirroring
	// LoadFileSet's tolerance: BadDecls are fine, a nil unit is not.
	parsed := make([]*ccast.TranslationUnit, len(dirty))
	perr := make([]*ccparse.Error, len(dirty))
	par.For(par.Workers(len(dirty)), len(dirty), func(i int) {
		tu, errs := ccparse.Parse(dirty[i], ccparse.Options{})
		parsed[i] = tu
		if tu == nil && len(errs) > 0 {
			perr[i] = errs[0]
		}
	})
	for i := range parsed {
		if parsed[i] == nil {
			return nil, fmt.Errorf("core: file %s failed to parse: %v", dirty[i].Path, perr[i])
		}
	}

	// Commit: file set, parse map, and (when built) the artifact index.
	var removedPaths []string
	for _, p := range d.Removed {
		if a.fs.Remove(p) {
			delete(a.units, p)
			removedPaths = append(removedPaths, p)
			res.Removed++
		}
	}
	for i, f := range dirty {
		canon := a.fs.Add(f)
		// Add replaces in place, keeping the corpus-resident *File
		// canonical; re-point the fresh unit at it so index, metrics,
		// and rules all observe one File identity per path.
		parsed[i].File = canon
		a.units[canon.Path] = parsed[i]
		res.Parsed++
	}
	if a.ix != nil {
		a.ix.Apply(parsed, removedPaths)
	}

	// Drop memoized whole-corpus results; the per-file caches behind
	// them make the recomputation proportional to the delta.
	a.findings = nil
	a.stats = nil
	a.fw = nil
	a.arch = nil
	return res, nil
}

// RuleFilesChecked returns how many files the last Findings() run
// re-checked (diagnostics for the serving layer).
func (a *Assessor) RuleFilesChecked() int { return a.ruleEng.LastDirty() }

// MetricFilesComputed returns how many per-file metric rows the last
// Metrics() run recomputed.
func (a *Assessor) MetricFilesComputed() int { return a.mcache.LastDirty() }
