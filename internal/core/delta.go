package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/par"
	"repro/internal/srcfile"
)

// ErrCommitHook marks CommitDelta failures originating in the commit
// hook (the persistence layer's journal append) rather than in the
// delta itself, so callers can classify them as server-side durability
// faults — retryable — instead of invalid requests.
var ErrCommitHook = errors.New("commit hook failed")

// Delta is a corpus edit: files to add or replace, and paths to remove.
type Delta struct {
	// Changed holds new or replacement files keyed by their Path. Only
	// Path, Src, and (optionally) Module are honored: Lang is always
	// derived from the path, as in a cold ingest.
	Changed []*srcfile.File
	// Removed lists paths to drop from the corpus.
	Removed []string
}

// DeltaResult reports what a delta actually did.
type DeltaResult struct {
	// Parsed counts files whose content changed (or that are new) and
	// were therefore re-parsed and re-indexed.
	Parsed int
	// Unchanged counts files in Changed whose content matched the
	// corpus and were skipped entirely.
	Unchanged int
	// Removed counts files dropped.
	Removed int

	// ParseNs is the wall time PrepareDelta spent parsing dirty files
	// (the parallel parse fan-out), carried through to the commit so the
	// serving layer can report a per-request phase breakdown.
	ParseNs int64
	// HookNs is the wall time CommitDelta spent inside the commit hook
	// (the journal stage on the persistent path); subtracting it from
	// the commit's wall time isolates the in-memory index update.
	HookNs int64
	// DirtyShards and ParWidth mirror the artifact index's ApplyStats:
	// how many shards the commit actually refreshed, and at what
	// parallel width. Zero when the delta touched no built index.
	DirtyShards int
	ParWidth    int
}

// LoadDir ingests a real on-disk C/C++/CUDA tree (srcfile.LoadDir with
// default filters) and parses it as the corpus.
func (a *Assessor) LoadDir(root string) error {
	fs, err := srcfile.LoadDir(root, srcfile.LoadOptions{})
	if err != nil {
		return err
	}
	if fs.Len() == 0 {
		return fmt.Errorf("core: no C/C++/CUDA sources under %s", root)
	}
	return a.LoadFileSet(fs)
}

// PreparedDelta is a validated, parsed corpus edit awaiting commit. The
// expensive, read-only half of a delta (change detection and parsing)
// happens in PrepareDelta; CommitDelta then mutates the assessor. The
// serving layer exploits the split for shard-aware concurrency: deltas
// to disjoint modules prepare in parallel under a read lock and only
// serialize for the (cheap) commit.
type PreparedDelta struct {
	a       *Assessor
	dirty   []*srcfile.File
	parsed  []*ccast.TranslationUnit
	removed []string
	// unchanged counts files whose content matched the corpus at
	// prepare time.
	unchanged int
	// parseNs is the wall time the parse fan-out took.
	parseNs int64
}

// PrepareDelta validates and parses a corpus edit without mutating any
// assessor state. It only reads the file set (to detect unchanged
// content and inherit module overrides), so callers may run several
// prepares concurrently as long as no commit runs in between — the
// serving layer holds a read lock here and the write lock across
// CommitDelta.
func (a *Assessor) PrepareDelta(d Delta) (*PreparedDelta, error) {
	if a.fs == nil {
		return nil, errors.New("core: ApplyDelta before a corpus is loaded")
	}
	pd := &PreparedDelta{a: a, removed: d.Removed}

	// A path appearing in both Removed and Changed is removed FIRST
	// (CommitDelta's application order): its change is a fresh add —
	// never "unchanged", and inheriting no module override from the file
	// it replaces. Batched deltas merge remove-then-re-add sequences
	// into exactly this shape (see MergeDeltas).
	var removedSet map[string]bool
	if len(d.Removed) > 0 && len(d.Changed) > 0 {
		removedSet = make(map[string]bool, len(d.Removed))
		for _, p := range d.Removed {
			removedSet[p] = true
		}
	}

	// Decide what actually changed.
	for _, f := range d.Changed {
		if f == nil || f.Path == "" {
			return nil, errors.New("core: delta file without a path")
		}
		old := a.fs.Lookup(f.Path)
		if removedSet[f.Path] {
			old = nil
		}
		if old != nil && old.Src == f.Src {
			pd.unchanged++
			continue
		}
		// Normalize before parsing (the parser keys CUDA lexing off
		// Lang). Delta files are (path, content) pairs: Lang always
		// derives from the path — the zero Language value is LangC, so
		// "caller left it unset" is indistinguishable from an explicit
		// C override and path-derivation is the only sound rule, exactly
		// matching a cold AddSource/LoadDir ingest. A Module override
		// is corpus metadata: an explicit value wins, a replaced file's
		// existing override is inherited, otherwise the path decides.
		f.Lang = srcfile.LanguageForPath(f.Path)
		if f.Module == "" && old != nil {
			f.Module = old.Module
		}
		if f.Module == "" {
			f.Module = f.ModuleName()
		}
		pd.dirty = append(pd.dirty, f)
	}

	// Parse the dirty files before any state can be touched, mirroring
	// LoadFileSet's tolerance: BadDecls are fine, a nil unit is not.
	parseStart := time.Now()
	pd.parsed = make([]*ccast.TranslationUnit, len(pd.dirty))
	perr := make([]*ccparse.Error, len(pd.dirty))
	par.For(par.Workers(len(pd.dirty)), len(pd.dirty), func(i int) {
		tu, errs := ccparse.Parse(pd.dirty[i], ccparse.Options{Intern: a.intern})
		pd.parsed[i] = tu
		if tu == nil && len(errs) > 0 {
			perr[i] = errs[0]
		}
	})
	pd.parseNs = time.Since(parseStart).Nanoseconds()
	for i := range pd.parsed {
		if pd.parsed[i] == nil {
			return nil, fmt.Errorf("core: file %s failed to parse: %v", pd.dirty[i].Path, perr[i])
		}
	}
	return pd, nil
}

// CommitDelta applies a prepared delta: file set, parse map, and (when
// built) the artifact index, which re-analyzes only the upserted units
// and rebuilds only the dirty shards. Callers must serialize commits
// (and any reads) on the assessor.
func (a *Assessor) CommitDelta(pd *PreparedDelta) (*DeltaResult, error) {
	if pd == nil || pd.a != a {
		return nil, errors.New("core: CommitDelta with a delta prepared for a different assessor")
	}
	res := &DeltaResult{Unchanged: pd.unchanged, ParseNs: pd.parseNs}
	if a.commitHook != nil && (len(pd.dirty) > 0 || len(pd.removed) > 0) {
		// Write-ahead discipline: the hook (the journal write — callers
		// that stage without syncing own making it durable before they
		// acknowledge) must succeed before any state mutates, so a crash
		// at any later point replays the delta on the next boot. On error
		// the commit is aborted with the assessor untouched.
		// All-unchanged deltas skip the hook: there is nothing to replay,
		// and journaling empty records would cost a record (and advance
		// compaction) per no-op.
		hookStart := time.Now()
		if err := a.commitHook(pd.dirty, pd.removed); err != nil {
			return nil, fmt.Errorf("core: %w: %v", ErrCommitHook, err)
		}
		res.HookNs = time.Since(hookStart).Nanoseconds()
	}
	var removedPaths []string
	for _, p := range pd.removed {
		if a.fs.Remove(p) {
			delete(a.units, p)
			delete(a.stubs, p)
			removedPaths = append(removedPaths, p)
			res.Removed++
		}
	}
	for i, f := range pd.dirty {
		canon := a.fs.Add(f)
		// Add replaces in place, keeping the corpus-resident *File
		// canonical; re-point the fresh unit at it so index, metrics,
		// and rules all observe one File identity per path.
		pd.parsed[i].File = canon
		a.units[canon.Path] = pd.parsed[i]
		delete(a.stubs, canon.Path)
		res.Parsed++
	}
	if a.ix != nil {
		a.ix.Apply(pd.parsed, removedPaths)
		st := a.ix.LastApply()
		res.DirtyShards = st.DirtyShards
		res.ParWidth = st.Width
	}

	// Drop memoized whole-corpus results; the per-shard caches behind
	// them make the recomputation proportional to the delta. The
	// generation advances under the same condition the commit hook fires:
	// an all-unchanged delta leaves nothing observable to invalidate.
	if len(pd.dirty) > 0 || len(pd.removed) > 0 {
		a.gen++
	}
	a.findings = nil
	a.stats = nil
	a.fw = nil
	a.arch = nil
	return res, nil
}

// ApplyDelta applies a corpus edit in place. Only genuinely changed
// files are re-parsed and only their shards re-indexed; every warm
// per-file and per-shard cache (rule finding segments, metrics rows,
// memoized CFGs, arch partials) survives for untouched shards. The next
// Assess/Findings/Metrics call recomputes exactly the dirty remainder
// and yields results byte-identical to a cold full run over the edited
// corpus.
//
// On error (unloaded corpus, unparseable file) the assessor state is
// unchanged: parsing happens before any mutation.
func (a *Assessor) ApplyDelta(d Delta) (*DeltaResult, error) {
	pd, err := a.PrepareDelta(d)
	if err != nil {
		return nil, err
	}
	return a.CommitDelta(pd)
}

// MergeDeltas folds an ordered sequence of corpus edits into one
// equivalent Delta: for every path the LAST operation wins (a change
// after a remove keeps the remove too — remove-then-fresh-add is the
// sequential meaning; a remove after a change drops the change), so
// committing the merged delta leaves exactly the corpus state of
// applying the sequence one delta at a time. Changed files and removed
// paths come out in sorted path order, giving every batch a canonical
// wire and journal shape regardless of arrival order.
func MergeDeltas(ds []Delta) Delta {
	if len(ds) == 1 {
		return ds[0]
	}
	type pathOp struct {
		f       *srcfile.File // final change; nil when the final op is a remove
		removed bool          // a remove is in effect (final, or before the final change)
	}
	ops := make(map[string]*pathOp)
	// Invalid entries (nil file, empty path) pass through so the merged
	// prepare rejects the batch exactly as sequential application would.
	var invalid []*srcfile.File
	for _, d := range ds {
		for _, p := range d.Removed {
			if o := ops[p]; o != nil {
				o.f, o.removed = nil, true
			} else {
				ops[p] = &pathOp{removed: true}
			}
		}
		for _, f := range d.Changed {
			if f == nil || f.Path == "" {
				invalid = append(invalid, f)
				continue
			}
			if o := ops[f.Path]; o != nil {
				o.f = f // o.removed survives: remove-before-change
			} else {
				ops[f.Path] = &pathOp{f: f}
			}
		}
	}
	paths := make([]string, 0, len(ops))
	for p := range ops {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var out Delta
	for _, p := range paths {
		o := ops[p]
		if o.removed {
			out.Removed = append(out.Removed, p)
		}
		if o.f != nil {
			out.Changed = append(out.Changed, o.f)
		}
	}
	out.Changed = append(out.Changed, invalid...)
	return out
}

// ApplyDeltaBatch applies an ordered sequence of corpus edits as ONE
// commit: the batch folds into its equivalent single delta
// (MergeDeltas), prepares once — every genuinely changed file across
// the batch parses in parallel — and commits once, so the commit hook
// fires once (one journal record, hence one fsync under the group
// commit discipline), the index applies one combined update, and the
// memoized projections invalidate once. The post-commit corpus state is
// identical to applying the deltas one at a time; the DeltaResult
// counts describe the merged delta (a file changed twice counts once).
// A one-delta batch is exactly ApplyDelta.
func (a *Assessor) ApplyDeltaBatch(ds []Delta) (*DeltaResult, error) {
	if len(ds) == 0 {
		return nil, errors.New("core: ApplyDeltaBatch with no deltas")
	}
	return a.ApplyDelta(MergeDeltas(ds))
}

// SetCommitHook installs (or, with nil, removes) a hook invoked with
// every CommitDelta's normalized operations — the changed files after
// language/module resolution and the raw removal list — before any
// assessor state mutates. A hook error aborts the commit with the
// assessor untouched. The persistence layer uses it as the write-ahead
// journal write (Append to sync per commit, or Stage plus a later group
// commit — in the latter case the caller must not acknowledge the delta
// until the staged record is durable); replaying the recorded
// operations through ApplyDelta on a restored snapshot reproduces the
// exact post-commit state.
func (a *Assessor) SetCommitHook(h func(changed []*srcfile.File, removed []string) error) {
	a.commitHook = h
}

// RuleFilesChecked returns how many files the last Findings() run
// re-checked (diagnostics for the serving layer).
func (a *Assessor) RuleFilesChecked() int { return a.ruleEng.LastDirty() }

// MetricFilesComputed returns how many per-file metric rows the last
// Metrics() run recomputed.
func (a *Assessor) MetricFilesComputed() int { return a.mcache.LastDirty() }
