package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rules"
	"repro/internal/srcfile"
)

// writeTestTree materializes path→content pairs under dir.
func writeTestTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for p, src := range files {
		dst := filepath.Join(dir, filepath.FromSlash(p))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// renderAssessment serializes everything an assessment run produces —
// every finding field, every verdict row, every observation, and the
// headline metrics — so byte equality means the warm incremental path
// is indistinguishable from a cold run.
func renderAssessment(a *Assessor, as *Assessment) []byte {
	var buf bytes.Buffer
	for _, f := range a.Findings() {
		fmt.Fprintf(&buf, "%s|%s|%s|%d|%s|%d|%v\n",
			f.File, f.Module, f.Function, f.Line, f.RuleID, f.Severity, f.Refs)
		buf.WriteString(f.Msg)
		buf.WriteByte('\n')
	}
	fw := a.Metrics()
	fmt.Fprintf(&buf, "metrics|%d|%d|%d|%d\n", fw.TotalLOC, fw.TotalNLOC, fw.TotalFunc, fw.ModerateOrWorse)
	for _, fm := range fw.Files {
		fmt.Fprintf(&buf, "file|%s|%s|%d|%d|%d\n", fm.Path, fm.Module, fm.LOC, fm.NLOC, len(fm.Functions))
		for _, fn := range fm.Functions {
			fmt.Fprintf(&buf, "fn|%s|%d|%d|%d|%d|%d|%d|%v\n",
				fn.Name, fn.StartLine, fn.EndLine, fn.NLOC, fn.CCN, fn.Params, fn.Returns, fn.IsKernel)
		}
	}
	for _, m := range fw.Modules {
		fmt.Fprintf(&buf, "mod|%s|%d|%d|%d|%d|%d|%d\n", m.Name, m.Files, m.LOC, m.NLOC, m.Functions, m.MaxCCN, m.SumCCN)
	}
	for _, am := range a.Arch() {
		fmt.Fprintf(&buf, "arch|%+v\n", *am)
	}
	for _, ta := range as.Coding {
		fmt.Fprintf(&buf, "coding|%+v\n", ta)
	}
	for _, ta := range as.Arch {
		fmt.Fprintf(&buf, "archv|%+v\n", ta)
	}
	for _, ta := range as.Unit {
		fmt.Fprintf(&buf, "unit|%+v\n", ta)
	}
	for _, o := range as.Observations {
		fmt.Fprintf(&buf, "obs|%d|%s|%s\n", o.Number, o.Text, o.Evidence)
	}
	return buf.Bytes()
}

// cloneFileSet rebuilds a corpus from (path, content, module) the way a
// genuine cold ingest would — Lang re-derived from the path, never
// copied — so metadata corruption introduced by the warm path cannot
// leak into the cold baseline and mask itself.
func cloneFileSet(fs *srcfile.FileSet) *srcfile.FileSet {
	out := srcfile.NewFileSet()
	for _, f := range fs.Files() {
		nf := out.AddSource(f.Path, f.Src)
		nf.Module = f.Module
	}
	return out
}

// coldRender runs a fresh assessor over a copy of the corpus.
func coldRender(t *testing.T, cfg Config, fs *srcfile.FileSet) []byte {
	t.Helper()
	cold := NewAssessor(cfg)
	if err := cold.LoadFileSet(cloneFileSet(fs)); err != nil {
		t.Fatal(err)
	}
	return renderAssessment(cold, cold.Assess())
}

// TestDeltaEquivalence is the incremental-engine acceptance gate: after
// editing one file in a loaded corpus, warm re-assessment must be
// byte-identical to a cold full run over the edited corpus while
// re-parsing and re-indexing only the changed file.
func TestDeltaEquivalence(t *testing.T) {
	forceParallel(t)
	cfg := DefaultConfig()
	a := NewAssessor(cfg)
	if err := a.LoadDefaultCorpus(); err != nil {
		t.Fatal(err)
	}
	warm := renderAssessment(a, a.Assess())
	if got := coldRender(t, cfg, a.FileSet()); !bytes.Equal(warm, got) {
		t.Fatal("initial warm render differs from cold render")
	}
	nFiles := a.FileSet().Len()

	// --- 1-file body edit ---------------------------------------------
	victim := a.Index().Paths[len(a.Index().Paths)/3]
	edited := a.FileSet().Lookup(victim).Src +
		"\nint delta_probe(int x) { if (x > 1) { return x; } return -x; }\n"
	res, err := a.ApplyDelta(Delta{Changed: []*srcfile.File{{Path: victim, Src: edited}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parsed != 1 || res.Unchanged != 0 || res.Removed != 0 {
		t.Fatalf("delta result = %+v, want exactly 1 parsed", res)
	}
	warm = renderAssessment(a, a.Assess())
	if got := coldRender(t, cfg, a.FileSet()); !bytes.Equal(warm, got) {
		t.Fatal("warm re-assessment after 1-file edit differs from cold run")
	}
	// Metrics must have recomputed only the dirty row. (Rule re-checks
	// depend on whether the edit changed cross-file facts; this edit
	// added a function, so the rule cache conservatively re-ran — the
	// metrics cache has no such coupling.)
	if a.MetricFilesComputed() != 1 {
		t.Errorf("metrics recomputed %d rows, want 1", a.MetricFilesComputed())
	}

	// --- no-op delta ---------------------------------------------------
	res, err = a.ApplyDelta(Delta{Changed: []*srcfile.File{{Path: victim, Src: edited}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parsed != 0 || res.Unchanged != 1 {
		t.Fatalf("no-op delta result = %+v", res)
	}
	// State was untouched, so memoized results are still warm: Assess
	// must not re-run anything.
	warm2 := renderAssessment(a, a.Assess())
	if !bytes.Equal(warm, warm2) {
		t.Fatal("no-op delta changed the assessment")
	}

	// --- add + remove --------------------------------------------------
	res, err = a.ApplyDelta(Delta{
		Changed: []*srcfile.File{{Path: "extras/added.c",
			Src: "int extra_global;\nint extra_fn(int v) { return v * 2; }\n"}},
		Removed: []string{a.Index().Paths[0], "not/present.c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parsed != 1 || res.Removed != 1 {
		t.Fatalf("add+remove delta result = %+v", res)
	}
	if a.FileSet().Len() != nFiles+1-1 {
		t.Fatalf("corpus size = %d", a.FileSet().Len())
	}
	warm = renderAssessment(a, a.Assess())
	if got := coldRender(t, cfg, a.FileSet()); !bytes.Equal(warm, got) {
		t.Fatal("warm re-assessment after add+remove differs from cold run")
	}
}

// TestDeltaCudaLangPreserved is the regression gate for delta-file
// language detection: a delta built as bare (path, content) — exactly
// what the HTTP service submits — must re-detect the language from the
// path. The zero Language value is LangC, so forgetting to derive
// silently re-parses CUDA files with kernel lexing off and corrupts the
// corpus-resident File's Lang through FileSet.Add's in-place replace.
func TestDeltaCudaLangPreserved(t *testing.T) {
	a := NewAssessor(DefaultConfig())
	if err := a.LoadDefaultCorpus(); err != nil {
		t.Fatal(err)
	}
	a.Assess()
	var victim string
	for _, p := range a.Index().Paths {
		if srcfile.LanguageForPath(p) == srcfile.LangCUDA {
			victim = p
			break
		}
	}
	if victim == "" {
		t.Fatal("no CUDA file in the default corpus")
	}
	src := a.FileSet().Lookup(victim).Src +
		"\n__global__ void delta_cu_probe(float *p) { p[threadIdx.x] = 0; }\n"
	if _, err := a.ApplyDelta(Delta{Changed: []*srcfile.File{{Path: victim, Src: src}}}); err != nil {
		t.Fatal(err)
	}
	if lang := a.FileSet().Lookup(victim).Lang; lang != srcfile.LangCUDA {
		t.Fatalf("corpus file Lang corrupted to %v after delta", lang)
	}
	warm := renderAssessment(a, a.Assess())
	if got := coldRender(t, DefaultConfig(), a.FileSet()); !bytes.Equal(warm, got) {
		t.Fatal("warm assessment after .cu delta differs from cold ingest")
	}
	// And a .cc edit must stay C++ (the naming rule branches on isC).
	ccVictim := ""
	for _, p := range a.Index().Paths {
		if srcfile.LanguageForPath(p) == srcfile.LangCPP {
			ccVictim = p
			break
		}
	}
	if ccVictim != "" {
		src := a.FileSet().Lookup(ccVictim).Src + "\n// touched\n"
		if _, err := a.ApplyDelta(Delta{Changed: []*srcfile.File{{Path: ccVictim, Src: src}}}); err != nil {
			t.Fatal(err)
		}
		if lang := a.FileSet().Lookup(ccVictim).Lang; lang != srcfile.LangCPP {
			t.Fatalf(".cc file Lang corrupted to %v after delta", lang)
		}
	}
}

// TestDeltaOnlyChangedFileReindexed pins the "re-index only the dirty
// file" property at the core level: artifact records of untouched files
// survive a delta by pointer.
func TestDeltaOnlyChangedFileReindexed(t *testing.T) {
	a := NewAssessor(DefaultConfig())
	if err := a.LoadDefaultCorpus(); err != nil {
		t.Fatal(err)
	}
	ix := a.Index()
	victim := ix.Paths[0]
	before := map[string]interface{}{}
	for _, p := range ix.Paths {
		if p == victim {
			continue
		}
		for i, fa := range ix.UnitFuncs(p) {
			before[fmt.Sprintf("%s#%d", p, i)] = fa
		}
	}
	src := a.FileSet().Lookup(victim).Src + "\n// touched\n"
	if _, err := a.ApplyDelta(Delta{Changed: []*srcfile.File{{Path: victim, Src: src}}}); err != nil {
		t.Fatal(err)
	}
	ix2 := a.Index()
	if ix2 != ix {
		t.Fatal("index identity lost: delta rebuilt the whole index")
	}
	for _, p := range ix2.Paths {
		if p == victim {
			continue
		}
		for i, fa := range ix2.UnitFuncs(p) {
			if before[fmt.Sprintf("%s#%d", p, i)] != fa {
				t.Fatalf("%s: untouched unit re-analyzed", p)
			}
		}
	}
}

// TestDeltaErrors pins the error paths: deltas before load, nameless
// files, and unparseable content must leave state untouched.
func TestDeltaErrors(t *testing.T) {
	a := NewAssessor(DefaultConfig())
	if _, err := a.ApplyDelta(Delta{}); err == nil {
		t.Error("delta before load must fail")
	}
	if err := a.LoadDefaultCorpus(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ApplyDelta(Delta{Changed: []*srcfile.File{{Src: "int x;"}}}); err == nil {
		t.Error("delta file without path must fail")
	}
	findingsBefore := len(a.Findings())
	victim := a.Index().Paths[0]
	// A file that produces no declarations at all parses to a unit with
	// BadDecls, which LoadFileSet-parity accepts; close-brace soup still
	// yields a unit, so instead force the nil-unit path via an empty
	// path check above. Here verify a parseable-but-filthy edit is
	// accepted and applied atomically.
	if _, err := a.ApplyDelta(Delta{Changed: []*srcfile.File{{Path: victim, Src: "}}} not c at all"}}}); err != nil {
		t.Fatalf("error-tolerant parse should accept bad decls: %v", err)
	}
	if len(a.Findings()) == findingsBefore {
		// The edit nuked a whole file of findings; counts must move.
		t.Log("warning: finding count unchanged after destructive edit")
	}
}

// TestLoadDirAssess runs the full pipeline over a real on-disk tree
// (materialized from the victim corpus) — the scenario-diversity path.
func TestLoadDirAssess(t *testing.T) {
	dir := t.TempDir()
	fsOnDisk := map[string]string{
		"perception/det.cc": "int det_count;\nint detect(int t) { if (t > 0) { return 1; } return 0; }\n",
		"planning/plan.c":   "int plan(int a, int b) { return a > b ? a : b; }\n",
		"planning/plan.h":   "extern int plan(int a, int b);\n",
	}
	writeTestTree(t, dir, fsOnDisk)

	a := NewAssessor(DefaultConfig())
	if err := a.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if a.FileSet().Len() != 3 {
		t.Fatalf("loaded %d files", a.FileSet().Len())
	}
	as := a.Assess()
	if len(as.Coding) == 0 || len(as.Observations) != 14 {
		t.Fatal("assessment incomplete over directory corpus")
	}
	// The loaded tree participates in deltas like any corpus.
	res, err := a.ApplyDelta(Delta{Changed: []*srcfile.File{{
		Path: "planning/plan.c",
		Src:  "int plan(int a, int b) { int m; if (a > b) { m = a; } else { m = b; } return m; }\n",
	}}})
	if err != nil || res.Parsed != 1 {
		t.Fatalf("delta over dir corpus: %+v, %v", res, err)
	}
	warm := renderAssessment(a, a.Assess())
	if got := coldRender(t, DefaultConfig(), a.FileSet()); !bytes.Equal(warm, got) {
		t.Fatal("dir-corpus warm assessment differs from cold run")
	}
}

// TestCustomRuleSetDelta ensures ApplyDelta works when the config
// carries a non-default rule subset (the incremental engine is per-
// assessor, built from cfg.Rules).
func TestCustomRuleSetDelta(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rules = []rules.Rule{&rules.GotoRule{}, &rules.GlobalVarRule{}}
	a := NewAssessor(cfg)
	if err := a.LoadDefaultCorpus(); err != nil {
		t.Fatal(err)
	}
	a.Assess()
	victim := a.Index().Paths[1]
	src := a.FileSet().Lookup(victim).Src + "\nint subset_probe;\n"
	if _, err := a.ApplyDelta(Delta{Changed: []*srcfile.File{{Path: victim, Src: src}}}); err != nil {
		t.Fatal(err)
	}
	warm := renderAssessment(a, a.Assess())
	if got := coldRender(t, cfg, a.FileSet()); !bytes.Equal(warm, got) {
		t.Fatal("subset-rule warm assessment differs from cold run")
	}
}

// TestDeltaPureAddKeepsIndexViews is the regression gate for the
// shared-Units-map trap: CommitDelta installs new units into the map the
// index shares BEFORE Index.Apply runs, so Apply must detect adds from
// its own shard membership, not from Units[p]. A pure-add delta (no
// removals alongside to mask it) must extend Index().Paths and keep warm
// output byte-identical to a cold run.
func TestDeltaPureAddKeepsIndexViews(t *testing.T) {
	a := NewAssessor(DefaultConfig())
	if err := a.LoadFileSet(func() *srcfile.FileSet {
		fs := srcfile.NewFileSet()
		fs.AddSource("m/a.c", "int fa(int x) { return x; }\n")
		fs.AddSource("n/c.c", "int fc(int x) { return x + 1; }\n")
		return fs
	}()); err != nil {
		t.Fatal(err)
	}
	a.Assess()
	if _, err := a.ApplyDelta(Delta{Changed: []*srcfile.File{
		{Path: "m/b.c", Src: "int gb;\nint fb(int x) { if (x > 0) { return 1; } return 0; }\n"},
		{Path: "o/d.c", Src: "int fd(int k) { return k * 2; }\n"},
	}}); err != nil {
		t.Fatal(err)
	}
	paths := a.Index().Paths
	want := []string{"m/a.c", "m/b.c", "n/c.c", "o/d.c"}
	if len(paths) != len(want) {
		t.Fatalf("Index().Paths = %v after pure-add delta, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("Index().Paths = %v after pure-add delta, want %v", paths, want)
		}
	}
	warm := renderAssessment(a, a.Assess())
	if got := coldRender(t, DefaultConfig(), a.FileSet()); !bytes.Equal(warm, got) {
		t.Fatal("warm assessment after pure-add delta differs from cold run")
	}
}

// TestDeltaModuleOverrideMove pins the module-move path: replacing a
// file with an explicit Module override must move it between shards
// (no duplicate in the old shard — FileSet.Add mutates the canonical
// *File in place, so Apply cannot learn the old module from the unit)
// and keep warm output byte-identical to a cold ingest.
func TestDeltaModuleOverrideMove(t *testing.T) {
	a := NewAssessor(DefaultConfig())
	if err := a.LoadFileSet(func() *srcfile.FileSet {
		fs := srcfile.NewFileSet()
		fs.AddSource("m/a.c", "int fa(int x) { return x; }\n")
		fs.AddSource("n/c.c", "int fc(int x) { return x + 1; }\n")
		return fs
	}()); err != nil {
		t.Fatal(err)
	}
	a.Assess()
	if _, err := a.ApplyDelta(Delta{Changed: []*srcfile.File{
		{Path: "m/a.c", Module: "n", Src: "int fa(int x) { return x - 1; }\n"},
	}}); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Index().Paths); got != 2 {
		t.Fatalf("index holds %d paths after module move, want 2", got)
	}
	if sh := a.Index().Shard("m"); sh != nil && sh.Len() > 0 {
		t.Fatalf("old shard m still owns %d paths after module move", sh.Len())
	}
	fw := a.Metrics()
	if len(fw.Files) != 2 || fw.TotalFunc != 2 {
		t.Fatalf("warm metrics double-count after module move: %d files / %d funcs",
			len(fw.Files), fw.TotalFunc)
	}
	warm := renderAssessment(a, a.Assess())
	if got := coldRender(t, DefaultConfig(), a.FileSet()); !bytes.Equal(warm, got) {
		t.Fatal("warm assessment after module-override move differs from cold run")
	}
}
