package core

import (
	"fmt"
	"sort"

	"repro/internal/apollocorpus"
	"repro/internal/artifact"
	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/cinterp"
	"repro/internal/coverage"
	"repro/internal/cuda"
	"repro/internal/gpusim"
	"repro/internal/rules"
	"repro/internal/srcfile"
	"repro/internal/yolo"
)

// ---------------------------------------------------------------------------
// Figure 3 — complexity, LOC, and function counts per module

// ComplexityRow is one module's bar group in Figure 3.
type ComplexityRow struct {
	Module    string
	LOC       int
	Functions int
	Over10    int
	Over20    int
	Over50    int
}

// Figure3 computes the per-module complexity profile.
func (a *Assessor) Figure3() []ComplexityRow {
	fw := a.Metrics()
	out := make([]ComplexityRow, 0, len(fw.Modules))
	for _, m := range fw.Modules {
		out = append(out, ComplexityRow{
			Module: m.Name, LOC: m.LOC, Functions: m.Functions,
			Over10: m.OverCCN[10], Over20: m.OverCCN[20], Over50: m.OverCCN[50],
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 4 — CUDA findings on the scale_bias_gpu excerpt

// Figure4Finding is one diagnostic on the paper's CUDA excerpt.
type Figure4Finding struct {
	Line int
	Rule string
	Msg  string
}

// Figure4 runs the pointer/dynamic-memory/subset rules over the bundled
// scale_bias_gpu sample, reproducing the paper's qualitative discussion.
func Figure4() ([]Figure4Finding, error) {
	fs := srcfile.NewFileSet()
	fs.Add(apollocorpus.ScaleBiasSample())
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		return nil, fmt.Errorf("figure4: parse: %v", errs[0])
	}
	ctx := rules.NewContext(units)
	var fset []rules.Finding
	for _, r := range []rules.Rule{&rules.DynamicMemoryRule{}, &rules.PointerRule{}, &rules.LanguageSubsetRule{}} {
		fset = append(fset, r.Check(ctx)...)
	}
	sort.Slice(fset, func(i, j int) bool { return fset[i].Line < fset[j].Line })
	out := make([]Figure4Finding, len(fset))
	for i, f := range fset {
		out[i] = Figure4Finding{Line: f.Line, Rule: f.RuleID, Msg: f.Msg}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 5 — YOLO CPU coverage (statement / branch / MC/DC per file)

// CoverageRow is one file's coverage triple.
type CoverageRow struct {
	File      string
	StmtPct   float64
	BranchPct float64
	MCDCPct   float64
}

// Figure5Result is the full Figure 5 dataset.
type Figure5Result struct {
	Rows []CoverageRow
	// Averages across files (the paper reports 83 / 75 / 61).
	AvgStmt, AvgBranch, AvgMCDC float64
}

// Figure5 parses the YOLO corpus, executes the bundled test drivers on the
// interpreter under coverage instrumentation, and reports per-file
// statement, branch, and MC/DC coverage with never-called functions
// excluded, matching the paper's methodology.
func Figure5(mode coverage.MCDCMode) (*Figure5Result, error) {
	fs := apollocorpus.YoloCorpus()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		return nil, fmt.Errorf("figure5: parse: %v", errs[0])
	}
	var tus []*ccast.TranslationUnit
	recorders := make(map[string]*coverage.Recorder)
	var allHooks []cinterp.Hooks
	// The artifact index supplies each function's memoized CFG, so both
	// MC/DC modes (and repeated runs) instrument without re-walking ASTs.
	ix := artifact.Build(units)
	for _, p := range ix.Paths {
		tu := units[p]
		tus = append(tus, tu)
		if p == apollocorpus.YoloDriverFile {
			continue // drivers execute but are not reported
		}
		rec := coverage.NewRecorderIndexed(ix.UnitFuncs(p), p)
		recorders[p] = rec
		allHooks = append(allHooks, rec.Hooks())
	}
	m := cinterp.NewMachine(tus...)
	m.Hooks = combineHooks(allHooks)
	for _, entry := range apollocorpus.YoloEntryPoints() {
		m.Reset()
		if _, err := m.Call(entry); err != nil {
			return nil, fmt.Errorf("figure5: %s: %w", entry, err)
		}
	}
	res := &Figure5Result{}
	var summaries []*coverage.Summary
	for _, p := range ix.Paths {
		rec, ok := recorders[p]
		if !ok {
			continue
		}
		s := coverage.FileSummary(p, rec.Funcs, mode, true)
		summaries = append(summaries, s)
		res.Rows = append(res.Rows, CoverageRow{
			File: p, StmtPct: s.StmtPct(), BranchPct: s.BranchPct(), MCDCPct: s.MCDCPct(),
		})
	}
	res.AvgStmt, res.AvgBranch, res.AvgMCDC = coverage.Average(summaries)
	return res, nil
}

// combineHooks fans interpreter events to several recorders.
func combineHooks(hs []cinterp.Hooks) cinterp.Hooks {
	return cinterp.Hooks{
		OnStmt: func(s ccast.Stmt) {
			for _, h := range hs {
				h.OnStmt(s)
			}
		},
		OnDecision: func(owner ccast.Node, outcome bool) {
			for _, h := range hs {
				h.OnDecision(owner, outcome)
			}
		},
		OnCondition: func(owner ccast.Node, leaf ccast.Expr, outcome bool) {
			for _, h := range hs {
				h.OnCondition(owner, leaf, outcome)
			}
		},
		OnCase: func(c *ccast.CaseClause, matched bool) {
			for _, h := range hs {
				h.OnCase(c, matched)
			}
		},
	}
}

// ---------------------------------------------------------------------------
// Figure 6 — stencil CUDA kernels run on the CPU (cuda4cpu methodology)

// Figure6Row is one kernel's statement/branch coverage.
type Figure6Row struct {
	Kernel    string
	StmtPct   float64
	BranchPct float64
}

// Figure6 executes the 2D/3D stencil kernels under the CUDA emulator with
// coverage instrumentation on the kernel bodies.
func Figure6() ([]Figure6Row, error) {
	fs := apollocorpus.StencilCorpus()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		return nil, fmt.Errorf("figure6: parse: %v", errs[0])
	}
	var tus []*ccast.TranslationUnit
	var kernels []*artifact.Func
	ix := artifact.Build(units)
	for _, p := range ix.Paths {
		tus = append(tus, units[p])
		for _, fa := range ix.UnitFuncs(p) {
			if fa.Decl.IsKernel() {
				kernels = append(kernels, fa)
			}
		}
	}
	rec := coverage.NewRecorderIndexed(kernels, "stencil")
	m := cinterp.NewMachine(tus...)
	m.Hooks = rec.Hooks()
	m.MaxSteps = 500_000_000
	cuda.NewEmulator(m)
	for _, entry := range apollocorpus.StencilEntryPoints() {
		m.Reset()
		if _, err := m.Call(entry); err != nil {
			return nil, fmt.Errorf("figure6: %s: %w", entry, err)
		}
	}
	var out []Figure6Row
	for _, fc := range rec.Funcs {
		s := fc.Summarize(coverage.UniqueCause)
		out = append(out, Figure6Row{
			Kernel: fc.Name, StmtPct: s.StmtPct(), BranchPct: s.BranchPct(),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 7 — object detection with open vs closed libraries vs CPU

// Figure7Row is one library's modeled detection time.
type Figure7Row struct {
	Library    string
	Device     string
	Open       bool
	TimeMs     float64
	RelToCuDNN float64
}

// Figure7 estimates one tiny-YOLO inference per library model.
func Figure7() []Figure7Row {
	net := yolo.TinyYOLO()
	gpu, cpu := gpusim.TitanV(), gpusim.XeonCPU()
	libs := []*gpusim.Library{
		gpusim.CuDNN(gpu), gpusim.CuBLAS(gpu),
		gpusim.ISAAC(gpu), gpusim.CUTLASS(gpu),
		gpusim.ATLAS(cpu), gpusim.OpenBLAS(cpu),
	}
	base := net.InferenceTimeMs(libs[0])
	out := make([]Figure7Row, 0, len(libs))
	for _, lib := range libs {
		t := net.InferenceTimeMs(lib)
		out = append(out, Figure7Row{
			Library: lib.Name, Device: lib.Device.Name, Open: lib.Open,
			TimeMs: t, RelToCuDNN: t / base,
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 8 — relative performance of open vs closed libraries

// RelPerfRow is one workload's open/closed performance ratio
// (ratio > 1 means the open library is faster).
type RelPerfRow struct {
	Workload string
	OpenMs   float64
	ClosedMs float64
	Relative float64
}

// Figure8aShapes are the GEMM shapes swept in Figure 8(a): square sizes
// plus the skinny shapes YOLO's im2col produces.
func Figure8aShapes() []gpusim.GEMMShape {
	return []gpusim.GEMMShape{
		{M: 128, N: 128, K: 128}, {M: 256, N: 256, K: 256},
		{M: 512, N: 512, K: 512}, {M: 1024, N: 1024, K: 1024},
		{M: 2048, N: 2048, K: 2048}, {M: 4096, N: 4096, K: 4096},
		{M: 16, N: 43264, K: 27},   // yolo conv1 as GEMM
		{M: 125, N: 169, K: 1024},  // yolo detection head
		{M: 1024, N: 169, K: 9216}, // yolo conv8
	}
}

// Figure8a compares CUTLASS against cuBLAS over the GEMM sweep.
func Figure8a() []RelPerfRow {
	gpu := gpusim.TitanV()
	cb, ct := gpusim.CuBLAS(gpu), gpusim.CUTLASS(gpu)
	var out []RelPerfRow
	for _, s := range Figure8aShapes() {
		open, closed := ct.GEMMTime(s), cb.GEMMTime(s)
		out = append(out, RelPerfRow{
			Workload: s.String(), OpenMs: open, ClosedMs: closed,
			Relative: closed / open,
		})
	}
	return out
}

// Figure8bShapes are DeepBench-style convolution workloads from vision,
// speech, and detection networks.
func Figure8bShapes() []gpusim.ConvShape {
	return []gpusim.ConvShape{
		{N: 1, C: 3, H: 416, W: 416, K: 16, R: 3, Stride: 1, Pad: 1},   // yolo conv1
		{N: 1, C: 256, H: 52, W: 52, K: 512, R: 3, Stride: 1, Pad: 1},  // yolo mid
		{N: 1, C: 512, H: 13, W: 13, K: 1024, R: 3, Stride: 1, Pad: 1}, // yolo deep
		{N: 1, C: 64, H: 224, W: 224, K: 64, R: 3, Stride: 1, Pad: 1},  // vgg-ish
		{N: 1, C: 128, H: 56, W: 56, K: 256, R: 3, Stride: 2, Pad: 1},  // resnet-ish
		{N: 1, C: 64, H: 112, W: 112, K: 64, R: 1, Stride: 1, Pad: 0},  // 1x1
		{N: 1, C: 3, H: 300, W: 300, K: 32, R: 7, Stride: 2, Pad: 3},   // stem
		{N: 1, C: 960, H: 7, W: 7, K: 320, R: 1, Stride: 1, Pad: 0},    // mobilenet tail
	}
}

// Figure8b compares ISAAC against cuDNN over the convolution sweep.
func Figure8b() []RelPerfRow {
	gpu := gpusim.TitanV()
	cd, is := gpusim.CuDNN(gpu), gpusim.ISAAC(gpu)
	var out []RelPerfRow
	for _, s := range Figure8bShapes() {
		open, closed := is.ConvTime(s), cd.ConvTime(s)
		out = append(out, RelPerfRow{
			Workload: s.String(), OpenMs: open, ClosedMs: closed,
			Relative: closed / open,
		})
	}
	return out
}
