package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/artifact"
	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/iso26262"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/rules"
	"repro/internal/srcfile"
)

// This file is the assessor's snapshot/restore boundary, the core of the
// persistent corpus store (internal/store holds the on-disk codec and
// journal; this file defines what state round-trips).
//
// A snapshot captures the corpus sources plus every expensive derived
// artifact: per-unit analysis facts (artifact.UnitFacts), the rule
// engine's per-file finding segments and corpus segment, and the
// per-file metric rows. Restore rebuilds the file set, fabricates
// fact-carrying stub units (no statement bodies — nothing is parsed),
// reconstructs the sharded index from the facts, and seeds the rule and
// metrics caches warm, so the restored assessor answers Findings /
// Metrics / Assess byte-identically to the snapshotted one in O(load)
// and its first delta costs the same as a delta on the never-restarted
// process. Architectural partials are not persisted; they re-fold from
// the restored facts without text scans.
//
// Stub units are hydrated — re-parsed into real ASTs — lazily, the
// moment the rule engine needs to re-walk them (a content edit arrives
// freshly parsed through the delta path; an environment invalidation
// re-walks untouched files and triggers hydration). Hydration is
// content-preserving, so every signature and cache key stays valid.

// PersistedFile is the serializable projection of one corpus file.
type PersistedFile struct {
	Path   string
	Module string // the stored (possibly overridden) module
	Lang   srcfile.Language
	Src    string
}

// PersistedState is the complete snapshot of a warm assessor. It is
// plain data: internal/store encodes it to the versioned binary
// snapshot format, and the differential harness round-trips it to pin
// restore equivalence.
type PersistedState struct {
	// Target is the ASIL the assessor judges against.
	Target iso26262.ASIL
	// RuleIDs fingerprints the rule set the cached findings came from;
	// restore refuses a mismatching engine rather than serving another
	// rule set's cache as its own.
	RuleIDs []string
	// Files holds the corpus in FileSet insertion order.
	Files []PersistedFile
	// Units holds per-unit analysis facts in sorted path order.
	Units []artifact.UnitFacts
	// FileFindings maps every unit path to its cached finding segment
	// (present even when empty).
	FileFindings map[string][]rules.Finding
	// CorpusFindings is the corpus-level (cross-file) finding segment.
	CorpusFindings []rules.Finding
	// MetricRows maps every unit path to its metrics row.
	MetricRows map[string]*metrics.FileMetrics
	// ShardSigs maps each module shard to its (export, graph) signature
	// pair at snapshot time. Optional: restore seeds them so the index
	// answers overlay queries without re-hashing the facts; when absent
	// the signatures are recomputed from the (identical) restored facts.
	ShardSigs map[string][2]uint64
}

// ruleIDs lists a rule set's IDs in engine order.
func ruleIDs(rs []rules.Rule) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID()
	}
	return out
}

// ExportState captures the assessor's corpus and warm caches as a
// snapshot. It runs Findings and Metrics first (a no-op when already
// warm) so the exported caches are complete. Only fused rule sets can
// snapshot: non-fused sets never populate the incremental caches.
func (a *Assessor) ExportState() (*PersistedState, error) {
	if a.fs == nil {
		return nil, errors.New("core: ExportState before a corpus is loaded")
	}
	a.Findings()
	a.Metrics()
	perFile, corpus, ok := a.ruleEng.ExportCache()
	if !ok {
		return nil, errors.New("core: snapshot requires the fused rule engine (a non-fused rule set keeps no warm cache)")
	}
	rows, ok := a.mcache.ExportRows()
	if !ok {
		return nil, errors.New("core: metrics cache not warm after Metrics()")
	}
	ix := a.Index()
	st := &PersistedState{
		Target:         a.cfg.TargetASIL,
		RuleIDs:        ruleIDs(a.cfg.Rules),
		Files:          make([]PersistedFile, 0, a.fs.Len()),
		Units:          make([]artifact.UnitFacts, 0, len(ix.Paths)),
		FileFindings:   perFile,
		CorpusFindings: corpus,
		MetricRows:     rows,
	}
	for _, f := range a.fs.Files() {
		st.Files = append(st.Files, PersistedFile{Path: f.Path, Module: f.Module, Lang: f.Lang, Src: f.Src})
	}
	for _, p := range ix.Paths {
		st.Units = append(st.Units, ix.UnitFacts(p))
	}
	st.ShardSigs = make(map[string][2]uint64, len(ix.ShardNames()))
	for _, m := range ix.ShardNames() {
		if e, g, ok := ix.ShardSigs(m); ok {
			st.ShardSigs[m] = [2]uint64{e, g}
		}
	}
	return st, nil
}

// StateSource is the lazy face of a snapshot: the restore path pulls
// the cheap corpus skeleton (files, per-unit facts, shard signatures)
// eagerly and defers each shard's finding segments and metric rows
// until the caches first touch that shard. internal/store's Snapshot
// implements it over the raw snapshot bytes (decoding one shard block
// per call); stateSource below adapts an eagerly decoded
// PersistedState to the same shape.
//
// Shard grouping must match the artifact index's: a module's units are
// exactly the units whose file has that ModuleName, listed in sorted
// path order. RestoreAssessorFrom validates this before seeding any
// cache.
type StateSource interface {
	// Target is the ASIL the snapshotted assessor judged against.
	Target() iso26262.ASIL
	// RuleIDs fingerprints the snapshotted rule set.
	RuleIDs() []string
	// Files returns the corpus in FileSet insertion order.
	Files() ([]PersistedFile, error)
	// ShardNames lists the module shards in sorted order.
	ShardNames() []string
	// ShardSigs returns a shard's persisted (export, graph) signature
	// pair; ok=false means restore recomputes them from the facts.
	ShardSigs(module string) (export, graph uint64, ok bool)
	// ShardUnits returns a shard's per-unit facts in sorted path order.
	ShardUnits(module string) ([]artifact.UnitFacts, error)
	// CorpusFindings returns the corpus-level finding segment.
	CorpusFindings() ([]rules.Finding, error)
	// ShardFindings returns a shard's per-path finding lists, aligned
	// with its ShardUnits path order.
	ShardFindings(module string) ([][]rules.Finding, error)
	// ShardMetrics returns a shard's metric rows for the given paths
	// (the shard's snapshot-time path list), in order.
	ShardMetrics(module string, paths []string) ([]*metrics.FileMetrics, error)
}

// RestoreAssessor rebuilds a warm assessor from an eagerly decoded
// snapshot state (see RestoreAssessorFrom for the lazy path both now
// share). The target ASIL comes from the snapshot; cfg supplies
// everything else (a nil cfg.Rules means rules.DefaultRules, which must
// match the snapshot's rule fingerprint). No source is parsed: units
// are fact-carrying stubs, hydrated on demand when a cache needs their
// ASTs.
func RestoreAssessor(cfg Config, st *PersistedState) (*Assessor, error) {
	return RestoreAssessorFrom(cfg, newStateSource(st))
}

// RestoreAssessorFrom rebuilds a warm assessor from a state source.
// The skeleton — file set, fact stubs, sharded index — is built
// eagerly; the rule and metric caches are seeded *sealed*, pulling each
// shard's finding segments and metric rows from the source on first
// touch and deferring content hashing until a delta dirties the shard.
// A shard block that fails to load degrades to a recompute of exactly
// that shard (hydrating its stubs), never to stale or wrong output.
func RestoreAssessorFrom(cfg Config, src StateSource) (*Assessor, error) {
	cfg.TargetASIL = src.Target()
	a := NewAssessor(cfg)
	if got, want := ruleIDs(a.cfg.Rules), src.RuleIDs(); !equalStrings(got, want) {
		return nil, fmt.Errorf("core: snapshot rule set %v does not match engine rule set %v", want, got)
	}
	files, err := src.Files()
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, errors.New("core: snapshot holds no files")
	}

	fs := srcfile.NewFileSet()
	for i := range files {
		pf := &files[i]
		if pf.Path == "" {
			return nil, errors.New("core: snapshot file without a path")
		}
		if fs.Lookup(pf.Path) != nil {
			return nil, fmt.Errorf("core: snapshot holds %s twice", pf.Path)
		}
		fs.Add(&srcfile.File{Path: pf.Path, Module: pf.Module, Lang: pf.Lang, Src: pf.Src})
	}

	names := src.ShardNames()
	units := make(map[string]*ccast.TranslationUnit, len(files))
	recs := make(map[string][]*artifact.Func, len(files))
	stubs := make(map[string]bool, len(files))
	seeds := &lazySeeds{
		src:    src,
		paths:  make(map[string][]string, len(names)),
		hashes: make(map[string]func() []uint64, len(names)),
	}
	// Decode, validate, and fabricate each shard's stub units on a
	// worker pool — ShardUnits decodes disjoint snapshot blocks, the
	// file-set lookups are read-only, and fabrication writes only
	// shard-local slices. The shared maps are filled (and cross-shard
	// duplicates detected) in a sequential merge in shard name order, so
	// errors surface exactly as the sequential loop reported them.
	type shardRestore struct {
		ufs []artifact.UnitFacts
		tus []*ccast.TranslationUnit
		fas [][]*artifact.Func
		// paths and srcs pin the shard's snapshot-time path list and
		// sources, captured as (immutable) strings: a later delta replaces
		// the corpus *File structs in place (FileSet.Add), so deferred
		// hashing must not go through the file pointers or a changed
		// file's stale cache entry would validate against its own new
		// content.
		paths []string
		srcs  []string
		err   error
	}
	parts := make([]shardRestore, len(names))
	par.For(par.Workers(len(names)), len(names), func(k int) {
		m := names[k]
		p := &parts[k]
		ufs, err := src.ShardUnits(m)
		if err != nil {
			p.err = err
			return
		}
		p.ufs = ufs
		p.tus = make([]*ccast.TranslationUnit, len(ufs))
		p.fas = make([][]*artifact.Func, len(ufs))
		p.paths = make([]string, len(ufs))
		p.srcs = make([]string, len(ufs))
		for i := range ufs {
			uf := ufs[i]
			f := fs.Lookup(uf.Path)
			if f == nil {
				p.err = fmt.Errorf("core: snapshot unit %s has no file", uf.Path)
				return
			}
			if f.ModuleName() != m {
				p.err = fmt.Errorf("core: snapshot unit %s filed under shard %q but its module is %q", uf.Path, m, f.ModuleName())
				return
			}
			p.tus[i], p.fas[i] = artifact.UnitFromFacts(f, uf)
			p.paths[i], p.srcs[i] = uf.Path, f.Src
		}
	})
	nUnits := 0
	for k, m := range names {
		p := &parts[k]
		if p.err != nil {
			return nil, p.err
		}
		for i := range p.ufs {
			path := p.paths[i]
			if units[path] != nil {
				return nil, fmt.Errorf("core: snapshot holds unit %s twice", path)
			}
			units[path], recs[path] = p.tus[i], p.fas[i]
			stubs[path] = true
		}
		srcs := p.srcs
		seeds.paths[m] = p.paths
		seeds.hashes[m] = func() []uint64 {
			hs := make([]uint64, len(srcs))
			for i, s := range srcs {
				hs[i] = srcfile.HashSrc(s)
			}
			return hs
		}
		nUnits += len(p.ufs)
	}
	if nUnits != len(files) {
		return nil, fmt.Errorf("core: snapshot has %d files but %d units", len(files), nUnits)
	}
	ix, err := artifact.BuildFromRecords(units, recs)
	if err != nil {
		return nil, err
	}
	for _, m := range names {
		// The index derived the same partition the snapshot declared, in
		// the same (sorted) order — required for the positional zip of the
		// lazy shard blocks. Inequality means corrupt or inconsistent
		// grouping, not a recoverable cache miss.
		if !equalStrings(ix.Shard(m).Paths(), seeds.paths[m]) {
			return nil, fmt.Errorf("core: snapshot shard %q path list does not match the restored index", m)
		}
		if e, g, ok := src.ShardSigs(m); ok {
			ix.SeedShardSigs(m, e, g)
		}
	}
	corpus, err := src.CorpusFindings()
	if err != nil {
		return nil, err
	}

	a.fs, a.units, a.ix = fs, units, ix
	a.ruleEng.RestoreCacheLazy(ix, corpus, seeds)
	a.mcache.RestoreRowsLazy(ix, seeds)
	a.stubs = stubs
	a.ruleEng.Hydrate = a.hydratePaths
	a.mcache.Hydrate = a.hydratePaths
	return a, nil
}

// lazySeeds adapts a StateSource to the loader interfaces of the rule
// engine (rules.ShardLoader) and the metrics cache (metrics.RowLoader),
// pinning the restore-time path lists and file identities so content
// hashes computed at thaw time cover the snapshot's sources even after
// later deltas replaced corpus entries.
type lazySeeds struct {
	src    StateSource
	paths  map[string][]string
	hashes map[string]func() []uint64
}

func (l *lazySeeds) ShardKeys(m string) ([]string, []uint64, bool) {
	h := l.hashes[m]
	if h == nil {
		return nil, nil, false
	}
	return l.paths[m], h(), true
}

func (l *lazySeeds) ShardFindings(m string) ([][]rules.Finding, bool) {
	fss, err := l.src.ShardFindings(m)
	if err != nil || len(fss) != len(l.paths[m]) {
		return nil, false
	}
	return fss, true
}

func (l *lazySeeds) ShardRows(m string) ([]*metrics.FileMetrics, bool) {
	rows, err := l.src.ShardMetrics(m, l.paths[m])
	if err != nil || len(rows) != len(l.paths[m]) {
		return nil, false
	}
	for _, r := range rows {
		if r == nil {
			return nil, false
		}
	}
	return rows, true
}

// stateSource adapts an eagerly decoded PersistedState to the lazy
// restore path (grouping its flat maps by module shard once).
type stateSource struct {
	st    *PersistedState
	names []string
	units map[string][]artifact.UnitFacts
}

func newStateSource(st *PersistedState) *stateSource {
	s := &stateSource{st: st, units: make(map[string][]artifact.UnitFacts)}
	modOf := make(map[string]string, len(st.Files))
	for i := range st.Files {
		pf := &st.Files[i]
		f := srcfile.File{Path: pf.Path, Module: pf.Module}
		modOf[pf.Path] = f.ModuleName()
	}
	for i := range st.Units {
		uf := st.Units[i]
		m, ok := modOf[uf.Path]
		if !ok {
			// No file for this unit: derive the module so the unit still
			// surfaces (as a "unit has no file" restore error) instead of
			// silently vanishing from every shard.
			f := srcfile.File{Path: uf.Path}
			m = f.ModuleName()
		}
		s.units[m] = append(s.units[m], uf)
	}
	s.names = make([]string, 0, len(s.units))
	for m := range s.units {
		s.names = append(s.names, m)
	}
	sort.Strings(s.names)
	return s
}

func (s *stateSource) Target() iso26262.ASIL           { return s.st.Target }
func (s *stateSource) RuleIDs() []string               { return s.st.RuleIDs }
func (s *stateSource) Files() ([]PersistedFile, error) { return s.st.Files, nil }
func (s *stateSource) ShardNames() []string            { return s.names }

func (s *stateSource) ShardSigs(m string) (uint64, uint64, bool) {
	sig, ok := s.st.ShardSigs[m]
	return sig[0], sig[1], ok
}

func (s *stateSource) ShardUnits(m string) ([]artifact.UnitFacts, error) {
	return s.units[m], nil
}

func (s *stateSource) CorpusFindings() ([]rules.Finding, error) {
	return s.st.CorpusFindings, nil
}

func (s *stateSource) ShardFindings(m string) ([][]rules.Finding, error) {
	ufs := s.units[m]
	out := make([][]rules.Finding, len(ufs))
	for i := range ufs {
		fs, ok := s.st.FileFindings[ufs[i].Path]
		if !ok {
			return nil, fmt.Errorf("core: snapshot misses the finding segment of %s", ufs[i].Path)
		}
		out[i] = fs
	}
	return out, nil
}

func (s *stateSource) ShardMetrics(m string, paths []string) ([]*metrics.FileMetrics, error) {
	out := make([]*metrics.FileMetrics, len(paths))
	for i, p := range paths {
		fm := s.st.MetricRows[p]
		if fm == nil {
			return nil, fmt.Errorf("core: snapshot misses the metrics row of %s", p)
		}
		out[i] = fm
	}
	return out, nil
}

// StubUnits reports how many restored units are still fact-carrying
// stubs (never re-parsed since restore). Diagnostics and tests only.
func (a *Assessor) StubUnits() int { return len(a.stubs) }

// hydratePaths re-parses any still-stub units among paths and swaps the
// real ASTs (and re-analyzed records) into the index in place. Invoked
// by the rule engine at a sequential point before it walks dirty files.
// The corpus content of a stub is by construction unchanged since the
// snapshot, so hydration changes no signature, hash, or cache key.
func (a *Assessor) hydratePaths(paths []string) {
	var todo []string
	for _, p := range paths {
		if a.stubs[p] {
			todo = append(todo, p)
		}
	}
	if len(todo) == 0 {
		return
	}
	tus := make([]*ccast.TranslationUnit, len(todo))
	par.For(par.Workers(len(todo)), len(todo), func(i int) {
		tu, _ := ccparse.Parse(a.fs.Lookup(todo[i]), ccparse.Options{Intern: a.intern})
		tus[i] = tu
	})
	for i, p := range todo {
		if tus[i] == nil {
			// Unreachable for state that parsed before the snapshot was
			// taken; corrupted snapshots fail their checksums long before
			// this point.
			panic(fmt.Sprintf("core: hydrating %s: snapshot source no longer parses", p))
		}
		a.ix.Rehydrate(tus[i], artifact.AnalyzeUnit(tus[i]))
		delete(a.stubs, p)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
