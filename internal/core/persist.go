package core

import (
	"errors"
	"fmt"

	"repro/internal/artifact"
	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/iso26262"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/rules"
	"repro/internal/srcfile"
)

// This file is the assessor's snapshot/restore boundary, the core of the
// persistent corpus store (internal/store holds the on-disk codec and
// journal; this file defines what state round-trips).
//
// A snapshot captures the corpus sources plus every expensive derived
// artifact: per-unit analysis facts (artifact.UnitFacts), the rule
// engine's per-file finding segments and corpus segment, and the
// per-file metric rows. Restore rebuilds the file set, fabricates
// fact-carrying stub units (no statement bodies — nothing is parsed),
// reconstructs the sharded index from the facts, and seeds the rule and
// metrics caches warm, so the restored assessor answers Findings /
// Metrics / Assess byte-identically to the snapshotted one in O(load)
// and its first delta costs the same as a delta on the never-restarted
// process. Architectural partials are not persisted; they re-fold from
// the restored facts without text scans.
//
// Stub units are hydrated — re-parsed into real ASTs — lazily, the
// moment the rule engine needs to re-walk them (a content edit arrives
// freshly parsed through the delta path; an environment invalidation
// re-walks untouched files and triggers hydration). Hydration is
// content-preserving, so every signature and cache key stays valid.

// PersistedFile is the serializable projection of one corpus file.
type PersistedFile struct {
	Path   string
	Module string // the stored (possibly overridden) module
	Lang   srcfile.Language
	Src    string
}

// PersistedState is the complete snapshot of a warm assessor. It is
// plain data: internal/store encodes it to the versioned binary
// snapshot format, and the differential harness round-trips it to pin
// restore equivalence.
type PersistedState struct {
	// Target is the ASIL the assessor judges against.
	Target iso26262.ASIL
	// RuleIDs fingerprints the rule set the cached findings came from;
	// restore refuses a mismatching engine rather than serving another
	// rule set's cache as its own.
	RuleIDs []string
	// Files holds the corpus in FileSet insertion order.
	Files []PersistedFile
	// Units holds per-unit analysis facts in sorted path order.
	Units []artifact.UnitFacts
	// FileFindings maps every unit path to its cached finding segment
	// (present even when empty).
	FileFindings map[string][]rules.Finding
	// CorpusFindings is the corpus-level (cross-file) finding segment.
	CorpusFindings []rules.Finding
	// MetricRows maps every unit path to its metrics row.
	MetricRows map[string]*metrics.FileMetrics
}

// ruleIDs lists a rule set's IDs in engine order.
func ruleIDs(rs []rules.Rule) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID()
	}
	return out
}

// ExportState captures the assessor's corpus and warm caches as a
// snapshot. It runs Findings and Metrics first (a no-op when already
// warm) so the exported caches are complete. Only fused rule sets can
// snapshot: non-fused sets never populate the incremental caches.
func (a *Assessor) ExportState() (*PersistedState, error) {
	if a.fs == nil {
		return nil, errors.New("core: ExportState before a corpus is loaded")
	}
	a.Findings()
	a.Metrics()
	perFile, corpus, ok := a.ruleEng.ExportCache()
	if !ok {
		return nil, errors.New("core: snapshot requires the fused rule engine (a non-fused rule set keeps no warm cache)")
	}
	rows, ok := a.mcache.ExportRows()
	if !ok {
		return nil, errors.New("core: metrics cache not warm after Metrics()")
	}
	ix := a.Index()
	st := &PersistedState{
		Target:         a.cfg.TargetASIL,
		RuleIDs:        ruleIDs(a.cfg.Rules),
		Files:          make([]PersistedFile, 0, a.fs.Len()),
		Units:          make([]artifact.UnitFacts, 0, len(ix.Paths)),
		FileFindings:   perFile,
		CorpusFindings: corpus,
		MetricRows:     rows,
	}
	for _, f := range a.fs.Files() {
		st.Files = append(st.Files, PersistedFile{Path: f.Path, Module: f.Module, Lang: f.Lang, Src: f.Src})
	}
	for _, p := range ix.Paths {
		st.Units = append(st.Units, ix.UnitFacts(p))
	}
	return st, nil
}

// RestoreAssessor rebuilds a warm assessor from a snapshot. The target
// ASIL comes from the snapshot; cfg supplies everything else (a nil
// cfg.Rules means rules.DefaultRules, which must match the snapshot's
// rule fingerprint). No source is parsed: units are fact-carrying
// stubs, hydrated on demand when the rule engine needs their ASTs.
func RestoreAssessor(cfg Config, st *PersistedState) (*Assessor, error) {
	cfg.TargetASIL = st.Target
	a := NewAssessor(cfg)
	if got := ruleIDs(a.cfg.Rules); !equalStrings(got, st.RuleIDs) {
		return nil, fmt.Errorf("core: snapshot rule set %v does not match engine rule set %v", st.RuleIDs, got)
	}
	if len(st.Files) == 0 {
		return nil, errors.New("core: snapshot holds no files")
	}
	if len(st.Files) != len(st.Units) {
		return nil, fmt.Errorf("core: snapshot has %d files but %d units", len(st.Files), len(st.Units))
	}

	fs := srcfile.NewFileSet()
	for i := range st.Files {
		pf := &st.Files[i]
		if pf.Path == "" {
			return nil, errors.New("core: snapshot file without a path")
		}
		if fs.Lookup(pf.Path) != nil {
			return nil, fmt.Errorf("core: snapshot holds %s twice", pf.Path)
		}
		fs.Add(&srcfile.File{Path: pf.Path, Module: pf.Module, Lang: pf.Lang, Src: pf.Src})
	}

	units := make(map[string]*ccast.TranslationUnit, len(st.Units))
	recs := make(map[string][]*artifact.Func, len(st.Units))
	stubs := make(map[string]bool, len(st.Units))
	for i := range st.Units {
		uf := st.Units[i]
		f := fs.Lookup(uf.Path)
		if f == nil {
			return nil, fmt.Errorf("core: snapshot unit %s has no file", uf.Path)
		}
		if units[uf.Path] != nil {
			return nil, fmt.Errorf("core: snapshot holds unit %s twice", uf.Path)
		}
		tu, fas := artifact.UnitFromFacts(f, uf)
		units[uf.Path], recs[uf.Path] = tu, fas
		stubs[uf.Path] = true
	}
	ix, err := artifact.BuildFromRecords(units, recs)
	if err != nil {
		return nil, err
	}
	for _, p := range ix.Paths {
		if _, ok := st.FileFindings[p]; !ok {
			return nil, fmt.Errorf("core: snapshot misses the finding segment of %s", p)
		}
		if st.MetricRows[p] == nil {
			return nil, fmt.Errorf("core: snapshot misses the metrics row of %s", p)
		}
	}

	a.fs, a.units, a.ix = fs, units, ix
	a.ruleEng.RestoreCache(ix, st.FileFindings, st.CorpusFindings)
	a.mcache.RestoreRows(ix, st.MetricRows)
	a.stubs = stubs
	a.ruleEng.Hydrate = a.hydratePaths
	return a, nil
}

// StubUnits reports how many restored units are still fact-carrying
// stubs (never re-parsed since restore). Diagnostics and tests only.
func (a *Assessor) StubUnits() int { return len(a.stubs) }

// hydratePaths re-parses any still-stub units among paths and swaps the
// real ASTs (and re-analyzed records) into the index in place. Invoked
// by the rule engine at a sequential point before it walks dirty files.
// The corpus content of a stub is by construction unchanged since the
// snapshot, so hydration changes no signature, hash, or cache key.
func (a *Assessor) hydratePaths(paths []string) {
	var todo []string
	for _, p := range paths {
		if a.stubs[p] {
			todo = append(todo, p)
		}
	}
	if len(todo) == 0 {
		return
	}
	tus := make([]*ccast.TranslationUnit, len(todo))
	par.For(par.Workers(len(todo)), len(todo), func(i int) {
		tu, _ := ccparse.Parse(a.fs.Lookup(todo[i]), ccparse.Options{})
		tus[i] = tu
	})
	for i, p := range todo {
		if tus[i] == nil {
			// Unreachable for state that parsed before the snapshot was
			// taken; corrupted snapshots fail their checksums long before
			// this point.
			panic(fmt.Sprintf("core: hydrating %s: snapshot source no longer parses", p))
		}
		a.ix.Rehydrate(tus[i], artifact.AnalyzeUnit(tus[i]))
		delete(a.stubs, p)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
