package core

import (
	"runtime"
	"testing"
)

// forceParallel raises GOMAXPROCS so the pipeline's worker pools spawn
// real goroutines even on single-core runners (the -race gate must cover
// the concurrent paths).
func forceParallel(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
}

// TestPipelineDeterministic runs the full parallel pipeline twice and
// requires identical findings, metrics, and verdicts — the top-level
// determinism gate over the concurrent frontend, fused rule engine, and
// parallel metrics (run under -race in CI).
func TestPipelineDeterministic(t *testing.T) {
	forceParallel(t)
	run := func() (*Assessor, *Assessment) {
		a := NewAssessor(DefaultConfig())
		if err := a.LoadDefaultCorpus(); err != nil {
			t.Fatal(err)
		}
		return a, a.Assess()
	}
	a1, as1 := run()
	a2, as2 := run()

	f1, f2 := a1.Findings(), a2.Findings()
	if len(f1) != len(f2) {
		t.Fatalf("finding counts differ: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i].String() != f2[i].String() || f1[i].Severity != f2[i].Severity ||
			f1[i].Module != f2[i].Module || f1[i].Function != f2[i].Function {
			t.Fatalf("finding %d differs: %s vs %s", i, f1[i].String(), f2[i].String())
		}
	}

	m1, m2 := a1.Metrics(), a2.Metrics()
	if m1.TotalLOC != m2.TotalLOC || m1.TotalFunc != m2.TotalFunc ||
		m1.ModerateOrWorse != m2.ModerateOrWorse || len(m1.Files) != len(m2.Files) {
		t.Fatalf("metrics differ: %+v vs %+v", m1, m2)
	}
	for i := range m1.Files {
		if m1.Files[i].Path != m2.Files[i].Path || m1.Files[i].NLOC != m2.Files[i].NLOC {
			t.Fatalf("file metrics %d differ", i)
		}
	}

	ar1, ar2 := a1.Arch(), a2.Arch()
	if len(ar1) != len(ar2) {
		t.Fatalf("arch module counts differ: %d vs %d", len(ar1), len(ar2))
	}
	for i := range ar1 {
		if *ar1[i] != *ar2[i] {
			t.Fatalf("arch metrics differ for %s: %+v vs %+v", ar1[i].Module, ar1[i], ar2[i])
		}
	}

	for i := range as1.Coding {
		if as1.Coding[i] != as2.Coding[i] {
			t.Fatalf("coding verdict %d differs", i)
		}
	}
	for i := range as1.Arch {
		if as1.Arch[i] != as2.Arch[i] {
			t.Fatalf("arch verdict %d differs", i)
		}
	}
	for i := range as1.Unit {
		if as1.Unit[i] != as2.Unit[i] {
			t.Fatalf("unit verdict %d differs", i)
		}
	}
	for i := range as1.Observations {
		if as1.Observations[i] != as2.Observations[i] {
			t.Fatalf("observation %d differs", i)
		}
	}
}

// TestSharedIndexReused checks the artifact cache is built once per load
// and shared by every pipeline stage.
func TestSharedIndexReused(t *testing.T) {
	a := NewAssessor(DefaultConfig())
	if err := a.LoadDefaultCorpus(); err != nil {
		t.Fatal(err)
	}
	ix := a.Index()
	a.Findings()
	a.Metrics()
	a.Arch()
	if a.Index() != ix {
		t.Fatal("index rebuilt between stages")
	}
	if len(ix.Funcs) == 0 {
		t.Fatal("index empty")
	}
	// Reloading must invalidate the cache.
	if err := a.LoadDefaultCorpus(); err != nil {
		t.Fatal(err)
	}
	if a.Index() == ix {
		t.Fatal("index not invalidated by reload")
	}
}
