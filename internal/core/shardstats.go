package core

// ShardStat is the operator-facing summary of one corpus shard
// (module): how many files it owns, how many source bytes they hold,
// and how many findings the rule engine currently attributes to it.
// cmd/adassess prints these under -shards; skew across shards predicts
// warm-delta latency, which is proportional to the dirty shard's size.
type ShardStat struct {
	Module   string
	Files    int
	Bytes    int
	Findings int
}

// ShardStats returns per-shard statistics in sorted module order. It
// runs (or reuses) the rule engine to attribute findings.
func (a *Assessor) ShardStats() []ShardStat {
	if a.fs == nil {
		return nil
	}
	a.Findings()
	out := make([]ShardStat, 0, len(a.fs.Modules()))
	for _, mod := range a.fs.Modules() {
		st := ShardStat{Module: mod, Findings: a.stats.ByModule[mod]}
		for _, f := range a.fs.ModuleFiles(mod) {
			st.Files++
			st.Bytes += len(f.Src)
		}
		out = append(out, st)
	}
	return out
}
