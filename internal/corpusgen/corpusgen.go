// Package corpusgen is the scenario-scale corpus generator behind the
// differential verification harness (internal/difftest, cmd/adfuzz): a
// seeded, deterministic synthesizer of Apollo-shaped C/C++/CUDA source
// trees with tunable scale (modules, files, functions per file, call
// fan-out, nesting depth) and — unlike internal/apollocorpus, which only
// calibrates aggregate statistics — **injectable rule violations with
// known ground truth**. Every generated corpus carries a Manifest listing
// exactly which findings each of the default rules must report (rule ID,
// file, line), so an assessment can be checked against an oracle instead
// of only against another engine.
//
// The generator is built on two invariants:
//
//  1. Clean base: filler functions, their intra-file call fan-out (always
//     a DAG), and the file scaffolding trigger ZERO findings under
//     rules.DefaultRules(). TestCleanBaseHasNoFindings pins this.
//  2. Exact injection: each violation template registers its expected
//     findings at the exact lines it emits, through the same line-tracking
//     emitter that produces the source text. TestOracleExact pins the
//     multiset equality { engine findings } == { manifest }.
//
// Every function and global name embeds a per-file slug, so names are
// unique corpus-wide and per-file findings stay a function of file
// content alone — which is exactly what the incremental engine's per-file
// cache assumes, and what lets Mutate regenerate one file (add / edit /
// remove) together with only that file's manifest entries.
package corpusgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/srcfile"
)

// Params tunes the shape and scale of a generated corpus.
type Params struct {
	// Modules is the number of AD modules (default 4, max 10 named ones
	// then synthetic names).
	Modules int
	// FilesPerModule is the initial number of C++ files per module
	// (default 4).
	FilesPerModule int
	// FuncsPerFile is the number of clean filler functions per file
	// (default 5).
	FuncsPerFile int
	// FanOut is the maximum number of same-file callees per filler
	// function; calls always target higher-indexed functions so the call
	// graph is a DAG (default 2).
	FanOut int
	// MaxDepth bounds the nesting depth of clean filler bodies
	// (default 3).
	MaxDepth int
	// ViolationsPerFile is the number of violation snippets injected per
	// file (default 3). Zero yields a finding-free corpus.
	ViolationsPerFile int
	// CUDAFiles is the number of CUDA files per module (default 1). CUDA
	// files carry a fixed kernel template whose findings (kernel subset,
	// launches, device allocation, pointer params) are fully manifested.
	CUDAFiles int
	// ModuleSkew skews the initial C++ file counts across modules with a
	// zipf-ish fan: module i receives a share proportional to
	// 1/(i+1)^ModuleSkew of Modules×FilesPerModule total files (largest-
	// remainder rounding, at least one file per module). Zero (the
	// default) keeps the historical uniform layout byte-identical.
	// Shard-imbalance scenarios — one huge module, a long tail of tiny
	// ones — are what the sharded incremental pipeline has to survive,
	// so the knob makes them generatable and replayable.
	ModuleSkew float64
}

// DefaultParams mirrors a small Apollo-like tree suitable for fuzz steps.
func DefaultParams() Params {
	return Params{
		Modules:           4,
		FilesPerModule:    4,
		FuncsPerFile:      5,
		FanOut:            2,
		MaxDepth:          3,
		ViolationsPerFile: 3,
		CUDAFiles:         1,
	}
}

// withDefaults fills zero fields.
func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.Modules <= 0 {
		p.Modules = d.Modules
	}
	if p.FilesPerModule <= 0 {
		p.FilesPerModule = d.FilesPerModule
	}
	if p.FuncsPerFile < 0 {
		p.FuncsPerFile = d.FuncsPerFile
	}
	if p.FanOut < 0 {
		p.FanOut = d.FanOut
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = d.MaxDepth
	}
	if p.ViolationsPerFile < 0 {
		p.ViolationsPerFile = d.ViolationsPerFile
	}
	if p.CUDAFiles < 0 {
		p.CUDAFiles = d.CUDAFiles
	}
	if p.ModuleSkew < 0 {
		p.ModuleSkew = 0
	}
	return p
}

// moduleFileCounts returns the initial C++ file count per module under
// the skew knob. Skew 0 is exactly FilesPerModule everywhere; positive
// skew distributes Modules×FilesPerModule files by weights (i+1)^-skew
// with largest-remainder rounding (deterministic, total preserved) and
// a floor of one file per module.
func moduleFileCounts(modules, filesPerModule int, skew float64) []int {
	counts := make([]int, modules)
	if skew == 0 {
		for i := range counts {
			counts[i] = filesPerModule
		}
		return counts
	}
	total := modules * filesPerModule
	weights := make([]float64, modules)
	sum := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -skew)
		sum += weights[i]
	}
	remaining := total - modules // one file per module is guaranteed
	if remaining < 0 {
		remaining = 0
	}
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, modules)
	assigned := 0
	for i := range counts {
		share := float64(remaining) * weights[i] / sum
		whole := int(share)
		counts[i] = 1 + whole
		assigned += whole
		rems[i] = rem{i, share - float64(whole)}
	}
	// Hand the leftover files to the largest remainders; ties break on
	// the lower module index so the layout is deterministic.
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for k := 0; k < remaining-assigned; k++ {
		counts[rems[k%modules].i]++
	}
	return counts
}

// moduleNames are the AD pipeline modules of the paper's Figure 1;
// indexes beyond the list get synthetic names.
var moduleNames = []string{
	"perception", "planning", "prediction", "localization", "control",
	"map", "routing", "canbus", "drivers", "common",
}

func moduleName(i int) string {
	if i < len(moduleNames) {
		return moduleNames[i]
	}
	return fmt.Sprintf("module%02d", i)
}

// Expect is one ground-truth finding the rule engine must report.
type Expect struct {
	Rule string
	Path string
	Line int
}

// String renders the expectation as path:line:[rule].
func (e Expect) String() string {
	return fmt.Sprintf("%s:%d:[%s]", e.Path, e.Line, e.Rule)
}

// Manifest is the injected-violation ground truth of a generated corpus:
// for every file, the exact findings the default rule set must produce.
type Manifest struct {
	// PerFile maps each corpus path to its expected findings in line
	// order. Paths with no expected findings are present with a nil
	// slice, so the key set mirrors the corpus.
	PerFile map[string][]Expect
}

// All returns every expectation across the corpus (unordered).
func (m *Manifest) All() []Expect {
	var out []Expect
	for _, es := range m.PerFile {
		out = append(out, es...)
	}
	return out
}

// Total returns the number of expected findings.
func (m *Manifest) Total() int {
	n := 0
	for _, es := range m.PerFile {
		n += len(es)
	}
	return n
}

// CountByRule returns the expected finding count per rule ID.
func (m *Manifest) CountByRule() map[string]int {
	out := make(map[string]int)
	for _, es := range m.PerFile {
		for _, e := range es {
			out[e.Rule]++
		}
	}
	return out
}

// clone deep-copies the manifest.
func (m *Manifest) clone() *Manifest {
	out := &Manifest{PerFile: make(map[string][]Expect, len(m.PerFile))}
	for p, es := range m.PerFile {
		out.PerFile[p] = append([]Expect(nil), es...)
	}
	return out
}

// Generator holds the evolving corpus state: current file contents, the
// matching manifest, and monotonic per-module file counters so removed
// paths are never reused. All randomness flows from the seed passed to
// New, so a (Params, seed) pair replays the identical corpus and the
// identical mutation sequence.
type Generator struct {
	p   Params
	rng *rand.Rand

	src  map[string]string // path → content
	man  *Manifest
	next map[string]int // module → next file ordinal (monotonic)
	mods []string       // module names in order

	paths []string // current paths in insertion order (deterministic)
}

// New builds the initial corpus for the given params and seed.
func New(p Params, seed int64) *Generator {
	p = p.withDefaults()
	g := &Generator{
		p:    p,
		rng:  rand.New(rand.NewSource(seed)),
		src:  make(map[string]string),
		man:  &Manifest{PerFile: make(map[string][]Expect)},
		next: make(map[string]int),
	}
	for mi := 0; mi < p.Modules; mi++ {
		g.mods = append(g.mods, moduleName(mi))
	}
	counts := moduleFileCounts(p.Modules, p.FilesPerModule, p.ModuleSkew)
	for mi, mod := range g.mods {
		for fi := 0; fi < counts[mi]; fi++ {
			g.addFile(mod, mi, false)
		}
		for ci := 0; ci < p.CUDAFiles; ci++ {
			g.addFile(mod, mi, true)
		}
	}
	return g
}

// Paths returns the current corpus paths in deterministic order.
func (g *Generator) Paths() []string { return append([]string(nil), g.paths...) }

// Len returns the current number of files.
func (g *Generator) Len() int { return len(g.paths) }

// FileSet materializes the current corpus as a fresh srcfile.FileSet.
// Each call builds new File values, so callers may hand the set to an
// Assessor (which mutates File structs in place) without coupling state.
func (g *Generator) FileSet() *srcfile.FileSet {
	fs := srcfile.NewFileSet()
	for _, p := range g.paths {
		fs.AddSource(p, g.src[p])
	}
	return fs
}

// Manifest returns a snapshot of the current ground truth.
func (g *Generator) Manifest() *Manifest { return g.man.clone() }

// Source returns the current content of one path ("" when absent).
func (g *Generator) Source(path string) string { return g.src[path] }

// ---------------------------------------------------------------------------
// Mutation

// MutationKind enumerates corpus edits.
type MutationKind string

// Mutation kinds.
const (
	MutAdd    MutationKind = "add"
	MutEdit   MutationKind = "edit"
	MutRemove MutationKind = "remove"
)

// Mutation is one corpus edit the generator applied to its own state;
// callers mirror it into the systems under test.
type Mutation struct {
	Kind MutationKind
	Path string
	// Src is the new content for add/edit ("" for remove).
	Src string
}

// Mutate applies one random edit (add / edit / remove a file) to the
// generator's corpus and manifest, returning the applied mutation. The
// corpus never drops below one file.
func (g *Generator) Mutate() Mutation {
	k := g.rng.Intn(3)
	if len(g.paths) <= 1 && k == 2 {
		k = g.rng.Intn(2) // never empty the corpus
	}
	switch k {
	case 0: // add a fresh file to a random module
		mi := g.rng.Intn(len(g.mods))
		cuda := g.p.CUDAFiles > 0 && g.rng.Intn(4) == 0
		path := g.addFile(g.mods[mi], mi, cuda)
		return Mutation{Kind: MutAdd, Path: path, Src: g.src[path]}
	case 1: // regenerate an existing file under a fresh seed
		path := g.paths[g.rng.Intn(len(g.paths))]
		mi, ord, cuda := parsePath(path)
		src, expects := g.synthFile(g.mods[mi], mi, ord, cuda, g.rng.Int63())
		g.src[path] = src
		g.man.PerFile[path] = expects
		return Mutation{Kind: MutEdit, Path: path, Src: src}
	default: // remove
		i := g.rng.Intn(len(g.paths))
		path := g.paths[i]
		g.paths = append(g.paths[:i], g.paths[i+1:]...)
		delete(g.src, path)
		delete(g.man.PerFile, path)
		return Mutation{Kind: MutRemove, Path: path}
	}
}

// addFile synthesizes a new file for a module and registers it.
func (g *Generator) addFile(mod string, mi int, cuda bool) string {
	ord := g.next[mod]
	g.next[mod] = ord + 1
	path := filePath(mod, mi, ord, cuda)
	src, expects := g.synthFile(mod, mi, ord, cuda, g.rng.Int63())
	g.src[path] = src
	g.man.PerFile[path] = expects
	g.paths = append(g.paths, path)
	return path
}

// filePath encodes module index, ordinal, and dialect into the path so a
// mutation can recover them without extra bookkeeping.
func filePath(mod string, mi, ord int, cuda bool) string {
	if cuda {
		return fmt.Sprintf("%s/cuda/%s_kern_m%02df%03d.cu", mod, mod, mi, ord)
	}
	return fmt.Sprintf("%s/%s_m%02df%03d.cc", mod, mod, mi, ord)
}

// parsePath recovers (module index, ordinal, cuda) from a generated
// path. The scan uses unbounded %d (not the %02d/%03d print widths):
// Sscanf widths are maximums, and ordinals past 999 — reachable at the
// 10k-file scale — must round-trip exactly or an edit mutation would
// regenerate the file under a colliding slug.
func parsePath(path string) (mi, ord int, cuda bool) {
	cuda = strings.HasSuffix(path, ".cu")
	base := path[strings.LastIndexByte(path, '_')+1:]
	base = strings.TrimSuffix(strings.TrimSuffix(base, ".cc"), ".cu")
	fmt.Sscanf(base, "m%df%d", &mi, &ord)
	return mi, ord, cuda
}

// slug returns the per-file identity embedded in every name the file
// defines. CamelCase-safe (no underscores) for C++ names; lowerSlug is
// the variant for CUDA kernels and globals.
func slug(mi, ord int) string      { return fmt.Sprintf("M%dX%d", mi, ord) }
func lowerSlug(mi, ord int) string { return fmt.Sprintf("m%dx%d", mi, ord) }
