package corpusgen

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"testing"

	"repro/internal/ccparse"
	"repro/internal/rules"
	"repro/internal/srcfile"
)

// parseAll parses a generated corpus, failing the test on any parse error
// (generated sources must be clean input for the frontend).
func parseAll(t *testing.T, fs *srcfile.FileSet) *rules.Context {
	t.Helper()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("generated corpus has parse errors: %v (of %d)", errs[0], len(errs))
	}
	return rules.NewContext(units)
}

// toExpects projects engine findings onto the manifest key space.
func toExpects(fs []rules.Finding) []Expect {
	out := make([]Expect, len(fs))
	for i, f := range fs {
		out[i] = Expect{Rule: f.RuleID, Path: f.File, Line: f.Line}
	}
	return out
}

// diffMultiset compares two expectation multisets and returns a
// human-readable diff ("" when equal).
func diffMultiset(got, want []Expect) string {
	count := make(map[Expect]int)
	for _, e := range want {
		count[e]++
	}
	var extra []string
	for _, e := range got {
		if count[e] > 0 {
			count[e]--
			continue
		}
		extra = append(extra, e.String())
	}
	var missing []string
	for e, n := range count {
		for i := 0; i < n; i++ {
			missing = append(missing, e.String())
		}
	}
	if len(extra) == 0 && len(missing) == 0 {
		return ""
	}
	sort.Strings(extra)
	sort.Strings(missing)
	return fmt.Sprintf("unexpected findings (%d): %v\nmissing findings (%d): %v",
		len(extra), extra, len(missing), missing)
}

// TestCleanBaseHasNoFindings pins generator invariant 1: with no injected
// violations and no CUDA template, the corpus is finding-free under the
// full default rule set.
func TestCleanBaseHasNoFindings(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		// Zero ViolationsPerFile/CUDAFiles are honored (withDefaults only
		// fills negative counts).
		g := New(Params{Modules: 3, FilesPerModule: 3, FuncsPerFile: 6,
			FanOut: 3, MaxDepth: 3, CUDAFiles: 0, ViolationsPerFile: 0}, seed)
		ctx := parseAll(t, g.FileSet())
		fs := rules.RunSequential(ctx, rules.DefaultRules())
		if len(fs) != 0 {
			var lines []string
			for i, f := range fs {
				if i >= 10 {
					lines = append(lines, "...")
					break
				}
				lines = append(lines, f.String())
			}
			t.Fatalf("seed %d: clean base produced %d findings:\n%s",
				seed, len(fs), strings.Join(lines, "\n"))
		}
	}
}

// TestOracleExact pins generator invariant 2: the engine's findings over
// a generated corpus equal the manifest exactly, as a multiset of
// (rule, file, line).
func TestOracleExact(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := New(DefaultParams(), seed)
		ctx := parseAll(t, g.FileSet())
		got := toExpects(rules.RunSequential(ctx, rules.DefaultRules()))
		if d := diffMultiset(got, g.Manifest().All()); d != "" {
			t.Fatalf("seed %d: oracle mismatch:\n%s", seed, d)
		}
	}
}

// TestDeterministicReplay: same params + seed → byte-identical corpus and
// identical manifest, including after the same mutation count.
func TestDeterministicReplay(t *testing.T) {
	gen := func() (*Generator, []Mutation) {
		g := New(DefaultParams(), 42)
		var muts []Mutation
		for i := 0; i < 12; i++ {
			muts = append(muts, g.Mutate())
		}
		return g, muts
	}
	g1, m1 := gen()
	g2, m2 := gen()
	if len(m1) != len(m2) {
		t.Fatal("mutation count drifted")
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("mutation %d drifted: %+v vs %+v", i, m1[i], m2[i])
		}
	}
	p1, p2 := g1.Paths(), g2.Paths()
	if len(p1) != len(p2) {
		t.Fatalf("path count drifted: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] || g1.Source(p1[i]) != g2.Source(p2[i]) {
			t.Fatalf("file %s drifted", p1[i])
		}
	}
	if d := diffMultiset(g1.Manifest().All(), g2.Manifest().All()); d != "" {
		t.Fatalf("manifest drifted:\n%s", d)
	}
}

// TestMutateKeepsOracle applies a long random mutation sequence and
// re-checks the oracle after every step.
func TestMutateKeepsOracle(t *testing.T) {
	g := New(Params{Modules: 2, FilesPerModule: 3, FuncsPerFile: 4,
		ViolationsPerFile: 2, CUDAFiles: 1}, 7)
	for step := 0; step < 25; step++ {
		mut := g.Mutate()
		ctx := parseAll(t, g.FileSet())
		got := toExpects(rules.RunSequential(ctx, rules.DefaultRules()))
		if d := diffMultiset(got, g.Manifest().All()); d != "" {
			t.Fatalf("step %d (%s %s): oracle mismatch:\n%s", step, mut.Kind, mut.Path, d)
		}
	}
	if g.Len() < 1 {
		t.Fatal("corpus emptied")
	}
}

// TestPathRoundTrip pins filePath/parsePath inversion, including
// ordinals past the %03d print width (reachable at the 10k-file scale):
// a lossy parse would make an edit mutation regenerate a file under a
// colliding slug.
func TestPathRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		mi, ord int
		cuda    bool
	}{{0, 0, false}, {3, 7, true}, {9, 999, false}, {12, 1000, false},
		{19, 4321, true}, {101, 10000, false}} {
		p := filePath(moduleName(tc.mi), tc.mi, tc.ord, tc.cuda)
		mi, ord, cuda := parsePath(p)
		if mi != tc.mi || ord != tc.ord || cuda != tc.cuda {
			t.Errorf("parsePath(%q) = (%d,%d,%v), want (%d,%d,%v)",
				p, mi, ord, cuda, tc.mi, tc.ord, tc.cuda)
		}
	}
}

// TestScaleKnobs sanity-checks that the scale parameters actually scale
// the corpus.
func TestScaleKnobs(t *testing.T) {
	small := New(Params{Modules: 2, FilesPerModule: 2, FuncsPerFile: 2,
		ViolationsPerFile: 1, CUDAFiles: 0}, 1)
	big := New(Params{Modules: 4, FilesPerModule: 10, FuncsPerFile: 8,
		ViolationsPerFile: 4, CUDAFiles: 2}, 1)
	if small.Len() != 4 {
		t.Fatalf("small corpus = %d files", small.Len())
	}
	if big.Len() != 4*12 {
		t.Fatalf("big corpus = %d files", big.Len())
	}
	if big.Manifest().Total() <= small.Manifest().Total() {
		t.Fatal("violation scale knob inert")
	}
	// Every injected rule ID must be a real rule.
	known := make(map[string]bool)
	for _, r := range rules.DefaultRules() {
		known[r.ID()] = true
	}
	for rule := range big.Manifest().CountByRule() {
		if !known[rule] {
			t.Fatalf("manifest references unknown rule %q", rule)
		}
	}
}

// TestModuleSkewLayout pins the skew knob: zero skew preserves the
// historical uniform layout exactly, and a skewed layout is
// deterministic, total-preserving, and actually imbalanced.
func TestModuleSkewLayout(t *testing.T) {
	uniform := New(Params{Modules: 4, FilesPerModule: 4, CUDAFiles: 1}, 26262)
	legacy := New(Params{Modules: 4, FilesPerModule: 4, CUDAFiles: 1, ModuleSkew: 0}, 26262)
	if len(uniform.Paths()) != len(legacy.Paths()) {
		t.Fatal("zero skew changed the corpus size")
	}
	for i, p := range uniform.Paths() {
		if legacy.Paths()[i] != p {
			t.Fatalf("zero skew changed path %d: %s vs %s", i, p, legacy.Paths()[i])
		}
		if uniform.Source(p) != legacy.Source(p) {
			t.Fatalf("zero skew changed content of %s", p)
		}
	}

	counts := moduleFileCounts(5, 10, 1.5)
	total := 0
	for _, n := range counts {
		if n < 1 {
			t.Fatalf("module with %d files; floor is 1", n)
		}
		total += n
	}
	if total != 50 {
		t.Fatalf("skewed counts sum to %d, want 50", total)
	}
	if counts[0] <= counts[4] {
		t.Fatalf("skew produced no imbalance: %v", counts)
	}
}

// skewFingerprint renders a generated corpus as per-module file counts
// plus an FNV-1a hash over the sorted manifest entries.
func skewFingerprint(g *Generator) (map[string]int, int, uint64) {
	perMod := make(map[string]int)
	for _, path := range g.Paths() {
		perMod[path[:strings.IndexByte(path, '/')]]++
	}
	man := g.Manifest()
	entries := make([]string, 0, man.Total())
	for _, e := range man.All() {
		entries = append(entries, e.String())
	}
	sort.Strings(entries)
	h := fnv.New64a()
	for _, e := range entries {
		h.Write([]byte(e))
		h.Write([]byte{0})
	}
	return perMod, man.Total(), h.Sum64()
}

// TestSkewedManifestPinned pins one skewed corpus end to end: the
// per-module layout, the manifest size, the manifest content hash, and
// oracle-exactness of the engine over it. Any change to the generator
// or the skew arithmetic that moves ground truth shows up here.
func TestSkewedManifestPinned(t *testing.T) {
	g := New(Params{Modules: 6, FilesPerModule: 8, FuncsPerFile: 3,
		ViolationsPerFile: 2, CUDAFiles: 1, ModuleSkew: 1.3}, 4242)
	perMod, total, fp := skewFingerprint(g)

	wantLayout := map[string]int{
		"perception": 23, "planning": 10, "prediction": 7,
		"localization": 5, "control": 5, "map": 4,
	}
	if len(perMod) != len(wantLayout) {
		t.Fatalf("module layout = %v, want %v", perMod, wantLayout)
	}
	for m, n := range wantLayout {
		if perMod[m] != n {
			t.Fatalf("module %s has %d files, want %d (layout %v)", m, perMod[m], n, perMod)
		}
	}
	if g.Len() != 54 || total != 181 {
		t.Fatalf("corpus = %d files / %d manifest entries, want 54 / 181", g.Len(), total)
	}
	const wantFP = uint64(0x94775211ac351ee3)
	if fp != wantFP {
		t.Fatalf("manifest fingerprint = %#x, want %#x", fp, wantFP)
	}

	// The pinned corpus must stay oracle-exact through the engine.
	ctx := parseAll(t, g.FileSet())
	got := toExpects(rules.Run(ctx, rules.DefaultRules()))
	if d := diffMultiset(got, g.Manifest().All()); d != "" {
		t.Fatalf("skewed corpus diverges from its manifest: %s", d)
	}
}
