package corpusgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// emitter builds one file line by line, tracking the 1-based line number
// so violation templates can register expectations at the exact line
// they emit.
type emitter struct {
	sb      strings.Builder
	line    int // number of lines emitted so far
	path    string
	expects []Expect
}

// emit writes one source line and records an expectation for each rule ID
// passed (all at this line).
func (e *emitter) emit(s string, ruleIDs ...string) {
	e.sb.WriteString(s)
	e.sb.WriteByte('\n')
	e.line++
	for _, r := range ruleIDs {
		e.expects = append(e.expects, Expect{Rule: r, Path: e.path, Line: e.line})
	}
}

// blank emits an empty line.
func (e *emitter) blank() { e.emit("") }

// synthFile generates one source file and its expected findings. Content
// is a pure function of (params, module, slug, fileSeed): the generator's
// main rng only hands out fileSeed values, so edits replay byte-identically
// for a given master seed.
func (g *Generator) synthFile(mod string, mi, ord int, cuda bool, fileSeed int64) (string, []Expect) {
	rng := rand.New(rand.NewSource(fileSeed))
	e := &emitter{path: filePath(mod, mi, ord, cuda)}
	if cuda {
		g.synthCUDA(e, mi, ord)
		return e.sb.String(), e.expects
	}

	sl := slug(mi, ord)
	e.emit(fmt.Sprintf("// Generated corpus file: module %s, slug %s.", mod, sl))
	e.blank()

	// Clean filler functions: unique CamelCase names, intra-file DAG
	// fan-out (function i only calls functions j > i), zero findings.
	names := make([]string, g.p.FuncsPerFile)
	for i := range names {
		names[i] = fillerName(rng, sl, i)
	}
	for i := range names {
		g.cleanFunc(e, rng, names, i)
		e.blank()
	}

	// Violation snippets, each registering its exact expected findings.
	for v := 0; v < g.p.ViolationsPerFile; v++ {
		g.injectViolation(e, rng, sl, names, v)
		e.blank()
	}
	return e.sb.String(), e.expects
}

var fillerVerbs = []string{
	"Process", "Estimate", "Track", "Fuse", "Filter", "Project", "Decode",
	"Classify", "Segment", "Predict", "Plan", "Smooth", "Validate", "Update",
}

var fillerNouns = []string{
	"Frame", "Obstacle", "Trajectory", "Lane", "Pose", "Cloud", "Grid",
	"Anchor", "Feature", "Route", "Signal", "Boundary", "Velocity", "Tensor",
}

// fillerName builds a CamelCase, corpus-unique function name.
func fillerName(rng *rand.Rand, sl string, i int) string {
	return fmt.Sprintf("%s%s%sN%d",
		fillerVerbs[rng.Intn(len(fillerVerbs))],
		fillerNouns[rng.Intn(len(fillerNouns))], sl, i)
}

// cleanFunc emits one finding-free filler function. Properties enforced:
// CCN <= 10, single exit, all params used, no casts or conversions, no
// pointers, locals initialized, no shadowing, braces attached, lines
// under 80 columns, calls only to higher-indexed same-file functions with
// the result consumed.
func (g *Generator) cleanFunc(e *emitter, rng *rand.Rand, names []string, idx int) {
	e.emit(fmt.Sprintf("float %s(float scale, int mode, float seed) {", names[idx]))
	e.emit("  float acc = seed + (0.5f * scale);")
	e.emit("  float limit = scale * 4.0f;")
	e.emit("  int idx = 0;")
	// Two fixed statements guarantee every param and local is used.
	e.emit(fmt.Sprintf("  if (mode > %d) {", rng.Intn(6)))
	e.emit("    acc = acc + 1.0f;")
	e.emit("  }")
	e.emit("  if (acc > limit) {")
	e.emit("    acc = acc - limit;")
	e.emit("  }")
	// Random clean statements within the remaining CCN budget (<= 10).
	budget := 2 + rng.Intn(6) // decisions so far: 2; total stays <= 9
	for budget > 0 {
		budget -= g.cleanStmt(e, rng, 1, budget)
	}
	// Intra-file fan-out: call higher-indexed functions only (DAG).
	if g.p.FanOut > 0 && idx+1 < len(names) {
		n := rng.Intn(g.p.FanOut + 1)
		for k := 1; k <= n && idx+k < len(names); k++ {
			e.emit(fmt.Sprintf("  acc = acc + %s(acc, mode, 0.25f);", names[idx+k]))
		}
	}
	e.emit("  return acc + (0.125f * idx);")
	e.emit("}")
}

// cleanStmt emits one finding-free statement at the given nesting depth
// and returns its CCN cost (bounded by max).
func (g *Generator) cleanStmt(e *emitter, rng *rand.Rand, depth, max int) int {
	ind := strings.Repeat("  ", depth)
	k := rng.Intn(6)
	switch {
	case k == 0 && depth < g.p.MaxDepth && max >= 2:
		// Nested if: recurse one level.
		e.emit(fmt.Sprintf("%sif (mode > %d) {", ind, rng.Intn(8)))
		inner := g.cleanStmt(e, rng, depth+1, max-1)
		e.emit(ind + "}")
		return 1 + inner
	case k == 1:
		e.emit(fmt.Sprintf("%sif (acc > %d.0f) {", ind, 1+rng.Intn(9)))
		e.emit(ind + "  acc = acc - 0.5f;")
		e.emit(ind + "} else {")
		e.emit(ind + "  acc = acc + 0.5f;")
		e.emit(ind + "}")
		return 1
	case k == 2:
		e.emit(fmt.Sprintf("%sfor (idx = 0; idx < mode; idx = idx + 1) {", ind))
		e.emit(ind + "  acc = acc + 0.25f;")
		e.emit(ind + "}")
		return 1
	case k == 3:
		e.emit(ind + "while (acc > limit) {")
		e.emit(ind + "  acc = acc - limit;")
		e.emit(ind + "}")
		return 1
	case k == 4 && max >= 2:
		// Switch with default and fully-broken cases (MISRA-clean).
		e.emit(ind + "switch (mode) {")
		e.emit(ind + "case 0:")
		e.emit(ind + "  acc = acc + 1.0f;")
		e.emit(ind + "  break;")
		e.emit(ind + "case 1:")
		e.emit(ind + "  acc = acc - 1.0f;")
		e.emit(ind + "  break;")
		e.emit(ind + "default:")
		e.emit(ind + "  acc = acc + 0.5f;")
		e.emit(ind + "}")
		return 2
	default:
		e.emit(fmt.Sprintf("%sif (mode > %d) {", ind, rng.Intn(8)))
		e.emit(ind + "  acc = acc + 2.0f;")
		e.emit(ind + "}")
		return 1
	}
}

// ---------------------------------------------------------------------------
// Violation templates

// violationKind identifies one injectable template.
type violationKind int

const (
	vComplexity violationKind = iota
	vMultiExit
	vGoto
	vRecursion
	vCast
	vImplicitConv
	vUninit
	vShadow
	vGlobalVar
	vGlobalPtr
	vPtrParam
	vDefensiveDeref
	vDefensiveIgnored
	vUnion
	vBannedCall
	vMisraSwitch
	vMisraOctal
	vMisraAssign
	vDynMem
	vStyleLong
	vStyleBrace
	vNaming
	numViolations
)

// injectViolation emits one randomly chosen violation snippet. Names
// embed the slug and the snippet ordinal v so they never collide with
// filler functions or other snippets.
func (g *Generator) injectViolation(e *emitter, rng *rand.Rand, sl string, fillers []string, v int) {
	kind := violationKind(rng.Intn(int(numViolations)))
	if kind == vDefensiveIgnored && len(fillers) == 0 {
		kind = vDynMem // needs a defined non-void callee
	}
	name := func(stem string) string { return fmt.Sprintf("%s%sV%d", stem, sl, v) }
	lsl := strings.ToLower(sl)

	switch kind {
	case vComplexity:
		ccn := 11 + rng.Intn(5)
		e.emit(fmt.Sprintf("float %s(float scale, int mode) {", name("HotPath")), "complexity")
		e.emit("  float acc = scale;")
		for i := 0; i < ccn-1; i++ {
			e.emit(fmt.Sprintf("  if (mode > %d) {", i))
			e.emit("    acc = acc + 1.0f;")
			e.emit("  }")
		}
		e.emit("  return acc;")
		e.emit("}")
	case vMultiExit:
		e.emit(fmt.Sprintf("float %s(float scale, int mode) {", name("EarlyExit")), "multi-exit")
		e.emit("  if (mode > 3) {")
		e.emit("    return scale;")
		e.emit("  }")
		e.emit("  return scale + 1.0f;")
		e.emit("}")
	case vGoto:
		e.emit(fmt.Sprintf("float %s(float scale, int mode) {", name("JumpFlow")))
		e.emit("  float status = 0.0f;")
		e.emit("  if (mode > 0) {")
		e.emit("    goto done;", "goto")
		e.emit("  }")
		e.emit("  status = scale;")
		e.emit("done:")
		e.emit("  return status;")
		e.emit("}")
	case vRecursion:
		n := name("Spiral")
		e.emit(fmt.Sprintf("float %s(float depth, int mode) {", n), "recursion")
		e.emit("  float acc = depth;")
		e.emit("  if (mode > 0) {")
		e.emit(fmt.Sprintf("    acc = %s(acc, mode - 1);", n))
		e.emit("  }")
		e.emit("  return acc;")
		e.emit("}")
	case vCast:
		e.emit(fmt.Sprintf("float %s(float scale, int mode) {", name("Quantize")))
		e.emit("  float acc = scale * 2.0f;")
		e.emit("  int bucket = (int)acc;", "cast")
		e.emit("  acc = acc + (float)(bucket + mode);", "cast")
		e.emit("  return acc;")
		e.emit("}")
	case vImplicitConv:
		e.emit(fmt.Sprintf("float %s(float scale, int mode) {", name("Drift")))
		e.emit("  float acc = scale + 1.0f;")
		e.emit("  int approx = acc * 0.5f + mode;", "implicit-conv")
		e.emit("  acc = acc + approx;")
		e.emit("  return acc;")
		e.emit("}")
	case vUninit:
		e.emit(fmt.Sprintf("float %s(float scale, int mode) {", name("Latent")))
		e.emit("  float bias;")
		e.emit("  float acc = bias * scale;", "uninit")
		e.emit("  acc = acc + (0.5f * mode);")
		e.emit("  return acc;")
		e.emit("}")
	case vShadow:
		e.emit(fmt.Sprintf("float %s(float scale, int mode) {", name("Layer")))
		e.emit("  float level = scale;")
		e.emit("  if (mode > 1) {")
		e.emit("    float level = scale + 1.0f;", "shadow")
		e.emit("    level = level + 0.5f;")
		e.emit("  }")
		e.emit("  return level;")
		e.emit("}")
	case vGlobalVar:
		e.emit(fmt.Sprintf("float g_%sv%d_state = 0.0f;", lsl, v), "global-var")
	case vGlobalPtr:
		e.emit(fmt.Sprintf("float* g_%sv%d_buf;", lsl, v), "global-var", "pointer")
	case vPtrParam:
		e.emit(fmt.Sprintf("float %s(const float* data, int mode) {", name("PeekSlot")), "pointer")
		e.emit("  float acc = 0.5f * mode;")
		e.emit("  if (data != 0) {")
		e.emit("    acc = acc + data[0];")
		e.emit("  }")
		e.emit("  return acc;")
		e.emit("}")
	case vDefensiveDeref:
		e.emit(fmt.Sprintf("float %s(const float* data, int mode) {", name("RawRead")), "pointer")
		e.emit("  float acc = 0.5f * mode;")
		e.emit("  acc = acc + data[0];", "defensive")
		e.emit("  return acc;")
		e.emit("}")
	case vDefensiveIgnored:
		e.emit(fmt.Sprintf("void %s(float scale, int mode) {", name("FireForget")))
		e.emit(fmt.Sprintf("  %s(scale, mode, 0.5f);", fillers[0]), "defensive")
		e.emit("}")
	case vUnion:
		e.emit(fmt.Sprintf("union RawWord%sV%d {", sl, v), "lang-subset")
		e.emit("  int bits;")
		e.emit("  float value;")
		e.emit("};")
	case vBannedCall:
		e.emit(fmt.Sprintf("float %s(float scale, int mode) {", name("Entropy")))
		e.emit("  int noise = rand();", "lang-subset")
		e.emit("  float acc = scale + (0.125f * (noise + mode));")
		e.emit("  return acc;")
		e.emit("}")
	case vMisraSwitch:
		e.emit(fmt.Sprintf("float %s(float scale, int mode) {", name("Selector")))
		e.emit("  float acc = scale;")
		e.emit("  switch (mode) {", "misra-extra")
		e.emit("  case 0:")
		e.emit("    acc = acc + 1.0f;")
		e.emit("    break;")
		e.emit("  case 1:")
		e.emit("    acc = acc - 1.0f;")
		e.emit("    break;")
		e.emit("  }")
		e.emit("  return acc;")
		e.emit("}")
	case vMisraOctal:
		e.emit(fmt.Sprintf("float %s(float scale, int mode) {", name("MaskBits")))
		e.emit("  int mask = 0755;", "misra-extra")
		e.emit("  float acc = scale + (0.5f * (mask + mode));")
		e.emit("  return acc;")
		e.emit("}")
	case vMisraAssign:
		e.emit(fmt.Sprintf("float %s(float scale, int mode) {", name("Pump")))
		e.emit("  int level = mode;")
		e.emit("  float acc = scale;")
		e.emit("  while ((level = level - 1) > 0) {", "misra-extra")
		e.emit("    acc = acc + 1.0f;")
		e.emit("  }")
		e.emit("  return acc;")
		e.emit("}")
	case vDynMem:
		e.emit(fmt.Sprintf("void %s(int mode) {", name("ReleasePool")))
		e.emit("  if (mode > 0) {")
		e.emit("    free(0);", "dynamic-memory")
		e.emit("  }")
		e.emit("}")
	case vStyleLong:
		e.emit(fmt.Sprintf("float %s(float scale, int mode) {", name("Verbose")))
		e.emit("  // calibration note: this deliberately exhaustive comment "+
			"overruns the eighty-column style limit", "style")
		e.emit("  float acc = scale + (0.5f * mode);")
		e.emit("  return acc;")
		e.emit("}")
	case vStyleBrace:
		e.emit(fmt.Sprintf("float %s(float scale, int mode)", name("Stacked")))
		e.emit("{", "style")
		e.emit("  float acc = scale + (0.5f * mode);")
		e.emit("  return acc;")
		e.emit("}")
	default: // vNaming
		e.emit(fmt.Sprintf("float probe_Mixer%sV%d(float scale, int mode) {", sl, v), "naming")
		e.emit("  float acc = scale + (0.5f * mode);")
		e.emit("  return acc;")
		e.emit("}")
	}
}

// synthCUDA emits a fixed CUDA template for a module: a kernel (no GPU
// safety subset exists → lang-subset Info; pointer params dereferenced
// unchecked → defensive), a host launcher (kernel launch → lang-subset
// Violation), and a device allocator (cudaMalloc → dynamic-memory, plus
// an explicit cast). Every finding is manifested.
func (g *Generator) synthCUDA(e *emitter, mi, ord int) {
	l := lowerSlug(mi, ord)
	e.emit(fmt.Sprintf("// Generated CUDA file: slug %s.", l))
	e.blank()
	// Kernel: lang-subset (no GPU subset) at decl; two pointer params;
	// both dereferenced without null checks (defensive ×2 at use line).
	e.emit(fmt.Sprintf("__global__ void scale_kern_%s(float *o, float *b, int n, int size) {", l),
		"lang-subset", "pointer", "pointer")
	e.emit("  int i = blockIdx.x * blockDim.x + threadIdx.x;")
	e.emit("  if (i < size) {")
	e.emit("    o[i] = o[i] * b[n - n];", "defensive", "defensive")
	e.emit("  }")
	e.emit("}")
	e.blank()
	// Host launcher: pointer params (passed through, never dereferenced)
	// and the kernel launch itself.
	e.emit(fmt.Sprintf("void scale_gpu_%s(float *o, float *b, int n, int size) {", l),
		"pointer", "pointer")
	e.emit("  int blocks = (size - 1) / 256 + 1;")
	e.emit(fmt.Sprintf("  scale_kern_%s<<<blocks, 256>>>(o, b, n, size);", l), "lang-subset")
	e.emit("  cudaDeviceSynchronize();")
	e.emit("}")
	e.blank()
	// Device allocator: pointer param and local, cudaMalloc with the
	// canonical (void**) cast.
	e.emit(fmt.Sprintf("float* make_buf_%s(float *x, int n) {", l), "pointer")
	e.emit("  float *d;", "pointer")
	e.emit("  cudaMalloc((void**)&d, n * 4);", "cast", "dynamic-memory")
	e.emit("  if (x != 0) {")
	e.emit("    cudaMemcpy(d, x, n * 4, 1);")
	e.emit("  }")
	e.emit("  return d;")
	e.emit("}")
}
