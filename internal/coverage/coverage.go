// Package coverage measures statement, branch, and MC/DC coverage over
// interpreted executions of the parsed corpus — the reproduction of the
// paper's RapiCover-based unit-testing study (Figure 5) and of the
// cuda4cpu GPU-on-CPU study (Figure 6).
//
// Instrumentation is probe-based: Instrument assigns IDs to statements,
// decisions, and leaf conditions of a function and returns a Recorder
// whose cinterp.Hooks mark execution events. MC/DC is computed from
// recorded condition vectors, with both unique-cause and masking modes.
package coverage

import (
	"fmt"
	"sort"

	"repro/internal/artifact"
	"repro/internal/ccast"
	"repro/internal/cfg"
	"repro/internal/cinterp"
)

// StmtProbe is one instrumented statement.
type StmtProbe struct {
	ID   int
	Line int
	Hits int
}

// CondProbe is one leaf condition within a decision.
type CondProbe struct {
	ID   int
	Line int
	// TrueSeen/FalseSeen record observed outcomes.
	TrueSeen  bool
	FalseSeen bool
}

// DecisionProbe is one branching point.
type DecisionProbe struct {
	ID    int
	Line  int
	Kind  string
	Conds []*CondProbe
	// TrueHits/FalseHits count decision outcomes.
	TrueHits  int
	FalseHits int
	// vectors are the recorded condition/outcome evaluations for MC/DC.
	vectors []condVector
}

// condVector is one decision evaluation: per-condition outcome
// (-1 = not evaluated due to short circuit) plus the decision outcome.
type condVector struct {
	conds   []int8
	outcome bool
}

// CaseProbe tracks one switch case label (branch coverage contributors).
type CaseProbe struct {
	ID          int
	Line        int
	MatchSeen   bool
	NoMatchSeen bool
}

// FuncCoverage is the instrumented view of one function.
type FuncCoverage struct {
	Name string
	File string

	Stmts     []*StmtProbe
	Decisions []*DecisionProbe
	Cases     []*CaseProbe

	stmtOf map[ccast.Stmt]*StmtProbe
	decOf  map[ccast.Node]*DecisionProbe
	condOf map[ccast.Expr]*CondProbe
	caseOf map[*ccast.CaseClause]*CaseProbe

	// pending assembles the current decision's condition vector.
	pending map[*DecisionProbe][]int8
}

// Instrument builds probes for a function definition.
func Instrument(fn *ccast.FuncDecl, file string) *FuncCoverage {
	fc := newFuncCoverage(fn, file)
	ccast.Walk(fn.Body, func(n ccast.Node) bool {
		switch n := n.(type) {
		case ccast.Stmt:
			switch n.(type) {
			case *ccast.Block, *ccast.Label:
				// containers: not counted as statements
			default:
				fc.addStmt(n.(ccast.Stmt))
			}
			switch s := n.(type) {
			case *ccast.If:
				fc.addDecision(s, "if", s.Cond)
			case *ccast.While:
				fc.addDecision(s, "while", s.Cond)
			case *ccast.DoWhile:
				fc.addDecision(s, "do-while", s.Cond)
			case *ccast.For:
				if s.Cond != nil {
					fc.addDecision(s, "for", s.Cond)
				}
			case *ccast.Switch:
				for _, c := range s.Cases {
					if len(c.Values) == 0 {
						continue // default label is not a branch test
					}
					fc.addCase(c)
				}
			}
		case *ccast.Cond:
			fc.addDecision(n, "?:", n.C)
		}
		return true
	})
	return fc
}

// InstrumentGraph builds probes from a prebuilt control-flow graph's
// statement/decision/case inventories instead of re-walking the function
// body. The graph must come from cfg.Build over the same declaration;
// with a shared artifact cache the CFG is constructed once per function
// and this path performs no AST traversal. The probe layout is identical
// to Instrument's (the inventories are collected in the same DFS order).
func InstrumentGraph(fn *ccast.FuncDecl, file string, g *cfg.Graph) *FuncCoverage {
	if g == nil {
		return Instrument(fn, file)
	}
	fc := newFuncCoverage(fn, file)
	for _, s := range g.Stmts {
		fc.addStmt(s)
	}
	// Probe IDs are per-category, and each inventory is collected in the
	// same DFS order Instrument's walk uses, so category-ordered
	// construction yields identical probes. Case decisions are tracked by
	// CaseProbes, not DecisionProbes, exactly as in Instrument.
	for _, d := range g.Decisions {
		if d.Kind != cfg.DecisionCase {
			fc.addDecision(d.Owner, d.Kind.String(), d.Expr)
		}
	}
	for _, c := range g.Cases {
		fc.addCase(c)
	}
	return fc
}

// newFuncCoverage allocates the probe container for one function.
func newFuncCoverage(fn *ccast.FuncDecl, file string) *FuncCoverage {
	return &FuncCoverage{
		Name:    fn.Name,
		File:    file,
		stmtOf:  make(map[ccast.Stmt]*StmtProbe),
		decOf:   make(map[ccast.Node]*DecisionProbe),
		condOf:  make(map[ccast.Expr]*CondProbe),
		caseOf:  make(map[*ccast.CaseClause]*CaseProbe),
		pending: make(map[*DecisionProbe][]int8),
	}
}

func (fc *FuncCoverage) addStmt(s ccast.Stmt) {
	sp := &StmtProbe{ID: len(fc.Stmts), Line: s.Span().Start.Line}
	fc.Stmts = append(fc.Stmts, sp)
	fc.stmtOf[s] = sp
}

func (fc *FuncCoverage) addCase(c *ccast.CaseClause) {
	cp := &CaseProbe{ID: len(fc.Cases), Line: c.Span().Start.Line}
	fc.Cases = append(fc.Cases, cp)
	fc.caseOf[c] = cp
}

func (fc *FuncCoverage) addDecision(owner ccast.Node, kind string, cond ccast.Expr) {
	dp := &DecisionProbe{
		ID: len(fc.Decisions), Line: owner.Span().Start.Line, Kind: kind,
	}
	fc.Decisions = append(fc.Decisions, dp)
	fc.decOf[owner] = dp
	for _, leaf := range LeafConditions(cond) {
		cp := &CondProbe{ID: len(dp.Conds), Line: leaf.Span().Start.Line}
		dp.Conds = append(dp.Conds, cp)
		fc.condOf[leaf] = cp
	}
}

// LeafConditions decomposes a controlling expression into its leaf
// conditions: operands of && and || after stripping parentheses and
// negations. A decision with no short-circuit structure has one leaf.
func LeafConditions(e ccast.Expr) []ccast.Expr {
	switch x := e.(type) {
	case *ccast.Paren:
		return LeafConditions(x.X)
	case *ccast.Unary:
		if x.Op == "!" {
			return LeafConditions(x.X)
		}
	case *ccast.Binary:
		if x.Op == "&&" || x.Op == "||" {
			return append(LeafConditions(x.L), LeafConditions(x.R)...)
		}
	}
	if e == nil {
		return nil
	}
	return []ccast.Expr{e}
}

// Hooks returns interpreter hooks that mark this function's probes. Pass
// the same Recorder hooks for every function by combining with Merge.
func (fc *FuncCoverage) Hooks() cinterp.Hooks {
	return cinterp.Hooks{
		OnStmt: func(s ccast.Stmt) {
			if p, ok := fc.stmtOf[s]; ok {
				p.Hits++
			}
		},
		OnCondition: func(owner ccast.Node, leaf ccast.Expr, outcome bool) {
			dp, ok := fc.decOf[owner]
			if !ok {
				return
			}
			cp, ok := fc.condOf[leaf]
			if !ok {
				return
			}
			if outcome {
				cp.TrueSeen = true
			} else {
				cp.FalseSeen = true
			}
			vec := fc.pending[dp]
			if vec == nil {
				vec = make([]int8, len(dp.Conds))
				for i := range vec {
					vec[i] = -1
				}
			}
			if outcome {
				vec[cp.ID] = 1
			} else {
				vec[cp.ID] = 0
			}
			fc.pending[dp] = vec
		},
		OnDecision: func(owner ccast.Node, outcome bool) {
			dp, ok := fc.decOf[owner]
			if !ok {
				return
			}
			if outcome {
				dp.TrueHits++
			} else {
				dp.FalseHits++
			}
			vec := fc.pending[dp]
			if vec == nil {
				vec = make([]int8, len(dp.Conds))
				for i := range vec {
					vec[i] = -1
				}
			}
			dp.vectors = append(dp.vectors, condVector{conds: vec, outcome: outcome})
			delete(fc.pending, dp)
		},
		OnCase: func(c *ccast.CaseClause, matched bool) {
			if p, ok := fc.caseOf[c]; ok {
				if matched {
					p.MatchSeen = true
				} else {
					p.NoMatchSeen = true
				}
			}
		},
	}
}

// MCDCMode selects the independence-pair analysis.
type MCDCMode int

// MC/DC analysis modes.
const (
	// UniqueCause requires the pair of evaluations to differ only in the
	// target condition.
	UniqueCause MCDCMode = iota
	// Masking allows other conditions to differ when they are masked;
	// operationally we require only that the target condition and the
	// decision outcome both flip.
	Masking
)

// String names the mode.
func (m MCDCMode) String() string {
	if m == Masking {
		return "masking"
	}
	return "unique-cause"
}

// mcdcDemonstrated reports whether condition i of the decision has an
// independence pair among the recorded vectors.
func (dp *DecisionProbe) mcdcDemonstrated(i int, mode MCDCMode) bool {
	if len(dp.Conds) == 1 {
		// Single-condition decision: MC/DC degenerates to both outcomes.
		return dp.TrueHits > 0 && dp.FalseHits > 0
	}
	for a := 0; a < len(dp.vectors); a++ {
		va := dp.vectors[a]
		if va.conds[i] < 0 {
			continue
		}
		for b := a + 1; b < len(dp.vectors); b++ {
			vb := dp.vectors[b]
			if vb.conds[i] < 0 {
				continue
			}
			if va.conds[i] == vb.conds[i] || va.outcome == vb.outcome {
				continue
			}
			if mode == Masking {
				return true
			}
			// Unique cause: every other condition must hold the same value
			// in both evaluations; a short-circuited (unevaluated) leg is a
			// don't-care, which is the accepted treatment for coupled
			// short-circuit operators.
			equalOthers := true
			for j := range va.conds {
				if j == i || va.conds[j] < 0 || vb.conds[j] < 0 {
					continue
				}
				if va.conds[j] != vb.conds[j] {
					equalOthers = false
					break
				}
			}
			if equalOthers {
				return true
			}
		}
	}
	return false
}

// Summary holds the three coverage percentages for one scope.
type Summary struct {
	Scope string

	StmtTotal   int
	StmtCovered int

	BranchTotal   int
	BranchCovered int

	CondTotal        int
	CondDemonstrated int

	// Called reports whether any statement executed (used to exclude
	// never-called functions, as the paper does).
	Called bool
}

// StmtPct returns statement coverage in percent (100 when empty).
func (s *Summary) StmtPct() float64 { return pct(s.StmtCovered, s.StmtTotal) }

// BranchPct returns branch coverage in percent.
func (s *Summary) BranchPct() float64 { return pct(s.BranchCovered, s.BranchTotal) }

// MCDCPct returns MC/DC coverage in percent.
func (s *Summary) MCDCPct() float64 { return pct(s.CondDemonstrated, s.CondTotal) }

func pct(n, d int) float64 {
	if d == 0 {
		return 100
	}
	return 100 * float64(n) / float64(d)
}

// Summarize computes the function's coverage summary.
func (fc *FuncCoverage) Summarize(mode MCDCMode) *Summary {
	s := &Summary{Scope: fc.Name}
	for _, p := range fc.Stmts {
		s.StmtTotal++
		if p.Hits > 0 {
			s.StmtCovered++
			s.Called = true
		}
	}
	for _, d := range fc.Decisions {
		s.BranchTotal += 2
		if d.TrueHits > 0 {
			s.BranchCovered++
		}
		if d.FalseHits > 0 {
			s.BranchCovered++
		}
		for i := range d.Conds {
			s.CondTotal++
			if d.mcdcDemonstrated(i, mode) {
				s.CondDemonstrated++
			}
		}
	}
	for _, c := range fc.Cases {
		s.BranchTotal += 2
		if c.MatchSeen {
			s.BranchCovered++
		}
		if c.NoMatchSeen {
			s.BranchCovered++
		}
	}
	return s
}

// Recorder instruments many functions and fans interpreter events to the
// right FuncCoverage.
type Recorder struct {
	Funcs []*FuncCoverage
	hooks []cinterp.Hooks
}

// NewRecorder instruments the given function definitions.
func NewRecorder(fns []*ccast.FuncDecl, file string) *Recorder {
	r := &Recorder{}
	for _, fn := range fns {
		fc := Instrument(fn, file)
		r.Funcs = append(r.Funcs, fc)
		r.hooks = append(r.hooks, fc.Hooks())
	}
	return r
}

// NewRecorderIndexed instruments functions through the shared artifact
// cache: each function's memoized control-flow graph supplies the probe
// inventories, so repeated instrumentation (multiple coverage runs over
// one corpus) never re-traverses a body.
func NewRecorderIndexed(fas []*artifact.Func, file string) *Recorder {
	r := &Recorder{}
	for _, fa := range fas {
		fc := InstrumentGraph(fa.Decl, file, fa.CFG())
		r.Funcs = append(r.Funcs, fc)
		r.hooks = append(r.hooks, fc.Hooks())
	}
	return r
}

// NewRecorderForUnit instruments every function of one indexed unit.
// Combined with the incremental index this is the delta-aware coverage
// path: after artifact.Index.Apply, untouched units keep their Func
// records — and therefore their memoized CFGs — by pointer, so repeated
// recorder construction across corpus deltas re-traverses only the
// bodies of files that actually changed. Recorder state itself (hit
// counts, condition vectors) is fresh per call, as coverage runs must
// not leak into each other.
func NewRecorderForUnit(ix *artifact.Index, path string) *Recorder {
	return NewRecorderIndexed(ix.UnitFuncs(path), path)
}

// Hooks returns combined hooks dispatching to every instrumented function.
// Probe maps are disjoint (keyed by AST node pointers), so fan-out is safe.
func (r *Recorder) Hooks() cinterp.Hooks {
	return cinterp.Hooks{
		OnStmt: func(s ccast.Stmt) {
			for _, h := range r.hooks {
				h.OnStmt(s)
			}
		},
		OnDecision: func(owner ccast.Node, outcome bool) {
			for _, h := range r.hooks {
				h.OnDecision(owner, outcome)
			}
		},
		OnCondition: func(owner ccast.Node, leaf ccast.Expr, outcome bool) {
			for _, h := range r.hooks {
				h.OnCondition(owner, leaf, outcome)
			}
		},
		OnCase: func(c *ccast.CaseClause, matched bool) {
			for _, h := range r.hooks {
				h.OnCase(c, matched)
			}
		},
	}
}

// FileSummary aggregates function summaries for one file, optionally
// excluding functions that were never called (the paper's methodology).
func FileSummary(file string, funcs []*FuncCoverage, mode MCDCMode, excludeUncalled bool) *Summary {
	agg := &Summary{Scope: file}
	for _, fc := range funcs {
		s := fc.Summarize(mode)
		if excludeUncalled && !s.Called {
			continue
		}
		agg.Called = agg.Called || s.Called
		agg.StmtTotal += s.StmtTotal
		agg.StmtCovered += s.StmtCovered
		agg.BranchTotal += s.BranchTotal
		agg.BranchCovered += s.BranchCovered
		agg.CondTotal += s.CondTotal
		agg.CondDemonstrated += s.CondDemonstrated
	}
	return agg
}

// Average computes the unweighted mean of per-file percentages, matching
// how the paper reports "average coverage is 83%, 75% and 61%".
func Average(summaries []*Summary) (stmt, branch, mcdc float64) {
	if len(summaries) == 0 {
		return 0, 0, 0
	}
	for _, s := range summaries {
		stmt += s.StmtPct()
		branch += s.BranchPct()
		mcdc += s.MCDCPct()
	}
	n := float64(len(summaries))
	return stmt / n, branch / n, mcdc / n
}

// SortSummaries orders summaries by scope for stable reporting.
func SortSummaries(ss []*Summary) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Scope < ss[j].Scope })
}

// String renders a summary line.
func (s *Summary) String() string {
	return fmt.Sprintf("%s: stmt %.1f%% (%d/%d) branch %.1f%% (%d/%d) mcdc %.1f%% (%d/%d)",
		s.Scope, s.StmtPct(), s.StmtCovered, s.StmtTotal,
		s.BranchPct(), s.BranchCovered, s.BranchTotal,
		s.MCDCPct(), s.CondDemonstrated, s.CondTotal)
}
