package coverage

import (
	"testing"

	"repro/internal/ccparse"
	"repro/internal/cinterp"
	"repro/internal/srcfile"
)

// run parses src, instruments every function, executes entry with the given
// int args once per argument tuple, and returns the recorder.
func run(t *testing.T, src, entry string, argTuples ...[]int64) *Recorder {
	t.Helper()
	f := &srcfile.File{Path: "t.c", Lang: srcfile.LangC, Src: src}
	tu, errs := ccparse.Parse(f, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	rec := NewRecorder(tu.Funcs(), "t.c")
	m := cinterp.NewMachine(tu)
	m.Hooks = rec.Hooks()
	for _, args := range argTuples {
		vals := make([]cinterp.Value, len(args))
		for i, a := range args {
			vals[i] = cinterp.IntVal(a)
		}
		m.Reset()
		if _, err := m.Call(entry, vals...); err != nil {
			t.Fatalf("Call(%s, %v): %v", entry, args, err)
		}
	}
	return rec
}

func fnCov(t *testing.T, rec *Recorder, name string) *FuncCoverage {
	t.Helper()
	for _, fc := range rec.Funcs {
		if fc.Name == name {
			return fc
		}
	}
	t.Fatalf("no coverage for %q", name)
	return nil
}

const absSrc = `
int myabs(int x) {
    if (x < 0) { return 0 - x; }
    return x;
}`

func TestStatementCoveragePartial(t *testing.T) {
	rec := run(t, absSrc, "myabs", []int64{5})
	s := fnCov(t, rec, "myabs").Summarize(UniqueCause)
	// if + return x executed; "return -x" not.
	if s.StmtTotal != 3 || s.StmtCovered != 2 {
		t.Errorf("stmt = %d/%d, want 2/3", s.StmtCovered, s.StmtTotal)
	}
	if s.BranchCovered != 1 || s.BranchTotal != 2 {
		t.Errorf("branch = %d/%d, want 1/2", s.BranchCovered, s.BranchTotal)
	}
}

func TestStatementCoverageFull(t *testing.T) {
	rec := run(t, absSrc, "myabs", []int64{5}, []int64{-5})
	s := fnCov(t, rec, "myabs").Summarize(UniqueCause)
	if s.StmtPct() != 100 {
		t.Errorf("stmt pct = %v", s.StmtPct())
	}
	if s.BranchPct() != 100 {
		t.Errorf("branch pct = %v", s.BranchPct())
	}
	if s.MCDCPct() != 100 {
		t.Errorf("mcdc pct = %v (single condition: both outcomes seen)", s.MCDCPct())
	}
}

const andSrc = `
int both(int a, int b) {
    if (a > 0 && b > 0) { return 1; }
    return 0;
}`

func TestMCDCTwoConditionsNeedsThreeVectors(t *testing.T) {
	// (T,T) and (F,-) only: condition b not demonstrated.
	rec := run(t, andSrc, "both", []int64{1, 1}, []int64{0, 5})
	s := fnCov(t, rec, "both").Summarize(UniqueCause)
	if s.CondTotal != 2 {
		t.Fatalf("conds = %d", s.CondTotal)
	}
	if s.CondDemonstrated != 1 {
		t.Errorf("demonstrated = %d, want 1 (only a)", s.CondDemonstrated)
	}
	// Add (T,F): now b is demonstrated against (T,T).
	rec = run(t, andSrc, "both", []int64{1, 1}, []int64{0, 5}, []int64{1, 0})
	s = fnCov(t, rec, "both").Summarize(UniqueCause)
	if s.CondDemonstrated != 2 {
		t.Errorf("demonstrated = %d, want 2", s.CondDemonstrated)
	}
}

func TestMCDCUniqueCauseVsMasking(t *testing.T) {
	src := `
int f(int a, int b, int c) {
    if ((a > 0 && b > 0) || c > 0) { return 1; }
    return 0;
}`
	// Vectors: (T,T,-)=T, (F,-,T)=T, (F,-,F)=F, (T,F,F)=F.
	rec := run(t, src, "f",
		[]int64{1, 1, 0}, []int64{0, 0, 1}, []int64{0, 0, 0}, []int64{1, 0, 0})
	fc := fnCov(t, rec, "f")
	uc := fc.Summarize(UniqueCause)
	mk := fc.Summarize(Masking)
	if mk.CondDemonstrated < uc.CondDemonstrated {
		t.Errorf("masking (%d) must be >= unique-cause (%d)",
			mk.CondDemonstrated, uc.CondDemonstrated)
	}
	if uc.CondTotal != 3 {
		t.Errorf("cond total = %d", uc.CondTotal)
	}
	// a: (T,F,F)=F vs (T,T,-)=T differ in b... a needs pair differing only
	// in a: (F,-,F)=F vs? (T,?,F): (T,F,F)=F same outcome. No unique-cause
	// pair for a ⇒ masking may still find none for a but c has
	// (F,-,T)=T vs (F,-,F)=F: unique-cause demonstrated.
	if uc.CondDemonstrated < 1 {
		t.Errorf("unique-cause demonstrated = %d, want >= 1", uc.CondDemonstrated)
	}
}

func TestLoopCoverage(t *testing.T) {
	src := `
int sum(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += i; }
    return s;
}`
	// n=3: loop cond sees true and false.
	rec := run(t, src, "sum", []int64{3})
	s := fnCov(t, rec, "sum").Summarize(UniqueCause)
	if s.BranchPct() != 100 {
		t.Errorf("branch pct = %v", s.BranchPct())
	}
	// n=0: cond only false.
	rec = run(t, src, "sum", []int64{0})
	s = fnCov(t, rec, "sum").Summarize(UniqueCause)
	if s.BranchCovered != 1 {
		t.Errorf("branch covered = %d, want 1", s.BranchCovered)
	}
}

func TestSwitchCaseBranches(t *testing.T) {
	src := `
int pick(int x) {
    int r = 0;
    switch (x) {
    case 1: r = 10; break;
    case 2: r = 20; break;
    default: r = 30;
    }
    return r;
}`
	rec := run(t, src, "pick", []int64{1})
	s := fnCov(t, rec, "pick").Summarize(UniqueCause)
	// 2 case probes ⇒ 4 branch outcomes; case1 matched, case2 unmatched.
	if s.BranchTotal != 4 {
		t.Fatalf("branch total = %d, want 4", s.BranchTotal)
	}
	if s.BranchCovered != 2 {
		t.Errorf("branch covered = %d, want 2", s.BranchCovered)
	}
	rec = run(t, src, "pick", []int64{1}, []int64{2}, []int64{9})
	s = fnCov(t, rec, "pick").Summarize(UniqueCause)
	if s.BranchPct() != 100 {
		t.Errorf("branch pct = %v", s.BranchPct())
	}
}

func TestUncalledFunctionExcluded(t *testing.T) {
	src := `
int used(int a) { return a + 1; }
int unused(int a) { return a - 1; }
`
	rec := run(t, src, "used", []int64{1})
	all := FileSummary("t.c", rec.Funcs, UniqueCause, false)
	called := FileSummary("t.c", rec.Funcs, UniqueCause, true)
	if all.StmtTotal != 2 {
		t.Errorf("all stmts = %d", all.StmtTotal)
	}
	if called.StmtTotal != 1 || called.StmtPct() != 100 {
		t.Errorf("called-only = %d stmts, %.0f%%", called.StmtTotal, called.StmtPct())
	}
}

func TestLeafConditions(t *testing.T) {
	f := &srcfile.File{Path: "t.c", Lang: srcfile.LangC, Src: `
int f(int a, int b, int c) {
    if (!(a > 0) && (b > 0 || c > 0)) { return 1; }
    return 0;
}`}
	tu, _ := ccparse.Parse(f, ccparse.Options{})
	fc := Instrument(tu.Funcs()[0], "t.c")
	if len(fc.Decisions) != 1 {
		t.Fatalf("decisions = %d", len(fc.Decisions))
	}
	if got := len(fc.Decisions[0].Conds); got != 3 {
		t.Errorf("leaf conditions = %d, want 3", got)
	}
}

func TestTernaryCountsAsDecision(t *testing.T) {
	src := `int f(int a) { return a > 0 ? 1 : 0; }`
	rec := run(t, src, "f", []int64{1}, []int64{-1})
	s := fnCov(t, rec, "f").Summarize(UniqueCause)
	if s.BranchTotal != 2 || s.BranchCovered != 2 {
		t.Errorf("ternary branch = %d/%d", s.BranchCovered, s.BranchTotal)
	}
}

func TestAverage(t *testing.T) {
	a := &Summary{StmtTotal: 10, StmtCovered: 10, BranchTotal: 2, BranchCovered: 1, CondTotal: 2, CondDemonstrated: 1}
	b := &Summary{StmtTotal: 10, StmtCovered: 5, BranchTotal: 2, BranchCovered: 2, CondTotal: 4, CondDemonstrated: 1}
	stmt, branch, mcdc := Average([]*Summary{a, b})
	if stmt != 75 {
		t.Errorf("stmt avg = %v", stmt)
	}
	if branch != 75 {
		t.Errorf("branch avg = %v", branch)
	}
	if mcdc != 37.5 {
		t.Errorf("mcdc avg = %v", mcdc)
	}
}

func TestShortCircuitVectorRecording(t *testing.T) {
	// With a=0 the second condition of && never evaluates; its CondProbe
	// must remain unseen.
	rec := run(t, andSrc, "both", []int64{0, 1})
	fc := fnCov(t, rec, "both")
	d := fc.Decisions[0]
	if d.Conds[0].FalseSeen != true {
		t.Error("cond a false not seen")
	}
	if d.Conds[1].TrueSeen || d.Conds[1].FalseSeen {
		t.Error("cond b must be short-circuited")
	}
}

func TestSummaryString(t *testing.T) {
	s := &Summary{Scope: "x.c", StmtTotal: 4, StmtCovered: 2, BranchTotal: 2, BranchCovered: 1, CondTotal: 1, CondDemonstrated: 0}
	if s.String() == "" {
		t.Error("empty render")
	}
}
