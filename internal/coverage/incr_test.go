package coverage_test

import (
	"testing"

	"repro/internal/artifact"
	"repro/internal/ccparse"
	"repro/internal/cfg"
	"repro/internal/coverage"
	"repro/internal/srcfile"
)

// TestRecorderForUnitAcrossDelta verifies the delta-aware coverage path:
// after an index delta, recorders for untouched units are built from the
// same memoized CFGs (no body re-traversal), while the edited unit gets
// fresh graphs, and probe inventories always match a cold Instrument.
func TestRecorderForUnitAcrossDelta(t *testing.T) {
	fs := srcfile.NewFileSet()
	fs.AddSource("m/a.c", "int fa(int x) { if (x > 0) { return 1; } return 0; }\n")
	fs.AddSource("m/b.c", "int fb(int x) { while (x > 0) { x--; } return x; }\n")
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	ix := artifact.Build(units)

	graphsOf := func(path string) []*cfg.Graph {
		var out []*cfg.Graph
		for _, fa := range ix.UnitFuncs(path) {
			out = append(out, fa.CFG())
		}
		return out
	}
	before := graphsOf("m/a.c")
	r1 := coverage.NewRecorderForUnit(ix, "m/a.c")
	if len(r1.Funcs) != 1 || len(r1.Funcs[0].Decisions) != 1 {
		t.Fatalf("unexpected probe inventory: %+v", r1.Funcs)
	}

	// Delta: edit m/b.c only.
	f := &srcfile.File{Path: "m/b.c", Lang: srcfile.LangC,
		Src: "int fb(int x) { do { x--; } while (x > 0); return x; }\n"}
	tu, es := ccparse.Parse(f, ccparse.Options{})
	if len(es) > 0 {
		t.Fatal(es[0])
	}
	ix.ReplaceUnit(tu)

	after := graphsOf("m/a.c")
	for i := range before {
		if before[i] != after[i] {
			t.Error("untouched unit's memoized CFG was rebuilt across a delta")
		}
	}

	// Recorders built from the reused graphs keep the same inventory.
	r2 := coverage.NewRecorderForUnit(ix, "m/a.c")
	if len(r2.Funcs) != len(r1.Funcs) {
		t.Fatalf("recorder shape changed: %d vs %d", len(r2.Funcs), len(r1.Funcs))
	}
	for i := range r2.Funcs {
		if len(r2.Funcs[i].Stmts) != len(r1.Funcs[i].Stmts) ||
			len(r2.Funcs[i].Decisions) != len(r1.Funcs[i].Decisions) {
			t.Fatalf("probe inventory changed for %s", r2.Funcs[i].Name)
		}
	}

	// The edited unit's recorder reflects the new body (do-while still
	// has one decision; its hit state starts clean).
	rb := coverage.NewRecorderForUnit(ix, "m/b.c")
	if len(rb.Funcs) != 1 || len(rb.Funcs[0].Decisions) != 1 {
		t.Fatalf("edited unit inventory: %+v", rb.Funcs)
	}
	if rb.Funcs[0].Decisions[0].Kind != "do-while" {
		t.Errorf("edited unit kind = %q, want do-while", rb.Funcs[0].Decisions[0].Kind)
	}
}
