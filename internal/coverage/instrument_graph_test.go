package coverage

import (
	"testing"

	"repro/internal/apollocorpus"
	"repro/internal/ccparse"
	"repro/internal/cfg"
)

// TestInstrumentGraphMatchesInstrument verifies the CFG-backed probe
// builder produces the exact inventory of the walking instrumenter for
// every function in the YOLO corpus (the Figure 5 subject).
func TestInstrumentGraphMatchesInstrument(t *testing.T) {
	fs := apollocorpus.YoloCorpus()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	checked := 0
	for p, tu := range units {
		for _, fn := range tu.Funcs() {
			walk := Instrument(fn, p)
			graph := InstrumentGraph(fn, p, cfg.Build(fn))
			if len(walk.Stmts) != len(graph.Stmts) {
				t.Fatalf("%s/%s: stmt probes %d vs %d", p, fn.Name, len(graph.Stmts), len(walk.Stmts))
			}
			for i := range walk.Stmts {
				if walk.Stmts[i].Line != graph.Stmts[i].Line {
					t.Fatalf("%s/%s: stmt %d line %d vs %d", p, fn.Name, i, graph.Stmts[i].Line, walk.Stmts[i].Line)
				}
			}
			if len(walk.Decisions) != len(graph.Decisions) {
				t.Fatalf("%s/%s: decisions %d vs %d", p, fn.Name, len(graph.Decisions), len(walk.Decisions))
			}
			for i := range walk.Decisions {
				wd, gd := walk.Decisions[i], graph.Decisions[i]
				if wd.Line != gd.Line || wd.Kind != gd.Kind || len(wd.Conds) != len(gd.Conds) {
					t.Fatalf("%s/%s: decision %d (%s@%d conds=%d) vs (%s@%d conds=%d)",
						p, fn.Name, i, gd.Kind, gd.Line, len(gd.Conds), wd.Kind, wd.Line, len(wd.Conds))
				}
			}
			if len(walk.Cases) != len(graph.Cases) {
				t.Fatalf("%s/%s: cases %d vs %d", p, fn.Name, len(graph.Cases), len(walk.Cases))
			}
			for i := range walk.Cases {
				if walk.Cases[i].Line != graph.Cases[i].Line {
					t.Fatalf("%s/%s: case %d line mismatch", p, fn.Name, i)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no functions checked")
	}
}
