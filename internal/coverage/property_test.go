package coverage

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ccparse"
	"repro/internal/cinterp"
	"repro/internal/srcfile"
)

// TestCoverageMonotoneInVectors: adding test vectors never reduces any
// coverage metric — the invariant the testgen search depends on.
func TestCoverageMonotoneInVectors(t *testing.T) {
	src := `
int classify(int a, int b) {
    if (a > 0 && b > 0) { return 3; }
    if (a > 0 || b > 0) { return 1; }
    switch (a) {
    case -1: return -1;
    case -2: return -2;
    default: return 0;
    }
}`
	f := &srcfile.File{Path: "t.c", Lang: srcfile.LangC, Src: src}
	tu, errs := ccparse.Parse(f, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	rec := NewRecorder(tu.Funcs(), "t.c")
	m := cinterp.NewMachine(tu)
	m.Hooks = rec.Hooks()

	rng := rand.New(rand.NewSource(11))
	prev := [3]int{}
	for i := 0; i < 50; i++ {
		a := int64(rng.Intn(7) - 3)
		b := int64(rng.Intn(7) - 3)
		m.Reset()
		if _, err := m.Call("classify", cinterp.IntVal(a), cinterp.IntVal(b)); err != nil {
			t.Fatal(err)
		}
		for _, mode := range []MCDCMode{UniqueCause, Masking} {
			s := rec.Funcs[0].Summarize(mode)
			cur := [3]int{s.StmtCovered, s.BranchCovered, s.CondDemonstrated}
			if mode == UniqueCause {
				for j := range cur {
					if cur[j] < prev[j] {
						t.Fatalf("metric %d regressed: %d -> %d after vector (%d,%d)",
							j, prev[j], cur[j], a, b)
					}
				}
				prev = cur
			}
			// Totals never change as vectors accumulate.
			if s.StmtTotal == 0 || s.BranchTotal == 0 || s.CondTotal == 0 {
				t.Fatal("instrumentation lost totals")
			}
		}
	}
}

// TestMaskingSupersetOfUniqueCause: on identical executions, masking MC/DC
// demonstrates at least every condition unique-cause demonstrates.
func TestMaskingSupersetOfUniqueCause(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		src := fmt.Sprintf(`
int f(int a, int b, int c) {
    if ((a > %d && b > %d) || c > %d) { return 1; }
    return 0;
}`, trial%3, trial%2, trial%4)
		f := &srcfile.File{Path: "t.c", Lang: srcfile.LangC, Src: src}
		tu, errs := ccparse.Parse(f, ccparse.Options{})
		if len(errs) > 0 {
			t.Fatalf("parse: %v", errs)
		}
		rec := NewRecorder(tu.Funcs(), "t.c")
		m := cinterp.NewMachine(tu)
		m.Hooks = rec.Hooks()
		rng := rand.New(rand.NewSource(int64(trial)))
		for i := 0; i < 12; i++ {
			m.Reset()
			_, err := m.Call("f",
				cinterp.IntVal(int64(rng.Intn(5)-2)),
				cinterp.IntVal(int64(rng.Intn(5)-2)),
				cinterp.IntVal(int64(rng.Intn(5)-2)))
			if err != nil {
				t.Fatal(err)
			}
		}
		uc := rec.Funcs[0].Summarize(UniqueCause)
		mk := rec.Funcs[0].Summarize(Masking)
		if mk.CondDemonstrated < uc.CondDemonstrated {
			t.Fatalf("trial %d: masking (%d) < unique-cause (%d)",
				trial, mk.CondDemonstrated, uc.CondDemonstrated)
		}
	}
}

// TestPercentagesBounded: all percentages stay in [0, 100].
func TestPercentagesBounded(t *testing.T) {
	s := &Summary{StmtTotal: 3, StmtCovered: 3, BranchTotal: 4, BranchCovered: 2, CondTotal: 5, CondDemonstrated: 0}
	for _, p := range []float64{s.StmtPct(), s.BranchPct(), s.MCDCPct()} {
		if p < 0 || p > 100 {
			t.Errorf("percentage out of range: %v", p)
		}
	}
	empty := &Summary{}
	if empty.StmtPct() != 100 {
		t.Errorf("empty scope statement pct = %v, want 100 by convention", empty.StmtPct())
	}
}
