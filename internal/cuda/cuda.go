// Package cuda emulates CUDA kernel execution on the host interpreter —
// the reproduction of cuda4cpu, the approach the paper itself uses to
// obtain GPU code-coverage numbers on a CPU (Section 3.3, Figure 6).
//
// A kernel launch fun<<<grid, block>>>(args) is executed by iterating the
// whole grid sequentially: for every (block, thread) coordinate the
// kernel body runs with threadIdx/blockIdx/blockDim/gridDim bound to that
// coordinate. Memory is shared host/device (cudaMalloc allocates ordinary
// interpreter blocks), which mirrors cuda4cpu's unified host execution.
package cuda

import (
	"fmt"

	"repro/internal/cinterp"
)

// Dim3 is a CUDA grid/block dimension triple.
type Dim3 struct {
	X, Y, Z int64
}

// Count returns the number of coordinates in the dimension.
func (d Dim3) Count() int64 {
	x, y, z := d.X, d.Y, d.Z
	if x <= 0 {
		x = 1
	}
	if y <= 0 {
		y = 1
	}
	if z <= 0 {
		z = 1
	}
	return x * y * z
}

// normalize clamps zero dimensions to 1.
func (d Dim3) normalize() Dim3 {
	if d.X <= 0 {
		d.X = 1
	}
	if d.Y <= 0 {
		d.Y = 1
	}
	if d.Z <= 0 {
		d.Z = 1
	}
	return d
}

// Emulator drives kernels on a host machine.
type Emulator struct {
	M *cinterp.Machine
	// MaxThreads bounds the total grid size to keep tests fast;
	// 0 means no bound.
	MaxThreads int64
	// Launches counts emulated kernel launches.
	Launches int
	// ThreadsRun counts executed kernel instances.
	ThreadsRun int64
}

// NewEmulator wires an emulator into the machine's launch handler.
func NewEmulator(m *cinterp.Machine) *Emulator {
	e := &Emulator{M: m}
	m.LaunchHandler = e.handleLaunch
	return e
}

// handleLaunch implements the <<<...>>> semantics: config[0] is the grid,
// config[1] the block; scalar configs mean 1-D geometry (the only form the
// corpus uses, matching typical CUDA tutorial/production code).
func (e *Emulator) handleLaunch(kernel string, config, args []cinterp.Value) error {
	grid := Dim3{X: 1, Y: 1, Z: 1}
	block := Dim3{X: 1, Y: 1, Z: 1}
	if len(config) > 0 {
		grid = Dim3{X: config[0].AsInt()}.normalize()
	}
	if len(config) > 1 {
		block = Dim3{X: config[1].AsInt()}.normalize()
	}
	return e.Launch(kernel, grid, block, args...)
}

// Launch runs a kernel across the full grid.
func (e *Emulator) Launch(kernel string, grid, block Dim3, args ...cinterp.Value) error {
	grid = grid.normalize()
	block = block.normalize()
	total := grid.Count() * block.Count()
	if e.MaxThreads > 0 && total > e.MaxThreads {
		return fmt.Errorf("cuda: launch of %d threads exceeds emulator budget %d", total, e.MaxThreads)
	}
	if _, ok := e.M.Funcs[kernel]; !ok {
		return fmt.Errorf("cuda: undefined kernel %q", kernel)
	}
	e.Launches++

	saved := e.M.CUDAVars
	defer func() { e.M.CUDAVars = saved }()

	for bz := int64(0); bz < grid.Z; bz++ {
		for by := int64(0); by < grid.Y; by++ {
			for bx := int64(0); bx < grid.X; bx++ {
				for tz := int64(0); tz < block.Z; tz++ {
					for ty := int64(0); ty < block.Y; ty++ {
						for tx := int64(0); tx < block.X; tx++ {
							e.M.CUDAVars = map[string][3]int64{
								"gridDim":   {grid.X, grid.Y, grid.Z},
								"blockDim":  {block.X, block.Y, block.Z},
								"blockIdx":  {bx, by, bz},
								"threadIdx": {tx, ty, tz},
							}
							e.M.Reset()
							if _, err := e.M.Call(kernel, args...); err != nil {
								return fmt.Errorf("cuda: kernel %s at block(%d,%d,%d) thread(%d,%d,%d): %w",
									kernel, bx, by, bz, tx, ty, tz, err)
							}
							e.ThreadsRun++
						}
					}
				}
			}
		}
	}
	return nil
}

// Alloc allocates a device buffer (shared host/device under emulation).
func Alloc(n int) cinterp.Value {
	return cinterp.PtrVal(make([]cinterp.Value, n), 0)
}

// FillFloats stores a float slice into a device buffer.
func FillFloats(buf cinterp.Value, data []float64) {
	for i, v := range data {
		if buf.Off+i < len(buf.Blk) {
			buf.Blk[buf.Off+i] = cinterp.FloatVal(v)
		}
	}
}

// ReadFloats copies n floats out of a device buffer.
func ReadFloats(buf cinterp.Value, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n && buf.Off+i < len(buf.Blk); i++ {
		out[i] = buf.Blk[buf.Off+i].AsFloat()
	}
	return out
}
