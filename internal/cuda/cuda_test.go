package cuda

import (
	"strings"
	"testing"

	"repro/internal/ccparse"
	"repro/internal/cinterp"
	"repro/internal/srcfile"
)

func kernelMachine(t *testing.T, src string) (*cinterp.Machine, *Emulator) {
	t.Helper()
	f := &srcfile.File{Path: "k.cu", Lang: srcfile.LangCUDA, Src: src}
	tu, errs := ccparse.Parse(f, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	m := cinterp.NewMachine(tu)
	return m, NewEmulator(m)
}

const saxpySrc = `
__global__ void saxpy(float* x, float* y, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
`

func TestLaunchComputesSaxpy(t *testing.T) {
	m, em := kernelMachine(t, saxpySrc)
	_ = m
	n := 10
	x, y := Alloc(n), Alloc(n)
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 1
	}
	FillFloats(x, xs)
	FillFloats(y, ys)
	// 4 blocks of 3 threads = 12 threads; 2 fail the bounds check.
	err := em.Launch("saxpy", Dim3{X: 4}, Dim3{X: 3},
		x, y, cinterp.FloatVal(2), cinterp.IntVal(int64(n)))
	if err != nil {
		t.Fatal(err)
	}
	got := ReadFloats(y, n)
	for i := range got {
		want := 2*float64(i) + 1
		if got[i] != want {
			t.Errorf("y[%d] = %v, want %v", i, got[i], want)
		}
	}
	if em.ThreadsRun != 12 {
		t.Errorf("threads run = %d, want 12", em.ThreadsRun)
	}
	if em.Launches != 1 {
		t.Errorf("launches = %d", em.Launches)
	}
}

func TestLaunchViaTripleBracketSyntax(t *testing.T) {
	src := saxpySrc + `
int host_run(float* x, float* y, float a, int n) {
    saxpy<<<2, 8>>>(x, y, a, n);
    return 0;
}
`
	m, em := kernelMachine(t, src)
	n := 16
	x, y := Alloc(n), Alloc(n)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1
	}
	FillFloats(x, xs)
	if _, err := m.Call("host_run", x, y, cinterp.FloatVal(3), cinterp.IntVal(int64(n))); err != nil {
		t.Fatal(err)
	}
	got := ReadFloats(y, n)
	for i := range got {
		if got[i] != 3 {
			t.Fatalf("y[%d] = %v, want 3", i, got[i])
		}
	}
	if em.ThreadsRun != 16 {
		t.Errorf("threads = %d, want 16", em.ThreadsRun)
	}
}

func TestUndefinedKernel(t *testing.T) {
	_, em := kernelMachine(t, saxpySrc)
	if err := em.Launch("nope", Dim3{X: 1}, Dim3{X: 1}); err == nil {
		t.Fatal("expected undefined kernel error")
	}
}

func TestThreadBudget(t *testing.T) {
	_, em := kernelMachine(t, saxpySrc)
	em.MaxThreads = 8
	err := em.Launch("saxpy", Dim3{X: 3}, Dim3{X: 3},
		Alloc(9), Alloc(9), cinterp.FloatVal(1), cinterp.IntVal(9))
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("expected budget error, got %v", err)
	}
}

func TestKernelErrorCarriesCoordinates(t *testing.T) {
	src := `
__global__ void bad(float* x, int n) {
    int i = blockIdx.x;
    x[i + 100] = 1.0f;
}
`
	_, em := kernelMachine(t, src)
	err := em.Launch("bad", Dim3{X: 1}, Dim3{X: 1}, Alloc(4), cinterp.IntVal(4))
	if err == nil {
		t.Fatal("expected out-of-bounds error")
	}
	if !strings.Contains(err.Error(), "block(0,0,0)") {
		t.Errorf("error lacks coordinates: %v", err)
	}
}

func TestDim3Normalization(t *testing.T) {
	d := Dim3{X: 0, Y: 0, Z: 0}
	if d.Count() != 1 {
		t.Errorf("zero dim count = %d, want 1", d.Count())
	}
	full := Dim3{X: 2, Y: 3, Z: 4}
	if full.Count() != 24 {
		t.Errorf("count = %d", full.Count())
	}
}

func TestMultiDimGrid(t *testing.T) {
	src := `
int hits = 0;
__global__ void mark(int n) {
    hits = hits + 1;
}
int total() { return hits; }
`
	m, em := kernelMachine(t, src)
	if err := em.Launch("mark", Dim3{X: 2, Y: 2}, Dim3{X: 3, Z: 2}, cinterp.IntVal(0)); err != nil {
		t.Fatal(err)
	}
	v, err := m.Call("total")
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 24 {
		t.Errorf("kernel instances = %d, want 2*2*3*2 = 24", v.AsInt())
	}
}

func TestCUDAVarsRestoredAfterLaunch(t *testing.T) {
	m, em := kernelMachine(t, saxpySrc)
	m.CUDAVars = map[string][3]int64{"threadIdx": {9, 9, 9}}
	if err := em.Launch("saxpy", Dim3{X: 1}, Dim3{X: 1},
		Alloc(1), Alloc(1), cinterp.FloatVal(1), cinterp.IntVal(1)); err != nil {
		t.Fatal(err)
	}
	if m.CUDAVars["threadIdx"] != [3]int64{9, 9, 9} {
		t.Error("CUDAVars not restored after launch")
	}
}

func TestFillReadRoundTrip(t *testing.T) {
	buf := Alloc(4)
	FillFloats(buf, []float64{1.5, 2.5, 3.5, 4.5})
	got := ReadFloats(buf, 4)
	for i, w := range []float64{1.5, 2.5, 3.5, 4.5} {
		if got[i] != w {
			t.Errorf("buf[%d] = %v, want %v", i, got[i], w)
		}
	}
}
