// Package difftest is the differential verification harness: it drives
// randomly generated corpora (internal/corpusgen) and random delta
// sequences through every engine path the repository offers —
//
//  1. the sequential reference engine (rules.RunSequential),
//  2. the fused parallel engine (rules.Run),
//  3. the warm sharded assessor (core.Assessor.ApplyDelta + Findings,
//     riding per-module shard segments and the k-way merge),
//  4. the adserve HTTP service (POST /assess, POST /delta, GET /findings,
//     GET /report),
//  5. the warm flat incremental rule engine (rules.Incremental, the
//     pre-sharding warm path, kept as an independently-cached reference),
//  6. with Recover, the persistent store (internal/store): the warm
//     assessor journals every delta into a data directory, and at every
//     step a sixth state is recovered from disk — snapshot plus
//     read-only journal replay — and must match the others byte-for-
//     byte on findings, the full report, and shard stats. At the end of
//     the run the harness additionally simulates a crash mid-append by
//     truncating a copy of the journal and requires recovery to land
//     exactly on the state at the last complete record,
//  7. with Batch, the batched-delta path: a second warm assessor holds
//     the same mutations back as pending deltas and commits them k at a
//     time through core.Assessor.ApplyDeltaBatch; at every flush
//     boundary (and after a final tail flush) it must byte-match the
//     one-delta-at-a-time warm path,
//
// and asserts, at every step, that all paths produce byte-identical
// finding streams AND that those findings equal the generator's
// injected-violation manifest (the ground-truth oracle). A (seed, steps,
// params) triple replays deterministically, so any failure is a one-line
// reproduction recipe.
//
// cmd/adfuzz is the CLI front end; TestDifferentialSmoke keeps a short
// run in the tier-1 suite.
package difftest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/ccparse"
	"repro/internal/core"
	"repro/internal/corpusgen"
	"repro/internal/rules"
	"repro/internal/service"
	"repro/internal/srcfile"
	"repro/internal/store"
)

// Config parameterizes a differential run.
type Config struct {
	// Seed drives corpus generation and the mutation sequence.
	Seed int64
	// Steps is the number of mutation steps after the initial check.
	// Zero verifies only the initial corpus; negative is treated as 0.
	Steps int
	// Params shapes the generated corpus (zero value → defaults).
	Params corpusgen.Params
	// HTTP includes the adserve service path (an in-process listener).
	HTTP bool
	// Recover includes the persistent-store path: the warm assessor
	// journals every delta into a data directory, every step recovers a
	// fresh state from disk and byte-compares it, compaction triggers
	// naturally (the harness uses a small record threshold), and the
	// run ends with a truncated-tail crash simulation.
	Recover bool
	// Batch, when positive, adds the batched-delta path: a second warm
	// assessor accumulates the same mutation sequence as pending deltas
	// and flushes them through core.ApplyDeltaBatch every Batch steps
	// (and once more at the end of the run). At every flush boundary its
	// canonical findings must be byte-identical to the one-delta-at-a-
	// time warm assessor, pinning MergeDeltas' fold (last-op-wins,
	// remove-then-re-add-as-fresh) to the sequential semantics it claims.
	Batch int
	// RecoverDir is the data directory for Recover; empty means a
	// temporary directory removed after the run.
	RecoverDir string
	// Logf, when set, receives per-step progress lines.
	Logf func(format string, args ...interface{})
}

// Result summarizes a successful run.
type Result struct {
	// Steps is the number of verified steps (initial state + mutations).
	Steps int
	// Files is the final corpus size.
	Files int
	// Findings is the final finding count.
	Findings int
	// Mutations counts applied mutations by kind.
	Mutations map[corpusgen.MutationKind]int
	// Compactions counts mid-run journal compactions (Recover only).
	Compactions int
	// BatchFlushes counts ApplyDeltaBatch commits verified against the
	// one-at-a-time warm path (Batch only).
	BatchFlushes int
	// TornTailChecked reports that the end-of-run crash simulation
	// (truncated journal tail) was exercised (Recover only).
	TornTailChecked bool
}

// Run executes the differential harness, returning an error describing
// the first divergence (with its reproduction coordinates) or nil when
// every step verified.
func Run(cfg Config) (*Result, error) {
	if cfg.Steps < 0 {
		cfg.Steps = 0
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	gen := corpusgen.New(cfg.Params, cfg.Seed)

	// Path 3: a warm sharded assessor fed only deltas after the initial
	// load.
	warm := core.NewAssessor(core.DefaultConfig())
	if err := warm.LoadFileSet(gen.FileSet()); err != nil {
		return nil, fmt.Errorf("seed %d: initial load: %v", cfg.Seed, err)
	}

	// Path 5: the flat incremental rule engine, warm across steps via
	// its own per-file cache (hash-keyed, so it survives the fresh
	// context each verification step builds).
	inc := rules.NewIncremental(rules.DefaultRules())

	// Path 7: the batched assessor. It sees the identical mutation
	// sequence but as fresh Delta values (never sharing *File pointers
	// with the warm assessor — CommitDelta makes files corpus-resident)
	// held back and committed Batch at a time through ApplyDeltaBatch.
	var batched *core.Assessor
	var pending []core.Delta
	if cfg.Batch > 0 {
		batched = core.NewAssessor(core.DefaultConfig())
		if err := batched.LoadFileSet(gen.FileSet()); err != nil {
			return nil, fmt.Errorf("seed %d: batched initial load: %v", cfg.Seed, err)
		}
	}

	// Path 6: the persistent store. The warm assessor's commit hook
	// journals every delta; a small record threshold makes compaction
	// fire mid-run so snapshots taken after deltas are exercised too.
	var cs *store.CorpusStore
	if cfg.Recover {
		root := cfg.RecoverDir
		if root == "" {
			tmp, err := os.MkdirTemp("", "adfuzz-store-")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(tmp)
			root = tmp
		}
		d, err := store.Open(root, store.Options{MaxJournalRecords: 8})
		if err != nil {
			return nil, err
		}
		if cs, err = d.Corpus(corpusName); err != nil {
			return nil, err
		}
		if err := persistWarm(cs, warm); err != nil {
			return nil, fmt.Errorf("seed %d: initial snapshot: %v", cfg.Seed, err)
		}
		warm.SetCommitHook(cs.Append)
		defer cs.Close()
	}

	// Path 4: the HTTP service, fed the same initial corpus and deltas.
	var ts *httptest.Server
	if cfg.HTTP {
		svc := service.New()
		// The initial /assess uploads the whole generated corpus in one
		// body; at the 10k-file scale that exceeds the service's default
		// cap, so the harness's in-process instance gets a generous one.
		svc.MaxBody = 1 << 30
		ts = httptest.NewServer(svc.Handler())
		defer ts.Close()
		files := make(map[string]string, gen.Len())
		for _, p := range gen.Paths() {
			files[p] = gen.Source(p)
		}
		if err := postJSON(ts, "/assess", service.AssessRequest{Corpus: corpusName, Files: files}, nil); err != nil {
			return nil, fmt.Errorf("seed %d: initial /assess: %v", cfg.Seed, err)
		}
	}

	res := &Result{Mutations: make(map[corpusgen.MutationKind]int)}
	nFindings := 0
	var prevSeq, lastSeq []byte
	lastStepJournaled := false
	for step := 0; step <= cfg.Steps; step++ {
		if step > 0 {
			mut := gen.Mutate()
			res.Mutations[mut.Kind]++
			recsBefore := 0
			if cs != nil {
				recsBefore = cs.JournalRecords()
			}
			if err := applyMutation(warm, ts, mut); err != nil {
				return nil, fmt.Errorf("seed %d step %d: apply %s %s: %v",
					cfg.Seed, step, mut.Kind, mut.Path, err)
			}
			if batched != nil {
				pending = append(pending, mutationDelta(mut))
				if len(pending) >= cfg.Batch {
					if _, err := batched.ApplyDeltaBatch(pending); err != nil {
						return nil, fmt.Errorf("seed %d step %d: batched flush (%d deltas): %v",
							cfg.Seed, step, len(pending), err)
					}
					pending = nil
					res.BatchFlushes++
				}
			}
			// A mutation that regenerates identical content is a no-op
			// delta and journals nothing; track whether this step's
			// record is really the journal tail for the crash simulation
			// below.
			lastStepJournaled = cs != nil && cs.JournalRecords() == recsBefore+1
			if cs != nil && cs.ShouldCompact() {
				if err := persistWarm(cs, warm); err != nil {
					return nil, fmt.Errorf("seed %d step %d: compaction: %v", cfg.Seed, step, err)
				}
				res.Compactions++
				lastStepJournaled = false // absorbed into the snapshot
				logf("step %2d: compacted journal into a fresh snapshot", step)
			}
			logf("step %2d: %-6s %s (%d files)", step, mut.Kind, mut.Path, gen.Len())
		}
		n, seq, err := verifyStep(gen, warm, inc, ts, cs)
		if err != nil {
			return nil, fmt.Errorf("seed %d step %d: %v", cfg.Seed, step, err)
		}
		// At a flush boundary the batched assessor has committed exactly
		// the mutations the warm assessor has applied one at a time, so
		// its canonical findings must match byte-for-byte.
		if batched != nil && len(pending) == 0 {
			if d := firstDiff(seq, canonical(batched.Findings())); d != "" {
				return nil, fmt.Errorf("seed %d step %d: batched assessor diverges from one-at-a-time warm path: %s",
					cfg.Seed, step, d)
			}
		}
		nFindings = n
		prevSeq, lastSeq = lastSeq, seq
		res.Steps++
	}

	// Final flush: commit whatever tail the batch cadence left pending
	// and require the end state to match the last verified step.
	if batched != nil && len(pending) > 0 {
		if _, err := batched.ApplyDeltaBatch(pending); err != nil {
			return nil, fmt.Errorf("seed %d: final batched flush (%d deltas): %v", cfg.Seed, len(pending), err)
		}
		res.BatchFlushes++
		if d := firstDiff(lastSeq, canonical(batched.Findings())); d != "" {
			return nil, fmt.Errorf("seed %d: batched assessor diverges after final flush: %s", cfg.Seed, d)
		}
	}

	// Crash simulation: truncate a copy of the journal mid-record and
	// require recovery to land on the state at the last complete record
	// — the previous step, whenever the final step's mutation is itself
	// the journal tail (skipped when the final step journaled nothing:
	// a no-op mutation, or a compaction that absorbed the record).
	if cs != nil && lastStepJournaled && prevSeq != nil {
		if err := verifyTornTail(cs, prevSeq); err != nil {
			return nil, fmt.Errorf("seed %d: torn-tail recovery: %v", cfg.Seed, err)
		}
		res.TornTailChecked = true
	}
	res.Files = gen.Len()
	res.Findings = nFindings
	return res, nil
}

// verifyTornTail copies the live store into a scratch directory,
// truncates the journal mid-record (the exact shape a crash during an
// append leaves behind), and requires recovery to (a) flag the torn
// tail and (b) land byte-identically on the state at the last complete
// record — the canonical findings of the previous step.
func verifyTornTail(cs *store.CorpusStore, wantSeq []byte) error {
	scratch, err := os.MkdirTemp("", "adfuzz-torn-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	d, err := store.Open(scratch, store.Options{})
	if err != nil {
		return err
	}
	copyCS, err := d.Corpus(corpusName)
	if err != nil {
		return err
	}
	if err := cs.CopyTo(copyCS); err != nil {
		return err
	}
	jpath := filepath.Join(scratch, corpusName, "journal")
	raw, err := os.ReadFile(jpath)
	if err != nil {
		return err
	}
	if err := os.WriteFile(jpath, raw[:len(raw)-3], 0o644); err != nil {
		return err
	}
	rec, info, err := copyCS.RecoverReadOnly(core.DefaultConfig())
	if err != nil {
		return err
	}
	if !info.Torn {
		return fmt.Errorf("truncated journal not reported as torn (replayed %d)", info.Replayed)
	}
	if d := firstDiff(wantSeq, canonical(rec.Findings())); d != "" {
		return fmt.Errorf("state diverges from the last complete record: %s", d)
	}
	return nil
}

// persistWarm snapshots the warm assessor's state into the store,
// absorbing the journal.
func persistWarm(cs *store.CorpusStore, warm *core.Assessor) error {
	st, err := warm.ExportState()
	if err != nil {
		return err
	}
	_, err = cs.WriteSnapshot(st)
	return err
}

const corpusName = "adfuzz"

// mutationDelta renders one generator mutation as a standalone Delta
// with its own File value, safe to commit into a second assessor.
func mutationDelta(mut corpusgen.Mutation) core.Delta {
	if mut.Kind == corpusgen.MutRemove {
		return core.Delta{Removed: []string{mut.Path}}
	}
	return core.Delta{Changed: []*srcfile.File{{Path: mut.Path, Src: mut.Src}}}
}

// applyMutation mirrors one generator mutation into the warm assessor and
// (when enabled) the HTTP service.
func applyMutation(warm *core.Assessor, ts *httptest.Server, mut corpusgen.Mutation) error {
	var d core.Delta
	req := service.DeltaRequest{Corpus: corpusName}
	if mut.Kind == corpusgen.MutRemove {
		d.Removed = []string{mut.Path}
		req.Removed = []string{mut.Path}
	} else {
		d.Changed = []*srcfile.File{{Path: mut.Path, Src: mut.Src}}
		req.Changed = map[string]string{mut.Path: mut.Src}
	}
	if _, err := warm.ApplyDelta(d); err != nil {
		return fmt.Errorf("warm ApplyDelta: %v", err)
	}
	if ts != nil {
		if err := postJSON(ts, "/delta", req, nil); err != nil {
			return fmt.Errorf("/delta: %v", err)
		}
	}
	return nil
}

// verifyStep checks all engine paths against each other and against the
// manifest for the generator's current corpus, returning the finding
// count and the canonical finding bytes.
func verifyStep(gen *corpusgen.Generator, warm *core.Assessor, inc *rules.Incremental, ts *httptest.Server, cs *store.CorpusStore) (int, []byte, error) {
	// Paths 1+2: cold parse, then both in-process engines over one context.
	fs := gen.FileSet()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		return 0, nil, fmt.Errorf("generated corpus has parse errors: %v", errs[0])
	}
	ctx := rules.NewContext(units)
	seq := rules.RunSequential(ctx, rules.DefaultRules())
	fused := rules.Run(ctx, rules.DefaultRules())

	seqBytes := canonical(seq)
	if d := firstDiff(seqBytes, canonical(fused)); d != "" {
		return 0, nil, fmt.Errorf("fused engine diverges from sequential reference: %s", d)
	}
	if d := firstDiff(seqBytes, canonical(warm.Findings())); d != "" {
		return 0, nil, fmt.Errorf("warm sharded assessor diverges from sequential reference: %s", d)
	}
	if d := firstDiff(seqBytes, canonical(inc.Run(ctx))); d != "" {
		return 0, nil, fmt.Errorf("warm flat incremental engine diverges from sequential reference: %s", d)
	}

	// The warm assessor's report backs both the store and HTTP
	// comparisons; build and marshal it once per step.
	var warmReport []byte
	if cs != nil || ts != nil {
		var err error
		if warmReport, err = json.Marshal(service.BuildReport(corpusName, warm)); err != nil {
			return 0, nil, err
		}
	}

	// Path 6: a state recovered from the persistent store — snapshot
	// plus read-only journal replay — must match on findings, the full
	// report, and shard stats.
	if cs != nil {
		rec, _, err := cs.RecoverReadOnly(warm.Config())
		if err != nil {
			return 0, nil, fmt.Errorf("store recovery: %v", err)
		}
		if d := firstDiff(seqBytes, canonical(rec.Findings())); d != "" {
			return 0, nil, fmt.Errorf("recovered store state diverges from sequential reference: %s", d)
		}
		recReport, err := json.Marshal(service.BuildReport(corpusName, rec))
		if err != nil {
			return 0, nil, err
		}
		if d := firstDiff(warmReport, recReport); d != "" {
			return 0, nil, fmt.Errorf("recovered store report diverges from warm assessor: %s", d)
		}
		if w, r := fmt.Sprintf("%v", warm.ShardStats()), fmt.Sprintf("%v", rec.ShardStats()); w != r {
			return 0, nil, fmt.Errorf("recovered shard stats diverge:\n  warm %s\n  rec  %s", w, r)
		}
	}

	// Path 4: the service's finding rows and full report.
	if ts != nil {
		var fr service.FindingsResponse
		if err := getJSON(ts, "/findings?corpus="+corpusName, &fr); err != nil {
			return 0, nil, fmt.Errorf("/findings: %v", err)
		}
		httpBytes, err := json.Marshal(fr.Findings)
		if err != nil {
			return 0, nil, err
		}
		if d := firstDiff(seqBytes, httpBytes); d != "" {
			return 0, nil, fmt.Errorf("HTTP /findings diverges from sequential reference: %s", d)
		}
		httpReport, err := getRaw(ts, "/report?corpus="+corpusName)
		if err != nil {
			return 0, nil, fmt.Errorf("/report: %v", err)
		}
		if d := firstDiff(warmReport, bytes.TrimSpace(httpReport)); d != "" {
			return 0, nil, fmt.Errorf("HTTP /report diverges from warm assessor report: %s", d)
		}
	}

	// Oracle: the findings must equal the injected-violation manifest.
	if err := CheckOracle(seq, gen.Manifest()); err != nil {
		return 0, nil, err
	}
	return len(seq), seqBytes, nil
}

// canonical renders findings as canonical JSON via the service's wire
// projection, so in-process engines and the HTTP path compare in the
// same space (FindingRows always returns a non-nil slice, so an empty
// stream is "[]" on both sides).
func canonical(fs []rules.Finding) []byte {
	b, err := json.Marshal(service.FindingRows(fs))
	if err != nil {
		panic(err) // plain data marshal cannot fail
	}
	return b
}

// firstDiff locates the first byte divergence and returns a short
// context window ("" when equal).
func firstDiff(a, b []byte) string {
	if bytes.Equal(a, b) {
		return ""
	}
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	window := func(s []byte) string {
		lo, hi := i-40, i+80
		if lo < 0 {
			lo = 0
		}
		if hi > len(s) {
			hi = len(s)
		}
		return string(s[lo:hi])
	}
	return fmt.Sprintf("byte %d (lengths %d vs %d):\n  a: …%s…\n  b: …%s…",
		i, len(a), len(b), window(a), window(b))
}

// CheckOracle verifies that engine findings equal the manifest as a
// multiset of (rule, file, line). The error lists the first few
// unexpected and missing findings.
func CheckOracle(fs []rules.Finding, man *corpusgen.Manifest) error {
	want := make(map[corpusgen.Expect]int)
	for _, e := range man.All() {
		want[e]++
	}
	var extra []string
	for i := range fs {
		e := corpusgen.Expect{Rule: fs[i].RuleID, Path: fs[i].File, Line: fs[i].Line}
		if want[e] > 0 {
			want[e]--
			continue
		}
		extra = append(extra, fs[i].String())
	}
	var missing []string
	for e, n := range want {
		for i := 0; i < n; i++ {
			missing = append(missing, e.String())
		}
	}
	if len(extra) == 0 && len(missing) == 0 {
		return nil
	}
	sort.Strings(extra)
	sort.Strings(missing)
	return fmt.Errorf("oracle mismatch: %d findings not in manifest %v; %d manifest entries unreported %v",
		len(extra), cap8(extra), len(missing), cap8(missing))
}

// cap8 bounds an error listing.
func cap8(s []string) []string {
	if len(s) > 8 {
		return append(s[:8:8], "…")
	}
	return s
}

// ---------------------------------------------------------------------------
// Minimal HTTP client helpers against the in-process service.

func postJSON(ts *httptest.Server, path string, body, out interface{}) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	return decodeResp(resp, out)
}

func getJSON(ts *httptest.Server, path string, out interface{}) error {
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		return err
	}
	return decodeResp(resp, out)
}

func getRaw(ts *httptest.Server, path string) ([]byte, error) {
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	return raw, nil
}

func decodeResp(resp *http.Response, out interface{}) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}
