// Package difftest is the differential verification harness: it drives
// randomly generated corpora (internal/corpusgen) and random delta
// sequences through every engine path the repository offers —
//
//  1. the sequential reference engine (rules.RunSequential),
//  2. the fused parallel engine (rules.Run),
//  3. the warm sharded assessor (core.Assessor.ApplyDelta + Findings,
//     riding per-module shard segments and the k-way merge),
//  4. the adserve HTTP service (POST /assess, POST /delta, GET /findings,
//     GET /report),
//  5. the warm flat incremental rule engine (rules.Incremental, the
//     pre-sharding warm path, kept as an independently-cached reference),
//
// and asserts, at every step, that all five produce byte-identical
// finding streams AND that those findings equal the generator's
// injected-violation manifest (the ground-truth oracle). A (seed, steps,
// params) triple replays deterministically, so any failure is a one-line
// reproduction recipe.
//
// cmd/adfuzz is the CLI front end; TestDifferentialSmoke keeps a short
// run in the tier-1 suite.
package difftest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"

	"repro/internal/ccparse"
	"repro/internal/core"
	"repro/internal/corpusgen"
	"repro/internal/rules"
	"repro/internal/service"
	"repro/internal/srcfile"
)

// Config parameterizes a differential run.
type Config struct {
	// Seed drives corpus generation and the mutation sequence.
	Seed int64
	// Steps is the number of mutation steps after the initial check.
	// Zero verifies only the initial corpus; negative is treated as 0.
	Steps int
	// Params shapes the generated corpus (zero value → defaults).
	Params corpusgen.Params
	// HTTP includes the adserve service path (an in-process listener).
	HTTP bool
	// Logf, when set, receives per-step progress lines.
	Logf func(format string, args ...interface{})
}

// Result summarizes a successful run.
type Result struct {
	// Steps is the number of verified steps (initial state + mutations).
	Steps int
	// Files is the final corpus size.
	Files int
	// Findings is the final finding count.
	Findings int
	// Mutations counts applied mutations by kind.
	Mutations map[corpusgen.MutationKind]int
}

// Run executes the differential harness, returning an error describing
// the first divergence (with its reproduction coordinates) or nil when
// every step verified.
func Run(cfg Config) (*Result, error) {
	if cfg.Steps < 0 {
		cfg.Steps = 0
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	gen := corpusgen.New(cfg.Params, cfg.Seed)

	// Path 3: a warm sharded assessor fed only deltas after the initial
	// load.
	warm := core.NewAssessor(core.DefaultConfig())
	if err := warm.LoadFileSet(gen.FileSet()); err != nil {
		return nil, fmt.Errorf("seed %d: initial load: %v", cfg.Seed, err)
	}

	// Path 5: the flat incremental rule engine, warm across steps via
	// its own per-file cache (hash-keyed, so it survives the fresh
	// context each verification step builds).
	inc := rules.NewIncremental(rules.DefaultRules())

	// Path 4: the HTTP service, fed the same initial corpus and deltas.
	var ts *httptest.Server
	if cfg.HTTP {
		svc := service.New()
		// The initial /assess uploads the whole generated corpus in one
		// body; at the 10k-file scale that exceeds the service's default
		// cap, so the harness's in-process instance gets a generous one.
		svc.MaxBody = 1 << 30
		ts = httptest.NewServer(svc.Handler())
		defer ts.Close()
		files := make(map[string]string, gen.Len())
		for _, p := range gen.Paths() {
			files[p] = gen.Source(p)
		}
		if err := postJSON(ts, "/assess", service.AssessRequest{Corpus: corpusName, Files: files}, nil); err != nil {
			return nil, fmt.Errorf("seed %d: initial /assess: %v", cfg.Seed, err)
		}
	}

	res := &Result{Mutations: make(map[corpusgen.MutationKind]int)}
	nFindings := 0
	for step := 0; step <= cfg.Steps; step++ {
		if step > 0 {
			mut := gen.Mutate()
			res.Mutations[mut.Kind]++
			if err := applyMutation(warm, ts, mut); err != nil {
				return nil, fmt.Errorf("seed %d step %d: apply %s %s: %v",
					cfg.Seed, step, mut.Kind, mut.Path, err)
			}
			logf("step %2d: %-6s %s (%d files)", step, mut.Kind, mut.Path, gen.Len())
		}
		n, err := verifyStep(gen, warm, inc, ts)
		if err != nil {
			return nil, fmt.Errorf("seed %d step %d: %v", cfg.Seed, step, err)
		}
		nFindings = n
		res.Steps++
	}
	res.Files = gen.Len()
	res.Findings = nFindings
	return res, nil
}

const corpusName = "adfuzz"

// applyMutation mirrors one generator mutation into the warm assessor and
// (when enabled) the HTTP service.
func applyMutation(warm *core.Assessor, ts *httptest.Server, mut corpusgen.Mutation) error {
	var d core.Delta
	req := service.DeltaRequest{Corpus: corpusName}
	if mut.Kind == corpusgen.MutRemove {
		d.Removed = []string{mut.Path}
		req.Removed = []string{mut.Path}
	} else {
		d.Changed = []*srcfile.File{{Path: mut.Path, Src: mut.Src}}
		req.Changed = map[string]string{mut.Path: mut.Src}
	}
	if _, err := warm.ApplyDelta(d); err != nil {
		return fmt.Errorf("warm ApplyDelta: %v", err)
	}
	if ts != nil {
		if err := postJSON(ts, "/delta", req, nil); err != nil {
			return fmt.Errorf("/delta: %v", err)
		}
	}
	return nil
}

// verifyStep checks all engine paths against each other and against the
// manifest for the generator's current corpus, returning the finding
// count.
func verifyStep(gen *corpusgen.Generator, warm *core.Assessor, inc *rules.Incremental, ts *httptest.Server) (int, error) {
	// Paths 1+2: cold parse, then both in-process engines over one context.
	fs := gen.FileSet()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		return 0, fmt.Errorf("generated corpus has parse errors: %v", errs[0])
	}
	ctx := rules.NewContext(units)
	seq := rules.RunSequential(ctx, rules.DefaultRules())
	fused := rules.Run(ctx, rules.DefaultRules())

	seqBytes := canonical(seq)
	if d := firstDiff(seqBytes, canonical(fused)); d != "" {
		return 0, fmt.Errorf("fused engine diverges from sequential reference: %s", d)
	}
	if d := firstDiff(seqBytes, canonical(warm.Findings())); d != "" {
		return 0, fmt.Errorf("warm sharded assessor diverges from sequential reference: %s", d)
	}
	if d := firstDiff(seqBytes, canonical(inc.Run(ctx))); d != "" {
		return 0, fmt.Errorf("warm flat incremental engine diverges from sequential reference: %s", d)
	}

	// Path 4: the service's finding rows and full report.
	if ts != nil {
		var fr service.FindingsResponse
		if err := getJSON(ts, "/findings?corpus="+corpusName, &fr); err != nil {
			return 0, fmt.Errorf("/findings: %v", err)
		}
		httpBytes, err := json.Marshal(fr.Findings)
		if err != nil {
			return 0, err
		}
		if d := firstDiff(seqBytes, httpBytes); d != "" {
			return 0, fmt.Errorf("HTTP /findings diverges from sequential reference: %s", d)
		}
		localReport, err := json.Marshal(service.BuildReport(corpusName, warm))
		if err != nil {
			return 0, err
		}
		httpReport, err := getRaw(ts, "/report?corpus="+corpusName)
		if err != nil {
			return 0, fmt.Errorf("/report: %v", err)
		}
		if d := firstDiff(localReport, bytes.TrimSpace(httpReport)); d != "" {
			return 0, fmt.Errorf("HTTP /report diverges from warm assessor report: %s", d)
		}
	}

	// Oracle: the findings must equal the injected-violation manifest.
	if err := CheckOracle(seq, gen.Manifest()); err != nil {
		return 0, err
	}
	return len(seq), nil
}

// canonical renders findings as canonical JSON via the service's wire
// projection, so in-process engines and the HTTP path compare in the
// same space (FindingRows always returns a non-nil slice, so an empty
// stream is "[]" on both sides).
func canonical(fs []rules.Finding) []byte {
	b, err := json.Marshal(service.FindingRows(fs))
	if err != nil {
		panic(err) // plain data marshal cannot fail
	}
	return b
}

// firstDiff locates the first byte divergence and returns a short
// context window ("" when equal).
func firstDiff(a, b []byte) string {
	if bytes.Equal(a, b) {
		return ""
	}
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	window := func(s []byte) string {
		lo, hi := i-40, i+80
		if lo < 0 {
			lo = 0
		}
		if hi > len(s) {
			hi = len(s)
		}
		return string(s[lo:hi])
	}
	return fmt.Sprintf("byte %d (lengths %d vs %d):\n  a: …%s…\n  b: …%s…",
		i, len(a), len(b), window(a), window(b))
}

// CheckOracle verifies that engine findings equal the manifest as a
// multiset of (rule, file, line). The error lists the first few
// unexpected and missing findings.
func CheckOracle(fs []rules.Finding, man *corpusgen.Manifest) error {
	want := make(map[corpusgen.Expect]int)
	for _, e := range man.All() {
		want[e]++
	}
	var extra []string
	for i := range fs {
		e := corpusgen.Expect{Rule: fs[i].RuleID, Path: fs[i].File, Line: fs[i].Line}
		if want[e] > 0 {
			want[e]--
			continue
		}
		extra = append(extra, fs[i].String())
	}
	var missing []string
	for e, n := range want {
		for i := 0; i < n; i++ {
			missing = append(missing, e.String())
		}
	}
	if len(extra) == 0 && len(missing) == 0 {
		return nil
	}
	sort.Strings(extra)
	sort.Strings(missing)
	return fmt.Errorf("oracle mismatch: %d findings not in manifest %v; %d manifest entries unreported %v",
		len(extra), cap8(extra), len(missing), cap8(missing))
}

// cap8 bounds an error listing.
func cap8(s []string) []string {
	if len(s) > 8 {
		return append(s[:8:8], "…")
	}
	return s
}

// ---------------------------------------------------------------------------
// Minimal HTTP client helpers against the in-process service.

func postJSON(ts *httptest.Server, path string, body, out interface{}) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	return decodeResp(resp, out)
}

func getJSON(ts *httptest.Server, path string, out interface{}) error {
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		return err
	}
	return decodeResp(resp, out)
}

func getRaw(ts *httptest.Server, path string) ([]byte, error) {
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	return raw, nil
}

func decodeResp(resp *http.Response, out interface{}) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}
