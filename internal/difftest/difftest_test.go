package difftest

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/corpusgen"
)

// TestDifferentialSmoke runs a short differential sequence through all
// six engine paths, including the HTTP service, the warm sharded
// assessor, and the persistent store with its crash simulation. This is
// the standing trust layer: any engine or persistence refactor that
// breaks byte-identity or the injected-violation oracle fails here (CI
// runs it under -race, covering the snapshot/recovery paths too).
func TestDifferentialSmoke(t *testing.T) {
	if prev := runtime.GOMAXPROCS(0); prev < 4 {
		runtime.GOMAXPROCS(4)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
	res, err := Run(Config{
		Seed:  26262,
		Steps: 8,
		Params: corpusgen.Params{Modules: 2, FilesPerModule: 3,
			FuncsPerFile: 4, ViolationsPerFile: 2, CUDAFiles: 1},
		HTTP:       true,
		Recover:    true,
		RecoverDir: t.TempDir(),
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 9 {
		t.Errorf("verified steps = %d, want 9", res.Steps)
	}
	if res.Files < 1 || res.Findings == 0 {
		t.Errorf("suspicious final state: %+v", res)
	}
	if res.Compactions == 0 && !res.TornTailChecked {
		t.Errorf("store leg exercised neither compaction nor the torn-tail case: %+v", res)
	}
}

// TestDifferentialNoHTTP covers the four in-process paths across more
// seeds (cheaper without the service round-trips).
func TestDifferentialNoHTTP(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		res, err := Run(Config{
			Seed:  seed,
			Steps: 6,
			Params: corpusgen.Params{Modules: 2, FilesPerModule: 2,
				FuncsPerFile: 3, ViolationsPerFile: 3, CUDAFiles: 0},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Steps != 7 {
			t.Errorf("seed %d: steps = %d", seed, res.Steps)
		}
	}
}

// TestDifferentialSkewed runs the harness over a deliberately
// shard-imbalanced corpus (one dominant module, a long tail), the
// workload shape the sharded warm path has to keep byte-identical.
func TestDifferentialSkewed(t *testing.T) {
	res, err := Run(Config{
		Seed:  26262,
		Steps: 6,
		Params: corpusgen.Params{Modules: 4, FilesPerModule: 3,
			FuncsPerFile: 3, ViolationsPerFile: 2, CUDAFiles: 1,
			ModuleSkew: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 7 {
		t.Errorf("steps = %d, want 7", res.Steps)
	}
}

// TestCheckOracleDetectsDrift ensures the oracle is not vacuous: a
// tampered manifest must be rejected.
func TestCheckOracleDetectsDrift(t *testing.T) {
	gen := corpusgen.New(corpusgen.Params{Modules: 1, FilesPerModule: 2,
		FuncsPerFile: 2, ViolationsPerFile: 2, CUDAFiles: 0}, 5)
	res, err := Run(Config{Seed: 5, Steps: 0, Params: corpusgen.Params{
		Modules: 1, FilesPerModule: 2, FuncsPerFile: 2,
		ViolationsPerFile: 2, CUDAFiles: 0}})
	if err != nil || res.Findings == 0 {
		t.Fatalf("baseline run failed: %v (%+v)", err, res)
	}
	man := gen.Manifest()
	for p, es := range man.PerFile {
		if len(es) > 0 {
			man.PerFile[p] = append(es, corpusgen.Expect{Rule: "goto", Path: p, Line: 1})
			break
		}
	}
	if err := CheckOracle(nil, man); err == nil {
		t.Error("empty findings passed a non-empty manifest")
	}
	if !strings.Contains(CheckOracle(nil, man).Error(), "unreported") {
		t.Error("oracle error lacks missing-findings detail")
	}
}
