// Package gpusim is the analytic GPU/CPU performance model behind the
// paper's library-comparison experiments (Figures 7 and 8): a roofline
// device model plus per-library efficiency curves for the closed-source
// vendor libraries (cuBLAS, cuDNN, TensorRT), their open-source
// alternatives (CUTLASS, ISAAC), and the CPU BLAS baselines (ATLAS,
// OpenBLAS).
//
// The paper's claims are about *relative* performance — open-source GPU
// libraries are competitive with closed ones while CPU BLAS is two orders
// of magnitude slower — so the model is calibrated for those ratios, not
// for absolute wall-clock fidelity. Efficiency curves are deterministic
// functions of the workload shape, with ISAAC's input-aware autotuning
// modeled explicitly (it searches a small tuning space per shape and keeps
// the best candidate, which is how it sometimes beats cuDNN).
package gpusim

import (
	"fmt"
	"math"
)

// Device is a roofline compute device.
type Device struct {
	Name string
	// PeakGFLOPS is the sustained FP32 throughput ceiling.
	PeakGFLOPS float64
	// MemBWGBs is the memory bandwidth ceiling in GB/s.
	MemBWGBs float64
	// LaunchOverheadUs is the fixed per-kernel cost in microseconds;
	// zero for CPU libraries.
	LaunchOverheadUs float64
}

// TitanV returns the GPU used for calibration (Volta-class, the kind of
// NVIDIA part the paper's experiments ran on).
func TitanV() Device {
	return Device{Name: "TITAN V", PeakGFLOPS: 13800, MemBWGBs: 652, LaunchOverheadUs: 5}
}

// XeonCPU returns the multicore CPU device for the ATLAS/OpenBLAS
// baselines: ~two orders of magnitude below the GPU on compute-bound
// kernels, matching the paper's Figure 7 observation.
func XeonCPU() Device {
	return Device{Name: "Xeon (CPU)", PeakGFLOPS: 120, MemBWGBs: 60}
}

// GEMMShape describes C[MxN] = A[MxK] * B[KxN].
type GEMMShape struct {
	M, N, K int
}

// FLOPs returns the multiply-add work of the GEMM.
func (s GEMMShape) FLOPs() float64 { return 2 * float64(s.M) * float64(s.N) * float64(s.K) }

// Bytes returns the minimum FP32 traffic of the GEMM.
func (s GEMMShape) Bytes() float64 {
	return 4 * (float64(s.M)*float64(s.K) + float64(s.K)*float64(s.N) + float64(s.M)*float64(s.N))
}

// String formats like "M=512 N=512 K=512".
func (s GEMMShape) String() string { return fmt.Sprintf("M=%d N=%d K=%d", s.M, s.N, s.K) }

// ConvShape describes a 2-D convolution in NCHW.
type ConvShape struct {
	N, C, H, W int // input batch, channels, spatial
	K, R       int // output channels, square kernel size
	Stride     int
	Pad        int
}

// OutH returns the output height.
func (s ConvShape) OutH() int { return (s.H+2*s.Pad-s.R)/s.Stride + 1 }

// OutW returns the output width.
func (s ConvShape) OutW() int { return (s.W+2*s.Pad-s.R)/s.Stride + 1 }

// FLOPs returns the direct-convolution work.
func (s ConvShape) FLOPs() float64 {
	return 2 * float64(s.N) * float64(s.K) * float64(s.OutH()) * float64(s.OutW()) *
		float64(s.C) * float64(s.R) * float64(s.R)
}

// Bytes returns the FP32 traffic (input + weights + output).
func (s ConvShape) Bytes() float64 {
	in := float64(s.N) * float64(s.C) * float64(s.H) * float64(s.W)
	wt := float64(s.K) * float64(s.C) * float64(s.R) * float64(s.R)
	out := float64(s.N) * float64(s.K) * float64(s.OutH()) * float64(s.OutW())
	return 4 * (in + wt + out)
}

// String formats the conv shape compactly.
func (s ConvShape) String() string {
	return fmt.Sprintf("N=%d C=%d %dx%d K=%d R=%d s=%d", s.N, s.C, s.H, s.W, s.K, s.R, s.Stride)
}

// Library is a performance model of one BLAS/DNN library.
type Library struct {
	Name   string
	Device Device
	// Open marks open-source libraries (the certification-relevant
	// distinction of Observation 12).
	Open bool
	// gemmEff/convEff return the fraction of device peak achieved.
	gemmEff func(GEMMShape) float64
	convEff func(ConvShape) float64
}

// GEMMTime returns the modeled execution time in milliseconds.
func (l *Library) GEMMTime(s GEMMShape) float64 {
	eff := l.gemmEff(s)
	return rooflineMs(l.Device, s.FLOPs(), s.Bytes(), eff)
}

// ConvTime returns the modeled execution time in milliseconds.
func (l *Library) ConvTime(s ConvShape) float64 {
	eff := l.convEff(s)
	return rooflineMs(l.Device, s.FLOPs(), s.Bytes(), eff)
}

func rooflineMs(d Device, flops, bytes, eff float64) float64 {
	if eff <= 0 {
		eff = 0.01
	}
	compute := flops / (d.PeakGFLOPS * 1e9 * eff)
	memory := bytes / (d.MemBWGBs * 1e9)
	t := compute
	if memory > t {
		t = memory
	}
	return t*1e3 + d.LaunchOverheadUs/1e3
}

// shapeHash gives a deterministic per-shape perturbation in [0, 1).
func shapeHash(vals ...int) float64 {
	h := uint64(1469598103934665603)
	for _, v := range vals {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return float64(h%10000) / 10000
}

// sizeFactor models how efficiency grows with work per output: tiny
// problems are launch/occupancy bound, large square ones approach peak.
func sizeFactor(flops float64) float64 {
	// 0.25 at 1 MFLOP rising to ~0.95 at 1 TFLOP, logarithmically.
	lg := math.Log10(flops + 1)
	f := (lg - 6) / 6 // 0 at 1e6, 1 at 1e12
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return 0.25 + 0.70*f
}

// aspectPenalty reduces efficiency for skinny GEMMs (tile quantization).
func aspectPenalty(s GEMMShape) float64 {
	min := s.M
	if s.N < min {
		min = s.N
	}
	if s.K < min {
		min = s.K
	}
	switch {
	case min >= 256:
		return 1.0
	case min >= 64:
		return 0.85
	case min >= 16:
		return 0.6
	default:
		return 0.4
	}
}

// CuBLAS is the closed-source vendor GEMM library (the paper's baseline).
func CuBLAS(d Device) *Library {
	return &Library{
		Name: "cuBLAS", Device: d, Open: false,
		gemmEff: func(s GEMMShape) float64 {
			return sizeFactor(s.FLOPs()) * aspectPenalty(s) * (0.97 + 0.03*shapeHash(s.M, s.N, s.K))
		},
		convEff: func(s ConvShape) float64 {
			// Convolution via im2col+GEMM loses some efficiency.
			return 0.8 * sizeFactor(s.FLOPs()) * (0.95 + 0.05*shapeHash(s.C, s.K, s.R))
		},
	}
}

// CUTLASS is NVIDIA's open-source CUDA C++ GEMM template library; the
// paper (Figure 8a) finds it comparable to cuBLAS for scalar GEMM, a few
// percent behind on some shapes, occasionally ahead.
func CUTLASS(d Device) *Library {
	return &Library{
		Name: "CUTLASS", Device: d, Open: true,
		gemmEff: func(s GEMMShape) float64 {
			base := sizeFactor(s.FLOPs()) * aspectPenalty(s)
			// 88%-104% of cuBLAS depending on tile fit.
			rel := 0.88 + 0.16*shapeHash(s.M, s.N, s.K, 7)
			return base * rel
		},
		convEff: func(s ConvShape) float64 {
			return 0.75 * sizeFactor(s.FLOPs()) * (0.9 + 0.1*shapeHash(s.C, s.K, 7))
		},
	}
}

// CuDNN is the closed-source vendor DNN primitive library.
func CuDNN(d Device) *Library {
	return &Library{
		Name: "cuDNN", Device: d, Open: false,
		gemmEff: func(s GEMMShape) float64 {
			return 0.9 * sizeFactor(s.FLOPs()) * aspectPenalty(s)
		},
		convEff: func(s ConvShape) float64 {
			// Algorithm selection (implicit GEMM / Winograd) keeps conv
			// efficiency high; 3x3 stride-1 kernels benefit most.
			alg := 1.0
			if s.R == 3 && s.Stride == 1 {
				alg = 1.25 // Winograd-class speedup
			}
			return alg * 0.85 * sizeFactor(s.FLOPs()) * (0.95 + 0.05*shapeHash(s.C, s.K, s.H))
		},
	}
}

// ISAACCandidates is the tuning-space size of the ISAAC model.
const ISAACCandidates = 8

// ISAAC is the open-source input-aware auto-tuner (Tillet & Cox, SC'17).
// Its model searches a small candidate space per shape and keeps the best,
// which is why it tracks cuDNN closely and sometimes beats it (Figure 8b).
func ISAAC(d Device) *Library {
	tuned := func(base float64, seed ...int) float64 {
		best := 0.0
		for c := 0; c < ISAACCandidates; c++ {
			cand := base * (0.70 + 0.45*shapeHash(append(seed, c)...))
			if cand > best {
				best = cand
			}
		}
		return best
	}
	return &Library{
		Name: "ISAAC", Device: d, Open: true,
		gemmEff: func(s GEMMShape) float64 {
			base := sizeFactor(s.FLOPs()) * aspectPenalty(s)
			return tuned(base, s.M, s.N, s.K)
		},
		convEff: func(s ConvShape) float64 {
			alg := 1.0
			if s.R == 3 && s.Stride == 1 {
				alg = 1.15
			}
			base := alg * 0.85 * sizeFactor(s.FLOPs())
			return tuned(base, s.C, s.K, s.H, s.R)
		},
	}
}

// ISAACUntuned disables the autotuning search (ablation): first candidate
// only, exposing how much of ISAAC's competitiveness the tuner provides.
func ISAACUntuned(d Device) *Library {
	return &Library{
		Name: "ISAAC (untuned)", Device: d, Open: true,
		gemmEff: func(s GEMMShape) float64 {
			base := sizeFactor(s.FLOPs()) * aspectPenalty(s)
			return base * (0.70 + 0.45*shapeHash(s.M, s.N, s.K, 0))
		},
		convEff: func(s ConvShape) float64 {
			alg := 1.0
			if s.R == 3 && s.Stride == 1 {
				alg = 1.15
			}
			base := alg * 0.85 * sizeFactor(s.FLOPs())
			return base * (0.70 + 0.45*shapeHash(s.C, s.K, s.H, s.R, 0))
		},
	}
}

// cpuLib builds a CPU BLAS model; eff is the fraction of (already ~100x
// lower) CPU peak the library sustains.
func cpuLib(name string, d Device, eff float64) *Library {
	return &Library{
		Name: name, Device: d, Open: true,
		gemmEff: func(s GEMMShape) float64 {
			return eff * (0.8 + 0.2*sizeFactor(s.FLOPs()))
		},
		convEff: func(s ConvShape) float64 {
			return 0.8 * eff * (0.8 + 0.2*sizeFactor(s.FLOPs()))
		},
	}
}

// ATLAS is the autotuned CPU BLAS baseline.
func ATLAS(d Device) *Library { return cpuLib("ATLAS", d, 0.55) }

// OpenBLAS is the hand-optimized CPU BLAS baseline.
func OpenBLAS(d Device) *Library { return cpuLib("OpenBLAS", d, 0.70) }
