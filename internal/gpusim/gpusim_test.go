package gpusim

import (
	"testing"
	"testing/quick"
)

var squareShapes = []GEMMShape{
	{M: 256, N: 256, K: 256}, {M: 512, N: 512, K: 512},
	{M: 1024, N: 1024, K: 1024}, {M: 2048, N: 2048, K: 2048},
}

var convShapes = []ConvShape{
	{N: 1, C: 64, H: 56, W: 56, K: 64, R: 3, Stride: 1, Pad: 1},
	{N: 1, C: 128, H: 28, W: 28, K: 128, R: 3, Stride: 1, Pad: 1},
	{N: 1, C: 256, H: 14, W: 14, K: 256, R: 3, Stride: 1, Pad: 1},
	{N: 1, C: 3, H: 416, W: 416, K: 16, R: 3, Stride: 1, Pad: 1},
	{N: 1, C: 512, H: 13, W: 13, K: 1024, R: 3, Stride: 1, Pad: 1},
}

func TestShapeArithmetic(t *testing.T) {
	s := GEMMShape{M: 2, N: 3, K: 4}
	if s.FLOPs() != 48 {
		t.Errorf("flops = %v", s.FLOPs())
	}
	if s.Bytes() != 4*(8+12+6) {
		t.Errorf("bytes = %v", s.Bytes())
	}
	c := ConvShape{N: 1, C: 1, H: 4, W: 4, K: 1, R: 2, Stride: 2, Pad: 0}
	if c.OutH() != 2 || c.OutW() != 2 {
		t.Errorf("out = %dx%d", c.OutH(), c.OutW())
	}
	if c.FLOPs() != 2*1*1*2*2*1*2*2 {
		t.Errorf("conv flops = %v", c.FLOPs())
	}
}

func TestTimesArePositiveAndFinite(t *testing.T) {
	gpu := TitanV()
	cpu := XeonCPU()
	libs := []*Library{
		CuBLAS(gpu), CUTLASS(gpu), CuDNN(gpu), ISAAC(gpu), ISAACUntuned(gpu),
		ATLAS(cpu), OpenBLAS(cpu),
	}
	for _, lib := range libs {
		for _, s := range squareShapes {
			ms := lib.GEMMTime(s)
			if ms <= 0 || ms > 1e7 {
				t.Errorf("%s gemm %v = %v ms", lib.Name, s, ms)
			}
		}
		for _, s := range convShapes {
			ms := lib.ConvTime(s)
			if ms <= 0 || ms > 1e7 {
				t.Errorf("%s conv %v = %v ms", lib.Name, s, ms)
			}
		}
	}
}

// TestCUTLASSCompetitiveWithCuBLAS pins the Figure 8a claim: CUTLASS is
// within a modest factor of cuBLAS on scalar GEMM (paper: "comparable").
func TestCUTLASSCompetitiveWithCuBLAS(t *testing.T) {
	gpu := TitanV()
	cb, ct := CuBLAS(gpu), CUTLASS(gpu)
	for _, s := range squareShapes {
		rel := cb.GEMMTime(s) / ct.GEMMTime(s) // >1 means CUTLASS faster
		if rel < 0.75 || rel > 1.15 {
			t.Errorf("CUTLASS/cuBLAS relative perf at %v = %.2f, want 0.75-1.15", s, rel)
		}
	}
}

// TestISAACCompetitiveWithCuDNN pins Figure 8b: ISAAC tracks cuDNN on
// convolutions, sometimes winning.
func TestISAACCompetitiveWithCuDNN(t *testing.T) {
	gpu := TitanV()
	cd, is := CuDNN(gpu), ISAAC(gpu)
	var wins int
	for _, s := range convShapes {
		rel := cd.ConvTime(s) / is.ConvTime(s)
		if rel < 0.6 || rel > 1.5 {
			t.Errorf("ISAAC/cuDNN relative perf at %v = %.2f, want 0.6-1.5", s, rel)
		}
		if rel >= 1 {
			wins++
		}
	}
	if wins == 0 {
		t.Error("ISAAC should win on at least one workload (paper: 'very competitive')")
	}
}

// TestCPUTwoOrdersSlower pins Figure 7's CPU observation: ATLAS/OpenBLAS
// run the same kernels roughly two orders of magnitude slower.
func TestCPUTwoOrdersSlower(t *testing.T) {
	gpu, cpu := TitanV(), XeonCPU()
	cb := CuBLAS(gpu)
	for _, cpuLib := range []*Library{ATLAS(cpu), OpenBLAS(cpu)} {
		for _, s := range squareShapes[1:] { // skip the smallest
			ratio := cpuLib.GEMMTime(s) / cb.GEMMTime(s)
			if ratio < 50 || ratio > 500 {
				t.Errorf("%s/cuBLAS slowdown at %v = %.0fx, want 50-500x", cpuLib.Name, s, ratio)
			}
		}
	}
}

// TestISAACTuningHelps pins the ablation: the autotuner must never lose to
// the untuned first candidate, and must win somewhere.
func TestISAACTuningHelps(t *testing.T) {
	gpu := TitanV()
	tuned, untuned := ISAAC(gpu), ISAACUntuned(gpu)
	improved := false
	for _, s := range convShapes {
		tt, ut := tuned.ConvTime(s), untuned.ConvTime(s)
		if tt > ut*1.0001 {
			t.Errorf("tuned slower than untuned at %v: %.4f vs %.4f ms", s, tt, ut)
		}
		if tt < ut*0.99 {
			improved = true
		}
	}
	if !improved {
		t.Error("autotuning never improved any shape")
	}
}

func TestDeterminism(t *testing.T) {
	gpu := TitanV()
	a, b := ISAAC(gpu), ISAAC(gpu)
	for _, s := range convShapes {
		if a.ConvTime(s) != b.ConvTime(s) {
			t.Errorf("nondeterministic time at %v", s)
		}
	}
}

func TestSkinnyGEMMLessEfficient(t *testing.T) {
	gpu := TitanV()
	cb := CuBLAS(gpu)
	square := GEMMShape{M: 512, N: 512, K: 512}
	skinny := GEMMShape{M: 512 * 512, N: 4, K: 128}
	// Same order of FLOPs, skinny should achieve lower efficiency ⇒
	// efficiency-normalized time-per-flop higher.
	sqPerFlop := cb.GEMMTime(square) / square.FLOPs()
	skPerFlop := cb.GEMMTime(skinny) / skinny.FLOPs()
	if skPerFlop <= sqPerFlop {
		t.Errorf("skinny GEMM unexpectedly as efficient: %.3e vs %.3e ms/flop",
			skPerFlop, sqPerFlop)
	}
}

// Property: modeled time is monotone in problem size for fixed library
// (bigger square GEMMs never get faster in absolute terms).
func TestMonotoneInSizeProperty(t *testing.T) {
	gpu := TitanV()
	cb := CuBLAS(gpu)
	f := func(seed uint8) bool {
		n := 64 + int(seed)%512
		small := GEMMShape{M: n, N: n, K: n}
		big := GEMMShape{M: 2 * n, N: 2 * n, K: 2 * n}
		return cb.GEMMTime(big) > cb.GEMMTime(small)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOpenFlagClassification(t *testing.T) {
	gpu := TitanV()
	if CuBLAS(gpu).Open || CuDNN(gpu).Open {
		t.Error("vendor libraries must be closed-source")
	}
	if !CUTLASS(gpu).Open || !ISAAC(gpu).Open || !ATLAS(XeonCPU()).Open {
		t.Error("alternatives must be open-source")
	}
}
