// Package iso26262 models the slice of ISO 26262 Part 6 ("product
// development at the software level") that the paper assesses: the
// recommendation tables for modeling/coding guidelines (Part-6 Table 1,
// the paper's Table 1), architectural design (Part-6 Table 3, the paper's
// Table 2), and unit design & implementation (Part-6 Table 8, the paper's
// Table 3), together with ASILs, recommendation strength, and compliance
// verdicts.
package iso26262

import "fmt"

// ASIL is an Automotive Safety Integrity Level. QM (Quality Management)
// covers components that cannot cause safety risks upon failure.
type ASIL int

// ASIL levels in increasing criticality.
const (
	QM ASIL = iota
	ASILA
	ASILB
	ASILC
	ASILD
)

// String returns the conventional name.
func (a ASIL) String() string {
	switch a {
	case QM:
		return "QM"
	case ASILA:
		return "ASIL-A"
	case ASILB:
		return "ASIL-B"
	case ASILC:
		return "ASIL-C"
	case ASILD:
		return "ASIL-D"
	default:
		return fmt.Sprintf("ASIL(%d)", int(a))
	}
}

// ParseASIL converts a name ("D", "ASIL-D", "QM") to an ASIL.
func ParseASIL(s string) (ASIL, error) {
	switch s {
	case "QM", "qm":
		return QM, nil
	case "A", "ASIL-A", "a":
		return ASILA, nil
	case "B", "ASIL-B", "b":
		return ASILB, nil
	case "C", "ASIL-C", "c":
		return ASILC, nil
	case "D", "ASIL-D", "d":
		return ASILD, nil
	default:
		return QM, fmt.Errorf("iso26262: unknown ASIL %q", s)
	}
}

// Recommendation is the standard's notation for how strongly a technique
// is required at a given ASIL.
type Recommendation int

// Recommendation strengths.
const (
	// NotRequired is the standard's "o".
	NotRequired Recommendation = iota
	// Recommended is "+".
	Recommended
	// HighlyRecommended is "++".
	HighlyRecommended
)

// String renders the standard's notation.
func (r Recommendation) String() string {
	switch r {
	case NotRequired:
		return "o"
	case Recommended:
		return "+"
	case HighlyRecommended:
		return "++"
	default:
		return "?"
	}
}

// TableID identifies one of the Part-6 tables the paper covers.
type TableID int

// The assessed tables. Values carry both the ISO numbering and the paper's.
const (
	// TableCoding is ISO 26262-6 Table 1 (paper Table 1): modeling and
	// coding guidelines.
	TableCoding TableID = iota
	// TableArch is ISO 26262-6 Table 3 (paper Table 2): architectural
	// design principles.
	TableArch
	// TableUnit is ISO 26262-6 Table 8 (paper Table 3): design principles
	// for software unit design and implementation.
	TableUnit
)

// String names the table with both numberings.
func (t TableID) String() string {
	switch t {
	case TableCoding:
		return "ISO26262-6 Table 1 (modeling/coding guidelines)"
	case TableArch:
		return "ISO26262-6 Table 3 (architectural design)"
	case TableUnit:
		return "ISO26262-6 Table 8 (unit design & implementation)"
	default:
		return fmt.Sprintf("TableID(%d)", int(t))
	}
}

// Topic is one row of a recommendation table.
type Topic struct {
	Table TableID
	// Item is the 1-based row number within the table.
	Item int
	// Name is the row's text as printed in the paper.
	Name string
	// Rec holds the recommendation per ASIL A-D (index 0 = ASIL-A).
	Rec [4]Recommendation
}

// RecommendationFor returns the strength at the given ASIL (QM → o).
func (tp *Topic) RecommendationFor(a ASIL) Recommendation {
	if a == QM {
		return NotRequired
	}
	return tp.Rec[int(a)-1]
}

// Ref identifies a table row; rules attach Refs to findings.
type Ref struct {
	Table TableID
	Item  int
}

// String formats like "T8.2".
func (r Ref) String() string {
	n := map[TableID]string{TableCoding: "T1", TableArch: "T3", TableUnit: "T8"}[r.Table]
	return fmt.Sprintf("%s.%d", n, r.Item)
}

// hh/rr/oo shorthands keep the table literals readable.
const (
	oo = NotRequired
	rr = Recommended
	hh = HighlyRecommended
)

// CodingGuidelines reproduces the paper's Table 1 (ISO 26262-6 Table 1).
var CodingGuidelines = []Topic{
	{TableCoding, 1, "Enforcement of low complexity", [4]Recommendation{hh, hh, hh, hh}},
	{TableCoding, 2, "Use language subsets", [4]Recommendation{hh, hh, hh, hh}},
	{TableCoding, 3, "Enforcement of strong typing", [4]Recommendation{hh, hh, hh, hh}},
	{TableCoding, 4, "Use defensive implementation techniques", [4]Recommendation{oo, rr, hh, hh}},
	{TableCoding, 5, "Use established design principles", [4]Recommendation{rr, rr, rr, hh}},
	{TableCoding, 6, "Use unambiguous graphical representation", [4]Recommendation{rr, hh, hh, hh}},
	{TableCoding, 7, "Use style guides", [4]Recommendation{rr, hh, hh, hh}},
	{TableCoding, 8, "Use naming conventions", [4]Recommendation{hh, hh, hh, hh}},
}

// ArchitectureDesign reproduces the paper's Table 2 (ISO 26262-6 Table 3).
var ArchitectureDesign = []Topic{
	{TableArch, 1, "Hierarchical structure of SW components", [4]Recommendation{hh, hh, hh, hh}},
	{TableArch, 2, "Restricted size of software components", [4]Recommendation{hh, hh, hh, hh}},
	{TableArch, 3, "Restricted size of interfaces", [4]Recommendation{rr, rr, rr, rr}},
	{TableArch, 4, "High cohesion in each software component", [4]Recommendation{rr, hh, hh, hh}},
	{TableArch, 5, "Restricted coupling between SW components", [4]Recommendation{rr, hh, hh, hh}},
	{TableArch, 6, "Appropriate scheduling properties", [4]Recommendation{hh, hh, hh, hh}},
	{TableArch, 7, "Restricted use of interrupts", [4]Recommendation{rr, rr, rr, hh}},
}

// UnitDesign reproduces the paper's Table 3 (ISO 26262-6 Table 8).
var UnitDesign = []Topic{
	{TableUnit, 1, "One entry and one exit point in functions", [4]Recommendation{hh, hh, hh, hh}},
	{TableUnit, 2, "No dynamic objects or variables, or else online test during their creation", [4]Recommendation{rr, hh, hh, hh}},
	{TableUnit, 3, "Initialization of variables", [4]Recommendation{hh, hh, hh, hh}},
	{TableUnit, 4, "No multiple use of variable names", [4]Recommendation{rr, hh, hh, hh}},
	{TableUnit, 5, "Avoid global variables or justify usage", [4]Recommendation{rr, rr, hh, hh}},
	{TableUnit, 6, "Limited use of pointers", [4]Recommendation{oo, rr, rr, hh}},
	{TableUnit, 7, "No implicit type conversions", [4]Recommendation{rr, hh, hh, hh}},
	{TableUnit, 8, "No hidden data flow or control flow", [4]Recommendation{rr, hh, hh, hh}},
	{TableUnit, 9, "No unconditional jumps", [4]Recommendation{hh, hh, hh, hh}},
	{TableUnit, 10, "No recursions", [4]Recommendation{rr, rr, hh, hh}},
}

// TableTopics returns the rows of a table.
func TableTopics(t TableID) []Topic {
	switch t {
	case TableCoding:
		return CodingGuidelines
	case TableArch:
		return ArchitectureDesign
	case TableUnit:
		return UnitDesign
	default:
		return nil
	}
}

// Lookup returns the topic for a ref, or nil.
func Lookup(r Ref) *Topic {
	for i, tp := range TableTopics(r.Table) {
		if tp.Item == r.Item {
			return &TableTopics(r.Table)[i]
		}
	}
	return nil
}

// Verdict is the compliance outcome for one topic.
type Verdict int

// Verdict values.
const (
	// NotAssessed means no checker produced evidence for the topic.
	NotAssessed Verdict = iota
	// NotApplicable mirrors the paper's handling of "unambiguous
	// graphical representation" for C/C++ code.
	NotApplicable
	// Compliant: no violations against the topic.
	Compliant
	// PartiallyCompliant: violations exist but are bounded/justifiable.
	PartiallyCompliant
	// NonCompliant: systematic violations.
	NonCompliant
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case NotAssessed:
		return "not-assessed"
	case NotApplicable:
		return "n/a"
	case Compliant:
		return "compliant"
	case PartiallyCompliant:
		return "partial"
	case NonCompliant:
		return "non-compliant"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// TopicAssessment is the outcome for one table row.
type TopicAssessment struct {
	Topic      Topic
	Verdict    Verdict
	Violations int
	// Evidence is a short free-text justification (one line).
	Evidence string
	// Effort estimates the remediation cost, mirroring the paper's
	// "limited effort" vs "requires research innovations" split.
	Effort Effort
}

// Effort classifies remediation cost.
type Effort int

// Effort levels.
const (
	EffortNone Effort = iota
	EffortLimited
	EffortModerate
	EffortResearch
)

// String names the effort level.
func (e Effort) String() string {
	switch e {
	case EffortNone:
		return "none"
	case EffortLimited:
		return "limited"
	case EffortModerate:
		return "moderate"
	default:
		return "research"
	}
}

// Gap reports whether the topic blocks certification at the target ASIL:
// a highly recommended topic that is not compliant.
func (ta *TopicAssessment) Gap(target ASIL) bool {
	rec := ta.Topic.RecommendationFor(target)
	if rec == NotRequired {
		return false
	}
	switch ta.Verdict {
	case NonCompliant:
		return true
	case PartiallyCompliant:
		return rec == HighlyRecommended
	default:
		return false
	}
}
