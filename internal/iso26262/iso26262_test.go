package iso26262

import "testing"

func TestTableShapes(t *testing.T) {
	if len(CodingGuidelines) != 8 {
		t.Errorf("Table 1 rows = %d, want 8", len(CodingGuidelines))
	}
	if len(ArchitectureDesign) != 7 {
		t.Errorf("Table 3 rows = %d, want 7", len(ArchitectureDesign))
	}
	if len(UnitDesign) != 10 {
		t.Errorf("Table 8 rows = %d, want 10", len(UnitDesign))
	}
}

func TestItemsSequential(t *testing.T) {
	for _, tbl := range []TableID{TableCoding, TableArch, TableUnit} {
		for i, tp := range TableTopics(tbl) {
			if tp.Item != i+1 {
				t.Errorf("%v row %d has item %d", tbl, i, tp.Item)
			}
			if tp.Table != tbl {
				t.Errorf("%v row %d has table %v", tbl, i, tp.Table)
			}
		}
	}
}

// TestPaperTable1Matrix pins the exact recommendation matrix printed in
// the paper's Table 1.
func TestPaperTable1Matrix(t *testing.T) {
	want := [8][4]Recommendation{
		{hh, hh, hh, hh}, // low complexity
		{hh, hh, hh, hh}, // language subsets
		{hh, hh, hh, hh}, // strong typing
		{oo, rr, hh, hh}, // defensive implementation
		{rr, rr, rr, hh}, // established design principles
		{rr, hh, hh, hh}, // graphical representation
		{rr, hh, hh, hh}, // style guides
		{hh, hh, hh, hh}, // naming conventions
	}
	for i, tp := range CodingGuidelines {
		if tp.Rec != want[i] {
			t.Errorf("Table 1 item %d rec = %v, want %v", tp.Item, tp.Rec, want[i])
		}
	}
}

// TestPaperTable3Matrix pins the paper's Table 3 (ISO26262-6 Table 8).
func TestPaperTable3Matrix(t *testing.T) {
	want := [10][4]Recommendation{
		{hh, hh, hh, hh}, // one entry one exit
		{rr, hh, hh, hh}, // no dynamic objects
		{hh, hh, hh, hh}, // initialization
		{rr, hh, hh, hh}, // no multiple use of names
		{rr, rr, hh, hh}, // avoid globals
		{oo, rr, rr, hh}, // limited pointers
		{rr, hh, hh, hh}, // no implicit conversions
		{rr, hh, hh, hh}, // no hidden flow
		{hh, hh, hh, hh}, // no unconditional jumps
		{rr, rr, hh, hh}, // no recursion
	}
	for i, tp := range UnitDesign {
		if tp.Rec != want[i] {
			t.Errorf("Table 8 item %d rec = %v, want %v", tp.Item, tp.Rec, want[i])
		}
	}
}

func TestAllHighlyRecommendedAtASILD(t *testing.T) {
	// The paper notes all Table 1 elements are ++ at ASIL-D.
	for _, tp := range CodingGuidelines {
		if tp.RecommendationFor(ASILD) != HighlyRecommended {
			t.Errorf("Table 1 item %d not ++ at ASIL-D", tp.Item)
		}
	}
}

func TestRecommendationForQM(t *testing.T) {
	if CodingGuidelines[0].RecommendationFor(QM) != NotRequired {
		t.Error("QM must not require anything")
	}
}

func TestParseASIL(t *testing.T) {
	for s, want := range map[string]ASIL{"QM": QM, "A": ASILA, "ASIL-D": ASILD, "d": ASILD} {
		got, err := ParseASIL(s)
		if err != nil || got != want {
			t.Errorf("ParseASIL(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseASIL("E"); err == nil {
		t.Error("ParseASIL(E) should fail")
	}
}

func TestRefString(t *testing.T) {
	r := Ref{Table: TableUnit, Item: 2}
	if r.String() != "T8.2" {
		t.Errorf("ref = %q", r.String())
	}
}

func TestLookup(t *testing.T) {
	tp := Lookup(Ref{Table: TableArch, Item: 4})
	if tp == nil || tp.Name != "High cohesion in each software component" {
		t.Errorf("lookup = %+v", tp)
	}
	if Lookup(Ref{Table: TableArch, Item: 99}) != nil {
		t.Error("bogus lookup should be nil")
	}
}

func TestGap(t *testing.T) {
	tp := UnitDesign[0] // single exit, ++ at D
	ta := TopicAssessment{Topic: tp, Verdict: NonCompliant}
	if !ta.Gap(ASILD) {
		t.Error("non-compliant ++ topic must gap at ASIL-D")
	}
	ta.Verdict = Compliant
	if ta.Gap(ASILD) {
		t.Error("compliant topic must not gap")
	}
	// Partial compliance gaps only when highly recommended.
	ptr := UnitDesign[5] // limited pointers: o at A
	pa := TopicAssessment{Topic: ptr, Verdict: PartiallyCompliant}
	if pa.Gap(ASILA) {
		t.Error("o-rated topic cannot gap at ASIL-A")
	}
	if !pa.Gap(ASILD) {
		t.Error("++-rated partial topic must gap at ASIL-D")
	}
}

func TestStringers(t *testing.T) {
	if ASILD.String() != "ASIL-D" || QM.String() != "QM" {
		t.Error("ASIL strings")
	}
	if HighlyRecommended.String() != "++" || Recommended.String() != "+" || NotRequired.String() != "o" {
		t.Error("recommendation strings")
	}
	for _, v := range []Verdict{NotAssessed, NotApplicable, Compliant, PartiallyCompliant, NonCompliant} {
		if v.String() == "" {
			t.Error("empty verdict string")
		}
	}
	for _, e := range []Effort{EffortNone, EffortLimited, EffortModerate, EffortResearch} {
		if e.String() == "" {
			t.Error("empty effort string")
		}
	}
}
