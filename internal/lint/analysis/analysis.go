// Package analysis is the repo-local analogue of
// golang.org/x/tools/go/analysis: the tiny vocabulary shared by every
// adlint analyzer. The container this repo builds in has no module
// proxy, so the x/tools framework cannot be vendored; this package
// keeps the same shape (Analyzer, Pass, Diagnostic) so the analyzers
// would port to the upstream API mechanically if it ever becomes
// available.
//
// An Analyzer inspects one type-checked package at a time through a
// Pass and reports Diagnostics. Analyzers must be stateless across
// passes: the driver runs them over many packages in one process, and
// the analysistest harness runs them over synthetic golden packages.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one adlint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -run filters, and
	// //adlint:ignore suppressions. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by adlint -list.
	Doc string
	// Run inspects a single package and reports diagnostics through
	// pass.Report. The return error aborts the whole adlint run and is
	// reserved for internal failures, not findings.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver applies
	// //adlint:ignore suppression after this call, so analyzers report
	// unconditionally.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
