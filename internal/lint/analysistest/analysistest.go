// Package analysistest runs one adlint analyzer over a golden package
// and compares its findings against `// want` expectations embedded in
// the sources, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	m[k] = v // want `regexp matching the diagnostic`
//
// Multiple backquoted regexps on one comment expect multiple findings
// on that line. Every finding must be matched by an expectation and
// every expectation by a finding; mismatches fail the test with the
// full delta. Because the driver applies //adlint:ignore before the
// comparison, golden packages also pin the suppression behavior: a
// seeded violation carrying an ignore directive simply has no want
// comment.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// wantRe pulls backquoted regexps off a // want comment.
var wantRe = regexp.MustCompile("`([^`]*)`")

// expectation is one // want entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the package rooted at dir (an absolute path or a path
// relative to the current test's working directory) and checks a's
// findings against the package's // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("resolving %s: %v", dir, err)
	}
	pkgs, err := load.Load(abs, ".")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					ms := wantRe.FindAllStringSubmatch(c.Text[idx:], -1)
					if len(ms) == 0 {
						t.Errorf("%s: // want comment without backquoted regexp", pos)
						continue
					}
					for _, m := range ms {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Errorf("%s: bad want regexp %q: %v", pos, m[1], err)
							continue
						}
						wants = append(wants, &expectation{
							file: pos.Filename, line: pos.Line, re: re, raw: m[1],
						})
					}
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want `%s`", relName(w.file), w.line, w.raw)
		}
	}
}

func relName(path string) string {
	if wd, err := filepath.Abs("."); err == nil {
		if r, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
	}
	return path
}
