package analyzers

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// AliasMut flags writes through zero-copy aliases. Several hot-path
// accessors return views of internal state rather than copies —
// artifact.Shard.Paths/Funcs, srcfile.FileSet.Files/ModuleFiles,
// store.Snapshot.RuleIDs, rules.Sharded.ExportCache — with a doc-
// comment contract that callers must not mutate the result. (The other
// zero-copy surfaces, cclex token texts and snapshot block substrings,
// are strings and therefore immutable by construction; slices are
// where the contract needs a checker.) A caller that sorts such a
// slice in place, writes an element, appends into its spare capacity,
// or mutates a shared element pointer corrupts warm state that the
// incremental engine trusts to be stable.
//
// The declaring package itself is exempt — maintaining internal state
// through internal aliases is its job.
var AliasMut = &analysis.Analyzer{
	Name: "aliasmut",
	Doc: "flags in-place mutation (element writes, sorts, appends, copy-into) of slices returned by " +
		"zero-copy accessors whose contract is read-only",
	Run: runAliasMut,
}

// aliasAccessors registers the read-only zero-copy accessors as
// "<recv-pkg-base>.<recv-type>.<method>".
var aliasAccessors = map[string]bool{
	"artifact.Shard.Paths":        true,
	"artifact.Shard.Funcs":        true,
	"artifact.Index.ShardNames":   true,
	"artifact.Index.UnitFuncs":    true,
	"srcfile.FileSet.Files":       true,
	"srcfile.FileSet.ModuleFiles": true,
	"store.Snapshot.RuleIDs":      true,
	"rules.Sharded.ExportCache":   true,
}

func runAliasMut(pass *analysis.Pass) error {
	analyzedBase := pkgBase(pass.Pkg.Path())
	for _, f := range pass.Files {
		funcBodies(f, func(body *ast.BlockStmt) {
			m := &aliasScan{pass: pass, self: analyzedBase,
				tainted: map[types.Object]string{}, elem: map[types.Object]string{}}
			m.scan(body)
		})
	}
	return nil
}

type aliasScan struct {
	pass *analysis.Pass
	self string
	// tainted maps a variable to the accessor whose internal slice it
	// aliases; elem maps variables aliasing one ELEMENT of such a
	// slice (shared pointers).
	tainted map[types.Object]string
	elem    map[types.Object]string
}

// scan walks the body in source order; taint propagation is a single
// forward pass, which covers the straight-line aliasing this check is
// after.
func (m *aliasScan) scan(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			m.assign(v)
		case *ast.RangeStmt:
			if src := m.sourceOf(v.X); src != "" {
				if v.Value != nil {
					if obj := identObj(m.pass.TypesInfo, v.Value); obj != nil && pointerish(obj.Type()) {
						m.elem[obj] = src
					}
				}
			}
		case *ast.CallExpr:
			m.call(v)
		}
		return true
	})
}

// sourceOf reports the accessor name when e aliases a registered
// accessor's internal state: a direct accessor call, a tainted
// variable, or a subslice of either.
func (m *aliasScan) sourceOf(e ast.Expr) string {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		// v[a:b] still aliases v's backing array. (A full-slice-copy
		// idiom like append([]T(nil), v...) has v on the RHS, not here.)
		return m.sourceOf(sl.X)
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if name := m.accessor(call); name != "" {
			return name
		}
		return ""
	}
	if obj := identObj(m.pass.TypesInfo, e); obj != nil {
		return m.tainted[obj]
	}
	return ""
}

// accessor resolves a call to a registered read-only accessor.
func (m *aliasScan) accessor(call *ast.CallExpr) string {
	obj := calleeObj(m.pass.TypesInfo, call)
	if obj == nil {
		return ""
	}
	pkg, recv, name, ok := methodInfo(obj)
	if !ok || pkg == m.self {
		return ""
	}
	key := pkg + "." + recv + "." + name
	if aliasAccessors[key] {
		return key
	}
	return ""
}

func (m *aliasScan) assign(st *ast.AssignStmt) {
	// Taint propagation: x := accessor(), y := x, e := x[i].
	if len(st.Lhs) >= 1 && len(st.Rhs) == 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			if name := m.accessor(call); name != "" {
				// Multi-result accessors (ExportCache) taint every
				// non-blank result.
				for _, l := range st.Lhs {
					if obj := identObj(m.pass.TypesInfo, l); obj != nil {
						m.tainted[obj] = name
					}
				}
			}
		}
	}
	if len(st.Lhs) == len(st.Rhs) {
		for i := range st.Lhs {
			lobj := identObj(m.pass.TypesInfo, st.Lhs[i])
			if lobj == nil {
				continue
			}
			r := ast.Unparen(st.Rhs[i])
			if src := m.sourceOf(r); src != "" {
				m.tainted[lobj] = src
			}
			if ix, ok := r.(*ast.IndexExpr); ok {
				if src := m.sourceOf(ix.X); src != "" && pointerish(lobj.Type()) {
					m.elem[lobj] = src
				}
			}
		}
	}

	// Violations on the left-hand side.
	for _, lhs := range st.Lhs {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			if src := m.sourceOf(l.X); src != "" {
				m.pass.Reportf(st.Pos(),
					"writing an element of the slice returned by %s, which aliases internal state; copy it before mutating", src)
			}
		case *ast.SelectorExpr:
			if obj := identObj(m.pass.TypesInfo, l.X); obj != nil {
				if src := m.elem[obj]; src != "" {
					m.pass.Reportf(st.Pos(),
						"writing a field of an element shared with %s; the element is live internal state — mutate a copy", src)
				}
			}
		}
	}
}

func (m *aliasScan) call(call *ast.CallExpr) {
	obj := calleeObj(m.pass.TypesInfo, call)
	if obj == nil || len(call.Args) == 0 {
		return
	}
	// sort.X(v) / slices.SortX(v) / sort.Sort(ByX(v)) reorder in place.
	if isSortCall(m.pass.TypesInfo, call) {
		arg := ast.Unparen(call.Args[0])
		src := m.sourceOf(arg)
		if src == "" {
			if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
				src = m.sourceOf(conv.Args[0])
			}
		}
		if src != "" {
			m.pass.Reportf(call.Pos(),
				"sorting the slice returned by %s in place; it aliases internal state whose order is load-bearing — sort a copy", src)
		}
		return
	}
	if b, ok := obj.(*types.Builtin); ok {
		switch b.Name() {
		case "append":
			if src := m.sourceOf(call.Args[0]); src != "" {
				m.pass.Reportf(call.Pos(),
					"append to the slice returned by %s may write into its spare capacity, mutating internal state; clone it first (append([]T(nil), s...))", src)
			}
		case "copy":
			if src := m.sourceOf(call.Args[0]); src != "" {
				m.pass.Reportf(call.Pos(),
					"copy into the slice returned by %s overwrites internal state; copy out of it instead", src)
			}
		}
	}
}

// pointerish reports whether t is a pointer-like element type whose
// mutation would be visible through the shared slice.
func pointerish(t types.Type) bool {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Interface:
		return true
	}
	return false
}
