package analyzers_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/analyzers"
)

// Each golden package seeds positive cases (// want comments), negative
// cases (no comment), and a suppressed violation (//adlint:ignore with a
// reason, no want) — so these tests pin the analyzer logic AND the
// driver's suppression filtering in one pass.

func TestSyncErr(t *testing.T) {
	analysistest.Run(t, "testdata/src/syncerr/store", analyzers.SyncErr)
}

func TestSyncErrPersistFileScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/syncerr/persistfile", analyzers.SyncErr)
}

func TestDetRange(t *testing.T) {
	analysistest.Run(t, "testdata/src/detrange/rules", analyzers.DetRange)
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src/lockorder/service", analyzers.LockOrder)
}

func TestArenaEscape(t *testing.T) {
	analysistest.Run(t, "testdata/src/arenaescape/rules", analyzers.ArenaEscape)
}

func TestAliasMut(t *testing.T) {
	analysistest.Run(t, "testdata/src/aliasmut/consumer", analyzers.AliasMut)
}

// The declaring package is exempt: its internal mutations through its
// own aliases must produce zero findings (the golden has no wants).
func TestAliasMutDeclaringPackageExempt(t *testing.T) {
	analysistest.Run(t, "testdata/src/aliasmut/artifact", analyzers.AliasMut)
}

func TestByName(t *testing.T) {
	sel, unknown := analyzers.ByName("syncerr,detrange")
	if len(unknown) != 0 {
		t.Fatalf("unexpected unknown analyzers: %v", unknown)
	}
	var got []string
	for _, a := range sel {
		got = append(got, a.Name)
	}
	if len(got) != 2 {
		t.Fatalf("ByName returned wrong set: %v", got)
	}
	_, unknown = analyzers.ByName("syncerr,nosuch")
	if len(unknown) != 1 || unknown[0] != "nosuch" {
		t.Fatalf("unknown names not reported: %v", unknown)
	}
}
