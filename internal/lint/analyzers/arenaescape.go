package analyzers

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// ArenaEscape enforces the DESIGN.md "Arena lifetimes" contract: ccast
// AST nodes are slab-allocated, an arena owns every node carved from
// it, and keeping any node alive keeps its whole chunk alive. Unit
// tables (artifact.Unit) share the unit's lifetime and may hold nodes;
// everything that outlives a unit — rule caches keyed by content hash,
// metric rows, snapshot/persisted state, the corpus-level interner,
// the serving layer — must hold facts, never nodes, or a replaced
// file's whole arena chunk stays pinned forever.
//
// Two checks:
//
//  1. declaration: a registered long-lived type may not declare a field
//     whose type mentions a ccast node pointer, the ccast.Node
//     interface, or an Arena/Slab;
//  2. flow: no statement may store a ccast-node-typed value into a
//     field, map, or composite literal of a registered long-lived type
//     (this is what catches interface{}-typed escape hatches).
var ArenaEscape = &analysis.Analyzer{
	Name: "arenaescape",
	Doc: "flags ccast arena-allocated nodes stored into long-lived state " +
		"(rule caches, metric rows, store/persisted state, interner, service) in violation of the arena-lifetime contract",
	Run: runArenaEscape,
}

// longLived registers the containers that outlive translation units.
// A nil set registers the whole package.
var longLived = map[string]map[string]bool{
	"store":   nil,
	"service": nil,
	"cclex":   {"Interner": true},
	"rules":   {"Incremental": true, "Sharded": true, "Finding": true, "Stats": true},
	"metrics": {"Cache": true, "ArchCache": true, "FileMetrics": true, "ModuleMetrics": true, "ArchMetrics": true},
	"core":    {"PersistedState": true},
	"artifact": {
		// Facts are the persisted, AST-free projection of a unit; a
		// node smuggled into them defeats the whole snapshot design.
		"UnitFacts": true, "FuncFacts": true,
	},
}

// isLongLived reports whether the named type is registered.
func isLongLived(n *types.Named) bool {
	if n.Obj().Pkg() == nil {
		return false
	}
	set, ok := longLived[pkgBase(n.Obj().Pkg().Path())]
	if !ok {
		return false
	}
	return set == nil || set[n.Obj().Name()]
}

// mentionsArenaValue reports whether t can carry a reference into an
// arena: a pointer to any ccast named type, the ccast.Node (or any
// ccast interface) type, an Arena or Slab by value or pointer, or a
// composite (slice/array/map/chan/anonymous struct) containing one.
// Named non-ccast types stop the recursion — their own declarations
// are checked where they are declared.
func mentionsArenaValue(t types.Type) bool {
	return mentionsArena(t, 0)
}

func mentionsArena(t types.Type, depth int) bool {
	if depth > 8 {
		return false
	}
	t = types.Unalias(t)
	switch v := t.(type) {
	case *types.Pointer:
		if n, ok := types.Unalias(v.Elem()).(*types.Named); ok {
			return fromCCast(n)
		}
		return mentionsArena(v.Elem(), depth+1)
	case *types.Named:
		if fromCCast(v) {
			// By value: interfaces (Node, Expr, Stmt) hold node
			// pointers; Arena/Slab pin chunks. Plain value structs
			// (spans, small records) are copies and do not pin.
			if _, isIface := v.Underlying().(*types.Interface); isIface {
				return true
			}
			name := v.Obj().Name()
			return name == "Arena" || name == "Slab"
		}
		return false
	case *types.Slice:
		return mentionsArena(v.Elem(), depth+1)
	case *types.Array:
		return mentionsArena(v.Elem(), depth+1)
	case *types.Map:
		return mentionsArena(v.Key(), depth+1) || mentionsArena(v.Elem(), depth+1)
	case *types.Chan:
		return mentionsArena(v.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < v.NumFields(); i++ {
			if mentionsArena(v.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	}
	return false
}

func fromCCast(n *types.Named) bool {
	return n.Obj().Pkg() != nil && pkgBase(n.Obj().Pkg().Path()) == "ccast"
}

func runArenaEscape(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.TypeSpec:
				checkLongLivedDecl(pass, v)
			case *ast.AssignStmt:
				checkArenaAssign(pass, v)
			case *ast.CompositeLit:
				checkArenaComposite(pass, v)
			}
			return true
		})
	}
	return nil
}

// checkLongLivedDecl flags arena-capable fields declared on registered
// long-lived struct types.
func checkLongLivedDecl(pass *analysis.Pass, spec *ast.TypeSpec) {
	obj := pass.TypesInfo.Defs[spec.Name]
	if obj == nil {
		return
	}
	named, ok := types.Unalias(obj.Type()).(*types.Named)
	if !ok || !isLongLived(named) {
		return
	}
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range st.Fields.List {
		ft := pass.TypesInfo.Types[field.Type].Type
		if ft != nil && mentionsArenaValue(ft) {
			pass.Reportf(field.Pos(),
				"long-lived type %s declares a field that can hold ccast arena nodes; keeping any node alive pins its whole arena chunk — store facts instead (see DESIGN.md \"Arena lifetimes\")",
				named.Obj().Name())
		}
	}
}

// checkArenaAssign flags `x.F = node`, `x.M[k] = node` where x is
// long-lived and node's static type mentions the arena.
func checkArenaAssign(pass *analysis.Pass, st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		var rhs ast.Expr
		if len(st.Rhs) == len(st.Lhs) {
			rhs = st.Rhs[i]
		} else {
			rhs = st.Rhs[0]
		}
		rt := pass.TypesInfo.Types[rhs].Type
		if rt == nil || !mentionsArenaValue(rt) {
			continue
		}
		if owner := longLivedOwner(pass, lhs); owner != "" {
			pass.Reportf(st.Pos(),
				"storing a ccast arena value into long-lived %s; the arena chunk outlives the unit — store facts instead (see DESIGN.md \"Arena lifetimes\")",
				owner)
		}
	}
}

// longLivedOwner reports the registered type owning the assignment
// target: x.F (field of long-lived), x.M[k] (map/slice of a long-lived
// holder's field), or "" when the target is not long-lived state.
func longLivedOwner(pass *analysis.Pass, lhs ast.Expr) string {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		sel := pass.TypesInfo.Selections[l]
		if sel == nil || sel.Kind() != types.FieldVal {
			return ""
		}
		if recv, ok := namedOf(sel.Recv()); ok && isLongLived(recv) {
			return recv.Obj().Name() + "." + l.Sel.Name
		}
	case *ast.IndexExpr:
		// x.M[k] = node: the indexed container must itself live on a
		// long-lived type.
		return longLivedOwner(pass, l.X)
	}
	return ""
}

// checkArenaComposite flags LongLived{F: node} literals.
func checkArenaComposite(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.Types[lit].Type
	if t == nil {
		return
	}
	named, ok := namedOf(t)
	if !ok || !isLongLived(named) {
		return
	}
	for _, el := range lit.Elts {
		val := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		vt := pass.TypesInfo.Types[val].Type
		if vt != nil && mentionsArenaValue(vt) {
			pass.Reportf(val.Pos(),
				"ccast arena value placed into long-lived %s literal; the arena chunk outlives the unit — store facts instead (see DESIGN.md \"Arena lifetimes\")",
				named.Obj().Name())
		}
	}
}
