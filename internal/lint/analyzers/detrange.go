package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// DetRange flags `range` over a map whose iteration order can leak
// into a deterministic surface. The repo's determinism contract —
// finding merges, export/graph signatures, snapshot encoding, report
// rendering, journal records are all byte-pinned by tests — dies the
// moment a map range feeds any of them unsorted, and those bugs only
// fire probabilistically. Inside the scoped packages every map range
// must be provably order-free:
//
//   - accumulating into maps, sets, or commutative counters is fine;
//   - min/max selection under a comparison guard is fine;
//   - equality-guarded lookup-and-return is fine;
//   - collecting keys/values into a slice is fine ONLY if that slice
//     is passed to a sort (sort.*, slices.Sort*, or any callee whose
//     name contains "sort") later in the same function;
//   - everything else — writes to builders/encoders, plain last-wins
//     assignments, unguarded returns, order-dependent calls — is
//     flagged.
var DetRange = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flags map iteration whose order can reach a deterministic surface " +
		"(finding merge, signatures, snapshot encode, report render, journal) without a sort",
	Run: runDetRange,
}

// detRangePkgs scope the check to the packages that own deterministic
// surfaces.
var detRangePkgs = map[string]bool{
	"rules": true, "artifact": true, "store": true, "metrics": true,
	"report": true, "core": true, "service": true, "srcfile": true,
	"obs": true,
}

func runDetRange(pass *analysis.Pass) error {
	if !detRangePkgs[pkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		funcBodies(f, func(body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := pass.TypesInfo.Types[rs.X].Type; t == nil || !isMap(t) {
					return true
				}
				checkMapRange(pass, rs, body)
				return true
			})
		})
	}
	return nil
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange classifies one map-range loop. body is the enclosing
// function body, used to look for sorts after the loop.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, body *ast.BlockStmt) {
	c := &rangeCheck{pass: pass, rs: rs}
	if obj := identObj(pass.TypesInfo, rs.Key); obj != nil {
		c.iterVars = append(c.iterVars, obj)
	}
	if rs.Value != nil {
		if obj := identObj(pass.TypesInfo, rs.Value); obj != nil {
			c.iterVars = append(c.iterVars, obj)
		}
	}
	c.stmts(rs.Body.List, guardNone)
	// Every slice the loop appended to must be sorted later in the
	// enclosing function.
	for _, ap := range c.appended {
		if !sortedAfter(pass, body, ap.key, rs.End()) {
			pass.Reportf(ap.pos,
				"%q collects map keys/values in nondeterministic order and is never sorted in this function; sort it before it reaches a deterministic surface",
				ap.name)
		}
	}
}

type guard int

const (
	guardNone    guard = iota
	guardCompare       // inside if with an ordered comparison: min/max selection
	guardEq            // inside if with equality/other condition: keyed lookup
)

// collectKey identifies an append target: a plain variable (base only)
// or a field of one (base + field).
type collectKey struct {
	base  types.Object
	field types.Object
}

// appendRec is one collecting append awaiting a sort.
type appendRec struct {
	key  collectKey
	name string
	pos  token.Pos
}

type rangeCheck struct {
	pass *analysis.Pass
	rs   *ast.RangeStmt
	// iterVars are the loop's key/value variables: writes through them
	// touch a distinct element per iteration and therefore commute.
	iterVars []types.Object
	appended []appendRec
}

// isIterVar reports whether obj is this loop's key or value variable.
func (c *rangeCheck) isIterVar(obj types.Object) bool {
	for _, v := range c.iterVars {
		if v == obj {
			return true
		}
	}
	return false
}

// loopLocal reports whether obj is declared inside this range statement;
// such variables die with the iteration (or the loop), so last-wins
// writes to them cannot leak iteration order outward.
func (c *rangeCheck) loopLocal(obj types.Object) bool {
	return obj != nil && obj.Pos() >= c.rs.Pos() && obj.Pos() < c.rs.End()
}

// lvalKey resolves an assignable expression to a collect key: `x` or
// `x.f` with an identifier base. ok is false for anything else.
func (c *rangeCheck) lvalKey(e ast.Expr) (collectKey, bool) {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := identObj(c.pass.TypesInfo, v); obj != nil {
			return collectKey{base: obj}, true
		}
	case *ast.SelectorExpr:
		base := identObj(c.pass.TypesInfo, v.X)
		field := c.pass.TypesInfo.Uses[v.Sel]
		if base != nil && field != nil {
			return collectKey{base: base, field: field}, true
		}
	}
	return collectKey{}, false
}

// recordAppend registers a collecting append for the sorted-after check.
func (c *rangeCheck) recordAppend(key collectKey, name string, pos token.Pos) {
	for _, ap := range c.appended {
		if ap.key == key {
			return
		}
	}
	c.appended = append(c.appended, appendRec{key: key, name: name, pos: pos})
}

// selfAppend reports whether rhs is `append(lhs, ...)` for the same
// collect target as lhs.
func (c *rangeCheck) selfAppend(lhs ast.Expr, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	lk, lok := c.lvalKey(lhs)
	ak, aok := c.lvalKey(call.Args[0])
	if !lok || !aok || lk != ak {
		return false
	}
	c.recordAppend(lk, exprString(lhs), call.Pos())
	return true
}

func (c *rangeCheck) stmts(list []ast.Stmt, g guard) {
	for _, s := range list {
		c.stmt(s, g)
	}
}

func (c *rangeCheck) stmt(s ast.Stmt, g guard) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		c.assign(st, g)
	case *ast.IncDecStmt:
		// Counters commute.
	case *ast.DeclStmt:
		// Local declarations are order-free until used.
	case *ast.ExprStmt:
		c.callEffect(st.X, g)
	case *ast.IfStmt:
		sub := guardEq
		if cond, ok := st.Cond.(*ast.BinaryExpr); ok {
			switch cond.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				sub = guardCompare
			}
		}
		if st.Init != nil {
			c.stmt(st.Init, g)
		}
		c.stmts(st.Body.List, sub)
		if st.Else != nil {
			c.stmt(st.Else, sub)
		}
	case *ast.BlockStmt:
		c.stmts(st.List, g)
	case *ast.ForStmt:
		c.stmts(st.Body.List, g)
	case *ast.RangeStmt:
		// A nested MAP range gets its own checkMapRange from the outer
		// Inspect, with the same strictness — rescanning its body here
		// would only double-report. Non-map nested ranges (slices) share
		// this loop's constraints.
		if t := c.pass.TypesInfo.Types[st.X].Type; t != nil && isMap(t) {
			return
		}
		c.stmts(st.Body.List, g)
	case *ast.SwitchStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cl.Body, guardEq)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cl.Body, guardEq)
			}
		}
	case *ast.BranchStmt:
		// continue/break are order-free.
	case *ast.ReturnStmt:
		if g == guardEq {
			// Keyed lookup: `if k == want { return v }` hits at most
			// one iteration, so order cannot matter.
			return
		}
		c.pass.Reportf(st.Pos(),
			"return inside map iteration depends on nondeterministic order; guard it with an equality test or restructure")
	default:
		c.pass.Reportf(s.Pos(),
			"statement inside map iteration has order-dependent effects; hoist it out or sort the keys first")
	}
}

// assign classifies one assignment inside the loop.
func (c *rangeCheck) assign(st *ast.AssignStmt, g guard) {
	// Compound assignments (+=, |=, ...) commute for the accumulator
	// patterns this repo uses.
	if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		return
	}
	for i, lhs := range st.Lhs {
		var rhs ast.Expr
		if len(st.Rhs) == len(st.Lhs) {
			rhs = st.Rhs[i]
		} else {
			rhs = st.Rhs[0]
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			// m2[k] = v — map/slice insert. Map writes commute; slice
			// element writes at a key-derived index are also keyed.
			continue
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			if st.Tok == token.DEFINE && c.pass.TypesInfo.Defs[l] != nil {
				// Freshly bound per iteration: dies with the iteration.
				continue
			}
			obj := identObj(c.pass.TypesInfo, l)
			if c.loopLocal(obj) {
				continue
			}
			if c.assignOK(l, rhs, g) {
				continue
			}
			c.pass.Reportf(st.Pos(),
				"assignment to %q inside map iteration is last-wins in nondeterministic order; accumulate commutatively, guard with a comparison, or sort the keys first",
				l.Name)
		case *ast.SelectorExpr:
			if c.selectorAssignOK(l, rhs, g) {
				continue
			}
			c.pass.Reportf(st.Pos(),
				"store through %s inside map iteration is order-dependent; sort the keys first", exprString(lhs))
		default:
			// Star stores out of the loop: order-dependent unless
			// guarded by a comparison (min/max into a field).
			if g == guardCompare {
				continue
			}
			c.pass.Reportf(st.Pos(),
				"store through %s inside map iteration is order-dependent; sort the keys first", exprString(lhs))
		}
	}
}

// assignOK reports whether `ident = rhs` is order-free in context.
func (c *rangeCheck) assignOK(l *ast.Ident, rhs ast.Expr, g guard) bool {
	// Guarded selection (min/max) or keyed hit is fine.
	if g == guardCompare || g == guardEq {
		return true
	}
	switch r := ast.Unparen(rhs).(type) {
	case *ast.BasicLit:
		// found = literal: idempotent.
		return true
	case *ast.Ident:
		// found = true/false/nil: idempotent; x = otherLocal is
		// order-dependent only if RHS involves the range vars, which a
		// bare ident can — conservatively allow constants only.
		return r.Name == "true" || r.Name == "false" || r.Name == "nil"
	case *ast.CallExpr:
		// x = append(x, ...): collection; defer judgment to the
		// sorted-after check.
		if c.selfAppend(l, r) {
			return true
		}
		// len/cap/min/max over loop-independent args would be fine, but
		// calls in general can carry the range vars outward.
		return false
	case *ast.BinaryExpr:
		// x = x + v style manual accumulation: commutative ops only.
		switch r.Op {
		case token.ADD, token.MUL, token.AND, token.OR, token.XOR:
			return exprMentions(c.pass.TypesInfo, r, identObj(c.pass.TypesInfo, l))
		}
		return false
	}
	return false
}

// selectorAssignOK reports whether `x.f = rhs` is order-free in context.
func (c *rangeCheck) selectorAssignOK(l *ast.SelectorExpr, rhs ast.Expr, g guard) bool {
	// Min/max into a field under a comparison guard.
	if g == guardCompare {
		return true
	}
	// Per-element write through the loop's own key/value variable:
	// each iteration touches a distinct element, so the writes commute.
	if base := identObj(c.pass.TypesInfo, l.X); base != nil && (c.isIterVar(base) || c.loopLocal(base)) {
		return true
	}
	// Guarded lazy init — `if x.f == nil { x.f = make(...) }` — is
	// idempotent: every order produces the same final state.
	if g == guardEq {
		switch r := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			if fn, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && fn.Name == "make" {
				return true
			}
		case *ast.CompositeLit:
			return true
		}
	}
	// x.f = append(x.f, ...): collection; defer judgment to the
	// sorted-after check.
	return c.selfAppend(l, rhs)
}

// callEffect judges a bare call statement inside the loop.
func (c *rangeCheck) callEffect(e ast.Expr, g guard) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		c.pass.Reportf(e.Pos(), "expression inside map iteration has order-dependent effects")
		return
	}
	if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch fn.Name {
		case "delete":
			return // map mutation commutes
		case "panic":
			return // aborting is order-free enough; the panic is the bug
		}
	}
	c.pass.Reportf(call.Pos(),
		"call to %s inside map iteration runs in nondeterministic order; if it writes output or accumulates ordered state, sort the keys first",
		exprString(call.Fun))
}

// sortedAfter reports whether the collect target is passed to a sorting
// call after pos anywhere in the enclosing function body.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, key collectKey, pos token.Pos) bool {
	matches := func(arg ast.Expr) bool {
		switch v := ast.Unparen(arg).(type) {
		case *ast.Ident:
			return key.field == nil && identObj(pass.TypesInfo, v) == key.base
		case *ast.SelectorExpr:
			return key.field != nil &&
				identObj(pass.TypesInfo, v.X) == key.base &&
				pass.TypesInfo.Uses[v.Sel] == key.field
		}
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if !isSortCall(pass.TypesInfo, call) {
			return true
		}
		for _, arg := range call.Args {
			if matches(arg) {
				found = true
				return false
			}
			// sort.Sort(ByX(v)) wraps the slice in a conversion.
			if conv, ok := ast.Unparen(arg).(*ast.CallExpr); ok && len(conv.Args) == 1 {
				if matches(conv.Args[0]) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes sort.*, slices.Sort*, and any callee whose name
// contains "sort" (sortFindings, sortStrings, ...).
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	if obj == nil {
		return false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		// sort.StringSlice(v) resolves to a TypeName: a conversion, not
		// a sorting call.
		return false
	}
	switch funcPkgBase(obj) {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(obj.Name(), "Sort")
	}
	return strings.Contains(strings.ToLower(obj.Name()), "sort")
}

// exprMentions reports whether the expression mentions obj.
func exprMentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && identObj(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// exprString renders a small expression for a message.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	}
	return "expression"
}
