// Package analyzers holds the five adlint checks that machine-enforce
// this repo's documented invariants: arena lifetimes (arenaescape),
// deterministic output surfaces (detrange), lock acquisition order
// (lockorder), checked persistence errors (syncerr), and read-only
// zero-copy aliases (aliasmut).
//
// Every analyzer identifies the types and functions it cares about by
// package *base name* plus type/method name, not full import path.
// That keeps one registry working against both the real packages
// (repro/internal/store) and the analysistest golden packages
// (.../testdata/src/syncerr/store), exactly how upstream vet tests
// stand in for net/http with a local fake.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// All returns the full adlint suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		AliasMut,
		ArenaEscape,
		DetRange,
		LockOrder,
		SyncErr,
	}
}

// ByName resolves a comma-separated analyzer list; unknown names come
// back in the second result.
func ByName(names string) ([]*analysis.Analyzer, []string) {
	var out []*analysis.Analyzer
	var unknown []string
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			unknown = append(unknown, n)
		}
	}
	return out, unknown
}

// pkgBase returns the last path segment of an import path.
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// namedOf unwraps pointers and aliases down to a named type.
func namedOf(t types.Type) (*types.Named, bool) {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// typeFrom reports whether t (through pointers) is a named type
// declared in a package with the given base name, returning its name.
func typeFrom(t types.Type, base string) (string, bool) {
	n, ok := namedOf(t)
	if !ok || n.Obj().Pkg() == nil {
		return "", false
	}
	if pkgBase(n.Obj().Pkg().Path()) != base {
		return "", false
	}
	return n.Obj().Name(), true
}

// calleeObj resolves the object a call expression invokes: a *types.Func
// for functions and methods, a *types.Builtin for builtins, nil for
// indirect calls through function values.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// methodInfo describes a resolved method callee: the base name of the
// package declaring the receiver type, the receiver type name, and the
// method name.
func methodInfo(obj types.Object) (pkg, recv, name string, ok bool) {
	fn, isFn := obj.(*types.Func)
	if !isFn {
		return "", "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", "", false
	}
	n, isNamed := namedOf(sig.Recv().Type())
	if !isNamed || n.Obj().Pkg() == nil {
		return "", "", "", false
	}
	return pkgBase(n.Obj().Pkg().Path()), n.Obj().Name(), fn.Name(), true
}

// funcPkgBase returns the base name of the package declaring obj
// (functions without receivers), or "" when unknown.
func funcPkgBase(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return pkgBase(obj.Pkg().Path())
}

// returnsError reports whether the callee's final result is error.
func returnsError(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// funcBodies visits every function body in the file: declarations and
// literals, each exactly once via the enclosing declaration walk.
func funcBodies(f *ast.File, visit func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Body)
			}
		}
		return true
	})
}

// identObj resolves an identifier expression to its object, unwrapping
// parens; nil for anything else.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
