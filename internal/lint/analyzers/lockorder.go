package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// LockOrder enforces the service layer's lock hierarchy from the
// sharded-store PR. Acquisition order is strictly rank-increasing:
//
//	rank 10  per-module locks    (corpusState.lockModules, held across a delta)
//	rank 20  corpusState.mu      (corpus RWMutex; prepares and projection
//	                              renders under RLock, commit under Lock)
//	rank 25  corpusState.projMu  (rendered-projection cache; serializes the
//	                              render, so it is NOT a leaf: the render
//	                              itself runs under it)
//	rank 30  corpusState.shardMu (leaf: guards the module-lock table only)
//	rank 40  Server.mu           (leaf: guards the corpora map only; reads
//	                              take RLock)
//
//	rank 50  Server.traceMu     (slow-request trace-log writer; innermost,
//	                              and the write under it is by design)
//
// Leaf locks additionally forbid acquiring ANY other lock and making
// any blocking call (fsync, snapshot writes, HTTP, store methods,
// obs.Registry registration — it takes the registry mutex and
// allocates) while held — they serialize every request on the server,
// so nothing slow may run under them. Recording into already-registered
// obs instruments (Counter.Inc, Histogram.Observe, ...) is lock-free
// atomic adds and is deliberately NOT flagged: that is the metrics
// hot-path contract the service layer relies on. The corpus lock deliberately permits
// blocking I/O: the write-ahead journal record is staged (written)
// under the corpus write lock so commit order equals journal order —
// only the group-commit fsync moved outside the lock, via the sync
// barrier the delta handler captures before releasing it — and
// snapshot writes run under it too. Only ordering is enforced there.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "enforces module-lock -> corpus-RWMutex -> projMu -> leaf (shardMu, Server.mu) acquisition order " +
		"and forbids blocking I/O under the leaf locks",
	Run: runLockOrder,
}

// lockInfo ranks one registered mutex field.
type lockInfo struct {
	rank int
	leaf bool // nothing may be acquired and no blocking call made while held
}

// lockRegistry keys are "<recv-pkg-base>.<recv-type>.<field>".
var lockRegistry = map[string]lockInfo{
	"service.corpusState.mu":      {rank: 20},
	"service.corpusState.projMu":  {rank: 25},
	"service.corpusState.shardMu": {rank: 30, leaf: true},
	"service.Server.mu":           {rank: 40, leaf: true},
	"service.Server.traceMu":      {rank: 50},
}

// moduleLockRank is the rank taken by corpusState.lockModules, which
// acquires the per-module locks (sorted internally, so mutual ordering
// among modules is its own invariant, pinned by test).
const moduleLockRank = 10

// held is one acquired lock during the linear scan.
type held struct {
	key      string // printable identity, e.g. "st.mu"
	info     lockInfo
	pos      token.Pos
	deferred bool // released by a defer: held to function end by design
}

func runLockOrder(pass *analysis.Pass) error {
	if pkgBase(pass.Pkg.Path()) != "service" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			s := &lockScan{pass: pass}
			s.block(fn.Body.List)
			return true
		})
	}
	return nil
}

type lockScan struct {
	pass *analysis.Pass
	held []held
	// unlockers maps objects of `unlock := st.lockModules(...)` results
	// to the held entry they release.
	unlockers map[types.Object]string
}

// block scans statements linearly. Nested control flow is scanned with
// a snapshot of the held set and its effects on the set are discarded
// afterwards — conditional lock handoff is not an idiom this codebase
// allows, and the scan stays conservative inside the branch itself.
func (s *lockScan) block(stmts []ast.Stmt) {
	for _, st := range stmts {
		s.stmt(st)
	}
}

func (s *lockScan) stmt(st ast.Stmt) {
	switch v := st.(type) {
	case *ast.ExprStmt:
		s.expr(v.X, false)
	case *ast.DeferStmt:
		s.deferCall(v.Call)
	case *ast.GoStmt:
		// A goroutine launched while holding locks does not inherit
		// them; scan its literal body with an empty held set.
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			sub := &lockScan{pass: s.pass}
			sub.block(lit.Body.List)
		}
	case *ast.AssignStmt:
		for _, r := range v.Rhs {
			s.expr(r, false)
		}
		// unlock := st.lockModules(paths)
		if len(v.Rhs) == 1 && len(v.Lhs) == 1 {
			if call, ok := ast.Unparen(v.Rhs[0]).(*ast.CallExpr); ok && s.isLockModules(call) {
				if obj := identObj(s.pass.TypesInfo, v.Lhs[0]); obj != nil {
					if s.unlockers == nil {
						s.unlockers = make(map[types.Object]string)
					}
					s.unlockers[obj] = "modules"
				}
			}
		}
	case *ast.IfStmt:
		if v.Init != nil {
			s.stmt(v.Init)
		}
		s.expr(v.Cond, false)
		s.branch(v.Body.List)
		if v.Else != nil {
			s.branch([]ast.Stmt{v.Else})
		}
	case *ast.ForStmt:
		s.branch(v.Body.List)
	case *ast.RangeStmt:
		s.expr(v.X, false)
		s.branch(v.Body.List)
	case *ast.SwitchStmt:
		for _, cc := range v.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				s.branch(cl.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range v.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				s.branch(cl.Body)
			}
		}
	case *ast.BlockStmt:
		s.block(v.List)
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			s.expr(r, false)
		}
	}
}

// branch scans nested statements against a snapshot of the held set.
func (s *lockScan) branch(stmts []ast.Stmt) {
	saved := make([]held, len(s.held))
	copy(saved, s.held)
	s.block(stmts)
	s.held = saved
}

// expr walks an expression for lock operations and blocking calls.
func (s *lockScan) expr(e ast.Expr, deferred bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		s.call(call, deferred)
		return true
	})
}

func (s *lockScan) call(call *ast.CallExpr, deferred bool) {
	// unlock() from a previous lockModules.
	if obj := identObj(s.pass.TypesInfo, call.Fun); obj != nil && s.unlockers[obj] != "" {
		s.release(s.unlockers[obj], deferred)
		return
	}
	if s.isLockModules(call) {
		s.acquire("modules", lockInfo{rank: moduleLockRank}, call.Pos())
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		s.maybeBlocking(call)
		return
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		key, info, registered := s.lockIdent(sel)
		if !registered {
			if isSyncLockable(s.pass.TypesInfo, sel.X) {
				// Unregistered mutex (e.g. a module lock pulled out of
				// the table): only constraint is leaf-innermost.
				s.checkLeafHeld(call.Pos(), exprString(sel.X))
			}
			return
		}
		s.acquireRegistered(key, info, call.Pos())
	case "Unlock", "RUnlock":
		key, _, registered := s.lockIdent(sel)
		if registered {
			s.release(key, deferred)
		}
	default:
		s.maybeBlocking(call)
	}
}

// acquireRegistered checks ordering then records the acquisition.
func (s *lockScan) acquireRegistered(key string, info lockInfo, pos token.Pos) {
	for _, h := range s.held {
		if h.key == key {
			s.pass.Reportf(pos, "acquiring %s while already holding it (self-deadlock)", key)
			return
		}
		if h.info.leaf {
			s.pass.Reportf(pos,
				"acquiring %s while holding leaf lock %s; leaf locks (shardMu, Server.mu) must be innermost", key, h.key)
			return
		}
		if info.rank <= h.info.rank {
			s.pass.Reportf(pos,
				"lock order violation: acquiring %s (rank %d) while holding %s (rank %d); order is modules < corpus mu < projMu < shardMu < Server.mu",
				key, info.rank, h.key, h.info.rank)
			return
		}
	}
	s.acquire(key, info, pos)
}

func (s *lockScan) acquire(key string, info lockInfo, pos token.Pos) {
	if key == "modules" {
		for _, h := range s.held {
			if h.info.leaf {
				s.pass.Reportf(pos, "acquiring module locks while holding leaf lock %s", h.key)
				return
			}
			if moduleLockRank <= h.info.rank {
				s.pass.Reportf(pos,
					"lock order violation: module locks (rank %d) must be acquired before %s (rank %d)",
					moduleLockRank, h.key, h.info.rank)
				return
			}
		}
	}
	s.held = append(s.held, held{key: key, info: info, pos: pos})
}

func (s *lockScan) release(key string, deferred bool) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].key == key {
			if deferred {
				s.held[i].deferred = true
				return
			}
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
}

// deferCall handles `defer x.Unlock()` / `defer unlock()` — the lock
// stays held to function end legitimately — and scans other deferred
// calls as potential blocking work (they run with whatever is held at
// return, which the linear scan approximates as the current set).
func (s *lockScan) deferCall(call *ast.CallExpr) {
	if obj := identObj(s.pass.TypesInfo, call.Fun); obj != nil && s.unlockers[obj] != "" {
		s.release(s.unlockers[obj], true)
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
			if key, _, registered := s.lockIdent(sel); registered {
				s.release(key, true)
			}
			return
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		s.branch(lit.Body.List)
		return
	}
	s.maybeBlocking(call)
}

// lockIdent resolves sel (x.mu.Lock -> x.mu) against the registry.
func (s *lockScan) lockIdent(sel *ast.SelectorExpr) (key string, info lockInfo, ok bool) {
	fieldSel, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", lockInfo{}, false
	}
	selection := s.pass.TypesInfo.Selections[fieldSel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return "", lockInfo{}, false
	}
	recv, isNamed := namedOf(selection.Recv())
	if !isNamed || recv.Obj().Pkg() == nil {
		return "", lockInfo{}, false
	}
	regKey := pkgBase(recv.Obj().Pkg().Path()) + "." + recv.Obj().Name() + "." + fieldSel.Sel.Name
	li, registered := lockRegistry[regKey]
	if !registered {
		return "", lockInfo{}, false
	}
	return exprString(fieldSel), li, true
}

func (s *lockScan) isLockModules(call *ast.CallExpr) bool {
	obj := calleeObj(s.pass.TypesInfo, call)
	if obj == nil {
		return false
	}
	pkg, recv, name, ok := methodInfo(obj)
	return ok && pkg == "service" && recv == "corpusState" && name == "lockModules"
}

// checkLeafHeld reports if any leaf lock is currently held.
func (s *lockScan) checkLeafHeld(pos token.Pos, what string) {
	for _, h := range s.held {
		if h.info.leaf {
			s.pass.Reportf(pos, "acquiring %s while holding leaf lock %s; leaf locks must be innermost", what, h.key)
			return
		}
	}
}

// maybeBlocking flags slow or I/O calls made while a leaf lock is held.
func (s *lockScan) maybeBlocking(call *ast.CallExpr) {
	var leaf *held
	for i := range s.held {
		if s.held[i].info.leaf {
			leaf = &s.held[i]
			break
		}
	}
	if leaf == nil {
		return
	}
	obj := calleeObj(s.pass.TypesInfo, call)
	if obj == nil {
		return
	}
	if name, blocking := blockingCall(obj); blocking {
		s.pass.Reportf(call.Pos(),
			"blocking call %s while holding leaf lock %s; leaf locks serialize the whole server — do I/O outside them",
			name, leaf.key)
	}
}

// blockingCall classifies callees that can block on I/O or heavy work.
var blockingRecvPkgs = map[string]bool{"os": true, "http": true, "store": true}
var blockingCoreMethods = map[string]bool{
	"Assess": true, "CommitDelta": true, "PrepareDelta": true,
	"ExportState": true, "LoadDir": true, "LoadFileSet": true, "LoadDefaultCorpus": true,
}

func blockingCall(obj types.Object) (string, bool) {
	if pkg, recv, name, ok := methodInfo(obj); ok {
		if blockingRecvPkgs[pkg] {
			return recv + "." + name, true
		}
		// Registry methods (registration, exposition) take the registry
		// mutex and allocate; only the per-instrument record methods are
		// lock-free and leaf-safe.
		if pkg == "obs" && recv == "Registry" {
			return recv + "." + name, true
		}
		if pkg == "core" && blockingCoreMethods[name] {
			return recv + "." + name, true
		}
		if pkg == "service" && name == "persist" {
			return recv + "." + name, true
		}
		return "", false
	}
	switch funcPkgBase(obj) {
	case "os", "http":
		return obj.Name(), true
	case "time":
		if obj.Name() == "Sleep" {
			return "time.Sleep", true
		}
	}
	return "", false
}

// isSyncLockable reports whether e's type is sync.Mutex or sync.RWMutex
// (through a pointer).
func isSyncLockable(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	name, ok := typeFrom(t, "sync")
	return ok && (name == "Mutex" || name == "RWMutex")
}
