package analyzers

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// SyncErr flags silently discarded errors from durability-relevant
// calls on the persistence paths: package store (and any file named
// persist.go) plus the service layer that drives it. A swallowed
// Sync/Close/Truncate error breaks the crash-consistency contract —
// "a journal record is fsync'd before the in-memory commit it covers"
// only holds if the fsync's error actually reaches the caller.
//
// A call is flagged when its result is dropped entirely: a bare
// expression statement, go statement, or defer. Assigning the error to
// the blank identifier (`_ = f.Close()`) is NOT flagged — that is the
// repo's idiom for "this error is provably inconsequential; a reviewer
// signed off", typically on already-failing cleanup paths where the
// primary error is what the caller reports.
var SyncErr = &analysis.Analyzer{
	Name: "syncerr",
	Doc: "flags discarded errors from Sync/Close/Write/Truncate on persistence paths " +
		"(package store, package service, */persist.go); write `_ = call` for a reviewed, deliberate discard",
	Run: runSyncErr,
}

// syncErrPkgs are the package base names whose every file is a
// persistence path.
var syncErrPkgs = map[string]bool{"store": true, "service": true}

// syncErrMethods are the durability-relevant methods, keyed by the base
// name of the package declaring the receiver type. Receiver package
// "os" covers *os.File; "store" covers Journal/CorpusStore/Dir.
var syncErrMethods = map[string]map[string]bool{
	"os": {
		"Close": true, "Sync": true, "Truncate": true,
		"Write": true, "WriteString": true, "WriteAt": true,
	},
	"store": {
		"Close": true, "Sync": true, "Truncate": true, "Reset": true,
		"Append": true, "WriteSnapshot": true, "MarkClean": true,
	},
}

// syncErrFuncs are durability-relevant package-level functions, keyed
// by declaring package base name.
var syncErrFuncs = map[string]map[string]bool{
	"os": {
		"Rename": true, "Remove": true, "RemoveAll": true, "WriteFile": true,
		"Mkdir": true, "MkdirAll": true, "Truncate": true, "Link": true, "Symlink": true,
	},
	// syncDir is store's directory-fsync helper; service and cmd code
	// must not drop its error either.
	"store": {"syncDir": true},
}

func runSyncErr(pass *analysis.Pass) error {
	base := pkgBase(pass.Pkg.Path())
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Package)
		if !syncErrPkgs[base] && pkgBase(pos.Filename) != "persist.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = st.Call
			case *ast.DeferStmt:
				call = st.Call
			}
			if call == nil {
				return true
			}
			if name, ok := syncErrTarget(pass, call); ok {
				pass.Reportf(call.Pos(),
					"error from %s is discarded on a persistence path; check it, or write `_ = %s(...)` to record that the discard is deliberate",
					name, name)
			}
			return true
		})
	}
	return nil
}

// syncErrTarget reports whether call is a durability-relevant call
// whose error result matters, returning a printable callee name.
func syncErrTarget(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	obj := calleeObj(pass.TypesInfo, call)
	if obj == nil || !returnsError(obj) {
		return "", false
	}
	if pkg, recv, name, ok := methodInfo(obj); ok {
		if syncErrMethods[pkg][name] {
			return recv + "." + name, true
		}
		return "", false
	}
	if fns := syncErrFuncs[funcPkgBase(obj)]; fns[obj.Name()] {
		return obj.Name(), true
	}
	return "", false
}
