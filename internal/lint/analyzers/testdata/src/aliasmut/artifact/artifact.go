// Package artifact is a golden stand-in for the zero-copy accessor
// surfaces: aliasmut registers Shard.Paths/Funcs and Index.ShardNames by
// "<pkg>.<type>.<method>". The declaring package itself is exempt —
// maintaining internal state through internal aliases is its job, so the
// mutations at the bottom of this file must draw no findings.
package artifact

import "sort"

// Func is a pointer element shared between the shard and callers.
type Func struct {
	Name string
	Line int
}

type Shard struct {
	paths []string
	funcs []*Func
}

// Paths returns the shard's path list without copying; callers must not
// mutate it.
func (sh *Shard) Paths() []string { return sh.paths }

// Funcs returns the shard's function records without copying; callers
// must not mutate them.
func (sh *Shard) Funcs() []*Func { return sh.funcs }

type Index struct {
	shardNames []string
}

// ShardNames returns the sorted shard names without copying.
func (ix *Index) ShardNames() []string { return ix.shardNames }

// internal maintenance: exempt from the check by package identity.
func (sh *Shard) addPath(p string) {
	sh.paths = append(sh.paths, p)
	sort.Strings(sh.paths)
	view := sh.Paths()
	view[0] = view[0] // self-package writes through the alias are its own business
}
