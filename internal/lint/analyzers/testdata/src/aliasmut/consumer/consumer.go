// Package consumer mutates the artifact package's zero-copy views in
// every way aliasmut flags, plus the sanctioned copy-first idioms.
package consumer

import (
	"sort"

	"repro/internal/lint/analyzers/testdata/src/aliasmut/artifact"
)

func elementWrite(sh *artifact.Shard) {
	p := sh.Paths()
	p[0] = "mutated" // want `writing an element of the slice returned by artifact.Shard.Paths`
}

func subsliceWrite(sh *artifact.Shard) {
	p := sh.Paths()
	q := p[1:]
	q[0] = "mutated" // want `writing an element of the slice returned by artifact.Shard.Paths`
}

func sortInPlace(sh *artifact.Shard, ix *artifact.Index) {
	sort.Strings(sh.Paths()) // want `sorting the slice returned by artifact.Shard.Paths in place`
	names := ix.ShardNames()
	sort.Sort(sort.StringSlice(names)) // want `sorting the slice returned by artifact.Index.ShardNames in place`
}

func appendInto(sh *artifact.Shard) []string {
	return append(sh.Paths(), "extra") // want `append to the slice returned by artifact.Shard.Paths`
}

func copyInto(sh *artifact.Shard, src []string) {
	copy(sh.Paths(), src) // want `copy into the slice returned by artifact.Shard.Paths`
}

func elementFieldWrite(sh *artifact.Shard) {
	for _, f := range sh.Funcs() {
		f.Line = 0 // want `writing a field of an element shared with artifact.Shard.Funcs`
	}
	fs := sh.Funcs()
	first := fs[0]
	first.Name = "mutated" // want `writing a field of an element shared with artifact.Shard.Funcs`
}

func sanctioned(sh *artifact.Shard, ix *artifact.Index) []string {
	// Copy-first is the documented idiom: clone, then do as you like.
	q := append([]string(nil), sh.Paths()...)
	sort.Strings(q)
	q[0] = "mine"
	// Reading is always fine.
	total := 0
	for _, f := range sh.Funcs() {
		total += f.Line
	}
	_ = total
	return q
}

func suppressedMutation(sh *artifact.Shard) {
	p := sh.Paths()
	//adlint:ignore aliasmut golden: deliberate mutation kept to pin suppression
	p[0] = "mutated"
}
