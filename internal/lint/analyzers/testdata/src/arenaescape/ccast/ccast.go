// Package ccast is a golden stand-in for the arena-allocated AST:
// arenaescape matches its named types by package base name.
package ccast

// Node is the AST node interface; values always point into an arena.
type Node interface{ node() }

// FuncDecl is a representative slab-allocated node.
type FuncDecl struct {
	Name string
	Body Node
}

func (f *FuncDecl) node() {}

// Arena owns slab chunks; holding one pins every node carved from it.
type Arena struct {
	chunks [][]byte
}

// Span is a plain value record: copying it out of a node carries no
// arena reference.
type Span struct {
	Off, Len int
}
