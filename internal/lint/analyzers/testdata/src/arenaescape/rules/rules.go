// Package rules is a golden stand-in for a package with registered
// long-lived types (Incremental, Finding): arena nodes must never be
// stored into them, by declaration or by flow.
package rules

import "repro/internal/lint/analyzers/testdata/src/arenaescape/ccast"

// Incremental is registered long-lived: every arena-capable field is a
// declaration violation.
type Incremental struct {
	decls   map[string]*ccast.FuncDecl // want `long-lived type Incremental declares a field that can hold ccast arena nodes`
	nodes   []ccast.Node               // want `long-lived type Incremental declares a field that can hold ccast arena nodes`
	arena   *ccast.Arena               // want `long-lived type Incremental declares a field that can hold ccast arena nodes`
	escape  interface{}
	names   []string
	span    ccast.Span
	counter int
}

// Finding is registered long-lived; facts-only fields are fine.
type Finding struct {
	Rule string
	Path string
	Line int
}

// scratch is NOT registered: a short-lived traversal holder may carry
// nodes freely.
type scratch struct {
	cur   ccast.Node
	stack []*ccast.FuncDecl
}

func storeNode(inc *Incremental, n *ccast.FuncDecl) {
	inc.escape = n     // want `storing a ccast arena value into long-lived Incremental.escape`
	inc.decls["f"] = n // want `storing a ccast arena value into long-lived Incremental.decls`
	inc.names = append(inc.names, n.Name)
	inc.counter++
	inc.span = ccast.Span{Off: 1, Len: 2}
}

func buildLiteral(n *ccast.FuncDecl) *Incremental {
	return &Incremental{
		escape: n, // want `ccast arena value placed into long-lived Incremental literal`
		names:  []string{n.Name},
	}
}

func shortLived(n *ccast.FuncDecl) int {
	s := &scratch{cur: n}
	s.stack = append(s.stack, n)
	return len(s.stack)
}

func factsOnly(n *ccast.FuncDecl) Finding {
	return Finding{Rule: "golden", Path: n.Name, Line: 1}
}

func suppressedEscape(inc *Incremental, n *ccast.FuncDecl) {
	//adlint:ignore arenaescape golden: deliberate escape kept to pin suppression
	inc.escape = n
}
