// Package rules is a golden stand-in for a determinism-scoped package:
// detrange matches it by base name, so every map range here must be
// provably order-free or flagged.
package rules

import (
	"sort"
	"strings"
)

type row struct {
	name  string
	count int
}

type table struct {
	last  string
	names []string
	byKey map[string]int
}

func flagged(m map[string]int, t *table, sb *strings.Builder) []string {
	var out []string
	var last string
	for k, v := range m {
		out = append(out, k)         // want `"out" collects map keys/values in nondeterministic order`
		last = k                     // want `assignment to "last" inside map iteration is last-wins`
		t.last = k                   // want `store through t.last inside map iteration is order-dependent`
		sb.WriteString(k)            // want `call to sb.WriteString inside map iteration runs in nondeterministic order`
		t.names = append(t.names, k) // want `"t.names" collects map keys/values in nondeterministic order`
		_ = v
	}
	_ = last
	return out
}

func flaggedReturn(m map[string]int) int {
	for _, v := range m {
		if v > 0 {
			return v // want `return inside map iteration depends on nondeterministic order`
		}
	}
	return 0
}

func sortedCollect(m map[string]int, t *table) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
		t.names = append(t.names, k)
	}
	sort.Strings(keys)
	sort.Strings(t.names)
	return keys
}

func accumulators(m map[string]int, t *table) (int, int) {
	total, n, max := 0, 0, 0
	for k, v := range m {
		total += v
		n++
		if v > max {
			max = v
		}
		if t.byKey == nil {
			t.byKey = make(map[string]int)
		}
		t.byKey[k] = v
	}
	return total, max
}

func keyedLookup(m map[string]int, want string) (int, bool) {
	for k, v := range m {
		if k == want {
			return v, true
		}
	}
	return 0, false
}

func loopLocals(m map[string]*row) int {
	seen := 0
	for _, r := range m {
		c := r.count
		if c > 10 {
			c = 10
		}
		seen += c
		r.count = 0 // per-element write through the value variable commutes
	}
	return seen
}

func suppressed(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) //adlint:ignore detrange golden: order deliberately ignored here
	}
}
