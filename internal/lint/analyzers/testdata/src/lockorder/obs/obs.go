// Package obs is a golden stand-in for the repo's metrics layer:
// lockorder classifies obs.Registry methods as blocking (registration
// takes the registry mutex and allocates) while per-instrument record
// methods stay leaf-safe, and resolves both by "<pkg>.<type>.<method>",
// so the type and method names here mirror the real ones exactly.
package obs

// Counter is a registered instrument; Inc is the lock-free hot path.
type Counter struct{ n int64 }

func (c *Counter) Inc() { c.n++ }

// Registry registers instruments under a mutex.
type Registry struct{ metrics []*Counter }

func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.metrics = append(r.metrics, c)
	return c
}
