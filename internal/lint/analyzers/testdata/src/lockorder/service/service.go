// Package service is a golden stand-in for the repo's service layer:
// lockorder resolves locks by "<pkg>.<type>.<field>", so the type and
// field names here mirror the real ones exactly.
package service

import (
	"os"
	"sync"
	"time"

	"repro/internal/lint/analyzers/testdata/src/lockorder/obs"
)

type corpusState struct {
	mu       sync.RWMutex
	projMu   sync.Mutex
	shardMu  sync.Mutex
	modLocks map[string]*sync.Mutex
}

func (st *corpusState) lockModules(names []string) func() { return func() {} }

type Server struct {
	mu      sync.RWMutex
	corpora map[string]*corpusState
}

func wrongModuleOrder(st *corpusState, names []string) {
	st.mu.Lock()
	unlock := st.lockModules(names) // want `lock order violation: module locks \(rank 10\) must be acquired before st.mu`
	unlock()
	st.mu.Unlock()
}

func lockUnderLeaf(s *Server, st *corpusState) {
	s.mu.Lock()
	st.mu.Lock() // want `acquiring st.mu while holding leaf lock s.mu`
	st.mu.Unlock()
	s.mu.Unlock()
}

func selfDeadlock(st *corpusState) {
	st.mu.Lock()
	st.mu.Lock() // want `acquiring st.mu while already holding it`
	st.mu.Unlock()
	st.mu.Unlock()
}

func rankDecrease(s *Server, st *corpusState) {
	st.shardMu.Lock()
	st.mu.Lock() // want `acquiring st.mu while holding leaf lock st.shardMu`
	st.mu.Unlock()
	st.shardMu.Unlock()
}

func blockingUnderLeaf(s *Server, path string) {
	s.mu.Lock()
	os.ReadFile(path)            // want `blocking call ReadFile while holding leaf lock s.mu`
	time.Sleep(time.Millisecond) // want `blocking call time.Sleep while holding leaf lock s.mu`
	s.mu.Unlock()
}

func moduleLockUnderLeaf(s *Server, st *corpusState, name string) {
	ml := st.modLocks[name]
	s.mu.Lock()
	ml.Lock() // want `acquiring ml while holding leaf lock s.mu`
	ml.Unlock()
	s.mu.Unlock()
}

func correctOrder(s *Server, st *corpusState, names []string, path string, data []byte) {
	unlock := st.lockModules(names)
	defer unlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	// Blocking I/O under the corpus lock is the journal-before-ack
	// design, not a violation; only the leaf locks forbid it.
	os.WriteFile(path, data, 0o644)
	st.shardMu.Lock()
	st.shardMu.Unlock()
}

func leafAfterRelease(s *Server, st *corpusState) {
	s.mu.Lock()
	_ = s.corpora
	s.mu.Unlock()
	st.mu.Lock()
	st.mu.Unlock()
}

func goroutineStartsFresh(s *Server, st *corpusState) {
	s.mu.Lock()
	go func() {
		st.mu.Lock()
		st.mu.Unlock()
	}()
	s.mu.Unlock()
}

func branchDoesNotLeak(s *Server, st *corpusState, cond bool) {
	if cond {
		st.shardMu.Lock()
		st.shardMu.Unlock()
	}
	st.mu.Lock()
	st.mu.Unlock()
}

func projectionRenderOrder(st *corpusState, name string) {
	// The projection renderer's shape: corpus read lock, then projMu
	// (rank 25) while rendering. Correct and allowed.
	st.mu.RLock()
	defer st.mu.RUnlock()
	st.projMu.Lock()
	defer st.projMu.Unlock()
}

func projMuBeforeCorpus(st *corpusState) {
	st.projMu.Lock()
	st.mu.RLock() // want `lock order violation: acquiring st.mu \(rank 20\) while holding st.projMu \(rank 25\)`
	st.mu.RUnlock()
	st.projMu.Unlock()
}

func projMuNotLeaf(st *corpusState) {
	// projMu is ranked but NOT a leaf: the render runs under it, and
	// shardMu (rank 30) may still be taken while it is held.
	st.projMu.Lock()
	st.shardMu.Lock()
	st.shardMu.Unlock()
	st.projMu.Unlock()
}

func serverReadLockIsLeafToo(s *Server, st *corpusState) {
	// Server.mu read acquisitions carry the same leaf constraints as
	// writes: nothing may be locked under them.
	s.mu.RLock()
	st.mu.RLock() // want `acquiring st.mu while holding leaf lock s.mu`
	st.mu.RUnlock()
	s.mu.RUnlock()
}

func workerPoolUnderCorpusLock(st *corpusState, shards []func()) {
	// The shard-parallel rebuild shape (internal/par): a worker pool is
	// spawned while the corpus lock is held, and each worker touches
	// only shard-local state plus its own leaf lock. Goroutine bodies
	// start with an empty held set — the spawner's corpus lock is a
	// happens-before edge, not a held lock inside the worker — so
	// workers taking projMu or shardMu is correct and allowed.
	st.mu.Lock()
	defer st.mu.Unlock()
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st.projMu.Lock()
			shards[i]()
			st.projMu.Unlock()
			st.shardMu.Lock()
			st.shardMu.Unlock()
		}(i)
	}
	wg.Wait()
}

func metricRecordUnderLeaf(s *Server, c *obs.Counter) {
	// Recording into an already-registered instrument is the metrics
	// hot-path contract — lock-free atomic adds — so it is allowed even
	// under a leaf lock.
	s.mu.Lock()
	c.Inc()
	s.mu.Unlock()
}

func metricRegistrationUnderLeaf(s *Server, reg *obs.Registry) {
	// Registration takes the registry mutex and allocates: it belongs
	// at server construction, never under a request-path lock.
	s.mu.Lock()
	reg.Counter("x_total", "help") // want `blocking call Registry.Counter while holding leaf lock s.mu`
	s.mu.Unlock()
}

func suppressedViolation(s *Server, st *corpusState) {
	s.mu.Lock()
	//adlint:ignore lockorder golden: deliberate violation kept to pin suppression
	st.mu.Lock()
	st.mu.Unlock()
	s.mu.Unlock()
}
