package persistfile

import "os"

// Outside persist.go, an unregistered package is out of scope: the same
// discard draws no finding.
func flushElsewhere(path string, data []byte) {
	os.WriteFile(path, data, 0o644)
}
