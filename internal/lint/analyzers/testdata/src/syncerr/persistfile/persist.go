// Package persistfile exercises syncerr's file-name scoping: this
// package's base name is NOT registered, but persist.go files are
// persistence paths wherever they live.
package persistfile

import "os"

func flushTemp(path string, data []byte) {
	os.WriteFile(path, data, 0o644) // want `error from WriteFile is discarded`
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Sync() // want `error from File.Sync is discarded`
	_ = f.Close()
}
