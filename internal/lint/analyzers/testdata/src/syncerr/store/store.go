// Package store is a golden stand-in for the repo's internal/store: the
// syncerr analyzer matches it by package base name, so discarded
// persistence errors here must be flagged exactly as in the real thing.
package store

import "os"

// CorpusStore mimics the persistence handle whose error-returning
// methods the analyzer registers.
type CorpusStore struct {
	dirty bool
}

func (cs *CorpusStore) Close() error          { return nil }
func (cs *CorpusStore) Sync() error           { return nil }
func (cs *CorpusStore) Append(b []byte) error { return nil }
func (cs *CorpusStore) MarkClean() error      { cs.dirty = false; return nil }

func syncDir(dir string) error { return nil }

// value-returning helper that is NOT registered: discards are fine.
func (cs *CorpusStore) Generation() int { return 0 }

func discards(cs *CorpusStore, f *os.File, path string) {
	cs.Close()            // want `error from CorpusStore.Close is discarded`
	cs.Sync()             // want `error from CorpusStore.Sync is discarded`
	cs.MarkClean()        // want `error from CorpusStore.MarkClean is discarded`
	f.Close()             // want `error from File.Close is discarded`
	f.Sync()              // want `error from File.Sync is discarded`
	os.Remove(path)       // want `error from Remove is discarded`
	os.Rename(path, path) // want `error from Rename is discarded`
	syncDir(path)         // want `error from syncDir is discarded`
	go cs.Sync()          // want `error from CorpusStore.Sync is discarded`
	defer f.Close()       // want `error from File.Close is discarded`
}

func handled(cs *CorpusStore, f *os.File, path string) error {
	// The sanctioned idioms: checked, propagated, or explicitly
	// discarded with a blank assignment.
	if err := cs.Close(); err != nil {
		return err
	}
	_ = f.Close()
	_ = os.Remove(path)
	err := cs.Sync()
	cs.Generation() // unregistered: no error to lose
	return err
}

func suppressedDiscards(cs *CorpusStore) {
	cs.Sync() //adlint:ignore syncerr golden: tail-comment suppression form
	//adlint:ignore syncerr golden: own-line suppression form
	cs.Close()
	//adlint:ignore * golden: wildcard matches every analyzer
	cs.MarkClean()
}
