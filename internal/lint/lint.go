// Package lint is the adlint driver: it runs the repo's analyzers over
// type-checked packages, applies //adlint:ignore suppressions, and
// returns findings in a deterministic order. cmd/adlint and the
// analysistest harness both sit on top of this package so the
// suppression and ordering semantics are identical in CI and in golden
// tests.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Diag is one reported finding after suppression filtering.
type Diag struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// IgnoreDirective is the comment prefix that suppresses a finding:
//
//	//adlint:ignore <analyzer> <reason>
//
// placed either on the flagged line or alone on the line directly
// above it. The reason is mandatory — a suppression that does not say
// why is itself reported as a finding (analyzer name "adlint").
const IgnoreDirective = "//adlint:ignore"

// suppression is one parsed ignore directive.
type suppression struct {
	analyzer string
	line     int // line the directive may silence
}

// Run executes every analyzer over every package and returns surviving
// findings sorted by position then analyzer name. Packages that failed
// to load cleanly abort the run: analyzers must not report against
// half-typed trees.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Diag, error) {
	var diags []Diag
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			return nil, fmt.Errorf("package %s did not type-check: %v", pkg.ImportPath, pkg.Errors[0])
		}
		sup, malformed := collectSuppressions(pkg)
		diags = append(diags, malformed...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if suppressed(sup, a.Name, pos) {
					return
				}
				diags = append(diags, Diag{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// collectSuppressions scans a package's comments for ignore directives.
// A directive silences matching findings on its own line (tail-comment
// form) and on the line directly below it (own-line form). Malformed
// directives (missing analyzer or reason) come back as findings.
func collectSuppressions(pkg *load.Package) (map[string]map[int][]suppression, []Diag) {
	byFile := make(map[string]map[int][]suppression)
	var malformed []Diag
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnoreDirective) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, IgnoreDirective)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diag{
						Analyzer: "adlint",
						Pos:      pos,
						Message:  "malformed suppression: want //adlint:ignore <analyzer> <reason>",
					})
					continue
				}
				m := byFile[pos.Filename]
				if m == nil {
					m = make(map[int][]suppression)
					byFile[pos.Filename] = m
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					m[line] = append(m[line], suppression{analyzer: fields[0], line: line})
				}
			}
		}
	}
	return byFile, malformed
}

func suppressed(sup map[string]map[int][]suppression, analyzer string, pos token.Position) bool {
	m := sup[pos.Filename]
	if m == nil {
		return false
	}
	for _, s := range m[pos.Line] {
		if s.analyzer == analyzer || s.analyzer == "*" {
			return true
		}
	}
	return false
}
