package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analyzers"
	"repro/internal/lint/load"
)

// A suppression without a reason is itself a finding and does not
// silence anything: the golden's discarded Sync error must surface
// alongside the malformed-directive diagnostic.
func TestMalformedSuppressionDoesNotSilence(t *testing.T) {
	dir, err := filepath.Abs("testdata/src/malformed/store")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Load(dir, ".")
	if err != nil {
		t.Fatalf("loading golden: %v", err)
	}
	diags, err := lint.Run(pkgs, analyzers.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var gotMalformed, gotSyncErr bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "adlint" && strings.Contains(d.Message, "malformed suppression"):
			gotMalformed = true
		case d.Analyzer == "syncerr" && strings.Contains(d.Message, "Journal.Sync"):
			gotSyncErr = true
		}
	}
	if !gotMalformed {
		t.Errorf("missing malformed-suppression finding; got %v", diags)
	}
	if !gotSyncErr {
		t.Errorf("reasonless directive silenced the syncerr finding; got %v", diags)
	}
	if len(diags) != 2 {
		t.Errorf("want exactly 2 findings, got %d: %v", len(diags), diags)
	}
}
