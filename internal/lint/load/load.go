// Package load type-checks Go packages for the adlint analyzers
// without golang.org/x/tools/go/packages (the build container has no
// module proxy). It shells out to `go list -export -deps -json` for
// package metadata plus compiled export data — the go command builds
// export files into its own cache, fully offline — parses each target
// package's sources with go/parser, and type-checks them with a
// go/importer "gc" importer whose lookup serves dependencies straight
// from those export files. This is the same layering go/packages uses
// (LoadTypes mode), minus cgo and overlays, which this repo never
// needs.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one parsed, type-checked target package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// Errors holds parse and type errors. A package with errors has
	// best-effort Types/Info and must not be trusted for analysis.
	Errors []error
}

// listPackage mirrors the subset of `go list -json` output we consume.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	ImportMap  map[string]string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists patterns in module directory dir and returns the matched
// packages parsed and type-checked, dependencies resolved from export
// data. Patterns are anything `go list` accepts; `./...` skips
// testdata directories but explicit testdata paths load fine, which is
// exactly what the analysistest harness wants.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Export,ImportMap,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	vendorMap := make(map[string]string)
	var roots []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		p := lp
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for src, dst := range p.ImportMap {
			vendorMap[src] = dst
		}
		if !p.DepOnly {
			roots = append(roots, &p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := vendorMap[path]; ok {
			path = mapped
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (package failed to build?)", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range roots {
		if lp.Name == "" && lp.Error != nil {
			return nil, fmt.Errorf("go list: %s", lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("package %s uses cgo, which adlint's loader does not support", lp.ImportPath)
		}
		pkg := &Package{
			ImportPath: lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			Fset:       fset,
		}
		if lp.Error != nil {
			pkg.Errors = append(pkg.Errors, fmt.Errorf("%s", lp.Error.Err))
		}
		for _, f := range lp.GoFiles {
			af, err := parser.ParseFile(fset, filepath.Join(lp.Dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
			if af != nil {
				pkg.Files = append(pkg.Files, af)
			}
			if err != nil {
				pkg.Errors = append(pkg.Errors, err)
			}
		}
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		cfg := &types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
			Error: func(err error) {
				pkg.Errors = append(pkg.Errors, err)
			},
		}
		tp, _ := cfg.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
		pkg.Types = tp
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
