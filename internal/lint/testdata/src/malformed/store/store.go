// Package store seeds a malformed suppression: the directive below is
// missing its reason, so it must NOT silence the finding it sits on and
// must itself be reported (analyzer "adlint").
package store

type Journal struct{}

func (j *Journal) Sync() error { return nil }

func flush(j *Journal) {
	//adlint:ignore syncerr
	j.Sync()
}
