// Package loadgen is the sustained-load harness for adserve (ROADMAP
// item 5): it replays corpusgen-derived delta streams against a running
// server at configurable concurrency across many corpora, mixing in
// /report and /findings reads, and reports throughput (deltas/sec,
// reads/sec), latency percentiles (p50/p99), and journal fsync
// amortization (fsyncs-per-delta) — the numbers the latency-only
// benchmarks never see.
//
// The harness is deliberately black-box: it speaks only the public HTTP
// API, so the same Run drives an in-process httptest server (the
// LOAD_SMOKE CI gate, cmd/adload's default) or a remote adserve
// (-addr). Every worker owns a private module per corpus, so deltas
// from different workers land on disjoint shards — the concurrency the
// service's shard-aware locking is built to serve — while all workers
// of one corpus still contend on the corpus commit lock and journal,
// which is exactly where group commit has to earn its keep.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corpusgen"
	"repro/internal/obs"
)

// Config tunes a load run. Zero fields take the defaults documented on
// each; the zero Config is a usable smoke burst.
type Config struct {
	// Corpora is the number of distinct corpora to create and storm
	// (default 1). Workers are assigned round-robin.
	Corpora int
	// Concurrency is the number of concurrent workers (default 8).
	Concurrency int
	// Deltas is the total number of POST /delta requests to issue
	// across all workers (default 200).
	Deltas int
	// ReadEvery makes each worker issue one GET (/findings and /report
	// alternating) per ReadEvery of its deltas; 0 disables reads.
	ReadEvery int
	// Batch is the number of files each POST /delta carries (default 1).
	// Every request still counts as one delta; with Batch > 1 each
	// worker edits Batch private files per request, measuring how the
	// batched commit path amortizes the per-commit costs (one journal
	// record, one fsync, one index update) across files.
	Batch int
	// Modules and FilesPerModule shape each generated base corpus
	// (defaults 8 and 4; violations and CUDA files use corpusgen
	// defaults so read payloads carry realistic finding volumes).
	Modules        int
	FilesPerModule int
	// Seed drives the base corpora (corpus i uses Seed+i) and keeps the
	// whole run replayable.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Corpora <= 0 {
		c.Corpora = 1
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Deltas <= 0 {
		c.Deltas = 200
	}
	if c.ReadEvery < 0 {
		c.ReadEvery = 0
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Modules <= 0 {
		c.Modules = 8
	}
	if c.FilesPerModule <= 0 {
		c.FilesPerModule = 4
	}
	if c.Seed == 0 {
		c.Seed = 26262
	}
	return c
}

// Result is one load run's scorecard. JSON field names match the
// BENCH_pipeline.json "load" entry so a run can be recorded verbatim.
type Result struct {
	Corpora     int `json:"corpora"`
	Concurrency int `json:"concurrency"`
	BaseFiles   int `json:"base_files_per_corpus"`
	// Batch is the number of files each delta request carried.
	Batch int `json:"batch"`

	Deltas int `json:"deltas"`
	// FileDeltas is Deltas x Batch: the number of per-file edits the
	// run landed (the unit sequential one-file workloads are billed in).
	FileDeltas int           `json:"file_deltas"`
	Reads      int           `json:"reads"`
	Errors     int           `json:"errors"`
	ElapsedNs  time.Duration `json:"elapsed_ns"`

	DeltasPerSec float64 `json:"deltas_per_sec"`
	// FileDeltasPerSec is the batch-aware throughput: file edits landed
	// per second (equal to DeltasPerSec at Batch 1).
	FileDeltasPerSec float64 `json:"file_deltas_per_sec"`
	ReadsPerSec      float64 `json:"reads_per_sec"`

	DeltaP50 time.Duration `json:"delta_p50_ns"`
	DeltaP99 time.Duration `json:"delta_p99_ns"`
	ReadP50  time.Duration `json:"read_p50_ns"`
	ReadP99  time.Duration `json:"read_p99_ns"`

	// Fsyncs is the cumulative journal record-durability fsync count
	// summed over all corpora at the end of the run (0 against an
	// in-memory server), and FsyncsPerDelta its ratio to Deltas — the
	// group-commit amortization metric. FsyncsPerFileDelta divides by
	// FileDeltas instead: the batch-amortized durability cost per file
	// edit (each batch is one journal record, so it shrinks ~1/Batch).
	Fsyncs             int64   `json:"fsyncs"`
	FsyncsPerDelta     float64 `json:"fsyncs_per_delta"`
	FsyncsPerFileDelta float64 `json:"fsyncs_per_file_delta"`

	// Machine records the parallelism the numbers were taken under, so
	// recorded scorecards stay interpretable across hardware.
	Machine struct {
		GOMAXPROCS int `json:"gomaxprocs"`
		NumCPU     int `json:"num_cpu"`
	} `json:"machine"`

	// Server diffs the server's own /statz counters across the run
	// against what this client observed, making the run a metrics
	// correctness oracle (nil when the server has no /statz). Valid
	// only when the harness is the server's sole traffic.
	Server *ServerStats `json:"server,omitempty"`
}

// ServerStats is the /statz diff block of a Result. Each server-side
// field is the counter's increase between the pre-run and post-run
// snapshots; the client fields are what this harness counted itself.
// On a clean run the pairs must match exactly: the server counts acks
// before the response reaches the wire, so everything the client saw
// acknowledged is already in /statz by the time Run returns.
type ServerStats struct {
	DeltasAcked     int64 `json:"deltas_acked"`
	FileDeltasAcked int64 `json:"file_deltas_acked"`
	Fsyncs          int64 `json:"fsyncs"`
	Reads           int64 `json:"reads"`

	ClientDeltasAcked     int64 `json:"client_deltas_acked"`
	ClientFileDeltasAcked int64 `json:"client_file_deltas_acked"`
	ClientFsyncs          int64 `json:"client_fsyncs"`
	ClientReads           int64 `json:"client_reads"`

	// MatchesClient is true when every pair above agrees.
	MatchesClient bool `json:"matches_client"`
}

// String renders the human summary cmd/adload prints.
func (r *Result) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "load: %d corpora x %d files, %d workers, batch %d (gomaxprocs %d)\n",
		r.Corpora, r.BaseFiles, r.Concurrency, r.Batch, r.Machine.GOMAXPROCS)
	fmt.Fprintf(&b, "  deltas: %d in %v  (%.1f/sec, p50 %v, p99 %v)\n",
		r.Deltas, r.ElapsedNs.Round(time.Millisecond), r.DeltasPerSec, r.DeltaP50.Round(time.Microsecond), r.DeltaP99.Round(time.Microsecond))
	if r.Batch > 1 {
		fmt.Fprintf(&b, "  files:  %d  (%.1f file-deltas/sec)\n", r.FileDeltas, r.FileDeltasPerSec)
	}
	if r.Reads > 0 {
		fmt.Fprintf(&b, "  reads:  %d  (%.1f/sec, p50 %v, p99 %v)\n",
			r.Reads, r.ReadsPerSec, r.ReadP50.Round(time.Microsecond), r.ReadP99.Round(time.Microsecond))
	}
	if r.Fsyncs > 0 {
		fmt.Fprintf(&b, "  fsyncs: %d  (%.3f per delta, %.3f per file-delta)\n",
			r.Fsyncs, r.FsyncsPerDelta, r.FsyncsPerFileDelta)
	}
	if r.Errors > 0 {
		fmt.Fprintf(&b, "  ERRORS: %d\n", r.Errors)
	}
	if s := r.Server; s != nil {
		verdict := "MISMATCH"
		if s.MatchesClient {
			verdict = "match"
		}
		fmt.Fprintf(&b, "  server: %s  (acked %d/%d, files %d/%d, fsyncs %d/%d, reads %d/%d server/client)\n",
			verdict,
			s.DeltasAcked, s.ClientDeltasAcked,
			s.FileDeltasAcked, s.ClientFileDeltasAcked,
			s.Fsyncs, s.ClientFsyncs,
			s.Reads, s.ClientReads)
	}
	return b.String()
}

// corpusName names corpus i of a run.
func corpusName(i int) string { return fmt.Sprintf("load-%02d", i) }

// probeSrc is the delta payload of worker w's i-th edit: a small, clean,
// always-distinct function so every delta genuinely re-parses (an
// unchanged body would be skipped — and never journaled — by the
// incremental engine).
func probeSrc(w, i int) string {
	return fmt.Sprintf("int LoadProbeW%dN%d(int x) {\n  if (x > %d) {\n    x = x - 1;\n  }\n  return x;\n}\n", w, i, i%7)
}

// workerPath is file j of worker w's private batch: each worker owns
// one module (the path's leading segment), so deltas from different
// workers touch disjoint shards and only meet at the corpus commit
// lock + journal; within a worker the batch fans out over j.
func workerPath(w, j int) string {
	return fmt.Sprintf("loadw%03d/probe_w%03d_f%02d.cc", w, w, j)
}

// Setup creates the run's corpora over the HTTP API (POST /assess with
// inline generated files) and returns the per-corpus base file count.
func Setup(client *http.Client, baseURL string, cfg Config) (int, error) {
	cfg = cfg.withDefaults()
	baseFiles := 0
	for i := 0; i < cfg.Corpora; i++ {
		g := corpusgen.New(corpusgen.Params{
			Modules:        cfg.Modules,
			FilesPerModule: cfg.FilesPerModule,
		}, cfg.Seed+int64(i))
		files := make(map[string]string, g.Len())
		for _, p := range g.Paths() {
			files[p] = g.Source(p)
		}
		baseFiles = len(files)
		body, err := json.Marshal(map[string]interface{}{
			"corpus": corpusName(i),
			"files":  files,
		})
		if err != nil {
			return 0, err
		}
		resp, err := client.Post(baseURL+"/assess", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, fmt.Errorf("loadgen: assess %s: %w", corpusName(i), err)
		}
		slurp, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("loadgen: assess %s: %s: %s", corpusName(i), resp.Status, slurp)
		}
	}
	return baseFiles, nil
}

// deltaResponse is the slice of the /delta response the harness reads.
type deltaResponse struct {
	Journal *struct {
		Fsyncs int64 `json:"fsyncs"`
	} `json:"journal"`
}

// Run executes one load run against an already-Setup server and
// aggregates the scorecard. Individual request failures are counted,
// not fatal, so a partial regression still produces numbers.
func Run(client *http.Client, baseURL string, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Corpora: cfg.Corpora, Concurrency: cfg.Concurrency, Batch: cfg.Batch}
	res.Machine.GOMAXPROCS = runtime.GOMAXPROCS(0)
	res.Machine.NumCPU = runtime.NumCPU()

	// fsyncs[c] tracks the cumulative per-corpus counter via a CAS max:
	// it is monotonic server-side, but responses race client-side.
	fsyncs := make([]atomic.Int64, cfg.Corpora)
	var tickets atomic.Int64
	var errs atomic.Int64
	// acked counts deltas the client saw acknowledged (200 + parseable
	// body) and readsOK the fully-received 200 reads — the client side
	// of the /statz diff oracle (res.Deltas/res.Reads include failures).
	var acked, readsOK atomic.Int64

	before := fetchStatz(client, baseURL)

	type lats struct{ delta, read []time.Duration }
	all := make([]lats, cfg.Concurrency)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			corpus := w % cfg.Corpora
			name := corpusName(corpus)
			for n := 0; ; n++ {
				t := tickets.Add(1) - 1
				if t >= int64(cfg.Deltas) {
					return
				}
				// One request carries the worker's whole batch: Batch
				// private files, each with always-distinct content so
				// every file-delta genuinely re-parses and journals.
				changed := make(map[string]string, cfg.Batch)
				for j := 0; j < cfg.Batch; j++ {
					changed[workerPath(w, j)] = probeSrc(w, int(t)*cfg.Batch+j)
				}
				body, _ := json.Marshal(map[string]interface{}{
					"corpus":  name,
					"changed": changed,
				})
				begin := time.Now()
				resp, err := client.Post(baseURL+"/delta", "application/json", bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				var dr deltaResponse
				derr := json.NewDecoder(resp.Body).Decode(&dr)
				_ = resp.Body.Close()
				all[w].delta = append(all[w].delta, time.Since(begin))
				if resp.StatusCode != http.StatusOK || derr != nil {
					errs.Add(1)
					continue
				}
				acked.Add(1)
				if dr.Journal != nil {
					for {
						cur := fsyncs[corpus].Load()
						if dr.Journal.Fsyncs <= cur || fsyncs[corpus].CompareAndSwap(cur, dr.Journal.Fsyncs) {
							break
						}
					}
				}
				if cfg.ReadEvery > 0 && n%cfg.ReadEvery == 0 {
					ep := "/findings?corpus="
					if n%(2*cfg.ReadEvery) == 0 {
						ep = "/report?corpus="
					}
					begin := time.Now()
					resp, err := client.Get(baseURL + ep + name)
					if err != nil {
						errs.Add(1)
						continue
					}
					_, cerr := io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
					all[w].read = append(all[w].read, time.Since(begin))
					if resp.StatusCode != http.StatusOK || cerr != nil {
						errs.Add(1)
					} else {
						readsOK.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	res.ElapsedNs = time.Since(start)

	var deltas, reads []time.Duration
	for _, l := range all {
		deltas = append(deltas, l.delta...)
		reads = append(reads, l.read...)
	}
	res.Deltas, res.Reads, res.Errors = len(deltas), len(reads), int(errs.Load())
	res.FileDeltas = res.Deltas * cfg.Batch
	secs := res.ElapsedNs.Seconds()
	if secs > 0 {
		res.DeltasPerSec = float64(res.Deltas) / secs
		res.FileDeltasPerSec = float64(res.FileDeltas) / secs
		res.ReadsPerSec = float64(res.Reads) / secs
	}
	res.DeltaP50, res.DeltaP99 = percentile(deltas, 50), percentile(deltas, 99)
	res.ReadP50, res.ReadP99 = percentile(reads, 50), percentile(reads, 99)
	for i := range fsyncs {
		res.Fsyncs += fsyncs[i].Load()
	}
	if res.Deltas > 0 {
		res.FsyncsPerDelta = float64(res.Fsyncs) / float64(res.Deltas)
	}
	if res.FileDeltas > 0 {
		res.FsyncsPerFileDelta = float64(res.Fsyncs) / float64(res.FileDeltas)
	}
	if after := fetchStatz(client, baseURL); before != nil && after != nil {
		s := &ServerStats{
			DeltasAcked:     after.counter("adserve_deltas_acked_total", nil) - before.counter("adserve_deltas_acked_total", nil),
			FileDeltasAcked: after.counter("adserve_delta_files_acked_total", nil) - before.counter("adserve_delta_files_acked_total", nil),
			Fsyncs:          after.counter("adserve_journal_fsyncs_total", nil) - before.counter("adserve_journal_fsyncs_total", nil),
			Reads:           diffReads(before, after),

			ClientDeltasAcked:     acked.Load(),
			ClientFileDeltasAcked: acked.Load() * int64(cfg.Batch),
			ClientFsyncs:          res.Fsyncs,
			ClientReads:           readsOK.Load(),
		}
		s.MatchesClient = s.DeltasAcked == s.ClientDeltasAcked &&
			s.FileDeltasAcked == s.ClientFileDeltasAcked &&
			s.Fsyncs == s.ClientFsyncs &&
			s.Reads == s.ClientReads
		res.Server = s
	}
	return res, nil
}

// statzSnapshot is a decoded /statz response.
type statzSnapshot struct {
	Metrics []obs.MetricValue `json:"metrics"`
}

// fetchStatz reads the server's metrics snapshot, or nil when the
// server has no /statz (the oracle degrades to absent, not failed).
func fetchStatz(client *http.Client, baseURL string) *statzSnapshot {
	resp, err := client.Get(baseURL + "/statz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	var snap statzSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil
	}
	return &snap
}

// counter sums the series of name whose labels include every pair in
// want (nil matches all series of the name).
func (s *statzSnapshot) counter(name string, want map[string]string) int64 {
	var total int64
	for _, m := range s.Metrics {
		if m.Name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if m.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			total += m.Value
		}
	}
	return total
}

// diffReads is the run's server-observed successful read count: the
// increase in 2xx responses on the two read endpoints.
func diffReads(before, after *statzSnapshot) int64 {
	var total int64
	for _, ep := range []string{"/report", "/findings"} {
		want := map[string]string{"endpoint": ep, "class": "2xx"}
		total += after.counter("adserve_requests_total", want) - before.counter("adserve_requests_total", want)
	}
	return total
}

// percentile returns the p-th percentile of ds (nearest-rank on a
// sorted copy; zero for an empty slice).
func percentile(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := len(s)*p/100 - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
