package metrics

import (
	"sort"
	"strings"

	"repro/internal/artifact"
	"repro/internal/ccast"
)

// ArchMetrics captures the measurable architectural-design properties of
// ISO 26262-6 Table 3 (the paper's Table 2) for one module.
type ArchMetrics struct {
	Module string
	// LOC is the module size; the paper notes Apollo modules span
	// 5k-60k LOC against an expected restricted component size.
	LOC int
	// MaxInterfaceParams is the largest parameter list exposed by any
	// function in the module ("restricted size of interfaces").
	MaxInterfaceParams  int
	MeanInterfaceParams float64
	// FanOut counts distinct other modules whose functions this module
	// calls ("restricted coupling").
	FanOut int
	// FanIn counts distinct other modules calling into this module.
	FanIn int
	// Cohesion is the fraction of resolved calls from this module that
	// stay within the module ("high cohesion"); 1.0 is fully cohesive.
	Cohesion float64
	// ExternalCalls / InternalCalls are the resolved call counts behind
	// Cohesion.
	InternalCalls int
	ExternalCalls int
	// ThreadPrimitives counts uses of threading/scheduling APIs
	// ("appropriate scheduling properties" evidence).
	ThreadPrimitives int
	// InterruptHandlers counts registered signal/interrupt handlers
	// ("restricted use of interrupts" evidence).
	InterruptHandlers int
}

// Hierarchy is the component tree: framework → module → file → function.
// Its existence (and machine-readability) evidences Table 2 item 1.
type Hierarchy struct {
	Modules []HierarchyModule
}

// HierarchyModule is one module's subtree.
type HierarchyModule struct {
	Name  string
	Files []HierarchyFile
}

// HierarchyFile is one file's function list.
type HierarchyFile struct {
	Path      string
	Functions []string
}

// schedulingAPIs are call targets that indicate thread/scheduler use.
var schedulingAPIs = map[string]bool{
	"pthread_create": true, "pthread_join": true, "pthread_setschedparam": true,
	"std::thread": true, "sched_setscheduler": true, "usleep": true,
	"sleep": true, "nanosleep": true, "sem_wait": true, "sem_post": true,
	"pthread_mutex_lock": true, "pthread_mutex_unlock": true,
}

// interruptAPIs are call targets that register signal/interrupt handlers.
var interruptAPIs = map[string]bool{
	"signal": true, "sigaction": true, "request_irq": true,
}

// AnalyzeArch computes architectural metrics for every module. It builds
// a fresh artifact index internally; callers that already hold one should
// use AnalyzeArchIndexed.
func AnalyzeArch(units map[string]*ccast.TranslationUnit) []*ArchMetrics {
	return AnalyzeArchIndexed(artifact.Build(units))
}

// AnalyzeArchIndexed computes architectural metrics from the shared
// artifact cache. The seed implementation re-walked every function body
// for its call expressions; the cached per-function call inventory makes
// this a pure aggregation pass with no AST traversals at all.
func AnalyzeArchIndexed(ix *artifact.Index) []*ArchMetrics {
	// Function name → defining module. Unqualified last path segment is
	// used, matching how the corpus calls across modules.
	funcModule := make(map[string]string, len(ix.Funcs))
	for _, fa := range ix.Funcs {
		funcModule[lastName(fa.Decl.Name)] = fa.Module
	}

	type modState struct {
		am        *ArchMetrics
		sumPar    int
		nFuncs    int
		calls     map[string]int // callee module → count
		callersOf map[string]bool
	}
	mods := make(map[string]*modState)
	get := func(name string) *modState {
		ms := mods[name]
		if ms == nil {
			ms = &modState{am: &ArchMetrics{Module: name}, calls: make(map[string]int)}
			mods[name] = ms
		}
		return ms
	}

	for _, p := range ix.Paths {
		tu := ix.Units[p]
		mod := tu.File.ModuleName()
		ms := get(mod)
		ms.am.LOC += tu.File.LineCount()
		for _, fa := range ix.UnitFuncs(p) {
			fn := fa.Decl
			ms.nFuncs++
			ms.sumPar += len(fn.Params)
			if len(fn.Params) > ms.am.MaxInterfaceParams {
				ms.am.MaxInterfaceParams = len(fn.Params)
			}
			for _, callee := range fa.Calls {
				if schedulingAPIs[callee] {
					ms.am.ThreadPrimitives++
				}
				if interruptAPIs[callee] {
					ms.am.InterruptHandlers++
				}
				if tgt, ok := funcModule[lastName(callee)]; ok {
					ms.calls[tgt]++
					if tgt == mod {
						ms.am.InternalCalls++
					} else {
						ms.am.ExternalCalls++
					}
				}
			}
		}
	}

	// Fan-in/fan-out and cohesion.
	for name, ms := range mods {
		for tgt := range ms.calls {
			if tgt != name {
				ms.am.FanOut++
				if other := mods[tgt]; other != nil {
					if other.callersOf == nil {
						other.callersOf = make(map[string]bool)
					}
					other.callersOf[name] = true
				}
			}
		}
	}
	var out []*ArchMetrics
	names := make([]string, 0, len(mods))
	for n := range mods {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ms := mods[n]
		ms.am.FanIn = len(ms.callersOf)
		total := ms.am.InternalCalls + ms.am.ExternalCalls
		if total > 0 {
			ms.am.Cohesion = float64(ms.am.InternalCalls) / float64(total)
		} else {
			ms.am.Cohesion = 1.0
		}
		if ms.nFuncs > 0 {
			ms.am.MeanInterfaceParams = float64(ms.sumPar) / float64(ms.nFuncs)
		}
		out = append(out, ms.am)
	}
	return out
}

// BuildHierarchy derives the component tree from parsed units.
func BuildHierarchy(units map[string]*ccast.TranslationUnit) *Hierarchy {
	byMod := make(map[string][]HierarchyFile)
	paths := make([]string, 0, len(units))
	for p := range units {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		tu := units[p]
		hf := HierarchyFile{Path: p}
		for _, fn := range tu.Funcs() {
			hf.Functions = append(hf.Functions, fn.Name)
		}
		mod := tu.File.ModuleName()
		byMod[mod] = append(byMod[mod], hf)
	}
	h := &Hierarchy{}
	names := make([]string, 0, len(byMod))
	for n := range byMod {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h.Modules = append(h.Modules, HierarchyModule{Name: n, Files: byMod[n]})
	}
	return h
}

func lastName(qualified string) string {
	if i := strings.LastIndex(qualified, "::"); i >= 0 {
		return qualified[i+2:]
	}
	return qualified
}
