package metrics

import (
	"repro/internal/artifact"
	"repro/internal/par"
)

// ArchCache is the shard-aware counterpart of AnalyzeArchIndexed. The
// architectural metrics are inherently cross-module (fan-in/out and
// cohesion resolve every call against the corpus-wide function→module
// table), so the cache keeps a RESOLVED partial per module shard — the
// shard's LOC/interface/thread counters plus its call counts already
// mapped to target modules — keyed on (shard generation, export
// overlay). While the overlay is unchanged the function→module table
// cannot have changed, so clean shards' partials stay valid and a warm
// call recomputes only the dirty shard before folding the k partials
// into the final rows. Output is identical to AnalyzeArchIndexed.
//
// ArchCache is not safe for concurrent use; the Assessor serializes
// access.
type ArchCache struct {
	ix      *artifact.Index
	overlay uint64
	haveOv  bool
	shards  map[string]*archShard
}

// archShard is one module's resolved partial.
type archShard struct {
	gen   uint64
	valid bool

	loc     int
	nFuncs  int
	sumPar  int
	maxPar  int
	threads int
	irqs    int
	// calls counts resolved calls by target module.
	calls    map[string]int
	internal int
	external int
}

// NewArchCache returns an empty architectural-metrics cache.
func NewArchCache() *ArchCache {
	return &ArchCache{shards: make(map[string]*archShard)}
}

// AnalyzeIndexed computes per-module architectural metrics from the
// shared artifact cache, reusing per-shard partials for modules whose
// shard generation is unchanged under an unchanged export overlay.
func (c *ArchCache) AnalyzeIndexed(ix *artifact.Index) []*ArchMetrics {
	ov := ix.ExportOverlay()
	if ix != c.ix || !c.haveOv || ov != c.overlay {
		// The function→module table may have shifted: every resolved
		// partial is suspect.
		for _, as := range c.shards {
			as.valid = false
		}
		c.ix, c.overlay, c.haveOv = ix, ov, true
	}
	names := ix.ShardNames()
	if len(c.shards) > len(names) {
		live := make(map[string]bool, len(names))
		for _, m := range names {
			live[m] = true
		}
		for m := range c.shards {
			if !live[m] {
				delete(c.shards, m)
			}
		}
	}

	// Recompute the dirty partials in parallel: refoldShard reads only
	// the index's shared read-only views (paths, funcs, the
	// function→module table) and writes only its own partial, and the
	// fold below walks shards in sorted name order.
	type dirtyShard struct {
		mod string
		sh  *artifact.Shard
		as  *archShard
	}
	var dirty []dirtyShard
	for _, m := range names {
		sh := ix.Shard(m)
		as := c.shards[m]
		if as == nil {
			as = &archShard{}
			c.shards[m] = as
		}
		if as.valid && as.gen == sh.Gen() {
			continue
		}
		dirty = append(dirty, dirtyShard{m, sh, as})
	}
	par.For(par.Workers(len(dirty)), len(dirty), func(k int) {
		d := dirty[k]
		c.refoldShard(ix, d.mod, d.sh, d.as)
	})

	// Fold the partials into the final rows (sorted module order, the
	// same order AnalyzeArchIndexed emits).
	out := make([]*ArchMetrics, 0, len(names))
	callersOf := make(map[string]map[string]bool, len(names))
	for _, m := range names {
		as := c.shards[m]
		for tgt := range as.calls {
			if tgt == m {
				continue
			}
			if callersOf[tgt] == nil {
				callersOf[tgt] = make(map[string]bool)
			}
			callersOf[tgt][m] = true
		}
	}
	for _, m := range names {
		as := c.shards[m]
		am := &ArchMetrics{
			Module:             m,
			LOC:                as.loc,
			MaxInterfaceParams: as.maxPar,
			ThreadPrimitives:   as.threads,
			InterruptHandlers:  as.irqs,
			InternalCalls:      as.internal,
			ExternalCalls:      as.external,
			FanIn:              len(callersOf[m]),
		}
		for tgt := range as.calls {
			if tgt != m {
				am.FanOut++
			}
		}
		total := as.internal + as.external
		if total > 0 {
			am.Cohesion = float64(as.internal) / float64(total)
		} else {
			am.Cohesion = 1.0
		}
		if as.nFuncs > 0 {
			am.MeanInterfaceParams = float64(as.sumPar) / float64(as.nFuncs)
		}
		out = append(out, am)
	}
	return out
}

// refoldShard recomputes one shard's resolved partial in O(shard).
func (c *ArchCache) refoldShard(ix *artifact.Index, mod string, sh *artifact.Shard, as *archShard) {
	as.loc, as.nFuncs, as.sumPar, as.maxPar = 0, 0, 0, 0
	as.threads, as.irqs, as.internal, as.external = 0, 0, 0, 0
	as.calls = make(map[string]int)
	for _, p := range sh.Paths() {
		as.loc += ix.Units[p].File.LineCount()
	}
	for _, fa := range sh.Funcs() {
		as.nFuncs++
		np := len(fa.Decl.Params)
		as.sumPar += np
		if np > as.maxPar {
			as.maxPar = np
		}
		for _, callee := range fa.Calls {
			if schedulingAPIs[callee] {
				as.threads++
			}
			if interruptAPIs[callee] {
				as.irqs++
			}
			if tgt, ok := ix.FuncModule(lastName(callee)); ok {
				as.calls[tgt]++
				if tgt == mod {
					as.internal++
				} else {
					as.external++
				}
			}
		}
	}
	as.gen, as.valid = sh.Gen(), true
}
