package metrics_test

import (
	"reflect"
	"testing"

	"repro/internal/artifact"
	"repro/internal/ccparse"
	"repro/internal/metrics"
	"repro/internal/srcfile"
)

// requireSameArch compares cached arch rows against the cache-free
// reference by value.
func requireSameArch(t *testing.T, stage string, got, want []*metrics.ArchMetrics) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: row counts differ: %d vs %d", stage, len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(*got[i], *want[i]) {
			t.Fatalf("%s: module %s differs:\n  got  %+v\n  want %+v",
				stage, want[i].Module, *got[i], *want[i])
		}
	}
}

// TestArchCacheMatchesAnalyzeArchIndexed drives the shard-aware arch
// cache through edits that move calls across modules and change the
// function→module table, asserting equality with the cache-free pass at
// every step.
func TestArchCacheMatchesAnalyzeArchIndexed(t *testing.T) {
	ix := parseSet(t, map[string]string{
		"m/a.c": "int fa(int x) { return fb(x) + fc(x); }\n",
		"m/b.c": "int fb(int x) { pthread_mutex_lock(0); return x; }\n",
		"n/c.c": "int fc(int x) { signal(0, 0); return fa(x); }\n",
		"o/d.c": "int fd(int a, int b, int c) { return fa(a) + b + c; }\n",
	})
	c := metrics.NewArchCache()

	requireSameArch(t, "cold", c.AnalyzeIndexed(ix), metrics.AnalyzeArchIndexed(ix))
	requireSameArch(t, "no-op", c.AnalyzeIndexed(ix), metrics.AnalyzeArchIndexed(ix))

	// Body edit that redirects a call: o now calls into n instead of m.
	reparse(t, ix, "o/d.c", "int fd(int a, int b, int c) { return fc(a) + b + c; }\n")
	requireSameArch(t, "redirect", c.AnalyzeIndexed(ix), metrics.AnalyzeArchIndexed(ix))

	// Moving a definition between modules changes the function→module
	// table: every shard's resolution is re-derived.
	reparse(t, ix, "n/c.c", "int fe(int x) { return x; }\n")
	reparse(t, ix, "m/b.c", "int fb(int x) { return x; }\nint fc(int x) { return x + 1; }\n")
	requireSameArch(t, "move", c.AnalyzeIndexed(ix), metrics.AnalyzeArchIndexed(ix))

	// Removal.
	ix.RemoveUnit("o/d.c")
	requireSameArch(t, "remove", c.AnalyzeIndexed(ix), metrics.AnalyzeArchIndexed(ix))
}

// reparse parses one edited file and swaps it into the index.
func reparse(t *testing.T, ix *artifact.Index, path, src string) {
	t.Helper()
	f := &srcfile.File{Path: path, Lang: srcfile.LanguageForPath(path), Src: src}
	tu, errs := ccparse.Parse(f, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse %s: %v", path, errs[0])
	}
	ix.ReplaceUnit(tu)
}
