package metrics

import (
	"repro/internal/artifact"
	"repro/internal/par"
)

// Cache is a per-file metrics cache keyed by content hash. A warm
// AnalyzeIndexed recomputes rows only for files whose content changed
// since the previous call and re-aggregates — the aggregation itself is
// cheap next to the NLOC text scans it avoids. The result is identical
// to the cache-free AnalyzeIndexed over the same index.
//
// File rows depend only on the file's path (module, language) and
// content (lines, NLOC, per-function facts from the artifact cache), so
// a (path, hash) key is exact. Cached *FileMetrics are shared across
// results; callers must treat them as immutable.
//
// Cache is not safe for concurrent use; the Assessor serializes access.
type Cache struct {
	perFile map[string]cacheEntry
	// lastDirty records how many rows the previous AnalyzeIndexed
	// recomputed.
	lastDirty int
}

type cacheEntry struct {
	hash uint64
	fm   *FileMetrics
}

// NewCache returns an empty metrics cache.
func NewCache() *Cache {
	return &Cache{perFile: make(map[string]cacheEntry)}
}

// LastDirty returns the number of file rows the previous AnalyzeIndexed
// recomputed.
func (c *Cache) LastDirty() int { return c.lastDirty }

// AnalyzeIndexed computes framework metrics from the index, reusing
// cached per-file rows for unchanged files.
func (c *Cache) AnalyzeIndexed(ix *artifact.Index) *FrameworkMetrics {
	paths := ix.Paths
	files := make([]*FileMetrics, len(paths))
	var dirty []int
	for i, p := range paths {
		h := ix.Units[p].File.Hash()
		if e, ok := c.perFile[p]; ok && e.hash == h {
			files[i] = e.fm
		} else {
			dirty = append(dirty, i)
		}
	}
	c.lastDirty = len(dirty)
	par.For(par.Workers(len(dirty)), len(dirty), func(k int) {
		i := dirty[k]
		p := paths[i]
		files[i] = analyzeFileIndexed(ix.Units[p], ix.UnitFuncs(p))
	})
	for _, i := range dirty {
		p := paths[i]
		c.perFile[p] = cacheEntry{hash: ix.Units[p].File.Hash(), fm: files[i]}
	}
	if len(c.perFile) > len(paths) {
		live := make(map[string]bool, len(paths))
		for _, p := range paths {
			live[p] = true
		}
		for p := range c.perFile {
			if !live[p] {
				delete(c.perFile, p)
			}
		}
	}
	return aggregate(files)
}
