package metrics

import (
	"sort"

	"repro/internal/artifact"
	"repro/internal/par"
)

// Cache is a shard-aware per-file metrics cache. A warm AnalyzeIndexed
// consults the index's per-module shard generations: clean shards
// contribute their cached file rows AND their cached module partial
// (ModuleMetrics plus the shard's share of the corpus totals) without
// being scanned at all; dirty shards recompute rows only for files whose
// content hash changed and re-fold their partial in O(shard). The global
// result is then a merge of the per-shard row lists (path order) and a
// fold of the partials — O(dirty shard + #shards), not O(corpus) — and
// is identical to the cache-free AnalyzeIndexed over the same index.
//
// File rows depend only on the file's path (module, language) and
// content (lines, NLOC, per-function facts from the artifact cache), so
// a (path, hash) key is exact. Cached *FileMetrics and *ModuleMetrics
// are shared across results; callers must treat them as immutable.
//
// Cache is not safe for concurrent use; the Assessor serializes access.
type Cache struct {
	// Hydrate, when set, is called with the dirty paths of a warm run
	// before their rows are recomputed. A snapshot-restored assessor
	// installs it to re-parse stub units on demand: in the normal flow
	// dirty files arrive freshly parsed and the hook no-ops, but if a
	// restored shard's lazy row block fails to decode, its unchanged
	// files are recomputed from their stubs — whose fabricated function
	// spans would yield wrong rows without hydration.
	Hydrate func(paths []string)

	ix     *artifact.Index
	shards map[string]*metricShard
	// lastDirty records how many rows the previous AnalyzeIndexed
	// recomputed.
	lastDirty int
}

type cacheEntry struct {
	hash uint64
	fm   *FileMetrics
}

// metricShard is the cached state for one module shard.
//
// A snapshot-restored shard starts *sealed* (perFile == nil): its rows
// materialize from the loaders at the first AnalyzeIndexed (the global
// merge reads every shard's rows), while the per-file map — and the
// content hashes inside it — thaw only when a delta dirties the shard.
type metricShard struct {
	gen     uint64
	valid   bool
	perFile map[string]cacheEntry
	files   []*FileMetrics // shard path order
	mm      *ModuleMetrics
	// totals are the shard's contribution to the corpus-wide counters.
	totLOC, totNLOC, totFunc, modWorse int

	// loadRows/thawKeys are the snapshot loaders of a sealed shard (nil
	// otherwise); rowsReady records that files/mm/totals materialized.
	// The loaders stay set until thawEntries so a later dirtying can
	// still build perFile.
	loadRows  func() ([]*FileMetrics, bool)
	thawKeys  func() ([]string, []uint64, bool)
	rowsReady bool
}

// materializeRows decodes a sealed shard's row block and folds its
// partials, leaving the per-file map deferred. False means the block
// would not decode; the caller recomputes the shard. Safe for distinct
// shards concurrently: loaders decode disjoint snapshot extents and
// refold writes only shard-local fields.
func (ms *metricShard) materializeRows(sh *artifact.Shard) bool {
	rows, ok := ms.loadRows()
	if !ok || len(rows) != sh.Len() {
		return false
	}
	ms.files = rows
	ms.refold()
	ms.rowsReady = true
	return true
}

// thawEntries materializes a sealed shard's per-file map (snapshot
// paths, content hashes, rows). False means the block would not decode;
// the caller then recomputes every row of the shard.
func (ms *metricShard) thawEntries() bool {
	if ms.thawKeys == nil {
		return false
	}
	load, thaw := ms.loadRows, ms.thawKeys
	ms.loadRows, ms.thawKeys = nil, nil
	paths, hashes, ok := thaw()
	if !ok || len(paths) != len(hashes) {
		return false
	}
	rows, ok := load()
	if !ok || len(rows) != len(paths) {
		return false
	}
	ms.perFile = make(map[string]cacheEntry, len(paths))
	for i, p := range paths {
		ms.perFile[p] = cacheEntry{hash: hashes[i], fm: rows[i]}
	}
	return true
}

// NewCache returns an empty metrics cache.
func NewCache() *Cache {
	return &Cache{shards: make(map[string]*metricShard)}
}

// LastDirty returns the number of file rows the previous AnalyzeIndexed
// recomputed.
func (c *Cache) LastDirty() int { return c.lastDirty }

// AnalyzeIndexed computes framework metrics from the index, reusing
// cached per-file rows and per-shard aggregates wherever the shard
// generations show nothing changed.
func (c *Cache) AnalyzeIndexed(ix *artifact.Index) *FrameworkMetrics {
	if ix != c.ix {
		// New index: per-file hash entries stay useful (identical
		// content hits), but shard generations are from another world.
		for _, ms := range c.shards {
			ms.valid = false
		}
		c.ix = ix
	}
	names := ix.ShardNames()
	if len(c.shards) > len(names) {
		live := make(map[string]bool, len(names))
		for _, m := range names {
			live[m] = true
		}
		for m := range c.shards {
			if !live[m] {
				delete(c.shards, m)
			}
		}
	}

	// Materialize sealed clean shards' rows on a worker pool before the
	// scan — the first warm run after a lazy restore decodes one snapshot
	// block per shard, and the blocks are independent. A shard whose
	// block fails to decode falls through to the inline retry in pass 1.
	{
		var sealed []*metricShard
		var sealedSh []*artifact.Shard
		for _, m := range names {
			sh := ix.Shard(m)
			ms := c.shards[m]
			if ms != nil && ms.valid && ms.gen == sh.Gen() && ms.loadRows != nil && !ms.rowsReady {
				sealed = append(sealed, ms)
				sealedSh = append(sealedSh, sh)
			}
		}
		par.For(par.Workers(len(sealed)), len(sealed), func(k int) {
			sealed[k].materializeRows(sealedSh[k])
		})
	}

	// Pass 1: find the dirty rows across all dirty shards.
	type slot struct {
		ms *metricShard
		i  int // index into ms.files
	}
	var dirtyPaths []string
	var dirtySlots []slot
	var dirtyShards []*metricShard
	for _, m := range names {
		sh := ix.Shard(m)
		ms := c.shards[m]
		if ms == nil {
			ms = &metricShard{perFile: make(map[string]cacheEntry)}
			c.shards[m] = ms
		}
		if ms.valid && ms.gen == sh.Gen() {
			if ms.loadRows == nil || ms.rowsReady {
				continue
			}
			// Sealed clean shard the parallel pre-pass could not
			// materialize: one inline retry.
			if ms.materializeRows(sh) {
				continue
			}
			// The shard's snapshot block would not decode: recompute it.
			ms.loadRows, ms.thawKeys = nil, nil
			ms.perFile = make(map[string]cacheEntry)
			ms.valid = false
		}
		if ms.perFile == nil && !ms.thawEntries() {
			ms.perFile = make(map[string]cacheEntry)
		}
		paths := sh.Paths()
		ms.files = make([]*FileMetrics, len(paths))
		for i, p := range paths {
			h := ix.Units[p].File.Hash()
			if e, ok := ms.perFile[p]; ok && e.hash == h {
				ms.files[i] = e.fm
			} else {
				dirtyPaths = append(dirtyPaths, p)
				dirtySlots = append(dirtySlots, slot{ms, i})
			}
		}
		if len(ms.perFile) > len(paths) {
			live := make(map[string]bool, len(paths))
			for _, p := range paths {
				live[p] = true
			}
			for p := range ms.perFile {
				if !live[p] {
					delete(ms.perFile, p)
				}
			}
		}
		ms.gen = sh.Gen()
		dirtyShards = append(dirtyShards, ms)
	}
	c.lastDirty = len(dirtyPaths)
	if c.Hydrate != nil && len(dirtyPaths) > 0 {
		c.Hydrate(dirtyPaths)
	}

	// Pass 2: recompute the dirty rows in parallel (the NLOC text scans
	// dominate).
	rows := make([]*FileMetrics, len(dirtyPaths))
	par.For(par.Workers(len(dirtyPaths)), len(dirtyPaths), func(k int) {
		p := dirtyPaths[k]
		rows[k] = analyzeFileIndexed(ix.Units[p], ix.UnitFuncs(p))
	})
	for k, p := range dirtyPaths {
		dirtySlots[k].ms.files[dirtySlots[k].i] = rows[k]
		dirtySlots[k].ms.perFile[p] = cacheEntry{hash: ix.Units[p].File.Hash(), fm: rows[k]}
	}

	// Pass 3: re-fold the dirty shards' partials in parallel — refold
	// reads and writes only shard-local state, and the global fold below
	// walks shards in sorted name order.
	par.For(par.Workers(len(dirtyShards)), len(dirtyShards), func(k int) {
		dirtyShards[k].refold()
		dirtyShards[k].valid = true
	})

	// Global result: merge row lists in path order, fold partials.
	out := &FrameworkMetrics{Files: c.mergeFiles(ix)}
	out.Modules = make([]*ModuleMetrics, 0, len(names))
	for _, m := range names {
		ms := c.shards[m]
		if ms.mm != nil {
			out.Modules = append(out.Modules, ms.mm)
		}
		out.TotalLOC += ms.totLOC
		out.TotalNLOC += ms.totNLOC
		out.TotalFunc += ms.totFunc
		out.ModerateOrWorse += ms.modWorse
	}
	return out
}

// refold recomputes the shard's ModuleMetrics and totals from its file
// rows. Every counter is an integer, so folding per shard and summing
// across shards yields exactly what a flat aggregate over all files
// would.
func (ms *metricShard) refold() {
	ms.totLOC, ms.totNLOC, ms.totFunc, ms.modWorse = 0, 0, 0, 0
	var mm *ModuleMetrics
	for _, fm := range ms.files {
		if mm == nil {
			mm = &ModuleMetrics{Name: fm.Module, OverCCN: make(map[int]int)}
		}
		mm.Files++
		mm.LOC += fm.LOC
		mm.NLOC += fm.NLOC
		ms.totLOC += fm.LOC
		ms.totNLOC += fm.NLOC
		for _, fn := range fm.Functions {
			mm.Functions++
			ms.totFunc++
			mm.SumCCN += fn.CCN
			if fn.CCN > mm.MaxCCN {
				mm.MaxCCN = fn.CCN
			}
			for _, th := range Thresholds {
				if fn.CCN > th {
					mm.OverCCN[th]++
				}
			}
			if fn.CCN >= 11 {
				ms.modWorse++
			}
		}
	}
	ms.mm = mm
}

// mergeFiles assembles the global file-row list in sorted path order
// from the per-shard lists. Module shards normally own disjoint path
// ranges (the module is the leading path segment), so this is a
// concatenation; interleaved ranges (explicit module overrides) fall
// back to a stable sort.
func (c *Cache) mergeFiles(ix *artifact.Index) []*FileMetrics {
	type seg struct {
		first string
		last  string
		files []*FileMetrics
	}
	segs := make([]seg, 0, len(c.shards))
	n := 0
	for _, m := range ix.ShardNames() {
		ms := c.shards[m]
		if len(ms.files) == 0 {
			continue
		}
		segs = append(segs, seg{ms.files[0].Path, ms.files[len(ms.files)-1].Path, ms.files})
		n += len(ms.files)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	disjoint := true
	for i := 1; i < len(segs); i++ {
		if segs[i-1].last > segs[i].first {
			disjoint = false
			break
		}
	}
	out := make([]*FileMetrics, 0, n)
	for _, sg := range segs {
		out = append(out, sg.files...)
	}
	if !disjoint {
		sort.SliceStable(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	}
	return out
}
