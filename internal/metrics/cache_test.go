package metrics_test

import (
	"reflect"
	"testing"

	"repro/internal/artifact"
	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/metrics"
	"repro/internal/srcfile"
)

func parseSet(t *testing.T, srcs map[string]string) *artifact.Index {
	t.Helper()
	fs := srcfile.NewFileSet()
	for p, src := range srcs {
		fs.AddSource(p, src)
	}
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	return artifact.Build(units)
}

// requireSameMetrics compares the cached result against the cache-free
// reference field by field (FileMetrics are compared by value, not
// pointer, since the cache intentionally shares rows).
func requireSameMetrics(t *testing.T, stage string, got, want *metrics.FrameworkMetrics) {
	t.Helper()
	if got.TotalLOC != want.TotalLOC || got.TotalNLOC != want.TotalNLOC ||
		got.TotalFunc != want.TotalFunc || got.ModerateOrWorse != want.ModerateOrWorse {
		t.Fatalf("%s: totals differ: %+v vs %+v", stage, got, want)
	}
	if len(got.Files) != len(want.Files) {
		t.Fatalf("%s: file counts differ: %d vs %d", stage, len(got.Files), len(want.Files))
	}
	for i := range got.Files {
		g, w := got.Files[i], want.Files[i]
		if g.Path != w.Path || g.Module != w.Module || g.Lang != w.Lang ||
			g.LOC != w.LOC || g.NLOC != w.NLOC || len(g.Functions) != len(w.Functions) {
			t.Fatalf("%s: file row %s differs", stage, g.Path)
		}
		for j := range g.Functions {
			if !reflect.DeepEqual(*g.Functions[j], *w.Functions[j]) {
				t.Fatalf("%s: function row %s/%s differs", stage, g.Path, g.Functions[j].Name)
			}
		}
	}
	if len(got.Modules) != len(want.Modules) {
		t.Fatalf("%s: module counts differ", stage)
	}
	for i := range got.Modules {
		if !reflect.DeepEqual(*got.Modules[i], *want.Modules[i]) {
			t.Fatalf("%s: module %s differs", stage, got.Modules[i].Name)
		}
	}
}

func TestCacheMatchesAnalyzeIndexed(t *testing.T) {
	ix := parseSet(t, map[string]string{
		"m/a.c": "int fa(int x) { if (x) { return 1; } return 0; }\n",
		"m/b.c": "// comment\nint fb(void) { return 2; }\n",
		"n/c.c": "int gc;\nint fc(int a, int b) { return a > b ? a : b; }\n",
	})
	c := metrics.NewCache()

	requireSameMetrics(t, "cold", c.AnalyzeIndexed(ix), metrics.AnalyzeIndexed(ix))
	if c.LastDirty() != 3 {
		t.Fatalf("cold dirty = %d, want 3", c.LastDirty())
	}

	requireSameMetrics(t, "no-op", c.AnalyzeIndexed(ix), metrics.AnalyzeIndexed(ix))
	if c.LastDirty() != 0 {
		t.Fatalf("no-op dirty = %d, want 0", c.LastDirty())
	}

	// Edit one file: only that row recomputes.
	f := &srcfile.File{Path: "m/b.c", Lang: srcfile.LangC,
		Src: "int fb(void) { int k; k = 3; return k; }\n"}
	tu, errs := ccparse.Parse(f, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	ix.ReplaceUnit(tu)
	requireSameMetrics(t, "edit", c.AnalyzeIndexed(ix), metrics.AnalyzeIndexed(ix))
	if c.LastDirty() != 1 {
		t.Fatalf("edit dirty = %d, want 1", c.LastDirty())
	}

	// Remove one file: nothing recomputes, stale entry dropped.
	ix.RemoveUnit("m/a.c")
	requireSameMetrics(t, "remove", c.AnalyzeIndexed(ix), metrics.AnalyzeIndexed(ix))
	if c.LastDirty() != 0 {
		t.Fatalf("remove dirty = %d, want 0", c.LastDirty())
	}
}

// TestCacheShardRecreation is the regression gate for shard-generation
// collisions: a module removed in one delta and re-created in a later
// one gets a brand-new artifact shard. Generations are issued from an
// index-wide sequence precisely so the re-created shard can never
// repeat a generation its predecessor handed out — otherwise the cache
// would serve the deleted corpus state's rows for the module.
func TestCacheShardRecreation(t *testing.T) {
	ix := parseSet(t, map[string]string{
		"a/1.c": "int fa1(int x) { return x; }\nint fa2(int x) { return x + 1; }\n",
		"b/1.c": "int fb(int x) { return x; }\n",
	})
	c := metrics.NewCache()
	requireSameMetrics(t, "cold", c.AnalyzeIndexed(ix), metrics.AnalyzeIndexed(ix))

	// Delta 1: remove all of module a, add module c — the shard count
	// stays the same, and shard a dies.
	added, errs := ccparse.Parse(&srcfile.File{Path: "c/1.c", Lang: srcfile.LangC,
		Src: "int fcx(int x) { return x; }\n"}, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	ix.Apply([]*ccast.TranslationUnit{added}, []string{"a/1.c"})
	requireSameMetrics(t, "kill shard a", c.AnalyzeIndexed(ix), metrics.AnalyzeIndexed(ix))

	// Delta 2: re-create module a with different content (one function,
	// not two). A stale cache entry for the old shard must not survive.
	reborn, errs := ccparse.Parse(&srcfile.File{Path: "a/2.c", Lang: srcfile.LangC,
		Src: "int fa9(int x) { return x * 3; }\n"}, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	ix.AddUnit(reborn)
	got := c.AnalyzeIndexed(ix)
	requireSameMetrics(t, "reborn shard a", got, metrics.AnalyzeIndexed(ix))
	if got.TotalFunc != 3 {
		t.Fatalf("TotalFunc = %d after shard recreation, want 3", got.TotalFunc)
	}
}
