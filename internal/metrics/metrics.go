package metrics

import (
	"sort"

	"repro/internal/artifact"
	"repro/internal/ccast"
	"repro/internal/par"
	"repro/internal/srcfile"
)

// Band classifies cyclomatic complexity per the reference ranges used in
// the paper: 1-10 low, 11-20 moderate, 21-50 risky, >50 unstable.
type Band int

// Complexity bands.
const (
	BandLow Band = iota
	BandModerate
	BandRisky
	BandUnstable
)

// String names the band.
func (b Band) String() string {
	switch b {
	case BandLow:
		return "low"
	case BandModerate:
		return "moderate"
	case BandRisky:
		return "risky"
	default:
		return "unstable"
	}
}

// BandOf returns the band for a CCN value.
func BandOf(ccn int) Band {
	switch {
	case ccn <= 10:
		return BandLow
	case ccn <= 20:
		return BandModerate
	case ccn <= 50:
		return BandRisky
	default:
		return BandUnstable
	}
}

// Cyclomatic computes Lizard-compatible cyclomatic complexity for a
// function definition: 1 + one per branching construct (if, while, do,
// for, each case label) + one per short-circuit operator (&&, ||) + one
// per ternary conditional. A function with no body has CCN 0.
func Cyclomatic(fn *ccast.FuncDecl) int {
	if fn == nil || fn.Body == nil {
		return 0
	}
	ccn := 1
	ccast.Walk(fn.Body, func(n ccast.Node) bool {
		switch n := n.(type) {
		case *ccast.If, *ccast.While, *ccast.DoWhile, *ccast.Cond:
			ccn++
		case *ccast.For:
			ccn++
		case *ccast.Switch:
			for _, c := range n.Cases {
				ccn += len(c.Values)
			}
		case *ccast.Binary:
			if n.Op == "&&" || n.Op == "||" {
				ccn++
			}
		}
		return true
	})
	return ccn
}

// FunctionMetrics is the per-function row of the Figure 3 analysis.
type FunctionMetrics struct {
	Name      string
	File      string
	Module    string
	StartLine int
	EndLine   int
	NLOC      int
	CCN       int
	Params    int
	Returns   int // number of return statements
	IsKernel  bool
}

// Band returns the complexity band of the function.
func (fm *FunctionMetrics) Band() Band { return BandOf(fm.CCN) }

// FileMetrics aggregates one file.
type FileMetrics struct {
	Path      string
	Module    string
	Lang      srcfile.Language
	LOC       int // physical lines
	NLOC      int // non-comment, non-blank lines
	Functions []*FunctionMetrics
}

// ModuleMetrics aggregates one AD module (Figure 3 has one bar group per
// module).
type ModuleMetrics struct {
	Name      string
	Files     int
	LOC       int
	NLOC      int
	Functions int
	// OverCCN maps a threshold to the number of functions whose CCN
	// strictly exceeds it; Figure 3 uses thresholds 10, 20, and 50.
	OverCCN map[int]int
	MaxCCN  int
	SumCCN  int
}

// MeanCCN returns the average complexity across the module's functions.
func (m *ModuleMetrics) MeanCCN() float64 {
	if m.Functions == 0 {
		return 0
	}
	return float64(m.SumCCN) / float64(m.Functions)
}

// FrameworkMetrics is the whole-corpus result.
type FrameworkMetrics struct {
	Modules   []*ModuleMetrics // sorted by name
	Files     []*FileMetrics   // corpus order
	TotalLOC  int
	TotalNLOC int
	TotalFunc int
	// ModerateOrWorse counts functions with CCN >= 11 framework-wide
	// (the paper reports 554 for Apollo).
	ModerateOrWorse int
}

// Thresholds used for Figure 3's "functions with CCN over N" bars.
var Thresholds = []int{10, 20, 50}

// AnalyzeFunction computes the metrics row for one function definition.
func AnalyzeFunction(fn *ccast.FuncDecl, file *srcfile.File) *FunctionMetrics {
	return functionRow(fn, file, Cyclomatic(fn), ccast.CountReturns(fn))
}

// functionRow assembles a metrics row from precomputed traversal facts.
func functionRow(fn *ccast.FuncDecl, file *srcfile.File, ccn, returns int) *FunctionMetrics {
	sp := fn.Span()
	fm := &FunctionMetrics{
		Name:      fn.Name,
		File:      file.Path,
		Module:    file.ModuleName(),
		StartLine: sp.Start.Line,
		EndLine:   sp.End.Line,
		CCN:       ccn,
		Params:    len(fn.Params),
		Returns:   returns,
		IsKernel:  fn.IsKernel(),
	}
	// Function NLOC: count over the function's source slice.
	if sp.Start.Offset >= 0 && sp.End.Offset <= len(file.Src) && sp.Start.Offset < sp.End.Offset {
		fm.NLOC = CountNLOC(file.Src[sp.Start.Offset:sp.End.Offset])
	}
	return fm
}

// AnalyzeFile computes file-level metrics from a parsed unit.
func AnalyzeFile(tu *ccast.TranslationUnit) *FileMetrics {
	f := tu.File
	fm := &FileMetrics{
		Path:   f.Path,
		Module: f.ModuleName(),
		Lang:   f.Lang,
		LOC:    f.LineCount(),
		NLOC:   CountNLOC(f.Src),
	}
	for _, fn := range tu.Funcs() {
		fm.Functions = append(fm.Functions, AnalyzeFunction(fn, f))
	}
	return fm
}

// analyzeFileIndexed builds file metrics reusing the artifact cache's
// per-function CCN and return counts instead of re-walking bodies.
func analyzeFileIndexed(tu *ccast.TranslationUnit, fas []*artifact.Func) *FileMetrics {
	f := tu.File
	fm := &FileMetrics{
		Path:   f.Path,
		Module: f.ModuleName(),
		Lang:   f.Lang,
		LOC:    f.LineCount(),
		NLOC:   CountNLOC(f.Src),
	}
	fm.Functions = make([]*FunctionMetrics, 0, len(fas))
	for _, fa := range fas {
		fm.Functions = append(fm.Functions, functionRow(fa.Decl, f, fa.CCN, fa.Returns))
	}
	return fm
}

// Analyze computes framework-wide metrics over parsed units. It builds a
// fresh artifact index internally; callers that already hold one should
// use AnalyzeIndexed to avoid the duplicate traversals.
func Analyze(units map[string]*ccast.TranslationUnit) *FrameworkMetrics {
	return AnalyzeIndexed(artifact.Build(units))
}

// AnalyzeIndexed computes framework-wide metrics from the shared artifact
// cache. Per-file rows (dominated by the NLOC text scans) are computed on
// a worker pool; the module aggregation walks files in sorted path order,
// so the result is deterministic.
func AnalyzeIndexed(ix *artifact.Index) *FrameworkMetrics {
	paths := ix.Paths
	files := make([]*FileMetrics, len(paths))
	par.For(par.Workers(len(paths)), len(paths), func(i int) {
		p := paths[i]
		files[i] = analyzeFileIndexed(ix.Units[p], ix.UnitFuncs(p))
	})
	return aggregate(files)
}

// aggregate folds per-file rows (in sorted path order) into the
// framework-wide result.
func aggregate(files []*FileMetrics) *FrameworkMetrics {
	out := &FrameworkMetrics{}
	mods := make(map[string]*ModuleMetrics)

	out.Files = files
	for _, fm := range files {
		mm := mods[fm.Module]
		if mm == nil {
			mm = &ModuleMetrics{Name: fm.Module, OverCCN: make(map[int]int)}
			mods[fm.Module] = mm
		}
		mm.Files++
		mm.LOC += fm.LOC
		mm.NLOC += fm.NLOC
		out.TotalLOC += fm.LOC
		out.TotalNLOC += fm.NLOC
		for _, fn := range fm.Functions {
			mm.Functions++
			out.TotalFunc++
			mm.SumCCN += fn.CCN
			if fn.CCN > mm.MaxCCN {
				mm.MaxCCN = fn.CCN
			}
			for _, th := range Thresholds {
				if fn.CCN > th {
					mm.OverCCN[th]++
				}
			}
			if fn.CCN >= 11 {
				out.ModerateOrWorse++
			}
		}
	}
	names := make([]string, 0, len(mods))
	for n := range mods {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out.Modules = append(out.Modules, mods[n])
	}
	return out
}

// Module returns the metrics of a named module, or nil.
func (fw *FrameworkMetrics) Module(name string) *ModuleMetrics {
	for _, m := range fw.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// AllFunctions returns every function row across files.
func (fw *FrameworkMetrics) AllFunctions() []*FunctionMetrics {
	var out []*FunctionMetrics
	for _, f := range fw.Files {
		out = append(out, f.Functions...)
	}
	return out
}
