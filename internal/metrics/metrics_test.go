package metrics

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/srcfile"
)

func parseUnits(t *testing.T, files map[string]string) map[string]*ccast.TranslationUnit {
	t.Helper()
	fs := srcfile.NewFileSet()
	for p, src := range files {
		fs.AddSource(p, src)
	}
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return units
}

func TestCountNLOC(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"", 0},
		{"int x;\n", 1},
		{"int x;\nint y;\n", 2},
		{"\n\n\n", 0},
		{"// comment only\n", 0},
		{"/* block\n   comment */\n", 0},
		{"int x; // trailing\n", 1},
		{"/* a */ int x;\n", 1},
		{"int x;\n\n// c\nint y;\n", 2},
		{"char* s = \"// not a comment\";\n", 1},
		{"int x; /* spans\nlines */ int y;\n", 2},
	}
	for _, c := range cases {
		if got := CountNLOC(c.src); got != c.want {
			t.Errorf("CountNLOC(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestCountCommentLines(t *testing.T) {
	src := "// a\nint x; // b\n/* c\nd */\nint y;\n"
	if got := CountCommentLines(src); got != 4 {
		t.Errorf("comment lines = %d, want 4", got)
	}
}

func TestBandOf(t *testing.T) {
	cases := map[int]Band{
		1: BandLow, 10: BandLow, 11: BandModerate, 20: BandModerate,
		21: BandRisky, 50: BandRisky, 51: BandUnstable, 200: BandUnstable,
	}
	for ccn, want := range cases {
		if got := BandOf(ccn); got != want {
			t.Errorf("BandOf(%d) = %v, want %v", ccn, got, want)
		}
	}
}

func TestCyclomaticCountsShortCircuit(t *testing.T) {
	units := parseUnits(t, map[string]string{"m/a.c": `
int f(int a, int b, int c) {
    if (a > 0 && b > 0 || c > 0) { return 1; }
    return 0;
}`})
	fn := units["m/a.c"].Funcs()[0]
	// 1 + if + && + || = 4 (Lizard counting).
	if got := Cyclomatic(fn); got != 4 {
		t.Errorf("CCN = %d, want 4", got)
	}
}

func TestCyclomaticSwitch(t *testing.T) {
	units := parseUnits(t, map[string]string{"m/a.c": `
int f(int a) {
    switch (a) {
    case 0: return 0;
    case 1: return 1;
    case 2: return 2;
    default: return -1;
    }
}`})
	fn := units["m/a.c"].Funcs()[0]
	// 1 + 3 case labels (default does not count in Lizard).
	if got := Cyclomatic(fn); got != 4 {
		t.Errorf("CCN = %d, want 4", got)
	}
}

func TestCyclomaticTernary(t *testing.T) {
	units := parseUnits(t, map[string]string{"m/a.c": `
int f(int a) { return a > 0 ? a : -a; }`})
	if got := Cyclomatic(units["m/a.c"].Funcs()[0]); got != 2 {
		t.Errorf("CCN = %d, want 2", got)
	}
}

func TestAnalyzeAggregates(t *testing.T) {
	units := parseUnits(t, map[string]string{
		"perception/a.c": `
int simple() { return 1; }
int moderate(int a) {
    if (a > 0) { a++; } if (a > 1) { a++; } if (a > 2) { a++; }
    if (a > 3) { a++; } if (a > 4) { a++; } if (a > 5) { a++; }
    if (a > 6) { a++; } if (a > 7) { a++; } if (a > 8) { a++; }
    if (a > 9) { a++; } if (a > 10) { a++; } if (a > 11) { a++; }
    return a;
}`,
		"planning/b.c": `
int g() { return 2; }`,
	})
	fw := Analyze(units)
	if len(fw.Modules) != 2 {
		t.Fatalf("modules = %d", len(fw.Modules))
	}
	if fw.TotalFunc != 3 {
		t.Errorf("functions = %d, want 3", fw.TotalFunc)
	}
	per := fw.Module("perception")
	if per == nil || per.Functions != 2 {
		t.Fatalf("perception module missing or wrong: %+v", per)
	}
	// moderate() has CCN 13: counted over threshold 10, and moderate+.
	if per.OverCCN[10] != 1 {
		t.Errorf("over-10 = %d, want 1", per.OverCCN[10])
	}
	if per.OverCCN[20] != 0 {
		t.Errorf("over-20 = %d, want 0", per.OverCCN[20])
	}
	if fw.ModerateOrWorse != 1 {
		t.Errorf("moderate-or-worse = %d, want 1", fw.ModerateOrWorse)
	}
	if per.MaxCCN != 13 {
		t.Errorf("max ccn = %d, want 13", per.MaxCCN)
	}
}

func TestFunctionMetricsFields(t *testing.T) {
	units := parseUnits(t, map[string]string{"perception/a.c": `
int f(int a, int b) {
    if (a < 0) return -1;
    return a + b;
}`})
	fw := Analyze(units)
	fns := fw.AllFunctions()
	if len(fns) != 1 {
		t.Fatalf("functions = %d", len(fns))
	}
	fn := fns[0]
	if fn.Params != 2 || fn.Returns != 2 || fn.Module != "perception" {
		t.Errorf("row = %+v", fn)
	}
	if fn.NLOC < 3 {
		t.Errorf("NLOC = %d, want >= 3", fn.NLOC)
	}
}

func TestAnalyzeArchCohesionAndCoupling(t *testing.T) {
	units := parseUnits(t, map[string]string{
		"perception/a.c": `
int detect() { return track(); }
int track() { return 1; }
`,
		"planning/b.c": `
int plan() { return detect(); }
`,
	})
	arch := AnalyzeArch(units)
	if len(arch) != 2 {
		t.Fatalf("arch modules = %d", len(arch))
	}
	var per, plan *ArchMetrics
	for _, a := range arch {
		switch a.Module {
		case "perception":
			per = a
		case "planning":
			plan = a
		}
	}
	if per.InternalCalls != 1 || per.ExternalCalls != 0 {
		t.Errorf("perception calls = %d/%d", per.InternalCalls, per.ExternalCalls)
	}
	if per.Cohesion != 1.0 {
		t.Errorf("perception cohesion = %v", per.Cohesion)
	}
	if plan.ExternalCalls != 1 || plan.FanOut != 1 {
		t.Errorf("planning external = %d fanout = %d", plan.ExternalCalls, plan.FanOut)
	}
	if per.FanIn != 1 {
		t.Errorf("perception fanin = %d, want 1", per.FanIn)
	}
}

func TestAnalyzeArchInterfaceSize(t *testing.T) {
	units := parseUnits(t, map[string]string{"control/a.c": `
void small(int a) {}
void big(int a, int b, int c, int d, int e, int f, int g) {}
`})
	arch := AnalyzeArch(units)
	if arch[0].MaxInterfaceParams != 7 {
		t.Errorf("max params = %d, want 7", arch[0].MaxInterfaceParams)
	}
}

func TestAnalyzeArchSchedulingPrimitives(t *testing.T) {
	units := parseUnits(t, map[string]string{"canbus/a.c": `
void setup() {
    pthread_create(0, 0, 0, 0);
    signal(2, 0);
}
`})
	arch := AnalyzeArch(units)
	if arch[0].ThreadPrimitives != 1 {
		t.Errorf("thread primitives = %d", arch[0].ThreadPrimitives)
	}
	if arch[0].InterruptHandlers != 1 {
		t.Errorf("interrupt handlers = %d", arch[0].InterruptHandlers)
	}
}

func TestBuildHierarchy(t *testing.T) {
	units := parseUnits(t, map[string]string{
		"perception/a.c": "int f() { return 0; }",
		"perception/b.c": "int g() { return 0; }",
		"control/c.c":    "int h() { return 0; }",
	})
	h := BuildHierarchy(units)
	if len(h.Modules) != 2 {
		t.Fatalf("modules = %d", len(h.Modules))
	}
	if h.Modules[0].Name != "control" || h.Modules[1].Name != "perception" {
		t.Errorf("order = %v, %v", h.Modules[0].Name, h.Modules[1].Name)
	}
	if len(h.Modules[1].Files) != 2 {
		t.Errorf("perception files = %d", len(h.Modules[1].Files))
	}
}

// Property: NLOC is monotone under appending a code line and never exceeds
// the physical line count.
func TestNLOCBoundsProperty(t *testing.T) {
	f := func(lines []uint8) bool {
		var sb strings.Builder
		physical := 0
		for _, l := range lines {
			switch l % 4 {
			case 0:
				sb.WriteString("int x;\n")
			case 1:
				sb.WriteString("\n")
			case 2:
				sb.WriteString("// comment\n")
			case 3:
				sb.WriteString("x++;\n")
			}
			physical++
		}
		src := sb.String()
		n := CountNLOC(src)
		if n < 0 || n > physical {
			return false
		}
		return CountNLOC(src+"y = 1;\n") == n+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CCN of a chain of k sequential ifs is k+1.
func TestCyclomaticChainProperty(t *testing.T) {
	for k := 0; k <= 20; k++ {
		var sb strings.Builder
		sb.WriteString("int f(int a) {\n")
		for i := 0; i < k; i++ {
			fmt.Fprintf(&sb, "if (a > %d) { a++; }\n", i)
		}
		sb.WriteString("return a;\n}\n")
		units := parseUnits(t, map[string]string{"m/a.c": sb.String()})
		if got := Cyclomatic(units["m/a.c"].Funcs()[0]); got != k+1 {
			t.Fatalf("k=%d: CCN = %d, want %d", k, got, k+1)
		}
	}
}

func TestMaxLineLength(t *testing.T) {
	if got := MaxLineLength("ab\nabcd\na\n"); got != 4 {
		t.Errorf("max line = %d, want 4", got)
	}
}
