// Package metrics computes the size and complexity measurements behind
// the paper's Figure 3 and the architectural-design assessment (Table 2):
// NLOC, cyclomatic complexity with Lizard-compatible counting rules,
// per-module aggregates, and coupling/cohesion/interface-size metrics.
package metrics

import "strings"

// CountNLOC returns the number of non-blank, non-comment source lines,
// matching Lizard's NLOC definition: a line counts when it carries at
// least one code token after comment stripping.
func CountNLOC(src string) int {
	n := 0
	lineHasCode := false
	inBlock := false
	i := 0
	flush := func() {
		if lineHasCode {
			n++
		}
		lineHasCode = false
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			flush()
			i++
		case inBlock:
			if c == '*' && i+1 < len(src) && src[i+1] == '/' {
				inBlock = false
				i += 2
			} else {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			// line comment: skip to newline
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			inBlock = true
			i += 2
		case c == '"':
			lineHasCode = true
			i++
			for i < len(src) && src[i] != '"' && src[i] != '\n' {
				if src[i] == '\\' {
					i++
				}
				i++
			}
			if i < len(src) && src[i] == '"' {
				i++
			}
		case c == '\'':
			lineHasCode = true
			i++
			for i < len(src) && src[i] != '\'' && src[i] != '\n' {
				if src[i] == '\\' {
					i++
				}
				i++
			}
			if i < len(src) && src[i] == '\'' {
				i++
			}
		case c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f':
			i++
		default:
			lineHasCode = true
			i++
		}
	}
	flush()
	return n
}

// CountCommentLines returns the number of lines containing any comment
// text; used by the style checker's comment-density metric.
func CountCommentLines(src string) int {
	n := 0
	inBlock := false
	lineHasComment := false
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			if lineHasComment {
				n++
			}
			lineHasComment = false
			i++
		case inBlock:
			lineHasComment = true
			if c == '*' && i+1 < len(src) && src[i+1] == '/' {
				inBlock = false
				i += 2
			} else {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			lineHasComment = true
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			inBlock = true
			lineHasComment = true
			i += 2
		case c == '"':
			i++
			for i < len(src) && src[i] != '"' && src[i] != '\n' {
				if src[i] == '\\' {
					i++
				}
				i++
			}
			if i < len(src) && src[i] == '"' {
				i++
			}
		default:
			i++
		}
	}
	if lineHasComment {
		n++
	}
	return n
}

// MaxLineLength returns the longest physical line length in bytes.
func MaxLineLength(src string) int {
	max := 0
	for _, line := range strings.Split(src, "\n") {
		if len(line) > max {
			max = len(line)
		}
	}
	return max
}
