package metrics

import (
	"repro/internal/artifact"
)

// Persistence boundary of the shard-aware metrics cache. The expensive
// part of a file row is the NLOC text scan; the snapshot therefore
// stores the finished *FileMetrics rows and RestoreRows re-derives the
// cheap per-shard aggregates (module partials, corpus totals) from them
// against the restored index. The architectural cache (ArchCache) is
// deliberately not persisted: its partials fold in O(corpus) from the
// restored artifact facts with no text scans, so the first warm
// AnalyzeIndexed rebuilds them for free.

// ExportRows returns the cached per-file metric rows for every path of
// the cache's current index, or ok=false when the cache is not warm
// (callers run AnalyzeIndexed — core.Assessor.Metrics — first). The
// returned rows are the live cache values; callers must treat them as
// immutable.
func (c *Cache) ExportRows() (map[string]*FileMetrics, bool) {
	if c.ix == nil {
		return nil, false
	}
	out := make(map[string]*FileMetrics, len(c.ix.Paths))
	for _, m := range c.ix.ShardNames() {
		sh := c.ix.Shard(m)
		ms := c.shards[m]
		if ms == nil || !ms.valid || ms.gen != sh.Gen() {
			return nil, false
		}
		if ms.perFile == nil && !ms.thawEntries() {
			return nil, false
		}
		for _, p := range sh.Paths() {
			e, present := ms.perFile[p]
			if !present {
				return nil, false
			}
			out[p] = e.fm
		}
	}
	return out, true
}

// RowLoader supplies a restored cache's per-shard rows on demand — the
// lazy face of a snapshot. ok=false degrades the shard to a recompute,
// never to wrong output.
type RowLoader interface {
	// ShardRows returns a module shard's rows aligned with its
	// snapshot-time sorted path list.
	ShardRows(module string) ([]*FileMetrics, bool)
	// ShardKeys returns the shard's snapshot-time paths and content
	// hashes (the expensive half; called only when the shard dirties).
	ShardKeys(module string) ([]string, []uint64, bool)
}

// RestoreRowsLazy seeds the cache against a freshly restored index with
// every shard sealed: rows materialize at the first AnalyzeIndexed, the
// per-file maps and content hashes only when a delta dirties the shard.
// Equivalent to RestoreRows in observable output.
func (c *Cache) RestoreRowsLazy(ix *artifact.Index, loader RowLoader) {
	c.ix = ix
	c.shards = make(map[string]*metricShard, len(ix.ShardNames()))
	for _, m := range ix.ShardNames() {
		sh := ix.Shard(m)
		module := m
		c.shards[m] = &metricShard{
			gen:      sh.Gen(),
			valid:    true,
			loadRows: func() ([]*FileMetrics, bool) { return loader.ShardRows(module) },
			thawKeys: func() ([]string, []uint64, bool) { return loader.ShardKeys(module) },
		}
	}
	c.lastDirty = 0
}

// RestoreRows seeds the cache with persisted per-file rows against a
// freshly restored index, re-folding the per-shard partials so the next
// AnalyzeIndexed recomputes zero rows on an unchanged corpus. rows must
// hold one entry for every indexed path, produced from the same file
// content (the restorer guarantees both).
func (c *Cache) RestoreRows(ix *artifact.Index, rows map[string]*FileMetrics) {
	c.ix = ix
	c.shards = make(map[string]*metricShard, len(ix.ShardNames()))
	for _, m := range ix.ShardNames() {
		sh := ix.Shard(m)
		paths := sh.Paths()
		ms := &metricShard{
			perFile: make(map[string]cacheEntry, len(paths)),
			files:   make([]*FileMetrics, len(paths)),
		}
		for i, p := range paths {
			fm := rows[p]
			ms.perFile[p] = cacheEntry{hash: ix.Units[p].File.Hash(), fm: fm}
			ms.files[i] = fm
		}
		ms.refold()
		ms.gen, ms.valid = sh.Gen(), true
		c.shards[m] = ms
	}
	c.lastDirty = 0
}
