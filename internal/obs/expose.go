package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double-quote, and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only (quotes
// are legal in HELP text).
func escapeHelp(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// labelString renders {k="v",...} for the series' labels plus any
// extras (used for histogram le). Empty label sets render as "".
func labelString(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// leValue renders the le bound for finite bucket i, or "+Inf".
func leValue(i int) string {
	if i >= HistBuckets {
		return "+Inf"
	}
	return fmt.Sprintf("%d", BucketBound(i))
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4). Series of one name form a contiguous group
// (ordered by the name's first registration) headed by one HELP and one
// TYPE line; within a group, series appear in registration order.
// Output is therefore deterministic modulo the metric values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	metrics := r.snapshotMetrics()

	// Group by name, preserving first-registration order.
	var names []string
	byName := make(map[string][]*metric, len(metrics))
	for _, m := range metrics {
		if _, ok := byName[m.name]; !ok {
			names = append(names, m.name)
		}
		byName[m.name] = append(byName[m.name], m)
	}

	var b strings.Builder
	for _, name := range names {
		group := byName[name]
		head := group[0]
		fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(head.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, head.kind)
		for _, m := range group {
			switch m.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", name, labelString(m.labels), m.counter.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", name, labelString(m.labels), m.gauge.Value())
			case kindHistogram:
				counts := m.hist.BucketCounts()
				var cum int64
				for i := range counts {
					cum += counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						name, labelString(m.labels, L("le", leValue(i))), cum)
				}
				fmt.Fprintf(&b, "%s_sum%s %d\n", name, labelString(m.labels), m.hist.Sum())
				fmt.Fprintf(&b, "%s_count%s %d\n", name, labelString(m.labels), cum)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// BucketValue is one cumulative histogram bucket in a JSON snapshot.
type BucketValue struct {
	// Le is the inclusive upper bound ("+Inf" for the overflow bucket).
	Le string `json:"le"`
	// Count is the cumulative observation count at or below Le.
	Count int64 `json:"count"`
}

// MetricValue is one series in a JSON snapshot (/statz).
type MetricValue struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter/gauge value, or the observation count for a
	// histogram.
	Value int64 `json:"value"`
	// Sum is the histogram observation sum (histograms only).
	Sum int64 `json:"sum,omitempty"`
	// P50/P99 are derived histogram quantile upper bounds (histograms
	// with at least one observation only).
	P50 int64 `json:"p50,omitempty"`
	P99 int64 `json:"p99,omitempty"`
	// Buckets holds the cumulative counts of the occupied buckets
	// (histograms only; empty buckets are elided from the JSON view —
	// the full fixed layout is on /metrics).
	Buckets []BucketValue `json:"buckets,omitempty"`
}

// Snapshot returns every registered series with its current value, in
// registration order (deterministic modulo values).
func (r *Registry) Snapshot() []MetricValue {
	metrics := r.snapshotMetrics()
	out := make([]MetricValue, 0, len(metrics))
	for _, m := range metrics {
		mv := MetricValue{
			Name:   m.name,
			Type:   m.kind.String(),
			Labels: sortedLabelMap(m.labels),
		}
		switch m.kind {
		case kindCounter:
			mv.Value = m.counter.Value()
		case kindGauge:
			mv.Value = m.gauge.Value()
		case kindHistogram:
			counts := m.hist.BucketCounts()
			var cum int64
			for i := range counts {
				n := counts[i]
				cum += n
				if n != 0 {
					mv.Buckets = append(mv.Buckets, BucketValue{Le: leValue(i), Count: cum})
				}
			}
			mv.Value = cum
			mv.Sum = m.hist.Sum()
			if cum > 0 {
				mv.P50 = m.hist.Quantile(0.50)
				mv.P99 = m.hist.Quantile(0.99)
				if mv.P50 == math.MaxInt64 {
					mv.P50 = -1
				}
				if mv.P99 == math.MaxInt64 {
					mv.P99 = -1
				}
			}
		}
		out = append(out, mv)
	}
	return out
}
