// Package obs is the serving stack's zero-dependency observability
// layer: a metrics registry of atomic counters, gauges, and fixed
// power-of-two histograms, plus per-request phase spans.
//
// The design contract is that observing is free on the hot path:
//
//   - one or two uncontended atomic adds per event (a counter bump is
//     one; a histogram observation is one bucket add plus one sum add);
//   - no locks after registration — Counter/Gauge/Histogram never
//     synchronize, so they are safe to call at any point of the
//     repo's lock hierarchy, including under the leaf locks the
//     adlint lockorder analyzer forbids blocking work under;
//   - no allocation after registration — instruments are registered
//     once at construction time and the returned pointers are shared.
//
// Registration (Registry.Counter/Gauge/Histogram) takes the registry
// mutex and allocates; it belongs at startup, never on a request path
// under a lock (lockorder enforces this for the service layer).
//
// Histograms use fixed power-of-two buckets (bucket i holds
// observations v with 2^(i-1) < v <= 2^i, bucket 0 holds v <= 1), so
// for nanosecond latencies the 40 finite buckets span 1ns to ~9.2min
// and any quantile is derivable from the bucket counts alone — no
// sampling, no sliding windows, and two histograms merge by adding
// buckets.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"regexp"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; nil receivers are no-ops so optional instrumentation
// never needs guarding.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (set, not accumulated).
// The zero value is ready to use; nil receivers are no-ops.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the number of finite power-of-two histogram buckets.
// Bucket i covers (2^(i-1), 2^i] (bucket 0 covers (-inf, 1]); index
// HistBuckets is the overflow bucket for observations above
// 2^(HistBuckets-1).
const HistBuckets = 40

// Histogram is a fixed-bucket power-of-two histogram. Observations are
// one bucket add plus one sum add — no locks, no allocation. The zero
// value is ready to use; nil receivers are no-ops.
type Histogram struct {
	buckets [HistBuckets + 1]atomic.Int64
	sum     atomic.Int64
}

// bucketIndex returns the bucket for observation v: the smallest i with
// v <= 2^i, or the overflow index.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1))
	if i > HistBuckets {
		return HistBuckets
	}
	return i
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations (derived from the
// buckets, so it is exactly consistent with them).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// BucketCounts returns a snapshot of the per-bucket (non-cumulative)
// counts; index HistBuckets is the overflow bucket.
func (h *Histogram) BucketCounts() [HistBuckets + 1]int64 {
	var out [HistBuckets + 1]int64
	if h == nil {
		return out
	}
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// BucketBound returns the inclusive upper bound of bucket i (2^i), or
// math.MaxInt64 for the overflow bucket.
func BucketBound(i int) int64 {
	if i >= HistBuckets {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

// Quantile returns the upper bucket bound covering the q-th quantile
// (0 < q <= 1) of the recorded observations: the true quantile is
// guaranteed <= the returned value and > half of it (power-of-two
// buckets bound the relative error by 2x). Returns 0 with no
// observations and math.MaxInt64 when the quantile falls in the
// overflow bucket.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	counts := h.BucketCounts()
	var total int64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range counts {
		cum += n
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return math.MaxInt64
}

// ---------------------------------------------------------------------------
// Registry

// Label is one constant metric label, fixed at registration.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// nameRE is the Prometheus metric/label name grammar.
var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry holds named metric series in registration order, which is
// therefore the (deterministic) exposition order: the set and order of
// series depends only on what was registered, never on traffic or map
// iteration. Registration is idempotent — the same (name, labels) pair
// returns the same instrument — and safe for concurrent use; the
// instruments themselves are lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byKey   map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// seriesKey renders the identity of a series.
func seriesKey(name string, labels []Label) string {
	k := name
	for _, l := range labels {
		k += "\x00" + l.Key + "\x01" + l.Value
	}
	return k
}

// register interns one series. Invalid names and kind conflicts are
// programmer errors at startup and panic.
func (r *Registry) register(name, help string, kind metricKind, labels []Label) *metric {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRE.MatchString(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Key, name))
		}
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.byKey[key]; m != nil {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	// All series of one name must share a kind (and the exposition
	// emits one TYPE line per name).
	for _, m := range r.metrics {
		if m.name == name && m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
	}
	m := &metric{name: name, help: help, labels: append([]Label(nil), labels...), kind: kind}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		m.hist = &Histogram{}
	}
	r.metrics = append(r.metrics, m)
	r.byKey[key] = m
	return m
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, kindCounter, labels).counter
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, kindGauge, labels).gauge
}

// Histogram registers (or returns the existing) histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.register(name, help, kindHistogram, labels).hist
}

// snapshotMetrics copies the series list under the registry lock; the
// *metric entries themselves are immutable after registration (their
// instruments are internally atomic).
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.metrics...)
}

// sortedLabelMap renders labels as a map for JSON exposition (JSON
// object keys marshal in sorted order, keeping output deterministic).
func sortedLabelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(labels))
	for _, l := range labels {
		out[l.Key] = l.Value
	}
	return out
}
