package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4},
		{1024, 10}, {1025, 11},
		{1 << 39, 39},
		{1<<39 + 1, 40},
		{math.MaxInt64, 40},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketBoundsCoverObservations(t *testing.T) {
	// Every observation must land in the bucket whose bound brackets it:
	// BucketBound(i-1) < v <= BucketBound(i).
	for _, v := range []int64{1, 2, 3, 7, 100, 1e6, 1e9, 1 << 38} {
		i := bucketIndex(v)
		if v > BucketBound(i) {
			t.Errorf("v=%d above its bucket bound %d", v, BucketBound(i))
		}
		if i > 0 && v <= BucketBound(i-1) {
			t.Errorf("v=%d not above previous bound %d", v, BucketBound(i-1))
		}
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("empty histogram count/sum = %d/%d", h.Count(), h.Sum())
	}
}

func TestHistogramQuantileOneSample(t *testing.T) {
	var h Histogram
	h.Observe(1000)
	// 1000 lands in (512, 1024]; every quantile is that bucket's bound.
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		if got := h.Quantile(q); got != 1024 {
			t.Errorf("Quantile(%v) = %d, want 1024", q, got)
		}
	}
	if h.Count() != 1 || h.Sum() != 1000 {
		t.Fatalf("count/sum = %d/%d, want 1/1000", h.Count(), h.Sum())
	}
}

func TestHistogramQuantileExactBucketMath(t *testing.T) {
	var h Histogram
	// Three observations in three distinct buckets: 1 -> bucket 0 (<=1),
	// 2 -> bucket 1 (<=2), 3 -> bucket 2 (<=4).
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	cases := []struct {
		q    float64
		want int64
	}{
		{0.0, 1},  // rank clamps to 1 -> first bucket
		{0.33, 1}, // ceil(0.99) = 1
		{0.34, 2}, // ceil(1.02) = 2
		{0.5, 2},  // ceil(1.5) = 2
		{0.67, 4}, // ceil(2.01) = 3
		{1.0, 4},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64) // far above the last finite bound
	if got := h.Quantile(0.5); got != math.MaxInt64 {
		t.Fatalf("overflow quantile = %d, want MaxInt64", got)
	}
	counts := h.BucketCounts()
	if counts[HistBuckets] != 1 {
		t.Fatalf("overflow bucket count = %d, want 1", counts[HistBuckets])
	}
	if BucketBound(HistBuckets) != math.MaxInt64 {
		t.Fatalf("overflow bound = %d", BucketBound(HistBuckets))
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var s *Span
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	s.Phase("x")()
	s.Observe("y", 1)
	s.Note("k", "v")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if s.Phases() != nil || s.Notes() != nil || s.Total() != 0 {
		t.Fatal("nil span must read empty")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	h := r.Histogram("test_lat_ns", "latency")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(w*perWorker + i + 1))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestRegistryIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", L("k", "v"))
	b := r.Counter("x_total", "x", L("k", "v"))
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	if c := r.Counter("x_total", "x", L("k", "w")); c == a {
		t.Fatal("distinct label values must be distinct series")
	}
	mustPanic(t, "kind conflict", func() { r.Gauge("x_total", "x", L("k", "v")) })
	mustPanic(t, "kind conflict across series", func() { r.Histogram("x_total", "x", L("k", "u")) })
	mustPanic(t, "invalid name", func() { r.Counter("bad name", "x") })
	mustPanic(t, "invalid label", func() { r.Counter("ok_total", "x", L("bad key", "v")) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestWritePrometheusAndValidate(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests", L("endpoint", "/delta"), L("class", "2xx")).Add(3)
	r.Counter("req_total", "requests", L("endpoint", "/report"), L("class", "2xx")).Add(1)
	r.Gauge("up", "server up").Set(1)
	h := r.Histogram("lat_ns", "latency", L("endpoint", "/delta"))
	h.Observe(100)
	h.Observe(2000)
	r.Counter("esc_total", "has \"quotes\" and \\slash\\\nnewline", L("v", "a\"b\\c\nd"))

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("self-exposition does not validate: %v\n%s", err, text)
	}
	for _, want := range []string{
		`req_total{endpoint="/delta",class="2xx"} 3`,
		`# TYPE lat_ns histogram`,
		`lat_ns_bucket{endpoint="/delta",le="128"} 1`,
		`lat_ns_bucket{endpoint="/delta",le="+Inf"} 2`,
		`lat_ns_sum{endpoint="/delta"} 2100`,
		`lat_ns_count{endpoint="/delta"} 2`,
		`esc_total{v="a\"b\\c\nd"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("a_total", "a", L("k", "1"))
		r.Counter("a_total", "a", L("k", "2"))
		r.Gauge("b", "b")
		r.Histogram("c_ns", "c")
		return r
	}
	var w1, w2 strings.Builder
	if err := build().WritePrometheus(&w1); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&w2); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", w1.String(), w2.String())
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"no trailing newline", "# TYPE x counter\nx 1"},
		{"empty line", "# TYPE x counter\n\nx 1\n"},
		{"sample before TYPE", "x 1\n"},
		{"non-contiguous group", "# TYPE x counter\nx 1\n# TYPE y counter\ny 1\nx 2\n"},
		{"bad value", "# TYPE x counter\nx one\n"},
		{"bad name", "# TYPE 9x counter\n9x 1\n"},
		{"unterminated labels", "# TYPE x counter\nx{k=\"v\" 1\n"},
		{"histogram without inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram decreasing cum", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n"},
	}
	for _, c := range cases {
		if err := ValidateExposition(c.text); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	ok := "# HELP x total\n# TYPE x counter\nx{a=\"b\"} 1\nx 2\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n"
	if err := ValidateExposition(ok); err != nil {
		t.Errorf("valid payload rejected: %v", err)
	}
}

func TestSpanPhases(t *testing.T) {
	sp := StartSpan()
	done := sp.Phase("parse")
	time.Sleep(time.Millisecond)
	done()
	sp.Observe("commit", 500)
	sp.Observe("negative", -10)
	sp.Note("corpus", "default")

	ph := sp.Phases()
	if len(ph) != 3 {
		t.Fatalf("got %d phases, want 3", len(ph))
	}
	if ph[0].Name != "parse" || ph[0].Ns <= 0 {
		t.Fatalf("parse phase = %+v", ph[0])
	}
	if ph[1].Ns != 500 || ph[2].Ns != 0 {
		t.Fatalf("observed phases = %+v", ph[1:])
	}
	var sum int64
	for _, p := range ph {
		sum += p.Ns
	}
	if total := sp.Total().Nanoseconds(); sum > total {
		t.Fatalf("phase sum %d exceeds span total %d", sum, total)
	}
	if n := sp.Notes(); len(n) != 1 || n[0].Key != "corpus" {
		t.Fatalf("notes = %+v", n)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c").Add(7)
	h := r.Histogram("h_ns", "h", L("x", "y"))
	h.Observe(3)
	h.Observe(1000)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}
	if snap[0].Name != "c_total" || snap[0].Type != "counter" || snap[0].Value != 7 {
		t.Fatalf("counter snapshot = %+v", snap[0])
	}
	hv := snap[1]
	if hv.Type != "histogram" || hv.Value != 2 || hv.Sum != 1003 {
		t.Fatalf("histogram snapshot = %+v", hv)
	}
	if hv.P50 != 4 || hv.P99 != 1024 {
		t.Fatalf("histogram quantiles = p50 %d p99 %d", hv.P50, hv.P99)
	}
	if len(hv.Buckets) != 2 || hv.Buckets[1].Count != 2 {
		t.Fatalf("histogram buckets = %+v", hv.Buckets)
	}
	if hv.Labels["x"] != "y" {
		t.Fatalf("labels = %+v", hv.Labels)
	}
}
