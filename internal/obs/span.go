package obs

import "time"

// SpanPhase is one named, timed phase of a request span.
type SpanPhase struct {
	Name string `json:"name"`
	Ns   int64  `json:"ns"`
}

// Span is a per-request phase breakdown: named durations recorded as
// the request moves through the pipeline (prepare parse, commit,
// journal stage, sync barrier, projection render, ...). A Span belongs
// to one request goroutine at a time — handlers record phases
// sequentially, so Span does no locking. Nil receivers are no-ops, so
// un-instrumented call paths pass a nil span freely.
type Span struct {
	start  time.Time
	phases []SpanPhase
	notes  []Label
}

// StartSpan begins a span; Total measures from this instant.
func StartSpan() *Span {
	return &Span{start: time.Now()}
}

// Phase starts a named phase and returns a func that ends it, recording
// the elapsed time:
//
//	done := sp.Phase("commit")
//	... work ...
//	done()
func (s *Span) Phase(name string) func() {
	if s == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() {
		s.phases = append(s.phases, SpanPhase{Name: name, Ns: time.Since(t0).Nanoseconds()})
	}
}

// Observe records an externally measured phase duration.
func (s *Span) Observe(name string, ns int64) {
	if s == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	s.phases = append(s.phases, SpanPhase{Name: name, Ns: ns})
}

// Note attaches a key=value annotation (corpus name, file counts, ...).
func (s *Span) Note(key, value string) {
	if s == nil {
		return
	}
	s.notes = append(s.notes, Label{Key: key, Value: value})
}

// Phases returns the recorded phases in record order.
func (s *Span) Phases() []SpanPhase {
	if s == nil {
		return nil
	}
	return s.phases
}

// Notes returns the recorded annotations in record order.
func (s *Span) Notes() []Label {
	if s == nil {
		return nil
	}
	return s.notes
}

// Total returns the time elapsed since StartSpan.
func (s *Span) Total() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}
