package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text-format payload
// (version 0.0.4) line by line: every line must be a well-formed HELP,
// TYPE, or sample line; TYPE must precede a name's samples and each
// name's lines must be contiguous; histogram groups must carry
// cumulative non-decreasing _bucket series ending at le="+Inf" with a
// matching _count and a _sum. It returns nil for a valid payload or an
// error naming the first offending line. Tests and the OBS_SMOKE gate
// use it as the wire-format oracle for /metrics.
func ValidateExposition(text string) error {
	type group struct {
		typ    string
		closed bool // a different name's line has appeared since
		// histogram bookkeeping, per label set (le stripped)
		lastLe   map[string]float64
		lastCum  map[string]float64
		sawInf   map[string]bool
		infCum   map[string]float64
		sawSum   map[string]bool
		sawCount map[string]bool
	}
	groups := make(map[string]*group)
	var open string // name of the currently open group

	ensure := func(name string) *group {
		g := groups[name]
		if g == nil {
			g = &group{
				lastLe:   make(map[string]float64),
				lastCum:  make(map[string]float64),
				sawInf:   make(map[string]bool),
				infCum:   make(map[string]float64),
				sawSum:   make(map[string]bool),
				sawCount: make(map[string]bool),
			}
			groups[name] = g
		}
		return g
	}
	enter := func(name string, lineNo int) (*group, error) {
		if open != name {
			if open != "" {
				groups[open].closed = true
			}
			g := ensure(name)
			if g.closed {
				return nil, fmt.Errorf("line %d: metric %q reappears after other metrics (groups must be contiguous)", lineNo, name)
			}
			open = name
		}
		return groups[name], nil
	}

	lines := strings.Split(text, "\n")
	if len(lines) == 0 || lines[len(lines)-1] != "" {
		return fmt.Errorf("payload must end with a newline")
	}
	lines = lines[:len(lines)-1]

	for i, line := range lines {
		n := i + 1
		if line == "" {
			return fmt.Errorf("line %d: empty line", n)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", n, line)
			}
			name := fields[2]
			if !nameRE.MatchString(name) {
				return fmt.Errorf("line %d: invalid metric name %q", n, name)
			}
			g, err := enter(name, n)
			if err != nil {
				return err
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE without a type", n)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", n, fields[3])
				}
				if g.typ != "" {
					return fmt.Errorf("line %d: duplicate TYPE for %q", n, name)
				}
				g.typ = fields[3]
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", n, err)
		}
		// A histogram's _bucket/_sum/_count samples belong to the base
		// name's group.
		base := name
		kind := ""
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name {
				if g := groups[trimmed]; g != nil && g.typ == "histogram" {
					base, kind = trimmed, suf
				}
				break
			}
		}
		g, err := enter(base, n)
		if err != nil {
			return err
		}
		if g.typ == "" {
			return fmt.Errorf("line %d: sample for %q before its TYPE line", n, base)
		}
		if g.typ == "histogram" {
			if kind == "" {
				return fmt.Errorf("line %d: histogram %q sample without _bucket/_sum/_count suffix", n, base)
			}
			key := labelKeyWithoutLe(labels)
			switch kind {
			case "_bucket":
				leStr, ok := findLabel(labels, "le")
				if !ok {
					return fmt.Errorf("line %d: histogram bucket without le label", n)
				}
				le, err := parseLe(leStr)
				if err != nil {
					return fmt.Errorf("line %d: %v", n, err)
				}
				if g.sawInf[key] {
					return fmt.Errorf("line %d: bucket after le=\"+Inf\" for %q", n, base)
				}
				if prev, ok := g.lastLe[key]; ok && le <= prev {
					return fmt.Errorf("line %d: le bounds not increasing for %q", n, base)
				}
				if prev, ok := g.lastCum[key]; ok && value < prev {
					return fmt.Errorf("line %d: cumulative bucket counts decrease for %q", n, base)
				}
				g.lastLe[key] = le
				g.lastCum[key] = value
				if leStr == "+Inf" {
					g.sawInf[key] = true
					g.infCum[key] = value
				}
			case "_sum":
				g.sawSum[key] = true
			case "_count":
				if !g.sawInf[key] {
					return fmt.Errorf("line %d: histogram %q _count without a +Inf bucket", n, base)
				}
				if value != g.infCum[key] {
					return fmt.Errorf("line %d: histogram %q _count %v != +Inf bucket %v", n, base, value, g.infCum[key])
				}
				g.sawCount[key] = true
			}
		}
	}
	if open != "" {
		groups[open].closed = true
	}

	// Every histogram series must have completed its bucket/sum/count
	// triplet.
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := groups[name]
		if g.typ != "histogram" {
			continue
		}
		keys := make([]string, 0, len(g.lastLe))
		for k := range g.lastLe {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !g.sawInf[k] {
				return fmt.Errorf("histogram %q series %q has no +Inf bucket", name, k)
			}
			if !g.sawSum[k] {
				return fmt.Errorf("histogram %q series %q has no _sum", name, k)
			}
			if !g.sawCount[k] {
				return fmt.Errorf("histogram %q series %q has no _count", name, k)
			}
		}
	}
	return nil
}

// parseSample parses `name{k="v",...} value` (labels optional) and
// returns the metric name, labels, and numeric value.
func parseSample(line string) (string, []Label, float64, error) {
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name := rest[:end]
	if !nameRE.MatchString(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[end:]

	var labels []Label
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq <= 0 {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			key := rest[:eq]
			if !nameRE.MatchString(key) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", key)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			for {
				if rest == "" {
					return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
				}
				c := rest[0]
				rest = rest[1:]
				if c == '\\' {
					if rest == "" {
						return "", nil, 0, fmt.Errorf("dangling escape in %q", line)
					}
					switch rest[0] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("bad escape \\%c in %q", rest[0], line)
					}
					rest = rest[1:]
					continue
				}
				if c == '"' {
					break
				}
				val.WriteByte(c)
			}
			labels = append(labels, Label{Key: key, Value: val.String()})
			if rest != "" && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}

	if rest == "" || rest[0] != ' ' {
		return "", nil, 0, fmt.Errorf("missing value in %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		// An optional trailing timestamp is the only extra field allowed.
		return "", nil, 0, fmt.Errorf("trailing garbage in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q", fields[0])
	}
	return name, labels, v, nil
}

// findLabel returns the value of the named label.
func findLabel(labels []Label, key string) (string, bool) {
	for _, l := range labels {
		if l.Key == key {
			return l.Value, true
		}
	}
	return "", false
}

// labelKeyWithoutLe renders a series identity ignoring the le label,
// order-insensitively.
func labelKeyWithoutLe(labels []Label) string {
	kept := make([]Label, 0, len(labels))
	for _, l := range labels {
		if l.Key != "le" {
			kept = append(kept, l)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Key < kept[j].Key })
	return seriesKey("", kept)
}

// parseLe parses a bucket bound, accepting "+Inf".
func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", s)
	}
	return v, nil
}
