// Package par holds the worker-pool primitive shared by every
// corpus-parallel stage of the pipeline (parsing, artifact indexing, the
// fused rule engine, metrics). Work items are claimed off an atomic
// counter, so results indexed by item land deterministically regardless
// of scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the worker count for n work items: GOMAXPROCS capped
// by n, at least 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn(i) for every i in [0, n) on the given number of workers.
// workers <= 1 runs inline with no goroutines. fn must write only to
// per-index state (or otherwise synchronize); For returns after every
// call completes.
func For(workers, n int, fn func(i int)) {
	ForWorkers(workers, n, func(_, i int) { fn(i) })
}

// ForWorkers is For with the worker id passed alongside the item index:
// all calls with the same worker id run on one goroutine, so callers can
// keep unsynchronized worker-local state (scratch buffers, handler
// programs) indexed by it. Worker ids are in [0, workers).
func ForWorkers(workers, n int, fn func(worker, i int)) {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
