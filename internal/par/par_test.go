package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Errorf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(-3); w != 1 {
		t.Errorf("Workers(-3) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Errorf("Workers(1) = %d, want 1", w)
	}
	max := runtime.GOMAXPROCS(0)
	if w := Workers(1 << 20); w != max {
		t.Errorf("Workers(big) = %d, want GOMAXPROCS %d", w, max)
	}
	if w := Workers(2); w > 2 || w < 1 {
		t.Errorf("Workers(2) = %d", w)
	}
}

// TestForResultPlacement checks that results written by index land
// deterministically at any worker count: every index is visited exactly
// once and out[i] depends only on i.
func TestForResultPlacement(t *testing.T) {
	const n = 1000
	for _, workers := range []int{0, 1, 2, 4, 16, n + 7} {
		out := make([]int, n)
		visits := make([]int32, n)
		For(workers, n, func(i int) {
			atomic.AddInt32(&visits[i], 1)
			out[i] = 3*i + 1
		})
		for i := 0; i < n; i++ {
			if visits[i] != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, visits[i])
			}
			if out[i] != 3*i+1 {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, out[i])
			}
		}
	}
}

// TestForWorkersLocality checks the worker-id contract: all calls with
// one worker id run on a single goroutine, so per-worker state needs no
// synchronization. Unsynchronized per-worker counters are the proof —
// the race detector (CI runs this package under -race) flags any
// violation, and the counts must add up to n.
func TestForWorkersLocality(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	const n = 2000
	workers := 4
	perWorker := make([]int, workers) // unsynchronized on purpose
	scratch := make([][]int, workers) // worker-local buffers
	ids := make([]int32, n)           // worker id per item
	ForWorkers(workers, n, func(w, i int) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range", w)
		}
		perWorker[w]++
		scratch[w] = append(scratch[w], i)
		atomic.StoreInt32(&ids[i], int32(w))
	})
	total := 0
	for w, c := range perWorker {
		if c != len(scratch[w]) {
			t.Errorf("worker %d: counter %d != buffer %d", w, c, len(scratch[w]))
		}
		total += c
	}
	if total != n {
		t.Errorf("total items = %d, want %d", total, n)
	}
}

// TestForEdgeCases covers n=0 and the inline workers<=1 path.
func TestForEdgeCases(t *testing.T) {
	calls := 0
	For(8, 0, func(i int) { calls++ })
	if calls != 0 {
		t.Errorf("n=0 made %d calls", calls)
	}
	ForWorkers(3, 0, func(w, i int) { calls++ })
	if calls != 0 {
		t.Errorf("ForWorkers n=0 made %d calls", calls)
	}

	// workers<=1 runs inline, in order, on the calling goroutine: the
	// unsynchronized append and the order check prove it.
	var order []int
	For(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order = %v", order)
		}
	}
	var order0 []int
	For(0, 4, func(i int) { order0 = append(order0, i) })
	if len(order0) != 4 {
		t.Fatalf("workers=0 processed %d items", len(order0))
	}
	ForWorkers(-2, 3, func(w, i int) {
		if w != 0 {
			t.Errorf("inline worker id = %d, want 0", w)
		}
	})
}

// TestForPanicSafety documents that a panicking fn propagates (no hang):
// the inline path panics synchronously.
func TestForPanicSafety(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("panic did not propagate through inline For")
		}
	}()
	For(1, 1, func(i int) { panic("boom") })
}
