package report_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpusgen"
	"repro/internal/iso26262"
	"repro/internal/report"
	"repro/internal/store"
)

// TestRenderedReportGolden pins the full rendered assessment report —
// summary, shard layout, Tables 1-3, observations, gap list — over a
// fixed corpusgen corpus against a golden file. Every section and its
// order is load-bearing: snapshot/restore work (or any engine refactor)
// that silently drops, reorders, or renumbers a section fails here.
// Regenerate with UPDATE_GOLDEN=1 after an intentional change.
func TestRenderedReportGolden(t *testing.T) {
	a := goldenAssessor(t)
	got := renderReport(a)

	golden := filepath.Join("testdata", "assessment_report.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Fatalf("rendered report diverges from golden (UPDATE_GOLDEN=1 to regenerate after intentional changes):\n%s",
			firstLineDiff(string(want), got))
	}
}

// TestRenderedReportGoldenAfterRestore renders the identical report
// from a snapshot round-trip of the same assessor: the restored warm
// state must reproduce the golden byte-for-byte.
func TestRenderedReportGoldenAfterRestore(t *testing.T) {
	a := goldenAssessor(t)
	st, err := a.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	st2, _, err := store.DecodeSnapshot(store.EncodeSnapshot(st, 1))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.RestoreAssessor(core.DefaultConfig(), st2)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "assessment_report.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Skipf("golden missing (run TestRenderedReportGolden with UPDATE_GOLDEN=1): %v", err)
	}
	if got := renderReport(restored); got != string(want) {
		t.Fatalf("restored assessor's rendered report diverges from golden:\n%s",
			firstLineDiff(string(want), got))
	}
}

func goldenAssessor(t *testing.T) *core.Assessor {
	t.Helper()
	gen := corpusgen.New(corpusgen.Params{Modules: 3, FilesPerModule: 4,
		FuncsPerFile: 3, ViolationsPerFile: 2, CUDAFiles: 1}, 26262)
	a := core.NewAssessor(core.DefaultConfig())
	if err := a.LoadFileSet(gen.FileSet()); err != nil {
		t.Fatal(err)
	}
	return a
}

// renderReport mirrors cmd/adassess's output shape over an assessor.
func renderReport(a *core.Assessor) string {
	var sb strings.Builder
	fw := a.Metrics()
	as := a.Assess()
	asil := as.Target

	fmt.Fprintf(&sb, "Corpus: %d files, %d LOC, %d functions across %d modules\n\n",
		len(fw.Files), fw.TotalLOC, fw.TotalFunc, len(fw.Modules))

	stats := a.ShardStats()
	sort.SliceStable(stats, func(i, j int) bool {
		if stats[i].Files != stats[j].Files {
			return stats[i].Files > stats[j].Files
		}
		return stats[i].Module < stats[j].Module
	})
	shardTable := report.NewTable(
		fmt.Sprintf("Shard layout — %d of %d module shards (largest first)", len(stats), len(stats)),
		"Shard", "Files", "Bytes", "Findings")
	for _, s := range stats {
		shardTable.AddRow(s.Module, s.Files, s.Bytes, s.Findings)
	}
	sb.WriteString(shardTable.String())
	sb.WriteString("\n")

	printTable := func(title string, group []iso26262.TopicAssessment) {
		tbl := report.NewTable(title, "#", "Topic", "Rec@"+asil.String(), "Verdict", "Violations", "Effort", "Evidence")
		for _, ta := range group {
			tbl.AddRow(ta.Topic.Item, ta.Topic.Name,
				ta.Topic.RecommendationFor(asil).String(),
				ta.Verdict.String(), ta.Violations, ta.Effort.String(), ta.Evidence)
		}
		sb.WriteString(tbl.String())
		sb.WriteString("\n")
	}
	printTable("Table 1 — Modeling/coding guidelines (ISO26262-6 Table 1)", as.Coding)
	printTable("Table 2 — Architectural design (ISO26262-6 Table 3)", as.Arch)
	printTable("Table 3 — Unit design & implementation (ISO26262-6 Table 8)", as.Unit)

	sb.WriteString("Observations (paper Section 3):\n")
	for _, o := range as.Observations {
		fmt.Fprintf(&sb, "  Observation %2d: %s\n                  evidence: %s\n", o.Number, o.Text, o.Evidence)
	}
	sb.WriteString("\n")

	gaps := as.Gaps()
	fmt.Fprintf(&sb, "Certification gaps at %s: %d topics block compliance\n", asil, len(gaps))
	for _, g := range gaps {
		fmt.Fprintf(&sb, "  - [T%d item %d] %s (%s, remediation: %s)\n",
			int(g.Topic.Table), g.Topic.Item, g.Topic.Name, g.Verdict, g.Effort)
	}
	return sb.String()
}

// firstLineDiff locates the first differing line for a readable failure.
func firstLineDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, w, g)
		}
	}
	return "(no line diff found — lengths differ?)"
}
