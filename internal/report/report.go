// Package report renders assessment results as aligned ASCII tables, CSV,
// and text bar charts — the output layer for the cmd tools and the
// EXPERIMENTS.md regeneration flow.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(t.Headers)
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// CSV writes the table as comma-separated values (quotes on demand).
func (t *Table) CSV(w io.Writer) {
	writeRec := func(cells []string) {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		fmt.Fprintln(w, strings.Join(out, ","))
	}
	writeRec(t.Headers)
	for _, row := range t.Rows {
		writeRec(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bar renders one labeled horizontal bar scaled to maxVal over width
// characters, e.g. "perception  |█████████░| 92.1".
type BarChart struct {
	Title string
	Width int // bar width in characters (default 40)
	rows  []barRow
}

type barRow struct {
	label string
	value float64
}

// NewBarChart creates a chart.
func NewBarChart(title string) *BarChart { return &BarChart{Title: title, Width: 40} }

// Add appends a bar.
func (b *BarChart) Add(label string, value float64) {
	b.rows = append(b.rows, barRow{label, value})
}

// Render writes the chart.
func (b *BarChart) Render(w io.Writer) {
	if b.Title != "" {
		fmt.Fprintf(w, "%s\n", b.Title)
	}
	maxLabel, maxVal := 0, 0.0
	for _, r := range b.rows {
		if len(r.label) > maxLabel {
			maxLabel = len(r.label)
		}
		if r.value > maxVal {
			maxVal = r.value
		}
	}
	width := b.Width
	if width <= 0 {
		width = 40
	}
	for _, r := range b.rows {
		n := 0
		if maxVal > 0 {
			n = int(r.value / maxVal * float64(width))
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(w, "%s |%s%s| %.2f\n", pad(r.label, maxLabel),
			strings.Repeat("#", n), strings.Repeat(".", width-n), r.value)
	}
}

// String renders to a string.
func (b *BarChart) String() string {
	var sb strings.Builder
	b.Render(&sb)
	return sb.String()
}
