package report

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRenderAlignment(t *testing.T) {
	tb := NewTable("Title", "Name", "Value")
	tb.AddRow("short", 1)
	tb.AddRow("much-longer-name", 12345)
	out := tb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// All table lines share the same width.
	w := len(lines[1])
	for _, l := range lines[2:] {
		if len(l) != w {
			t.Errorf("misaligned line %q (want width %d)", l, w)
		}
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "V")
	tb.AddRow(3.14159)
	tb.AddRow(float32(2.5))
	out := tb.String()
	if !strings.Contains(out, "3.14") || !strings.Contains(out, "2.50") {
		t.Errorf("float formatting: %q", out)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("plain", `has "quotes", and commas`)
	var sb strings.Builder
	tb.CSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"has ""quotes"", and commas"`) {
		t.Errorf("CSV quoting wrong: %q", out)
	}
	if !strings.HasPrefix(out, "A,B\n") {
		t.Errorf("CSV header: %q", out)
	}
}

func TestBarChartScaling(t *testing.T) {
	bc := NewBarChart("Chart")
	bc.Width = 10
	bc.Add("max", 100)
	bc.Add("half", 50)
	bc.Add("zero", 0)
	out := bc.String()
	if !strings.Contains(out, "##########") {
		t.Errorf("full bar missing: %q", out)
	}
	if !strings.Contains(out, "#####.....") {
		t.Errorf("half bar missing: %q", out)
	}
	if !strings.Contains(out, "..........") {
		t.Errorf("zero bar missing: %q", out)
	}
}

func TestBarChartEmptyAndDefaults(t *testing.T) {
	bc := NewBarChart("")
	out := bc.String()
	if out != "" {
		t.Errorf("empty chart rendered %q", out)
	}
	bc2 := NewBarChart("t")
	bc2.Width = 0 // default applies
	bc2.Add("a", 1)
	if !strings.Contains(bc2.String(), strings.Repeat("#", 40)) {
		t.Error("default width not applied")
	}
}

// Property: every CSV output has exactly rows+1 lines and each quoted cell
// round-trips the original comma count.
func TestCSVLineCountProperty(t *testing.T) {
	f := func(cells []uint8) bool {
		tb := NewTable("", "C")
		for _, c := range cells {
			tb.AddRow(strings.Repeat(",", int(c%3)) + "x")
		}
		var sb strings.Builder
		tb.CSV(&sb)
		lines := strings.Count(sb.String(), "\n")
		return lines == len(cells)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: rendered table width is monotone in the longest cell.
func TestTableWidthProperty(t *testing.T) {
	f := func(n uint8) bool {
		tb := NewTable("", "A")
		tb.AddRow(strings.Repeat("x", int(n%60)))
		line := strings.Split(tb.String(), "\n")[0]
		return len(line) >= int(n%60)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
