package rules

import (
	"fmt"

	"repro/internal/ccast"
	"repro/internal/iso26262"
)

var refDefensive = iso26262.Ref{Table: iso26262.TableCoding, Item: 4}

// DefensiveRule checks the two defensive-implementation properties the
// paper calls out: (a) functions must validate pointer parameters before
// dereferencing them, and (b) callers must not discard the return value of
// non-void functions.
type DefensiveRule struct{}

// ID implements Rule.
func (*DefensiveRule) ID() string { return "defensive" }

// Describe implements Rule.
func (*DefensiveRule) Describe() string {
	return "use defensive implementation techniques (ISO26262-6 T1.4)"
}

// Check implements Rule.
func (r *DefensiveRule) Check(ctx *Context) []Finding {
	var out []Finding
	for _, fi := range ctx.Funcs {
		out = append(out, r.checkParamValidation(fi)...)
		out = append(out, r.checkIgnoredReturns(ctx, fi)...)
	}
	return out
}

// Fuse implements FusedRule. Pointer-parameter tracking keeps the
// checked/used maps in the worker closure, fed by If/Index/Unary/Member
// events from the shared walk; ignored returns dispatch off ExprStmt
// events directly.
func (r *DefensiveRule) Fuse(rg *Registrar, ctx *Context) {
	var ptrParams []string
	checked := make(map[string]bool)
	used := make(map[string]int)
	rg.OnFuncEnter(func(fi *FuncInfo, em *Emitter) {
		ptrParams = ptrParams[:0]
		for _, p := range fi.Decl.Params {
			if p.Name != "" && p.Type.IsPointer() {
				ptrParams = append(ptrParams, p.Name)
			}
		}
		if len(ptrParams) > 0 {
			clear(checked)
			clear(used)
		}
	})
	rg.OnNode(func(fi *FuncInfo, n ccast.Node, em *Emitter) {
		if len(ptrParams) == 0 {
			if es, ok := n.(*ccast.ExprStmt); ok {
				r.ignoredReturnFinding(ctx, fi, es, em)
			}
			return
		}
		switch n := n.(type) {
		case *ccast.If:
			for _, name := range nullCheckedNames(n.Cond) {
				checked[name] = true
			}
		case *ccast.Index:
			if id, ok := n.X.(*ccast.Ident); ok {
				noteUse(used, id)
			}
		case *ccast.Unary:
			if n.Op == "*" {
				if id, ok := n.X.(*ccast.Ident); ok {
					noteUse(used, id)
				}
			}
		case *ccast.Member:
			if n.Arrow {
				if id, ok := n.X.(*ccast.Ident); ok {
					noteUse(used, id)
				}
			}
		case *ccast.ExprStmt:
			r.ignoredReturnFinding(ctx, fi, n, em)
		}
	}, KIf, KIndex, KUnary, KMember, KExprStmt)
	rg.OnFuncExit(func(fi *FuncInfo, em *Emitter) {
		if len(ptrParams) > 0 {
			r.uncheckedDerefFindings(fi, ptrParams, checked, used, em)
		}
	})
}

// uncheckedDerefFindings reports pointer parameters dereferenced without a
// preceding null check.
func (r *DefensiveRule) uncheckedDerefFindings(fi *FuncInfo, ptrParams []string, checked map[string]bool, used map[string]int, em *Emitter) {
	for _, name := range ptrParams {
		line, isUsed := used[name]
		if isUsed && !checked[name] {
			em.Emit(finding(r.ID(), Violation, fi, line,
				fmt.Sprintf("pointer parameter %q dereferenced without null check", name),
				refDefensive))
		}
	}
}

// ignoredReturnFinding flags one expression statement discarding the
// result of a non-void defined function.
func (r *DefensiveRule) ignoredReturnFinding(ctx *Context, fi *FuncInfo, es *ccast.ExprStmt, em *Emitter) {
	call, ok := es.X.(*ccast.Call)
	if !ok {
		return
	}
	name := CalleeName(call)
	callee, defined := ctx.ByName[name]
	if !defined || callee.Decl.Ret == nil || callee.Decl.Ret.IsVoid() {
		return
	}
	em.Emit(finding(r.ID(), Warning, fi, es.Span().Start.Line,
		fmt.Sprintf("return value of %s() ignored", name), refDefensive))
}

// checkParamValidation flags pointer parameters used without a preceding
// null check anywhere in the function.
func (r *DefensiveRule) checkParamValidation(fi *FuncInfo) []Finding {
	var out []Finding
	var ptrParams []string
	for _, p := range fi.Decl.Params {
		if p.Name != "" && p.Type.IsPointer() {
			ptrParams = append(ptrParams, p.Name)
		}
	}
	if len(ptrParams) == 0 {
		return nil
	}
	checked := make(map[string]bool)
	used := make(map[string]int) // name → first use line
	ccast.Walk(fi.Decl.Body, func(n ccast.Node) bool {
		switch n := n.(type) {
		case *ccast.If:
			for _, name := range nullCheckedNames(n.Cond) {
				checked[name] = true
			}
		case *ccast.Index:
			if id, ok := n.X.(*ccast.Ident); ok {
				noteUse(used, id)
			}
		case *ccast.Unary:
			if n.Op == "*" {
				if id, ok := n.X.(*ccast.Ident); ok {
					noteUse(used, id)
				}
			}
		case *ccast.Member:
			if n.Arrow {
				if id, ok := n.X.(*ccast.Ident); ok {
					noteUse(used, id)
				}
			}
		}
		return true
	})
	em := &Emitter{}
	r.uncheckedDerefFindings(fi, ptrParams, checked, used, em)
	return append(out, em.out...)
}

func noteUse(used map[string]int, id *ccast.Ident) {
	if _, ok := used[id.Name]; !ok {
		used[id.Name] = id.Span().Start.Line
	}
}

// nullCheckedNames extracts names null-compared in a condition:
// p == NULL, p != nullptr, !p, p (truthiness), including across && / ||.
func nullCheckedNames(e ccast.Expr) []string {
	var out []string
	switch e := e.(type) {
	case *ccast.Paren:
		return nullCheckedNames(e.X)
	case *ccast.Unary:
		if e.Op == "!" {
			if id, ok := e.X.(*ccast.Ident); ok {
				out = append(out, id.Name)
			}
		}
	case *ccast.Ident:
		out = append(out, e.Name)
	case *ccast.Binary:
		switch e.Op {
		case "&&", "||":
			out = append(out, nullCheckedNames(e.L)...)
			out = append(out, nullCheckedNames(e.R)...)
		case "==", "!=":
			if isNullish(e.R) {
				if id, ok := e.L.(*ccast.Ident); ok {
					out = append(out, id.Name)
				}
			}
			if isNullish(e.L) {
				if id, ok := e.R.(*ccast.Ident); ok {
					out = append(out, id.Name)
				}
			}
		}
	}
	return out
}

func isNullish(e ccast.Expr) bool {
	switch e := e.(type) {
	case *ccast.BoolLit:
		return e.IsNull
	case *ccast.IntLit:
		return e.Value == 0
	case *ccast.Ident:
		return e.Name == "NULL"
	case *ccast.Cast:
		return isNullish(e.X)
	default:
		return false
	}
}

// checkIgnoredReturns flags expression statements that call a non-void
// defined function and discard its result.
func (r *DefensiveRule) checkIgnoredReturns(ctx *Context, fi *FuncInfo) []Finding {
	em := &Emitter{}
	ccast.WalkStmts(fi.Decl.Body, func(s ccast.Stmt) bool {
		if es, ok := s.(*ccast.ExprStmt); ok {
			r.ignoredReturnFinding(ctx, fi, es, em)
		}
		return true
	})
	return em.out
}
