package rules

import (
	"repro/internal/ccast"
	"repro/internal/par"
)

// This file implements the fused single-pass rule engine. The seed engine
// gave every rule its own full-corpus traversal (20+ ccast walks over
// every function body); here each function body is walked exactly once
// and node events are dispatched to the rules that registered interest.
// Files are processed in parallel by a worker pool and merged
// deterministically, so Run's output is byte-identical to the sequential
// reference engine (RunSequential) under the total order of sortFindings.

// NodeKind enumerates the AST node categories rules can subscribe to.
type NodeKind int

// Node kinds the dispatcher distinguishes; kinds no fused rule needs are
// not dispatched at all.
const (
	KIf NodeKind = iota
	KWhile
	KDoWhile
	KFor
	KSwitch
	KCall
	KKernelLaunch
	KCast
	KNew
	KDelete
	KComma
	KIntLit
	KIdent
	KDeclStmt
	KExprStmt
	KAssign
	KIndex
	KUnary
	KMember
	KGoto
	numNodeKinds
)

// kindOf classifies a node, returning -1 for kinds with no subscribers.
func kindOf(n ccast.Node) NodeKind {
	switch n.(type) {
	case *ccast.Ident:
		return KIdent
	case *ccast.Call:
		return KCall
	case *ccast.Member:
		return KMember
	case *ccast.Unary:
		return KUnary
	case *ccast.Index:
		return KIndex
	case *ccast.IntLit:
		return KIntLit
	case *ccast.Assign:
		return KAssign
	case *ccast.ExprStmt:
		return KExprStmt
	case *ccast.DeclStmt:
		return KDeclStmt
	case *ccast.If:
		return KIf
	case *ccast.While:
		return KWhile
	case *ccast.DoWhile:
		return KDoWhile
	case *ccast.For:
		return KFor
	case *ccast.Switch:
		return KSwitch
	case *ccast.Cast:
		return KCast
	case *ccast.NewExpr:
		return KNew
	case *ccast.DeleteExpr:
		return KDelete
	case *ccast.Comma:
		return KComma
	case *ccast.KernelLaunch:
		return KKernelLaunch
	case *ccast.Goto:
		return KGoto
	default:
		return -1
	}
}

// Emitter collects findings during a pass. Rules call Emit; the engine
// owns the buffer and drains it per file so parallel workers never share
// finding slices.
type Emitter struct {
	out []Finding
}

// Emit appends one finding.
func (em *Emitter) Emit(f Finding) { em.out = append(em.out, f) }

// Handler signatures for each event class.
type (
	// NodeFn handles one AST node inside the current function body.
	NodeFn func(fi *FuncInfo, n ccast.Node, em *Emitter)
	// FuncFn fires at function scope (enter, exit, or whole-function).
	FuncFn func(fi *FuncInfo, em *Emitter)
	// UnitFn fires once per translation unit.
	UnitFn func(tu *ccast.TranslationUnit, em *Emitter)
	// DeclFn handles one declaration-level node (outside function bodies).
	DeclFn func(tu *ccast.TranslationUnit, n ccast.Node, em *Emitter)
	// CorpusFn fires once for the whole corpus (cross-file rules).
	CorpusFn func(ctx *Context, em *Emitter)
)

// Registrar collects one engine program: every fused rule's subscriptions
// for one worker. Rule closures may keep per-function state; a program is
// never shared between goroutines.
type Registrar struct {
	nodes     [numNodeKinds][]NodeFn
	funcEnter []FuncFn
	funcExit  []FuncFn
	funcWhole []FuncFn
	units     []UnitFn
	decls     []DeclFn
	corpus    []CorpusFn
	anyNodes  bool
}

// OnNode subscribes a handler to the given node kinds within function
// bodies.
func (rg *Registrar) OnNode(h NodeFn, kinds ...NodeKind) {
	for _, k := range kinds {
		rg.nodes[k] = append(rg.nodes[k], h)
	}
	rg.anyNodes = rg.anyNodes || len(kinds) > 0
}

// OnFuncEnter subscribes a handler fired before a function's body walk.
func (rg *Registrar) OnFuncEnter(h FuncFn) { rg.funcEnter = append(rg.funcEnter, h) }

// OnFuncExit subscribes a handler fired after a function's body walk.
func (rg *Registrar) OnFuncExit(h FuncFn) { rg.funcExit = append(rg.funcExit, h) }

// OnFunc subscribes a whole-function handler for rules whose analysis
// needs its own structured traversal (scoped shadowing, init tracking).
func (rg *Registrar) OnFunc(h FuncFn) { rg.funcWhole = append(rg.funcWhole, h) }

// OnUnit subscribes a per-translation-unit handler (text-level checks,
// global-variable scans).
func (rg *Registrar) OnUnit(h UnitFn) { rg.units = append(rg.units, h) }

// OnDecl subscribes a handler for declaration-level nodes: top-level and
// namespace-scope declarations plus record methods, never descending into
// function bodies.
func (rg *Registrar) OnDecl(h DeclFn) { rg.decls = append(rg.decls, h) }

// OnCorpus subscribes a corpus-level handler, run exactly once per Run
// regardless of worker count.
//
// Contract: a corpus handler must be a pure function of the corpus
// call-graph/export view — function names (full and unqualified), files,
// declaration lines, complexity, return counts, callee lists, and global
// variable names. The sharded engine caches corpus-level output under
// the artifact index's GraphOverlay/ExportOverlay, which cover exactly
// that view; a handler reading anything else (statement bodies, file
// text) would go stale across deltas that keep the view unchanged.
func (rg *Registrar) OnCorpus(h CorpusFn) { rg.corpus = append(rg.corpus, h) }

// FusedRule is a Rule that can register with the fused engine instead of
// performing its own corpus traversal.
type FusedRule interface {
	Rule
	// Fuse registers the rule's event subscriptions. Called once per
	// worker; closures may carry per-function mutable state.
	Fuse(rg *Registrar, ctx *Context)
}

// newProgram builds a fresh program over the rules.
func newProgram(ctx *Context, fused []FusedRule) *Registrar {
	rg := &Registrar{}
	for _, fr := range fused {
		fr.Fuse(rg, ctx)
	}
	return rg
}

// walkDeclNodes visits declaration-level nodes in source order: top-level
// declarations, namespace members (recursively), and record methods.
func walkDeclNodes(tu *ccast.TranslationUnit, visit func(ccast.Node)) {
	var rec func(ds []ccast.Decl)
	rec = func(ds []ccast.Decl) {
		for _, d := range ds {
			visit(d)
			switch d := d.(type) {
			case *ccast.NamespaceDecl:
				rec(d.Decls)
			case *ccast.RecordDecl:
				for _, m := range d.Methods {
					visit(m)
				}
			}
		}
	}
	rec(tu.Decls)
}

// runUnit executes the program over one translation unit: unit hooks,
// decl-level dispatch, then one fused walk per function body.
func (rg *Registrar) runUnit(ctx *Context, path string, em *Emitter) {
	tu := ctx.Units[path]
	for _, h := range rg.units {
		h(tu, em)
	}
	if len(rg.decls) > 0 {
		walkDeclNodes(tu, func(n ccast.Node) {
			for _, h := range rg.decls {
				h(tu, n, em)
			}
		})
	}
	for _, fi := range ctx.unitFuncs[path] {
		for _, h := range rg.funcEnter {
			h(fi, em)
		}
		if rg.anyNodes {
			ccast.Walk(fi.Decl.Body, func(n ccast.Node) bool {
				if k := kindOf(n); k >= 0 {
					for _, h := range rg.nodes[k] {
						h(fi, n, em)
					}
				}
				return true
			})
		}
		for _, h := range rg.funcWhole {
			h(fi, em)
		}
		for _, h := range rg.funcExit {
			h(fi, em)
		}
	}
}

// runCorpusHooks builds one program and fires its corpus-level hooks;
// the program is returned for reuse as a per-file worker program.
func runCorpusHooks(ctx *Context, fused []FusedRule, em *Emitter) *Registrar {
	prog := newProgram(ctx, fused)
	for _, h := range prog.corpus {
		h(ctx, em)
	}
	return prog
}

// runUnits executes per-file programs over the given paths on a worker
// pool and returns the findings of each path, index-aligned. reuse, when
// non-nil, serves as worker 0's program (rule closures carry per-function
// state, so a program is never shared between goroutines).
func runUnits(ctx *Context, fused []FusedRule, paths []string, reuse *Registrar) [][]Finding {
	if len(paths) == 0 {
		return nil
	}
	perFile := make([][]Finding, len(paths))
	workers := par.Workers(len(paths))
	progs := make([]*Registrar, workers)
	ems := make([]*Emitter, workers)
	progs[0], ems[0] = reuse, &Emitter{}
	if progs[0] == nil {
		progs[0] = newProgram(ctx, fused)
	}
	for w := 1; w < workers; w++ {
		progs[w], ems[w] = newProgram(ctx, fused), &Emitter{}
	}
	par.ForWorkers(workers, len(paths), func(w, i int) {
		em := ems[w]
		em.out = nil
		progs[w].runUnit(ctx, paths[i], em)
		perFile[i] = em.out
	})
	return perFile
}

// runFused executes the fused engine: corpus-level hooks once, then every
// file on a worker pool, then a deterministic merge and canonical sort.
func runFused(ctx *Context, fused []FusedRule) []Finding {
	if ctx.Index == nil || ctx.unitFuncs == nil {
		// Hand-built contexts lack the per-unit index; use the reference
		// engine.
		rs := make([]Rule, len(fused))
		for i, fr := range fused {
			rs[i] = fr
		}
		return RunSequential(ctx, rs)
	}
	paths := ctx.Index.Paths

	corpusEm := &Emitter{}
	corpusProg := runCorpusHooks(ctx, fused, corpusEm)
	perFile := runUnits(ctx, fused, paths, corpusProg)

	total := len(corpusEm.out)
	for _, fs := range perFile {
		total += len(fs)
	}
	out := make([]Finding, 0, total)
	out = append(out, corpusEm.out...)
	for _, fs := range perFile {
		out = append(out, fs...)
	}
	sortFindings(out)
	return out
}
