package rules_test

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/apollocorpus"
	"repro/internal/artifact"
	"repro/internal/ccparse"
	"repro/internal/rules"
)

// forceParallel raises GOMAXPROCS so the engine's worker pools spawn real
// goroutines even on single-core runners — the -race gate must exercise
// the concurrent paths everywhere.
func forceParallel(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
}

// renderFindings serializes every field of every finding so byte equality
// means full equality, including ordering.
func renderFindings(fs []rules.Finding) []byte {
	var buf bytes.Buffer
	for i := range fs {
		f := &fs[i]
		fmt.Fprintf(&buf, "%s|%s|%s|%d|%s|%s|%v\n",
			f.File, f.Module, f.Function, f.Line, f.RuleID, f.Severity, f.Refs)
		buf.WriteString(f.Msg)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func parseDefaultCorpus(t *testing.T) *rules.Context {
	t.Helper()
	fs := apollocorpus.GenerateDefault()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("corpus parse errors: %v", errs[0])
	}
	return rules.NewContextFromIndex(artifact.Build(units))
}

// TestFusedEngineMatchesSequential is the engine-equivalence gate: the
// fused parallel engine must emit findings byte-identical to the seed
// sequential engine on the default corpus. Two rounds catch ordering
// races in the parallel merge (run under -race in CI).
func TestFusedEngineMatchesSequential(t *testing.T) {
	forceParallel(t)
	ctx := parseDefaultCorpus(t)
	var first []byte
	for round := 0; round < 2; round++ {
		seq := rules.RunSequential(ctx, rules.DefaultRules())
		par := rules.Run(ctx, rules.DefaultRules())
		if len(par) == 0 {
			t.Fatalf("round %d: fused engine found nothing", round)
		}
		seqB, parB := renderFindings(seq), renderFindings(par)
		if !bytes.Equal(seqB, parB) {
			t.Fatalf("round %d: fused output differs from sequential (%d vs %d findings)\n%s",
				round, len(par), len(seq), firstDiff(seqB, parB))
		}
		if round == 0 {
			first = parB
		} else if !bytes.Equal(first, parB) {
			t.Fatalf("fused engine output differs between rounds\n%s", firstDiff(first, parB))
		}
	}
}

// firstDiff excerpts the first divergence between two renderings.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 120
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+120, i+120
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			return fmt.Sprintf("sequential: ...%s...\nfused:      ...%s...", a[lo:hiA], b[lo:hiB])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d bytes", len(a), len(b))
}

// TestFusedEngineSubsets checks engine equivalence on rule subsets (the
// bench harness runs the coding and unit table subsets separately).
func TestFusedEngineSubsets(t *testing.T) {
	forceParallel(t)
	ctx := parseDefaultCorpus(t)
	subsets := map[string][]rules.Rule{
		"coding": {
			&rules.ComplexityRule{Threshold: 10}, &rules.LanguageSubsetRule{},
			&rules.CastRule{}, &rules.DefensiveRule{}, &rules.GlobalVarRule{},
			&rules.StyleRule{}, &rules.NamingRule{},
		},
		"unit": {
			&rules.MultiExitRule{}, &rules.DynamicMemoryRule{},
			&rules.UninitializedRule{}, &rules.ShadowRule{},
			&rules.GlobalVarRule{}, &rules.PointerRule{},
			&rules.ImplicitConversionRule{}, &rules.GotoRule{},
			&rules.RecursionRule{},
		},
	}
	for name, rs := range subsets {
		seq := renderFindings(rules.RunSequential(ctx, rs))
		par := renderFindings(rules.Run(ctx, rs))
		if !bytes.Equal(seq, par) {
			t.Errorf("%s subset: fused output differs from sequential\n%s", name, firstDiff(seq, par))
		}
	}
}
