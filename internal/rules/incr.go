package rules

import (
	"hash/fnv"
	"sort"

	"repro/internal/artifact"
)

// This file implements the incremental rule engine: per-file findings
// are cached under the file's content hash, so a re-run after a small
// corpus delta re-checks only the dirty files and reuses everything
// else. The merged output is byte-identical to a cold Run over the same
// context (both funnel through sortFindings' total order).
//
// Soundness: a file's findings are a function of (a) its own content and
// (b) the few cross-file facts per-file handlers consult — callee
// voidness via Context.ByName (DefensiveRule's ignored-return check) and
// global-name membership via Context.GlobalNames (ShadowRule). Those
// facts are folded into an environment signature; when a delta changes
// them (a signature edit, a new global) every cached entry is dropped
// and the run degrades to a full fused pass. Corpus-level rules
// (RecursionRule's call-graph SCC) re-run on every call — they are cheap
// against the cached callee inventories.

// incrEntry is one cached per-file result.
type incrEntry struct {
	hash     uint64
	findings []Finding
}

// Incremental is a reusable rule engine that caches per-file findings
// between runs. It is not safe for concurrent use; callers serialize
// Run (the Assessor holds one Incremental per corpus).
type Incremental struct {
	rules   []Rule
	fused   []FusedRule // nil when any rule lacks a fused form
	env     uint64
	haveEnv bool
	perFile map[string]incrEntry

	// envIx/envGen memoize envSignature per index generation: equal
	// (pointer, gen) means identical cross-file views.
	envIx  *artifact.Index
	envGen uint64

	// lastDirty records how many files the previous Run re-checked;
	// tests and the service's delta statistics read it.
	lastDirty int
}

// NewIncremental creates an incremental engine over the given rule set.
// Rule sets containing non-fused rules still work but fall back to a
// full sequential run every time (nothing is cached).
func NewIncremental(rs []Rule) *Incremental {
	inc := &Incremental{rules: rs, perFile: make(map[string]incrEntry)}
	fused := make([]FusedRule, 0, len(rs))
	for _, r := range rs {
		fr, ok := r.(FusedRule)
		if !ok {
			fused = nil
			break
		}
		fused = append(fused, fr)
	}
	inc.fused = fused
	return inc
}

// LastDirty returns the number of files the previous Run re-checked
// (every file on a cold or invalidated run).
func (inc *Incremental) LastDirty() int { return inc.lastDirty }

// Run executes the rules over the context, reusing cached per-file
// findings for files whose content hash is unchanged since the previous
// Run. Output is byte-identical to rules.Run over the same context.
func (inc *Incremental) Run(ctx *Context) []Finding {
	if inc.fused == nil || ctx.Index == nil || ctx.unitFuncs == nil {
		inc.lastDirty = len(ctx.Units)
		return Run(ctx, inc.rules)
	}
	var env uint64
	if inc.haveEnv && inc.envIx == ctx.Index && inc.envGen == ctx.Index.Gen() {
		env = inc.env
	} else {
		env = envSignature(ctx)
	}
	if !inc.haveEnv || env != inc.env {
		clear(inc.perFile)
	}
	inc.env, inc.haveEnv = env, true
	inc.envIx, inc.envGen = ctx.Index, ctx.Index.Gen()

	paths := ctx.Index.Paths
	var dirty []string
	var dirtyHash []uint64
	for _, p := range paths {
		h := ctx.Units[p].File.Hash()
		if e, ok := inc.perFile[p]; !ok || e.hash != h {
			dirty = append(dirty, p)
			dirtyHash = append(dirtyHash, h)
		}
	}
	inc.lastDirty = len(dirty)

	// Corpus-level hooks see the whole (updated) context every run.
	corpusEm := &Emitter{}
	corpusProg := runCorpusHooks(ctx, inc.fused, corpusEm)

	// Cache each dirty file's findings pre-sorted: within a file the
	// findingLess order is self-contained, so the file-major
	// concatenation below is globally sorted without a full re-sort.
	for k, fs := range runUnits(ctx, inc.fused, dirty, corpusProg) {
		sortFindings(fs)
		inc.perFile[dirty[k]] = incrEntry{hash: dirtyHash[k], findings: fs}
	}
	if len(inc.perFile) > len(paths) {
		live := make(map[string]bool, len(paths))
		for _, p := range paths {
			live[p] = true
		}
		for p := range inc.perFile {
			if !live[p] {
				delete(inc.perFile, p)
			}
		}
	}

	totalPerFile := 0
	for _, p := range paths {
		totalPerFile += len(inc.perFile[p].findings)
	}
	merged := make([]Finding, 0, totalPerFile+len(corpusEm.out))
	for _, p := range paths {
		merged = append(merged, inc.perFile[p].findings...)
	}
	if len(corpusEm.out) == 0 {
		return merged
	}
	// Merge the (few) corpus-level findings into the sorted stream.
	corpus := corpusEm.out
	sortFindings(corpus)
	out := make([]Finding, 0, len(merged)+len(corpus))
	i, j := 0, 0
	for i < len(merged) && j < len(corpus) {
		if findingLess(&corpus[j], &merged[i]) {
			out = append(out, corpus[j])
			j++
		} else {
			out = append(out, merged[i])
			i++
		}
	}
	out = append(out, merged[i:]...)
	out = append(out, corpus[j:]...)
	return out
}

// envSignature hashes the cross-file facts per-file rule handlers read:
// the global-variable name set (ShadowRule) and each known function's
// name and return voidness (DefensiveRule's ignored-return check). Any
// new per-file handler that consults additional Context state must fold
// that state in here, or stale cached findings will survive deltas that
// change it.
func envSignature(ctx *Context) uint64 {
	keys := make([]string, 0, len(ctx.GlobalNames)+len(ctx.ByName))
	for name, mod := range ctx.GlobalNames {
		keys = append(keys, "g\x00"+name+"\x00"+mod)
	}
	for name, fi := range ctx.ByName {
		v := "r"
		if fi == nil || fi.Decl.Ret == nil || fi.Decl.Ret.IsVoid() {
			v = "v"
		}
		keys = append(keys, "f\x00"+name+"\x00"+v)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	sep := []byte{0xff}
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write(sep)
	}
	return h.Sum64()
}
