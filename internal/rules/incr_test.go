package rules_test

import (
	"bytes"
	"testing"

	"repro/internal/apollocorpus"
	"repro/internal/artifact"
	"repro/internal/ccast"
	"repro/internal/ccparse"
	"repro/internal/rules"
	"repro/internal/srcfile"
)

// reparse parses one edited file and swaps it into the index, mirroring
// what core.Assessor.ApplyDelta does.
func reparse(t *testing.T, ix *artifact.Index, path, src string) {
	t.Helper()
	f := &srcfile.File{Path: path, Lang: srcfile.LanguageForPath(path), Src: src}
	tu, errs := ccparse.Parse(f, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse %s: %v", path, errs[0])
	}
	ix.ReplaceUnit(tu)
}

// TestIncrementalMatchesColdRun drives the incremental engine through a
// sequence of deltas over the default corpus; after each delta its output
// must be byte-identical to a cold fused run over the same context, while
// re-checking only the dirty file when the cross-file environment is
// unchanged.
func TestIncrementalMatchesColdRun(t *testing.T) {
	forceParallel(t)
	fs := apollocorpus.GenerateDefault()
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("corpus parse errors: %v", errs[0])
	}
	ix := artifact.Build(units)
	inc := rules.NewIncremental(rules.DefaultRules())

	check := func(stage string, wantDirty int) {
		t.Helper()
		ctx := rules.NewContextFromIndex(ix)
		warm := renderFindings(inc.Run(ctx))
		cold := renderFindings(rules.Run(ctx, rules.DefaultRules()))
		if !bytes.Equal(warm, cold) {
			t.Fatalf("%s: incremental output differs from cold run\n%s",
				stage, firstDiff(cold, warm))
		}
		if wantDirty >= 0 && inc.LastDirty() != wantDirty {
			t.Fatalf("%s: re-checked %d files, want %d", stage, inc.LastDirty(), wantDirty)
		}
	}

	check("cold", len(ix.Paths))
	check("no-op rerun", 0)

	// Adding a function changes the cross-file environment (ByName feeds
	// the ignored-return check), so the whole cache is invalidated — the
	// conservative-but-correct path.
	victim := ix.Paths[len(ix.Paths)/2]
	src := ix.Units[victim].File.Src
	reparse(t, ix, victim, src+"\nint incr_probe(int x) { if (x > 2) { return 1; } return 0; }\n")
	check("new-function edit", len(ix.Paths))

	// A new global likewise invalidates everything (ShadowRule consults
	// the global name set).
	other := ix.Paths[0]
	reparse(t, ix, other, ix.Units[other].File.Src+"\nint incr_probe_global;\n")
	check("env edit", len(ix.Paths))
	check("post-env rerun", 0)

	// Removal delta: cached entries for the remaining files stay valid
	// as long as the removed file contributed no globals or first-wins
	// ByName entries... which it did (incr_probe), so expect a full
	// re-check here too, then a clean no-op.
	ix.RemoveUnit(victim)
	check("removal", len(ix.Paths))
	check("post-removal rerun", 0)
}

// TestIncrementalBodyEditChecksOneFile pins the fast path on a corpus
// whose edits are controlled: an edit that keeps every function
// signature and global intact re-checks exactly the dirty file, and the
// merged findings stay byte-identical to a cold run.
func TestIncrementalBodyEditChecksOneFile(t *testing.T) {
	forceParallel(t)
	srcs := map[string]string{
		"m/a.c": "int ga;\nint fa(int x) { int y; return y + x; }\n",
		"m/b.c": "int fb(int x) { if (x > 0) { return 1; } return 0; }\n",
		"n/c.c": "void fc(void) { fb(3); }\n",
		"n/d.c": "int fd(int k) { int ga; return ga + k; }\n",
	}
	fs := srcfile.NewFileSet()
	for p, src := range srcs {
		fs.AddSource(p, src)
	}
	units, errs := ccparse.ParseAll(fs, ccparse.Options{})
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	ix := artifact.Build(units)
	inc := rules.NewIncremental(rules.DefaultRules())

	check := func(stage string, wantDirty int) {
		t.Helper()
		ctx := rules.NewContextFromIndex(ix)
		warm := renderFindings(inc.Run(ctx))
		cold := renderFindings(rules.Run(ctx, rules.DefaultRules()))
		if !bytes.Equal(warm, cold) {
			t.Fatalf("%s: incremental output differs from cold run\n%s",
				stage, firstDiff(cold, warm))
		}
		if inc.LastDirty() != wantDirty {
			t.Fatalf("%s: re-checked %d files, want %d", stage, inc.LastDirty(), wantDirty)
		}
	}

	check("cold", 4)
	check("no-op", 0)

	// Same signature (fb stays int(int)), same globals — new body with
	// different findings (a goto and a multi-exit structure).
	reparse(t, ix, "m/b.c",
		"int fb(int x) {\n  if (x > 1) { goto out; }\n  return 0;\nout:\n  return 1;\n}\n")
	check("body edit", 1)
	check("body edit no-op", 0)
}

// TestIncrementalFallbacks pins the degraded paths: non-fused rule sets
// and hand-built contexts run the reference engine with full equivalence.
func TestIncrementalFallbacks(t *testing.T) {
	ctx := parseDefaultCorpus(t)

	// A hand-built context (no index) must take the sequential path.
	bare := &rules.Context{Units: ctx.Units, Funcs: ctx.Funcs,
		ByName: ctx.ByName, GlobalNames: ctx.GlobalNames}
	inc := rules.NewIncremental(rules.DefaultRules())
	warm := renderFindings(inc.Run(bare))
	cold := renderFindings(rules.RunSequential(bare, rules.DefaultRules()))
	if !bytes.Equal(warm, cold) {
		t.Errorf("bare-context incremental differs from sequential\n%s", firstDiff(cold, warm))
	}

	// A rule set with a non-fused member disables caching but stays
	// equivalent.
	rs := append(rules.DefaultRules(), unfusedRule{})
	inc = rules.NewIncremental(rs)
	warm = renderFindings(inc.Run(ctx))
	cold = renderFindings(rules.Run(ctx, rs))
	if !bytes.Equal(warm, cold) {
		t.Errorf("non-fused incremental differs from Run\n%s", firstDiff(cold, warm))
	}
}

// unfusedRule is a Rule without a Fuse method.
type unfusedRule struct{}

func (unfusedRule) ID() string       { return "zz-unfused" }
func (unfusedRule) Describe() string { return "test-only rule without a fused form" }
func (unfusedRule) Check(ctx *rules.Context) []rules.Finding {
	var out []rules.Finding
	for _, tu := range ctx.Units {
		_ = tu
	}
	_ = ccast.Node(nil)
	return out
}
