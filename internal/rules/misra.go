package rules

import (
	"fmt"
	"strings"

	"repro/internal/ccast"
)

// MISRAExtraRule adds further decidable MISRA C:2012 checks beyond the
// core LanguageSubsetRule: switch hygiene (R16.3/R16.4), assignments in
// controlling expressions (R13.4), octal literals (R7.1), and unused
// parameters (advisory R2.7). The paper's point — that AD code was never
// written against any such subset — is evidenced by the density of these
// findings across the corpus.
type MISRAExtraRule struct{}

// ID implements Rule.
func (*MISRAExtraRule) ID() string { return "misra-extra" }

// Describe implements Rule.
func (*MISRAExtraRule) Describe() string {
	return "additional MISRA C:2012 decidable rules (ISO26262-6 T1.2)"
}

// Check implements Rule.
func (r *MISRAExtraRule) Check(ctx *Context) []Finding {
	var out []Finding
	for _, fi := range ctx.Funcs {
		out = append(out, r.checkSwitches(fi)...)
		out = append(out, r.checkConditions(fi)...)
		out = append(out, r.checkOctals(fi)...)
		out = append(out, r.checkUnusedParams(fi)...)
	}
	return out
}

// checkSwitches enforces R16.4 (default label present) and R16.3 (every
// non-empty case group ends in an unconditional break or return).
func (r *MISRAExtraRule) checkSwitches(fi *FuncInfo) []Finding {
	var out []Finding
	ccast.WalkStmts(fi.Decl.Body, func(s ccast.Stmt) bool {
		sw, ok := s.(*ccast.Switch)
		if !ok {
			return true
		}
		hasDefault := false
		for i, c := range sw.Cases {
			if len(c.Values) == 0 {
				hasDefault = true
			}
			if len(c.Body) == 0 {
				continue // stacked labels merge upward; nothing to flag
			}
			if i == len(sw.Cases)-1 {
				continue // last group falls out of the switch legally
			}
			if !endsInJump(c.Body) {
				out = append(out, finding(r.ID(), Warning, fi, c.Span().Start.Line,
					"switch case falls through to the next label (MISRA C:2012 R16.3)",
					refLangSubset))
			}
		}
		if !hasDefault {
			out = append(out, finding(r.ID(), Warning, fi, sw.Span().Start.Line,
				"switch has no default label (MISRA C:2012 R16.4)", refLangSubset))
		}
		return true
	})
	return out
}

// endsInJump reports whether the statement list cannot fall through.
func endsInJump(body []ccast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	switch last := body[len(body)-1].(type) {
	case *ccast.Break, *ccast.Continue, *ccast.Return, *ccast.Goto:
		return true
	case *ccast.Block:
		return endsInJump(last.Stmts)
	default:
		return false
	}
}

// checkConditions flags assignments used as controlling expressions
// (MISRA C:2012 R13.4: the result of an assignment should not be used).
func (r *MISRAExtraRule) checkConditions(fi *FuncInfo) []Finding {
	var out []Finding
	flag := func(cond ccast.Expr, where string) {
		if cond == nil {
			return
		}
		ccast.WalkExprs(cond, func(e ccast.Expr) bool {
			if a, ok := e.(*ccast.Assign); ok {
				out = append(out, finding(r.ID(), Warning, fi, a.Span().Start.Line,
					fmt.Sprintf("assignment inside %s condition (MISRA C:2012 R13.4)", where),
					refLangSubset))
			}
			return true
		})
	}
	ccast.WalkStmts(fi.Decl.Body, func(s ccast.Stmt) bool {
		switch s := s.(type) {
		case *ccast.If:
			flag(s.Cond, "if")
		case *ccast.While:
			flag(s.Cond, "while")
		case *ccast.DoWhile:
			flag(s.Cond, "do-while")
		case *ccast.For:
			flag(s.Cond, "for")
		}
		return true
	})
	return out
}

// checkOctals flags octal integer constants (MISRA C:2012 R7.1).
func (r *MISRAExtraRule) checkOctals(fi *FuncInfo) []Finding {
	var out []Finding
	ccast.WalkExprs(fi.Decl.Body, func(e ccast.Expr) bool {
		lit, ok := e.(*ccast.IntLit)
		if !ok {
			return true
		}
		t := lit.Text
		if len(t) > 1 && t[0] == '0' && t[1] >= '0' && t[1] <= '7' &&
			!strings.HasPrefix(t, "0x") && !strings.HasPrefix(t, "0X") {
			out = append(out, finding(r.ID(), Warning, fi, lit.Span().Start.Line,
				fmt.Sprintf("octal constant %s (MISRA C:2012 R7.1)", t), refLangSubset))
		}
		return true
	})
	return out
}

// checkUnusedParams flags named parameters never referenced in the body
// (MISRA C:2012 R2.7, advisory).
func (r *MISRAExtraRule) checkUnusedParams(fi *FuncInfo) []Finding {
	if fi.Decl.Body == nil || len(fi.Decl.Params) == 0 {
		return nil
	}
	used := make(map[string]bool)
	ccast.WalkExprs(fi.Decl.Body, func(e ccast.Expr) bool {
		if id, ok := e.(*ccast.Ident); ok {
			used[id.Name] = true
		}
		return true
	})
	var out []Finding
	for _, p := range fi.Decl.Params {
		if p.Name == "" || used[p.Name] {
			continue
		}
		out = append(out, finding(r.ID(), Info, fi, p.Span().Start.Line,
			fmt.Sprintf("parameter %q is never used (MISRA C:2012 R2.7)", p.Name),
			refLangSubset))
	}
	return out
}
