package rules

import (
	"fmt"
	"strings"

	"repro/internal/ccast"
)

// MISRAExtraRule adds further decidable MISRA C:2012 checks beyond the
// core LanguageSubsetRule: switch hygiene (R16.3/R16.4), assignments in
// controlling expressions (R13.4), octal literals (R7.1), and unused
// parameters (advisory R2.7). The paper's point — that AD code was never
// written against any such subset — is evidenced by the density of these
// findings across the corpus.
type MISRAExtraRule struct{}

// ID implements Rule.
func (*MISRAExtraRule) ID() string { return "misra-extra" }

// Describe implements Rule.
func (*MISRAExtraRule) Describe() string {
	return "additional MISRA C:2012 decidable rules (ISO26262-6 T1.2)"
}

// Check implements Rule.
func (r *MISRAExtraRule) Check(ctx *Context) []Finding {
	var out []Finding
	for _, fi := range ctx.Funcs {
		out = append(out, r.checkSwitches(fi)...)
		out = append(out, r.checkConditions(fi)...)
		out = append(out, r.checkOctals(fi)...)
		out = append(out, r.checkUnusedParams(fi)...)
	}
	return out
}

// Fuse implements FusedRule. Switch hygiene, condition assignments, and
// octal literals dispatch off single node events; unused-parameter
// tracking accumulates identifier uses across the function walk.
func (r *MISRAExtraRule) Fuse(rg *Registrar, ctx *Context) {
	rg.OnNode(func(fi *FuncInfo, n ccast.Node, em *Emitter) {
		r.switchFindings(fi, n.(*ccast.Switch), em)
	}, KSwitch)
	rg.OnNode(func(fi *FuncInfo, n ccast.Node, em *Emitter) {
		switch s := n.(type) {
		case *ccast.If:
			r.condFindings(fi, s.Cond, "if", em)
		case *ccast.While:
			r.condFindings(fi, s.Cond, "while", em)
		case *ccast.DoWhile:
			r.condFindings(fi, s.Cond, "do-while", em)
		case *ccast.For:
			r.condFindings(fi, s.Cond, "for", em)
		}
	}, KIf, KWhile, KDoWhile, KFor)
	rg.OnNode(func(fi *FuncInfo, n ccast.Node, em *Emitter) {
		r.octalFinding(fi, n.(*ccast.IntLit), em)
	}, KIntLit)

	// Unused parameters (R2.7): keep the not-yet-seen parameter names in
	// a small slice and strike them off as identifier events arrive —
	// parameter lists are short, so a linear scan beats a per-identifier
	// map insert. State is per-worker, reset per function.
	var pending []string
	rg.OnFuncEnter(func(fi *FuncInfo, em *Emitter) {
		pending = pending[:0]
		for _, p := range fi.Decl.Params {
			if p.Name != "" {
				pending = append(pending, p.Name)
			}
		}
	})
	rg.OnNode(func(fi *FuncInfo, n ccast.Node, em *Emitter) {
		if len(pending) == 0 {
			return
		}
		name := n.(*ccast.Ident).Name
		for i, pn := range pending {
			if pn == name {
				pending[i] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				break
			}
		}
	}, KIdent)
	rg.OnFuncExit(func(fi *FuncInfo, em *Emitter) {
		if len(pending) == 0 {
			return
		}
		r.unusedParamFindings(fi, func(name string) bool {
			for _, pn := range pending {
				if pn == name {
					return false
				}
			}
			return true
		}, em)
	})
}

// checkSwitches enforces R16.4 (default label present) and R16.3 (every
// non-empty case group ends in an unconditional break or return).
func (r *MISRAExtraRule) checkSwitches(fi *FuncInfo) []Finding {
	em := &Emitter{}
	ccast.WalkStmts(fi.Decl.Body, func(s ccast.Stmt) bool {
		if sw, ok := s.(*ccast.Switch); ok {
			r.switchFindings(fi, sw, em)
		}
		return true
	})
	return em.out
}

// switchFindings applies the R16.3/R16.4 checks to one switch statement.
func (r *MISRAExtraRule) switchFindings(fi *FuncInfo, sw *ccast.Switch, em *Emitter) {
	hasDefault := false
	for i, c := range sw.Cases {
		if len(c.Values) == 0 {
			hasDefault = true
		}
		if len(c.Body) == 0 {
			continue // stacked labels merge upward; nothing to flag
		}
		if i == len(sw.Cases)-1 {
			continue // last group falls out of the switch legally
		}
		if !endsInJump(c.Body) {
			em.Emit(finding(r.ID(), Warning, fi, c.Span().Start.Line,
				"switch case falls through to the next label (MISRA C:2012 R16.3)",
				refLangSubset))
		}
	}
	if !hasDefault {
		em.Emit(finding(r.ID(), Warning, fi, sw.Span().Start.Line,
			"switch has no default label (MISRA C:2012 R16.4)", refLangSubset))
	}
}

// endsInJump reports whether the statement list cannot fall through.
func endsInJump(body []ccast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	switch last := body[len(body)-1].(type) {
	case *ccast.Break, *ccast.Continue, *ccast.Return, *ccast.Goto:
		return true
	case *ccast.Block:
		return endsInJump(last.Stmts)
	default:
		return false
	}
}

// checkConditions flags assignments used as controlling expressions
// (MISRA C:2012 R13.4: the result of an assignment should not be used).
func (r *MISRAExtraRule) checkConditions(fi *FuncInfo) []Finding {
	em := &Emitter{}
	ccast.WalkStmts(fi.Decl.Body, func(s ccast.Stmt) bool {
		switch s := s.(type) {
		case *ccast.If:
			r.condFindings(fi, s.Cond, "if", em)
		case *ccast.While:
			r.condFindings(fi, s.Cond, "while", em)
		case *ccast.DoWhile:
			r.condFindings(fi, s.Cond, "do-while", em)
		case *ccast.For:
			r.condFindings(fi, s.Cond, "for", em)
		}
		return true
	})
	return em.out
}

// condFindings flags assignments inside one controlling expression.
func (r *MISRAExtraRule) condFindings(fi *FuncInfo, cond ccast.Expr, where string, em *Emitter) {
	if cond == nil {
		return
	}
	ccast.WalkExprs(cond, func(e ccast.Expr) bool {
		if a, ok := e.(*ccast.Assign); ok {
			em.Emit(finding(r.ID(), Warning, fi, a.Span().Start.Line,
				fmt.Sprintf("assignment inside %s condition (MISRA C:2012 R13.4)", where),
				refLangSubset))
		}
		return true
	})
}

// checkOctals flags octal integer constants (MISRA C:2012 R7.1).
func (r *MISRAExtraRule) checkOctals(fi *FuncInfo) []Finding {
	em := &Emitter{}
	ccast.WalkExprs(fi.Decl.Body, func(e ccast.Expr) bool {
		if lit, ok := e.(*ccast.IntLit); ok {
			r.octalFinding(fi, lit, em)
		}
		return true
	})
	return em.out
}

// octalFinding flags one integer literal when spelled in octal.
func (r *MISRAExtraRule) octalFinding(fi *FuncInfo, lit *ccast.IntLit, em *Emitter) {
	t := lit.Text
	if len(t) > 1 && t[0] == '0' && t[1] >= '0' && t[1] <= '7' &&
		!strings.HasPrefix(t, "0x") && !strings.HasPrefix(t, "0X") {
		em.Emit(finding(r.ID(), Warning, fi, lit.Span().Start.Line,
			fmt.Sprintf("octal constant %s (MISRA C:2012 R7.1)", t), refLangSubset))
	}
}

// checkUnusedParams flags named parameters never referenced in the body
// (MISRA C:2012 R2.7, advisory).
func (r *MISRAExtraRule) checkUnusedParams(fi *FuncInfo) []Finding {
	if fi.Decl.Body == nil || len(fi.Decl.Params) == 0 {
		return nil
	}
	used := make(map[string]bool)
	ccast.WalkExprs(fi.Decl.Body, func(e ccast.Expr) bool {
		if id, ok := e.(*ccast.Ident); ok {
			used[id.Name] = true
		}
		return true
	})
	em := &Emitter{}
	r.unusedParamFindings(fi, func(name string) bool { return used[name] }, em)
	return em.out
}

// unusedParamFindings reports parameters the predicate marks unused.
func (r *MISRAExtraRule) unusedParamFindings(fi *FuncInfo, isUsed func(string) bool, em *Emitter) {
	for _, p := range fi.Decl.Params {
		if p.Name == "" || isUsed(p.Name) {
			continue
		}
		em.Emit(finding(r.ID(), Info, fi, p.Span().Start.Line,
			fmt.Sprintf("parameter %q is never used (MISRA C:2012 R2.7)", p.Name),
			refLangSubset))
	}
}
