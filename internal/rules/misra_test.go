package rules

import (
	"strings"
	"testing"
)

func misraFindings(t *testing.T, src string) []Finding {
	t.Helper()
	ctx := makeCtx(t, map[string]string{"m/a.c": src})
	return (&MISRAExtraRule{}).Check(ctx)
}

func countContaining(fs []Finding, sub string) int {
	n := 0
	for _, f := range fs {
		if strings.Contains(f.Msg, sub) {
			n++
		}
	}
	return n
}

func TestMissingDefaultFlagged(t *testing.T) {
	fs := misraFindings(t, `
int f(int x) {
    switch (x) {
    case 0: return 1;
    case 1: return 2;
    }
    return 0;
}`)
	if countContaining(fs, "R16.4") != 1 {
		t.Errorf("missing-default findings: %v", fs)
	}
}

func TestDefaultPresentNotFlagged(t *testing.T) {
	fs := misraFindings(t, `
int f(int x) {
    switch (x) {
    case 0: return 1;
    default: return 0;
    }
}`)
	if countContaining(fs, "R16.4") != 0 {
		t.Errorf("spurious missing-default: %v", fs)
	}
}

func TestFallthroughFlagged(t *testing.T) {
	fs := misraFindings(t, `
int f(int x) {
    int acc = 0;
    switch (x) {
    case 0:
        acc += 1;
    case 1:
        acc += 2;
        break;
    default:
        acc = -1;
    }
    return acc;
}`)
	if countContaining(fs, "R16.3") != 1 {
		t.Errorf("fallthrough findings: %v", fs)
	}
}

func TestBreakTerminatedCasesClean(t *testing.T) {
	fs := misraFindings(t, `
int f(int x) {
    int acc = 0;
    switch (x) {
    case 0:
        acc = 1;
        break;
    case 1:
        acc = 2;
        break;
    default:
        acc = 3;
    }
    return acc;
}`)
	if countContaining(fs, "R16.3") != 0 {
		t.Errorf("spurious fallthrough: %v", fs)
	}
}

func TestStackedLabelsNotFallthrough(t *testing.T) {
	fs := misraFindings(t, `
int f(int x) {
    int acc = 0;
    switch (x) {
    case 0:
    case 1:
        acc = 2;
        break;
    default:
        acc = 3;
    }
    return acc;
}`)
	if countContaining(fs, "R16.3") != 0 {
		t.Errorf("stacked labels flagged: %v", fs)
	}
}

func TestAssignmentInConditionFlagged(t *testing.T) {
	fs := misraFindings(t, `
int f(int x) {
    int y = 0;
    if ((y = x) > 0) { return y; }
    while ((y = y - 1) > 0) { x++; }
    return x;
}`)
	if countContaining(fs, "R13.4") != 2 {
		t.Errorf("assignment-in-condition findings: %v", fs)
	}
}

func TestOctalFlagged(t *testing.T) {
	fs := misraFindings(t, `
int f() {
    int mode = 0755;
    int zero = 0;
    int hex = 0x1F;
    return mode + zero + hex;
}`)
	if countContaining(fs, "R7.1") != 1 {
		t.Errorf("octal findings: %v", fs)
	}
}

func TestUnusedParamFlagged(t *testing.T) {
	fs := misraFindings(t, `
int f(int used, int unused) {
    return used * 2;
}`)
	if countContaining(fs, "R2.7") != 1 {
		t.Errorf("unused param findings: %v", fs)
	}
	for _, f := range fs {
		if strings.Contains(f.Msg, "R2.7") && !strings.Contains(f.Msg, `"unused"`) {
			t.Errorf("wrong parameter named: %s", f.Msg)
		}
	}
}

func TestMISRAExtraOnCleanFunction(t *testing.T) {
	fs := misraFindings(t, `
int f(int x) {
    if (x > 0) { x--; }
    switch (x) {
    case 0:
        x = 1;
        break;
    default:
        x = 2;
    }
    return x;
}`)
	if len(fs) != 0 {
		t.Errorf("clean function flagged: %v", fs)
	}
}
