package rules

import (
	"repro/internal/artifact"
)

// This file is the sharded engine's persistence boundary. The engine's
// warm state is, per file, the cached finding list keyed by content
// hash, plus the corpus-level segment keyed by the index overlays.
// Everything else it holds (per-shard segments, stats partials,
// signatures) is derivable in O(corpus map ops) from those lists and
// the artifact index, so the snapshot stores only the finding lists and
// RestoreCache recomputes the rest against the restored index.

// ExportCache returns the engine's cached per-file finding lists (one
// entry per indexed path, possibly empty) and the corpus-level segment.
// It reports ok=false when the engine holds no complete warm state for
// its current index — callers run the engine once (core.Assessor
// .Findings) before snapshotting. Sealed (lazily restored, never
// dirtied) shards are thawed here: compaction re-snapshots the whole
// corpus, so it materializes whatever restore deferred. The returned
// slices are the live cache entries; callers must not mutate them.
func (s *Sharded) ExportCache() (perFile map[string][]Finding, corpus []Finding, ok bool) {
	if s.fused == nil || s.ix == nil || !s.haveEnv || !s.haveCorpus {
		return nil, nil, false
	}
	perFile = make(map[string][]Finding, len(s.ix.Paths))
	for _, m := range s.ix.ShardNames() {
		sh := s.ix.Shard(m)
		seg := s.shards[m]
		if seg == nil || !seg.valid || seg.gen != sh.Gen() {
			return nil, nil, false
		}
		if seg.perFile == nil && !seg.thawEntries() {
			return nil, nil, false
		}
		for _, p := range sh.Paths() {
			e, present := seg.perFile[p]
			if !present {
				return nil, nil, false
			}
			perFile[p] = e.findings
		}
	}
	return perFile, s.corpusSeg, true
}

// ShardLoader supplies a restored engine's per-shard warm state on
// demand — the lazy face of a snapshot (internal/store decodes one
// shard's block on first touch). Both methods report ok=false when the
// shard's block cannot be produced; the engine then treats the shard
// as cold and recomputes it, so a lazy-decode failure degrades to work,
// never to wrong output.
type ShardLoader interface {
	// ShardFindings returns the per-path finding lists of a module's
	// shard, aligned with the shard's snapshot-time sorted path list.
	ShardFindings(module string) ([][]Finding, bool)
	// ShardKeys returns the shard's snapshot-time paths and the content
	// hashes of the sources those findings were computed from. This is
	// the expensive half (hashing O(shard bytes)); the engine only calls
	// it when a delta actually dirties the shard.
	ShardKeys(module string) ([]string, []uint64, bool)
}

// RestoreCacheLazy seeds the engine against a freshly restored index
// without materializing any per-shard state: every shard starts sealed,
// holding only its generation and a loader. The first Run materializes
// each shard's finding segment (the merge needs every segment), but the
// per-file entry maps — and the content hashes behind them — stay
// deferred until a delta dirties the shard. On an unchanged corpus the
// restored engine therefore never hashes a single file.
//
// The environment and corpus keys are recomputed from the index (O(#
// shards) when the shard signatures were seeded), so the next Run over
// an unchanged corpus re-checks zero files, exactly like RestoreCache.
func (s *Sharded) RestoreCacheLazy(ix *artifact.Index, corpus []Finding, loader ShardLoader) {
	if s.fused == nil {
		return // non-fused rule sets never cache; Run falls back cold
	}
	s.reset(ix)
	s.export, s.haveEnv = ix.ExportOverlay(), true
	s.corpusKey = [2]uint64{ix.GraphOverlay(), s.export}
	s.haveCorpus = true
	s.corpusSeg = corpus
	s.corpusStat = Aggregate(corpus)
	for _, m := range ix.ShardNames() {
		sh := ix.Shard(m)
		module := m
		s.shards[m] = &shardSeg{
			gen:   sh.Gen(),
			valid: true,
			load:  func() ([][]Finding, bool) { return loader.ShardFindings(module) },
			thaw:  func() ([]string, []uint64, bool) { return loader.ShardKeys(module) },
		}
	}
	// Per-shard stats fold lazily with the segments; s.stats is only
	// read after a Run, which materializes them first.
	s.stats = nil
	s.lastDirty = 0
}

// RestoreCache seeds the engine with persisted per-file finding lists
// against a freshly restored index: per-shard segments, stats partials,
// and cache keys (environment signature, corpus overlay key, shard
// generations) are recomputed from the index so the next Run over an
// unchanged corpus re-checks zero files and a post-restore delta
// re-checks only what the delta dirtied. perFile must hold one entry
// for every indexed path whose content hash produced the findings —
// the restorer (core.RestoreAssessor) guarantees both.
func (s *Sharded) RestoreCache(ix *artifact.Index, perFile map[string][]Finding, corpus []Finding) {
	if s.fused == nil {
		return // non-fused rule sets never cache; Run falls back cold
	}
	s.reset(ix)
	s.export, s.haveEnv = ix.ExportOverlay(), true
	s.corpusKey = [2]uint64{ix.GraphOverlay(), s.export}
	s.haveCorpus = true
	s.corpusSeg = corpus
	s.corpusStat = Aggregate(corpus)
	for _, m := range ix.ShardNames() {
		sh := ix.Shard(m)
		paths := sh.Paths()
		seg := &shardSeg{perFile: make(map[string]incrEntry, len(paths))}
		total := 0
		for _, p := range paths {
			fs := perFile[p]
			seg.perFile[p] = incrEntry{hash: ix.Units[p].File.Hash(), findings: fs}
			total += len(fs)
		}
		seg.seg = make([]Finding, 0, total)
		for _, p := range paths {
			seg.seg = append(seg.seg, seg.perFile[p].findings...)
		}
		seg.stats = Aggregate(seg.seg)
		seg.gen, seg.valid = sh.Gen(), true
		s.shards[m] = seg
	}
	parts := make([]*Stats, 0, len(ix.ShardNames())+1)
	parts = append(parts, s.corpusStat)
	for _, m := range ix.ShardNames() {
		parts = append(parts, s.shards[m].stats)
	}
	s.stats = MergeStats(parts...)
	s.lastDirty = 0
}
